//! Property-based tests for the geometry substrate.

use cohesion_geometry::angle::{largest_gap, normalize, signed_diff};
use cohesion_geometry::ball::{smallest_enclosing_ball, smallest_enclosing_ball_brute};
use cohesion_geometry::cone::{sector_2d, SectorAnalysis};
use cohesion_geometry::hull::convex_hull;
use cohesion_geometry::point::Point as _;
use cohesion_geometry::{Aabb, Circle, Segment, SpatialGrid, Vec2, Vec3};
use proptest::prelude::*;

fn vec2(range: f64) -> impl Strategy<Value = Vec2> {
    (-range..range, -range..range).prop_map(|(x, y)| Vec2::new(x, y))
}

fn vec3(range: f64) -> impl Strategy<Value = Vec3> {
    (-range..range, -range..range, -range..range).prop_map(|(x, y, z)| Vec3::new(x, y, z))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn angle_normalize_is_idempotent_and_bounded(theta in -50.0..50.0f64) {
        let n = normalize(theta);
        prop_assert!(n > -std::f64::consts::PI - 1e-12 && n <= std::f64::consts::PI + 1e-12);
        prop_assert!((normalize(n) - n).abs() < 1e-12);
        // Normalization preserves the direction.
        prop_assert!((theta.sin() - n.sin()).abs() < 1e-9);
        prop_assert!((theta.cos() - n.cos()).abs() < 1e-9);
    }

    #[test]
    fn signed_diff_composes(a in -7.0..7.0f64, b in -7.0..7.0f64) {
        let d = signed_diff(a, b);
        // Rotating `a` by the diff lands on `b` (mod 2π).
        prop_assert!(normalize(a + d - b).abs() < 1e-9);
    }

    #[test]
    fn gap_plus_span_is_full_circle(angles in proptest::collection::vec(-4.0..4.0f64, 2..10)) {
        let gap = largest_gap(&angles).unwrap();
        let span = cohesion_geometry::angle::span(&angles);
        prop_assert!((gap.width + span - std::f64::consts::TAU).abs() < 1e-9);
    }

    #[test]
    fn sec_encloses_and_is_minimal_2d(pts in proptest::collection::vec(vec2(10.0), 1..14)) {
        let ball = smallest_enclosing_ball(&pts);
        prop_assert!(ball.contains_all(&pts, 1e-7));
        let brute = smallest_enclosing_ball_brute(&pts);
        prop_assert!((ball.radius - brute.radius).abs() < 1e-6);
    }

    #[test]
    fn sec_encloses_3d(pts in proptest::collection::vec(vec3(5.0), 1..10)) {
        let ball = smallest_enclosing_ball(&pts);
        prop_assert!(ball.contains_all(&pts, 1e-7));
    }

    #[test]
    fn hull_contains_all_inputs(pts in proptest::collection::vec(vec2(10.0), 1..20)) {
        let hull = convex_hull(&pts);
        for p in &pts {
            prop_assert!(hull.contains(*p, 1e-7), "{p} outside its own hull");
        }
    }

    #[test]
    fn hull_diameter_equals_point_diameter(pts in proptest::collection::vec(vec2(10.0), 2..20)) {
        let hull = convex_hull(&pts);
        let mut brute = 0.0_f64;
        for i in 0..pts.len() {
            for j in (i + 1)..pts.len() {
                brute = brute.max(pts[i].dist(pts[j]));
            }
        }
        prop_assert!((hull.diameter() - brute).abs() < 1e-9);
    }

    #[test]
    fn hull_perimeter_at_most_sec_circumference(
        pts in proptest::collection::vec(vec2(10.0), 3..20)
    ) {
        // Convexity: hull perimeter ≤ 2πR of any enclosing circle.
        let hull = convex_hull(&pts);
        let sec = smallest_enclosing_ball(&pts);
        prop_assert!(hull.perimeter() <= std::f64::consts::TAU * sec.radius + 1e-7);
    }

    #[test]
    fn aabb_contains_all(pts in proptest::collection::vec(vec2(10.0), 1..20)) {
        let bbox = Aabb::from_points(&pts).unwrap();
        for p in &pts {
            prop_assert!(bbox.contains(*p, 1e-12));
        }
        // The centre is inside too.
        prop_assert!(bbox.contains(bbox.center(), 1e-12));
    }

    #[test]
    fn segment_closest_point_is_closest(
        a in vec2(5.0), b in vec2(5.0), p in vec2(8.0), t in 0.0..1.0f64
    ) {
        let s = Segment::new(a, b);
        let c = s.closest_point(p);
        let other = s.point_at(t);
        prop_assert!(c.dist(p) <= other.dist(p) + 1e-9);
    }

    #[test]
    fn ray_exit_point_is_on_boundary_or_none(
        center in vec2(3.0), radius in 0.1..3.0f64, dir_angle in 0.0..std::f64::consts::TAU
    ) {
        let c = Circle::new(center, radius);
        let dir = Vec2::from_angle(dir_angle);
        match c.ray_exit(Vec2::ZERO, dir) {
            Some(t) => {
                let exit = dir * t;
                prop_assert!((c.center.dist(exit) - radius).abs() < 1e-7);
                prop_assert!(t >= 0.0);
            }
            None => {
                // The ray must genuinely miss the closed disk.
                for i in 0..100 {
                    let t = i as f64 * 0.1;
                    prop_assert!(!c.contains(dir * t, -1e-9));
                }
            }
        }
    }

    #[test]
    fn sector_axis_covers_all_directions(
        angles in proptest::collection::vec(-3.0..3.0f64, 1..8)
    ) {
        let dirs: Vec<Vec2> = angles.iter().map(|&a| Vec2::from_angle(a)).collect();
        if let SectorAnalysis::Cone(c) = sector_2d(&dirs, 1e-9) {
            for d in &dirs {
                let cos = c.axis.dot(*d).clamp(-1.0, 1.0);
                prop_assert!(cos.acos() <= c.half_angle + 1e-7,
                    "direction {d} outside the cone");
            }
        }
    }

    #[test]
    fn vec_ops_are_consistent(a in vec2(10.0), b in vec2(10.0), s in -3.0..3.0f64) {
        // Distributivity and norm homogeneity.
        prop_assert!((((a + b) * s) - (a * s + b * s)).norm() < 1e-9);
        prop_assert!(((a * s).norm() - s.abs() * a.norm()).abs() < 1e-9);
        // Cauchy–Schwarz.
        prop_assert!(a.dot(b).abs() <= a.norm() * b.norm() + 1e-9);
        // Cross = signed parallelogram area, antisymmetric.
        prop_assert!((a.cross(b) + b.cross(a)).abs() < 1e-9);
    }

    #[test]
    fn from_coords_roundtrip(a in vec2(10.0), b in vec3(10.0)) {
        prop_assert_eq!(Vec2::from_coords(&a.coords()), a);
        prop_assert_eq!(Vec3::from_coords(&b.coords()), b);
    }

    #[test]
    fn spatial_grid_pairs_match_brute_force(
        pts in proptest::collection::vec(vec2(6.0), 0..90),
        cell in 0.2..2.0f64,
        radius in 0.0..2.5f64,
    ) {
        // The grid may be built at any positive cell edge, not just the
        // query radius — candidate enumeration must stay exhaustive.
        let grid = SpatialGrid::build(&pts, cell);
        let mut brute = Vec::new();
        for i in 0..pts.len() {
            for j in (i + 1)..pts.len() {
                if pts[i].dist(pts[j]) <= radius {
                    brute.push((i, j));
                }
            }
        }
        prop_assert_eq!(grid.pairs_within(radius), brute);
    }

    #[test]
    fn spatial_grid_probe_query_matches_brute_force(
        pts in proptest::collection::vec(vec2(6.0), 1..60),
        probe in vec2(8.0),
        radius in 0.0..3.0f64,
    ) {
        let grid = SpatialGrid::build(&pts, 1.0);
        let mut out = Vec::new();
        grid.query_within(probe, radius, &mut out);
        let brute: Vec<usize> = (0..pts.len())
            .filter(|&j| probe.dist(pts[j]) <= radius)
            .collect();
        prop_assert_eq!(out, brute);
    }
}
