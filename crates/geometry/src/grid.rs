//! A uniform spatial-hash grid for near-linear radius queries.
//!
//! Visibility-graph construction, cohesion checking, and every other
//! "who is within distance `r` of whom" question in the workspace is a
//! fixed-radius neighbour problem. For bounded-density clouds (the paper's
//! standing regime: connected configurations at visibility scale `V`), a
//! uniform grid with cell edge ≈ `r` answers each query by scanning the
//! `3^DIM` surrounding cells, turning the naive `O(n²)` all-pairs sweep
//! into `O(n · density)`.
//!
//! Determinism is part of the contract: bucket contents are grouped by
//! lexicographically sorted cell key and hold point indices in ascending
//! order, and every query result is returned sorted ascending — so callers
//! building edge lists get exactly the order a brute-force `i < j` double
//! loop would produce, independent of build or probe order.

use crate::point::Point;

/// Number of key axes carried per cell (2D keys pad the third axis with 0).
pub(crate) const KEY_AXES: usize = 3;

pub(crate) type CellKey = [i64; KEY_AXES];

/// How the occupied cells are addressed.
///
/// Both layouts share the `order` array (point indices grouped by cell,
/// ascending within each cell) and produce identical query results; they
/// differ only in how a cell key maps to its slice of `order`.
#[derive(Debug, Clone)]
enum CellIndex {
    /// Direct addressing over the key bounding box: `starts` has one entry
    /// per cell of the box (row-major, plus the trailing sentinel), so a
    /// probe is pure arithmetic and a whole row of cells is one contiguous
    /// `order` run. Chosen when the box is small relative to the point
    /// count — the bounded-density regime the grid is designed for.
    Dense {
        /// Minimum cell key over all points (the box origin).
        min: CellKey,
        /// Box extent along each axis, ≥ 1 (axes beyond `P::DIM` are 1).
        dims: CellKey,
        /// Row-major CSR offsets into `order`; `len == cells + 1`.
        starts: Vec<u32>,
    },
    /// Sorted, deduplicated cell keys with binary-search lookup — the
    /// fallback for far-flung clouds whose bounding box would dwarf the
    /// point count (e.g. adversarial spirals).
    Sparse {
        /// Sorted, deduplicated cell keys.
        keys: Vec<CellKey>,
        /// CSR offsets into `order`; `len == keys.len() + 1`.
        starts: Vec<u32>,
    },
}

/// Dense addressing is used while the key bounding box has at most
/// `max(DENSE_MIN_CELLS, DENSE_CELLS_PER_POINT · n)` cells.
const DENSE_CELLS_PER_POINT: i128 = 8;
const DENSE_MIN_CELLS: i128 = 1024;

/// A uniform grid over a fixed point set, keyed by integer cell coordinates
/// at a caller-chosen cell edge length.
///
/// Storage is CSR-style: each occupied cell owns a contiguous ascending
/// slice of point indices. Compact clouds get a direct-addressed cell table
/// (O(1) probes, contiguous row scans); far-flung clouds fall back to a
/// sorted key table with binary-search lookup. No hashing, no randomized
/// iteration order — bit-for-bit reproducible across runs and platforms.
///
/// ```
/// use cohesion_geometry::{SpatialGrid, Vec2};
/// let pts = vec![Vec2::new(0.0, 0.0), Vec2::new(0.5, 0.0), Vec2::new(3.0, 0.0)];
/// let grid = SpatialGrid::build(&pts, 1.0);
/// let mut out = Vec::new();
/// grid.neighbors_within(0, 1.0, &mut out);
/// assert_eq!(out, vec![1]);
/// assert_eq!(grid.pairs_within(1.0), vec![(0, 1)]);
/// ```
#[derive(Debug, Clone)]
pub struct SpatialGrid<P: Point> {
    cell: f64,
    index: CellIndex,
    /// Point indices grouped by cell, ascending within each cell.
    order: Vec<u32>,
    /// Cell key of each point, by point index.
    point_key: Vec<CellKey>,
    /// The indexed points (copied so queries need no external slice).
    points: Vec<P>,
}

impl<P: Point> SpatialGrid<P> {
    /// Indexes `points` on a grid with the given cell edge length.
    ///
    /// Queries are cheapest when `cell` equals the typical query radius
    /// (each probe then scans `3^DIM` cells).
    ///
    /// # Panics
    ///
    /// Panics when `cell` is not positive and finite, or when `P::DIM`
    /// exceeds the supported 3 axes.
    pub fn build(points: &[P], cell: f64) -> Self {
        assert!(cell > 0.0 && cell.is_finite(), "cell edge must be positive");
        assert!(
            P::DIM <= KEY_AXES,
            "SpatialGrid supports up to {KEY_AXES} dimensions"
        );
        assert!(
            u32::try_from(points.len()).is_ok(),
            "point count fits in u32"
        );
        let point_key: Vec<CellKey> = points.iter().map(|p| cell_key(*p, cell)).collect();
        let index = match dense_box(&point_key) {
            Some((min, dims)) => Self::build_dense(&point_key, min, dims),
            None => Self::build_sparse(&point_key),
        };
        let mut grid = SpatialGrid {
            cell,
            index,
            order: Vec::new(),
            point_key,
            points: points.to_vec(),
        };
        grid.fill_order();
        grid
    }

    /// Lays out the dense direct-addressed index (counting sort — no
    /// comparison sort needed, the slot function is monotone in the key).
    fn build_dense(point_key: &[CellKey], min: CellKey, dims: CellKey) -> CellIndex {
        let cells = (dims[0] * dims[1] * dims[2]) as usize;
        let mut starts = vec![0u32; cells + 1];
        for k in point_key {
            starts[dense_slot(min, dims, *k) + 1] += 1;
        }
        for i in 0..cells {
            starts[i + 1] += starts[i];
        }
        CellIndex::Dense { min, dims, starts }
    }

    /// Lays out the sparse sorted-key index.
    fn build_sparse(point_key: &[CellKey]) -> CellIndex {
        let mut keys: Vec<CellKey> = point_key.to_vec();
        keys.sort_unstable();
        keys.dedup();
        let mut starts = vec![0u32; keys.len() + 1];
        for k in point_key {
            let slot = keys.binary_search(k).expect("own key present");
            starts[slot + 1] += 1;
        }
        for i in 0..keys.len() {
            starts[i + 1] += starts[i];
        }
        CellIndex::Sparse { keys, starts }
    }

    /// Fills `order` from the CSR offsets: walking points in ascending index
    /// order and bumping a per-cell cursor keeps every cell's slice
    /// ascending.
    fn fill_order(&mut self) {
        let starts = match &self.index {
            CellIndex::Dense { starts, .. } | CellIndex::Sparse { starts, .. } => starts,
        };
        let mut cursor: Vec<u32> = starts[..starts.len() - 1].to_vec();
        self.order = vec![0u32; self.points.len()];
        for (i, k) in self.point_key.iter().enumerate() {
            let slot = self.slot_of(*k).expect("every point's own cell is indexed");
            self.order[cursor[slot] as usize] = i as u32;
            cursor[slot] += 1;
        }
    }

    /// The CSR slot of `key`, or `None` when the cell is outside the index
    /// (dense: outside the bounding box; sparse: key absent).
    fn slot_of(&self, key: CellKey) -> Option<usize> {
        match &self.index {
            CellIndex::Dense { min, dims, .. } => {
                for a in 0..KEY_AXES {
                    if key[a] < min[a] || key[a] >= min[a] + dims[a] {
                        return None;
                    }
                }
                Some(dense_slot(*min, *dims, key))
            }
            CellIndex::Sparse { keys, .. } => keys.binary_search(&key).ok(),
        }
    }

    /// Number of indexed points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// `true` when no points are indexed.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The cell edge length.
    pub fn cell_size(&self) -> f64 {
        self.cell
    }

    /// The indexed points.
    pub fn points(&self) -> &[P] {
        &self.points
    }

    /// The point indices stored in the cell containing `key`, ascending
    /// (empty when the cell holds no points).
    fn bucket(&self, key: CellKey) -> &[u32] {
        let starts = match &self.index {
            CellIndex::Dense { starts, .. } | CellIndex::Sparse { starts, .. } => starts,
        };
        match self.slot_of(key) {
            Some(slot) => {
                let lo = starts[slot] as usize;
                let hi = starts[slot + 1] as usize;
                &self.order[lo..hi]
            }
            None => &[],
        }
    }

    /// Appends to `out` every index `j ≠ i` with `dist(points[i], points[j])
    /// ≤ radius` (closed predicate, matching §2.1's visibility definition).
    /// `out` is cleared first and returned sorted ascending.
    pub fn neighbors_within(&self, i: usize, radius: f64, out: &mut Vec<usize>) {
        out.clear();
        let center = self.points[i];
        let key = self.point_key[i];
        self.for_each_candidate(key, radius, |j| {
            if j != i && center.dist(self.points[j]) <= radius {
                out.push(j);
            }
        });
        out.sort_unstable();
    }

    /// Appends to `out` every index `j` with `dist(q, points[j]) ≤ radius`,
    /// for an arbitrary probe point `q`. `out` is cleared first and returned
    /// sorted ascending.
    pub fn query_within(&self, q: P, radius: f64, out: &mut Vec<usize>) {
        out.clear();
        self.for_each_candidate(cell_key(q, self.cell), radius, |j| {
            if q.dist(self.points[j]) <= radius {
                out.push(j);
            }
        });
        out.sort_unstable();
    }

    /// Appends to `out` every index `j` with `r_min ≤ dist(q, points[j]) ≤
    /// r_max` (both predicates closed). `out` is cleared first and returned
    /// sorted ascending.
    ///
    /// Cells entirely inside the inner radius are skipped wholesale: a cell
    /// whose farthest corner from `q` is still below `r_min` cannot hold a
    /// hit, which makes wide annuli with a fat hole (e.g. ring placement in
    /// workload generators) cheaper than a full-disk scan plus filter.
    ///
    /// # Panics
    ///
    /// Panics when `r_min > r_max` or either bound is negative.
    pub fn query_annulus(&self, q: P, r_min: f64, r_max: f64, out: &mut Vec<usize>) {
        assert!(
            0.0 <= r_min && r_min <= r_max,
            "annulus needs 0 ≤ r_min ≤ r_max"
        );
        out.clear();
        // Half the diagonal of one cell, inflated a hair so sqrt rounding can
        // never make the whole-cell rejection below overreach: if the cell
        // *center* is strictly within r_min − half_diag of q, every point of
        // the cell is strictly inside the hole.
        let half_diag = 0.5 * self.cell * (P::DIM as f64).sqrt() * (1.0 + 1e-12);
        let skip_below_sq = {
            let margin = r_min - half_diag;
            if margin > 0.0 {
                margin * margin
            } else {
                -1.0
            }
        };
        let key = cell_key(q, self.cell);
        let reach = (r_max / self.cell).ceil().max(1.0) as i64;
        for dx in -reach..=reach {
            for dy in -reach..=reach {
                let z_range = if P::DIM >= 3 { -reach..=reach } else { 0..=0 };
                for dz in z_range {
                    let probe = [key[0] + dx, key[1] + dy, key[2] + dz];
                    if skip_below_sq > 0.0 {
                        let center = self.cell_center(probe);
                        if q.dist_sq(center) < skip_below_sq {
                            continue;
                        }
                    }
                    for &j in self.bucket(probe) {
                        let d = q.dist(self.points[j as usize]);
                        if r_min <= d && d <= r_max {
                            out.push(j as usize);
                        }
                    }
                }
            }
        }
        out.sort_unstable();
    }

    /// Appends to `out` every index `j` whose point lies within distance
    /// `pad` of the closed segment `a → b`. `out` is cleared first and
    /// returned sorted ascending.
    ///
    /// Candidate cells are the grid cells intersecting the segment's
    /// bounding box expanded by `pad` — for segments no longer than a few
    /// cells (the visibility-scale sight lines of the occlusion model) this
    /// is a constant number of cells, independent of the point count.
    ///
    /// # Panics
    ///
    /// Panics when `pad` is negative.
    pub fn query_segment_within(&self, a: P, b: P, pad: f64, out: &mut Vec<usize>) {
        assert!(pad >= 0.0, "segment pad must be non-negative");
        out.clear();
        let pad_sq = pad * pad;
        let lo_key = cell_key(min_corner(a, b, pad), self.cell);
        let hi_key = cell_key(max_corner(a, b, pad), self.cell);
        for x in lo_key[0]..=hi_key[0] {
            for y in lo_key[1]..=hi_key[1] {
                for z in lo_key[2]..=hi_key[2] {
                    for &j in self.bucket([x, y, z]) {
                        if dist_sq_to_segment(self.points[j as usize], a, b) <= pad_sq {
                            out.push(j as usize);
                        }
                    }
                }
            }
        }
        out.sort_unstable();
    }

    /// The center of an (arbitrary) cell, for conservative whole-cell
    /// rejection tests.
    fn cell_center(&self, key: CellKey) -> P {
        let mut coords = [0.0f64; KEY_AXES];
        for (axis, c) in coords.iter_mut().enumerate() {
            *c = (key[axis] as f64 + 0.5) * self.cell;
        }
        P::from_coords(&coords[..P::DIM])
    }

    /// All pairs `(i, j)` with `i < j` and `dist ≤ radius`, in the exact
    /// lexicographic order a brute-force double loop produces.
    ///
    /// Each unordered pair is enumerated from both endpoints but measured
    /// only from the smaller one, and ordering needs no global sort: `i`
    /// ascends by construction, and each point's handful of partners is
    /// sorted in a scratch buffer — the hot path of visibility-graph
    /// construction.
    pub fn pairs_within(&self, radius: f64) -> Vec<(usize, usize)> {
        let mut pairs = Vec::new();
        let mut scratch: Vec<usize> = Vec::new();
        for i in 0..self.points.len() {
            let center = self.points[i];
            scratch.clear();
            self.for_each_candidate(self.point_key[i], radius, |j| {
                if j > i && center.dist(self.points[j]) <= radius {
                    scratch.push(j);
                }
            });
            scratch.sort_unstable();
            pairs.extend(scratch.iter().map(|&j| (i, j)));
        }
        pairs
    }

    /// Visits every point index stored within `ceil(radius / cell)` cells of
    /// `key`, in deterministic (cell-lexicographic, then index-ascending)
    /// order. Distance filtering is the visitor's job.
    fn for_each_candidate(&self, key: CellKey, radius: f64, mut visit: impl FnMut(usize)) {
        let reach = (radius / self.cell).ceil().max(1.0) as i64;
        match &self.index {
            CellIndex::Dense { min, dims, starts } => {
                // Clamp the probe box to the occupied bounding box; an empty
                // intersection means no candidates at all.
                let lo = |a: usize| (key[a] - reach).max(min[a]);
                let hi = |a: usize| (key[a] + reach).min(min[a] + dims[a] - 1);
                let (x_lo, x_hi) = (lo(0), hi(0));
                let (y_lo, y_hi) = (lo(1), hi(1));
                let (z_lo, z_hi) = (lo(2), hi(2));
                if x_lo > x_hi || y_lo > y_hi || z_lo > z_hi {
                    return;
                }
                for x in x_lo..=x_hi {
                    let x_base = (x - min[0]) * dims[1];
                    if dims[2] == 1 {
                        // Planar fast path: the whole y-run of cells is one
                        // contiguous slice of `order`.
                        let s_lo = (x_base + (y_lo - min[1])) as usize;
                        let s_hi = (x_base + (y_hi - min[1])) as usize;
                        for &j in &self.order[starts[s_lo] as usize..starts[s_hi + 1] as usize] {
                            visit(j as usize);
                        }
                    } else {
                        for y in y_lo..=y_hi {
                            let base = (x_base + (y - min[1])) * dims[2];
                            let s_lo = (base + (z_lo - min[2])) as usize;
                            let s_hi = (base + (z_hi - min[2])) as usize;
                            for &j in &self.order[starts[s_lo] as usize..starts[s_hi + 1] as usize]
                            {
                                visit(j as usize);
                            }
                        }
                    }
                }
            }
            CellIndex::Sparse { .. } => {
                let z_range = if P::DIM >= 3 { -reach..=reach } else { 0..=0 };
                for dx in -reach..=reach {
                    for dy in -reach..=reach {
                        for dz in z_range.clone() {
                            let probe = [key[0] + dx, key[1] + dy, key[2] + dz];
                            for &j in self.bucket(probe) {
                                visit(j as usize);
                            }
                        }
                    }
                }
            }
        }
    }
}

/// The dense bounding box `(min, dims)` of a key set, or `None` when the box
/// is too large for direct addressing (or the set is empty).
fn dense_box(point_key: &[CellKey]) -> Option<(CellKey, CellKey)> {
    let first = *point_key.first()?;
    let (mut min, mut max) = (first, first);
    for k in point_key {
        for a in 0..KEY_AXES {
            min[a] = min[a].min(k[a]);
            max[a] = max[a].max(k[a]);
        }
    }
    let mut dims = [1i64; KEY_AXES];
    let mut cells: i128 = 1;
    for a in 0..KEY_AXES {
        dims[a] = max[a] - min[a] + 1;
        cells *= dims[a] as i128;
    }
    let budget = DENSE_MIN_CELLS.max(point_key.len() as i128 * DENSE_CELLS_PER_POINT);
    (cells <= budget).then_some((min, dims))
}

/// Row-major slot of `key` inside the dense box; the caller guarantees the
/// key lies inside.
#[inline]
fn dense_slot(min: CellKey, dims: CellKey, key: CellKey) -> usize {
    (((key[0] - min[0]) * dims[1] + (key[1] - min[1])) * dims[2] + (key[2] - min[2])) as usize
}

/// The integer cell containing `p` at the given edge length. Coordinates on
/// a cell boundary land in the higher cell (`floor` semantics); coverage of
/// closed-radius queries is guaranteed because a probe always scans one full
/// cell layer beyond the radius in every axis.
pub(crate) fn cell_key<P: Point>(p: P, cell: f64) -> CellKey {
    let mut key = [0i64; KEY_AXES];
    for (axis, slot) in key.iter_mut().enumerate().take(P::DIM) {
        *slot = (p.coord(axis) / cell).floor() as i64;
    }
    key
}

/// Componentwise minimum of `a` and `b`, shifted down by `pad` on every axis
/// (the low corner of a segment's padded bounding box).
pub(crate) fn min_corner<P: Point>(a: P, b: P, pad: f64) -> P {
    let mut coords = [0.0f64; KEY_AXES];
    for (axis, c) in coords.iter_mut().enumerate().take(P::DIM) {
        *c = a.coord(axis).min(b.coord(axis)) - pad;
    }
    P::from_coords(&coords[..P::DIM])
}

/// Componentwise maximum of `a` and `b`, shifted up by `pad` on every axis
/// (the high corner of a segment's padded bounding box).
pub(crate) fn max_corner<P: Point>(a: P, b: P, pad: f64) -> P {
    let mut coords = [0.0f64; KEY_AXES];
    for (axis, c) in coords.iter_mut().enumerate().take(P::DIM) {
        *c = a.coord(axis).max(b.coord(axis)) + pad;
    }
    P::from_coords(&coords[..P::DIM])
}

/// Squared distance from `z` to the closed segment `a → b`, written once for
/// any [`Point`] dimension (the planar [`crate::Segment`] type stays the
/// ergonomic 2D API; the grids need the predicate generically).
pub(crate) fn dist_sq_to_segment<P: Point>(z: P, a: P, b: P) -> f64 {
    let line = b - a;
    let len_sq = line.norm_sq();
    if len_sq == 0.0 {
        return z.dist_sq(a);
    }
    let t = ((z - a).dot(line) / len_sq).clamp(0.0, 1.0);
    z.dist_sq(a + line * t)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vec2::Vec2;
    use crate::vec3::Vec3;

    fn brute_pairs<P: Point>(pts: &[P], radius: f64) -> Vec<(usize, usize)> {
        let mut pairs = Vec::new();
        for i in 0..pts.len() {
            for j in (i + 1)..pts.len() {
                if pts[i].dist(pts[j]) <= radius {
                    pairs.push((i, j));
                }
            }
        }
        pairs
    }

    use crate::test_util::cloud;

    #[test]
    fn matches_brute_force_on_random_clouds() {
        for (n, span, radius) in [
            (1usize, 1.0, 1.0),
            (7, 2.0, 0.8),
            (64, 6.0, 1.0),
            (200, 10.0, 1.3),
        ] {
            let pts = cloud(n, span, n as u64);
            let grid = SpatialGrid::build(&pts, radius);
            assert_eq!(
                grid.pairs_within(radius),
                brute_pairs(&pts, radius),
                "n={n} span={span} radius={radius}"
            );
        }
    }

    #[test]
    fn boundary_distance_exactly_radius_counts() {
        // Closed predicate: |ij| == radius is an edge, including across cell
        // boundaries; anything measurably beyond is not.
        let pts = vec![
            Vec2::new(0.0, 0.0),
            Vec2::new(1.0, 0.0),
            Vec2::new(2.0, 0.0),
            Vec2::new(2.0, 1.0 + 1e-9),
        ];
        let grid = SpatialGrid::build(&pts, 1.0);
        assert_eq!(grid.pairs_within(1.0), vec![(0, 1), (1, 2)]);
    }

    #[test]
    fn query_radius_larger_than_cell() {
        let pts = cloud(80, 8.0, 3);
        let grid = SpatialGrid::build(&pts, 0.5);
        assert_eq!(grid.pairs_within(1.7), brute_pairs(&pts, 1.7));
    }

    #[test]
    fn negative_coordinates_and_probe_queries() {
        let pts = vec![
            Vec2::new(-2.3, -1.1),
            Vec2::new(-1.6, -1.0),
            Vec2::new(4.0, 4.0),
        ];
        let grid = SpatialGrid::build(&pts, 1.0);
        assert_eq!(grid.pairs_within(1.0), vec![(0, 1)]);
        let mut out = Vec::new();
        grid.query_within(Vec2::new(-2.0, -1.0), 0.5, &mut out);
        assert_eq!(out, vec![0, 1]);
        grid.query_within(Vec2::new(10.0, 10.0), 1.0, &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn works_in_three_dimensions() {
        let pts: Vec<Vec3> = (0..40)
            .map(|i| {
                let f = i as f64;
                Vec3::new((f * 0.37).sin() * 3.0, (f * 0.61).cos() * 3.0, f * 0.11)
            })
            .collect();
        let grid = SpatialGrid::build(&pts, 0.9);
        let mut brute = Vec::new();
        for i in 0..pts.len() {
            for j in (i + 1)..pts.len() {
                if pts[i].dist(pts[j]) <= 0.9 {
                    brute.push((i, j));
                }
            }
        }
        assert_eq!(grid.pairs_within(0.9), brute);
    }

    #[test]
    fn far_flung_cloud_falls_back_to_sparse_index() {
        // Two tight clusters separated by ~1e9 cells: the key bounding box
        // dwarfs the point count, so direct addressing must give way to the
        // sorted-key fallback — with identical results.
        let mut pts = cloud(40, 3.0, 9);
        pts.extend(
            cloud(40, 3.0, 10)
                .into_iter()
                .map(|p| p + Vec2::new(1e9, 1e9)),
        );
        let grid = SpatialGrid::build(&pts, 1.0);
        assert!(
            matches!(grid.index, CellIndex::Sparse { .. }),
            "1e9-cell span must not be directly addressed"
        );
        assert_eq!(grid.pairs_within(1.0), brute_pairs(&pts, 1.0));
        let mut out = Vec::new();
        grid.query_within(Vec2::new(1e9, 1e9), 2.0, &mut out);
        let brute: Vec<usize> = (0..pts.len())
            .filter(|&j| Vec2::new(1e9, 1e9).dist(pts[j]) <= 2.0)
            .collect();
        assert_eq!(out, brute);
    }

    #[test]
    fn compact_cloud_uses_dense_index() {
        let pts = cloud(64, 6.0, 4);
        let grid = SpatialGrid::build(&pts, 1.0);
        assert!(matches!(grid.index, CellIndex::Dense { .. }));
        assert_eq!(grid.pairs_within(1.0), brute_pairs(&pts, 1.0));
    }

    #[test]
    fn coincident_points_are_mutual_neighbors() {
        let pts = vec![Vec2::new(1.0, 1.0), Vec2::new(1.0, 1.0)];
        let grid = SpatialGrid::build(&pts, 1.0);
        assert_eq!(grid.pairs_within(0.0), vec![(0, 1)]);
    }

    #[test]
    fn empty_input() {
        let grid = SpatialGrid::<Vec2>::build(&[], 1.0);
        assert!(grid.is_empty());
        assert!(grid.pairs_within(1.0).is_empty());
    }

    #[test]
    #[should_panic(expected = "cell edge must be positive")]
    fn zero_cell_panics() {
        let _ = SpatialGrid::<Vec2>::build(&[Vec2::ZERO], 0.0);
    }

    #[test]
    fn annulus_matches_brute_force() {
        let pts = cloud(150, 9.0, 21);
        let grid = SpatialGrid::build(&pts, 1.0);
        let mut out = Vec::new();
        for (q, r_min, r_max) in [
            (Vec2::new(4.5, 4.5), 0.0, 1.0),
            (Vec2::new(4.5, 4.5), 2.0, 3.5),
            (Vec2::new(0.0, 0.0), 5.0, 5.2),
            (Vec2::new(4.0, 4.0), 0.5, 0.5),
        ] {
            grid.query_annulus(q, r_min, r_max, &mut out);
            let brute: Vec<usize> = (0..pts.len())
                .filter(|&j| {
                    let d = q.dist(pts[j]);
                    r_min <= d && d <= r_max
                })
                .collect();
            assert_eq!(out, brute, "q={q} r_min={r_min} r_max={r_max}");
        }
    }

    #[test]
    fn annulus_inner_skip_keeps_boundary_points() {
        // Points exactly on the inner radius are hits (closed predicate),
        // including ones sitting in cells the center-rejection test probes.
        let pts = vec![
            Vec2::new(2.0, 0.0),
            Vec2::new(0.0, 2.0),
            Vec2::new(0.5, 0.5),
            Vec2::new(3.0, 0.0),
        ];
        let grid = SpatialGrid::build(&pts, 0.4);
        let mut out = Vec::new();
        grid.query_annulus(Vec2::ZERO, 2.0, 2.5, &mut out);
        assert_eq!(out, vec![0, 1]);
    }

    #[test]
    #[should_panic(expected = "annulus needs")]
    fn annulus_inverted_bounds_panic() {
        let grid = SpatialGrid::build(&[Vec2::ZERO], 1.0);
        let mut out = Vec::new();
        grid.query_annulus(Vec2::ZERO, 2.0, 1.0, &mut out);
    }

    #[test]
    fn segment_query_matches_brute_force() {
        let pts = cloud(150, 8.0, 33);
        let grid = SpatialGrid::build(&pts, 1.0);
        let mut out = Vec::new();
        for (a, b, pad) in [
            (Vec2::new(1.0, 1.0), Vec2::new(6.0, 5.0), 0.3),
            (Vec2::new(0.0, 4.0), Vec2::new(8.0, 4.0), 0.05),
            (Vec2::new(3.0, 3.0), Vec2::new(3.0, 3.0), 0.5), // degenerate
        ] {
            grid.query_segment_within(a, b, pad, &mut out);
            let brute: Vec<usize> = (0..pts.len())
                .filter(|&j| dist_sq_to_segment(pts[j], a, b) <= pad * pad)
                .collect();
            assert_eq!(out, brute, "a={a} b={b} pad={pad}");
        }
    }

    #[test]
    fn segment_query_in_three_dimensions() {
        let pts: Vec<Vec3> = (0..60)
            .map(|i| {
                let f = i as f64;
                Vec3::new((f * 0.43).sin() * 2.0, (f * 0.29).cos() * 2.0, f * 0.07)
            })
            .collect();
        let grid = SpatialGrid::build(&pts, 0.8);
        let (a, b, pad) = (Vec3::new(-1.0, -1.0, 0.0), Vec3::new(1.5, 1.5, 3.0), 0.4);
        let mut out = Vec::new();
        grid.query_segment_within(a, b, pad, &mut out);
        let brute: Vec<usize> = (0..pts.len())
            .filter(|&j| dist_sq_to_segment(pts[j], a, b) <= pad * pad)
            .collect();
        assert_eq!(out, brute);
    }

    #[test]
    fn dist_sq_to_segment_basics() {
        let a = Vec2::ZERO;
        let b = Vec2::new(4.0, 0.0);
        assert_eq!(dist_sq_to_segment(Vec2::new(2.0, 3.0), a, b), 9.0);
        assert_eq!(dist_sq_to_segment(Vec2::new(-3.0, 0.0), a, b), 9.0);
        assert_eq!(dist_sq_to_segment(Vec2::new(6.0, 0.0), a, b), 4.0);
        // Degenerate segment: plain point distance.
        assert_eq!(dist_sq_to_segment(Vec2::new(1.0, 1.0), a, a), 2.0);
    }
}
