//! Two-dimensional Euclidean vectors/points.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

/// A point (or displacement vector) in the Euclidean plane.
///
/// `Vec2` deliberately conflates points and vectors: the OBLOT model works in
/// an affine plane where robots observe *relative* positions, so most
/// arithmetic mixes the two freely.
///
/// ```
/// use cohesion_geometry::Vec2;
/// let a = Vec2::new(3.0, 4.0);
/// assert_eq!(a.norm(), 5.0);
/// assert_eq!(a - a, Vec2::ZERO);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Vec2 {
    /// Horizontal coordinate.
    pub x: f64,
    /// Vertical coordinate.
    pub y: f64,
}

impl Vec2 {
    /// The origin / zero vector.
    pub const ZERO: Vec2 = Vec2 { x: 0.0, y: 0.0 };

    /// Creates a vector from its coordinates.
    #[inline]
    pub const fn new(x: f64, y: f64) -> Self {
        Vec2 { x, y }
    }

    /// The unit vector at counterclockwise angle `theta` from the `+x` axis.
    ///
    /// ```
    /// use cohesion_geometry::Vec2;
    /// let u = Vec2::from_angle(std::f64::consts::FRAC_PI_2);
    /// assert!((u - Vec2::new(0.0, 1.0)).norm() < 1e-12);
    /// ```
    #[inline]
    pub fn from_angle(theta: f64) -> Self {
        Vec2::new(theta.cos(), theta.sin())
    }

    /// Dot product.
    #[inline]
    pub fn dot(self, other: Vec2) -> f64 {
        self.x * other.x + self.y * other.y
    }

    /// Two-dimensional cross product (`z` component of the 3D cross product).
    ///
    /// Positive when `other` is counterclockwise from `self`.
    #[inline]
    pub fn cross(self, other: Vec2) -> f64 {
        self.x * other.y - self.y * other.x
    }

    /// The squared Euclidean norm. Cheaper than [`Vec2::norm`] when only
    /// comparisons are needed.
    #[inline]
    pub fn norm_sq(self) -> f64 {
        self.dot(self)
    }

    /// The Euclidean norm.
    #[inline]
    pub fn norm(self) -> f64 {
        self.norm_sq().sqrt()
    }

    /// Euclidean distance to another point.
    #[inline]
    pub fn dist(self, other: Vec2) -> f64 {
        (self - other).norm()
    }

    /// Squared Euclidean distance to another point.
    #[inline]
    pub fn dist_sq(self, other: Vec2) -> f64 {
        (self - other).norm_sq()
    }

    /// The vector rotated 90° counterclockwise.
    #[inline]
    pub fn perp(self) -> Vec2 {
        Vec2::new(-self.y, self.x)
    }

    /// The counterclockwise angle of this vector from the `+x` axis, in
    /// `(-π, π]`. The zero vector maps to `0`.
    #[inline]
    pub fn angle(self) -> f64 {
        if self.x == 0.0 && self.y == 0.0 {
            0.0
        } else {
            self.y.atan2(self.x)
        }
    }

    /// Rotates the vector counterclockwise by `theta` radians.
    ///
    /// ```
    /// use cohesion_geometry::Vec2;
    /// let v = Vec2::new(1.0, 0.0).rotate(std::f64::consts::PI);
    /// assert!((v - Vec2::new(-1.0, 0.0)).norm() < 1e-12);
    /// ```
    #[inline]
    pub fn rotate(self, theta: f64) -> Vec2 {
        let (s, c) = theta.sin_cos();
        Vec2::new(c * self.x - s * self.y, s * self.x + c * self.y)
    }

    /// The unit vector in this direction, or `None` for (near-)zero vectors.
    ///
    /// `eps` guards against amplifying floating-point noise into a bogus
    /// direction.
    #[inline]
    pub fn normalized(self, eps: f64) -> Option<Vec2> {
        let n = self.norm();
        if n <= eps {
            None
        } else {
            Some(self / n)
        }
    }

    /// Linear interpolation: `self` at `t = 0`, `other` at `t = 1`.
    #[inline]
    pub fn lerp(self, other: Vec2, t: f64) -> Vec2 {
        self + (other - self) * t
    }

    /// Componentwise minimum.
    #[inline]
    pub fn min(self, other: Vec2) -> Vec2 {
        Vec2::new(self.x.min(other.x), self.y.min(other.y))
    }

    /// Componentwise maximum.
    #[inline]
    pub fn max(self, other: Vec2) -> Vec2 {
        Vec2::new(self.x.max(other.x), self.y.max(other.y))
    }

    /// Returns `true` when both coordinates are finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.x.is_finite() && self.y.is_finite()
    }

    /// Mirror image across the `x` axis (used to model reflected local
    /// coordinate systems of robots without chirality).
    #[inline]
    pub fn reflect_x(self) -> Vec2 {
        Vec2::new(self.x, -self.y)
    }
}

impl Add for Vec2 {
    type Output = Vec2;
    #[inline]
    fn add(self, rhs: Vec2) -> Vec2 {
        Vec2::new(self.x + rhs.x, self.y + rhs.y)
    }
}

impl AddAssign for Vec2 {
    #[inline]
    fn add_assign(&mut self, rhs: Vec2) {
        *self = *self + rhs;
    }
}

impl Sub for Vec2 {
    type Output = Vec2;
    #[inline]
    fn sub(self, rhs: Vec2) -> Vec2 {
        Vec2::new(self.x - rhs.x, self.y - rhs.y)
    }
}

impl SubAssign for Vec2 {
    #[inline]
    fn sub_assign(&mut self, rhs: Vec2) {
        *self = *self - rhs;
    }
}

impl Neg for Vec2 {
    type Output = Vec2;
    #[inline]
    fn neg(self) -> Vec2 {
        Vec2::new(-self.x, -self.y)
    }
}

impl Mul<f64> for Vec2 {
    type Output = Vec2;
    #[inline]
    fn mul(self, rhs: f64) -> Vec2 {
        Vec2::new(self.x * rhs, self.y * rhs)
    }
}

impl Div<f64> for Vec2 {
    type Output = Vec2;
    #[inline]
    fn div(self, rhs: f64) -> Vec2 {
        Vec2::new(self.x / rhs, self.y / rhs)
    }
}

impl fmt::Display for Vec2 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:.6}, {:.6})", self.x, self.y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::{FRAC_PI_2, PI};

    #[test]
    fn arithmetic() {
        let a = Vec2::new(1.0, 2.0);
        let b = Vec2::new(3.0, -1.0);
        assert_eq!(a + b, Vec2::new(4.0, 1.0));
        assert_eq!(a - b, Vec2::new(-2.0, 3.0));
        assert_eq!(a * 2.0, Vec2::new(2.0, 4.0));
        assert_eq!(b / 2.0, Vec2::new(1.5, -0.5));
        assert_eq!(-a, Vec2::new(-1.0, -2.0));
    }

    #[test]
    fn dot_and_cross() {
        let a = Vec2::new(1.0, 0.0);
        let b = Vec2::new(0.0, 1.0);
        assert_eq!(a.dot(b), 0.0);
        assert_eq!(a.cross(b), 1.0);
        assert_eq!(b.cross(a), -1.0);
    }

    #[test]
    fn norms_and_distance() {
        let a = Vec2::new(3.0, 4.0);
        assert_eq!(a.norm(), 5.0);
        assert_eq!(a.norm_sq(), 25.0);
        assert_eq!(a.dist(Vec2::ZERO), 5.0);
        assert_eq!(a.dist_sq(Vec2::ZERO), 25.0);
    }

    #[test]
    fn angles_and_rotation() {
        assert!((Vec2::new(0.0, 2.0).angle() - FRAC_PI_2).abs() < 1e-12);
        assert_eq!(Vec2::ZERO.angle(), 0.0);
        let r = Vec2::new(1.0, 0.0).rotate(PI / 4.0);
        assert!((r.x - r.y).abs() < 1e-12);
        let u = Vec2::from_angle(1.234);
        assert!((u.norm() - 1.0).abs() < 1e-12);
        assert!((u.angle() - 1.234).abs() < 1e-12);
    }

    #[test]
    fn normalized_handles_zero() {
        assert_eq!(Vec2::ZERO.normalized(1e-12), None);
        let u = Vec2::new(0.0, -4.0).normalized(1e-12).unwrap();
        assert!((u - Vec2::new(0.0, -1.0)).norm() < 1e-12);
    }

    #[test]
    fn lerp_endpoints_and_midpoint() {
        let a = Vec2::new(1.0, 1.0);
        let b = Vec2::new(3.0, 5.0);
        assert_eq!(a.lerp(b, 0.0), a);
        assert_eq!(a.lerp(b, 1.0), b);
        assert_eq!(a.lerp(b, 0.5), Vec2::new(2.0, 3.0));
    }

    #[test]
    fn perp_is_ccw() {
        let a = Vec2::new(1.0, 0.0);
        assert_eq!(a.perp(), Vec2::new(0.0, 1.0));
        assert!(a.cross(a.perp()) > 0.0);
    }

    #[test]
    fn reflect_flips_y() {
        assert_eq!(Vec2::new(1.0, 2.0).reflect_x(), Vec2::new(1.0, -2.0));
    }
}
