//! Angular utilities: normalization, differences, and the *largest angular
//! gap* computation underlying the paper's target-destination rule (§5).
//!
//! The paper's algorithm moves a robot toward the midpoint of the safe-region
//! centres of the two distant neighbours “that define the largest sector
//! containing all of the distant neighbours”. Operationally: sort the
//! neighbour directions, find the largest gap between consecutive directions;
//! if that gap is `< π` the directions positively span the plane (the robot is
//! inside the convex hull of its distant neighbours) and the move is nil;
//! otherwise the two directions bounding the gap are the extreme pair.

use std::f64::consts::{PI, TAU};

/// Normalizes an angle into `(-π, π]`.
///
/// ```
/// use cohesion_geometry::angle::normalize;
/// use std::f64::consts::PI;
/// assert!((normalize(3.0 * PI) - PI).abs() < 1e-12);
/// assert!((normalize(-3.5 * PI) - 0.5 * PI).abs() < 1e-12);
/// ```
#[inline]
pub fn normalize(theta: f64) -> f64 {
    let mut t = theta % TAU;
    if t <= -PI {
        t += TAU;
    } else if t > PI {
        t -= TAU;
    }
    t
}

/// The signed smallest rotation taking angle `from` to angle `to`,
/// in `(-π, π]`.
///
/// ```
/// use cohesion_geometry::angle::signed_diff;
/// use std::f64::consts::PI;
/// assert!((signed_diff(0.1, -0.1) - (-0.2)).abs() < 1e-12);
/// assert!((signed_diff(-3.0, 3.0).abs() - (2.0 * PI - 6.0)).abs() < 1e-12);
/// ```
#[inline]
pub fn signed_diff(from: f64, to: f64) -> f64 {
    normalize(to - from)
}

/// The absolute smallest angle between two directions, in `[0, π]`.
#[inline]
pub fn abs_diff(a: f64, b: f64) -> f64 {
    signed_diff(a, b).abs()
}

/// Result of the largest-angular-gap analysis of a set of directions.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AngularGap {
    /// Width of the largest gap (radians, in `[0, 2π]`).
    pub width: f64,
    /// Index (into the input slice) of the direction on the clockwise side of
    /// the gap, i.e. the first direction encountered going counterclockwise
    /// *after* the gap.
    pub after: usize,
    /// Index of the direction on the counterclockwise side of the gap, i.e.
    /// the last direction encountered *before* the gap.
    pub before: usize,
}

/// Finds the largest angular gap in a set of directions (radians).
///
/// Returns `None` for an empty input. With a single direction the gap is the
/// full circle (`width = 2π`, `after == before == 0`).
///
/// The pair `(after, before)` is exactly the paper's “extreme pair”: all
/// input directions lie in the counterclockwise sector from
/// `angles[gap.after]` to `angles[gap.before]`, whose width is
/// `2π - gap.width`.
///
/// ```
/// use cohesion_geometry::angle::largest_gap;
/// let gap = largest_gap(&[0.0, 1.0, 2.5]).unwrap();
/// assert!((gap.width - (2.0 * std::f64::consts::PI - 2.5)).abs() < 1e-12);
/// assert_eq!((gap.after, gap.before), (0, 2));
/// ```
pub fn largest_gap(angles: &[f64]) -> Option<AngularGap> {
    if angles.is_empty() {
        return None;
    }
    if angles.len() == 1 {
        return Some(AngularGap {
            width: TAU,
            after: 0,
            before: 0,
        });
    }
    // Sort indices by normalized angle.
    let mut idx: Vec<usize> = (0..angles.len()).collect();
    let norm: Vec<f64> = angles.iter().map(|&a| normalize(a)).collect();
    idx.sort_by(|&i, &j| {
        norm[i]
            .partial_cmp(&norm[j])
            .expect("angles must be finite")
    });
    let mut best_width = f64::NEG_INFINITY;
    let mut best = (0usize, 0usize);
    for w in 0..idx.len() {
        let i = idx[w];
        let j = idx[(w + 1) % idx.len()];
        let mut gap = norm[j] - norm[i];
        if w + 1 == idx.len() {
            gap += TAU;
        }
        if gap > best_width {
            best_width = gap;
            best = (j, i);
        }
    }
    Some(AngularGap {
        width: best_width,
        after: best.0,
        before: best.1,
    })
}

/// Returns `true` when the given directions positively span the plane, i.e.
/// when the origin lies in the interior of the convex hull of the unit
/// vectors at those angles. Equivalent to “largest gap `< π`” up to `eps`.
///
/// In the paper's algorithm this is the condition under which the activated
/// robot performs the nil movement (§5: “the distant neighbours are not
/// properly contained in any halfspace”).
pub fn positively_spans(angles: &[f64], eps: f64) -> bool {
    match largest_gap(angles) {
        None => false,
        Some(g) => g.width < PI - eps,
    }
}

/// The angular span of a set of directions: the width of the smallest sector
/// containing all of them, `2π − largest_gap`. Returns `0` for empty input.
pub fn span(angles: &[f64]) -> f64 {
    match largest_gap(angles) {
        None => 0.0,
        Some(g) => (TAU - g.width).max(0.0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalize_range() {
        for k in -10..=10 {
            let t = normalize(0.3 + k as f64 * TAU);
            assert!((t - 0.3).abs() < 1e-9);
        }
        assert!((normalize(PI) - PI).abs() < 1e-12);
        assert!((normalize(-PI) - PI).abs() < 1e-12);
    }

    #[test]
    fn diff_is_antisymmetric() {
        let d = signed_diff(0.5, 1.7);
        assert!((d - 1.2).abs() < 1e-12);
        assert!((signed_diff(1.7, 0.5) + 1.2).abs() < 1e-12);
        assert!((abs_diff(0.5, 1.7) - 1.2).abs() < 1e-12);
    }

    #[test]
    fn largest_gap_two_points() {
        let g = largest_gap(&[0.0, PI / 2.0]).unwrap();
        assert!((g.width - 1.5 * PI).abs() < 1e-12);
        assert_eq!((g.after, g.before), (0, 1));
    }

    #[test]
    fn largest_gap_wraps() {
        // Directions at 3.0 and −3.0 rad straddle the ±π seam; the small gap
        // (through the seam) is 2π−6 ≈ 0.283, so the large gap is 6.0.
        let g = largest_gap(&[3.0, -3.0]).unwrap();
        assert!((g.width - 6.0).abs() < 1e-12);
    }

    #[test]
    fn single_direction_full_circle() {
        let g = largest_gap(&[1.0]).unwrap();
        assert_eq!(g.width, TAU);
    }

    #[test]
    fn spanning_detection() {
        // Three directions 120° apart positively span.
        assert!(positively_spans(&[0.0, TAU / 3.0, 2.0 * TAU / 3.0], 1e-9));
        // Two opposite directions do not (gap exactly π).
        assert!(!positively_spans(&[0.0, PI], 1e-9));
        // A half-plane cluster does not.
        assert!(!positively_spans(&[0.0, 0.5, 1.0], 1e-9));
    }

    #[test]
    fn span_of_cluster() {
        assert!((span(&[0.0, 0.5, 1.0]) - 1.0).abs() < 1e-12);
        assert_eq!(span(&[]), 0.0);
    }

    #[test]
    fn extreme_pair_brute_force_agreement() {
        // Compare against a brute-force O(n²) largest-gap search.
        let sets: Vec<Vec<f64>> = vec![
            vec![0.1, 0.9, 2.2, -2.0, 3.1],
            vec![-0.4, -0.5, -0.6],
            vec![1.0, 1.0001, -1.0],
        ];
        for angles in sets {
            let g = largest_gap(&angles).unwrap();
            // Brute force: for each ordered pair (i, j), the ccw arc from i
            // to j contains no other direction ⇒ candidate gap.
            let mut best = f64::NEG_INFINITY;
            for i in 0..angles.len() {
                for j in 0..angles.len() {
                    if i == j {
                        continue;
                    }
                    let w = {
                        let d = normalize(angles[j] - angles[i]);
                        if d <= 0.0 {
                            d + TAU
                        } else {
                            d
                        }
                    };
                    let empty = (0..angles.len()).all(|k| {
                        if k == i || k == j {
                            return true;
                        }
                        let d = {
                            let d = normalize(angles[k] - angles[i]);
                            if d < 0.0 {
                                d + TAU
                            } else {
                                d
                            }
                        };
                        d >= w - 1e-12
                    });
                    if empty && w > best {
                        best = w;
                    }
                }
            }
            assert!(
                (g.width - best).abs() < 1e-9,
                "gap {} vs brute {}",
                g.width,
                best
            );
        }
    }
}
