//! Circles and closed disks, with the ray-exit and intersection queries used
//! by safe-region constrained motion.

use crate::vec2::Vec2;
use serde::{Deserialize, Serialize};

/// A circle (boundary) or, depending on the query, the closed disk it bounds.
///
/// The paper's safe regions (`S^r_{Y0}(X0)` of §3.2.1, Ando's `V/2` disks,
/// Katreniak's two-disk unions) are all closed disks; this type provides the
/// containment, intersection, and “how far can I move along this ray and stay
/// inside” queries they need.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Circle {
    /// Centre of the circle.
    pub center: Vec2,
    /// Radius (non-negative; a zero radius is a point).
    pub radius: f64,
}

impl Circle {
    /// Creates a circle from centre and radius.
    ///
    /// # Panics
    ///
    /// Panics if `radius` is negative or non-finite.
    pub fn new(center: Vec2, radius: f64) -> Self {
        assert!(
            radius >= 0.0 && radius.is_finite(),
            "invalid circle radius {radius}"
        );
        Circle { center, radius }
    }

    /// Returns `true` when `p` lies in the closed disk, with slack `eps`.
    #[inline]
    pub fn contains(&self, p: Vec2, eps: f64) -> bool {
        self.center.dist(p) <= self.radius + eps
    }

    /// Returns `true` when `other` is entirely contained in this closed disk,
    /// with slack `eps`.
    pub fn contains_circle(&self, other: &Circle, eps: f64) -> bool {
        self.center.dist(other.center) + other.radius <= self.radius + eps
    }

    /// Signed distance from `p` to the boundary (negative inside the disk).
    #[inline]
    pub fn signed_dist(&self, p: Vec2) -> f64 {
        self.center.dist(p) - self.radius
    }

    /// The largest `t ≥ 0` such that `origin + t·dir` lies in the closed disk,
    /// or `None` when the ray misses the disk entirely (`dir` need not be
    /// normalized; the result is in units of `|dir|`).
    ///
    /// This is the “move as far as possible toward the goal while remaining
    /// inside the safe region” primitive of Ando's and Katreniak's algorithms.
    ///
    /// ```
    /// use cohesion_geometry::{Circle, Vec2};
    /// let c = Circle::new(Vec2::new(2.0, 0.0), 1.0);
    /// let t = c.ray_exit(Vec2::ZERO, Vec2::new(1.0, 0.0)).unwrap();
    /// assert!((t - 3.0).abs() < 1e-12);
    /// assert!(c.ray_exit(Vec2::ZERO, Vec2::new(0.0, 1.0)).is_none());
    /// ```
    pub fn ray_exit(&self, origin: Vec2, dir: Vec2) -> Option<f64> {
        let d = dir.norm_sq();
        if d == 0.0 {
            return if self.contains(origin, 0.0) {
                Some(0.0)
            } else {
                None
            };
        }
        // Solve |origin + t dir − c|² = r².
        let oc = origin - self.center;
        let b = oc.dot(dir);
        let c = oc.norm_sq() - self.radius * self.radius;
        let disc = b * b - d * c;
        if disc < 0.0 {
            return None;
        }
        let sq = disc.sqrt();
        let t_hi = (-b + sq) / d;
        if t_hi < 0.0 {
            None
        } else {
            Some(t_hi)
        }
    }

    /// Intersection points of two circle *boundaries*: zero, one (tangency,
    /// reported once), or two points. Coincident circles return an empty set.
    pub fn intersect(&self, other: &Circle) -> Vec<Vec2> {
        let d = self.center.dist(other.center);
        let (r0, r1) = (self.radius, other.radius);
        if d == 0.0 {
            return Vec::new(); // concentric: none or infinitely many
        }
        if d > r0 + r1 || d < (r0 - r1).abs() {
            return Vec::new();
        }
        let a = (r0 * r0 - r1 * r1 + d * d) / (2.0 * d);
        let h_sq = r0 * r0 - a * a;
        let u = (other.center - self.center) / d;
        let base = self.center + u * a;
        if h_sq <= 0.0 {
            return vec![base];
        }
        let h = h_sq.sqrt();
        let off = u.perp() * h;
        vec![base + off, base - off]
    }

    /// Returns `true` when the closed disks of the two circles intersect.
    #[inline]
    pub fn disks_intersect(&self, other: &Circle, eps: f64) -> bool {
        self.center.dist(other.center) <= self.radius + other.radius + eps
    }

    /// Area of the disk.
    #[inline]
    pub fn area(&self) -> f64 {
        std::f64::consts::PI * self.radius * self.radius
    }

    /// Area of the intersection (lens) of two closed disks.
    ///
    /// Used by the Figure 3 safe-region comparison experiment.
    pub fn lens_area(&self, other: &Circle) -> f64 {
        let d = self.center.dist(other.center);
        let (r, s) = (self.radius, other.radius);
        if d >= r + s {
            return 0.0;
        }
        if d <= (r - s).abs() {
            // Smaller disk entirely inside the larger.
            let m = r.min(s);
            return std::f64::consts::PI * m * m;
        }
        let alpha = ((d * d + r * r - s * s) / (2.0 * d * r))
            .clamp(-1.0, 1.0)
            .acos();
        let beta = ((d * d + s * s - r * r) / (2.0 * d * s))
            .clamp(-1.0, 1.0)
            .acos();
        r * r * (alpha - alpha.sin() * alpha.cos()) + s * s * (beta - beta.sin() * beta.cos())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    #[test]
    fn containment() {
        let c = Circle::new(Vec2::ZERO, 1.0);
        assert!(c.contains(Vec2::new(1.0, 0.0), 0.0));
        assert!(c.contains(Vec2::new(0.5, 0.5), 0.0));
        assert!(!c.contains(Vec2::new(1.1, 0.0), 1e-9));
        assert!(c.contains_circle(&Circle::new(Vec2::new(0.5, 0.0), 0.5), 1e-12));
        assert!(!c.contains_circle(&Circle::new(Vec2::new(0.6, 0.0), 0.5), 1e-12));
    }

    #[test]
    #[should_panic]
    fn negative_radius_panics() {
        let _ = Circle::new(Vec2::ZERO, -1.0);
    }

    #[test]
    fn ray_exit_from_inside() {
        let c = Circle::new(Vec2::ZERO, 2.0);
        let t = c
            .ray_exit(Vec2::new(1.0, 0.0), Vec2::new(1.0, 0.0))
            .unwrap();
        assert!((t - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ray_exit_behind() {
        let c = Circle::new(Vec2::new(-5.0, 0.0), 1.0);
        assert!(c.ray_exit(Vec2::ZERO, Vec2::new(1.0, 0.0)).is_none());
    }

    #[test]
    fn ray_exit_unnormalized_dir() {
        let c = Circle::new(Vec2::new(2.0, 0.0), 1.0);
        let t = c.ray_exit(Vec2::ZERO, Vec2::new(2.0, 0.0)).unwrap();
        assert!((t - 1.5).abs() < 1e-12, "t in units of |dir| = 2");
    }

    #[test]
    fn intersections() {
        let a = Circle::new(Vec2::ZERO, 1.0);
        let b = Circle::new(Vec2::new(1.0, 0.0), 1.0);
        let pts = a.intersect(&b);
        assert_eq!(pts.len(), 2);
        for p in pts {
            assert!((a.center.dist(p) - 1.0).abs() < 1e-12);
            assert!((b.center.dist(p) - 1.0).abs() < 1e-12);
        }
        // Tangent circles.
        let c = Circle::new(Vec2::new(2.0, 0.0), 1.0);
        let pts = a.intersect(&c);
        assert_eq!(pts.len(), 1);
        assert!((pts[0] - Vec2::new(1.0, 0.0)).norm() < 1e-9);
        // Disjoint.
        assert!(a
            .intersect(&Circle::new(Vec2::new(5.0, 0.0), 1.0))
            .is_empty());
    }

    #[test]
    fn lens_area_limits() {
        let a = Circle::new(Vec2::ZERO, 1.0);
        // Coincident-extent overlap: full area of the smaller disk.
        let inside = Circle::new(Vec2::new(0.1, 0.0), 0.2);
        assert!((a.lens_area(&inside) - inside.area()).abs() < 1e-12);
        // Disjoint: zero.
        assert_eq!(a.lens_area(&Circle::new(Vec2::new(3.0, 0.0), 1.0)), 0.0);
        // Symmetric half-overlap is positive and less than either area.
        let b = Circle::new(Vec2::new(1.0, 0.0), 1.0);
        let l = a.lens_area(&b);
        assert!(l > 0.0 && l < a.area());
        // Known value: two unit circles at distance 1: 2π/3 − √3/2.
        let expect = 2.0 * PI / 3.0 - 3f64.sqrt() / 2.0;
        assert!((l - expect).abs() < 1e-12);
    }
}
