//! Minimal enclosing cones of direction sets — the d-dimensional
//! generalization of the paper's “largest sector” target rule (§5, §6.3.2).
//!
//! In the plane the rule is exact: the two distant neighbours bounding the
//! largest angular gap define the sector, the motion direction is its
//! bisector, and the step length is `r·cos(half-angle)`. In higher dimension
//! the sector becomes a spherical cap of directions; we compute an enclosing
//! cap through the minimum enclosing ball of the unit direction vectors,
//! which reduces to the exact sector computation for coplanar directions and
//! yields a valid (safe-region respecting) axis/half-angle in general.

use crate::angle::{self};
use crate::ball::smallest_enclosing_ball;
use crate::point::Point;
use crate::vec2::Vec2;
use serde::{Deserialize, Serialize};
use std::f64::consts::FRAC_PI_2;

/// An enclosing cone of a set of directions: all directions lie within
/// `half_angle` of `axis`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Cone<P> {
    /// Unit vector along the cone axis.
    pub axis: P,
    /// Half-aperture in radians, in `[0, π]`.
    pub half_angle: f64,
}

/// Outcome of the sector/cone analysis of a robot's distant-neighbour
/// directions.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum SectorAnalysis<P> {
    /// No directions were supplied (no distant neighbours — cannot happen for
    /// the paper's algorithm, which always has at least one).
    Empty,
    /// The directions positively span the space: the robot lies in the convex
    /// hull of its distant neighbours and must stay put (§5).
    Surrounded,
    /// The directions fit in the cone; the axis is the motion direction and
    /// `half_angle < π/2` guarantees a positive admissible step.
    Cone(Cone<P>),
}

/// Exact planar sector analysis via the largest angular gap.
///
/// `dirs` need not be normalized; zero vectors are ignored. `eps` is the
/// angular slack used for the “spans the plane” decision.
///
/// ```
/// use cohesion_geometry::cone::{sector_2d, SectorAnalysis};
/// use cohesion_geometry::Vec2;
/// // Two directions 90° apart: axis is the bisector, half-angle 45°.
/// match sector_2d(&[Vec2::new(1.0, 0.0), Vec2::new(0.0, 1.0)], 1e-9) {
///     SectorAnalysis::Cone(c) => {
///         assert!((c.half_angle - std::f64::consts::FRAC_PI_4).abs() < 1e-9);
///     }
///     other => panic!("unexpected {other:?}"),
/// }
/// ```
pub fn sector_2d(dirs: &[Vec2], eps: f64) -> SectorAnalysis<Vec2> {
    let angles: Vec<f64> = dirs
        .iter()
        .filter_map(|d| d.normalized(1e-12).map(|u| u.angle()))
        .collect();
    if angles.is_empty() {
        return SectorAnalysis::Empty;
    }
    let gap = angle::largest_gap(&angles).expect("nonempty");
    if gap.width < std::f64::consts::PI - eps {
        return SectorAnalysis::Surrounded;
    }
    // The sector containing all directions is the complement of the gap,
    // running counterclockwise from `after` to `before`.
    let a = angle::normalize(angles[gap.after]);
    let span = (std::f64::consts::TAU - gap.width).max(0.0);
    if span / 2.0 >= FRAC_PI_2 - eps {
        // Half-angle ≥ π/2: the safe-region intersection degenerates to the
        // robot's own position (e.g. two diametrically opposite neighbours),
        // so the admissible step is zero — report Surrounded.
        return SectorAnalysis::Surrounded;
    }
    let axis = Vec2::from_angle(a + span / 2.0);
    SectorAnalysis::Cone(Cone {
        axis,
        half_angle: span / 2.0,
    })
}

/// Generic enclosing-cone analysis through the minimum enclosing ball of the
/// normalized directions. Works in any dimension; in the plane prefer
/// [`sector_2d`], which is exact and matches the paper's construction
/// point-for-point.
///
/// Returns [`SectorAnalysis::Surrounded`] when the enclosing cap subtends a
/// half-angle `≥ π/2 − eps` (no strictly positive step can respect all safe
/// regions) or when the cap centre direction degenerates.
pub fn enclosing_cone<P: Point>(dirs: &[P], eps: f64) -> SectorAnalysis<P> {
    let units: Vec<P> = dirs.iter().filter_map(|d| d.normalized(1e-12)).collect();
    if units.is_empty() {
        return SectorAnalysis::Empty;
    }
    let ball = smallest_enclosing_ball(&units);
    let axis = match ball.center.normalized(1e-9) {
        Some(a) => a,
        None => return SectorAnalysis::Surrounded,
    };
    let mut worst: f64 = 0.0;
    for u in &units {
        let c = axis.dot(*u).clamp(-1.0, 1.0);
        worst = worst.max(c.acos());
    }
    if worst >= FRAC_PI_2 - eps {
        SectorAnalysis::Surrounded
    } else {
        SectorAnalysis::Cone(Cone {
            axis,
            half_angle: worst,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vec3::Vec3;
    use std::f64::consts::{FRAC_PI_4, PI};

    #[test]
    fn sector_single_direction() {
        match sector_2d(&[Vec2::new(2.0, 0.0)], 1e-9) {
            SectorAnalysis::Cone(c) => {
                assert!((c.axis - Vec2::new(1.0, 0.0)).norm() < 1e-12);
                assert_eq!(c.half_angle, 0.0);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn sector_surrounded() {
        let dirs = [
            Vec2::from_angle(0.0),
            Vec2::from_angle(2.0 * PI / 3.0),
            Vec2::from_angle(4.0 * PI / 3.0),
        ];
        assert_eq!(sector_2d(&dirs, 1e-9), SectorAnalysis::Surrounded);
    }

    #[test]
    fn sector_empty() {
        assert_eq!(sector_2d(&[], 1e-9), SectorAnalysis::Empty);
        assert_eq!(sector_2d(&[Vec2::ZERO], 1e-9), SectorAnalysis::Empty);
    }

    #[test]
    fn sector_bisector() {
        let dirs = [
            Vec2::from_angle(0.2),
            Vec2::from_angle(1.0),
            Vec2::from_angle(0.5),
        ];
        match sector_2d(&dirs, 1e-9) {
            SectorAnalysis::Cone(c) => {
                assert!((c.axis.angle() - 0.6).abs() < 1e-9);
                assert!((c.half_angle - 0.4).abs() < 1e-9);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn sector_opposite_directions_surrounded() {
        // Gap exactly π on both sides: treated as surrounded (the paper's
        // intersection of safe regions is the single point Z).
        let dirs = [Vec2::new(1.0, 0.0), Vec2::new(-1.0, 0.0)];
        assert_eq!(sector_2d(&dirs, 1e-9), SectorAnalysis::Surrounded);
    }

    #[test]
    fn generic_cone_agrees_with_2d_on_plane() {
        let dirs2 = [Vec2::from_angle(0.3), Vec2::from_angle(0.9)];
        let c2 = match sector_2d(&dirs2, 1e-9) {
            SectorAnalysis::Cone(c) => c,
            other => panic!("unexpected {other:?}"),
        };
        let dirs3 = [Vec2::from_angle(0.3), Vec2::from_angle(0.9)];
        let cg = match enclosing_cone(&dirs3, 1e-9) {
            SectorAnalysis::Cone(c) => c,
            other => panic!("unexpected {other:?}"),
        };
        assert!((c2.axis - cg.axis).norm() < 1e-6);
        assert!((c2.half_angle - cg.half_angle).abs() < 1e-6);
    }

    #[test]
    fn generic_cone_3d() {
        let dirs = [
            Vec3::new(1.0, 0.1, 0.0),
            Vec3::new(1.0, -0.1, 0.0),
            Vec3::new(1.0, 0.0, 0.1),
            Vec3::new(1.0, 0.0, -0.1),
        ];
        match enclosing_cone(&dirs, 1e-9) {
            SectorAnalysis::Cone(c) => {
                assert!((c.axis - Vec3::new(1.0, 0.0, 0.0)).norm() < 1e-6);
                assert!(c.half_angle < FRAC_PI_4);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn generic_cone_surrounded_3d() {
        let dirs = [
            Vec3::new(1.0, 0.0, 0.0),
            Vec3::new(-1.0, 0.0, 0.0),
            Vec3::new(0.0, 1.0, 0.0),
            Vec3::new(0.0, -1.0, 0.0),
            Vec3::new(0.0, 0.0, 1.0),
            Vec3::new(0.0, 0.0, -1.0),
        ];
        assert_eq!(enclosing_cone(&dirs, 1e-9), SectorAnalysis::Surrounded);
    }
}
