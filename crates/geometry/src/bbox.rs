//! Axis-aligned bounding boxes — the *minbox* of the GCM baseline
//! (Cord-Landwehr et al., “Go to the Centre of the Minbox”, §1.2.2 of the
//! paper).

use crate::vec2::Vec2;
use serde::{Deserialize, Serialize};

/// An axis-aligned bounding box in the plane (the paper's *minbox* when built
/// from a configuration of robot positions).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Aabb {
    /// Componentwise minimum corner.
    pub min: Vec2,
    /// Componentwise maximum corner.
    pub max: Vec2,
}

impl Aabb {
    /// The minimal box containing all points; `None` on empty input.
    ///
    /// ```
    /// use cohesion_geometry::{Aabb, Vec2};
    /// let b = Aabb::from_points(&[Vec2::ZERO, Vec2::new(2.0, -1.0)]).unwrap();
    /// assert_eq!(b.center(), Vec2::new(1.0, -0.5));
    /// ```
    pub fn from_points(points: &[Vec2]) -> Option<Aabb> {
        let first = *points.first()?;
        let mut min = first;
        let mut max = first;
        for &p in &points[1..] {
            min = min.min(p);
            max = max.max(p);
        }
        Some(Aabb { min, max })
    }

    /// Centre of the box — the GCM target point.
    #[inline]
    pub fn center(&self) -> Vec2 {
        (self.min + self.max) * 0.5
    }

    /// Width and height as a vector.
    #[inline]
    pub fn extent(&self) -> Vec2 {
        self.max - self.min
    }

    /// Length of the box diagonal (a diameter proxy used by convergence-rate
    /// experiments).
    #[inline]
    pub fn diagonal(&self) -> f64 {
        self.extent().norm()
    }

    /// Returns `true` when `p` lies in the closed box, with slack `eps`.
    pub fn contains(&self, p: Vec2, eps: f64) -> bool {
        p.x >= self.min.x - eps
            && p.x <= self.max.x + eps
            && p.y >= self.min.y - eps
            && p.y <= self.max.y + eps
    }

    /// The smallest box containing both `self` and `other`.
    pub fn union(&self, other: &Aabb) -> Aabb {
        Aabb {
            min: self.min.min(other.min),
            max: self.max.max(other.max),
        }
    }

    /// Returns `true` when `other` fits inside `self` with slack `eps`.
    pub fn contains_box(&self, other: &Aabb, eps: f64) -> bool {
        self.contains(other.min, eps) && self.contains(other.max, eps)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_points_and_center() {
        assert!(Aabb::from_points(&[]).is_none());
        let b = Aabb::from_points(&[
            Vec2::new(1.0, 5.0),
            Vec2::new(-2.0, 3.0),
            Vec2::new(0.0, 7.0),
        ])
        .unwrap();
        assert_eq!(b.min, Vec2::new(-2.0, 3.0));
        assert_eq!(b.max, Vec2::new(1.0, 7.0));
        assert_eq!(b.center(), Vec2::new(-0.5, 5.0));
        assert_eq!(b.extent(), Vec2::new(3.0, 4.0));
        assert_eq!(b.diagonal(), 5.0);
    }

    #[test]
    fn containment_and_union() {
        let a = Aabb::from_points(&[Vec2::ZERO, Vec2::new(1.0, 1.0)]).unwrap();
        let b = Aabb::from_points(&[Vec2::new(0.25, 0.25), Vec2::new(0.5, 0.5)]).unwrap();
        assert!(a.contains_box(&b, 0.0));
        assert!(!b.contains_box(&a, 0.0));
        let c = Aabb::from_points(&[Vec2::new(2.0, -1.0)]).unwrap();
        let u = a.union(&c);
        assert_eq!(u.min, Vec2::new(0.0, -1.0));
        assert_eq!(u.max, Vec2::new(2.0, 1.0));
        assert!(a.contains(Vec2::new(0.5, 0.5), 0.0));
        assert!(!a.contains(Vec2::new(1.5, 0.5), 0.0));
    }
}
