//! Orientation and incidence predicates.
//!
//! These are the standard determinant-based planar predicates with explicit
//! tolerances. At simulation scale (coordinates `O(n·V)` with `V ≈ 1`) plain
//! `f64` evaluation leaves at least eight orders of magnitude between the
//! constants the paper's constructions rely on and floating-point noise, so
//! exact arithmetic is unnecessary (see DESIGN.md “Numerics”).

use crate::vec2::Vec2;

/// Orientation of the ordered triple `(a, b, c)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Orientation {
    /// `c` lies strictly to the left of the directed line `a → b`.
    CounterClockwise,
    /// `c` lies strictly to the right of the directed line `a → b`.
    Clockwise,
    /// `a`, `b`, `c` are collinear within tolerance.
    Collinear,
}

/// Twice the signed area of triangle `(a, b, c)`; positive when the triple is
/// counterclockwise.
///
/// ```
/// use cohesion_geometry::{Vec2, predicates::orient2d_value};
/// let v = orient2d_value(Vec2::ZERO, Vec2::new(1.0, 0.0), Vec2::new(0.0, 1.0));
/// assert_eq!(v, 1.0);
/// ```
#[inline]
pub fn orient2d_value(a: Vec2, b: Vec2, c: Vec2) -> f64 {
    (b - a).cross(c - a)
}

/// Classifies the orientation of `(a, b, c)` with tolerance `eps` on the
/// signed-area value.
pub fn orient2d(a: Vec2, b: Vec2, c: Vec2, eps: f64) -> Orientation {
    let v = orient2d_value(a, b, c);
    if v > eps {
        Orientation::CounterClockwise
    } else if v < -eps {
        Orientation::Clockwise
    } else {
        Orientation::Collinear
    }
}

/// Returns `true` when the three points are collinear within `eps`
/// (tolerance applies to twice the triangle area).
#[inline]
pub fn collinear(a: Vec2, b: Vec2, c: Vec2, eps: f64) -> bool {
    orient2d(a, b, c, eps) == Orientation::Collinear
}

/// The interior angle at vertex `q` of the polyline `p – q – r`, in `[0, π]`.
///
/// Degenerate inputs (a side of zero length) yield `0`.
///
/// This is the `∠(P, Q, R)` notation the paper uses throughout §7 (e.g. the
/// “essential co-linearity” condition `∠(R, Q, P) ∈ (π − ψ/2n, π]`).
pub fn angle_at(q: Vec2, p: Vec2, r: Vec2) -> f64 {
    let u = p - q;
    let v = r - q;
    let nu = u.norm();
    let nv = v.norm();
    if nu == 0.0 || nv == 0.0 {
        return 0.0;
    }
    let c = (u.dot(v) / (nu * nv)).clamp(-1.0, 1.0);
    c.acos()
}

/// Returns `true` when `p` lies within distance `eps` of the segment `ab`.
pub fn on_segment(p: Vec2, a: Vec2, b: Vec2, eps: f64) -> bool {
    crate::segment::Segment::new(a, b).dist_to_point(p) <= eps
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::{FRAC_PI_2, PI};

    #[test]
    fn orientation_cases() {
        let a = Vec2::ZERO;
        let b = Vec2::new(1.0, 0.0);
        assert_eq!(
            orient2d(a, b, Vec2::new(0.5, 1.0), 1e-12),
            Orientation::CounterClockwise
        );
        assert_eq!(
            orient2d(a, b, Vec2::new(0.5, -1.0), 1e-12),
            Orientation::Clockwise
        );
        assert_eq!(
            orient2d(a, b, Vec2::new(2.0, 0.0), 1e-12),
            Orientation::Collinear
        );
    }

    #[test]
    fn collinear_with_tolerance() {
        let a = Vec2::ZERO;
        let b = Vec2::new(1.0, 0.0);
        assert!(collinear(a, b, Vec2::new(0.5, 1e-13), 1e-12));
        assert!(!collinear(a, b, Vec2::new(0.5, 1e-3), 1e-12));
    }

    #[test]
    fn angle_at_vertex() {
        let q = Vec2::ZERO;
        assert!((angle_at(q, Vec2::new(1.0, 0.0), Vec2::new(0.0, 1.0)) - FRAC_PI_2).abs() < 1e-12);
        assert!((angle_at(q, Vec2::new(1.0, 0.0), Vec2::new(-1.0, 0.0)) - PI).abs() < 1e-12);
        assert_eq!(angle_at(q, q, Vec2::new(1.0, 0.0)), 0.0);
    }

    #[test]
    fn on_segment_tolerance() {
        let a = Vec2::ZERO;
        let b = Vec2::new(2.0, 0.0);
        assert!(on_segment(Vec2::new(1.0, 0.0), a, b, 1e-9));
        assert!(on_segment(Vec2::new(1.0, 1e-10), a, b, 1e-9));
        assert!(!on_segment(Vec2::new(1.0, 0.1), a, b, 1e-9));
        assert!(!on_segment(Vec2::new(3.0, 0.0), a, b, 1e-9));
    }
}
