//! Line segments: `PQ` in the paper's notation.

use crate::vec2::Vec2;
use serde::{Deserialize, Serialize};

/// A directed line segment from `a` to `b`.
///
/// ```
/// use cohesion_geometry::{Segment, Vec2};
/// let s = Segment::new(Vec2::ZERO, Vec2::new(2.0, 0.0));
/// assert_eq!(s.len(), 2.0);
/// assert_eq!(s.point_at(0.25), Vec2::new(0.5, 0.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Segment {
    /// Start point.
    pub a: Vec2,
    /// End point.
    pub b: Vec2,
}

impl Segment {
    /// Creates the segment from `a` to `b` (the two may coincide).
    #[inline]
    pub const fn new(a: Vec2, b: Vec2) -> Self {
        Segment { a, b }
    }

    /// Length `|ab|`.
    #[inline]
    pub fn len(&self) -> f64 {
        self.a.dist(self.b)
    }

    /// Returns `true` when the segment is degenerate (endpoints coincide).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.a == self.b
    }

    /// The point at parameter `t ∈ [0, 1]` along the segment (not clamped).
    #[inline]
    pub fn point_at(&self, t: f64) -> Vec2 {
        self.a.lerp(self.b, t)
    }

    /// The parameter of the point on the supporting line closest to `p`
    /// (unclamped; `0` maps to `a`, `1` to `b`). Degenerate segments return 0.
    pub fn project(&self, p: Vec2) -> f64 {
        let d = self.b - self.a;
        let len_sq = d.norm_sq();
        if len_sq == 0.0 {
            0.0
        } else {
            (p - self.a).dot(d) / len_sq
        }
    }

    /// The point of the (closed) segment closest to `p`.
    pub fn closest_point(&self, p: Vec2) -> Vec2 {
        let t = self.project(p).clamp(0.0, 1.0);
        self.point_at(t)
    }

    /// Euclidean distance from `p` to the closed segment.
    #[inline]
    pub fn dist_to_point(&self, p: Vec2) -> f64 {
        self.closest_point(p).dist(p)
    }

    /// The midpoint of the segment.
    #[inline]
    pub fn midpoint(&self) -> Vec2 {
        self.point_at(0.5)
    }

    /// Uniformly samples `n` points including both endpoints (for `n ≥ 2`);
    /// `n = 1` yields the midpoint; `n = 0` yields nothing.
    ///
    /// Used by the reach-region experiments, which quantify over all
    /// `X* ∈ X0X1` (Lemma 2).
    pub fn sample(&self, n: usize) -> Vec<Vec2> {
        match n {
            0 => Vec::new(),
            1 => vec![self.midpoint()],
            _ => (0..n)
                .map(|i| self.point_at(i as f64 / (n - 1) as f64))
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn closest_point_cases() {
        let s = Segment::new(Vec2::ZERO, Vec2::new(2.0, 0.0));
        // Interior projection.
        assert_eq!(s.closest_point(Vec2::new(1.0, 1.0)), Vec2::new(1.0, 0.0));
        // Clamped to endpoints.
        assert_eq!(s.closest_point(Vec2::new(-1.0, 1.0)), Vec2::ZERO);
        assert_eq!(s.closest_point(Vec2::new(5.0, -2.0)), Vec2::new(2.0, 0.0));
    }

    #[test]
    fn distance_to_point() {
        let s = Segment::new(Vec2::ZERO, Vec2::new(2.0, 0.0));
        assert_eq!(s.dist_to_point(Vec2::new(1.0, 3.0)), 3.0);
        assert_eq!(s.dist_to_point(Vec2::new(4.0, 0.0)), 2.0);
    }

    #[test]
    fn degenerate_segment() {
        let s = Segment::new(Vec2::new(1.0, 1.0), Vec2::new(1.0, 1.0));
        assert!(s.is_empty());
        assert_eq!(s.len(), 0.0);
        assert_eq!(s.closest_point(Vec2::ZERO), Vec2::new(1.0, 1.0));
        assert_eq!(s.project(Vec2::ZERO), 0.0);
    }

    #[test]
    fn sampling() {
        let s = Segment::new(Vec2::ZERO, Vec2::new(1.0, 0.0));
        assert!(s.sample(0).is_empty());
        assert_eq!(s.sample(1), vec![Vec2::new(0.5, 0.0)]);
        let pts = s.sample(5);
        assert_eq!(pts.len(), 5);
        assert_eq!(pts[0], s.a);
        assert_eq!(pts[4], s.b);
        assert_eq!(pts[2], Vec2::new(0.5, 0.0));
    }
}
