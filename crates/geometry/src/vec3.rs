//! Three-dimensional Euclidean vectors/points (paper §6.3.2 extension).

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

/// A point (or displacement vector) in three-dimensional Euclidean space.
///
/// Used by the higher-dimensional generalization of the convergence
/// algorithm, where safe regions become balls and the “largest sector” rule
/// becomes a minimal enclosing cone (see `cohesion_geometry::cone`).
///
/// ```
/// use cohesion_geometry::Vec3;
/// let a = Vec3::new(1.0, 2.0, 2.0);
/// assert_eq!(a.norm(), 3.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Vec3 {
    /// First coordinate.
    pub x: f64,
    /// Second coordinate.
    pub y: f64,
    /// Third coordinate.
    pub z: f64,
}

impl Vec3 {
    /// The origin / zero vector.
    pub const ZERO: Vec3 = Vec3 {
        x: 0.0,
        y: 0.0,
        z: 0.0,
    };

    /// Creates a vector from its coordinates.
    #[inline]
    pub const fn new(x: f64, y: f64, z: f64) -> Self {
        Vec3 { x, y, z }
    }

    /// Dot product.
    #[inline]
    pub fn dot(self, other: Vec3) -> f64 {
        self.x * other.x + self.y * other.y + self.z * other.z
    }

    /// Cross product.
    #[inline]
    pub fn cross(self, other: Vec3) -> Vec3 {
        Vec3::new(
            self.y * other.z - self.z * other.y,
            self.z * other.x - self.x * other.z,
            self.x * other.y - self.y * other.x,
        )
    }

    /// Squared Euclidean norm.
    #[inline]
    pub fn norm_sq(self) -> f64 {
        self.dot(self)
    }

    /// Euclidean norm.
    #[inline]
    pub fn norm(self) -> f64 {
        self.norm_sq().sqrt()
    }

    /// Euclidean distance to another point.
    #[inline]
    pub fn dist(self, other: Vec3) -> f64 {
        (self - other).norm()
    }

    /// Squared Euclidean distance to another point.
    #[inline]
    pub fn dist_sq(self, other: Vec3) -> f64 {
        (self - other).norm_sq()
    }

    /// The unit vector in this direction, or `None` for (near-)zero vectors.
    #[inline]
    pub fn normalized(self, eps: f64) -> Option<Vec3> {
        let n = self.norm();
        if n <= eps {
            None
        } else {
            Some(self / n)
        }
    }

    /// Linear interpolation: `self` at `t = 0`, `other` at `t = 1`.
    #[inline]
    pub fn lerp(self, other: Vec3, t: f64) -> Vec3 {
        self + (other - self) * t
    }

    /// Returns `true` when all coordinates are finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.x.is_finite() && self.y.is_finite() && self.z.is_finite()
    }
}

impl Add for Vec3 {
    type Output = Vec3;
    #[inline]
    fn add(self, rhs: Vec3) -> Vec3 {
        Vec3::new(self.x + rhs.x, self.y + rhs.y, self.z + rhs.z)
    }
}

impl AddAssign for Vec3 {
    #[inline]
    fn add_assign(&mut self, rhs: Vec3) {
        *self = *self + rhs;
    }
}

impl Sub for Vec3 {
    type Output = Vec3;
    #[inline]
    fn sub(self, rhs: Vec3) -> Vec3 {
        Vec3::new(self.x - rhs.x, self.y - rhs.y, self.z - rhs.z)
    }
}

impl SubAssign for Vec3 {
    #[inline]
    fn sub_assign(&mut self, rhs: Vec3) {
        *self = *self - rhs;
    }
}

impl Neg for Vec3 {
    type Output = Vec3;
    #[inline]
    fn neg(self) -> Vec3 {
        Vec3::new(-self.x, -self.y, -self.z)
    }
}

impl Mul<f64> for Vec3 {
    type Output = Vec3;
    #[inline]
    fn mul(self, rhs: f64) -> Vec3 {
        Vec3::new(self.x * rhs, self.y * rhs, self.z * rhs)
    }
}

impl Div<f64> for Vec3 {
    type Output = Vec3;
    #[inline]
    fn div(self, rhs: f64) -> Vec3 {
        Vec3::new(self.x / rhs, self.y / rhs, self.z / rhs)
    }
}

impl fmt::Display for Vec3 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:.6}, {:.6}, {:.6})", self.x, self.y, self.z)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        let a = Vec3::new(1.0, 2.0, 3.0);
        let b = Vec3::new(-1.0, 0.5, 2.0);
        assert_eq!(a + b, Vec3::new(0.0, 2.5, 5.0));
        assert_eq!(a - b, Vec3::new(2.0, 1.5, 1.0));
        assert_eq!(a * 2.0, Vec3::new(2.0, 4.0, 6.0));
        assert_eq!(a / 2.0, Vec3::new(0.5, 1.0, 1.5));
    }

    #[test]
    fn cross_is_orthogonal() {
        let a = Vec3::new(1.0, 2.0, 3.0);
        let b = Vec3::new(-2.0, 1.0, 0.5);
        let c = a.cross(b);
        assert!(c.dot(a).abs() < 1e-12);
        assert!(c.dot(b).abs() < 1e-12);
    }

    #[test]
    fn norm_and_normalize() {
        let a = Vec3::new(2.0, 3.0, 6.0);
        assert_eq!(a.norm(), 7.0);
        let u = a.normalized(1e-12).unwrap();
        assert!((u.norm() - 1.0).abs() < 1e-12);
        assert_eq!(Vec3::ZERO.normalized(1e-12), None);
    }

    #[test]
    fn lerp_midpoint() {
        let a = Vec3::new(0.0, 0.0, 0.0);
        let b = Vec3::new(2.0, 4.0, 6.0);
        assert_eq!(a.lerp(b, 0.5), Vec3::new(1.0, 2.0, 3.0));
    }
}
