//! Minimum enclosing balls via the Welzl algorithm, generic over dimension.
//!
//! The smallest enclosing circle (SEC) plays two roles in the paper:
//! Ando et al.'s baseline moves robots toward the centre of the SEC of their
//! visible neighbourhood (§3.1), and the congregation argument (§5,
//! Figure 16) reasons about the smallest bounding circle `Ξ` of the convex
//! hull and its (at most three) critical support points.

use crate::point::Point;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// A closed ball in a `P`-dimensional space (a disk when `P = Vec2`).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Ball<P> {
    /// Centre.
    pub center: P,
    /// Radius (non-negative).
    pub radius: f64,
}

impl<P: Point> Ball<P> {
    /// Creates a ball from centre and radius.
    ///
    /// # Panics
    ///
    /// Panics if `radius` is negative or non-finite.
    pub fn new(center: P, radius: f64) -> Self {
        assert!(
            radius >= 0.0 && radius.is_finite(),
            "invalid ball radius {radius}"
        );
        Ball { center, radius }
    }

    /// Returns `true` when `p` lies in the closed ball, with slack `eps`.
    #[inline]
    pub fn contains(&self, p: P, eps: f64) -> bool {
        self.center.dist(p) <= self.radius + eps
    }

    /// Returns `true` when every point lies in the closed ball (slack `eps`).
    pub fn contains_all(&self, points: &[P], eps: f64) -> bool {
        points.iter().all(|&p| self.contains(p, eps))
    }
}

/// The minimum enclosing ball of a point set (Welzl's algorithm, expected
/// linear time after shuffling; deterministic because the shuffle seed is
/// fixed).
///
/// The empty set yields a zero ball at the origin.
///
/// ```
/// use cohesion_geometry::{ball::smallest_enclosing_ball, Vec2};
/// let b = smallest_enclosing_ball(&[Vec2::ZERO, Vec2::new(2.0, 0.0)]);
/// assert!((b.center - Vec2::new(1.0, 0.0)).norm() < 1e-9);
/// assert!((b.radius - 1.0).abs() < 1e-9);
/// ```
pub fn smallest_enclosing_ball<P: Point>(points: &[P]) -> Ball<P> {
    smallest_enclosing_ball_with_support(points).0
}

/// As [`smallest_enclosing_ball`], additionally returning the support points
/// that lie on the ball's boundary (at most `DIM + 1` of them) — the
/// “critical points” `A_H, B_H, C_H` of the paper's Figure 16.
pub fn smallest_enclosing_ball_with_support<P: Point>(points: &[P]) -> (Ball<P>, Vec<P>) {
    if points.is_empty() {
        return (Ball::new(P::zero(), 0.0), Vec::new());
    }
    let mut pts: Vec<P> = points.to_vec();
    // Fixed seed: determinism matters more than adversarial resistance here.
    let mut rng = rand::rngs::SmallRng::seed_from_u64(0x5EC_BA11);
    pts.shuffle(&mut rng);
    let mut boundary: Vec<P> = Vec::with_capacity(P::DIM + 1);
    let ball = welzl(&pts, points.len(), &mut boundary);
    // Support points are extracted post hoc: any input point on the boundary
    // (deduplicated, capped at DIM + 1).
    let tol = WELZL_EPS * (1.0 + ball.radius) * 10.0;
    let mut support: Vec<P> = Vec::new();
    for &p in points {
        if (ball.center.dist(p) - ball.radius).abs() <= tol && !support.contains(&p) {
            support.push(p);
            if support.len() == P::DIM + 1 {
                break;
            }
        }
    }
    (ball, support)
}

/// Tolerance used for “is already inside” tests inside Welzl. Slightly loose
/// so near-boundary points do not cause support-set churn.
const WELZL_EPS: f64 = 1e-9;

fn welzl<P: Point>(pts: &[P], n: usize, boundary: &mut Vec<P>) -> Ball<P> {
    if n == 0 || boundary.len() == P::DIM + 1 {
        return trivial(boundary);
    }
    let p = pts[n - 1];
    let ball = welzl(pts, n - 1, boundary);
    if ball.contains(p, WELZL_EPS * (1.0 + ball.radius)) {
        return ball;
    }
    boundary.push(p);
    let ball = welzl(pts, n - 1, boundary);
    boundary.pop();
    ball
}

/// The smallest ball determined by ≤ DIM+1 boundary points, with degenerate
/// (e.g. collinear-triple) cases resolved by dropping redundant points.
fn trivial<P: Point>(boundary: &[P]) -> Ball<P> {
    match P::circumball(boundary) {
        Some(b) if b.radius.is_finite() => {
            // A circumball through degenerate points can be much larger than
            // the minimal ball over them (e.g. a nearly-collinear triple).
            // Try all proper subsets of size ≥ max(1, len−1) and keep the
            // smallest ball that still covers everything.
            let mut best = b;
            if boundary.len() >= 3 {
                for skip in 0..boundary.len() {
                    let sub: Vec<P> = boundary
                        .iter()
                        .enumerate()
                        .filter(|(i, _)| *i != skip)
                        .map(|(_, p)| *p)
                        .collect();
                    if let Some(cand) = P::circumball(&sub) {
                        if cand.radius < best.radius
                            && cand.contains_all(boundary, WELZL_EPS * (1.0 + cand.radius))
                        {
                            best = cand;
                        }
                    }
                }
            }
            best
        }
        _ => {
            // Degenerate boundary (collinear/coplanar): fall back to the
            // diametral ball of the farthest pair, which covers such sets.
            let mut best = Ball::new(boundary.first().copied().unwrap_or_else(P::zero), 0.0);
            let mut far = 0.0;
            for i in 0..boundary.len() {
                for j in (i + 1)..boundary.len() {
                    let d = boundary[i].dist(boundary[j]);
                    if d > far {
                        far = d;
                        let c = (boundary[i] + boundary[j]) * 0.5;
                        best = Ball::new(c, d / 2.0);
                    }
                }
            }
            best
        }
    }
}

/// Brute-force minimum enclosing ball for cross-checking in tests: tries all
/// boundary subsets of size ≤ DIM+1 and keeps the smallest enclosing
/// candidate. `O(n^{DIM+1})` — test-only.
pub fn smallest_enclosing_ball_brute<P: Point>(points: &[P]) -> Ball<P> {
    if points.is_empty() {
        return Ball::new(P::zero(), 0.0);
    }
    let n = points.len();
    let mut best: Option<Ball<P>> = None;
    let mut consider = |b: Ball<P>| {
        if b.contains_all(points, 1e-9 * (1.0 + b.radius)) {
            match &best {
                Some(cur) if cur.radius <= b.radius => {}
                _ => best = Some(b),
            }
        }
    };
    for i in 0..n {
        consider(Ball::new(points[i], 0.0));
        for j in (i + 1)..n {
            if let Some(b) = P::circumball(&[points[i], points[j]]) {
                consider(b);
            }
            for k in (j + 1)..n {
                if let Some(b) = P::circumball(&[points[i], points[j], points[k]]) {
                    consider(b);
                }
                if P::DIM >= 3 {
                    for l in (k + 1)..n {
                        if let Some(b) =
                            P::circumball(&[points[i], points[j], points[k], points[l]])
                        {
                            consider(b);
                        }
                    }
                }
            }
        }
    }
    best.expect("at least one candidate ball encloses the set")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vec2::Vec2;
    use crate::vec3::Vec3;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn empty_and_singleton() {
        let b = smallest_enclosing_ball::<Vec2>(&[]);
        assert_eq!(b.radius, 0.0);
        let b = smallest_enclosing_ball(&[Vec2::new(3.0, 4.0)]);
        assert_eq!(b.center, Vec2::new(3.0, 4.0));
        assert_eq!(b.radius, 0.0);
    }

    #[test]
    fn equilateral_triangle() {
        let pts = [
            Vec2::new(1.0, 0.0),
            Vec2::new(-0.5, 3f64.sqrt() / 2.0),
            Vec2::new(-0.5, -(3f64.sqrt()) / 2.0),
        ];
        let b = smallest_enclosing_ball(&pts);
        assert!(b.center.norm() < 1e-9);
        assert!((b.radius - 1.0).abs() < 1e-9);
    }

    #[test]
    fn obtuse_triangle_uses_diameter() {
        // Very obtuse triangle: SEC is the diametral circle of the long side.
        let pts = [Vec2::ZERO, Vec2::new(10.0, 0.0), Vec2::new(5.0, 0.1)];
        let b = smallest_enclosing_ball(&pts);
        assert!((b.center - Vec2::new(5.0, 0.0)).norm() < 1e-6);
        assert!((b.radius - 5.0).abs() < 1e-6);
    }

    #[test]
    fn collinear_points() {
        let pts: Vec<Vec2> = (0..7).map(|i| Vec2::new(i as f64, 0.0)).collect();
        let b = smallest_enclosing_ball(&pts);
        assert!((b.center - Vec2::new(3.0, 0.0)).norm() < 1e-9);
        assert!((b.radius - 3.0).abs() < 1e-9);
    }

    #[test]
    fn welzl_matches_brute_force_2d() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..60 {
            let n = rng.gen_range(1..12);
            let pts: Vec<Vec2> = (0..n)
                .map(|_| Vec2::new(rng.gen_range(-5.0..5.0), rng.gen_range(-5.0..5.0)))
                .collect();
            let fast = smallest_enclosing_ball(&pts);
            let brute = smallest_enclosing_ball_brute(&pts);
            assert!(
                (fast.radius - brute.radius).abs() < 1e-6,
                "radius mismatch {} vs {} for {:?}",
                fast.radius,
                brute.radius,
                pts
            );
            assert!(fast.contains_all(&pts, 1e-6));
        }
    }

    #[test]
    fn welzl_matches_brute_force_3d() {
        let mut rng = SmallRng::seed_from_u64(11);
        for _ in 0..30 {
            let n = rng.gen_range(1..10);
            let pts: Vec<Vec3> = (0..n)
                .map(|_| {
                    Vec3::new(
                        rng.gen_range(-5.0..5.0),
                        rng.gen_range(-5.0..5.0),
                        rng.gen_range(-5.0..5.0),
                    )
                })
                .collect();
            let fast = smallest_enclosing_ball(&pts);
            let brute = smallest_enclosing_ball_brute(&pts);
            assert!(
                (fast.radius - brute.radius).abs() < 1e-6,
                "radius mismatch {} vs {}",
                fast.radius,
                brute.radius
            );
            assert!(fast.contains_all(&pts, 1e-6));
        }
    }

    #[test]
    fn support_points_lie_on_boundary() {
        let mut rng = SmallRng::seed_from_u64(23);
        for _ in 0..20 {
            let n = rng.gen_range(3..15);
            let pts: Vec<Vec2> = (0..n)
                .map(|_| Vec2::new(rng.gen_range(-5.0..5.0), rng.gen_range(-5.0..5.0)))
                .collect();
            let (ball, support) = smallest_enclosing_ball_with_support(&pts);
            assert!(!support.is_empty());
            for s in &support {
                assert!(
                    (ball.center.dist(*s) - ball.radius).abs() < 1e-6,
                    "support point {s} not on boundary (r={}, d={})",
                    ball.radius,
                    ball.center.dist(*s)
                );
            }
        }
    }

    #[test]
    fn duplicated_points() {
        let p = Vec2::new(1.0, 2.0);
        let b = smallest_enclosing_ball(&[p, p, p, p]);
        assert_eq!(b.center, p);
        assert!(b.radius < 1e-12);
    }
}
