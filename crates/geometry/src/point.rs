//! The [`Point`] abstraction: a minimal vector-space interface letting the
//! convergence algorithms and the simulation engine be written once for the
//! plane and for three-dimensional space (paper §6.3.2).

use crate::ball::Ball;
use crate::vec2::Vec2;
use crate::vec3::Vec3;
use serde::{de::DeserializeOwned, Serialize};
use std::fmt::{Debug, Display};
use std::ops::{Add, Mul, Neg, Sub};

/// A point of a `DIM`-dimensional Euclidean space.
///
/// The trait is sealed in spirit (only [`Vec2`] and [`Vec3`] implement it in
/// this workspace) but deliberately left open so downstream users can plug in
/// higher-dimensional points: the paper's algorithm generalizes to any
/// dimension once `circumball` is provided.
pub trait Point:
    Copy
    + Debug
    + Display
    + PartialEq
    + Default
    + Add<Output = Self>
    + Sub<Output = Self>
    + Neg<Output = Self>
    + Mul<f64, Output = Self>
    + Serialize
    + DeserializeOwned
    + Send
    + Sync
    + 'static
{
    /// Dimension of the ambient space.
    const DIM: usize;

    /// The origin.
    fn zero() -> Self;

    /// Dot product.
    fn dot(self, other: Self) -> f64;

    /// Euclidean norm.
    fn norm(self) -> f64 {
        self.dot(self).sqrt()
    }

    /// Squared Euclidean norm.
    fn norm_sq(self) -> f64 {
        self.dot(self)
    }

    /// Euclidean distance to another point.
    fn dist(self, other: Self) -> f64 {
        (self - other).norm()
    }

    /// Squared Euclidean distance to another point.
    fn dist_sq(self, other: Self) -> f64 {
        (self - other).norm_sq()
    }

    /// Linear interpolation: `self` at `t = 0`, `other` at `t = 1`.
    fn lerp(self, other: Self, t: f64) -> Self {
        self + (other - self) * t
    }

    /// Unit vector in this direction, or `None` for (near-)zero vectors.
    fn normalized(self, eps: f64) -> Option<Self> {
        let n = self.norm();
        if n <= eps {
            None
        } else {
            Some(self * (1.0 / n))
        }
    }

    /// Returns `true` when all coordinates are finite.
    fn is_finite(self) -> bool;

    /// The smallest ball passing through all of `boundary`
    /// (`boundary.len() ≤ DIM + 1`); `None` when the points are so degenerate
    /// no finite ball fits (never happens for ≤ 2 points).
    ///
    /// This is the dimension-specific kernel of the generic Welzl algorithm
    /// in [`crate::ball`]: 2D needs circumcircles of up to 3 points, 3D
    /// circumspheres of up to 4.
    fn circumball(boundary: &[Self]) -> Option<Ball<Self>>;

    /// Coordinates as a slice-backed vector (for reporting / serialization of
    /// experiment rows).
    fn coords(self) -> Vec<f64>;

    /// One coordinate by axis index, without allocating (the hot-path
    /// counterpart of [`Point::coords`], used by the spatial grids to key
    /// cells inside the engine event loop).
    ///
    /// # Panics
    ///
    /// Panics when `axis ≥ DIM`.
    fn coord(self, axis: usize) -> f64;

    /// Reconstructs a point from coordinates (inverse of [`Point::coords`]).
    ///
    /// # Panics
    ///
    /// Panics when `coords.len() != DIM`.
    fn from_coords(coords: &[f64]) -> Self;
}

impl Point for Vec2 {
    const DIM: usize = 2;

    fn zero() -> Self {
        Vec2::ZERO
    }

    fn dot(self, other: Self) -> f64 {
        Vec2::dot(self, other)
    }

    fn is_finite(self) -> bool {
        Vec2::is_finite(self)
    }

    fn circumball(boundary: &[Self]) -> Option<Ball<Self>> {
        match boundary {
            [] => Some(Ball::new(Vec2::ZERO, 0.0)),
            [a] => Some(Ball::new(*a, 0.0)),
            [a, b] => {
                let c = (*a + *b) * 0.5;
                Some(Ball::new(c, c.dist(*a)))
            }
            [a, b, c] => circumcircle(*a, *b, *c),
            _ => None,
        }
    }

    fn coords(self) -> Vec<f64> {
        vec![self.x, self.y]
    }

    fn coord(self, axis: usize) -> f64 {
        match axis {
            0 => self.x,
            1 => self.y,
            _ => panic!("Vec2 has no axis {axis}"),
        }
    }

    fn from_coords(coords: &[f64]) -> Self {
        assert_eq!(coords.len(), 2, "Vec2 needs exactly two coordinates");
        Vec2::new(coords[0], coords[1])
    }
}

impl Point for Vec3 {
    const DIM: usize = 3;

    fn zero() -> Self {
        Vec3::ZERO
    }

    fn dot(self, other: Self) -> f64 {
        Vec3::dot(self, other)
    }

    fn is_finite(self) -> bool {
        Vec3::is_finite(self)
    }

    fn circumball(boundary: &[Self]) -> Option<Ball<Self>> {
        match boundary {
            [] => Some(Ball::new(Vec3::ZERO, 0.0)),
            [a] => Some(Ball::new(*a, 0.0)),
            [a, b] => {
                let c = (*a + *b) * 0.5;
                Some(Ball::new(c, c.dist(*a)))
            }
            [a, b, c] => circumsphere3(*a, *b, *c),
            [a, b, c, d] => circumsphere4(*a, *b, *c, *d),
            _ => None,
        }
    }

    fn coords(self) -> Vec<f64> {
        vec![self.x, self.y, self.z]
    }

    fn coord(self, axis: usize) -> f64 {
        match axis {
            0 => self.x,
            1 => self.y,
            2 => self.z,
            _ => panic!("Vec3 has no axis {axis}"),
        }
    }

    fn from_coords(coords: &[f64]) -> Self {
        assert_eq!(coords.len(), 3, "Vec3 needs exactly three coordinates");
        Vec3::new(coords[0], coords[1], coords[2])
    }
}

/// Circumcircle of three planar points; `None` when they are (numerically)
/// collinear, in which case no finite circumcircle exists.
fn circumcircle(a: Vec2, b: Vec2, c: Vec2) -> Option<Ball<Vec2>> {
    let ab = b - a;
    let ac = c - a;
    let d = 2.0 * ab.cross(ac);
    if d.abs() < 1e-14 {
        return None;
    }
    let ab2 = ab.norm_sq();
    let ac2 = ac.norm_sq();
    let ux = (ac.y * ab2 - ab.y * ac2) / d;
    let uy = (ab.x * ac2 - ac.x * ab2) / d;
    let center = a + Vec2::new(ux, uy);
    Some(Ball::new(center, center.dist(a)))
}

/// The smallest sphere through three points in space: its centre lies in the
/// points' plane, so this is the planar circumcircle embedded in 3D. `None`
/// for collinear points.
fn circumsphere3(a: Vec3, b: Vec3, c: Vec3) -> Option<Ball<Vec3>> {
    let ab = b - a;
    let ac = c - a;
    let n = ab.cross(ac);
    let n2 = n.norm_sq();
    if n2 < 1e-14 {
        return None;
    }
    // Standard formula: centre = a + (|ac|²·(n×ab) + |ab|²·(ac×n)) / (2|n|²).
    let center = a + (n.cross(ab) * ac.norm_sq() + ac.cross(n) * ab.norm_sq()) * (1.0 / (2.0 * n2));
    Some(Ball::new(center, center.dist(a)))
}

/// Circumsphere of four points; `None` when they are (numerically) coplanar.
fn circumsphere4(a: Vec3, b: Vec3, c: Vec3, d: Vec3) -> Option<Ball<Vec3>> {
    // Solve the 3×3 linear system 2(p_i − a)·x = |p_i|² − |a|² for the centre.
    let rows = [b - a, c - a, d - a];
    let rhs = [
        (b.norm_sq() - a.norm_sq()) / 2.0,
        (c.norm_sq() - a.norm_sq()) / 2.0,
        (d.norm_sq() - a.norm_sq()) / 2.0,
    ];
    let det = rows[0].dot(rows[1].cross(rows[2]));
    if det.abs() < 1e-14 {
        return None;
    }
    // Cramer's rule.
    let m = |r0: Vec3, r1: Vec3, r2: Vec3| r0.dot(r1.cross(r2));
    let x = m(
        Vec3::new(rhs[0], rows[0].y, rows[0].z),
        Vec3::new(rhs[1], rows[1].y, rows[1].z),
        Vec3::new(rhs[2], rows[2].y, rows[2].z),
    ) / det;
    let y = m(
        Vec3::new(rows[0].x, rhs[0], rows[0].z),
        Vec3::new(rows[1].x, rhs[1], rows[1].z),
        Vec3::new(rows[2].x, rhs[2], rows[2].z),
    ) / det;
    let z = m(
        Vec3::new(rows[0].x, rows[0].y, rhs[0]),
        Vec3::new(rows[1].x, rows[1].y, rhs[1]),
        Vec3::new(rows[2].x, rows[2].y, rhs[2]),
    ) / det;
    let center = Vec3::new(x, y, z);
    Some(Ball::new(center, center.dist(a)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn circumcircle_right_triangle() {
        // Right triangle: circumcentre at hypotenuse midpoint.
        let ball =
            Vec2::circumball(&[Vec2::ZERO, Vec2::new(2.0, 0.0), Vec2::new(0.0, 2.0)]).unwrap();
        assert!((ball.center - Vec2::new(1.0, 1.0)).norm() < 1e-12);
        assert!((ball.radius - 2f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn circumcircle_collinear_is_none() {
        assert!(
            Vec2::circumball(&[Vec2::ZERO, Vec2::new(1.0, 0.0), Vec2::new(2.0, 0.0)]).is_none()
        );
    }

    #[test]
    fn two_point_ball_is_diametral() {
        let ball = Vec2::circumball(&[Vec2::ZERO, Vec2::new(2.0, 0.0)]).unwrap();
        assert_eq!(ball.center, Vec2::new(1.0, 0.0));
        assert_eq!(ball.radius, 1.0);
    }

    #[test]
    fn circumsphere3_equilateral() {
        let a = Vec3::new(1.0, 0.0, 0.0);
        let b = Vec3::new(-0.5, 3f64.sqrt() / 2.0, 0.0);
        let c = Vec3::new(-0.5, -(3f64.sqrt()) / 2.0, 0.0);
        let ball = Vec3::circumball(&[a, b, c]).unwrap();
        assert!(ball.center.norm() < 1e-12);
        assert!((ball.radius - 1.0).abs() < 1e-12);
    }

    #[test]
    fn circumsphere4_regular() {
        // Octahedron vertices subset: (±1,0,0),(0,±1,0) lie on the unit
        // sphere with one more point (0,0,1).
        let ball = Vec3::circumball(&[
            Vec3::new(1.0, 0.0, 0.0),
            Vec3::new(-1.0, 0.0, 0.0),
            Vec3::new(0.0, 1.0, 0.0),
            Vec3::new(0.0, 0.0, 1.0),
        ])
        .unwrap();
        assert!(ball.center.norm() < 1e-12);
        assert!((ball.radius - 1.0).abs() < 1e-12);
    }

    #[test]
    fn circumsphere4_coplanar_is_none() {
        assert!(Vec3::circumball(&[
            Vec3::ZERO,
            Vec3::new(1.0, 0.0, 0.0),
            Vec3::new(0.0, 1.0, 0.0),
            Vec3::new(1.0, 1.0, 0.0),
        ])
        .is_none());
    }
}
