//! Convex hulls and the hull-nesting queries behind the paper's congregation
//! argument (§5: “the convex hulls of successive configurations are properly
//! nested”).

use crate::predicates::orient2d_value;
use crate::vec2::Vec2;
use serde::{Deserialize, Serialize};

/// A convex polygon given by its vertices in counterclockwise order
/// (no three consecutive vertices collinear). May be degenerate: a point
/// (one vertex) or a segment (two vertices).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ConvexHull {
    vertices: Vec<Vec2>,
}

/// Computes the convex hull of a point set (Andrew's monotone chain,
/// `O(n log n)`). Duplicate points are tolerated.
///
/// ```
/// use cohesion_geometry::{hull::convex_hull, Vec2};
/// let h = convex_hull(&[
///     Vec2::ZERO,
///     Vec2::new(1.0, 0.0),
///     Vec2::new(1.0, 1.0),
///     Vec2::new(0.5, 0.5), // interior
/// ]);
/// assert_eq!(h.vertices().len(), 3);
/// ```
pub fn convex_hull(points: &[Vec2]) -> ConvexHull {
    let mut pts: Vec<Vec2> = points.to_vec();
    pts.sort_by(|a, b| {
        (a.x, a.y)
            .partial_cmp(&(b.x, b.y))
            .expect("points must be finite")
    });
    pts.dedup();
    if pts.len() <= 2 {
        return ConvexHull { vertices: pts };
    }
    let mut lower: Vec<Vec2> = Vec::with_capacity(pts.len());
    for &p in &pts {
        while lower.len() >= 2
            && orient2d_value(lower[lower.len() - 2], lower[lower.len() - 1], p) <= 0.0
        {
            lower.pop();
        }
        lower.push(p);
    }
    let mut upper: Vec<Vec2> = Vec::with_capacity(pts.len());
    for &p in pts.iter().rev() {
        while upper.len() >= 2
            && orient2d_value(upper[upper.len() - 2], upper[upper.len() - 1], p) <= 0.0
        {
            upper.pop();
        }
        upper.push(p);
    }
    lower.pop();
    upper.pop();
    lower.extend(upper);
    if lower.is_empty() {
        // All points collinear: keep the two extremes.
        let a = pts[0];
        let b = *pts.last().expect("nonempty");
        let vertices = if a == b { vec![a] } else { vec![a, b] };
        return ConvexHull { vertices };
    }
    ConvexHull { vertices: lower }
}

impl ConvexHull {
    /// The hull vertices in counterclockwise order.
    pub fn vertices(&self) -> &[Vec2] {
        &self.vertices
    }

    /// Number of vertices.
    pub fn len(&self) -> usize {
        self.vertices.len()
    }

    /// Returns `true` for the hull of an empty point set.
    pub fn is_empty(&self) -> bool {
        self.vertices.is_empty()
    }

    /// Perimeter of the hull (`0` for a point; `2·len` for a segment, its
    /// boundary walked both ways, consistent with treating it as a degenerate
    /// polygon — the paper's shrinkage lemma (Lemma 8) only ever compares
    /// perimeters of nondegenerate hulls).
    pub fn perimeter(&self) -> f64 {
        match self.vertices.len() {
            0 | 1 => 0.0,
            2 => 2.0 * self.vertices[0].dist(self.vertices[1]),
            n => (0..n)
                .map(|i| self.vertices[i].dist(self.vertices[(i + 1) % n]))
                .sum(),
        }
    }

    /// Area enclosed by the hull (shoelace formula; `0` for degenerate hulls).
    pub fn area(&self) -> f64 {
        let n = self.vertices.len();
        if n < 3 {
            return 0.0;
        }
        let mut s = 0.0;
        for i in 0..n {
            s += self.vertices[i].cross(self.vertices[(i + 1) % n]);
        }
        s / 2.0
    }

    /// Diameter: the maximum distance between two vertices, via rotating
    /// calipers (`O(h)` for hulls with at least three vertices; degenerate
    /// hulls fall back to the direct computation).
    pub fn diameter(&self) -> f64 {
        let n = self.vertices.len();
        if n < 3 {
            return self.diameter_brute();
        }
        // Rotating calipers: walk antipodal pairs around the CCW hull.
        let area2 = |a: Vec2, b: Vec2, c: Vec2| (b - a).cross(c - a).abs();
        let mut best = 0.0_f64;
        let mut j = 1;
        for i in 0..n {
            let a = self.vertices[i];
            let b = self.vertices[(i + 1) % n];
            // Advance j while the triangle area (≈ distance from the edge)
            // keeps growing: j ends at the vertex antipodal to edge (a, b).
            while area2(a, b, self.vertices[(j + 1) % n]) > area2(a, b, self.vertices[j]) {
                j = (j + 1) % n;
            }
            best = best
                .max(a.dist(self.vertices[j]))
                .max(b.dist(self.vertices[j]));
        }
        best
    }

    /// Brute-force diameter (`O(h²)`); used by degenerate hulls and as a
    /// cross-check oracle in tests.
    pub fn diameter_brute(&self) -> f64 {
        let mut best = 0.0_f64;
        for i in 0..self.vertices.len() {
            for j in (i + 1)..self.vertices.len() {
                best = best.max(self.vertices[i].dist(self.vertices[j]));
            }
        }
        best
    }

    /// Returns `true` when `p` lies inside or on the hull, with slack `eps`
    /// (distance to the hull boundary for outside points).
    pub fn contains(&self, p: Vec2, eps: f64) -> bool {
        match self.vertices.len() {
            0 => false,
            1 => self.vertices[0].dist(p) <= eps,
            2 => {
                crate::segment::Segment::new(self.vertices[0], self.vertices[1]).dist_to_point(p)
                    <= eps
            }
            n => {
                for i in 0..n {
                    let a = self.vertices[i];
                    let b = self.vertices[(i + 1) % n];
                    // For a CCW polygon, interior points are on the left of
                    // every edge. Allow eps slack scaled by edge length (the
                    // cross product is distance × |ab|).
                    if orient2d_value(a, b, p) < -eps * a.dist(b).max(1e-300) {
                        return false;
                    }
                }
                true
            }
        }
    }

    /// Returns `true` when `other` is contained in `self` (every vertex of
    /// `other` inside, with slack `eps`). For convex polygons this is exact
    /// containment. This is the nested-hull check `CH_{t⁺} ⊆ CH_t` of §5.
    pub fn contains_hull(&self, other: &ConvexHull, eps: f64) -> bool {
        other.vertices.iter().all(|&v| self.contains(v, eps))
    }

    /// The vertex farthest from `p` (useful for hull-radius style measures);
    /// `None` for an empty hull.
    pub fn farthest_vertex(&self, p: Vec2) -> Option<Vec2> {
        self.vertices
            .iter()
            .copied()
            .max_by(|a, b| a.dist_sq(p).partial_cmp(&b.dist_sq(p)).expect("finite"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn square() -> Vec<Vec2> {
        vec![
            Vec2::ZERO,
            Vec2::new(2.0, 0.0),
            Vec2::new(2.0, 2.0),
            Vec2::new(0.0, 2.0),
            Vec2::new(1.0, 1.0), // interior
            Vec2::new(1.0, 0.0), // edge point
        ]
    }

    #[test]
    fn hull_of_square() {
        let h = convex_hull(&square());
        assert_eq!(h.len(), 4);
        assert!((h.perimeter() - 8.0).abs() < 1e-12);
        assert!((h.area() - 4.0).abs() < 1e-12);
        assert!((h.diameter() - 8f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn hull_is_ccw() {
        let h = convex_hull(&square());
        assert!(h.area() > 0.0, "shoelace area positive ⇒ CCW");
    }

    #[test]
    fn degenerate_hulls() {
        let h = convex_hull(&[]);
        assert!(h.is_empty());
        assert_eq!(h.perimeter(), 0.0);
        let h = convex_hull(&[Vec2::new(1.0, 1.0), Vec2::new(1.0, 1.0)]);
        assert_eq!(h.len(), 1);
        let h = convex_hull(&[Vec2::ZERO, Vec2::new(1.0, 0.0), Vec2::new(3.0, 0.0)]);
        assert_eq!(h.len(), 2);
        assert!((h.diameter() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn containment() {
        let h = convex_hull(&square());
        assert!(h.contains(Vec2::new(1.0, 1.0), 1e-9));
        assert!(h.contains(Vec2::new(0.0, 0.0), 1e-9)); // vertex
        assert!(h.contains(Vec2::new(1.0, 0.0), 1e-9)); // edge
        assert!(!h.contains(Vec2::new(3.0, 1.0), 1e-9));
        assert!(!h.contains(Vec2::new(-0.1, 1.0), 1e-9));
    }

    #[test]
    fn nested_hulls() {
        let outer = convex_hull(&square());
        let inner = convex_hull(&[
            Vec2::new(0.5, 0.5),
            Vec2::new(1.5, 0.5),
            Vec2::new(1.0, 1.5),
        ]);
        assert!(outer.contains_hull(&inner, 1e-9));
        assert!(!inner.contains_hull(&outer, 1e-9));
    }

    #[test]
    fn calipers_match_brute_force() {
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(99);
        for _ in 0..50 {
            let n = rng.gen_range(3..40);
            let pts: Vec<Vec2> = (0..n)
                .map(|_| Vec2::new(rng.gen_range(-5.0..5.0), rng.gen_range(-5.0..5.0)))
                .collect();
            let h = convex_hull(&pts);
            assert!(
                (h.diameter() - h.diameter_brute()).abs() < 1e-9,
                "calipers {} vs brute {} on {:?}",
                h.diameter(),
                h.diameter_brute(),
                pts
            );
        }
    }

    #[test]
    fn farthest_vertex() {
        let h = convex_hull(&square());
        let f = h.farthest_vertex(Vec2::ZERO).unwrap();
        assert_eq!(f, Vec2::new(2.0, 2.0));
        assert!(convex_hull(&[]).farthest_vertex(Vec2::ZERO).is_none());
    }
}
