//! An incrementally-maintained uniform grid for point sets that change one
//! point at a time.
//!
//! [`SpatialGrid`](crate::SpatialGrid) is built once over a frozen point set
//! — perfect for visibility-graph construction, useless for the simulation
//! engine, whose robot positions change at every `MoveEnd`. `DynamicGrid`
//! supports O(1)-ish insert/remove of individual points while keeping the
//! determinism contract of its static sibling: no hashing, no randomized
//! iteration, each bucket holds point indices ascending, and probe
//! traversal is cell-lexicographic — results are bit-for-bit reproducible
//! across runs and platforms.
//!
//! Storage mirrors `SpatialGrid`'s two regimes, but mutable: cells inside a
//! caller-declared *dense extent* (the padded bounding box of the expected
//! working area, e.g. a swarm's initial configuration — which the paper's
//! hull-diminishing dynamics never leave) are direct-addressed, so a probe
//! is pure arithmetic over contiguous rows; stray points outside the extent
//! spill into a sorted `BTreeMap` that is empty in the common case and
//! checked only when non-empty.
//!
//! Unlike `SpatialGrid`, query methods **append** to the caller's buffer
//! without clearing or sorting: the engine merges grid hits with its motile
//! side-list and sorts the union once, so sorting here would be wasted
//! work. Buckets emptied by [`DynamicGrid::remove`] keep their allocation —
//! a robot oscillating between two cells re-enters warm buckets without
//! touching the allocator, which is what makes the engine's per-event grid
//! maintenance allocation-free in the steady state.

use crate::grid::{cell_key, max_corner, min_corner, CellKey, KEY_AXES};
use crate::point::Point;
use std::collections::BTreeMap;

/// Direct addressing covers at most `max(DENSE_MIN_CELLS,
/// DENSE_CELLS_PER_POINT · capacity)` cells; larger extents degrade
/// gracefully to the sorted-map representation for every cell.
const DENSE_CELLS_PER_POINT: i128 = 16;
const DENSE_MIN_CELLS: i128 = 4096;

/// How many cells of slack the dense extent keeps around the declared
/// working area, so bounded wandering (motion error, small hull growth)
/// stays on the fast path.
const DENSE_PAD_CELLS: i64 = 4;

/// A uniform grid over a mutable point set with stable integer identities.
///
/// Points are addressed by a caller-chosen dense index in `0..capacity`;
/// each index is either *present* (indexed at some position) or *absent*.
/// The engine maps robot indices straight onto grid indices and keeps
/// exactly the stationary robots present.
///
/// ```
/// use cohesion_geometry::{DynamicGrid, Vec2};
/// let mut grid = DynamicGrid::new(3, 1.0);
/// grid.insert(0, Vec2::new(0.0, 0.0));
/// grid.insert(1, Vec2::new(0.5, 0.0));
/// grid.insert(2, Vec2::new(3.0, 0.0));
/// let mut out = Vec::new();
/// grid.query_within(Vec2::new(0.1, 0.0), 1.0, &mut out);
/// out.sort_unstable();
/// assert_eq!(out, vec![0, 1]);
/// grid.remove(1);
/// out.clear();
/// grid.query_within(Vec2::new(0.1, 0.0), 1.0, &mut out);
/// assert_eq!(out, vec![0]);
/// ```
#[derive(Debug, Clone)]
pub struct DynamicGrid<P: Point> {
    cell: f64,
    /// Low corner of the direct-addressed extent (valid when `dense_cells >
    /// 0`).
    dense_min: CellKey,
    /// Extent dims per axis, ≥ 1 (axes beyond `P::DIM` are 1). All-zero
    /// sentinel when no dense extent exists.
    dense_dims: CellKey,
    /// Row-major buckets of the dense extent; `(index, position)` pairs,
    /// index-ascending within a bucket.
    dense: Vec<Vec<(u32, P)>>,
    /// Cells outside the dense extent (empty in the common case).
    outliers: BTreeMap<CellKey, Vec<(u32, P)>>,
    /// Per-index presence: the cell key and position of each present point.
    entries: Vec<Option<(CellKey, P)>>,
    /// Number of present points.
    len: usize,
}

impl<P: Point> DynamicGrid<P> {
    /// An empty grid for indices `0..capacity` with the given cell edge and
    /// no dense extent (every cell lives in the sorted map). Prefer
    /// [`DynamicGrid::with_extent`] when the working area is known.
    ///
    /// # Panics
    ///
    /// Panics when `cell` is not positive and finite, when `capacity`
    /// overflows `u32`, or when `P::DIM` exceeds the supported 3 axes.
    pub fn new(capacity: usize, cell: f64) -> Self {
        Self::with_extent(capacity, cell, &[])
    }

    /// An empty grid whose dense (direct-addressed) extent covers the
    /// bounding box of `working_area`, padded by a few cells of slack.
    /// Points may still be inserted anywhere — cells outside the extent
    /// just take the slower sorted-map path. An oversized or empty working
    /// area yields no dense extent at all.
    ///
    /// # Panics
    ///
    /// As for [`DynamicGrid::new`].
    pub fn with_extent(capacity: usize, cell: f64, working_area: &[P]) -> Self {
        assert!(cell > 0.0 && cell.is_finite(), "cell edge must be positive");
        assert!(
            P::DIM <= KEY_AXES,
            "DynamicGrid supports up to {KEY_AXES} dimensions"
        );
        assert!(u32::try_from(capacity).is_ok(), "capacity fits in u32");
        let (dense_min, dense_dims, cells) = dense_extent::<P>(working_area, cell, capacity);
        DynamicGrid {
            cell,
            dense_min,
            dense_dims,
            dense: vec![Vec::new(); cells],
            outliers: BTreeMap::new(),
            entries: vec![None; capacity],
            len: 0,
        }
    }

    /// The cell edge length.
    pub fn cell_size(&self) -> f64 {
        self.cell
    }

    /// Number of present points.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when no point is present.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// `true` when index `i` is present.
    pub fn contains(&self, i: usize) -> bool {
        self.entries[i].is_some()
    }

    /// The indexed position of `i`, when present.
    pub fn position(&self, i: usize) -> Option<P> {
        self.entries[i].map(|(_, p)| p)
    }

    /// Row-major slot of `key` inside the dense extent, or `None` when the
    /// key falls outside (or no extent exists).
    #[inline]
    fn dense_slot(&self, key: CellKey) -> Option<usize> {
        let (min, dims) = (self.dense_min, self.dense_dims);
        for a in 0..KEY_AXES {
            if key[a] < min[a] || key[a] >= min[a] + dims[a] {
                return None;
            }
        }
        Some(
            (((key[0] - min[0]) * dims[1] + (key[1] - min[1])) * dims[2] + (key[2] - min[2]))
                as usize,
        )
    }

    /// Indexes point `i` at position `p`.
    ///
    /// # Panics
    ///
    /// Panics when `i` is already present (a lifecycle bug in the caller —
    /// move a point by `remove` + `insert`).
    pub fn insert(&mut self, i: usize, p: P) {
        assert!(
            self.entries[i].is_none(),
            "point {i} inserted while already present"
        );
        let key = cell_key(p, self.cell);
        let bucket = match self.dense_slot(key) {
            Some(slot) => &mut self.dense[slot],
            None => self.outliers.entry(key).or_default(),
        };
        let slot = bucket
            .binary_search_by_key(&(i as u32), |&(j, _)| j)
            .expect_err("absent index cannot be bucketed");
        bucket.insert(slot, (i as u32, p));
        self.entries[i] = Some((key, p));
        self.len += 1;
    }

    /// Removes point `i` from the index. Its bucket keeps its allocation so
    /// a later insert into the same cell is allocation-free.
    ///
    /// # Panics
    ///
    /// Panics when `i` is not present.
    pub fn remove(&mut self, i: usize) {
        let (key, _) = self.entries[i]
            .take()
            .unwrap_or_else(|| panic!("point {i} removed while absent"));
        let bucket = match self.dense_slot(key) {
            Some(slot) => &mut self.dense[slot],
            None => self.outliers.get_mut(&key).expect("present point's cell"),
        };
        let slot = bucket
            .binary_search_by_key(&(i as u32), |&(j, _)| j)
            .expect("present index is bucketed");
        bucket.remove(slot);
        self.len -= 1;
    }

    /// Appends to `out` every present index `j` with `dist(points[j], q) ≤
    /// radius` (closed predicate, matching §2.1's visibility definition),
    /// **including** any point coincident with `q`. Traversal is
    /// deterministic (dense cells in lexicographic order, then outlier
    /// cells); `out` is neither cleared nor sorted — the caller owns the
    /// merge order.
    pub fn query_within(&self, q: P, radius: f64, out: &mut Vec<usize>) {
        let key = cell_key(q, self.cell);
        let reach = (radius / self.cell).ceil().max(1.0) as i64;
        let mut lo = [0i64; KEY_AXES];
        let mut hi = [0i64; KEY_AXES];
        for a in 0..P::DIM {
            lo[a] = key[a].saturating_sub(reach);
            hi[a] = key[a].saturating_add(reach);
        }
        self.for_each_in_key_box(lo, hi, |j, p| {
            if (p - q).norm() <= radius {
                out.push(j);
            }
        });
    }

    /// Two-band range query: appends to `inner` every present index within
    /// `radius` of `q`, and to `fringe` every index in the open band
    /// `(radius, radius + pad]`. One traversal, one distance computation per
    /// visited point. Callers whose points may have drifted up to `pad` from
    /// their indexed position get a guaranteed superset (`inner ∪ fringe`)
    /// *and* the exact verdict for points indexed at their true position —
    /// the engine's Look trim skips re-deriving distances for stationary
    /// robots this way. Closed predicates on both radii, same deterministic
    /// traversal as [`Self::query_within`]; neither vector is cleared or
    /// sorted.
    pub fn query_within_banded(
        &self,
        q: P,
        radius: f64,
        pad: f64,
        inner: &mut Vec<usize>,
        fringe: &mut Vec<usize>,
    ) {
        let outer = radius + pad;
        let key = cell_key(q, self.cell);
        let reach = (outer / self.cell).ceil().max(1.0) as i64;
        let mut lo = [0i64; KEY_AXES];
        let mut hi = [0i64; KEY_AXES];
        for a in 0..P::DIM {
            lo[a] = key[a].saturating_sub(reach);
            hi[a] = key[a].saturating_add(reach);
        }
        self.for_each_in_key_box(lo, hi, |j, p| {
            let d = (p - q).norm();
            if d <= radius {
                inner.push(j);
            } else if d <= outer {
                fringe.push(j);
            }
        });
    }

    /// Appends to `out` every present index whose **cell** intersects the
    /// bounding box of segment `a → b` expanded by `pad` — a cheap superset
    /// of the points within `pad` of the segment, for callers with their own
    /// exact predicate (the engine's occlusion test). `out` is neither
    /// cleared nor sorted.
    ///
    /// The cell walk is O(cells in the padded box): constant for sight lines
    /// no longer than a few cells, which is the occlusion model's regime
    /// (targets are within visibility range, and cells are visibility-sized).
    pub fn query_segment_cells(&self, a: P, b: P, pad: f64, out: &mut Vec<usize>) {
        let lo = cell_key(min_corner(a, b, pad), self.cell);
        let hi = cell_key(max_corner(a, b, pad), self.cell);
        self.for_each_in_key_box(lo, hi, |j, _| out.push(j));
    }

    /// Visits `(index, position)` of every present point in the inclusive
    /// key box `lo..=hi`: dense rows first (contiguous bucket runs — in 2D
    /// a whole `y` span of cells is one slice scan), then — only when any
    /// exist — outlier cells via sorted-map ranges.
    fn for_each_in_key_box(&self, lo: CellKey, hi: CellKey, mut visit: impl FnMut(usize, P)) {
        let (min, dims) = (self.dense_min, self.dense_dims);
        if !self.dense.is_empty() {
            // Clamp the probe box to the dense extent.
            let cl = |a: usize| (lo[a].max(min[a]), hi[a].min(min[a] + dims[a] - 1));
            let (x_lo, x_hi) = cl(0);
            let (y_lo, y_hi) = cl(1);
            let (z_lo, z_hi) = cl(2);
            if x_lo <= x_hi && y_lo <= y_hi && z_lo <= z_hi {
                for x in x_lo..=x_hi {
                    let x_base = (x - min[0]) * dims[1];
                    if dims[2] == 1 {
                        // Planar fast path: the y-run of cells is a
                        // contiguous slot range.
                        let s_lo = (x_base + (y_lo - min[1])) as usize;
                        let s_hi = (x_base + (y_hi - min[1])) as usize;
                        for bucket in &self.dense[s_lo..=s_hi] {
                            for &(j, p) in bucket {
                                visit(j as usize, p);
                            }
                        }
                    } else {
                        for y in y_lo..=y_hi {
                            let base = (x_base + (y - min[1])) * dims[2];
                            let s_lo = (base + (z_lo - min[2])) as usize;
                            let s_hi = (base + (z_hi - min[2])) as usize;
                            for bucket in &self.dense[s_lo..=s_hi] {
                                for &(j, p) in bucket {
                                    visit(j as usize, p);
                                }
                            }
                        }
                    }
                }
            }
        }
        if !self.outliers.is_empty() {
            // Rare path: points that wandered off the declared extent (or a
            // grid built with no extent at all). Keys inside the dense
            // extent are never stored here, so no cell is visited twice.
            for x in lo[0]..=hi[0] {
                if P::DIM < 3 {
                    // All 2D keys carry z = 0: the lex range over the row
                    // is exactly the y span.
                    for (_, bucket) in self.outliers.range([x, lo[1], 0]..=[x, hi[1], 0]) {
                        for &(j, p) in bucket {
                            visit(j as usize, p);
                        }
                    }
                } else {
                    for y in lo[1]..=hi[1] {
                        for (_, bucket) in self.outliers.range([x, y, lo[2]]..=[x, y, hi[2]]) {
                            for &(j, p) in bucket {
                                visit(j as usize, p);
                            }
                        }
                    }
                }
            }
        }
    }
}

/// The `(min, dims, cell_count)` of the padded dense extent over a working
/// area, or an all-zero sentinel (`cell_count == 0`) when the area is empty
/// or too large to address directly within the cell budget.
fn dense_extent<P: Point>(
    working_area: &[P],
    cell: f64,
    capacity: usize,
) -> (CellKey, CellKey, usize) {
    let none = ([0i64; KEY_AXES], [0i64; KEY_AXES], 0usize);
    let Some(first) = working_area.first() else {
        return none;
    };
    let first_key = cell_key(*first, cell);
    let (mut min, mut max) = (first_key, first_key);
    for p in working_area {
        let k = cell_key(*p, cell);
        for a in 0..KEY_AXES {
            min[a] = min[a].min(k[a]);
            max[a] = max[a].max(k[a]);
        }
    }
    let mut dims = [1i64; KEY_AXES];
    let mut cells: i128 = 1;
    for a in 0..P::DIM {
        min[a] = min[a].saturating_sub(DENSE_PAD_CELLS);
        max[a] = max[a].saturating_add(DENSE_PAD_CELLS);
        dims[a] = max[a].saturating_sub(min[a]).saturating_add(1);
        cells = cells.saturating_mul(dims[a] as i128);
    }
    let budget = DENSE_MIN_CELLS.max(capacity as i128 * DENSE_CELLS_PER_POINT);
    if cells > budget || !working_area.iter().all(|p| p.is_finite()) {
        return none;
    }
    (min, dims, cells as usize)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vec2::Vec2;
    use crate::vec3::Vec3;

    use crate::test_util::cloud;

    fn brute_within(pts: &[Option<Vec2>], q: Vec2, radius: f64) -> Vec<usize> {
        (0..pts.len())
            .filter(|&j| pts[j].is_some_and(|p| (p - q).norm() <= radius))
            .collect()
    }

    #[test]
    fn insert_remove_roundtrip() {
        let mut grid = DynamicGrid::new(4, 1.0);
        assert!(grid.is_empty());
        grid.insert(2, Vec2::new(1.0, 1.0));
        assert_eq!(grid.len(), 1);
        assert!(grid.contains(2));
        assert_eq!(grid.position(2), Some(Vec2::new(1.0, 1.0)));
        assert!(!grid.contains(0));
        grid.remove(2);
        assert!(grid.is_empty());
        assert_eq!(grid.position(2), None);
    }

    #[test]
    #[should_panic(expected = "inserted while already present")]
    fn double_insert_panics() {
        let mut grid = DynamicGrid::new(2, 1.0);
        grid.insert(0, Vec2::ZERO);
        grid.insert(0, Vec2::new(1.0, 0.0));
    }

    #[test]
    #[should_panic(expected = "removed while absent")]
    fn absent_remove_panics() {
        let mut grid: DynamicGrid<Vec2> = DynamicGrid::new(2, 1.0);
        grid.remove(0);
    }

    /// Both representations under churn: a grid with a dense extent over
    /// the cloud, and one with no extent at all (pure sorted-map), must
    /// agree with brute force and with each other.
    #[test]
    fn query_matches_brute_force_under_churn() {
        let pts = cloud(120, 7.0, 5);
        for with_extent in [true, false] {
            let mut grid = if with_extent {
                DynamicGrid::with_extent(pts.len(), 1.0, &pts)
            } else {
                DynamicGrid::new(pts.len(), 1.0)
            };
            let mut present: Vec<Option<Vec2>> = vec![None; pts.len()];
            for (i, &p) in pts.iter().enumerate() {
                grid.insert(i, p);
                present[i] = Some(p);
            }
            // Churn: remove every third point, move every fifth — some far
            // outside the declared extent.
            for i in (0..pts.len()).step_by(3) {
                grid.remove(i);
                present[i] = None;
            }
            for i in (0..pts.len()).step_by(5) {
                if present[i].is_some() {
                    let moved = pts[i] + Vec2::new(40.0, -0.61);
                    grid.remove(i);
                    grid.insert(i, moved);
                    present[i] = Some(moved);
                }
            }
            let mut out = Vec::new();
            for (q, r) in [
                (Vec2::new(3.5, 3.5), 1.0),
                (Vec2::new(0.0, 0.0), 2.5),
                (Vec2::new(43.5, 2.9), 1.5),
                (Vec2::new(6.9, 0.1), 0.8),
            ] {
                out.clear();
                grid.query_within(q, r, &mut out);
                out.sort_unstable();
                assert_eq!(
                    out,
                    brute_within(&present, q, r),
                    "q={q} r={r} extent={with_extent}"
                );
            }
        }
    }

    #[test]
    fn query_radius_exactly_on_boundary_counts() {
        let mut grid = DynamicGrid::new(2, 1.0);
        grid.insert(0, Vec2::new(1.0, 0.0));
        grid.insert(1, Vec2::new(1.0 + 1e-9, 0.0));
        let mut out = Vec::new();
        grid.query_within(Vec2::ZERO, 1.0, &mut out);
        assert_eq!(out, vec![0], "closed at the radius, open beyond");
    }

    #[test]
    fn query_radius_larger_than_cell() {
        let pts = cloud(60, 5.0, 8);
        let mut grid = DynamicGrid::with_extent(pts.len(), 0.5, &pts);
        let present: Vec<Option<Vec2>> = pts.iter().map(|&p| Some(p)).collect();
        for (i, &p) in pts.iter().enumerate() {
            grid.insert(i, p);
        }
        let mut out = Vec::new();
        grid.query_within(Vec2::new(2.5, 2.5), 1.7, &mut out);
        out.sort_unstable();
        assert_eq!(out, brute_within(&present, Vec2::new(2.5, 2.5), 1.7));
    }

    #[test]
    fn segment_cells_cover_all_near_segment_points() {
        let pts = cloud(100, 6.0, 13);
        let mut grid = DynamicGrid::with_extent(pts.len(), 1.0, &pts);
        for (i, &p) in pts.iter().enumerate() {
            grid.insert(i, p);
        }
        let (a, b, pad) = (Vec2::new(1.0, 1.0), Vec2::new(4.0, 3.0), 0.25);
        let mut out = Vec::new();
        grid.query_segment_cells(a, b, pad, &mut out);
        // The coarse cell walk must be a superset of the exact hit set.
        for (j, &p) in pts.iter().enumerate() {
            if crate::grid::dist_sq_to_segment(p, a, b) <= pad * pad {
                assert!(out.contains(&j), "point {j} near segment missed");
            }
        }
    }

    #[test]
    fn emptied_buckets_keep_serving_queries() {
        // A point oscillating between a dense-extent cell and an outlier
        // cell: queries stay exact, and warm buckets left behind on either
        // side never produce stale hits.
        let anchor = [Vec2::new(0.5, 0.5)];
        let mut grid = DynamicGrid::with_extent(1, 1.0, &anchor);
        let (inside, outside) = (Vec2::new(0.5, 0.5), Vec2::new(500.5, 0.5));
        let mut out = Vec::new();
        for round in 0..10 {
            let here = if round % 2 == 0 { inside } else { outside };
            grid.insert(0, here);
            out.clear();
            grid.query_within(inside, 1.0, &mut out);
            assert_eq!(out.as_slice(), if round % 2 == 0 { &[0][..] } else { &[] });
            out.clear();
            grid.query_within(outside, 1.0, &mut out);
            assert_eq!(out.as_slice(), if round % 2 == 0 { &[] } else { &[0][..] });
            grid.remove(0);
        }
    }

    #[test]
    fn oversized_working_area_degrades_to_no_extent() {
        // Two points ~1e9 cells apart: the extent budget is blown, the grid
        // must still answer exactly (all cells in the sorted map).
        let pts = [Vec2::new(0.0, 0.0), Vec2::new(1e9, 1e9)];
        let mut grid = DynamicGrid::with_extent(2, 1.0, &pts);
        assert!(grid.dense.is_empty(), "no direct addressing at 1e18 cells");
        grid.insert(0, pts[0]);
        grid.insert(1, pts[1]);
        let mut out = Vec::new();
        grid.query_within(Vec2::new(1e9, 1e9), 2.0, &mut out);
        assert_eq!(out, vec![1]);
    }

    #[test]
    fn works_in_three_dimensions() {
        let pts: Vec<Vec3> = (0..50)
            .map(|i| {
                let f = i as f64;
                Vec3::new((f * 0.37).sin() * 3.0, (f * 0.61).cos() * 3.0, f * 0.11)
            })
            .collect();
        let mut grid = DynamicGrid::with_extent(pts.len(), 0.9, &pts);
        for (i, &p) in pts.iter().enumerate() {
            grid.insert(i, p);
        }
        let q = Vec3::new(0.0, 0.0, 2.0);
        let mut out = Vec::new();
        grid.query_within(q, 1.5, &mut out);
        out.sort_unstable();
        let brute: Vec<usize> = (0..pts.len())
            .filter(|&j| (pts[j] - q).norm() <= 1.5)
            .collect();
        assert_eq!(out, brute);
    }

    #[test]
    #[should_panic(expected = "cell edge must be positive")]
    fn zero_cell_panics() {
        let _ = DynamicGrid::<Vec2>::new(1, 0.0);
    }
}
