//! Computational geometry substrate for the `cohesion` workspace.
//!
//! This crate implements, from scratch, every geometric primitive the
//! PODC 2021 point-convergence reproduction needs:
//!
//! * fixed-dimension vector types ([`Vec2`], [`Vec3`]) and a small [`Point`]
//!   abstraction so the convergence algorithms can be written once for both
//!   the planar and the three-dimensional model (paper §6.3.2);
//! * angular utilities ([`angle`]) including the *largest angular gap*
//!   computation at the heart of the paper's target-destination rule (§5);
//! * circles/disks and segments with the ray/chord queries used by safe-region
//!   constrained motion ([`circle`], [`segment`]);
//! * minimum enclosing balls via a generic Welzl algorithm ([`ball`]) — the
//!   smallest enclosing circle (SEC) is the core of Ando's baseline algorithm
//!   and of the paper's congregation analysis (Figure 16);
//! * convex hulls with perimeter/diameter/nesting queries ([`hull`]) — the
//!   hull-diminishing invariant is the backbone of the congregation argument
//!   (§5);
//! * axis-aligned bounding boxes ([`bbox`]) for the GCM (“centre of minbox”)
//!   baseline;
//! * minimal enclosing cones of direction sets ([`cone`]), the d-dimensional
//!   generalization of the paper's “largest sector” rule.
//!
//! All computation is plain `f64`; tolerances are explicit (see [`EPS`]) and
//! every predicate that can meaningfully take a tolerance does so.
//!
//! # Example
//!
//! ```
//! use cohesion_geometry::{Vec2, hull::convex_hull, ball::smallest_enclosing_ball};
//!
//! let pts = vec![
//!     Vec2::new(0.0, 0.0),
//!     Vec2::new(2.0, 0.0),
//!     Vec2::new(1.0, 1.5),
//!     Vec2::new(1.0, 0.5),
//! ];
//! let hull = convex_hull(&pts);
//! assert_eq!(hull.vertices().len(), 3);
//! let sec = smallest_enclosing_ball(&pts);
//! for p in &pts {
//!     assert!(sec.contains(*p, 1e-9));
//! }
//! ```

#![forbid(unsafe_code)]
#![deny(unsafe_op_in_unsafe_fn)]

pub mod angle;
pub mod ball;
pub mod bbox;
pub mod circle;
pub mod cone;
pub mod dynamic_grid;
pub mod grid;
pub mod hull;
pub mod point;
pub mod predicates;
pub mod segment;
pub mod vec2;
pub mod vec3;

pub use ball::Ball;
pub use bbox::Aabb;
pub use circle::Circle;
pub use dynamic_grid::DynamicGrid;
pub use grid::SpatialGrid;
pub use hull::ConvexHull;
pub use point::Point;
pub use segment::Segment;
pub use vec2::Vec2;
pub use vec3::Vec3;

/// Default absolute tolerance used by geometric predicates when the caller
/// does not supply one.
///
/// The simulation operates at unit scale (visibility radius `V ≈ 1`), so an
/// absolute tolerance of `1e-9` sits roughly seven orders of magnitude below
/// the smallest meaningful quantity in the paper's constructions (e.g. the
/// `cos θ ≥ 0.9659` chain constant of Lemma 5).
pub const EPS: f64 = 1e-9;

/// Returns `true` when two floats are within `eps` of each other.
///
/// ```
/// assert!(cohesion_geometry::approx_eq(1.0, 1.0 + 1e-12, 1e-9));
/// assert!(!cohesion_geometry::approx_eq(1.0, 1.1, 1e-9));
/// ```
#[inline]
pub fn approx_eq(a: f64, b: f64, eps: f64) -> bool {
    (a - b).abs() <= eps
}

/// Shared fixtures for the crate's unit tests (kept out of the public API).
#[cfg(test)]
pub(crate) mod test_util {
    use crate::vec2::Vec2;

    /// Deterministic LCG cloud (no dependency on the rand stub here) —
    /// the common brute-force-comparison fixture of both grid modules.
    pub(crate) fn cloud(n: usize, span: f64, seed: u64) -> Vec<Vec2> {
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        (0..n)
            .map(|_| Vec2::new(next() * span, next() * span))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn approx_eq_basic() {
        assert!(approx_eq(0.1 + 0.2, 0.3, EPS));
        assert!(!approx_eq(0.1, 0.2, EPS));
    }
}
