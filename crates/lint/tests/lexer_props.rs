//! Lexer tests: table tests for the classic trap cases (raw strings,
//! nested block comments, lifetimes vs. char literals) and property tests
//! that tokenizing arbitrary input never panics and keeps positions sane.

use cohesion_lint::lexer::{significant, tokenize, Token, TokenKind};
use proptest::prelude::*;

fn kinds(tokens: &[Token]) -> Vec<TokenKind> {
    tokens.iter().map(|t| t.kind).collect()
}

fn texts(tokens: &[Token]) -> Vec<&str> {
    tokens.iter().map(|t| t.text.as_str()).collect()
}

// --- raw strings ----------------------------------------------------------

#[test]
fn raw_string_with_inner_quotes() {
    let t = tokenize(r##"r#"a "quoted" b"#"##);
    assert_eq!(kinds(&t), [TokenKind::Str]);
    assert_eq!(t[0].str_content(), r#"a "quoted" b"#);
}

#[test]
fn raw_string_deeper_hashes_swallow_shallower_closers() {
    let t = tokenize(r###"r##"x"# still"##"###);
    assert_eq!(kinds(&t), [TokenKind::Str]);
    assert_eq!(t[0].str_content(), r##"x"# still"##);
}

#[test]
fn raw_byte_string_keeps_backslashes_verbatim() {
    let t = tokenize(r##"br#"\"#"##);
    assert_eq!(kinds(&t), [TokenKind::Str]);
    assert_eq!(t[0].str_content(), "\\");
}

#[test]
fn escaped_quote_does_not_close_a_plain_string() {
    let t = tokenize(r#""a\"b" x"#);
    assert_eq!(kinds(&t), [TokenKind::Str, TokenKind::Ident]);
    assert_eq!(t[1].text, "x");
}

#[test]
fn zero_hash_raw_string_ignores_escapes() {
    // In r"…" a backslash is a plain character, so \" would close it.
    let t = tokenize(r#"r"a\" x"#);
    assert_eq!(kinds(&t), [TokenKind::Str, TokenKind::Ident]);
    assert_eq!(t[0].str_content(), "a\\");
}

// --- comments -------------------------------------------------------------

#[test]
fn nested_block_comments() {
    let t = tokenize("/* outer /* inner */ still comment */ fn");
    assert_eq!(kinds(&t), [TokenKind::BlockComment, TokenKind::Ident]);
    assert_eq!(t[1].text, "fn");
}

#[test]
fn line_comment_stops_at_newline() {
    let t = tokenize("// Instant::now()\nx");
    assert_eq!(kinds(&t), [TokenKind::LineComment, TokenKind::Ident]);
    assert_eq!(t[1].line, 2);
}

#[test]
fn comment_markers_inside_strings_are_data() {
    let t = tokenize(r#""/* not a comment" y"#);
    assert_eq!(kinds(&t), [TokenKind::Str, TokenKind::Ident]);
}

// --- lifetimes vs. char literals ------------------------------------------

#[test]
fn lifetime_vs_char_disambiguation() {
    let cases: &[(&str, TokenKind)] = &[
        ("'a'", TokenKind::Char),
        ("'_'", TokenKind::Char),
        ("b'x'", TokenKind::Char),
        ("'\\n'", TokenKind::Char),
        ("'\\u{1F600}'", TokenKind::Char),
        ("'('", TokenKind::Char),
        ("'static", TokenKind::Lifetime),
        ("'outer", TokenKind::Lifetime),
        ("'_", TokenKind::Lifetime),
    ];
    for (src, want) in cases {
        let t = tokenize(src);
        assert_eq!(kinds(&t), [*want], "tokenizing {src:?}");
        assert_eq!(t[0].text, *src, "tokenizing {src:?}");
    }
}

#[test]
fn generic_lifetime_in_context() {
    let t = tokenize("fn f<'a>(x: &'a str) {}");
    let lifetimes: Vec<&Token> = t.iter().filter(|t| t.kind == TokenKind::Lifetime).collect();
    assert_eq!(lifetimes.len(), 2);
    assert!(lifetimes.iter().all(|t| t.text == "'a"));
}

// --- identifiers and numbers ----------------------------------------------

#[test]
fn raw_identifier() {
    let t = tokenize("r#type");
    assert_eq!(kinds(&t), [TokenKind::Ident]);
    assert_eq!(t[0].text, "r#type");
}

#[test]
fn number_shapes() {
    for src in ["0xFF_u32", "1_000", "1.5e-3f64", "0b1010", "2usize"] {
        let t = tokenize(src);
        assert_eq!(kinds(&t), [TokenKind::Number], "tokenizing {src:?}");
        assert_eq!(t[0].text, src);
    }
}

#[test]
fn range_and_tuple_access_stay_separate_tokens() {
    let t = tokenize("1..2");
    assert_eq!(
        kinds(&t),
        [
            TokenKind::Number,
            TokenKind::Punct,
            TokenKind::Punct,
            TokenKind::Number
        ]
    );
    let t = tokenize("x.0");
    assert_eq!(
        kinds(&t),
        [TokenKind::Ident, TokenKind::Punct, TokenKind::Number]
    );
}

// --- tolerance ------------------------------------------------------------

#[test]
fn unterminated_literals_are_tolerated() {
    for src in ["\"abc", "r#\"abc", "/* abc", "'", "b'", "r#"] {
        let t = tokenize(src);
        assert!(!t.is_empty(), "tokenizing {src:?}");
    }
}

// --- significant() merging ------------------------------------------------

#[test]
fn significant_merges_adjacent_path_and_arrow_punct() {
    let sig = significant(&tokenize("a::b => c"));
    assert_eq!(texts(&sig), ["a", "::", "b", "=>", "c"]);
}

#[test]
fn significant_does_not_merge_spaced_punct() {
    let sig = significant(&tokenize("a : : b = > c"));
    assert_eq!(texts(&sig), ["a", ":", ":", "b", "=", ">", "c"]);
}

#[test]
fn significant_drops_comments() {
    let sig = significant(&tokenize("x /* c */ // d\ny"));
    assert_eq!(texts(&sig), ["x", "y"]);
}

// --- properties -----------------------------------------------------------

/// Fragments chosen to collide: every lexer-mode opener/closer, prefix
/// letter, and multi-byte character, so random concatenations land in the
/// nastiest corners (a raw-string opener followed by a comment closer, …).
const FRAGMENTS: &[&str] = &[
    "r#\"", "\"#", "r\"", "br##\"", "\"##", "b'", "'", "\\", "\"", "/*", "*/", "//", "\n", " ",
    "'a", "'a'", "ident", "r#type", "0x1F", "1.5e-3", "1..2", "::", "=>", ":", "=", ">", "#", "{",
    "}", "é", "λ", "🦀", "_",
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn tokenize_never_panics_on_fragment_soup(
        picks in proptest::collection::vec(0usize..FRAGMENTS.len(), 0..64),
    ) {
        let src: String = picks.iter().map(|&i| FRAGMENTS[i]).collect();
        let tokens = tokenize(&src);
        // Every token is non-empty and positions never move backwards.
        let mut prev = (1u32, 0u32);
        for t in &tokens {
            prop_assert!(!t.text.is_empty());
            prop_assert!((t.line, t.col) > prev, "position went backwards in {src:?}");
            prev = (t.line, t.col);
        }
        // Nothing is lost: token texts sum to the input minus whitespace.
        let token_chars: usize = tokens.iter().map(|t| t.text.chars().count()).sum();
        let nonspace = src.chars().filter(|c| !c.is_whitespace()).count();
        prop_assert!(token_chars >= nonspace, "dropped characters in {src:?}");
        // significant() must not panic either.
        let _ = significant(&tokens);
    }

    #[test]
    fn tokenize_never_panics_on_arbitrary_bytes(
        bytes in proptest::collection::vec(0u32..256, 0..256),
    ) {
        let bytes: Vec<u8> = bytes.iter().map(|&b| b as u8).collect();
        let src = String::from_utf8_lossy(&bytes);
        let _ = significant(&tokenize(&src));
    }
}
