// D2 fixture — MUST TRIP: wall-clock reads in library code.

pub fn measure<F: FnOnce()>(work: F) -> u128 {
    let start = std::time::Instant::now();
    work();
    start.elapsed().as_nanos()
}

pub fn stamp() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0)
}
