//! D2 fixture — MUST PASS: every mention of a clock here is a comment, a
//! string, or an unrelated identifier — exactly what a grep-based check
//! would false-positive on. Doc comments saying `Instant::now()` are fine.

/// Explains why `SystemTime::now()` is banned without calling it.
pub fn describe() -> &'static str {
    // A string literal is data, not a clock read: Instant::now()
    "never call Instant::now() from deterministic code"
}

pub fn raw_mention() -> &'static str {
    r#"SystemTime::now() inside a raw string is data too"#
}

pub struct InstantLike {
    /// Simulated time — not the wall clock.
    pub instant: f64,
}

pub fn simulated_now(t: &InstantLike) -> f64 {
    t.instant
}
