// D3 fixture — MUST TRIP: RNG construction from ambient entropy.

use rand::rngs::StdRng;
use rand::SeedableRng;

pub fn fresh_rng() -> StdRng {
    StdRng::from_entropy()
}

pub fn coin_flip() -> bool {
    rand::random()
}
