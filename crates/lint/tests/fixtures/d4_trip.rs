// D4 fixture — MUST TRIP: threading and shared-state primitives outside
// the approved concurrency modules.

use std::sync::mpsc;
use std::sync::Mutex;

pub fn fan_out(jobs: Vec<u64>) -> u64 {
    let total = Mutex::new(0u64);
    let (tx, rx) = mpsc::channel();
    for job in jobs {
        let tx = tx.clone();
        std::thread::spawn(move || tx.send(job).unwrap());
    }
    drop(tx);
    while let Ok(v) = rx.recv() {
        *total.lock().unwrap() += v;
    }
    total.into_inner().unwrap()
}
