// D5 fixture — MUST PASS: the invariant is written down.

pub fn first_checked(xs: &[u32]) -> u32 {
    assert!(!xs.is_empty());
    // SAFETY: the assert above guarantees at least one element, so reading
    // through the base pointer stays in bounds.
    unsafe { *xs.as_ptr() }
}
