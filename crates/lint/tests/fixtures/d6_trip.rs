// D6 fixture — MUST TRIP: floats rendered through bare `{}` Display on an
// emission path, one per supported referent shape.

use std::io::Write;

pub fn emit(out: &mut impl Write, diameter: f64, events: u64) {
    // Inline capture of a float-annotated binding.
    println!("diameter {diameter}");
    // Next-positional argument that is a float-typed name.
    println!("reached {} at {} events", diameter, events);
    // Indexed positional referencing a float expression.
    let ratio = 0.125;
    eprintln!("ratio {0}", ratio * 2.0);
    // Named argument bound to a duration-to-float conversion.
    writeln!(out, "took {secs}", secs = elapsed().as_secs_f64()).unwrap();
    // A float literal fed straight into format!.
    let banner = format!("epsilon defaults to {}", 0.05);
    out.write_all(banner.as_bytes()).unwrap();
}

fn elapsed() -> std::time::Duration {
    std::time::Duration::from_millis(1)
}
