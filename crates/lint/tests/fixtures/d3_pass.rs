// D3 fixture — MUST PASS: seeds flow in through the caller.

use rand::rngs::StdRng;
use rand::SeedableRng;

pub fn seeded_rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}
