// D5 fixture — MUST TRIP: an unsafe block with no SAFETY comment.

pub fn first_unchecked(xs: &[u32]) -> u32 {
    unsafe { *xs.as_ptr() }
}
