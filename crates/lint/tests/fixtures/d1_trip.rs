// D1 fixture — MUST TRIP: iteration over unordered maps/sets.

use std::collections::{HashMap, HashSet};

pub fn histogram(xs: &[u32]) -> Vec<(u32, u32)> {
    let mut counts: HashMap<u32, u32> = HashMap::new();
    for &x in xs {
        *counts.entry(x).or_insert(0) += 1;
    }
    let mut out = Vec::new();
    for (k, v) in &counts {
        out.push((*k, *v));
    }
    out
}

pub fn tags(seen: HashSet<String>) -> Vec<String> {
    seen.into_iter().collect()
}
