// D6 fixture — MUST PASS: every float placeholder pins its rendering, and
// non-float values may use bare `{}` freely.

use std::io::Write;

pub fn emit(out: &mut impl Write, diameter: f64, events: u64, label: &str) {
    // Explicit precision.
    println!("diameter {diameter:.6}");
    // Scientific notation.
    println!("epsilon {:e}", 0.05);
    // Debug is the shortest-round-trip form serde uses for row floats.
    writeln!(out, "raw {diameter:?}").unwrap();
    // Dynamic precision via `$` still names an explicit format.
    let places = 3usize;
    println!("rounded {diameter:.places$}");
    // Integers and strings are not D6's business.
    let summary = format!("{label}: {events} events, shard {}", 7);
    out.write_all(summary.as_bytes()).unwrap();
    // A float-named binding that is shadowed into a string render of its
    // own: formatting the *string* is fine.
    let rendered = format!("{diameter:.3}");
    println!("pre-rendered {rendered}");
}
