// P1 fixture — protocol side, complete: every variant is Serialize-encoded
// and has a decode arm in from_value.

use serde::Serialize;
use serde_json::Value;

#[derive(Debug, Clone, PartialEq, Serialize)]
pub enum Message {
    Ping { nonce: u64 },
    Pong { nonce: u64 },
    Bye,
}

impl Message {
    pub fn from_value(v: &Value) -> Result<Message, String> {
        let tag = v.as_str().ok_or("expected a tag")?;
        match tag {
            "Ping" => Ok(Message::Ping { nonce: 0 }),
            "Pong" => Ok(Message::Pong { nonce: 0 }),
            "Bye" => Ok(Message::Bye),
            other => Err(format!("unknown message `{other}`")),
        }
    }
}
