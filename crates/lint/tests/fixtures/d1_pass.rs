// D1 fixture — MUST PASS: ordered iteration, and keyed access to an
// unordered map without iterating it.

use std::collections::{BTreeMap, HashMap};

pub fn histogram(xs: &[u32]) -> Vec<(u32, u32)> {
    let mut counts: BTreeMap<u32, u32> = BTreeMap::new();
    for &x in xs {
        *counts.entry(x).or_insert(0) += 1;
    }
    counts.into_iter().collect()
}

pub fn count_of(xs: &[u32], key: u32) -> u32 {
    // Named `index`, not `counts`: the D1 binding pass is file-global, so
    // reusing the BTreeMap name above would shadow it as unordered.
    let mut index: HashMap<u32, u32> = HashMap::new();
    for &x in xs {
        *index.entry(x).or_insert(0) += 1;
    }
    // Keyed lookups are deterministic; only iteration order is not.
    index.get(&key).copied().unwrap_or(0)
}
