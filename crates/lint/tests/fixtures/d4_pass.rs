// D4 fixture — MUST PASS: single-threaded shared state via Rc/RefCell is
// the approved pattern (the session observer API uses it).

use std::cell::RefCell;
use std::rc::Rc;

pub fn shared_counter() -> Rc<RefCell<u64>> {
    Rc::new(RefCell::new(0))
}

pub fn bump(c: &Rc<RefCell<u64>>) {
    *c.borrow_mut() += 1;
}
