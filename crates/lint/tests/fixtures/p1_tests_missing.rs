// P1 fixture — test side, incomplete: `Pong` is only built inside a test
// whose name does not start with `round_trip`, which does not count as
// round-trip coverage.

fn assert_round_trip(msg: Message) {
    let _ = msg;
}

#[test]
fn round_trip_ping() {
    assert_round_trip(Message::Ping { nonce: 7 });
}

#[test]
fn handshake_replies_with_pong() {
    let _ = Message::Pong { nonce: 9 };
}

#[test]
fn round_trip_bye() {
    assert_round_trip(Message::Bye);
}
