// P1 fixture — test side, complete: every variant is constructed inside a
// `round_trip_*` test.

fn assert_round_trip(msg: Message) {
    let _ = msg;
}

#[test]
fn round_trip_ping() {
    assert_round_trip(Message::Ping { nonce: 7 });
}

#[test]
fn round_trip_pong() {
    assert_round_trip(Message::Pong { nonce: 9 });
}

#[test]
fn round_trip_bye() {
    assert_round_trip(Message::Bye);
}
