//! Workspace-level integration: the real tree lints clean against the
//! checked-in lint.toml, and the allowlist parser enforces its policy.

use cohesion_lint::{config, find_workspace_root, lint_workspace};
use std::path::Path;

fn workspace_root() -> std::path::PathBuf {
    find_workspace_root(Path::new(env!("CARGO_MANIFEST_DIR")))
        .expect("workspace root above crates/lint")
}

#[test]
fn the_workspace_is_clean() {
    let report = lint_workspace(&workspace_root()).expect("lint run");
    assert!(
        report.is_clean(),
        "violations in the tree:\n{}",
        report.render_text()
    );
    assert!(
        report.stale_allows.is_empty(),
        "stale lint.toml entries:\n{}",
        report.render_text()
    );
    // Sanity: the walk actually visited the tree (10 crates + this one).
    assert!(report.files_scanned > 100, "{}", report.files_scanned);
    // The checked-in allowlist is load-bearing, not decorative.
    assert!(!report.suppressed.is_empty());
}

#[test]
fn json_rendering_is_well_formed_enough_to_grep() {
    let report = lint_workspace(&workspace_root()).expect("lint run");
    let json = report.render_json();
    assert!(json.starts_with("{\"files_scanned\":"));
    assert!(json.contains("\"violations\":[]"));
    assert!(json.trim_end().ends_with('}'));
}

// --- lint.toml policy -----------------------------------------------------

#[test]
fn allowlist_accepts_a_justified_entry() {
    let entries = config::parse(
        r#"
# comment
[[allow]]
rule = "D2"
path = "crates/bench/src/lookbench.rs"
justification = "benchmark harness: the wall clock is its output"
"#,
    )
    .expect("valid allowlist");
    assert_eq!(entries.len(), 1);
    assert_eq!(entries[0].rule, "D2");
    assert_eq!(entries[0].path, "crates/bench/src/lookbench.rs");
}

#[test]
fn allowlist_rejects_missing_justification() {
    let err = config::parse("[[allow]]\nrule = \"D2\"\npath = \"x.rs\"\n").unwrap_err();
    assert!(err.contains("justification"), "{err}");
}

#[test]
fn allowlist_rejects_token_justifications() {
    let err =
        config::parse("[[allow]]\nrule = \"D2\"\npath = \"x.rs\"\njustification = \"perf\"\n")
            .unwrap_err();
    assert!(err.contains("justification"), "{err}");
}

#[test]
fn allowlist_rejects_unknown_rules() {
    let err = config::parse(
        "[[allow]]\nrule = \"D9\"\npath = \"x.rs\"\njustification = \"a perfectly fine reason here\"\n",
    )
    .unwrap_err();
    assert!(err.contains("unknown rule"), "{err}");
}

#[test]
fn allowlist_rejects_keys_outside_an_entry() {
    let err = config::parse("rule = \"D2\"\n").unwrap_err();
    assert!(err.contains("outside"), "{err}");
}

#[test]
fn allowlist_rejects_unquoted_values() {
    let err = config::parse("[[allow]]\nrule = D2\n").unwrap_err();
    assert!(err.contains("double-quoted"), "{err}");
}
