//! Per-rule fixture tests: every rule has at least one tripping and one
//! passing fixture, plus scope tests proving each rule stops where its
//! path gate says it does.

use cohesion_lint::check_source;
use cohesion_lint::rules::{check_protocol, SourceFile, Violation};

const D1_TRIP: &str = include_str!("fixtures/d1_trip.rs");
const D1_PASS: &str = include_str!("fixtures/d1_pass.rs");
const D2_TRIP: &str = include_str!("fixtures/d2_trip.rs");
const D2_PASS: &str = include_str!("fixtures/d2_pass.rs");
const D3_TRIP: &str = include_str!("fixtures/d3_trip.rs");
const D3_PASS: &str = include_str!("fixtures/d3_pass.rs");
const D4_TRIP: &str = include_str!("fixtures/d4_trip.rs");
const D4_PASS: &str = include_str!("fixtures/d4_pass.rs");
const D5_TRIP: &str = include_str!("fixtures/d5_trip.rs");
const D5_PASS: &str = include_str!("fixtures/d5_pass.rs");
const D6_TRIP: &str = include_str!("fixtures/d6_trip.rs");
const D6_PASS: &str = include_str!("fixtures/d6_pass.rs");

/// A path inside a deterministic crate's src/ — every D-rule is in scope.
const DET_SRC: &str = "crates/engine/src/fixture.rs";

fn rules_of(violations: &[Violation]) -> Vec<&'static str> {
    violations.iter().map(|v| v.rule).collect()
}

// --- D1 -------------------------------------------------------------------

#[test]
fn d1_trips_on_unordered_iteration() {
    let v = check_source(DET_SRC, D1_TRIP);
    assert_eq!(rules_of(&v), ["D1", "D1"], "{v:#?}");
    assert!(v.iter().any(|v| v.message.contains("for … in")
        && v.message.contains("HashMap")
        && v.message.contains("`counts`")));
    assert!(v
        .iter()
        .any(|v| v.message.contains(".into_iter()") && v.message.contains("HashSet")));
    // Diagnostics point at real positions.
    assert!(v.iter().all(|v| v.line > 0 && v.col > 0));
}

#[test]
fn d1_passes_ordered_iteration_and_keyed_lookup() {
    let v = check_source(DET_SRC, D1_PASS);
    assert!(v.is_empty(), "{v:#?}");
}

#[test]
fn d1_out_of_scope_outside_deterministic_crates() {
    // The net layer is not on the deterministic surface.
    let v = check_source("crates/bench/src/net/fixture.rs", D1_TRIP);
    assert!(!v.iter().any(|v| v.rule == "D1"), "{v:#?}");
}

#[test]
fn d1_applies_on_the_bench_emission_path() {
    let v = check_source("crates/bench/src/lab.rs", D1_TRIP);
    assert!(v.iter().any(|v| v.rule == "D1"), "{v:#?}");
}

// --- D2 -------------------------------------------------------------------

#[test]
fn d2_trips_on_wall_clock_reads() {
    let v = check_source(DET_SRC, D2_TRIP);
    assert_eq!(rules_of(&v), ["D2", "D2"], "{v:#?}");
    assert!(v.iter().any(|v| v.message.contains("Instant::now")));
    assert!(v.iter().any(|v| v.message.contains("SystemTime::now")));
}

#[test]
fn d2_ignores_clock_mentions_in_comments_strings_and_idents() {
    let v = check_source(DET_SRC, D2_PASS);
    assert!(v.is_empty(), "{v:#?}");
}

#[test]
fn d2_out_of_scope_in_the_net_layer_and_test_harnesses() {
    for rel in [
        "crates/bench/src/net/fixture.rs",
        "crates/bench/src/sweep.rs",
        "crates/bench/tests/fixture.rs",
    ] {
        let v = check_source(rel, D2_TRIP);
        assert!(!v.iter().any(|v| v.rule == "D2"), "{rel}: {v:#?}");
    }
}

// --- D3 -------------------------------------------------------------------

#[test]
fn d3_trips_on_entropy_rng_construction() {
    let v = check_source(DET_SRC, D3_TRIP);
    assert_eq!(rules_of(&v), ["D3", "D3"], "{v:#?}");
    assert!(v.iter().any(|v| v.message.contains("from_entropy")));
    assert!(v.iter().any(|v| v.message.contains("rand::random")));
}

#[test]
fn d3_passes_seeded_construction() {
    let v = check_source(DET_SRC, D3_PASS);
    assert!(v.is_empty(), "{v:#?}");
}

#[test]
fn d3_applies_even_in_tests() {
    // A seeded test is replayable; an entropic one is not.
    let v = check_source("crates/engine/tests/fixture.rs", D3_TRIP);
    assert!(v.iter().any(|v| v.rule == "D3"), "{v:#?}");
}

// --- D4 -------------------------------------------------------------------

#[test]
fn d4_trips_on_concurrency_primitives() {
    let v = check_source(DET_SRC, D4_TRIP);
    assert!(!v.is_empty());
    assert!(v.iter().all(|v| v.rule == "D4"), "{v:#?}");
    assert!(v.iter().any(|v| v.message.contains("`thread::spawn`")));
    assert!(v.iter().any(|v| v.message.contains("`Mutex`")));
    assert!(v.iter().any(|v| v.message.contains("`mpsc`")));
}

#[test]
fn d4_passes_single_threaded_shared_state() {
    let v = check_source(DET_SRC, D4_PASS);
    assert!(v.is_empty(), "{v:#?}");
}

#[test]
fn d4_out_of_scope_in_approved_concurrency_modules() {
    for rel in [
        "crates/bench/src/sweep.rs",
        "crates/bench/src/net/worker.rs",
        "crates/bench/tests/fixture.rs",
    ] {
        let v = check_source(rel, D4_TRIP);
        assert!(!v.iter().any(|v| v.rule == "D4"), "{rel}: {v:#?}");
    }
}

// --- D5 -------------------------------------------------------------------

#[test]
fn d5_trips_on_undocumented_unsafe() {
    let v = check_source(DET_SRC, D5_TRIP);
    assert_eq!(rules_of(&v), ["D5"], "{v:#?}");
    assert!(v[0].message.contains("SAFETY"));
}

#[test]
fn d5_passes_documented_unsafe() {
    let v = check_source(DET_SRC, D5_PASS);
    assert!(v.is_empty(), "{v:#?}");
}

#[test]
fn d5_applies_even_in_tests() {
    let v = check_source("crates/engine/tests/fixture.rs", D5_TRIP);
    assert!(v.iter().any(|v| v.rule == "D5"), "{v:#?}");
}

// --- D6 -------------------------------------------------------------------

#[test]
fn d6_trips_on_bare_float_display() {
    // One violation per referent shape: inline capture, next-positional,
    // indexed positional, named argument, and a raw float literal.
    let v = check_source("crates/bench/src/lab.rs", D6_TRIP);
    assert_eq!(rules_of(&v), ["D6", "D6", "D6", "D6", "D6"], "{v:#?}");
    assert!(v.iter().any(|v| v.message.contains("`println!`")));
    assert!(v.iter().any(|v| v.message.contains("`eprintln!`")));
    assert!(v.iter().any(|v| v.message.contains("`writeln!`")));
    assert!(v.iter().any(|v| v.message.contains("`format!`")));
    assert!(v.iter().all(|v| v.line > 0 && v.col > 0));
}

#[test]
fn d6_passes_pinned_formats_and_non_floats() {
    let v = check_source("crates/bench/src/lab.rs", D6_PASS);
    assert!(v.is_empty(), "{v:#?}");
}

#[test]
fn d6_applies_across_the_telemetry_plane() {
    for rel in [
        "crates/telemetry/src/store.rs",
        "crates/bench/src/net/watch.rs",
        "crates/bench/src/experiments/fixture.rs",
    ] {
        let v = check_source(rel, D6_TRIP);
        assert!(v.iter().any(|v| v.rule == "D6"), "{rel}: {v:#?}");
    }
}

#[test]
fn d6_out_of_scope_off_the_emission_paths() {
    // Engine internals and test harnesses may Display floats freely — only
    // the bytes that land in rows, frames, and dashboards are pinned.
    for rel in [
        DET_SRC,
        "crates/bench/src/net/coordinator.rs",
        "crates/bench/tests/fixture.rs",
    ] {
        let v = check_source(rel, D6_TRIP);
        assert!(!v.iter().any(|v| v.rule == "D6"), "{rel}: {v:#?}");
    }
}

// --- P1 -------------------------------------------------------------------

const P1_PROTOCOL_OK: &str = include_str!("fixtures/p1_protocol_ok.rs");
const P1_PROTOCOL_MISSING_DECODE: &str = include_str!("fixtures/p1_protocol_missing_decode.rs");
const P1_PROTOCOL_NO_SERIALIZE: &str = include_str!("fixtures/p1_protocol_no_serialize.rs");
const P1_TESTS_OK: &str = include_str!("fixtures/p1_tests_ok.rs");
const P1_TESTS_MISSING: &str = include_str!("fixtures/p1_tests_missing.rs");

fn p1(protocol: &str, tests: &str) -> Vec<Violation> {
    let p = SourceFile::parse("crates/bench/src/net/protocol.rs", protocol);
    let t = SourceFile::parse("crates/bench/tests/net.rs", tests);
    check_protocol(&p, &t)
}

#[test]
fn p1_passes_complete_protocol() {
    let v = p1(P1_PROTOCOL_OK, P1_TESTS_OK);
    assert!(v.is_empty(), "{v:#?}");
}

#[test]
fn p1_trips_on_missing_decode_arm() {
    let v = p1(P1_PROTOCOL_MISSING_DECODE, P1_TESTS_OK);
    assert_eq!(rules_of(&v), ["P1"], "{v:#?}");
    assert!(v[0].message.contains("`Message::Pong`"));
    assert!(v[0].message.contains("decode arm"));
}

#[test]
fn p1_trips_on_missing_serialize_derive() {
    let v = p1(P1_PROTOCOL_NO_SERIALIZE, P1_TESTS_OK);
    // Every variant loses its encode leg at once.
    let encode: Vec<_> = v
        .iter()
        .filter(|v| v.message.contains("encode arm"))
        .collect();
    assert_eq!(encode.len(), 3, "{v:#?}");
}

#[test]
fn p1_trips_on_missing_round_trip_test() {
    let v = p1(P1_PROTOCOL_OK, P1_TESTS_MISSING);
    assert_eq!(rules_of(&v), ["P1"], "{v:#?}");
    assert!(v[0].message.contains("`Message::Pong`"));
    assert!(v[0].message.contains("round_trip"));
}

// --- P1 against the real protocol ----------------------------------------

fn real_protocol_pair() -> (String, String) {
    let root = concat!(env!("CARGO_MANIFEST_DIR"), "/../..");
    let protocol = std::fs::read_to_string(format!("{root}/crates/bench/src/net/protocol.rs"))
        .expect("read real protocol.rs");
    let tests = std::fs::read_to_string(format!("{root}/crates/bench/tests/net.rs"))
        .expect("read real tests/net.rs");
    (protocol, tests)
}

#[test]
fn p1_real_protocol_is_clean() {
    let (protocol, tests) = real_protocol_pair();
    let v = p1(&protocol, &tests);
    assert!(v.is_empty(), "{v:#?}");
}

/// The acceptance criterion verbatim: deleting any single `round_trip_*`
/// test from the real tests/net.rs must make P1 fail. Simulated by
/// renaming each round-trip test, one at a time, out of the `round_trip`
/// namespace.
#[test]
fn p1_fails_when_any_single_round_trip_test_is_deleted() {
    let (protocol, tests) = real_protocol_pair();
    let needle = "fn round_trip_";
    let sites: Vec<usize> = tests.match_indices(needle).map(|(i, _)| i).collect();
    assert!(
        sites.len() >= 11,
        "expected one round_trip_* test per Message variant, found {}",
        sites.len()
    );
    for &site in &sites {
        let mut mutated = tests.clone();
        mutated.replace_range(site..site + needle.len(), "fn removed_trip_");
        let v = p1(&protocol, &mutated);
        assert!(
            v.iter()
                .any(|v| v.rule == "P1" && v.message.contains("round_trip")),
            "deleting the test at byte {site} left P1 green"
        );
    }
}
