//! The `lint.toml` suppression allowlist.
//!
//! Format — a fixed TOML subset, parsed by hand (the offline policy rules
//! out a toml crate, and a fixed shape beats a lenient parser for an
//! auditable allowlist):
//!
//! ```toml
//! [[allow]]
//! rule = "D2"
//! path = "crates/bench/src/lookbench.rs"
//! justification = "benchmark harness: the wall clock is its output"
//! ```
//!
//! Every entry must carry a real `justification` — suppression without a
//! written reason is a parse error, not a warning.

/// One allowlist entry: suppresses `rule` for every match in `path`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllowEntry {
    pub rule: String,
    pub path: String,
    pub justification: String,
    /// Line of the `[[allow]]` header, for stale-entry reports.
    pub line: u32,
}

/// Justifications shorter than this are rejected: "perf" is not a reason.
const MIN_JUSTIFICATION_LEN: usize = 20;

/// Parses `lint.toml` content. Errors name the offending line.
pub fn parse(text: &str) -> Result<Vec<AllowEntry>, String> {
    let mut entries: Vec<AllowEntry> = Vec::new();
    let mut current: Option<AllowEntry> = None;

    for (idx, raw) in text.lines().enumerate() {
        let lineno = (idx + 1) as u32;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if line == "[[allow]]" {
            if let Some(done) = current.take() {
                validate(&done)?;
                entries.push(done);
            }
            current = Some(AllowEntry {
                rule: String::new(),
                path: String::new(),
                justification: String::new(),
                line: lineno,
            });
            continue;
        }
        if line.starts_with('[') {
            return Err(format!(
                "lint.toml:{lineno}: unknown table `{line}` (only `[[allow]]` entries are supported)"
            ));
        }
        let Some((key, value)) = line.split_once('=') else {
            return Err(format!(
                "lint.toml:{lineno}: expected `key = \"value\"`, got `{line}`"
            ));
        };
        let Some(entry) = current.as_mut() else {
            return Err(format!(
                "lint.toml:{lineno}: `{}` outside an `[[allow]]` entry",
                key.trim()
            ));
        };
        let value = value.trim();
        let value = value
            .strip_prefix('"')
            .and_then(|v| v.strip_suffix('"'))
            .ok_or_else(|| {
                format!(
                    "lint.toml:{lineno}: value for `{}` must be double-quoted",
                    key.trim()
                )
            })?;
        if value.contains('"') || value.contains('\\') {
            return Err(format!(
                "lint.toml:{lineno}: escapes are not supported in this TOML subset"
            ));
        }
        match key.trim() {
            "rule" => entry.rule = value.to_string(),
            "path" => entry.path = value.to_string(),
            "justification" => entry.justification = value.to_string(),
            other => {
                return Err(format!(
                    "lint.toml:{lineno}: unknown key `{other}` (expected rule/path/justification)"
                ));
            }
        }
    }
    if let Some(done) = current.take() {
        validate(&done)?;
        entries.push(done);
    }
    Ok(entries)
}

fn validate(entry: &AllowEntry) -> Result<(), String> {
    let known = ["D1", "D2", "D3", "D4", "D5", "D6", "P1"];
    if !known.contains(&entry.rule.as_str()) {
        return Err(format!(
            "lint.toml:{}: unknown rule `{}` (expected one of {})",
            entry.line,
            entry.rule,
            known.join("/")
        ));
    }
    if entry.path.is_empty() {
        return Err(format!("lint.toml:{}: entry is missing `path`", entry.line));
    }
    if entry.justification.trim().len() < MIN_JUSTIFICATION_LEN {
        return Err(format!(
            "lint.toml:{}: suppressing {} for {} requires a written justification \
             (≥ {MIN_JUSTIFICATION_LEN} characters explaining why the rule does not apply)",
            entry.line, entry.rule, entry.path
        ));
    }
    Ok(())
}
