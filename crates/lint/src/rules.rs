//! The named invariant rules.
//!
//! Each rule is an independent token-level check over one file (D1–D5) or a
//! cross-file consistency check (P1). Which files a rule applies to is
//! decided by the path scopes in [`crate::scope`]; the checks here assume
//! scoping already happened and look only at tokens.

use crate::lexer::{Token, TokenKind};
use crate::scope;
use std::collections::BTreeMap;

/// One rule violation, positioned at the offending token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Rule id: `D1`…`D5`, `P1`.
    pub rule: &'static str,
    /// Workspace-relative path (unix separators).
    pub path: String,
    /// 1-based line of the offending token.
    pub line: u32,
    /// 1-based column of the offending token.
    pub col: u32,
    /// What is wrong.
    pub message: String,
    /// One-line fix hint.
    pub hint: String,
}

/// A lexed file ready for rule checks.
pub struct SourceFile {
    /// Workspace-relative path with `/` separators.
    pub rel: String,
    /// Full token stream (comments included — D5 needs them).
    pub tokens: Vec<Token>,
    /// Comment-free stream with `::`/`=>` merged.
    pub sig: Vec<Token>,
}

impl SourceFile {
    pub fn parse(rel: &str, source: &str) -> SourceFile {
        let tokens = crate::lexer::tokenize(source);
        let sig = crate::lexer::significant(&tokens);
        SourceFile {
            rel: rel.to_string(),
            tokens,
            sig,
        }
    }
}

fn is_ident(t: &Token, text: &str) -> bool {
    t.kind == TokenKind::Ident && t.text == text
}

fn is_punct(t: &Token, text: &str) -> bool {
    t.kind == TokenKind::Punct && t.text == text
}

/// True when `sig[i..]` starts with the `::`-separated path `segs`
/// (e.g. `["Instant", "::", "now"]` expressed as `&["Instant", "now"]`).
fn path_seq(sig: &[Token], i: usize, segs: &[&str]) -> bool {
    let mut k = i;
    for (n, seg) in segs.iter().enumerate() {
        if n > 0 {
            if !sig.get(k).is_some_and(|t| is_punct(t, "::")) {
                return false;
            }
            k += 1;
        }
        if !sig.get(k).is_some_and(|t| is_ident(t, seg)) {
            return false;
        }
        k += 1;
    }
    true
}

fn violation(
    rule: &'static str,
    file: &SourceFile,
    t: &Token,
    message: String,
    hint: &str,
) -> Violation {
    Violation {
        rule,
        path: file.rel.clone(),
        line: t.line,
        col: t.col,
        message,
        hint: hint.to_string(),
    }
}

/// Runs every per-file rule that is in scope for `file.rel`.
pub fn check_file(file: &SourceFile) -> Vec<Violation> {
    let mut out = Vec::new();
    if scope::d1_applies(&file.rel) {
        out.extend(d1_unordered_iteration(file));
    }
    if scope::d2_applies(&file.rel) {
        out.extend(d2_wall_clock(file));
    }
    if scope::d3_applies(&file.rel) {
        out.extend(d3_entropy_rng(file));
    }
    if scope::d4_applies(&file.rel) {
        out.extend(d4_concurrency(file));
    }
    if scope::d5_applies(&file.rel) {
        out.extend(d5_unsafe_comment(file));
    }
    if scope::d6_applies(&file.rel) {
        out.extend(d6_float_format(file));
    }
    out
}

// ---------------------------------------------------------------------------
// D1 — no HashMap/HashSet iteration in deterministic code
// ---------------------------------------------------------------------------

const D1_HINT: &str = "use BTreeMap/BTreeSet or a sorted Vec; unordered iteration \
     order depends on the per-process RandomState seed";

const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "into_iter",
    "keys",
    "into_keys",
    "values",
    "values_mut",
    "into_values",
    "drain",
    "retain",
];

/// Flags iteration over bindings whose declared type (annotation or
/// `= HashMap::new()` style initializer) is `HashMap`/`HashSet`: iterator
/// method calls on them, and their appearance in a `for … in` head.
fn d1_unordered_iteration(file: &SourceFile) -> Vec<Violation> {
    let sig = &file.sig;
    // Pass 1: names bound to unordered maps/sets in this file (let
    // annotations, struct fields, fn params, and direct initializers).
    let mut bound: BTreeMap<String, String> = BTreeMap::new();
    for (i, t) in sig.iter().enumerate() {
        if !(is_ident(t, "HashMap") || is_ident(t, "HashSet")) {
            continue;
        }
        // Walk back over a `std :: collections ::`-style path prefix.
        let mut j = i;
        while j >= 2 && is_punct(&sig[j - 1], "::") && sig[j - 2].kind == TokenKind::Ident {
            j -= 2;
        }
        if j >= 2
            && (is_punct(&sig[j - 1], ":") || is_punct(&sig[j - 1], "="))
            && sig[j - 2].kind == TokenKind::Ident
        {
            bound.insert(sig[j - 2].text.clone(), t.text.clone());
        }
    }
    if bound.is_empty() {
        return Vec::new();
    }

    let mut out = Vec::new();
    // Pass 2a: iterator-method calls on a bound name.
    for w in sig.windows(3) {
        let (recv, dot, method) = (&w[0], &w[1], &w[2]);
        if is_punct(dot, ".")
            && recv.kind == TokenKind::Ident
            && method.kind == TokenKind::Ident
            && ITER_METHODS.contains(&method.text.as_str())
        {
            if let Some(ty) = bound.get(&recv.text) {
                out.push(violation(
                    "D1",
                    file,
                    method,
                    format!(
                        "`.{}()` on the unordered {ty} `{}` in deterministic code",
                        method.text, recv.text
                    ),
                    D1_HINT,
                ));
            }
        }
    }
    // Pass 2b: a bound name in a `for … in` head.
    let mut i = 0;
    while i < sig.len() {
        if is_ident(&sig[i], "for") {
            // Find `in` at paren depth 0, then scan the iterable expression
            // up to the loop body brace.
            let mut depth = 0i32;
            let mut k = i + 1;
            while k < sig.len() {
                let t = &sig[k];
                if is_punct(t, "(") {
                    depth += 1;
                } else if is_punct(t, ")") {
                    depth -= 1;
                } else if depth == 0 && is_ident(t, "in") {
                    break;
                } else if depth == 0 && (is_punct(t, "{") || is_punct(t, ";")) {
                    k = sig.len(); // not a for-loop head (e.g. `impl … for T`)
                }
                k += 1;
            }
            let mut m = k + 1;
            while m < sig.len() {
                let t = &sig[m];
                if is_punct(t, "(") {
                    depth += 1;
                } else if is_punct(t, ")") {
                    depth -= 1;
                } else if depth == 0 && is_punct(t, "{") {
                    break;
                } else if t.kind == TokenKind::Ident {
                    let called = sig.get(m + 1).is_some_and(|n| is_punct(n, "("));
                    if !called {
                        if let Some(ty) = bound.get(&t.text) {
                            out.push(violation(
                                "D1",
                                file,
                                t,
                                format!(
                                    "`for … in` over the unordered {ty} `{}` in deterministic code",
                                    t.text
                                ),
                                D1_HINT,
                            ));
                        }
                    }
                }
                m += 1;
            }
            i = m;
        }
        i += 1;
    }
    out
}

// ---------------------------------------------------------------------------
// D2 — no wall-clock reads outside the approved timing modules
// ---------------------------------------------------------------------------

const D2_HINT: &str = "thread time through as data, or move the timing into \
     bench/src/net/ or bench/src/sweep.rs; if the clock IS the output \
     (a benchmark harness), allowlist the file in lint.toml";

fn d2_wall_clock(file: &SourceFile) -> Vec<Violation> {
    let mut out = Vec::new();
    const CLOCKS: &[&[&str]] = &[
        &["Instant", "now"],
        &["SystemTime", "now"],
        &["Utc", "now"],
        &["Local", "now"],
        &["OffsetDateTime", "now_utc"],
    ];
    for (i, t) in file.sig.iter().enumerate() {
        for path in CLOCKS {
            if t.text == path[0] && path_seq(&file.sig, i, path) {
                out.push(violation(
                    "D2",
                    file,
                    t,
                    format!(
                        "wall-clock read `{}` outside the approved timing modules",
                        path.join("::")
                    ),
                    D2_HINT,
                ));
            }
        }
        // chrono/time-style date types are wall-clock by construction.
        if is_ident(t, "Date") && file.sig.get(i + 1).is_some_and(|n| is_punct(n, "::")) {
            out.push(violation(
                "D2",
                file,
                t,
                "date construction outside the approved timing modules".to_string(),
                D2_HINT,
            ));
        }
    }
    out
}

// ---------------------------------------------------------------------------
// D3 — no RNG construction from ambient entropy
// ---------------------------------------------------------------------------

const D3_HINT: &str = "accept a seed and construct with seed_from_u64/from_seed; \
     seeds must flow in through builders so every run is replayable";

fn d3_entropy_rng(file: &SourceFile) -> Vec<Violation> {
    let mut out = Vec::new();
    const ENTROPY_IDENTS: &[&str] = &[
        "from_entropy",
        "thread_rng",
        "OsRng",
        "from_os_rng",
        "getrandom",
    ];
    for (i, t) in file.sig.iter().enumerate() {
        if t.kind == TokenKind::Ident && ENTROPY_IDENTS.contains(&t.text.as_str()) {
            out.push(violation(
                "D3",
                file,
                t,
                format!("RNG constructed from ambient entropy via `{}`", t.text),
                D3_HINT,
            ));
        }
        if is_ident(t, "rand") && path_seq(&file.sig, i, &["rand", "random"]) {
            out.push(violation(
                "D3",
                file,
                t,
                "RNG constructed from ambient entropy via `rand::random`".to_string(),
                D3_HINT,
            ));
        }
    }
    out
}

// ---------------------------------------------------------------------------
// D4 — concurrency confined to the approved modules
// ---------------------------------------------------------------------------

const D4_HINT: &str = "keep crates single-threaded by construction; route \
     parallelism through SweepRunner (bench/src/sweep.rs) or the net layer \
     (bench/src/net/), or allowlist with a written justification";

fn d4_concurrency(file: &SourceFile) -> Vec<Violation> {
    let mut out = Vec::new();
    const PRIMITIVES: &[&str] = &["Mutex", "RwLock", "Condvar", "mpsc"];
    for (i, t) in file.sig.iter().enumerate() {
        if t.kind == TokenKind::Ident && PRIMITIVES.contains(&t.text.as_str()) {
            out.push(violation(
                "D4",
                file,
                t,
                format!(
                    "concurrency primitive `{}` outside the approved concurrency modules",
                    t.text
                ),
                D4_HINT,
            ));
        }
        if is_ident(t, "thread") {
            for tail in ["spawn", "scope", "Builder"] {
                if path_seq(&file.sig, i, &["thread", tail]) {
                    out.push(violation(
                        "D4",
                        file,
                        t,
                        format!("`thread::{tail}` outside the approved concurrency modules"),
                        D4_HINT,
                    ));
                }
            }
        }
    }
    out
}

// ---------------------------------------------------------------------------
// D5 — every unsafe block carries a SAFETY comment
// ---------------------------------------------------------------------------

const D5_HINT: &str = "state the invariant that makes this sound in a \
     `// SAFETY:` comment directly above the block";

/// How many lines above an `unsafe` block a `// SAFETY:` comment may sit
/// (multi-line justifications push the marker line up).
const SAFETY_COMMENT_REACH: u32 = 3;

fn d5_unsafe_comment(file: &SourceFile) -> Vec<Violation> {
    let mut out = Vec::new();
    for (i, t) in file.sig.iter().enumerate() {
        if !is_ident(t, "unsafe") || !file.sig.get(i + 1).is_some_and(|n| is_punct(n, "{")) {
            continue;
        }
        let documented = file.tokens.iter().any(|c| {
            matches!(c.kind, TokenKind::LineComment | TokenKind::BlockComment)
                && c.text.contains("SAFETY:")
                && c.line <= t.line
                && c.line + SAFETY_COMMENT_REACH >= t.line
        });
        if !documented {
            out.push(violation(
                "D5",
                file,
                t,
                "`unsafe` block without a `// SAFETY:` comment".to_string(),
                D5_HINT,
            ));
        }
    }
    out
}

// ---------------------------------------------------------------------------
// D6 — no bare float Display on emission paths
// ---------------------------------------------------------------------------

const D6_HINT: &str = "give the placeholder an explicit format — a precision \
     (`{:.6}`), scientific (`{:e}`), or round-trip Debug (`{:?}`); bare `{}` \
     on a float renders value-dependent widths on an emission surface";

const FORMAT_MACROS: &[&str] = &[
    "format",
    "format_args",
    "print",
    "println",
    "eprint",
    "eprintln",
    "write",
    "writeln",
];

/// A float literal per the lexer's one-token numbers: a decimal point, an
/// exponent, or an `f32`/`f64` suffix (radix-prefixed literals are never
/// floats).
fn is_float_literal(text: &str) -> bool {
    let lower = text.to_ascii_lowercase();
    if lower.starts_with("0x") || lower.starts_with("0o") || lower.starts_with("0b") {
        return false;
    }
    if lower.ends_with("f32") || lower.ends_with("f64") || lower.contains('.') {
        return true;
    }
    // An exponent is an `e` followed by an optional sign and a digit; the
    // `e` in an integer suffix (`3usize`) is not one.
    let bytes = lower.as_bytes();
    bytes.iter().enumerate().any(|(i, &b)| {
        b == b'e'
            && match bytes.get(i + 1) {
                Some(b'+') | Some(b'-') => bytes.get(i + 2).is_some_and(u8::is_ascii_digit),
                Some(d) => d.is_ascii_digit(),
                None => false,
            }
    })
}

/// One `{…}` placeholder of a format string: the argument reference (empty
/// for the next positional) and whether its spec pins the float rendering.
struct Placeholder {
    arg: String,
    pinned: bool,
}

/// Parses the placeholders out of a format-string body, honouring `{{`/`}}`
/// escapes. A spec pins the rendering when it asks for a precision (`.`),
/// scientific notation (`e`/`E`), or Debug (`?` — the shortest-round-trip
/// form serde uses for row floats).
fn placeholders(fmt: &str) -> Vec<Placeholder> {
    let mut out = Vec::new();
    let mut chars = fmt.chars().peekable();
    while let Some(c) = chars.next() {
        if c == '}' {
            // `}}` escape (or a stray close — rustc rejects those anyway).
            chars.next_if_eq(&'}');
            continue;
        }
        if c != '{' {
            continue;
        }
        if chars.next_if_eq(&'{').is_some() {
            continue; // `{{` escape
        }
        let mut body = String::new();
        for c in chars.by_ref() {
            if c == '}' {
                break;
            }
            body.push(c);
        }
        let (arg, spec) = match body.split_once(':') {
            Some((a, s)) => (a, s),
            None => (body.as_str(), ""),
        };
        // `$` parameters (`{:prec$}`, `{:.1$}`) count as explicit too —
        // the caller named a width/precision, just dynamically.
        let pinned = spec.contains('.')
            || spec.contains('e')
            || spec.contains('E')
            || spec.contains('?')
            || spec.contains('$');
        out.push(Placeholder {
            arg: arg.to_string(),
            pinned,
        });
    }
    out
}

/// Splits the token span of a macro's arguments (everything between the
/// opening delimiter and its close) at top-level commas.
fn split_args(sig: &[Token], open: usize) -> (Vec<Vec<Token>>, usize) {
    let close_of = |s: &str| match s {
        "(" => ")",
        "[" => "]",
        _ => "}",
    };
    let open_text = sig[open].text.clone();
    let close_text = close_of(&open_text);
    let mut args: Vec<Vec<Token>> = Vec::new();
    let mut current: Vec<Token> = Vec::new();
    let mut depth = 1i32;
    let mut i = open + 1;
    while i < sig.len() {
        let t = &sig[i];
        if is_punct(t, "(") || is_punct(t, "[") || is_punct(t, "{") {
            depth += 1;
        } else if is_punct(t, ")") || is_punct(t, "]") || is_punct(t, "}") {
            depth -= 1;
            if depth == 0 && t.text == close_text {
                break;
            }
        } else if depth == 1 && is_punct(t, ",") {
            args.push(std::mem::take(&mut current));
            i += 1;
            continue;
        }
        current.push(t.clone());
        i += 1;
    }
    if !current.is_empty() {
        args.push(current);
    }
    (args, i)
}

/// Whether an argument expression produces a float: a float literal, a
/// float-bound name used as a value (not called), or a duration-to-float
/// conversion.
fn expr_is_float(expr: &[Token], float_bound: &BTreeMap<String, u32>) -> bool {
    for (i, t) in expr.iter().enumerate() {
        match t.kind {
            TokenKind::Number if is_float_literal(&t.text) => return true,
            TokenKind::Ident => {
                if t.text == "as_secs_f64" || t.text == "as_secs_f32" {
                    return true;
                }
                let called = expr.get(i + 1).is_some_and(|n| is_punct(n, "("));
                if !called && float_bound.contains_key(&t.text) {
                    return true;
                }
            }
            _ => {}
        }
    }
    false
}

/// Flags format-macro placeholders that render a float through bare `{}`
/// Display on an emission path. Two passes, the D1 shape: collect names
/// bound to floats (annotations and float-literal initializers), then walk
/// every `format!`-family call, match placeholders to their referents, and
/// flag float referents whose spec pins nothing.
fn d6_float_format(file: &SourceFile) -> Vec<Violation> {
    let sig = &file.sig;
    // Pass 1: float-bound names — `name: f64`, `name = 0.5`, and
    // `for name in [floats]`-free simple bindings are all covered by the
    // annotation/initializer shapes.
    let mut float_bound: BTreeMap<String, u32> = BTreeMap::new();
    for (i, t) in sig.iter().enumerate() {
        let binder = if is_ident(t, "f64") || is_ident(t, "f32") {
            ":"
        } else if t.kind == TokenKind::Number && is_float_literal(&t.text) {
            "="
        } else {
            continue;
        };
        if i >= 2 && is_punct(&sig[i - 1], binder) && sig[i - 2].kind == TokenKind::Ident {
            float_bound.insert(sig[i - 2].text.clone(), sig[i - 2].line);
        }
    }

    let mut out = Vec::new();
    let mut i = 0;
    while i + 2 < sig.len() {
        let (name, bang, open) = (&sig[i], &sig[i + 1], &sig[i + 2]);
        if !(name.kind == TokenKind::Ident
            && FORMAT_MACROS.contains(&name.text.as_str())
            && is_punct(bang, "!")
            && (is_punct(open, "(") || is_punct(open, "[") || is_punct(open, "{")))
        {
            i += 1;
            continue;
        }
        let (args, end) = split_args(sig, i + 2);
        // The format string is the first Str argument: `format!("…")` has
        // it first, `write!(out, "…")` second.
        let fmt_pos = args
            .iter()
            .position(|a| a.len() == 1 && a[0].kind == TokenKind::Str);
        let Some(fmt_pos) = fmt_pos else {
            i += 3;
            continue;
        };
        let fmt_token = args[fmt_pos][0].clone();
        let rest = &args[fmt_pos + 1..];
        // Named arguments (`name = expr`) and positional expressions.
        let mut named: BTreeMap<String, &[Token]> = BTreeMap::new();
        let mut positional: Vec<&[Token]> = Vec::new();
        for arg in rest {
            if arg.len() >= 3 && arg[0].kind == TokenKind::Ident && is_punct(&arg[1], "=") {
                named.insert(arg[0].text.clone(), &arg[2..]);
            } else {
                positional.push(arg.as_slice());
            }
        }
        let mut next_positional = 0usize;
        for ph in placeholders(fmt_token.str_content()) {
            let referent_is_float = if ph.arg.is_empty() {
                let expr = positional.get(next_positional).copied();
                next_positional += 1;
                expr.is_some_and(|e| expr_is_float(e, &float_bound))
            } else if let Ok(index) = ph.arg.parse::<usize>() {
                positional
                    .get(index)
                    .is_some_and(|e| expr_is_float(e, &float_bound))
            } else if let Some(expr) = named.get(&ph.arg) {
                expr_is_float(expr, &float_bound)
            } else {
                // Inline capture: `{name}` names a binding directly.
                float_bound.contains_key(&ph.arg)
            };
            if referent_is_float && !ph.pinned {
                out.push(violation(
                    "D6",
                    file,
                    &fmt_token,
                    format!(
                        "float rendered through a bare `{{}}` in `{}!` on an emission path",
                        name.text
                    ),
                    D6_HINT,
                ));
            }
        }
        i = end + 1;
    }
    out
}

// ---------------------------------------------------------------------------
// P1 — protocol cross-file consistency
// ---------------------------------------------------------------------------

const P1_HINT_DECODE: &str = "add a `\"<Variant>\" => …` arm to `Message::from_value` \
     in net/protocol.rs";
const P1_HINT_ENCODE: &str = "derive `Serialize` on `enum Message` (or write an \
     explicit encode arm) so the variant can be framed";
const P1_HINT_TEST: &str = "add a `round_trip_<variant>` test to \
     crates/bench/tests/net.rs that encodes and decodes the variant";

/// Checks that every variant of `enum Message` in `protocol` has a decode
/// arm (its externally-tagged name matched as a string literal), an encode
/// path (`Serialize` in the enum's derive list), and a dedicated
/// `round_trip_*` test in `tests` that constructs the variant.
pub fn check_protocol(protocol: &SourceFile, tests: &SourceFile) -> Vec<Violation> {
    let mut out = Vec::new();
    let Some((variants, has_serialize)) = message_enum(protocol) else {
        // No `enum Message` — nothing to check (fixtures exercise both).
        return out;
    };

    // Decode arms: string literal "<Variant>" followed by `=>`.
    let mut decode_arms: Vec<String> = Vec::new();
    for w in protocol.sig.windows(2) {
        if w[0].kind == TokenKind::Str && is_punct(&w[1], "=>") {
            decode_arms.push(w[0].str_content().to_string());
        }
    }

    // Round-trip coverage: variants constructed inside `fn round_trip_*`.
    let covered = round_trip_coverage(tests);

    for v in &variants {
        if !has_serialize {
            out.push(violation(
                "P1",
                protocol,
                &v.token,
                format!(
                    "`Message::{}` has no encode arm (no `Serialize` derive on the enum)",
                    v.token.text
                ),
                P1_HINT_ENCODE,
            ));
        }
        if !decode_arms.iter().any(|a| a == &v.token.text) {
            out.push(violation(
                "P1",
                protocol,
                &v.token,
                format!(
                    "`Message::{}` has no decode arm in `from_value`",
                    v.token.text
                ),
                P1_HINT_DECODE,
            ));
        }
        if !covered.contains(&v.token.text) {
            out.push(violation(
                "P1",
                protocol,
                &v.token,
                format!(
                    "`Message::{}` has no `round_trip_*` test in {}",
                    v.token.text, tests.rel
                ),
                P1_HINT_TEST,
            ));
        }
    }
    out
}

struct Variant {
    token: Token,
}

/// Finds `enum Message { … }`, returning its variant name tokens and
/// whether the derive list directly above it contains `Serialize`.
fn message_enum(file: &SourceFile) -> Option<(Vec<Variant>, bool)> {
    let sig = &file.sig;
    let start = (0..sig.len()).find(|&i| {
        is_ident(&sig[i], "enum")
            && sig.get(i + 1).is_some_and(|t| is_ident(t, "Message"))
            && sig.get(i + 2).is_some_and(|t| is_punct(t, "{"))
    })?;

    // Derive list: scan the attribute tokens immediately before `enum`
    // (skipping doc comments happens for free — sig is comment-free).
    let mut has_serialize = false;
    let mut j = start;
    // Step back over a visibility modifier: `pub` or `pub(crate)`-style.
    if j >= 1 && is_punct(&sig[j - 1], ")") {
        let mut depth = 1i32;
        let mut k = j - 1;
        while k > 0 && depth > 0 {
            k -= 1;
            if is_punct(&sig[k], ")") {
                depth += 1;
            } else if is_punct(&sig[k], "(") {
                depth -= 1;
            }
        }
        if k >= 1 && is_ident(&sig[k - 1], "pub") {
            j = k - 1;
        }
    } else if j >= 1 && is_ident(&sig[j - 1], "pub") {
        j -= 1;
    }
    while j >= 2 && is_punct(&sig[j - 1], "]") {
        // Walk back to the matching `[` of this attribute.
        let mut depth = 1i32;
        let mut k = j - 1;
        while k > 0 && depth > 0 {
            k -= 1;
            if is_punct(&sig[k], "]") {
                depth += 1;
            } else if is_punct(&sig[k], "[") {
                depth -= 1;
            }
        }
        if k >= 1 && is_punct(&sig[k - 1], "#") {
            if sig[k..j].iter().any(|t| is_ident(t, "Serialize")) {
                has_serialize = true;
            }
            j = k - 1;
        } else {
            break;
        }
    }

    // Variant names: idents at brace depth 1 that open a variant (previous
    // significant token is `{`, `,`, or a variant-closing `}`/`)`), with
    // attribute spans skipped.
    let mut variants = Vec::new();
    let mut depth = 1i32; // the enum's own `{` is already open
    let mut i = start + 3;
    let mut prev_opens_variant = true; // right after the enum's `{`
    while i < sig.len() {
        let t = &sig[i];
        if is_punct(t, "{") || is_punct(t, "(") {
            depth += 1;
            prev_opens_variant = false;
        } else if is_punct(t, "}") || is_punct(t, ")") {
            depth -= 1;
            if depth == 0 {
                break; // end of the enum body
            }
            prev_opens_variant = false;
        } else if depth == 1 {
            if is_punct(t, "#") && sig.get(i + 1).is_some_and(|n| is_punct(n, "[")) {
                // Skip a variant attribute.
                let mut adepth = 0i32;
                i += 1;
                while i < sig.len() {
                    if is_punct(&sig[i], "[") {
                        adepth += 1;
                    } else if is_punct(&sig[i], "]") {
                        adepth -= 1;
                        if adepth == 0 {
                            break;
                        }
                    }
                    i += 1;
                }
            } else if t.kind == TokenKind::Ident && prev_opens_variant {
                variants.push(Variant { token: t.clone() });
                prev_opens_variant = false;
            } else if is_punct(t, ",") {
                prev_opens_variant = true;
            }
        }
        i += 1;
    }
    Some((variants, has_serialize))
}

/// The set of `Message::X` variant names referenced inside the body of any
/// function whose name starts with `round_trip`.
fn round_trip_coverage(tests: &SourceFile) -> Vec<String> {
    let sig = &tests.sig;
    let mut covered = Vec::new();
    let mut i = 0;
    while i < sig.len() {
        if is_ident(&sig[i], "fn")
            && sig
                .get(i + 1)
                .is_some_and(|t| t.kind == TokenKind::Ident && t.text.starts_with("round_trip"))
        {
            // Find the body's opening brace, then its matching close.
            let mut k = i + 2;
            while k < sig.len() && !is_punct(&sig[k], "{") {
                k += 1;
            }
            let mut depth = 0i32;
            while k < sig.len() {
                let t = &sig[k];
                if is_punct(t, "{") {
                    depth += 1;
                } else if is_punct(t, "}") {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                } else if is_ident(t, "Message")
                    && sig.get(k + 1).is_some_and(|n| is_punct(n, "::"))
                    && sig.get(k + 2).is_some_and(|n| n.kind == TokenKind::Ident)
                {
                    covered.push(sig[k + 2].text.clone());
                }
                k += 1;
            }
            i = k;
        }
        i += 1;
    }
    covered.sort();
    covered.dedup();
    covered
}
