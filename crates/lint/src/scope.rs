//! Which files each rule applies to.
//!
//! Paths are workspace-relative with `/` separators. The enforcement
//! surface is `crates/**` — `third_party/` holds vendored offline
//! stand-ins for crates.io dependencies (not this repo's code), `target/`
//! is build output, and `tests/fixtures/` directories hold deliberately
//! violating lint fixtures.
//!
//! The scope philosophy, mirrored in the README rule table:
//!
//! * **Library/production sources** (`src/**`) carry the determinism and
//!   concurrency invariants — they are the code whose outputs the
//!   byte-identity contracts pin.
//! * **Test/bench/example harnesses** may time themselves and orchestrate
//!   worker processes by design, so D2/D4 stop at `src/`. D3 (entropy) and
//!   D5 (unsafe hygiene) apply everywhere: a seeded test is replayable, an
//!   entropic one is not.

/// Crates whose outputs must be bit-reproducible: everything that feeds
/// the frozen-hash equivalence suites and the merged experiment rows.
pub const DETERMINISTIC_CRATES: &[&str] = &[
    "core",
    "geometry",
    "model",
    "algorithms",
    "scheduler",
    "engine",
    "adversary",
    "workloads",
];

/// `bench` files on the row/report emission path: everything between a
/// finished simulation and the bytes of a merged JSONL file.
const BENCH_EMISSION: &[&str] = &["crates/bench/src/lab.rs", "crates/bench/src/resume.rs"];

/// The only modules allowed to spawn threads, share state, or read the
/// wall clock: the sweep thread pool, the coordinator/worker net layer,
/// and the telemetry plane's one audited lock wrapper (everything else in
/// `cohesion-telemetry` goes through it).
const CONCURRENCY_MODULES: &[&str] = &["crates/bench/src/sweep.rs", "crates/telemetry/src/sync.rs"];

fn in_deterministic_src(rel: &str) -> bool {
    DETERMINISTIC_CRATES
        .iter()
        .any(|c| rel.starts_with(&format!("crates/{c}/src/")))
}

fn in_bench_emission(rel: &str) -> bool {
    BENCH_EMISSION.contains(&rel) || rel.starts_with("crates/bench/src/experiments/")
}

fn in_src(rel: &str) -> bool {
    rel.contains("/src/")
}

fn in_concurrency_module(rel: &str) -> bool {
    CONCURRENCY_MODULES.contains(&rel) || rel.starts_with("crates/bench/src/net/")
}

/// D1: deterministic crates' sources plus the bench emission path.
pub fn d1_applies(rel: &str) -> bool {
    in_deterministic_src(rel) || in_bench_emission(rel)
}

/// D2: every library source outside the approved timing modules.
pub fn d2_applies(rel: &str) -> bool {
    in_src(rel) && !in_concurrency_module(rel)
}

/// D3: everywhere — an entropic test is as unreplayable as an entropic run.
pub fn d3_applies(_rel: &str) -> bool {
    true
}

/// D4: every library source outside the approved concurrency modules.
pub fn d4_applies(rel: &str) -> bool {
    in_src(rel) && !in_concurrency_module(rel)
}

/// D5: everywhere.
pub fn d5_applies(_rel: &str) -> bool {
    true
}

/// D6: the emission surfaces — bench row/report emission, the telemetry
/// plane's sources, and the `lab watch` renderer. A bare `{}` on a float
/// there prints value-dependent widths into files and frames that external
/// tools parse.
pub fn d6_applies(rel: &str) -> bool {
    in_bench_emission(rel)
        || rel.starts_with("crates/telemetry/src/")
        || rel == "crates/bench/src/net/watch.rs"
}

/// The two files rule P1 cross-checks.
pub const PROTOCOL_FILE: &str = "crates/bench/src/net/protocol.rs";
pub const PROTOCOL_TESTS_FILE: &str = "crates/bench/tests/net.rs";

/// Files the workspace walker skips entirely.
pub fn excluded(rel: &str) -> bool {
    rel.contains("/tests/fixtures/")
}
