//! `cohesion-lint` — determinism & concurrency invariant checker.
//!
//! Every headline result in this reproduction — byte-identical sharded
//! merges, frozen-hash session equivalence, checkpoint-and-resume byte for
//! byte — rests on invariants the compiler does not enforce: no wall clock
//! or entropy in the deterministic crates, no unordered-map iteration
//! feeding report output, all threading confined to two approved modules.
//! This crate enforces them statically, as named, individually-testable
//! rules over a hand-rolled lexer (no `syn`; the offline `third_party/`
//! policy applies):
//!
//! | rule | invariant |
//! |------|-----------|
//! | D1   | no `HashMap`/`HashSet` iteration in deterministic code |
//! | D2   | no wall-clock reads outside `bench/src/net/`, `bench/src/sweep.rs` |
//! | D3   | no RNG construction from ambient entropy |
//! | D4   | concurrency confined to the approved modules |
//! | D5   | every `unsafe` block carries a `// SAFETY:` comment |
//! | D6   | no bare-`{}` float `Display` on row/telemetry emission paths |
//! | P1   | every `Message` variant has encode + decode arms and a round-trip test |
//!
//! Violations print rustc-style `file:line:col` diagnostics (or `--json`)
//! and can be suppressed only through the checked-in `lint.toml` allowlist,
//! where every entry requires a written justification. Runs as the
//! standalone `cohesion-lint` binary and as `lab lint`.
//!
//! The linter holds itself to its own rules: no dependencies, no threads,
//! no clocks, `BTreeMap` only, and a deterministic (sorted) file walk.

#![forbid(unsafe_code)]
#![deny(unsafe_op_in_unsafe_fn)]

pub mod config;
pub mod lexer;
pub mod rules;
pub mod scope;

use config::AllowEntry;
use rules::{SourceFile, Violation};
use std::path::{Path, PathBuf};

/// Outcome of linting a workspace.
#[derive(Debug)]
pub struct LintReport {
    /// Violations not covered by the allowlist, sorted by (path, line, col).
    pub violations: Vec<Violation>,
    /// Violations suppressed by a `lint.toml` entry.
    pub suppressed: Vec<Violation>,
    /// Allowlist entries that matched nothing — stale, worth deleting.
    pub stale_allows: Vec<AllowEntry>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
}

impl LintReport {
    /// True when the tree is clean (stale allowlist entries only warn).
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// Human-readable rustc-style rendering.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for v in &self.violations {
            out.push_str(&format!(
                "{}:{}:{}: error[{}]: {}\n  hint: {}\n",
                v.path, v.line, v.col, v.rule, v.message, v.hint
            ));
        }
        for e in &self.stale_allows {
            out.push_str(&format!(
                "lint.toml:{}: warning: stale allowlist entry ({} for {}) matched nothing — delete it\n",
                e.line, e.rule, e.path
            ));
        }
        out.push_str(&format!(
            "cohesion-lint: {} file(s), {} violation(s), {} suppressed by lint.toml\n",
            self.files_scanned,
            self.violations.len(),
            self.suppressed.len()
        ));
        out
    }

    /// Machine-readable rendering (one JSON object).
    pub fn render_json(&self) -> String {
        fn esc(s: &str) -> String {
            let mut out = String::with_capacity(s.len() + 2);
            for c in s.chars() {
                match c {
                    '"' => out.push_str("\\\""),
                    '\\' => out.push_str("\\\\"),
                    '\n' => out.push_str("\\n"),
                    '\t' => out.push_str("\\t"),
                    '\r' => out.push_str("\\r"),
                    c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                    c => out.push(c),
                }
            }
            out
        }
        fn violation_json(v: &Violation) -> String {
            format!(
                "{{\"rule\":\"{}\",\"path\":\"{}\",\"line\":{},\"col\":{},\"message\":\"{}\",\"hint\":\"{}\"}}",
                v.rule,
                esc(&v.path),
                v.line,
                v.col,
                esc(&v.message),
                esc(&v.hint)
            )
        }
        let violations: Vec<String> = self.violations.iter().map(violation_json).collect();
        let suppressed: Vec<String> = self.suppressed.iter().map(violation_json).collect();
        let stale: Vec<String> = self
            .stale_allows
            .iter()
            .map(|e| {
                format!(
                    "{{\"rule\":\"{}\",\"path\":\"{}\",\"line\":{}}}",
                    esc(&e.rule),
                    esc(&e.path),
                    e.line
                )
            })
            .collect();
        format!(
            "{{\"files_scanned\":{},\"violations\":[{}],\"suppressed\":[{}],\"stale_allowlist_entries\":[{}]}}\n",
            self.files_scanned,
            violations.join(","),
            suppressed.join(","),
            stale.join(",")
        )
    }
}

/// Lints one source string as if it lived at `rel` — the per-file rules
/// only (P1 needs a pair; see [`rules::check_protocol`]). This is the
/// fixture-test entry point.
pub fn check_source(rel: &str, source: &str) -> Vec<Violation> {
    rules::check_file(&SourceFile::parse(rel, source))
}

/// Lints the whole workspace rooted at `root` against `root/lint.toml`
/// (missing allowlist = empty allowlist).
pub fn lint_workspace(root: &Path) -> Result<LintReport, String> {
    let allows = match std::fs::read_to_string(root.join("lint.toml")) {
        Ok(text) => config::parse(&text)?,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Vec::new(),
        Err(e) => return Err(format!("reading lint.toml: {e}")),
    };

    let mut files = Vec::new();
    collect_rs_files(&root.join("crates"), root, &mut files)?;
    files.sort();

    let mut all = Vec::new();
    let mut protocol: Option<SourceFile> = None;
    let mut protocol_tests: Option<SourceFile> = None;
    for rel in &files {
        let source =
            std::fs::read_to_string(root.join(rel)).map_err(|e| format!("reading {rel}: {e}"))?;
        let file = SourceFile::parse(rel, &source);
        all.extend(rules::check_file(&file));
        if rel == scope::PROTOCOL_FILE {
            protocol = Some(file);
        } else if rel == scope::PROTOCOL_TESTS_FILE {
            protocol_tests = Some(file);
        }
    }
    if let (Some(p), Some(t)) = (&protocol, &protocol_tests) {
        all.extend(rules::check_protocol(p, t));
    }
    all.sort_by(|a, b| (&a.path, a.line, a.col, a.rule).cmp(&(&b.path, b.line, b.col, b.rule)));

    let mut used = vec![false; allows.len()];
    let mut violations = Vec::new();
    let mut suppressed = Vec::new();
    for v in all {
        match allows
            .iter()
            .position(|a| a.rule == v.rule && a.path == v.path)
        {
            Some(i) => {
                used[i] = true;
                suppressed.push(v);
            }
            None => violations.push(v),
        }
    }
    let stale_allows = allows
        .into_iter()
        .zip(used)
        .filter_map(|(a, u)| (!u).then_some(a))
        .collect();

    Ok(LintReport {
        violations,
        suppressed,
        stale_allows,
        files_scanned: files.len(),
    })
}

/// Recursive, deterministic (sorted) walk for `.rs` files. `target/` build
/// output and `tests/fixtures/` lint fixtures are skipped.
fn collect_rs_files(dir: &Path, root: &Path, out: &mut Vec<String>) -> Result<(), String> {
    let entries = match std::fs::read_dir(dir) {
        Ok(e) => e,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(()),
        Err(e) => return Err(format!("reading {}: {e}", dir.display())),
    };
    let mut paths: Vec<PathBuf> = entries.filter_map(|e| e.ok().map(|e| e.path())).collect();
    paths.sort();
    for path in paths {
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if path.is_dir() {
            if name == "target" {
                continue;
            }
            collect_rs_files(&path, root, out)?;
        } else if name.ends_with(".rs") {
            let rel = path
                .strip_prefix(root)
                .map_err(|_| format!("{} escapes the workspace root", path.display()))?
                .components()
                .map(|c| c.as_os_str().to_string_lossy())
                .collect::<Vec<_>>()
                .join("/");
            if !scope::excluded(&rel) {
                out.push(rel);
            }
        }
    }
    Ok(())
}

/// Locates the workspace root by walking up from `start` until a directory
/// with both a `Cargo.toml` and a `crates/` subdirectory appears.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = start.to_path_buf();
    loop {
        if dir.join("Cargo.toml").is_file() && dir.join("crates").is_dir() {
            return Some(dir);
        }
        if !dir.pop() {
            return None;
        }
    }
}
