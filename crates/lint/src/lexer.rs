//! A small, loss-tolerant Rust lexer.
//!
//! The rule engine needs exactly one guarantee the naive `grep` approach
//! cannot give: that a match is *code*, not a comment, a string literal, or
//! part of a longer identifier. This lexer provides that guarantee without
//! pulling in `syn`/`proc-macro2` (the offline `third_party/` policy) by
//! tokenizing the classic trap cases precisely:
//!
//! * nested block comments (`/* /* */ */`),
//! * raw strings with any hash depth (`r##"…"##`, `br#"…"#`, `cr"…"`),
//! * lifetimes vs. char literals (`'a` vs. `'a'` vs. `b'x'`),
//! * raw identifiers (`r#type`).
//!
//! It is *tolerant*, not validating: unterminated literals and stray bytes
//! produce best-effort tokens and the lexer always terminates — it must
//! never panic on any input (property-tested in `tests/lexer_props.rs`).

/// What a [`Token`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (`for`, `unsafe`, `HashMap`, `r#type`).
    Ident,
    /// A lifetime or loop label: `'a`, `'static`, `'_`.
    Lifetime,
    /// A char literal `'x'` or byte literal `b'x'`.
    Char,
    /// Any string literal: `"…"`, `r#"…"#`, `b"…"`, `br"…"`, `c"…"`.
    Str,
    /// An integer or float literal, suffix included.
    Number,
    /// One punctuation character, except that `::` and `=>` are merged by
    /// [`significant`] for the rule matchers.
    Punct,
    /// `// …` (doc comments included).
    LineComment,
    /// `/* … */`, nesting handled (doc comments included).
    BlockComment,
}

/// One lexeme with its 1-based source position.
#[derive(Debug, Clone)]
pub struct Token {
    pub kind: TokenKind,
    pub text: String,
    pub line: u32,
    pub col: u32,
}

impl Token {
    /// The inner content of a string literal: quotes, prefix letters, and
    /// raw-string hashes stripped. Returns the raw text for other kinds.
    pub fn str_content(&self) -> &str {
        if self.kind != TokenKind::Str {
            return &self.text;
        }
        let no_prefix = self.text.trim_start_matches(['r', 'b', 'c']);
        let after_hashes = no_prefix.trim_start_matches('#');
        let hashes = no_prefix.len() - after_hashes.len();
        let mut s = after_hashes.strip_prefix('"').unwrap_or(after_hashes);
        for _ in 0..hashes {
            s = s.strip_suffix('#').unwrap_or(s);
        }
        s.strip_suffix('"').unwrap_or(s)
    }
}

struct Lexer {
    chars: Vec<char>,
    i: usize,
    line: u32,
    col: u32,
}

impl Lexer {
    fn peek(&self, k: usize) -> Option<char> {
        self.chars.get(self.i + k).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = *self.chars.get(self.i)?;
        self.i += 1;
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn bump_n(&mut self, n: usize) {
        for _ in 0..n {
            if self.bump().is_none() {
                break;
            }
        }
    }
}

fn is_ident_start(c: char) -> bool {
    c == '_' || c.is_alphabetic()
}

fn is_ident_continue(c: char) -> bool {
    c == '_' || c.is_alphanumeric()
}

/// Tokenizes `src`. Never panics; always terminates (every loop iteration
/// consumes at least one character).
pub fn tokenize(src: &str) -> Vec<Token> {
    let mut lx = Lexer {
        chars: src.chars().collect(),
        i: 0,
        line: 1,
        col: 1,
    };
    let mut out = Vec::new();
    while let Some(c) = lx.peek(0) {
        let (line, col, start) = (lx.line, lx.col, lx.i);
        let kind = match c {
            c if c.is_whitespace() => {
                lx.bump();
                continue;
            }
            '/' if lx.peek(1) == Some('/') => {
                while let Some(c) = lx.peek(0) {
                    if c == '\n' {
                        break;
                    }
                    lx.bump();
                }
                TokenKind::LineComment
            }
            '/' if lx.peek(1) == Some('*') => {
                lx.bump_n(2);
                let mut depth = 1usize;
                while depth > 0 {
                    match (lx.peek(0), lx.peek(1)) {
                        (Some('/'), Some('*')) => {
                            depth += 1;
                            lx.bump_n(2);
                        }
                        (Some('*'), Some('/')) => {
                            depth -= 1;
                            lx.bump_n(2);
                        }
                        (Some(_), _) => {
                            lx.bump();
                        }
                        (None, _) => break, // unterminated: tolerate
                    }
                }
                TokenKind::BlockComment
            }
            '\'' => lex_quote(&mut lx),
            '"' => {
                lx.bump();
                lex_escaped_string_body(&mut lx);
                TokenKind::Str
            }
            c if c.is_ascii_digit() => lex_number(&mut lx),
            c if is_ident_start(c) => lex_ident_or_literal_prefix(&mut lx),
            _ => {
                lx.bump();
                TokenKind::Punct
            }
        };
        out.push(Token {
            kind,
            text: lx.chars[start..lx.i].iter().collect(),
            line,
            col,
        });
    }
    out
}

/// `'` opens either a lifetime (`'a`), a label (`'outer`), or a char literal
/// (`'a'`, `'\n'`, `'\u{1F600}'`, `'('`). Disambiguation: scan the
/// identifier after the quote; a closing quote right behind one character
/// makes it a char literal, anything else a lifetime.
fn lex_quote(lx: &mut Lexer) -> TokenKind {
    lx.bump(); // opening '
    match lx.peek(0) {
        Some('\\') => {
            lx.bump();
            if lx.peek(0) == Some('u') && lx.peek(1) == Some('{') {
                while let Some(c) = lx.peek(0) {
                    lx.bump();
                    if c == '}' {
                        break;
                    }
                }
            } else {
                lx.bump();
            }
            if lx.peek(0) == Some('\'') {
                lx.bump();
            }
            TokenKind::Char
        }
        Some(c) if is_ident_continue(c) => {
            if lx.peek(1) == Some('\'') {
                lx.bump_n(2); // 'a'
                return TokenKind::Char;
            }
            while let Some(c) = lx.peek(0) {
                if !is_ident_continue(c) {
                    break;
                }
                lx.bump();
            }
            TokenKind::Lifetime
        }
        Some('\'') => {
            // `''`: invalid Rust; consume one quote and move on.
            lx.bump();
            TokenKind::Char
        }
        Some(_) => {
            lx.bump(); // '(' and friends
            if lx.peek(0) == Some('\'') {
                lx.bump();
            }
            TokenKind::Char
        }
        None => TokenKind::Punct,
    }
}

/// Body of a non-raw string (opening quote already consumed): escapes
/// processed, unterminated tolerated.
fn lex_escaped_string_body(lx: &mut Lexer) {
    while let Some(c) = lx.peek(0) {
        lx.bump();
        match c {
            '\\' => {
                lx.bump();
            }
            '"' => break,
            _ => {}
        }
    }
}

/// Raw-string body: consume until `"` followed by `hashes` `#`s.
fn lex_raw_string_body(lx: &mut Lexer, hashes: usize) {
    while let Some(c) = lx.peek(0) {
        lx.bump();
        if c == '"' {
            let mut seen = 0;
            while seen < hashes && lx.peek(0) == Some('#') {
                lx.bump();
                seen += 1;
            }
            if seen == hashes {
                break;
            }
        }
    }
}

/// An identifier-start character begins either a plain identifier, a raw
/// identifier (`r#type`), a byte char (`b'x'`), or a prefixed string
/// literal (`r"…"`, `r#"…"#`, `b"…"`, `br##"…"##`, `c"…"`, `cr"…"`).
fn lex_ident_or_literal_prefix(lx: &mut Lexer) -> TokenKind {
    let c0 = lx.peek(0).unwrap_or(' ');
    let c1 = lx.peek(1);

    // Byte char: b'x'
    if c0 == 'b' && c1 == Some('\'') {
        lx.bump(); // b
        lex_quote(lx);
        return TokenKind::Char;
    }

    // String-literal prefixes: r | b | c | br | cr (then #* then ").
    let prefix_len = match (c0, c1) {
        ('b', Some('r')) | ('c', Some('r')) => 2,
        ('r' | 'b' | 'c', _) => 1,
        _ => 0,
    };
    if prefix_len > 0 {
        let raw = c0 == 'r' || c1 == Some('r');
        let mut k = prefix_len;
        let mut hashes = 0usize;
        if raw {
            while lx.peek(k) == Some('#') {
                k += 1;
                hashes += 1;
            }
        }
        if lx.peek(k) == Some('"') && (raw || hashes == 0) {
            lx.bump_n(k + 1); // prefix, hashes, opening quote
            if raw {
                lex_raw_string_body(lx, hashes);
            } else {
                lex_escaped_string_body(lx);
            }
            return TokenKind::Str;
        }
        // Raw identifier: r#type
        if c0 == 'r' && c1 == Some('#') && lx.peek(2).is_some_and(is_ident_start) {
            lx.bump_n(2);
            while let Some(c) = lx.peek(0) {
                if !is_ident_continue(c) {
                    break;
                }
                lx.bump();
            }
            return TokenKind::Ident;
        }
    }

    // Plain identifier.
    while let Some(c) = lx.peek(0) {
        if !is_ident_continue(c) {
            break;
        }
        lx.bump();
    }
    TokenKind::Ident
}

/// Numbers: decimal/hex/octal/binary integers, floats with exponents, and
/// type suffixes. `1..2` stays integer + two dots; `1.max(2)` stays integer
/// + method call; `x.0` tuple access works because the dot is lexed first.
fn lex_number(lx: &mut Lexer) -> TokenKind {
    let radix_prefixed = lx.peek(0) == Some('0')
        && matches!(
            lx.peek(1),
            Some('x') | Some('o') | Some('b') | Some('X') | Some('O') | Some('B')
        );
    if radix_prefixed {
        lx.bump_n(2);
        while let Some(c) = lx.peek(0) {
            if !(c.is_ascii_alphanumeric() || c == '_') {
                break;
            }
            lx.bump();
        }
        return TokenKind::Number;
    }
    let eat_digits = |lx: &mut Lexer| {
        while let Some(c) = lx.peek(0) {
            if !(c.is_ascii_digit() || c == '_') {
                break;
            }
            lx.bump();
        }
    };
    eat_digits(lx);
    if lx.peek(0) == Some('.') && lx.peek(1).is_some_and(|c| c.is_ascii_digit()) {
        lx.bump();
        eat_digits(lx);
    }
    if matches!(lx.peek(0), Some('e') | Some('E'))
        && (lx.peek(1).is_some_and(|c| c.is_ascii_digit())
            || (matches!(lx.peek(1), Some('+') | Some('-'))
                && lx.peek(2).is_some_and(|c| c.is_ascii_digit())))
    {
        lx.bump();
        if matches!(lx.peek(0), Some('+') | Some('-')) {
            lx.bump();
        }
        eat_digits(lx);
    }
    // Suffix (u8, f64, usize, …).
    while let Some(c) = lx.peek(0) {
        if !is_ident_continue(c) {
            break;
        }
        lx.bump();
    }
    TokenKind::Number
}

/// The comment-free token stream the rule matchers run on, with the two
/// multi-character sequences they care about (`::`, `=>`) merged into
/// single tokens. Merging only fires on adjacent punctuation (same line,
/// consecutive columns), so `: :` stays two tokens.
pub fn significant(tokens: &[Token]) -> Vec<Token> {
    let mut out: Vec<Token> = Vec::with_capacity(tokens.len());
    for t in tokens {
        if matches!(t.kind, TokenKind::LineComment | TokenKind::BlockComment) {
            continue;
        }
        if t.kind == TokenKind::Punct {
            if let Some(prev) = out.last_mut() {
                let adjacent = prev.kind == TokenKind::Punct
                    && prev.line == t.line
                    && prev.col + prev.text.chars().count() as u32 == t.col;
                if adjacent
                    && ((prev.text == ":" && t.text == ":") || (prev.text == "=" && t.text == ">"))
                {
                    prev.text.push_str(&t.text);
                    continue;
                }
            }
        }
        out.push(t.clone());
    }
    out
}
