//! The standalone `cohesion-lint` binary (also reachable as `lab lint`).

#![forbid(unsafe_code)]
#![deny(unsafe_op_in_unsafe_fn)]

use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "\
cohesion-lint — determinism & concurrency invariant checker

usage: cohesion-lint [--root DIR] [--json]

  --root DIR   workspace root (default: walk up from the current directory)
  --json       machine-readable report on stdout

Rules D1–D5 and P1 are documented in the README's \"Static analysis\"
section. Suppressions live in the checked-in lint.toml allowlist; every
entry requires a written justification. Exit code 1 on any unallowed
violation.";

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut json = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--root" => match args.next() {
                Some(dir) => root = Some(PathBuf::from(dir)),
                None => {
                    eprintln!("--root needs a directory\n\n{USAGE}");
                    return ExitCode::from(2);
                }
            },
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown argument `{other}`\n\n{USAGE}");
                return ExitCode::from(2);
            }
        }
    }
    let root = root.or_else(|| {
        std::env::current_dir()
            .ok()
            .and_then(|d| cohesion_lint::find_workspace_root(&d))
    });
    let Some(root) = root else {
        eprintln!("no workspace root found (no Cargo.toml + crates/ above the current directory); pass --root");
        return ExitCode::from(2);
    };
    match cohesion_lint::lint_workspace(&root) {
        Ok(report) => {
            if json {
                print!("{}", report.render_json());
            } else {
                print!("{}", report.render_text());
            }
            if report.is_clean() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("cohesion-lint: {e}");
            ExitCode::from(2)
        }
    }
}
