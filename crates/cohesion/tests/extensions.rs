//! The §6.2–§6.3 extensions: unlimited visibility under full Async,
//! disconnected starts, open visibility, multiplicity detection, and the
//! three-dimensional generalization.

use cohesion::geometry::Vec3;
use cohesion::model::VisibilityGraph;
use cohesion::prelude::*;

#[test]
fn unlimited_visibility_converges_under_full_async() {
    // §6.2: when V exceeds the initial diameter, the algorithm solves Point
    // Convergence even under unbounded asynchrony (hull-diminishing keeps
    // everyone mutually visible; no multiplicity detection needed).
    let config = workloads::random_connected(10, 1.0, 31);
    let diam = config.diameter();
    let report = SimulationBuilder::new(config, KirkpatrickAlgorithm::new(1))
        .visibility(diam * 2.0)
        .scheduler(AsyncScheduler::new(7))
        .epsilon(0.05)
        .max_events(400_000)
        .multiplicity_detection(false)
        .run();
    assert!(report.converged, "final diameter {}", report.final_diameter);
    assert!(report.cohesion_maintained, "complete graph stays complete");
}

#[test]
fn disconnected_start_converges_per_component() {
    // §6.3.1: each connected component converges to its own point.
    let mut pts: Vec<cohesion::geometry::Vec2> =
        workloads::random_connected(5, 1.0, 32).positions().to_vec();
    let offset = cohesion::geometry::Vec2::new(50.0, 0.0);
    pts.extend(
        workloads::random_connected(5, 1.0, 33)
            .positions()
            .iter()
            .map(|&p| p + offset),
    );
    let config = Configuration::new(pts);
    let graph = VisibilityGraph::from_configuration(&config, 1.0);
    assert_eq!(graph.components().len(), 2);

    let report = SimulationBuilder::new(config, KirkpatrickAlgorithm::new(1))
        .visibility(1.0)
        .scheduler(SSyncScheduler::new(11))
        .epsilon(0.05)
        .max_events(400_000)
        .track_strong_visibility(false)
        .run();
    // Global diameter stays ~50 (two clusters), so `converged` is false —
    // but each component must have collapsed.
    let final_pos = report.final_configuration.positions();
    let comp_diam = |range: std::ops::Range<usize>| -> f64 {
        let mut best = 0.0_f64;
        for i in range.clone() {
            for j in range.clone() {
                best = best.max(final_pos[i].dist(final_pos[j]));
            }
        }
        best
    };
    assert!(
        comp_diam(0..5) < 0.1,
        "component 1 diameter {}",
        comp_diam(0..5)
    );
    assert!(
        comp_diam(5..10) < 0.1,
        "component 2 diameter {}",
        comp_diam(5..10)
    );
    assert!(report.cohesion_maintained);
}

#[test]
fn three_dimensional_convergence() {
    // §6.3.2: same algorithm, cone rule, in 3D, under k-Async.
    let config = workloads::ball3(12, 1.0, 34);
    let report = SimulationBuilder::<Vec3>::new(config, KirkpatrickAlgorithm::new(2))
        .visibility(1.0)
        .scheduler(KAsyncScheduler::new(2, 35))
        .epsilon(0.08)
        .max_events(600_000)
        .run();
    assert!(
        report.cohesively_converged(),
        "3D diameter {}",
        report.final_diameter
    );
    assert_eq!(report.strong_visibility_ok, Some(true));
    assert_eq!(
        report.hulls_nested, None,
        "hull checks are planar-only by design"
    );
}

#[test]
fn multiplicity_detection_is_irrelevant_to_the_algorithm() {
    // The destination rule depends only on positions; co-located robots are
    // collapsed or not without changing behaviour.
    let config = Configuration::new(vec![
        cohesion::geometry::Vec2::new(0.0, 0.0),
        cohesion::geometry::Vec2::new(0.0, 0.0), // co-located pair
        cohesion::geometry::Vec2::new(0.8, 0.0),
    ]);
    for detection in [false, true] {
        let report = SimulationBuilder::new(config.clone(), KirkpatrickAlgorithm::new(1))
            .visibility(1.0)
            .scheduler(FSyncScheduler::new())
            .multiplicity_detection(detection)
            .epsilon(0.05)
            .max_events(60_000)
            .run();
        assert!(report.cohesively_converged(), "multiplicity={detection}");
    }
}

#[test]
fn per_robot_smaller_visibility_still_converges_with_margin() {
    // §6.2: differing radii are tolerated if within a constant factor; we
    // approximate by running with the smallest radius for everyone (the
    // conservative end of the paper's condition).
    let config = workloads::random_connected(8, 0.8, 36);
    let report = SimulationBuilder::new(config, KirkpatrickAlgorithm::new(1))
        .visibility(0.8)
        .scheduler(SSyncScheduler::new(17))
        .epsilon(0.05)
        .max_events(300_000)
        .run();
    assert!(report.cohesively_converged());
}

#[test]
fn heterogeneous_radii_converge_cohesively() {
    // §6.2 proper: per-robot radii within a small constant factor (×1.25),
    // with the configuration connected under the *smallest* radius so the
    // initial mutual visibility graph is connected.
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};
    let base = 0.8;
    let config = workloads::random_connected(9, base, 44);
    let mut rng = SmallRng::seed_from_u64(45);
    let radii: Vec<f64> = (0..config.len())
        .map(|_| rng.gen_range(base..base * 1.25))
        .collect();
    let report = SimulationBuilder::new(config, KirkpatrickAlgorithm::new(2))
        .visibility(base)
        .visibility_radii(radii)
        .scheduler(KAsyncScheduler::new(2, 46))
        .epsilon(0.05)
        .max_events(400_000)
        .track_strong_visibility(false)
        .run();
    assert!(
        report.cohesively_converged(),
        "heterogeneous radii: diameter {} cohesive {}",
        report.final_diameter,
        report.cohesion_maintained
    );
}

#[test]
fn occlusion_still_converges_cohesively() {
    // §8 future work, exercised: on a line every robot sees only its
    // immediate neighbours once occlusion is on (interior robots block the
    // sight lines), yet cohesive convergence still holds — the algorithm
    // only ever needed its extreme-pair rule.
    let config = workloads::line(6, 0.9);
    let report = SimulationBuilder::new(config, KirkpatrickAlgorithm::new(1))
        .visibility(1.0)
        .scheduler(SSyncScheduler::new(77))
        .occlusion(0.01)
        .epsilon(0.05)
        .max_events(400_000)
        .run();
    assert!(
        report.cohesively_converged(),
        "occlusion run: diameter {} cohesive {}",
        report.final_diameter,
        report.cohesion_maintained
    );
}

#[test]
fn gcm_requires_axis_agreement() {
    // Negative control for the frame machinery: GCM converges with aligned
    // frames but the same run under random per-activation rotations loses
    // its invariant (it may still shrink, but the minbox identity breaks —
    // we check it at least *behaves differently*, demonstrating the engine
    // really is feeding disoriented frames).
    use cohesion::model::FrameMode;
    let config = workloads::random_connected(8, 1.0, 37);
    let aligned = SimulationBuilder::new(config.clone(), GcmAlgorithm::new())
        .visibility(100.0)
        .scheduler(FSyncScheduler::new())
        .frame_mode(FrameMode::Aligned)
        .seed(7)
        .epsilon(0.01)
        .max_events(30_000)
        .run();
    assert!(
        aligned.converged,
        "GCM with axis agreement converges in O(1) rounds"
    );
    let disoriented = SimulationBuilder::new(config, GcmAlgorithm::new())
        .visibility(100.0)
        .scheduler(FSyncScheduler::new())
        .frame_mode(FrameMode::RandomOrtho)
        .seed(7)
        .epsilon(0.01)
        .max_events(30_000)
        .run();
    assert_ne!(
        aligned.final_configuration, disoriented.final_configuration,
        "random frames must actually change GCM's behaviour"
    );
}

#[test]
fn full_stack_determinism() {
    let run = || {
        SimulationBuilder::new(
            workloads::random_connected(9, 1.0, 38),
            KirkpatrickAlgorithm::new(2),
        )
        .visibility(1.0)
        .scheduler(KAsyncScheduler::new(2, 39))
        .seed(40)
        .epsilon(0.05)
        .max_events(50_000)
        .run()
    };
    let (a, b) = (run(), run());
    assert_eq!(a.final_configuration, b.final_configuration);
    assert_eq!(a.events, b.events);
    assert_eq!(a.diameter_series, b.diameter_series);
}
