//! The §6.1 error-tolerance claims, executed.

use cohesion::geometry::Vec2;
use cohesion::model::{MotionError, MotionModel, PerceptionModel};
use cohesion::prelude::*;

fn tolerant_run(
    perception: PerceptionModel,
    motion: MotionModel,
    delta: f64,
    skew: f64,
    seed: u64,
) -> SimulationReport {
    let k = 2;
    SimulationBuilder::new(
        workloads::random_connected(10, 1.0, seed),
        KirkpatrickAlgorithm::with_error_tolerance(k, delta, skew),
    )
    .visibility(1.0)
    .scheduler(KAsyncScheduler::new(k, seed))
    .perception(perception)
    .motion(motion)
    .epsilon(0.08)
    .max_events(600_000)
    .run()
}

#[test]
fn tolerates_distance_measurement_error() {
    let delta = 0.05;
    let report = tolerant_run(
        PerceptionModel::new(delta, 0.0),
        MotionModel::RIGID,
        delta,
        0.0,
        21,
    );
    assert!(
        report.cohesively_converged(),
        "δ = {delta}: diameter {}",
        report.final_diameter
    );
}

#[test]
fn tolerates_angular_skew() {
    let skew = 0.1;
    let report = tolerant_run(
        PerceptionModel::new(0.0, skew),
        MotionModel::RIGID,
        0.0,
        skew,
        22,
    );
    assert!(
        report.cohesively_converged(),
        "λ = {skew}: diameter {}",
        report.final_diameter
    );
}

#[test]
fn tolerates_non_rigid_motion() {
    let report = tolerant_run(
        PerceptionModel::EXACT,
        MotionModel::with_rigidity(0.3),
        0.0,
        0.0,
        23,
    );
    assert!(
        report.cohesively_converged(),
        "ξ = 0.3: diameter {}",
        report.final_diameter
    );
}

#[test]
fn tolerates_quadratic_motion_error() {
    let report = tolerant_run(
        PerceptionModel::EXACT,
        MotionModel::new(1.0, MotionError::Quadratic { coefficient: 0.5 }),
        0.0,
        0.0,
        24,
    );
    assert!(
        report.converged,
        "quadratic error: diameter {}",
        report.final_diameter
    );
    assert!(
        report.cohesion_maintained,
        "quadratic error must not break edges (§6.1)"
    );
}

#[test]
fn tolerates_everything_at_once() {
    let report = tolerant_run(
        PerceptionModel::new(0.03, 0.05),
        MotionModel::new(0.5, MotionError::Quadratic { coefficient: 0.2 }),
        0.03,
        0.05,
        25,
    );
    assert!(
        report.cohesively_converged(),
        "combined errors: diameter {}",
        report.final_diameter
    );
}

/// Figure 18 as geometry: with linear relative motion error at least
/// `tan φ`, two robots at exactly distance `V` moving perpendicular to their
/// separation can be driven apart — no algorithm survives this error regime.
#[test]
fn linear_motion_error_breaks_visibility_geometrically() {
    let v = 1.0;
    let b = Vec2::new(0.0, 0.0);
    let c = Vec2::new(v, 0.0);
    // Both robots plan a move of length d perpendicular to BC (any cohesive
    // algorithm may legitimately plan such moves, e.g. toward a third robot
    // above). The adversary realizes each with a relative deviation
    // coefficient `e`, bending B's trajectory left and C's right.
    let d = 0.1;
    let e = 0.3; // deviation budget e·d
    let b_end = b + Vec2::new(0.0, d) + Vec2::new(-e * d, 0.0);
    let c_end = c + Vec2::new(0.0, d) + Vec2::new(e * d, 0.0);
    assert!(
        b_end.dist(c_end) > v,
        "deviated endpoints must separate: {}",
        b_end.dist(c_end)
    );
    // Whereas quadratic error O(d²/V) cannot reach the deviation needed for
    // small d: e_quad·d²/V < e·d for d < V·e/e_quad.
    let e_quad = 0.3;
    let dev = e_quad * d * d / v;
    let b_end = b + Vec2::new(0.0, d) + Vec2::new(-dev, 0.0);
    let c_end = c + Vec2::new(0.0, d) + Vec2::new(dev, 0.0);
    assert!(
        b_end.dist(c_end) > v,
        "quadratic deviation still separates at the boundary…"
    );
    // …but the safe-region shortfall absorbs it: the paper's point is that a
    // *fixed fraction* of the planned trajectory stays inside the safe
    // region intersection, so the algorithm plans with margin. Our target is
    // strictly inside each safe disk whenever the sector is nondegenerate:
    let alg = KirkpatrickAlgorithm::new(1);
    let snap = cohesion::model::Snapshot::from_positions(vec![
        Vec2::from_angle(0.4),
        Vec2::from_angle(-0.4),
    ]);
    let target = cohesion::model::Algorithm::compute(&alg, &snap);
    let r = 1.0 / 8.0;
    for dir in [Vec2::from_angle(0.4), Vec2::from_angle(-0.4)] {
        let margin = r - target.dist(dir * r);
        assert!(
            margin > 0.01,
            "interior margin absorbs quadratic error; got {margin}"
        );
    }
}

#[test]
fn crash_fault_tolerated() {
    // §6.1: a single fail-stop robot is tolerated — the rest converge toward
    // it. The engine is anonymous, so the crash must be positional: run with
    // a scripted scheduler that never activates robot 0 but is fair to the
    // others over the horizon (equivalent to a fair scheduler whose crashed
    // robot performs nil cycles).
    use cohesion::scheduler::{ActivationInterval, ScriptedScheduler};
    let n = 6;
    let config = workloads::line(n, 0.9);
    let crashed = config.position(RobotId(0));
    let mut script = Vec::new();
    for round in 0..3000u32 {
        let t = f64::from(round);
        for r in 1..n {
            script.push(ActivationInterval::new(
                RobotId::from(r),
                t,
                t + 0.25,
                t + 0.75,
            ));
        }
    }
    let report = SimulationBuilder::new(config, KirkpatrickAlgorithm::new(1))
        .visibility(1.0)
        .scheduler(ScriptedScheduler::new("crash-0", script))
        .epsilon(0.05)
        .max_events(200_000)
        .run();
    assert!(
        report.converged,
        "survivors converge (diameter {})",
        report.final_diameter
    );
    let gather_point = report.final_configuration.position(RobotId(1));
    assert!(
        gather_point.dist(crashed) < 0.1,
        "convergence happens at the crashed robot's position (paper §6.1)"
    );
    assert!(report.cohesion_maintained);
}
