//! Property-based tests of the paper's core invariants (proptest).

use cohesion::core::analysis::lemma5::COS_THETA_MIN;
use cohesion::core::{KirkpatrickAlgorithm, ReachRegion, SafeRegion};
use cohesion::geometry::ball::{smallest_enclosing_ball, smallest_enclosing_ball_brute};
use cohesion::geometry::hull::convex_hull;
use cohesion::geometry::Vec2;
use cohesion::model::{Algorithm, Snapshot};
use cohesion::prelude::*;
use proptest::prelude::*;

fn vec2_strategy(range: f64) -> impl Strategy<Value = Vec2> {
    (-range..range, -range..range).prop_map(|(x, y)| Vec2::new(x, y))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Welzl's algorithm agrees with the brute-force smallest enclosing ball.
    #[test]
    fn sec_matches_brute_force(pts in proptest::collection::vec(vec2_strategy(5.0), 1..10)) {
        let fast = smallest_enclosing_ball(&pts);
        let brute = smallest_enclosing_ball_brute(&pts);
        prop_assert!((fast.radius - brute.radius).abs() < 1e-6);
        prop_assert!(fast.contains_all(&pts, 1e-6));
    }

    /// The hull of a subset is contained in the hull of the set.
    #[test]
    fn hull_monotone_under_subset(pts in proptest::collection::vec(vec2_strategy(5.0), 3..14)) {
        let full = convex_hull(&pts);
        let sub = convex_hull(&pts[..pts.len() / 2 + 1]);
        prop_assert!(full.contains_hull(&sub, 1e-9));
    }

    /// §5 / Figure 15: the algorithm's target lies in the 1/k-scaled safe
    /// region of every distant neighbour, and the step is at most V_Z/(8k).
    #[test]
    fn target_respects_every_distant_safe_region(
        pts in proptest::collection::vec(vec2_strategy(1.0), 1..8),
        k in 1u32..5,
    ) {
        let pts: Vec<Vec2> = pts.into_iter().filter(|p| p.norm() > 1e-3).collect();
        prop_assume!(!pts.is_empty());
        let alg = KirkpatrickAlgorithm::new(k);
        let snap = Snapshot::from_positions(pts.clone());
        let target = alg.compute(&snap);
        let hood = alg.neighborhood(&snap);
        let r = hood.v_z / (8.0 * f64::from(k));
        prop_assert!(target.norm() <= r + 1e-9, "step {} exceeds r {}", target.norm(), r);
        for d in &hood.distant {
            let region = SafeRegion::new(Vec2::ZERO, *d, r).expect("distant neighbour has direction");
            prop_assert!(region.contains(target, 1e-9), "target {target} outside region of {d}");
        }
    }

    /// Disorientation: the algorithm is equivariant under rotations and
    /// reflections of the local frame.
    #[test]
    fn algorithm_is_orthogonally_equivariant(
        pts in proptest::collection::vec(vec2_strategy(1.0), 1..6),
        angle in 0.0..std::f64::consts::TAU,
        reflect in any::<bool>(),
    ) {
        let pts: Vec<Vec2> = pts.into_iter().filter(|p| p.norm() > 1e-3).collect();
        prop_assume!(!pts.is_empty());
        let alg = KirkpatrickAlgorithm::new(2);
        let apply = |p: Vec2| {
            let q = if reflect { p.reflect_x() } else { p };
            q.rotate(angle)
        };
        let t0 = alg.compute(&Snapshot::from_positions(pts.clone()));
        let t1 = alg.compute(&Snapshot::from_positions(pts.iter().map(|&p| apply(p)).collect()));
        prop_assert!((apply(t0) - t1).norm() < 1e-9);
    }

    /// Lemma 1 (Monte-Carlo form): j ≤ k successive moves, each confined to
    /// the current 1/k-scaled safe region w.r.t. a stationary neighbour,
    /// stay inside R^{j·r/k}_{Y0}(X0, X0).
    #[test]
    fn lemma1_reach_containment(
        seed in any::<u64>(),
        k in 1u32..5,
    ) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
        let x0 = Vec2::new(1.0, 0.0);
        let r_full = 1.0 / 8.0;
        let r_step = r_full / f64::from(k);
        let mut y = Vec2::ZERO;
        for j in 1..=k {
            // A random admissible move: any point of S^{r/k}_{y}(x0).
            let dir = (x0 - y).normalized(1e-12).expect("offset");
            let center = y + dir * r_step;
            let theta = rng.gen_range(0.0..std::f64::consts::TAU);
            let rho = rng.gen_range(0.0..r_step);
            y = center + Vec2::from_angle(theta) * rho;
            let region = ReachRegion::new(Vec2::ZERO, x0, x0, f64::from(j) * r_step);
            prop_assert!(region.contains(y, 1e-7), "escaped after {j} moves: {y}");
        }
    }

    /// Lemma 2 (Monte-Carlo form): the same with the neighbour moving from
    /// X0 to X1, each move seeing some X* on the segment (sampled monotone,
    /// as in a real trajectory).
    #[test]
    fn lemma2_reach_containment(
        seed in any::<u64>(),
        k in 1u32..4,
    ) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
        let x0 = Vec2::new(1.0, 0.0);
        let x1 = Vec2::new(0.9, 0.35);
        let r_full = 1.0 / 8.0;
        let r_step = r_full / f64::from(k);
        let mut y = Vec2::ZERO;
        let mut s_prev = 0.0;
        for j in 1..=k {
            let s = rng.gen_range(s_prev..=1.0);
            s_prev = s;
            let x_star = x0.lerp(x1, s);
            let dir = (x_star - y).normalized(1e-12).expect("offset");
            let center = y + dir * r_step;
            let theta = rng.gen_range(0.0..std::f64::consts::TAU);
            let rho = rng.gen_range(0.0..r_step);
            y = center + Vec2::from_angle(theta) * rho;
            let region = ReachRegion::new(Vec2::ZERO, x0, x1, f64::from(j) * r_step);
            prop_assert!(region.contains(y, 1e-7), "escaped after {j} moves: {y}");
        }
    }
}

proptest! {
    // Engine-in-the-loop properties are expensive; fewer cases.
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Theorem 4, statistically: random connected configurations under
    /// random k-Async schedules preserve all initial visibility edges and
    /// the strong-visibility clause.
    #[test]
    fn visibility_preservation_under_k_async(
        seed in 0u64..1000,
        k in 1u32..4,
    ) {
        let config = workloads::random_connected(8, 1.0, seed);
        let report = SimulationBuilder::new(config, KirkpatrickAlgorithm::new(k))
            .visibility(1.0)
            .scheduler(KAsyncScheduler::new(k, seed.wrapping_add(1)))
            .seed(seed.wrapping_add(2))
            .epsilon(0.05)
            .max_events(60_000)
            .run();
        prop_assert!(report.cohesion_maintained, "violations: {:?}", report.cohesion_violations);
        prop_assert_eq!(report.strong_visibility_ok, Some(true));
    }

    /// The Lemma 5 constant: along engagement chains realized by actual
    /// k-Async runs, consecutive-edge turn angles of the X–Y checkpoint
    /// chain never certify a separation (the chain checker never finds a
    /// final separation above V with all constraints satisfied).
    #[test]
    fn no_separating_chains_in_real_runs(seed in 0u64..500) {
        let config = workloads::line(2, 0.98);
        let report = SimulationBuilder::new(config, KirkpatrickAlgorithm::new(2))
            .visibility(1.0)
            .scheduler(KAsyncScheduler::new(2, seed))
            .seed(seed)
            .epsilon(0.01)
            .max_events(20_000)
            .run();
        prop_assert!(report.cohesion_maintained);
        // Sanity on the constant itself.
        prop_assert!((COS_THETA_MIN - (std::f64::consts::PI / 12.0).cos()).abs() < 1e-12);
    }
}
