//! Property tests for the model layer: frames, distortions, error models,
//! and visibility-graph invariants.

use cohesion::geometry::{Vec2, Vec3};
use cohesion::model::frame::{Ambient, FrameMode};
use cohesion::model::{
    Configuration, Distortion, Frame, MotionModel, PerceptionModel, Snapshot, VisibilityGraph,
};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn vec2(range: f64) -> impl Strategy<Value = Vec2> {
    (-range..range, -range..range).prop_map(|(x, y)| Vec2::new(x, y))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Frames are isometries: norms and pairwise distances survive the
    /// round trip, in 2D and 3D, for every frame mode.
    #[test]
    fn frames_are_isometries(seed in any::<u64>(), a in vec2(5.0), b in vec2(5.0)) {
        let mut rng = SmallRng::seed_from_u64(seed);
        for mode in [FrameMode::Aligned, FrameMode::RandomRotation, FrameMode::RandomOrtho] {
            let f = <Vec2 as Ambient>::sample_frame(mode, &mut rng);
            prop_assert!((f.to_local(a).norm() - a.norm()).abs() < 1e-9);
            prop_assert!((f.to_local(a).dist(f.to_local(b)) - a.dist(b)).abs() < 1e-9);
            prop_assert!((f.to_global(f.to_local(a)) - a).norm() < 1e-9);

            let f3 = <Vec3 as Ambient>::sample_frame(mode, &mut rng);
            let a3 = Vec3::new(a.x, a.y, 1.3);
            prop_assert!((f3.to_global(f3.to_local(a3)) - a3).norm() < 1e-9);
        }
    }

    /// Distortions preserve norms, are symmetric (µ(θ+π) = µ(θ)+π), honour
    /// their skew bound on relative angles, and invert exactly.
    #[test]
    fn distortions_behave(lambda in 0.0..0.8f64, phase in 0.0..std::f64::consts::TAU, v in vec2(3.0)) {
        let d = Distortion::with_skew(lambda, phase);
        prop_assert!((d.apply(v).norm() - v.norm()).abs() < 1e-9);
        prop_assert!((d.unapply(d.apply(v)) - v).norm() < 1e-7);
        prop_assert!(d.skew() <= lambda + 1e-12);
        // Symmetry.
        let theta = v.angle();
        let s = d.apply_angle(theta + std::f64::consts::PI) - d.apply_angle(theta);
        prop_assert!((s - std::f64::consts::PI).abs() < 1e-9);
    }

    /// Motion resolution respects rigidity: the realized point lies on the
    /// planned segment between the ξ-fraction mark and the target (when no
    /// trajectory error is configured).
    #[test]
    fn motion_respects_rigidity(
        seed in any::<u64>(), from in vec2(3.0), target in vec2(3.0), xi in 0.05..1.0f64
    ) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let m = MotionModel::with_rigidity(xi);
        let got = m.resolve(from, target, 1.0, &mut rng);
        let planned = target - from;
        let d = planned.norm();
        if d > 0.0 {
            let progress = (got - from).dot(planned) / (d * d);
            prop_assert!(progress >= xi - 1e-9 && progress <= 1.0 + 1e-9);
            // No lateral deviation without a motion-error model.
            let lateral = (got - from) - planned * progress;
            prop_assert!(lateral.norm() < 1e-9);
        } else {
            prop_assert_eq!(got, from);
        }
    }

    /// Perception distance factors stay within ±δ.
    #[test]
    fn perception_factors_bounded(seed in any::<u64>(), delta in 0.0..0.5f64) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let p = PerceptionModel::new(delta, 0.0);
        for _ in 0..50 {
            let f = p.sample_distance_factor(&mut rng);
            prop_assert!(f >= 1.0 - delta - 1e-12 && f <= 1.0 + delta + 1e-12);
        }
    }

    /// Visibility graphs are monotone in the radius, and connectivity is
    /// monotone with them.
    #[test]
    fn visibility_monotone_in_radius(
        pts in proptest::collection::vec(vec2(3.0), 2..12),
        r1 in 0.1..2.0f64,
        extra in 0.01..2.0f64,
    ) {
        let c = Configuration::new(pts);
        let small = VisibilityGraph::from_configuration(&c, r1);
        let large = VisibilityGraph::from_configuration(&c, r1 + extra);
        prop_assert!(small.subset_of(&large));
        if small.is_connected() {
            prop_assert!(large.is_connected());
        }
        // At radius ≥ diameter the graph is complete.
        let full = VisibilityGraph::from_configuration(&c, c.diameter() + 1e-9);
        let n = c.len();
        prop_assert_eq!(full.edge_count(), n * (n - 1) / 2);
        prop_assert!(full.is_connected());
    }

    /// Snapshot multiplicity collapse is idempotent and never increases the
    /// observation count.
    #[test]
    fn multiplicity_collapse_idempotent(pts in proptest::collection::vec(vec2(2.0), 0..10)) {
        let s = Snapshot::from_positions(pts);
        let once = s.clone().without_multiplicity(1e-9);
        let twice = once.clone().without_multiplicity(1e-9);
        prop_assert!(once.len() <= s.len());
        prop_assert_eq!(once.len(), twice.len());
    }
}
