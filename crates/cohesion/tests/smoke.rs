//! Fast smoke suite: one run per scheduler class on a small 10-robot
//! configuration, plus end-to-end seed determinism.
//!
//! These are the "is the pipeline wired?" tests — each must finish in
//! seconds under `cargo test -q`. Deeper, slower scenario coverage lives in
//! `convergence_theorems.rs` and `separation.rs`.

use cohesion::prelude::*;

const N: usize = 10;
const V: f64 = 1.0;
const EPS: f64 = 0.05;

fn config(seed: u64) -> Configuration {
    workloads::random_connected(N, V, seed)
}

/// FSync: all robots in lockstep — the easiest model (Theorem 1 territory).
#[test]
fn smoke_fsync_converges() {
    let report = SimulationBuilder::new(config(11), KirkpatrickAlgorithm::new(1))
        .visibility(V)
        .scheduler(FSyncScheduler::new())
        .epsilon(EPS)
        .max_events(150_000)
        .run();
    assert!(
        report.converged,
        "FSync stalled at diameter {}",
        report.final_diameter
    );
    assert!(report.cohesion_maintained);
}

/// SSync: adversarial subsets activate each round, still atomic cycles.
#[test]
fn smoke_ssync_converges() {
    let report = SimulationBuilder::new(config(12), KirkpatrickAlgorithm::new(1))
        .visibility(V)
        .scheduler(SSyncScheduler::new(7))
        .epsilon(EPS)
        .max_events(150_000)
        .run();
    assert!(
        report.converged,
        "SSync stalled at diameter {}",
        report.final_diameter
    );
    assert!(report.cohesion_maintained);
}

/// k-Async (k = 2): bounded interleaving — the paper's headline model
/// (Theorem 4); the algorithm is provisioned with the same k.
#[test]
fn smoke_k_async_converges() {
    let report = SimulationBuilder::new(config(13), KirkpatrickAlgorithm::new(2))
        .visibility(V)
        .scheduler(KAsyncScheduler::new(2, 7))
        .epsilon(EPS)
        .max_events(150_000)
        .run();
    assert!(
        report.converged,
        "2-Async stalled at diameter {}",
        report.final_diameter
    );
    assert!(report.cohesion_maintained);
}

/// Async: unbounded interleaving. Convergence is *not* guaranteed here
/// (that's the paper's separation, §7), so this smoke test asserts clean
/// termination and a sane report, not convergence.
#[test]
fn smoke_async_terminates() {
    let report = SimulationBuilder::new(config(14), KirkpatrickAlgorithm::new(2))
        .visibility(V)
        .scheduler(AsyncScheduler::new(7))
        .epsilon(EPS)
        .max_events(30_000)
        .run();
    assert!(report.events > 0 && report.events <= 30_000);
    assert!(report.end_time.is_finite());
    assert!(report.final_diameter <= report.initial_diameter + 1e-9);
}

/// Two runs with identical seeds (workload, scheduler, and engine) must
/// produce bit-identical reports — the whole pipeline is deterministic.
#[test]
fn smoke_identical_seeds_identical_reports() {
    let run = || {
        SimulationBuilder::new(config(42), KirkpatrickAlgorithm::new(2))
            .visibility(V)
            .scheduler(KAsyncScheduler::new(2, 99))
            .seed(4242)
            .epsilon(EPS)
            .max_events(20_000)
            .run()
    };
    let (a, b) = (run(), run());
    assert_eq!(a, b, "same seeds must reproduce the full report");

    // And a different engine seed must actually change the trajectory —
    // guards against the seed being silently ignored.
    let c = SimulationBuilder::new(config(42), KirkpatrickAlgorithm::new(2))
        .visibility(V)
        .scheduler(KAsyncScheduler::new(2, 99))
        .seed(4243)
        .epsilon(EPS)
        .max_events(20_000)
        .run();
    assert_ne!(
        a.final_configuration, c.final_configuration,
        "engine seed must influence the run"
    );
}
