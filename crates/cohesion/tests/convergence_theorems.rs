//! End-to-end checks of the paper's positive results: Theorems 3–4
//! (visibility preservation under k-NestA / k-Async) plus the §5
//! congregation argument — together, Cohesive Convergence under bounded
//! asynchrony.

use cohesion::prelude::*;
use cohesion::scheduler::NestAScheduler;

fn run(
    config: Configuration,
    k: u32,
    scheduler: impl cohesion::scheduler::Scheduler + 'static,
    seed: u64,
) -> SimulationReport {
    SimulationBuilder::new(config, KirkpatrickAlgorithm::new(k))
        .visibility(1.0)
        .scheduler(scheduler)
        .seed(seed)
        .epsilon(0.08)
        .max_events(400_000)
        .run()
}

#[test]
fn converges_cohesively_under_fsync() {
    let report = run(
        workloads::random_connected(12, 1.0, 1),
        1,
        FSyncScheduler::new(),
        1,
    );
    assert!(
        report.cohesively_converged(),
        "final diameter {}",
        report.final_diameter
    );
    assert_eq!(report.strong_visibility_ok, Some(true));
    assert_eq!(report.hulls_nested, Some(true));
}

#[test]
fn converges_cohesively_under_ssync() {
    let report = run(
        workloads::random_connected(12, 1.0, 2),
        1,
        SSyncScheduler::new(5),
        2,
    );
    assert!(
        report.cohesively_converged(),
        "final diameter {}",
        report.final_diameter
    );
}

#[test]
fn converges_cohesively_under_k_nesta() {
    for k in [1u32, 3] {
        let report = run(
            workloads::random_connected(10, 1.0, 3),
            k,
            NestAScheduler::new(k, 11),
            3,
        );
        assert!(
            report.cohesively_converged(),
            "k={k}: final diameter {}",
            report.final_diameter
        );
        assert_eq!(
            report.strong_visibility_ok,
            Some(true),
            "acquired-visibility clause (k={k})"
        );
    }
}

#[test]
fn converges_cohesively_under_k_async() {
    for k in [1u32, 2, 4] {
        let report = run(
            workloads::random_connected(10, 1.0, 4),
            k,
            KAsyncScheduler::new(k, 13),
            4,
        );
        assert!(
            report.cohesively_converged(),
            "k={k}: final diameter {}",
            report.final_diameter
        );
    }
}

#[test]
fn line_workload_converges() {
    // The near-threshold line is the classic worst case for cohesion.
    let report = run(workloads::line(8, 0.95), 2, KAsyncScheduler::new(2, 17), 5);
    assert!(
        report.cohesively_converged(),
        "final diameter {}",
        report.final_diameter
    );
}

#[test]
fn ring_workload_converges() {
    let report = run(workloads::ring(9, 0.95), 2, KAsyncScheduler::new(2, 19), 6);
    assert!(
        report.cohesively_converged(),
        "final diameter {}",
        report.final_diameter
    );
}

#[test]
fn dumbbell_workload_converges() {
    let report = run(
        workloads::dumbbell(4, 1.0, 7),
        2,
        KAsyncScheduler::new(2, 23),
        7,
    );
    assert!(
        report.cohesively_converged(),
        "final diameter {}",
        report.final_diameter
    );
}

#[test]
fn over_provisioned_k_still_converges() {
    // Algorithm provisioned for k = 6 under a 2-Async scheduler: smaller
    // steps, same guarantees (the paper's scaling is monotone in k).
    let report = run(
        workloads::random_connected(8, 1.0, 8),
        6,
        KAsyncScheduler::new(2, 29),
        8,
    );
    assert!(
        report.cohesively_converged(),
        "final diameter {}",
        report.final_diameter
    );
}

#[test]
fn hull_nesting_holds_along_the_run() {
    let report = SimulationBuilder::new(
        workloads::random_connected(10, 1.0, 9),
        KirkpatrickAlgorithm::new(2),
    )
    .visibility(1.0)
    .scheduler(KAsyncScheduler::new(2, 31))
    .epsilon(0.05)
    .hull_check_every(8)
    .max_events(400_000)
    .run();
    assert_eq!(report.hulls_nested, Some(true), "CH_{{t+}} ⊆ CH_t (§5)");
}

#[test]
fn engine_trace_respects_the_scheduling_model() {
    // The engine replays exactly what the scheduler emits; certify the trace.
    let config = workloads::random_connected(6, 1.0, 10);
    let mut engine = cohesion::engine::Engine::new(
        &config,
        1.0,
        KirkpatrickAlgorithm::new(2),
        KAsyncScheduler::new(2, 37),
        99,
    );
    for _ in 0..600 {
        engine.step().unwrap();
    }
    let k = cohesion::scheduler::validate::minimal_async_k(engine.trace());
    assert!(k <= 2, "2-Async scheduler produced a k={k} trace");
    cohesion::scheduler::validate::validate_no_self_overlap(engine.trace()).unwrap();
}

#[test]
fn rounds_are_counted() {
    let report = run(
        workloads::random_connected(8, 1.0, 11),
        1,
        FSyncScheduler::new(),
        11,
    );
    assert!(
        report.rounds >= 5,
        "FSync run must complete many rounds, got {}",
        report.rounds
    );
    assert!(
        report
            .round_diameters
            .windows(2)
            .all(|w| w[1].1 <= w[0].1 + 1e-9),
        "diameter must be non-increasing across rounds for a hull-diminishing algorithm"
    );
}
