//! The separation story, end to end: bounded asynchrony is strictly weaker
//! than unbounded asynchrony for Cohesive Convergence.

use cohesion::adversary::ando_counterexample::{
    figure4a_schedule, figure4b_schedule, run_figure4, xy_separation,
};
use cohesion::adversary::{run_impossibility, SpiralConstruction};
use cohesion::prelude::*;

#[test]
fn figure4_breaks_ando_but_not_kirkpatrick() {
    let ando_a = run_figure4(AndoAlgorithm::new(1.0), figure4a_schedule());
    assert!(!ando_a.cohesion_maintained, "Figure 4(a)");
    assert!(xy_separation(&ando_a) > 1.0);

    let ando_b = run_figure4(AndoAlgorithm::new(1.0), figure4b_schedule());
    assert!(!ando_b.cohesion_maintained, "Figure 4(b)");

    let ours_a = run_figure4(KirkpatrickAlgorithm::new(1), figure4a_schedule());
    assert!(ours_a.cohesion_maintained, "Theorem 4, k = 1");
    let ours_b = run_figure4(KirkpatrickAlgorithm::new(2), figure4b_schedule());
    assert!(ours_b.cohesion_maintained, "Theorem 3, k = 2");
}

#[test]
fn impossibility_spiral_separates_ando() {
    let outcome = run_impossibility(&AndoAlgorithm::new(1.0), 0.3, 20_000);
    assert!(outcome.separated);
    assert!(outcome.final_ab_distance > 1.0);
    // Ando's ζ is so large that very shallow nesting already suffices —
    // consistent with it failing at 2-NestA in Figure 4(b).
    assert!(outcome.nesting_k >= 1, "nesting k = {}", outcome.nesting_k);
}

#[test]
fn impossibility_spiral_separates_katreniak() {
    let outcome = run_impossibility(&KatreniakAlgorithm::new(), 0.3, 20_000);
    assert!(outcome.separated);
    // Katreniak is 1-Async-correct, so the k this schedule needed must be
    // large — it is the unboundedness doing the damage.
    assert!(outcome.nesting_k > 10, "nesting k = {}", outcome.nesting_k);
}

#[test]
fn impossibility_spiral_separates_kirkpatrick() {
    let outcome = run_impossibility(&KirkpatrickAlgorithm::new(1), 0.3, 20_000);
    assert!(outcome.separated, "outcome {outcome:?}");
    assert!(
        outcome.nesting_k > 100,
        "the k-Async-sound victim requires very deep nesting; got {}",
        outcome.nesting_k
    );
}

#[test]
fn spiral_scale_matches_paper_formula() {
    for psi in [0.35, 0.3] {
        let s = SpiralConstruction::paper(psi);
        // n grows when ψ shrinks, in the ballpark of 3 + e^{3π/(8 sin ψ)}.
        let est = SpiralConstruction::paper_size_estimate(psi);
        assert!((s.robot_count() as f64) < 5.0 * est);
        assert!((s.robot_count() as f64) > est / 5.0);
    }
}

#[test]
fn bounded_schedulers_cannot_reproduce_the_separation() {
    // Random k-Async schedulers (the strongest bounded adversaries we can
    // generate) never break the matched algorithm on the same spiral
    // configuration the Async adversary defeats.
    let spiral = SpiralConstruction::paper(0.35);
    for (k, seed) in [(1u32, 41u64), (2, 43)] {
        let report =
            SimulationBuilder::new(spiral.configuration.clone(), KirkpatrickAlgorithm::new(k))
                .visibility(1.0)
                .scheduler(KAsyncScheduler::new(k, seed))
                .epsilon(0.05)
                .max_events(150_000)
                .track_strong_visibility(false)
                .run();
        assert!(
            report.cohesion_maintained,
            "k={k}: bounded asynchrony must preserve the spiral's edges"
        );
    }
}
