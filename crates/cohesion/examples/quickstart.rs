//! Quickstart: converge a random connected swarm under bounded asynchrony.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Thirty disoriented, oblivious robots with visibility radius 1 start in a
//! random connected configuration. The paper's algorithm, provisioned for
//! `k = 2`, runs under a fair random 2-Async scheduler. The run verifies the
//! full Cohesive Convergence predicate: the diameter shrinks below ε while
//! every initially-visible pair stays mutually visible.

use cohesion::prelude::*;

fn main() {
    let n = 30;
    let v = 1.0;
    let k = 2;
    let config = workloads::random_connected(n, v, 42);
    println!("initial diameter: {:.3}", config.diameter());

    let report = SimulationBuilder::new(config, KirkpatrickAlgorithm::new(k))
        .visibility(v)
        .scheduler(KAsyncScheduler::new(k, 7))
        .epsilon(0.05)
        .max_events(2_000_000)
        .track_strong_visibility(true)
        .run();

    println!("algorithm:            {}", report.algorithm);
    println!("scheduler:            {} (k = {k})", report.scheduler);
    println!("events processed:     {}", report.events);
    println!("rounds completed:     {}", report.rounds);
    println!("final diameter:       {:.4}", report.final_diameter);
    println!("converged:            {}", report.converged);
    println!("cohesion maintained:  {}", report.cohesion_maintained);
    println!("strong visibility ok: {:?}", report.strong_visibility_ok);
    println!("hulls nested:         {:?}", report.hulls_nested);
    println!();
    println!("diameter trajectory (time, diameter):");
    for (t, d) in report
        .diameter_series
        .iter()
        .step_by(report.diameter_series.len().div_ceil(12))
    {
        println!("  t = {t:8.2}   d = {d:.4}");
    }

    assert!(
        report.cohesively_converged(),
        "Theorem 4 + §5 predict success here"
    );
    println!("\nCohesive Convergence achieved — exactly what Theorems 3–4 and §5 promise.");
}
