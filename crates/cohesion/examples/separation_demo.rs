//! The Figure 4 counterexample, live: unmodified Ando et al. loses a
//! visibility edge under 1-Async and 2-NestA scheduling, while the paper's
//! algorithm (with matching `k`) survives the identical timelines.
//!
//! ```text
//! cargo run --release --example separation_demo
//! ```

use cohesion::adversary::ando_counterexample::{
    figure4_configuration, figure4a_schedule, figure4b_schedule, run_figure4, schedule_properties,
    xy_separation, V,
};
use cohesion::prelude::*;
use cohesion::scheduler::render::render_timeline;
use cohesion::scheduler::ScheduleTrace;

fn main() {
    let config = figure4_configuration();
    println!("Five robots, V = {V}:");
    for (id, p) in config.iter() {
        println!("  {id} at {p}");
    }

    for (label, schedule) in [
        ("Figure 4(a) — 1-Async", figure4a_schedule()),
        ("Figure 4(b) — 2-NestA", figure4b_schedule()),
    ] {
        let (k, nested) = schedule_properties(&schedule);
        println!("\n=== {label} ===");
        println!("schedule: minimal k = {k}, nested = {nested}");
        println!(
            "{}",
            render_timeline(&ScheduleTrace::from_intervals(schedule.clone()), 2, 64)
        );

        let ando = run_figure4(AndoAlgorithm::new(V), schedule.clone());
        println!(
            "ando:        X–Y separation = {:.4}  cohesion = {}",
            xy_separation(&ando),
            ando.cohesion_maintained
        );

        let ours = run_figure4(KirkpatrickAlgorithm::new(k), schedule.clone());
        println!(
            "kirkpatrick: X–Y separation = {:.4}  cohesion = {}",
            xy_separation(&ours),
            ours.cohesion_maintained
        );

        assert!(!ando.cohesion_maintained, "Ando must separate (Figure 4)");
        assert!(
            ours.cohesion_maintained,
            "the paper's algorithm must survive (Thm 4)"
        );
    }

    println!(
        "\nReproduced: the same timelines that break Ando leave the k-Async algorithm intact."
    );
}
