//! Convergence-rate race: four algorithms on the same workloads under SSync.
//!
//! ```text
//! cargo run --release --example algorithm_race
//! ```
//!
//! Reproduces the shape of the rate results the paper surveys in §1.2.2:
//! under unlimited visibility CoG converges (slowly), GCM (with axis
//! agreement) and the SEC-based algorithms converge faster; under *limited*
//! visibility only the cohesive algorithms keep the swarm connected.

use cohesion::model::FrameMode;
use cohesion::prelude::*;

fn main() {
    let n = 24;
    let v = 1.0;
    println!("workload: {n} robots, random connected at V = {v}, SSync scheduler\n");
    println!(
        "{:<22} {:>10} {:>10} {:>10} {:>9}",
        "algorithm", "converged", "rounds", "diam", "cohesive"
    );

    let runs: Vec<(&str, SimulationReport)> = vec![
        (
            "kirkpatrick(k=1)",
            race(KirkpatrickAlgorithm::new(1), v, FrameMode::RandomOrtho),
        ),
        (
            "ando",
            race(AndoAlgorithm::new(v), v, FrameMode::RandomOrtho),
        ),
        (
            "katreniak",
            race(KatreniakAlgorithm::new(), v, FrameMode::RandomOrtho),
        ),
        // CoG needs unlimited visibility: give it a huge V (the workload
        // diameter is ~4), but evaluate cohesion against the same graph.
        (
            "cog (unlimited V)",
            race(CogAlgorithm::new(), 100.0, FrameMode::RandomOrtho),
        ),
        // GCM needs axis agreement.
        (
            "gcm (aligned axes)",
            race(GcmAlgorithm::new(), 100.0, FrameMode::Aligned),
        ),
    ];

    for (label, report) in &runs {
        println!(
            "{:<22} {:>10} {:>10} {:>10.4} {:>9}",
            label,
            report.converged,
            report.rounds,
            report.final_diameter,
            report.cohesion_maintained,
        );
    }

    println!("\nrounds to halve the initial diameter:");
    for (label, report) in &runs {
        match report.rounds_to_halve_diameter() {
            Some(r) => println!("  {label:<22} {r}"),
            None => println!("  {label:<22} (not observed)"),
        }
    }
}

fn race(
    algorithm: impl cohesion::model::Algorithm<cohesion::geometry::Vec2> + 'static,
    visibility: f64,
    frame_mode: FrameMode,
) -> SimulationReport {
    SimulationBuilder::new(workloads::random_connected(24, 1.0, 11), algorithm)
        .visibility(visibility)
        .scheduler(SSyncScheduler::new(3))
        .frame_mode(frame_mode)
        .epsilon(0.05)
        .max_events(1_500_000)
        .track_strong_visibility(false)
        .run()
}
