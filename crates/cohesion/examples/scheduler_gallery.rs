//! The scheduling models of Figures 1–2, rendered as ASCII timelines and
//! certified by the trace validators.
//!
//! ```text
//! cargo run --release --example scheduler_gallery
//! ```

use cohesion::prelude::*;
use cohesion::scheduler::render::render_timeline;
use cohesion::scheduler::validate::{
    max_nesting_depth, minimal_async_k, validate_fsync, validate_nested, validate_ssync,
};
use cohesion::scheduler::{ScheduleContext, ScheduleTrace, Scheduler};

fn collect(mut s: impl Scheduler, robots: usize, count: usize) -> ScheduleTrace {
    let ctx = ScheduleContext {
        robot_count: robots,
    };
    let mut trace = ScheduleTrace::new();
    for _ in 0..count {
        match s.next_activation(&ctx) {
            Some(iv) => trace.push(iv),
            None => break,
        }
    }
    trace
}

fn main() {
    let robots = 3;

    println!("=== FSync (Figure 1, top) ===");
    let t = collect(FSyncScheduler::new(), robots, 12);
    println!("{}", render_timeline(&t, robots, 72));
    println!(
        "validated: {} rounds, every robot in every round\n",
        validate_fsync(&t, robots).unwrap()
    );

    println!("=== SSync (Figure 1, middle) ===");
    let t = collect(SSyncScheduler::new(5), robots, 12);
    println!("{}", render_timeline(&t, robots, 72));
    println!(
        "validated: {} rounds (subsets per round)\n",
        validate_ssync(&t).unwrap()
    );

    println!("=== 1-NestA (Figure 2, top) ===");
    let t = collect(NestAScheduler::new(1, 5), robots, 12);
    println!("{}", render_timeline(&t, robots, 72));
    validate_nested(&t).unwrap();
    println!(
        "validated: nested, minimal k = {}, nesting depth = {}\n",
        minimal_async_k(&t),
        max_nesting_depth(&t)
    );

    println!("=== 2-Async (Figure 2, bottom, generalized) ===");
    let t = collect(KAsyncScheduler::new(2, 5), robots, 14);
    println!("{}", render_timeline(&t, robots, 72));
    println!(
        "validated: minimal k = {} (≤ 2 by construction)\n",
        minimal_async_k(&t)
    );

    println!("=== Async (Figure 1, bottom) ===");
    let t = collect(AsyncScheduler::new(5), robots, 14);
    println!("{}", render_timeline(&t, robots, 72));
    println!(
        "unbounded: minimal k = {} over this prefix",
        minimal_async_k(&t)
    );
}
