//! The §6.3.2 extension: the same algorithm, same engine, in three
//! dimensions — safe regions become balls, the “largest sector” becomes a
//! minimal enclosing cone of direction vectors.
//!
//! ```text
//! cargo run --release --example convergence_3d
//! ```

use cohesion::core::KirkpatrickAlgorithm;
use cohesion::engine::SimulationBuilder;
use cohesion::geometry::Vec3;
use cohesion::scheduler::KAsyncScheduler;
use cohesion::workloads;

fn main() {
    let n = 20;
    let v = 1.0;
    let k = 2;
    let config = workloads::ball3(n, v, 99);
    println!(
        "3D workload: {n} robots, initial diameter {:.3}",
        config.diameter()
    );

    let report = SimulationBuilder::<Vec3>::new(config, KirkpatrickAlgorithm::new(k))
        .visibility(v)
        .scheduler(KAsyncScheduler::new(k, 13))
        .epsilon(0.05)
        .max_events(2_000_000)
        .run();

    println!("events:              {}", report.events);
    println!("rounds:              {}", report.rounds);
    println!("final diameter:      {:.4}", report.final_diameter);
    println!("converged:           {}", report.converged);
    println!("cohesion maintained: {}", report.cohesion_maintained);
    println!("strong visibility:   {:?}", report.strong_visibility_ok);

    assert!(
        report.cohesively_converged(),
        "the 3D generalization must converge cohesively (paper §6.3.2)"
    );
    println!("\n3D Cohesive Convergence achieved.");
}
