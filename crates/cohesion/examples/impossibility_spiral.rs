//! The §7 impossibility construction, live: a spiral of robots plus an
//! unboundedly-nested adversarial schedule breaks Cohesive Convergence for
//! algorithms that are sound under bounded asynchrony.
//!
//! ```text
//! cargo run --release --example impossibility_spiral
//! ```
//!
//! The adversary freezes the head robot `X_A` inside one long activation
//! (its Look sees the initial configuration; its Move executes much later),
//! flattens the spiral tail onto the far chord — carrying `X_B` a quarter
//! turn around `X_A` — and then releases `X_A`'s stale move, pushing it away
//! from `X_B`'s new bearing. The number of nested activations this needs is
//! unbounded: exactly the power that separates Async from every k-Async.

use cohesion::adversary::{run_impossibility, SpiralConstruction};
use cohesion::prelude::*;

fn main() {
    let psi = 0.3;
    let spiral = SpiralConstruction::paper(psi);
    println!(
        "spiral: ψ = {psi}, n = {} robots (paper estimate ≈ {:.0}), total rotation {:.3} rad",
        spiral.robot_count(),
        SpiralConstruction::paper_size_estimate(psi),
        spiral.total_rotation
    );

    println!("\nvictim: Ando et al. (error-tolerant in the §7 sense, large ζ)");
    let outcome = run_impossibility(&AndoAlgorithm::new(1.0), psi, 50_000);
    print_outcome(&outcome);
    assert!(
        outcome.separated,
        "the adversary must break cohesion for Ando"
    );

    println!("\nvictim: Katreniak (1-Async-correct)");
    let outcome = run_impossibility(&KatreniakAlgorithm::new(), psi, 50_000);
    print_outcome(&outcome);

    println!("\nvictim: the paper's algorithm, k = 1 (ζ = V/8·cos 67.5° ≈ 0.048)");
    let outcome = run_impossibility(&KirkpatrickAlgorithm::new(1), psi, 50_000);
    print_outcome(&outcome);
    println!(
        "note: the adversary releases X_A's stale move at the moment of peak separation\n\
         potential, so even the k-Async-sound algorithm is broken — by a margin that shrinks\n\
         with ζ ~ V/8k. The paper's 'ψ sufficiently small relative to ζ' shows up directly:\n\
         small-ζ victims separate by hairs, large-ζ victims (Ando) by a wide gap."
    );
}

fn print_outcome(outcome: &cohesion::adversary::ImpossibilityOutcome) {
    println!("  ζ (stale move length)     = {:.4}", outcome.zeta);
    println!(
        "  sweeps / tail activations = {} / {}",
        outcome.sweeps, outcome.tail_activations
    );
    println!("  nested k required         = {}", outcome.nesting_k);
    println!(
        "  |A B| before release      = {:.4}",
        outcome.b_radius_before_release
    );
    println!(
        "  |A B| after release       = {:.4}",
        outcome.final_ab_distance
    );
    println!(
        "  max radial drift          = {:.4}",
        outcome.max_radial_drift
    );
    println!("  cohesion broken           = {}", outcome.separated);
    if !outcome.broken_initial_edges.is_empty() {
        println!(
            "  broken edges              = {:?}",
            outcome.broken_initial_edges
        );
    }
}
