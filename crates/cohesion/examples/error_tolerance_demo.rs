//! The §6.1 error machinery, live: distance error, angular skew, non-rigid
//! motion, and quadratic trajectory error — all at once.
//!
//! ```text
//! cargo run --release --example error_tolerance_demo
//! ```

use cohesion::model::{MotionError, MotionModel, PerceptionModel};
use cohesion::prelude::*;

fn main() {
    let n = 16;
    let v = 1.0;
    let k = 2;
    let delta = 0.05; // relative distance-measurement error
    let skew = 0.1; // angular distortion skew λ
    let xi = 0.4; // rigidity: at least 40% of each planned move happens
    let quad = 0.3; // quadratic trajectory-error coefficient

    let config = workloads::random_connected(n, v, 2024);
    println!(
        "{n} robots, V = {v}, errors: δ = {delta}, λ = {skew}, ξ = {xi}, quadratic c = {quad}"
    );
    println!("initial diameter: {:.3}\n", config.diameter());

    let report = SimulationBuilder::new(
        config,
        KirkpatrickAlgorithm::with_error_tolerance(k, delta, skew),
    )
    .visibility(v)
    .scheduler(KAsyncScheduler::new(k, 31))
    .perception(PerceptionModel::new(delta, skew))
    .motion(MotionModel::new(
        xi,
        MotionError::Quadratic { coefficient: quad },
    ))
    .epsilon(0.05)
    .max_events(2_000_000)
    .run();

    println!("converged:            {}", report.converged);
    println!("cohesion maintained:  {}", report.cohesion_maintained);
    println!("final diameter:       {:.4}", report.final_diameter);
    println!("rounds:               {}", report.rounds);
    assert!(
        report.cohesively_converged(),
        "§6.1: the tolerant variant must converge cohesively under all four error knobs"
    );
    println!("\nAll four §6.1 error regimes tolerated simultaneously.");
}
