//! # cohesion — Point Convergence with Limited Visibility
//!
//! A faithful, executable reproduction of *“Separating Bounded and Unbounded
//! Asynchrony for Autonomous Robots: Point Convergence with Limited
//! Visibility”* (Kirkpatrick, Kostitsyna, Navarra, Prencipe, Santoro —
//! PODC 2021).
//!
//! This facade crate re-exports the whole workspace under one roof:
//!
//! * [`geometry`] — vectors, hulls, smallest enclosing balls, cones, and
//!   the uniform spatial grid behind near-linear radius queries;
//! * [`model`] — the OBLOT robot model: configurations, CSR visibility
//!   graphs, snapshots, local frames, error models;
//! * [`scheduler`] — FSync / SSync / k-NestA / k-Async / Async activation
//!   schedulers, scripted adversarial schedules, and trace validators;
//! * [`engine`] — the continuous-time discrete-event simulation engine and
//!   its incremental run-time monitors (cohesion, strong visibility, hull
//!   nesting, diameter);
//! * [`core`] — the paper's contribution: the k-Async cohesive-convergence
//!   algorithm, safe and reach regions, and the lemma-level analysis;
//! * [`algorithms`] — baselines (Ando SEC, Katreniak, CoG, GCM minbox);
//! * [`adversary`] — the Figure 4 counterexamples and the §7 Async
//!   impossibility construction;
//! * [`workloads`] — seeded initial-configuration generators.
//!
//! # Quickstart
//!
//! ```
//! use cohesion::prelude::*;
//!
//! // 20 robots in a random connected configuration, visibility radius 1.
//! let config = workloads::random_connected(20, 1.0, 42);
//! // The paper's algorithm, provisioned for 2-bounded asynchrony.
//! let algorithm = KirkpatrickAlgorithm::new(2);
//! // A fair random 2-Async scheduler.
//! let scheduler = KAsyncScheduler::new(2, 7);
//! let report = SimulationBuilder::new(config, algorithm)
//!     .visibility(1.0)
//!     .scheduler(scheduler)
//!     .epsilon(0.05)
//!     .max_events(200_000)
//!     .run();
//! assert!(report.converged, "k-Async convergence is the paper's Theorem 4 + §5");
//! assert!(report.cohesion_maintained);
//! ```

#![forbid(unsafe_code)]
#![deny(unsafe_op_in_unsafe_fn)]

pub use cohesion_adversary as adversary;
pub use cohesion_algorithms as algorithms;
pub use cohesion_core as core;
pub use cohesion_engine as engine;
pub use cohesion_geometry as geometry;
pub use cohesion_model as model;
pub use cohesion_scheduler as scheduler;
pub use cohesion_workloads as workloads;

/// One-stop imports for examples and downstream quickstarts.
pub mod prelude {
    pub use crate::algorithms::{AndoAlgorithm, CogAlgorithm, GcmAlgorithm, KatreniakAlgorithm};
    pub use crate::core::KirkpatrickAlgorithm;
    pub use crate::engine::{
        Budget, EventView, Monitor, MonitorContext, Observer, Progress, SessionStatus, Simulation,
        SimulationBuilder, SimulationReport, TraceRecorder,
    };
    pub use crate::geometry::{SpatialGrid, Vec2, Vec3};
    pub use crate::model::{Configuration, RobotId, VisibilityGraph};
    pub use crate::scheduler::{
        AsyncScheduler, FSyncScheduler, KAsyncScheduler, NestAScheduler, SSyncScheduler,
    };
    pub use crate::workloads;
}
