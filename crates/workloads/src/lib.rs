//! Seeded initial-configuration generators.
//!
//! Every generator is deterministic in its seed and (where the paper's
//! predicates require it) guarantees a **connected** visibility graph at the
//! given radius, which is the standing assumption of Point Convergence
//! (§2.4). Shapes cover the workloads the experiments need: generic random
//! clouds, worst-case-ish lines, rings near the visibility threshold, dense
//! grids, sparse cluster dumbbells, and 3D balls for the §6.3.2 extension.

#![forbid(unsafe_code)]
#![deny(unsafe_op_in_unsafe_fn)]

use cohesion_geometry::{Vec2, Vec3};
use cohesion_model::{Configuration, VisibilityGraph};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A connected random configuration of `n` robots with visibility `v`.
///
/// Grown incrementally: each robot is placed uniformly in an annulus
/// `[0.3v, 0.9v]` around a uniformly chosen previous robot, guaranteeing
/// connectivity by construction while keeping the cloud genuinely
/// two-dimensional.
///
/// # Panics
///
/// Panics when `n == 0` or `v ≤ 0`.
///
/// ```
/// let c = cohesion_workloads::random_connected(25, 1.0, 7);
/// assert_eq!(c.len(), 25);
/// ```
pub fn random_connected(n: usize, v: f64, seed: u64) -> Configuration {
    assert!(n >= 1, "need at least one robot");
    assert!(v > 0.0, "visibility must be positive");
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut pts: Vec<Vec2> = vec![Vec2::ZERO];
    while pts.len() < n {
        let anchor = pts[rng.gen_range(0..pts.len())];
        let r = rng.gen_range(0.3 * v..0.9 * v);
        let theta = rng.gen_range(0.0..std::f64::consts::TAU);
        let candidate = anchor + Vec2::from_angle(theta) * r;
        // Avoid exact coincidence (multiplicities are legal but make poor
        // generic workloads).
        if pts.iter().all(|p| p.dist(candidate) > 1e-6) {
            pts.push(candidate);
        }
    }
    let config = Configuration::new(pts);
    debug_assert!(VisibilityGraph::from_configuration(&config, v).is_connected());
    config
}

/// `n` robots on a line with the given spacing (spacing ≤ `v` keeps it
/// connected). The classic slow-convergence workload.
pub fn line(n: usize, spacing: f64) -> Configuration {
    assert!(n >= 1, "need at least one robot");
    Configuration::new((0..n).map(|i| Vec2::new(i as f64 * spacing, 0.0)).collect())
}

/// `n` robots on a regular `n`-gon with side length `side` — the
/// configuration the paper's impossibility argument uses to show frozen
/// algorithms fail (§7.2.1).
pub fn ring(n: usize, side: f64) -> Configuration {
    assert!(n >= 3, "a ring needs at least three robots");
    // Circumradius for side s: R = s / (2 sin(π/n)).
    let r = side / (2.0 * (std::f64::consts::PI / n as f64).sin());
    Configuration::new(
        (0..n)
            .map(|i| Vec2::from_angle(i as f64 / n as f64 * std::f64::consts::TAU) * r)
            .collect(),
    )
}

/// A `rows × cols` grid with the given spacing.
pub fn grid(rows: usize, cols: usize, spacing: f64) -> Configuration {
    assert!(rows >= 1 && cols >= 1, "grid must be non-empty");
    let mut pts = Vec::with_capacity(rows * cols);
    for r in 0..rows {
        for c in 0..cols {
            pts.push(Vec2::new(c as f64 * spacing, r as f64 * spacing));
        }
    }
    Configuration::new(pts)
}

/// Two dense clusters of `per_side` robots bridged by a single chain —
/// stresses cohesion across a sparse cut.
pub fn dumbbell(per_side: usize, v: f64, seed: u64) -> Configuration {
    assert!(per_side >= 1, "need at least one robot per side");
    assert!(v > 0.0, "visibility must be positive");
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut pts: Vec<Vec2> = Vec::new();
    let cluster = |center: Vec2, pts: &mut Vec<Vec2>, rng: &mut SmallRng| {
        let start = pts.len();
        pts.push(center);
        while pts.len() - start < per_side {
            let d = rng.gen_range(0.05 * v..0.45 * v);
            let theta = rng.gen_range(0.0..std::f64::consts::TAU);
            let cand = center + Vec2::from_angle(theta) * d;
            if pts.iter().all(|p| p.dist(cand) > 1e-6) {
                pts.push(cand);
            }
        }
    };
    let gap = 3.0 * v;
    cluster(Vec2::ZERO, &mut pts, &mut rng);
    cluster(Vec2::new(gap, 0.0), &mut pts, &mut rng);
    // Bridge chain at 0.9v spacing.
    let mut x = 0.9 * v;
    while x < gap - 0.05 * v {
        pts.push(Vec2::new(x, 0.0));
        x += 0.9 * v;
    }
    Configuration::new(pts)
}

/// A generic Archimedean spiral for stress testing. (The *discrete* spiral
/// tail of the §7 impossibility construction lives in `cohesion-adversary`;
/// it needs the paper's exact turn-angle bookkeeping.)
pub fn spiral(n: usize, step: f64) -> Configuration {
    assert!(n >= 1, "need at least one robot");
    let mut pts = Vec::with_capacity(n);
    let mut theta: f64 = 0.0;
    for i in 0..n {
        let r = step * (1.0 + i as f64 * 0.15);
        pts.push(Vec2::from_angle(theta) * r);
        theta += 0.5;
    }
    Configuration::new(pts)
}

/// Two connected random clouds of `per_cluster` robots each, the second
/// translated `gap` to the right — the §6.3.1 *disconnected start* workload
/// (for `gap > v` the components never see each other and must converge
/// independently).
pub fn two_clusters(
    per_cluster: usize,
    v: f64,
    gap: f64,
    seed_a: u64,
    seed_b: u64,
) -> Configuration {
    assert!(per_cluster >= 1, "need at least one robot per cluster");
    assert!(v > 0.0, "visibility must be positive");
    let mut pts: Vec<Vec2> = random_connected(per_cluster, v, seed_a)
        .positions()
        .to_vec();
    pts.extend(
        random_connected(per_cluster, v, seed_b)
            .positions()
            .iter()
            .map(|&p| p + Vec2::new(gap, 0.0)),
    );
    Configuration::new(pts)
}

/// An observer at the origin plus two distant neighbours at angles `±γ` on
/// the unit circle — the half-sector geometry of the paper's target rule
/// (Figure 15): the computed destination must be `r·cosγ` along the
/// bisector.
pub fn wedge(half_angle: f64) -> Configuration {
    assert!(
        half_angle > 0.0 && half_angle < std::f64::consts::FRAC_PI_2,
        "half-angle must lie in (0, π/2)"
    );
    Configuration::new(vec![
        Vec2::ZERO,
        Vec2::from_angle(half_angle),
        Vec2::from_angle(-half_angle),
    ])
}

/// An observer at the origin surrounded by `arms ≥ 3` distant neighbours
/// spread evenly over the full circle — the §5 "surrounded" case in which
/// the target rule yields the nil move.
pub fn star(arms: usize) -> Configuration {
    assert!(arms >= 3, "a star needs at least three arms");
    let mut pts = vec![Vec2::ZERO];
    pts.extend((0..arms).map(|i| Vec2::from_angle(i as f64 / arms as f64 * std::f64::consts::TAU)));
    Configuration::new(pts)
}

/// A robot pair at the visibility threshold plus two pinned anchors pulling
/// them in roughly opposite directions — the doomed-engagement search
/// workload of the Lemma 5 experiments (Figures 10–14). The anchors are
/// placed randomly (seeded) behind each robot of the pair.
pub fn engagement_pair(v: f64, seed: u64) -> Configuration {
    assert!(v > 0.0, "visibility must be positive");
    let mut rng = SmallRng::seed_from_u64(seed);
    let x0 = Vec2::ZERO;
    let y0 = Vec2::new(v, 0.0);
    let ax = x0 + Vec2::from_angle(rng.gen_range(2.0..4.3)) * rng.gen_range(0.7 * v..v);
    let ay = y0 + Vec2::from_angle(rng.gen_range(-1.2..1.2)) * rng.gen_range(0.7 * v..v);
    Configuration::new(vec![x0, y0, ax, ay])
}

/// A connected random 3D ball of `n` robots with visibility `v` (the §6.3.2
/// extension workload), grown like [`random_connected`].
pub fn ball3(n: usize, v: f64, seed: u64) -> Configuration<Vec3> {
    assert!(n >= 1, "need at least one robot");
    assert!(v > 0.0, "visibility must be positive");
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut pts: Vec<Vec3> = vec![Vec3::ZERO];
    while pts.len() < n {
        let anchor = pts[rng.gen_range(0..pts.len())];
        let dir = loop {
            let d = Vec3::new(
                rng.gen_range(-1.0..1.0),
                rng.gen_range(-1.0..1.0),
                rng.gen_range(-1.0..1.0),
            );
            if d.norm() > 1e-3 && d.norm() <= 1.0 {
                break d * (1.0 / d.norm());
            }
        };
        let candidate = anchor + dir * rng.gen_range(0.3 * v..0.9 * v);
        if pts.iter().all(|p| p.dist(candidate) > 1e-6) {
            pts.push(candidate);
        }
    }
    Configuration::new(pts)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_connected_is_connected() {
        for seed in 0..5 {
            let c = random_connected(30, 1.0, seed);
            assert_eq!(c.len(), 30);
            assert!(VisibilityGraph::from_configuration(&c, 1.0).is_connected());
        }
    }

    #[test]
    fn determinism() {
        assert_eq!(random_connected(20, 1.0, 9), random_connected(20, 1.0, 9));
        assert_ne!(
            random_connected(20, 1.0, 9).positions(),
            random_connected(20, 1.0, 10).positions()
        );
    }

    #[test]
    fn line_spacing() {
        let c = line(5, 0.9);
        assert_eq!(c.len(), 5);
        assert!((c.diameter() - 3.6).abs() < 1e-12);
        assert!(VisibilityGraph::from_configuration(&c, 1.0).is_connected());
    }

    #[test]
    fn ring_has_unit_sides() {
        let c = ring(8, 1.0);
        let p = c.positions();
        for i in 0..8 {
            let d = p[i].dist(p[(i + 1) % 8]);
            assert!((d - 1.0).abs() < 1e-9, "side {i} has length {d}");
        }
    }

    #[test]
    fn grid_counts() {
        let c = grid(3, 4, 0.5);
        assert_eq!(c.len(), 12);
        assert!(VisibilityGraph::from_configuration(&c, 0.6).is_connected());
    }

    #[test]
    fn dumbbell_connected_at_v() {
        let c = dumbbell(6, 1.0, 3);
        assert!(VisibilityGraph::from_configuration(&c, 1.0).is_connected());
        assert!(c.len() >= 13, "two clusters plus a bridge");
    }

    #[test]
    fn ball3_connected() {
        let c = ball3(15, 1.0, 4);
        assert_eq!(c.len(), 15);
        assert!(VisibilityGraph::from_configuration(&c, 1.0).is_connected());
    }

    #[test]
    fn spiral_size() {
        assert_eq!(spiral(12, 0.4).len(), 12);
    }

    #[test]
    fn two_clusters_components() {
        let c = two_clusters(6, 1.0, 40.0, 72, 73);
        assert_eq!(c.len(), 12);
        let g = VisibilityGraph::from_configuration(&c, 1.0);
        assert!(!g.is_connected(), "gap 40 ≫ v keeps the clusters apart");
        let p = c.positions();
        for i in 0..6 {
            for j in 6..12 {
                assert!(p[i].dist(p[j]) > 1.0, "cross-cluster pair within v");
            }
        }
    }

    #[test]
    fn wedge_and_star_shapes() {
        let w = wedge(0.5);
        assert_eq!(w.len(), 3);
        let p = w.positions();
        assert!((p[1].norm() - 1.0).abs() < 1e-12);
        assert!((p[2].norm() - 1.0).abs() < 1e-12);
        let s = star(3);
        assert_eq!(s.len(), 4);
        assert!(s.positions()[0].norm() < 1e-12);
    }

    #[test]
    fn engagement_pair_at_threshold() {
        let c = engagement_pair(1.0, 9);
        assert_eq!(c.len(), 4);
        let p = c.positions();
        assert!((p[0].dist(p[1]) - 1.0).abs() < 1e-12);
        assert_eq!(engagement_pair(1.0, 9), engagement_pair(1.0, 9));
    }
}
