//! Seeded initial-configuration generators.
//!
//! Every generator is deterministic in its seed and (where the paper's
//! predicates require it) guarantees a **connected** visibility graph at the
//! given radius, which is the standing assumption of Point Convergence
//! (§2.4). Shapes cover the workloads the experiments need: generic random
//! clouds, worst-case-ish lines, rings near the visibility threshold, dense
//! grids, sparse cluster dumbbells, and 3D balls for the §6.3.2 extension.

use cohesion_geometry::{Vec2, Vec3};
use cohesion_model::{Configuration, VisibilityGraph};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A connected random configuration of `n` robots with visibility `v`.
///
/// Grown incrementally: each robot is placed uniformly in an annulus
/// `[0.3v, 0.9v]` around a uniformly chosen previous robot, guaranteeing
/// connectivity by construction while keeping the cloud genuinely
/// two-dimensional.
///
/// # Panics
///
/// Panics when `n == 0` or `v ≤ 0`.
///
/// ```
/// let c = cohesion_workloads::random_connected(25, 1.0, 7);
/// assert_eq!(c.len(), 25);
/// ```
pub fn random_connected(n: usize, v: f64, seed: u64) -> Configuration {
    assert!(n >= 1, "need at least one robot");
    assert!(v > 0.0, "visibility must be positive");
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut pts: Vec<Vec2> = vec![Vec2::ZERO];
    while pts.len() < n {
        let anchor = pts[rng.gen_range(0..pts.len())];
        let r = rng.gen_range(0.3 * v..0.9 * v);
        let theta = rng.gen_range(0.0..std::f64::consts::TAU);
        let candidate = anchor + Vec2::from_angle(theta) * r;
        // Avoid exact coincidence (multiplicities are legal but make poor
        // generic workloads).
        if pts.iter().all(|p| p.dist(candidate) > 1e-6) {
            pts.push(candidate);
        }
    }
    let config = Configuration::new(pts);
    debug_assert!(VisibilityGraph::from_configuration(&config, v).is_connected());
    config
}

/// `n` robots on a line with the given spacing (spacing ≤ `v` keeps it
/// connected). The classic slow-convergence workload.
pub fn line(n: usize, spacing: f64) -> Configuration {
    assert!(n >= 1, "need at least one robot");
    Configuration::new((0..n).map(|i| Vec2::new(i as f64 * spacing, 0.0)).collect())
}

/// `n` robots on a regular `n`-gon with side length `side` — the
/// configuration the paper's impossibility argument uses to show frozen
/// algorithms fail (§7.2.1).
pub fn ring(n: usize, side: f64) -> Configuration {
    assert!(n >= 3, "a ring needs at least three robots");
    // Circumradius for side s: R = s / (2 sin(π/n)).
    let r = side / (2.0 * (std::f64::consts::PI / n as f64).sin());
    Configuration::new(
        (0..n)
            .map(|i| Vec2::from_angle(i as f64 / n as f64 * std::f64::consts::TAU) * r)
            .collect(),
    )
}

/// A `rows × cols` grid with the given spacing.
pub fn grid(rows: usize, cols: usize, spacing: f64) -> Configuration {
    assert!(rows >= 1 && cols >= 1, "grid must be non-empty");
    let mut pts = Vec::with_capacity(rows * cols);
    for r in 0..rows {
        for c in 0..cols {
            pts.push(Vec2::new(c as f64 * spacing, r as f64 * spacing));
        }
    }
    Configuration::new(pts)
}

/// Two dense clusters of `per_side` robots bridged by a single chain —
/// stresses cohesion across a sparse cut.
pub fn dumbbell(per_side: usize, v: f64, seed: u64) -> Configuration {
    assert!(per_side >= 1, "need at least one robot per side");
    assert!(v > 0.0, "visibility must be positive");
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut pts: Vec<Vec2> = Vec::new();
    let cluster = |center: Vec2, pts: &mut Vec<Vec2>, rng: &mut SmallRng| {
        let start = pts.len();
        pts.push(center);
        while pts.len() - start < per_side {
            let d = rng.gen_range(0.05 * v..0.45 * v);
            let theta = rng.gen_range(0.0..std::f64::consts::TAU);
            let cand = center + Vec2::from_angle(theta) * d;
            if pts.iter().all(|p| p.dist(cand) > 1e-6) {
                pts.push(cand);
            }
        }
    };
    let gap = 3.0 * v;
    cluster(Vec2::ZERO, &mut pts, &mut rng);
    cluster(Vec2::new(gap, 0.0), &mut pts, &mut rng);
    // Bridge chain at 0.9v spacing.
    let mut x = 0.9 * v;
    while x < gap - 0.05 * v {
        pts.push(Vec2::new(x, 0.0));
        x += 0.9 * v;
    }
    Configuration::new(pts)
}

/// A generic Archimedean spiral for stress testing. (The *discrete* spiral
/// tail of the §7 impossibility construction lives in `cohesion-adversary`;
/// it needs the paper's exact turn-angle bookkeeping.)
pub fn spiral(n: usize, step: f64) -> Configuration {
    assert!(n >= 1, "need at least one robot");
    let mut pts = Vec::with_capacity(n);
    let mut theta: f64 = 0.0;
    for i in 0..n {
        let r = step * (1.0 + i as f64 * 0.15);
        pts.push(Vec2::from_angle(theta) * r);
        theta += 0.5;
    }
    Configuration::new(pts)
}

/// A connected random 3D ball of `n` robots with visibility `v` (the §6.3.2
/// extension workload), grown like [`random_connected`].
pub fn ball3(n: usize, v: f64, seed: u64) -> Configuration<Vec3> {
    assert!(n >= 1, "need at least one robot");
    assert!(v > 0.0, "visibility must be positive");
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut pts: Vec<Vec3> = vec![Vec3::ZERO];
    while pts.len() < n {
        let anchor = pts[rng.gen_range(0..pts.len())];
        let dir = loop {
            let d = Vec3::new(
                rng.gen_range(-1.0..1.0),
                rng.gen_range(-1.0..1.0),
                rng.gen_range(-1.0..1.0),
            );
            if d.norm() > 1e-3 && d.norm() <= 1.0 {
                break d * (1.0 / d.norm());
            }
        };
        let candidate = anchor + dir * rng.gen_range(0.3 * v..0.9 * v);
        if pts.iter().all(|p| p.dist(candidate) > 1e-6) {
            pts.push(candidate);
        }
    }
    Configuration::new(pts)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_connected_is_connected() {
        for seed in 0..5 {
            let c = random_connected(30, 1.0, seed);
            assert_eq!(c.len(), 30);
            assert!(VisibilityGraph::from_configuration(&c, 1.0).is_connected());
        }
    }

    #[test]
    fn determinism() {
        assert_eq!(random_connected(20, 1.0, 9), random_connected(20, 1.0, 9));
        assert_ne!(
            random_connected(20, 1.0, 9).positions(),
            random_connected(20, 1.0, 10).positions()
        );
    }

    #[test]
    fn line_spacing() {
        let c = line(5, 0.9);
        assert_eq!(c.len(), 5);
        assert!((c.diameter() - 3.6).abs() < 1e-12);
        assert!(VisibilityGraph::from_configuration(&c, 1.0).is_connected());
    }

    #[test]
    fn ring_has_unit_sides() {
        let c = ring(8, 1.0);
        let p = c.positions();
        for i in 0..8 {
            let d = p[i].dist(p[(i + 1) % 8]);
            assert!((d - 1.0).abs() < 1e-9, "side {i} has length {d}");
        }
    }

    #[test]
    fn grid_counts() {
        let c = grid(3, 4, 0.5);
        assert_eq!(c.len(), 12);
        assert!(VisibilityGraph::from_configuration(&c, 0.6).is_connected());
    }

    #[test]
    fn dumbbell_connected_at_v() {
        let c = dumbbell(6, 1.0, 3);
        assert!(VisibilityGraph::from_configuration(&c, 1.0).is_connected());
        assert!(c.len() >= 13, "two clusters plus a bridge");
    }

    #[test]
    fn ball3_connected() {
        let c = ball3(15, 1.0, 4);
        assert_eq!(c.len(), 15);
        assert!(VisibilityGraph::from_configuration(&c, 1.0).is_connected());
    }

    #[test]
    fn spiral_size() {
        assert_eq!(spiral(12, 0.4).len(), 12);
    }
}
