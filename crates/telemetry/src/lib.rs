//! `cohesion-telemetry` — the workspace's telemetry plane.
//!
//! A keyed state store with typed tokens and bounded-queue broadcast:
//!
//! * [`Key<T>`] — a static typed token per metric ([`keys`] holds the
//!   standard table: positions digest, violation counts, convergence
//!   diameter, events/sec, cell progress, checkpoint cadence).
//! * [`StateStore`] — writers [`publish`](StateStore::publish), any
//!   number of [`Subscription`]s receive ordered [`StateUpdate`]s through
//!   bounded queues with explicit drop accounting. A slow subscriber
//!   loses updates; it never blocks a publisher — which is what makes it
//!   safe to attach to a determinism-pinned simulation.
//! * [`StoreObserver`] — the engine adapter: attach to any `Simulation`
//!   session and its monitor/progress stream lands in a store.
//!
//! The bench layer builds on this: progress sinks tee into a store, the
//! `lab serve` coordinator aggregates every shard's heartbeats into one
//! store and re-broadcasts it over the framed-TCP protocol
//! (`Subscribe`/`StateUpdate`, protocol v3), and `lab watch` renders it
//! live. See the README "Telemetry" section for the wire format.
//!
//! Determinism posture: this crate never reads a clock and never touches
//! the simulation it observes; all shared state funnels through the one
//! audited concurrency module ([`sync`]). Row bytes are identical with
//! zero or many subscribers attached — pinned by tests in
//! `crates/bench/tests/watch.rs`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod keys;
pub mod observer;
pub mod store;
pub mod sync;

pub use keys::{Key, Metric, TelemetryValue};
pub use observer::{StoreObserver, DEFAULT_PUBLISH_EVERY};
pub use store::{Drain, StateStore, StateUpdate, Subscription, DEFAULT_QUEUE_CAPACITY};
