//! Typed metric tokens: `Key<T>` names one metric and pins its value type.
//!
//! A [`Key`] is a zero-sized-ish static token (`&'static str` name plus a
//! phantom type). Writers go through
//! [`StateStore::publish`](crate::StateStore::publish), which only accepts
//! the key's declared `T` — publishing a diameter as a `u64` or an event
//! count as text is a type error, not a runtime surprise. On the wire and
//! in the store every value is a [`TelemetryValue`]; the [`Metric`] trait
//! is the (total) conversion between the two.
//!
//! The standard token table lives here too: everything the engine
//! [`StoreObserver`](crate::StoreObserver) and the lab's progress path
//! publish. Per-shard metrics are published *scoped* — the same token under
//! a `"<experiment>/<shard>"` prefix
//! ([`StateStore::publish_scoped`](crate::StateStore::publish_scoped)) —
//! so one coordinator store aggregates a whole fleet without key
//! collisions.

use serde::Serialize;
use std::marker::PhantomData;

/// A dynamically-typed metric value — what the store holds and the wire
/// carries. Externally tagged on the wire (`{"F64":0.5}`, `{"U64":3}`).
#[derive(Debug, Clone, PartialEq, Serialize)]
pub enum TelemetryValue {
    /// Counters, digests, cadences.
    U64(u64),
    /// Diameters, simulated time, rates.
    F64(f64),
    /// Flags (cohesion-so-far, converged).
    Bool(bool),
    /// Phases, tags, labels.
    Text(String),
}

impl TelemetryValue {
    /// A short tag naming the variant (for diagnostics and rendering).
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            TelemetryValue::U64(_) => "u64",
            TelemetryValue::F64(_) => "f64",
            TelemetryValue::Bool(_) => "bool",
            TelemetryValue::Text(_) => "text",
        }
    }
}

/// A Rust type that can be published under a [`Key`] and read back.
pub trait Metric {
    /// Wraps the value for the store.
    fn into_value(self) -> TelemetryValue;
    /// Reads the value back, `None` on a variant mismatch.
    fn from_value(value: &TelemetryValue) -> Option<Self>
    where
        Self: Sized;
}

impl Metric for u64 {
    fn into_value(self) -> TelemetryValue {
        TelemetryValue::U64(self)
    }
    fn from_value(value: &TelemetryValue) -> Option<u64> {
        match value {
            TelemetryValue::U64(v) => Some(*v),
            _ => None,
        }
    }
}

impl Metric for f64 {
    fn into_value(self) -> TelemetryValue {
        TelemetryValue::F64(self)
    }
    fn from_value(value: &TelemetryValue) -> Option<f64> {
        match value {
            TelemetryValue::F64(v) => Some(*v),
            _ => None,
        }
    }
}

impl Metric for bool {
    fn into_value(self) -> TelemetryValue {
        TelemetryValue::Bool(self)
    }
    fn from_value(value: &TelemetryValue) -> Option<bool> {
        match value {
            TelemetryValue::Bool(v) => Some(*v),
            _ => None,
        }
    }
}

impl Metric for String {
    fn into_value(self) -> TelemetryValue {
        TelemetryValue::Text(self)
    }
    fn from_value(value: &TelemetryValue) -> Option<String> {
        match value {
            TelemetryValue::Text(v) => Some(v.clone()),
            _ => None,
        }
    }
}

/// A typed metric token: a static name plus the value type writers must
/// publish and readers get back. Construct the standard ones from the
/// table below; ad-hoc tokens via [`Key::new`] in a `const`.
pub struct Key<T> {
    name: &'static str,
    _marker: PhantomData<fn() -> T>,
}

// Derived impls would put bounds on `T`; hand-written ones keep `Key<T>`
// copyable for every `T`.
impl<T> Clone for Key<T> {
    fn clone(&self) -> Key<T> {
        *self
    }
}
impl<T> Copy for Key<T> {}

impl<T> std::fmt::Debug for Key<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("Key").field(&self.name).finish()
    }
}

impl<T> Key<T> {
    /// A token for `name`. `const` so tokens live in tables.
    #[must_use]
    pub const fn new(name: &'static str) -> Key<T> {
        Key {
            name,
            _marker: PhantomData,
        }
    }

    /// The key's store name.
    #[must_use]
    pub fn name(&self) -> &'static str {
        self.name
    }
}

// ---------------------------------------------------------------------------
// The standard token table
// ---------------------------------------------------------------------------

/// FNV-1a digest over every robot's position bits — two runs in the same
/// state publish the same digest, so divergence is visible live.
pub const POSITIONS_DIGEST: Key<u64> = Key::new("engine/positions_digest");

/// Cohesion violations recorded so far by the observed session.
pub const VIOLATIONS: Key<u64> = Key::new("engine/violations");

/// Configuration diameter at the latest round boundary or sample.
pub const DIAMETER: Key<f64> = Key::new("engine/diameter");

/// Engine events processed by the observed session.
pub const EVENTS: Key<u64> = Key::new("engine/events");

/// Completed rounds of the observed session.
pub const ROUNDS: Key<u64> = Key::new("engine/rounds");

/// Simulated time of the observed session.
pub const SIM_TIME: Key<f64> = Key::new("engine/time");

/// Observed event throughput (published by timing-approved layers only —
/// the store itself never reads a clock).
pub const EVENTS_PER_SEC: Key<f64> = Key::new("lab/events_per_sec");

/// Mid-cell checkpoint cadence, in engine events.
pub const CHECKPOINT_EVENTS: Key<u64> = Key::new("lab/checkpoint_events");

/// Grid cell a progress record speaks for (absolute, unsharded index).
pub const CELL: Key<u64> = Key::new("progress/cell");

/// Progress phase: `"start"`, `"heartbeat"`, or `"done"`.
pub const CELL_PHASE: Key<String> = Key::new("progress/phase");

/// The cell's experiment-local tag.
pub const CELL_TAG: Key<String> = Key::new("progress/tag");

/// Events processed so far in the reporting cell.
pub const CELL_EVENTS: Key<u64> = Key::new("progress/events");

/// Rounds completed so far in the reporting cell.
pub const CELL_ROUNDS: Key<u64> = Key::new("progress/rounds");

/// Simulated time so far in the reporting cell.
pub const CELL_TIME: Key<f64> = Key::new("progress/time");

/// Configuration diameter at the record.
pub const CELL_DIAMETER: Key<f64> = Key::new("progress/diameter");

/// Cohesion-so-far of the reporting cell.
pub const CELL_COHESION_OK: Key<bool> = Key::new("progress/cohesion_ok");

/// Whether the reporting cell has converged.
pub const CELL_CONVERGED: Key<bool> = Key::new("progress/converged");

/// Rows the cell reduced to (`done` records only).
pub const CELL_ROWS: Key<u64> = Key::new("progress/rows");

/// Shards queued by a `lab serve` run.
pub const SHARDS_TOTAL: Key<u64> = Key::new("serve/shards_total");

/// Shards completed so far.
pub const SHARDS_DONE: Key<u64> = Key::new("serve/shards_done");

/// Shards lost to dead workers and requeued.
pub const REASSIGNMENTS: Key<u64> = Key::new("serve/reassignments");

/// Workers that completed the handshake.
pub const WORKERS: Key<u64> = Key::new("serve/workers");

/// Rows received across all completed shards.
pub const ROWS_TOTAL: Key<u64> = Key::new("serve/rows_total");

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn metric_conversions_round_trip() {
        assert_eq!(u64::from_value(&7u64.into_value()), Some(7));
        assert_eq!(f64::from_value(&0.125f64.into_value()), Some(0.125));
        assert_eq!(bool::from_value(&true.into_value()), Some(true));
        assert_eq!(
            String::from_value(&String::from("done").into_value()),
            Some("done".into())
        );
        // Variant mismatches read back as None, never a panic.
        assert_eq!(u64::from_value(&TelemetryValue::F64(1.0)), None);
        assert_eq!(f64::from_value(&TelemetryValue::Text("x".into())), None);
    }

    #[test]
    fn keys_are_copyable_tokens() {
        let k = DIAMETER;
        let k2 = k; // Copy
        assert_eq!(k.name(), k2.name());
        assert_eq!(format!("{k:?}"), "Key(\"engine/diameter\")");
    }
}
