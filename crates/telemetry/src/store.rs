//! The keyed state store: publish typed values, broadcast ordered updates.
//!
//! One [`StateStore`] serves any number of writers and subscribers.
//! Writers call [`StateStore::publish`] with a typed [`Key`]; every
//! publish is stamped with a store-global sequence number and fanned out
//! to all live subscriptions. Each subscription owns a **bounded** queue:
//! when a subscriber falls behind, the oldest queued updates are dropped
//! and counted — the publisher never blocks and never allocates beyond
//! the fixed capacity. That is the load-bearing guarantee: telemetry can
//! be attached to a determinism-pinned simulation because a slow (or
//! stalled, or dead) dashboard cannot exert backpressure on it.
//!
//! Subscribers poll ([`Subscription::poll`]); there is no condition
//! variable or channel, so the store's only concurrency primitive is the
//! [`Guarded`] mutex in [`crate::sync`]. Polling fits both consumers we
//! have — the coordinator's watcher threads pace on their socket-read
//! timeout, and in-process tests pace on their own assertions.
//!
//! A subscription attached mid-run first receives a snapshot of the
//! latest value per key (in key order, original sequence stamps), then
//! live updates — so `lab watch` joining a billion-event run at hour
//! three starts from current state, not from nothing.

use crate::keys::{Key, Metric, TelemetryValue};
use crate::sync::Guarded;
use serde::Serialize;
use std::collections::{BTreeMap, VecDeque};
use std::sync::Arc;

/// Default per-subscription queue capacity, in updates.
pub const DEFAULT_QUEUE_CAPACITY: usize = 4096;

/// One published value: a store-global sequence stamp, the key it was
/// published under, and the value.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct StateUpdate {
    /// Store-global publish sequence, strictly increasing. Two updates to
    /// the same key always reach a subscriber in `seq` order; gaps mean
    /// updates were dropped (or published before this subscriber attached).
    pub seq: u64,
    /// Full key name, e.g. `"k_scaling/0of2/progress/events"`.
    pub key: String,
    /// The published value.
    pub value: TelemetryValue,
}

/// What one [`Subscription::poll`] call drained.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Drain {
    /// Updates in publish order (per key and globally).
    pub updates: Vec<StateUpdate>,
    /// Updates this subscription lost to queue overflow since the last
    /// poll. Explicit drop accounting: consumers always know whether the
    /// stream they saw was complete.
    pub dropped: u64,
}

struct SubQueue {
    queue: VecDeque<StateUpdate>,
    capacity: usize,
    dropped: u64,
}

impl SubQueue {
    fn push(&mut self, update: StateUpdate) {
        if self.queue.len() == self.capacity {
            self.queue.pop_front();
            self.dropped += 1;
        }
        self.queue.push_back(update);
    }
}

#[derive(Default)]
struct Inner {
    seq: u64,
    latest: BTreeMap<String, StateUpdate>,
    subs: BTreeMap<u64, SubQueue>,
    next_sub: u64,
}

/// The keyed state store. Cheap to share (`Arc`), safe to publish into
/// from any thread, and incapable of blocking its writers on its readers.
#[derive(Default)]
pub struct StateStore {
    inner: Guarded<Inner>,
}

impl StateStore {
    /// An empty store behind an [`Arc`], ready to share with publishers
    /// and subscribers.
    #[must_use]
    pub fn new() -> Arc<StateStore> {
        Arc::new(StateStore::default())
    }

    /// Publishes `value` under the typed `key`.
    pub fn publish<T: Metric>(&self, key: Key<T>, value: T) {
        self.publish_raw(key.name().to_string(), value.into_value());
    }

    /// Publishes under `"{scope}/{key}"` — how per-shard metrics share
    /// one coordinator store without colliding.
    pub fn publish_scoped<T: Metric>(&self, scope: &str, key: Key<T>, value: T) {
        self.publish_raw(format!("{scope}/{}", key.name()), value.into_value());
    }

    /// Publishes an already-wrapped value under a dynamic key name. The
    /// typed entry points delegate here; re-broadcast paths (coordinator
    /// mirroring a worker's updates) use it directly.
    pub fn publish_raw(&self, key: String, value: TelemetryValue) {
        self.inner.with(|inner| {
            inner.seq += 1;
            let update = StateUpdate {
                seq: inner.seq,
                key,
                value,
            };
            for sub in inner.subs.values_mut() {
                sub.push(update.clone());
            }
            inner.latest.insert(update.key.clone(), update);
        });
    }

    /// Reads the latest value published under `key`, if any (and if the
    /// stored variant matches the key's type).
    #[must_use]
    pub fn get<T: Metric>(&self, key: Key<T>) -> Option<T> {
        self.get_raw(key.name())
            .and_then(|update| T::from_value(&update.value))
    }

    /// Reads the latest update for a dynamic key name.
    #[must_use]
    pub fn get_raw(&self, key: &str) -> Option<StateUpdate> {
        self.inner.with(|inner| inner.latest.get(key).cloned())
    }

    /// The latest update per key, in key order.
    #[must_use]
    pub fn snapshot(&self) -> Vec<StateUpdate> {
        self.inner
            .with(|inner| inner.latest.values().cloned().collect())
    }

    /// Attaches a subscriber with the given queue capacity. The queue is
    /// seeded with a snapshot of the latest value per key (key order,
    /// original stamps), so mid-run attachers start from current state.
    /// Snapshot entries beyond `capacity` count as dropped, like any
    /// other overflow.
    #[must_use]
    pub fn subscribe(self: &Arc<Self>, capacity: usize) -> Subscription {
        let capacity = capacity.max(1);
        let id = self.inner.with(|inner| {
            let id = inner.next_sub;
            inner.next_sub += 1;
            let mut sub = SubQueue {
                queue: VecDeque::with_capacity(capacity),
                capacity,
                dropped: 0,
            };
            // Seed in seq order, not key order: every update a subscriber
            // ever sees then has a strictly larger seq than the one before
            // it, snapshot included.
            let mut seed: Vec<StateUpdate> = inner.latest.values().cloned().collect();
            seed.sort_by_key(|u| u.seq);
            for update in seed {
                sub.push(update);
            }
            inner.subs.insert(id, sub);
            id
        });
        Subscription {
            store: Arc::clone(self),
            id,
        }
    }

    /// Live subscriptions right now.
    #[must_use]
    pub fn subscriber_count(&self) -> usize {
        self.inner.with(|inner| inner.subs.len())
    }

    fn drain(&self, id: u64) -> Drain {
        self.inner.with(|inner| match inner.subs.get_mut(&id) {
            Some(sub) => Drain {
                updates: sub.queue.drain(..).collect(),
                dropped: std::mem::take(&mut sub.dropped),
            },
            None => Drain::default(),
        })
    }

    fn detach(&self, id: u64) {
        self.inner.with(|inner| {
            inner.subs.remove(&id);
        });
    }
}

/// A live subscription. Dropping it detaches from the store; a detached
/// subscriber costs publishers nothing.
pub struct Subscription {
    store: Arc<StateStore>,
    id: u64,
}

impl Subscription {
    /// Drains everything queued since the last poll, plus the count of
    /// updates lost to overflow in that window. Never blocks.
    #[must_use]
    pub fn poll(&self) -> Drain {
        self.store.drain(self.id)
    }
}

impl Drop for Subscription {
    fn drop(&mut self) {
        self.store.detach(self.id);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::keys;

    #[test]
    fn publish_fans_out_in_order() {
        let store = StateStore::new();
        let sub = store.subscribe(16);
        store.publish(keys::EVENTS, 1);
        store.publish(keys::DIAMETER, 0.5);
        store.publish(keys::EVENTS, 2);
        let drain = sub.poll();
        assert_eq!(drain.dropped, 0);
        let seqs: Vec<u64> = drain.updates.iter().map(|u| u.seq).collect();
        assert_eq!(seqs, vec![1, 2, 3]);
        let events: Vec<&StateUpdate> = drain
            .updates
            .iter()
            .filter(|u| u.key == keys::EVENTS.name())
            .collect();
        assert_eq!(events.len(), 2);
        assert!(events[0].seq < events[1].seq);
        assert_eq!(store.get(keys::EVENTS), Some(2));
    }

    #[test]
    fn late_subscriber_snapshot_is_seq_ordered() {
        let store = StateStore::new();
        // Publish so that key order (BTreeMap) disagrees with seq order:
        // "progress/cell" sorts after "engine/events" but is older.
        store.publish(keys::CELL, 0u64);
        store.publish(keys::DIAMETER, 2.0);
        store.publish(keys::EVENTS, 7);
        store.publish(keys::DIAMETER, 1.5); // supersedes seq 2
        let sub = store.subscribe(16);
        let drain = sub.poll();
        assert_eq!(drain.dropped, 0);
        let seqs: Vec<u64> = drain.updates.iter().map(|u| u.seq).collect();
        assert_eq!(seqs, vec![1, 3, 4], "latest-per-key, in seq order");
        store.publish(keys::EVENTS, 8);
        assert_eq!(sub.poll().updates.first().map(|u| u.seq), Some(5));
    }

    #[test]
    fn overflow_drops_oldest_and_counts() {
        let store = StateStore::new();
        let sub = store.subscribe(4);
        for i in 0..10u64 {
            store.publish(keys::EVENTS, i);
        }
        let drain = sub.poll();
        assert_eq!(drain.dropped, 6);
        assert_eq!(drain.updates.len(), 4);
        // The survivors are the newest four, still in order.
        let vals: Vec<Option<u64>> = drain
            .updates
            .iter()
            .map(|u| Metric::from_value(&u.value))
            .collect();
        assert_eq!(vals, vec![Some(6), Some(7), Some(8), Some(9)]);
        // Drop accounting resets after the poll that reported it.
        assert_eq!(sub.poll().dropped, 0);
    }

    #[test]
    fn mid_run_attach_seeds_latest_per_key() {
        let store = StateStore::new();
        store.publish(keys::EVENTS, 1);
        store.publish(keys::EVENTS, 2);
        store.publish(keys::DIAMETER, 0.25);
        let sub = store.subscribe(16);
        let drain = sub.poll();
        // One entry per key — the latest — not the full history.
        assert_eq!(drain.updates.len(), 2);
        assert_eq!(drain.dropped, 0);
        // Seq order, not key order — events (seq 2) precedes diameter
        // (seq 3) even though "engine/diameter" sorts first.
        let keys_seen: Vec<&str> = drain.updates.iter().map(|u| u.key.as_str()).collect();
        assert_eq!(keys_seen, vec![keys::EVENTS.name(), keys::DIAMETER.name()]);
    }

    #[test]
    fn drop_detaches() {
        let store = StateStore::new();
        let sub = store.subscribe(4);
        assert_eq!(store.subscriber_count(), 1);
        drop(sub);
        assert_eq!(store.subscriber_count(), 0);
        // Publishing to a store with no subscribers is fine and cheap.
        store.publish(keys::EVENTS, 1);
    }

    #[test]
    fn scoped_publish_prefixes_key() {
        let store = StateStore::new();
        store.publish_scoped("k_scaling/0of2", keys::CELL_EVENTS, 42);
        let update = store
            .get_raw("k_scaling/0of2/progress/events")
            .expect("scoped key present");
        assert_eq!(update.value, TelemetryValue::U64(42));
    }
}
