//! The telemetry plane's one approved concurrency module.
//!
//! Everything shared-state in `cohesion-telemetry` funnels through
//! [`Guarded`], a closure-scoped mutex wrapper. Two reasons beyond taste:
//!
//! * **Lint scope.** Workspace rule D4 confines concurrency primitives to
//!   named modules; this file is one of them. The store ([`crate::store`])
//!   and the bench progress sinks hold a `Guarded<T>` instead of a raw
//!   `Mutex<T>`, so the primitive — and the reasoning about what it
//!   serializes — lives in exactly one audited place.
//! * **No exposed guards.** `Guarded::with` hands the closure `&mut T` and
//!   returns; callers cannot hold a lock across I/O they did not pass in,
//!   recurse into the store, or leak a guard into a struct. Every critical
//!   section is visibly bounded at the call site.
//!
//! Poisoning is deliberately swallowed (`PoisonError::into_inner`): the
//! store holds plain data whose invariants are re-established on every
//! publish, and telemetry must keep flowing after a panicked publisher —
//! a dashboard that dies with the first broken cell helps nobody.

use std::sync::Mutex;

/// A mutex whose lock can only be used inside a closure — the telemetry
/// plane's sole concurrency primitive (see the module docs).
#[derive(Debug, Default)]
pub struct Guarded<T> {
    inner: Mutex<T>,
}

impl<T> Guarded<T> {
    /// Wraps a value.
    pub fn new(value: T) -> Guarded<T> {
        Guarded {
            inner: Mutex::new(value),
        }
    }

    /// Runs `f` with exclusive access to the value. Blocks only for the
    /// duration of other `with` calls — nothing outside the closure can
    /// hold the lock.
    pub fn with<R>(&self, f: impl FnOnce(&mut T) -> R) -> R {
        let mut guard = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        f(&mut guard)
    }

    /// Consumes the wrapper, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn with_serializes_access() {
        let g = Guarded::new(0u64);
        g.with(|v| *v += 1);
        g.with(|v| *v += 1);
        assert_eq!(g.with(|v| *v), 2);
        assert_eq!(g.into_inner(), 2);
    }
}
