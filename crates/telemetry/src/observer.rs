//! `StoreObserver`: the engine-layer bridge from a running [`Simulation`]
//! session to a [`StateStore`].
//!
//! Attach one with `Simulation::observe` and the session's monitor-grade
//! stream — event counts, round boundaries, diameter samples, cohesion
//! violations, and an FNV-1a digest of every robot's position bits — is
//! published into the store on a fixed event cadence. The observer is a
//! pure *reader* of the session: it never mutates engine state, never
//! reads a clock (rates are a timing-layer concern, not an engine one),
//! and its publishes land in a store that cannot block, so an attached
//! dashboard leaves the event stream — and therefore the row bytes —
//! untouched.
//!
//! [`Simulation`]: cohesion_engine::Simulation

use crate::keys;
use crate::store::StateStore;
use cohesion_engine::report::CohesionViolation;
use cohesion_engine::{fnv1a, EventView, Observer};
use cohesion_model::frame::Ambient;
use std::sync::Arc;

/// Default publish cadence, in engine events.
pub const DEFAULT_PUBLISH_EVERY: usize = 10_000;

/// An [`Observer`] that publishes session telemetry into a [`StateStore`].
pub struct StoreObserver {
    store: Arc<StateStore>,
    scope: Option<String>,
    publish_every: usize,
    events: u64,
    rounds: u64,
    violations: u64,
    digest_buf: Vec<u8>,
}

impl StoreObserver {
    /// An observer publishing into `store` under the un-prefixed standard
    /// tokens, every [`DEFAULT_PUBLISH_EVERY`] events.
    #[must_use]
    pub fn new(store: Arc<StateStore>) -> StoreObserver {
        StoreObserver {
            store,
            scope: None,
            publish_every: DEFAULT_PUBLISH_EVERY,
            events: 0,
            rounds: 0,
            violations: 0,
            digest_buf: Vec::new(),
        }
    }

    /// Prefixes every published key with `scope/` — how several observed
    /// sessions share one store.
    #[must_use]
    pub fn scoped(mut self, scope: impl Into<String>) -> StoreObserver {
        self.scope = Some(scope.into());
        self
    }

    /// Sets the event cadence for the per-event publishes (event count,
    /// simulated time, positions digest). Rounds, samples, and violations
    /// always publish immediately. A cadence of 0 disables the per-event
    /// publishes entirely.
    #[must_use]
    pub fn publish_every(mut self, events: usize) -> StoreObserver {
        self.publish_every = events;
        self
    }

    fn put_u64(&self, key: keys::Key<u64>, value: u64) {
        match &self.scope {
            Some(scope) => self.store.publish_scoped(scope, key, value),
            None => self.store.publish(key, value),
        }
    }

    fn put_f64(&self, key: keys::Key<f64>, value: f64) {
        match &self.scope {
            Some(scope) => self.store.publish_scoped(scope, key, value),
            None => self.store.publish(key, value),
        }
    }

    /// FNV-1a over the little-endian bit patterns of every coordinate of
    /// every position, in robot order. Bit-exact state comparison: two
    /// runs (or one run and its resumed twin) in the same state publish
    /// the same digest.
    fn positions_digest<P: Ambient>(&mut self, positions: &[P]) -> u64 {
        self.digest_buf.clear();
        for p in positions {
            for axis in 0..P::DIM {
                self.digest_buf
                    .extend_from_slice(&p.coord(axis).to_bits().to_le_bytes());
            }
        }
        fnv1a(&self.digest_buf)
    }
}

impl<P: Ambient> Observer<P> for StoreObserver {
    fn on_event(&mut self, view: &EventView<'_, P>) {
        self.events += 1;
        if self.publish_every == 0 || self.events % self.publish_every as u64 != 0 {
            return;
        }
        let digest = self.positions_digest(view.monitors.positions);
        self.put_u64(keys::EVENTS, self.events);
        self.put_f64(keys::SIM_TIME, view.monitors.time);
        self.put_u64(keys::POSITIONS_DIGEST, digest);
    }

    fn on_round(&mut self, round: usize, time: f64, diameter: f64) {
        self.rounds = round as u64;
        self.put_u64(keys::ROUNDS, self.rounds);
        self.put_f64(keys::SIM_TIME, time);
        self.put_f64(keys::DIAMETER, diameter);
    }

    fn on_violation(&mut self, _violation: &CohesionViolation) {
        self.violations += 1;
        self.put_u64(keys::VIOLATIONS, self.violations);
    }

    fn on_sample(&mut self, time: f64, diameter: f64) {
        self.put_f64(keys::SIM_TIME, time);
        self.put_f64(keys::DIAMETER, diameter);
    }
}
