//! Integration contract of the telemetry plane.
//!
//! Three properties carry the subsystem:
//!
//! 1. **Non-interference** — attaching a [`StoreObserver`] (with any
//!    number of subscribers, including ones that never poll or detach
//!    mid-run) leaves a session's report byte-identical to an unobserved
//!    run.
//! 2. **Bounded fan-out** — slow subscribers lose the oldest updates and
//!    are told exactly how many; publishers never block.
//! 3. **Ordered delivery** — per key and globally, updates arrive in
//!    publish order, stamped with a strictly increasing sequence.

use cohesion_engine::{SimulationBuilder, SimulationReport};
use cohesion_model::NilAlgorithm;
use cohesion_scheduler::{AsyncScheduler, Scheduler};
use cohesion_telemetry::{keys, Metric, StateStore, StoreObserver, TelemetryValue};
use std::sync::Arc;

fn builder() -> SimulationBuilder {
    SimulationBuilder::new(
        cohesion_workloads::random_connected(10, 1.0, 77),
        NilAlgorithm,
    )
    .visibility(1.0)
    .scheduler(Box::new(AsyncScheduler::new(0xBEEF)) as Box<dyn Scheduler>)
    .seed(0xDEAD_0001)
    .max_events(4_000)
    .hull_check_every(16)
    .diameter_sample_every(8)
}

fn report_json(report: &SimulationReport) -> String {
    serde_json::to_string(report).expect("serialize report")
}

/// The observer publishes the standard engine tokens from a real session.
#[test]
fn store_observer_publishes_engine_tokens() {
    let store = StateStore::new();
    let mut session = builder().build();
    session.observe(StoreObserver::new(Arc::clone(&store)).publish_every(500));
    while !session.status().is_terminal() {
        session.step();
    }
    let events = store.get(keys::EVENTS).expect("events published");
    assert!(events >= 500, "cadence publishes happened");
    assert!(store.get(keys::SIM_TIME).is_some());
    assert!(store.get(keys::POSITIONS_DIGEST).is_some());
    assert!(store.get(keys::DIAMETER).is_some(), "samples published");
    assert!(store.get(keys::ROUNDS).is_some(), "rounds published");
}

/// Identical sessions publish identical position digests — and a resumed
/// subscriber attaching mid-run sees the same digest the full-stream
/// subscriber saw at that sequence point.
#[test]
fn positions_digest_is_reproducible() {
    let digest_of = |publish_every: usize| {
        let store = StateStore::new();
        let mut session = builder().build();
        session.observe(StoreObserver::new(Arc::clone(&store)).publish_every(publish_every));
        while !session.status().is_terminal() {
            session.step();
        }
        store.get(keys::POSITIONS_DIGEST).expect("digest published")
    };
    // Publish cadence changes how often we look, not what we see: both
    // cadences divide the event budget, so the final digest matches.
    assert_eq!(digest_of(1_000), digest_of(2_000));
}

/// Attaching the observer — with an un-polled (stalling) subscriber, a
/// subscriber that detaches mid-run, and no subscriber at all — leaves
/// the session report byte-identical to the unobserved run.
#[test]
fn observed_sessions_report_byte_identical() {
    let baseline = report_json(&builder().run());

    // Observer attached, nobody subscribed.
    let store = StateStore::new();
    let mut session = builder().build();
    session.observe(StoreObserver::new(Arc::clone(&store)).publish_every(250));
    while !session.status().is_terminal() {
        session.step();
    }
    assert_eq!(report_json(&session.into_report()), baseline);

    // A stalling subscriber (tiny queue, never polled) and one that
    // detaches mid-run.
    let store = StateStore::new();
    let stalling = store.subscribe(2);
    let detaching = store.subscribe(64);
    let mut session = builder().build();
    session.observe(StoreObserver::new(Arc::clone(&store)).publish_every(250));
    let mut steps = 0u32;
    let mut detaching = Some(detaching);
    while !session.status().is_terminal() {
        session.step();
        steps += 1;
        if steps == 1_000 {
            drop(detaching.take());
        }
    }
    assert_eq!(report_json(&session.into_report()), baseline);
    let drain = stalling.poll();
    assert_eq!(drain.updates.len(), 2, "stalled queue kept its capacity");
    assert!(drain.dropped > 0, "stalled subscriber was told its losses");
}

/// Publishers on several threads: every delivered update carries a unique,
/// strictly increasing sequence stamp, and drops are exactly accounted.
#[test]
fn concurrent_publishers_keep_global_order() {
    let store = StateStore::new();
    let sub = store.subscribe(1024);
    std::thread::scope(|scope| {
        for _ in 0..4 {
            let store = Arc::clone(&store);
            scope.spawn(move || {
                for i in 0..64u64 {
                    store.publish(keys::EVENTS, i);
                }
            });
        }
    });
    let drain = sub.poll();
    assert_eq!(drain.updates.len() as u64 + drain.dropped, 4 * 64);
    let mut prev = 0;
    for update in &drain.updates {
        assert!(update.seq > prev, "sequence stamps strictly increase");
        prev = update.seq;
    }
}

/// A subscriber that keeps up across many poll rounds sees every update
/// for a key, in publish order, with zero drops.
#[test]
fn ordered_delivery_per_key_across_polls() {
    let store = StateStore::new();
    let sub = store.subscribe(8);
    let mut seen: Vec<u64> = Vec::new();
    let mut dropped = 0;
    for i in 0..100u64 {
        store.publish(keys::CELL_EVENTS, i);
        if i % 5 == 4 {
            let drain = sub.poll();
            dropped += drain.dropped;
            seen.extend(
                drain
                    .updates
                    .iter()
                    .filter(|u| u.key == keys::CELL_EVENTS.name())
                    .map(|u| u64::from_value(&u.value).expect("u64 value")),
            );
        }
    }
    seen.extend(
        sub.poll()
            .updates
            .iter()
            .map(|u| u64::from_value(&u.value).expect("u64 value")),
    );
    assert_eq!(dropped, 0);
    assert_eq!(seen, (0..100).collect::<Vec<u64>>());
}

/// The newline-JSON frame format `lab watch --json` emits: one compact
/// object per update, value externally tagged by type. Pinned here so
/// external UIs can rely on it.
#[test]
fn state_update_wire_format() {
    let store = StateStore::new();
    let sub = store.subscribe(8);
    store.publish(keys::EVENTS, 5);
    store.publish(keys::DIAMETER, 0.5);
    store.publish(keys::CELL_PHASE, String::from("heartbeat"));
    store.publish(keys::CELL_COHESION_OK, true);
    let lines: Vec<String> = sub
        .poll()
        .updates
        .iter()
        .map(|u| serde_json::to_string(u).expect("serialize update"))
        .collect();
    assert_eq!(
        lines,
        vec![
            r#"{"seq":1,"key":"engine/events","value":{"U64":5}}"#,
            r#"{"seq":2,"key":"engine/diameter","value":{"F64":0.5}}"#,
            r#"{"seq":3,"key":"progress/phase","value":{"Text":"heartbeat"}}"#,
            r#"{"seq":4,"key":"progress/cohesion_ok","value":{"Bool":true}}"#,
        ]
    );
    // And the store's snapshot view reads back typed.
    assert_eq!(store.get(keys::CELL_PHASE), Some("heartbeat".to_string()));
    assert_eq!(
        store.get_raw("engine/diameter").map(|u| u.value),
        Some(TelemetryValue::F64(0.5))
    );
}
