//! Property-based tests for the core contribution: the algorithm's
//! invariants in 2D and 3D, the reach-region geometry, and the monotonicity
//! of the congregation bounds.

use cohesion_core::analysis::congregation::{lemma6_bound, lemma7_bound, lemma8_perimeter_drop};
use cohesion_core::neighbors::classify_neighbors;
use cohesion_core::{KirkpatrickAlgorithm, ReachRegion, SafeRegion};
use cohesion_geometry::{Vec2, Vec3};
use cohesion_model::{Algorithm, Snapshot};
use proptest::prelude::*;

fn vec2_nonzero() -> impl Strategy<Value = Vec2> {
    (0.05..1.0f64, 0.0..std::f64::consts::TAU).prop_map(|(r, a)| Vec2::from_angle(a) * r)
}

fn vec3_nonzero() -> impl Strategy<Value = Vec3> {
    (0.05..1.0f64, -1.0..1.0f64, 0.0..std::f64::consts::TAU).prop_map(|(r, z, a)| {
        let s = (1.0 - z * z).sqrt();
        Vec3::new(s * a.cos(), s * a.sin(), z) * r
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// The classification is a partition with the furthest robot distant.
    #[test]
    fn classification_partitions(pts in proptest::collection::vec(vec2_nonzero(), 1..10)) {
        let snap = Snapshot::from_positions(pts.clone());
        let hood = classify_neighbors(&snap, 1.0);
        prop_assert_eq!(hood.distant.len() + hood.close.len(), pts.len());
        prop_assert!(!hood.distant.is_empty(), "the furthest neighbour is always distant");
        for d in &hood.distant {
            prop_assert!(d.norm() > hood.v_z / 2.0 - 1e-12);
        }
        for c in &hood.close {
            prop_assert!(c.norm() <= hood.v_z / 2.0 + 1e-12);
        }
    }

    /// The 3D algorithm's target also respects every distant safe ball and
    /// the step bound — the §6.3.2 generalization of the Figure 15 property.
    #[test]
    fn target_respects_safe_balls_3d(
        pts in proptest::collection::vec(vec3_nonzero(), 1..8),
        k in 1u32..4,
    ) {
        let alg = KirkpatrickAlgorithm::new(k);
        let snap = Snapshot::from_positions(pts);
        let target: Vec3 = alg.compute(&snap);
        let hood = alg.neighborhood(&snap);
        let r = hood.v_z / (8.0 * f64::from(k));
        prop_assert!(target.norm() <= r + 1e-9);
        for d in &hood.distant {
            if let Some(region) = SafeRegion::new(Vec3::ZERO, *d, r) {
                prop_assert!(region.contains(target, 1e-7), "target outside ball of {d}");
            }
        }
    }

    /// Scaling identity (§3.2.1): p ∈ S^r ⇒ α·p ∈ S^{αr} (origin at Y0).
    #[test]
    fn safe_region_scaling_identity(
        dir in vec2_nonzero(),
        theta in 0.0..std::f64::consts::TAU,
        rho in 0.0..1.0f64,
        alpha in 0.01..1.0f64,
    ) {
        let r = 0.125;
        let region = SafeRegion::new(Vec2::ZERO, dir, r).unwrap();
        let p = region.center() + Vec2::from_angle(theta) * (rho * r);
        prop_assert!(region.contains(p, 1e-12));
        let witness = region.scaling_witness(p, alpha);
        prop_assert!(region.scaled(alpha).contains(witness, 1e-9));
    }

    /// The reach region for a stationary neighbour equals the safe region
    /// (Observation 1(i)): mutual containment on random samples.
    #[test]
    fn reach_region_equals_safe_region_when_stationary(
        dir in vec2_nonzero(),
        theta in 0.0..std::f64::consts::TAU,
        rho in 0.0..2.0f64,
    ) {
        let r = 0.125;
        let x0 = dir;
        let reach = ReachRegion::new(Vec2::ZERO, x0, x0, r);
        let safe = SafeRegion::new(Vec2::ZERO, x0, r).unwrap();
        let p = safe.center() + Vec2::from_angle(theta) * (rho * r);
        // Inside safe ⇒ inside reach; outside safe by a margin ⇒ outside reach.
        if safe.contains(p, 0.0) {
            prop_assert!(reach.contains(p, 1e-6));
        } else if !safe.contains(p, 1e-3) {
            prop_assert!(!reach.contains(p, 0.0), "{p} in reach but off the safe disk");
        }
    }

    /// The congregation bounds are monotone in their arguments and scale
    /// linearly in the hull radius.
    #[test]
    fn congregation_bounds_monotone(
        zeta in 0.01..1.0f64, xi in 0.01..1.0f64, r_h in 0.1..10.0f64
    ) {
        let b = lemma6_bound(zeta, xi, r_h);
        prop_assert!(b > 0.0);
        prop_assert!(lemma6_bound(zeta * 0.5, xi, r_h) < b);
        prop_assert!(lemma6_bound(zeta, xi * 0.5, r_h) < b);
        prop_assert!((lemma6_bound(zeta, xi, 2.0 * r_h) - 2.0 * b).abs() < 1e-12 * (1.0 + b));
        prop_assert!(lemma7_bound(zeta, xi, r_h) < b, "contagion is weaker");
        // Lemma 8 drop is increasing in d and decreasing in r_H.
        let d = zeta.min(r_h * 0.9).max(1e-6);
        let drop = lemma8_perimeter_drop(d, r_h);
        prop_assert!(drop > 0.0);
        if d * 0.5 > 0.0 {
            prop_assert!(lemma8_perimeter_drop(d * 0.5, r_h) < drop);
        }
    }

    /// The error-tolerant variant never takes a longer step than the exact
    /// one, and both move along the same bisector.
    #[test]
    fn error_tolerance_only_shortens(
        a1 in 0.0..1.2f64, a2 in -1.2..0.0f64,
        delta in 0.0..0.3f64, lambda in 0.0..0.5f64,
    ) {
        let pts = vec![Vec2::from_angle(a1), Vec2::from_angle(a2)];
        let snap = Snapshot::from_positions(pts);
        let exact: Vec2 = KirkpatrickAlgorithm::new(1).compute(&snap);
        let tolerant: Vec2 =
            KirkpatrickAlgorithm::with_error_tolerance(1, delta, lambda).compute(&snap);
        prop_assert!(tolerant.norm() <= exact.norm() + 1e-12);
        if tolerant.norm() > 1e-12 && exact.norm() > 1e-12 {
            let cos = exact.dot(tolerant) / (exact.norm() * tolerant.norm());
            prop_assert!(cos > 1.0 - 1e-9, "both must point along the bisector");
        }
    }

    /// Nil moves are exactly the surrounded configurations: adding the
    /// antipode of every distant direction freezes the robot.
    #[test]
    fn antipodal_completion_freezes(pts in proptest::collection::vec(vec2_nonzero(), 1..5)) {
        let alg = KirkpatrickAlgorithm::new(1);
        let mut both: Vec<Vec2> = pts.clone();
        both.extend(pts.iter().map(|p| -*p));
        let t: Vec2 = alg.compute(&Snapshot::from_positions(both));
        prop_assert!(t.norm() < 1e-12, "antipodally closed sets must freeze, got {t}");
    }
}
