//! Distant/close neighbour classification (§3.2).
//!
//! In each activation a robot `Z` computes `V_Z`, the distance to its
//! furthest visible neighbour — a tentative lower bound on the (unknown)
//! visibility radius `V`. Neighbours further than `V_Z/2` are *distant*,
//! the rest *close*. `Z` always has at least one distant neighbour (the
//! furthest one), and only distant neighbours constrain its motion.

use cohesion_geometry::point::Point;
use cohesion_model::Snapshot;
use serde::{Deserialize, Serialize};

/// Classification of one perceived neighbour.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum NeighborClass {
    /// Distance in `(V_Z/2, V_Z]` — constrains the motion.
    Distant,
    /// Distance in `(0, V_Z/2]` — cannot be separated by a bounded move.
    Close,
}

/// The classified neighbourhood of an activated robot.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Neighborhood<P> {
    /// Perceived `V_Z` (after any defensive rescaling by the algorithm).
    pub v_z: f64,
    /// Distant neighbours' perceived displacements.
    pub distant: Vec<P>,
    /// Close neighbours' perceived displacements.
    pub close: Vec<P>,
}

impl<P: Point> Neighborhood<P> {
    /// Returns `true` when nothing was visible.
    pub fn is_empty(&self) -> bool {
        self.distant.is_empty() && self.close.is_empty()
    }
}

/// Classifies a snapshot's neighbours.
///
/// `distance_rescale` divides all perceived distances before classification —
/// the §6.1 defence against distance-measurement error (pass
/// `1.0 / (1.0 + δ)` to guarantee `V_Z ≤ V` despite over-reads; pass `1.0`
/// for exact perception). Observations at (numerically) zero distance are
/// ignored: a co-located robot provides no direction and no constraint.
///
/// ```
/// use cohesion_core::neighbors::{classify_neighbors, NeighborClass};
/// use cohesion_model::Snapshot;
/// use cohesion_geometry::Vec2;
/// let snap = Snapshot::from_positions(vec![Vec2::new(1.0, 0.0), Vec2::new(0.3, 0.0)]);
/// let hood = classify_neighbors(&snap, 1.0);
/// assert_eq!(hood.distant.len(), 1);
/// assert_eq!(hood.close.len(), 1);
/// assert!((hood.v_z - 1.0).abs() < 1e-12);
/// ```
pub fn classify_neighbors<P: Point>(
    snapshot: &Snapshot<P>,
    distance_rescale: f64,
) -> Neighborhood<P> {
    assert!(
        distance_rescale > 0.0 && distance_rescale <= 1.0,
        "distance rescale must be in (0, 1]"
    );
    let positions: Vec<P> = snapshot
        .positions()
        .map(|p| p * distance_rescale)
        .filter(|p| p.norm() > 1e-12)
        .collect();
    let v_z = positions.iter().map(|p| p.norm()).fold(0.0, f64::max);
    let mut distant = Vec::new();
    let mut close = Vec::new();
    for p in positions {
        if p.norm() > v_z / 2.0 {
            distant.push(p);
        } else {
            close.push(p);
        }
    }
    Neighborhood {
        v_z,
        distant,
        close,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cohesion_geometry::Vec2;

    #[test]
    fn furthest_is_always_distant() {
        let snap = Snapshot::from_positions(vec![
            Vec2::new(0.2, 0.0),
            Vec2::new(0.0, 0.9),
            Vec2::new(0.5, 0.0),
        ]);
        let hood = classify_neighbors(&snap, 1.0);
        assert!((hood.v_z - 0.9).abs() < 1e-12);
        assert_eq!(hood.distant.len(), 2, "0.9 and 0.5 exceed V_Z/2 = 0.45");
        assert_eq!(hood.close.len(), 1);
    }

    #[test]
    fn boundary_is_close() {
        // Exactly V_Z/2 is "close" (the classification is distance > V_Z/2).
        let snap = Snapshot::from_positions(vec![Vec2::new(1.0, 0.0), Vec2::new(0.5, 0.0)]);
        let hood = classify_neighbors(&snap, 1.0);
        assert_eq!(hood.distant.len(), 1);
        assert_eq!(hood.close.len(), 1);
    }

    #[test]
    fn rescaling_shrinks_vz() {
        let snap = Snapshot::from_positions(vec![Vec2::new(1.1, 0.0)]);
        let hood = classify_neighbors(&snap, 1.0 / 1.1);
        assert!((hood.v_z - 1.0).abs() < 1e-12);
    }

    #[test]
    fn colocated_observation_ignored() {
        let snap = Snapshot::from_positions(vec![Vec2::ZERO, Vec2::new(1.0, 0.0)]);
        let hood = classify_neighbors(&snap, 1.0);
        assert_eq!(hood.distant.len() + hood.close.len(), 1);
    }

    #[test]
    fn empty_snapshot() {
        let hood = classify_neighbors::<Vec2>(&Snapshot::from_positions(vec![]), 1.0);
        assert!(hood.is_empty());
        assert_eq!(hood.v_z, 0.0);
    }
}
