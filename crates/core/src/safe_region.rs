//! The basic safe region `S^r_{Y0}(X0)` of §3.2.1.
//!
//! For a robot `Y` at `Y0` with a distant neighbour `X` at `X0`, the safe
//! region of radius `r` is the disk of radius `r` centred at the point at
//! distance `r` from `Y0` *in the direction of* `X0`. Note the region depends
//! only on the **direction** to the neighbour (unlike Ando's and Katreniak's
//! regions, which depend on the distance) — this simplicity is what the
//! paper's backward-reachability analysis exploits.

use cohesion_geometry::point::Point;
use cohesion_geometry::{Ball, Vec2};
use serde::{Deserialize, Serialize};

/// A safe region `S^r_{Y0}(X0)` for motion of the robot at `origin` with
/// respect to a (distant) neighbour seen in direction `direction`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SafeRegion<P = Vec2> {
    /// Position `Y0` of the moving robot.
    pub origin: P,
    /// Unit vector from `Y0` toward the neighbour's observed position.
    pub direction: P,
    /// Region radius `r` (the paper uses `r = V_Y/8` scaled by `α = 1/k`).
    pub radius: f64,
}

impl<P: Point> SafeRegion<P> {
    /// Builds the safe region for the observer at `origin` seeing a
    /// neighbour at `neighbor`; `None` when the two coincide (no direction).
    ///
    /// # Panics
    ///
    /// Panics if `radius` is negative or non-finite.
    pub fn new(origin: P, neighbor: P, radius: f64) -> Option<Self> {
        assert!(
            radius >= 0.0 && radius.is_finite(),
            "invalid safe-region radius {radius}"
        );
        let direction = (neighbor - origin).normalized(1e-12)?;
        Some(SafeRegion {
            origin,
            direction,
            radius,
        })
    }

    /// The centre of the region: the point at distance `radius` from the
    /// origin toward the neighbour.
    #[inline]
    pub fn center(&self) -> P {
        self.origin + self.direction * self.radius
    }

    /// The region as a ball.
    #[inline]
    pub fn ball(&self) -> Ball<P> {
        Ball::new(self.center(), self.radius)
    }

    /// Returns `true` when `p` lies in the (closed) safe region with slack
    /// `eps`.
    #[inline]
    pub fn contains(&self, p: P, eps: f64) -> bool {
        self.center().dist(p) <= self.radius + eps
    }

    /// The same region scaled by `α ∈ (0, 1]` (the `k`-Async scaling of
    /// §3.2.1: `S^{αV_Y/8}`). Scaling moves the centre toward the origin and
    /// shrinks the radius by the same factor, so `Y0` stays on the boundary.
    pub fn scaled(&self, alpha: f64) -> SafeRegion<P> {
        assert!(
            alpha > 0.0 && alpha <= 1.0,
            "scale factor must be in (0, 1]"
        );
        SafeRegion {
            origin: self.origin,
            direction: self.direction,
            radius: self.radius * alpha,
        }
    }

    /// Verifies the scaling identity of §3.2.1: if `p ∈ S^r`, then the point
    /// at distance `α·|p − Y0|` from `Y0` in the direction of `p` lies in
    /// `S^{αr}`. Exposed for the property tests that reproduce the claim.
    pub fn scaling_witness(&self, p: P, alpha: f64) -> P {
        let v = p - self.origin;
        self.origin + v * alpha
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn region() -> SafeRegion {
        SafeRegion::new(Vec2::ZERO, Vec2::new(4.0, 0.0), 1.0).unwrap()
    }

    #[test]
    fn geometry() {
        let s = region();
        assert_eq!(s.center(), Vec2::new(1.0, 0.0));
        // The origin is on the boundary.
        assert!(s.contains(Vec2::ZERO, 1e-12));
        assert!(s.contains(Vec2::new(2.0, 0.0), 1e-12));
        assert!(!s.contains(Vec2::new(2.1, 0.0), 1e-9));
        assert!(s.contains(Vec2::new(1.0, 1.0), 1e-12));
        assert!(!s.contains(Vec2::new(1.0, 1.1), 1e-9));
    }

    #[test]
    fn depends_only_on_direction() {
        let near = SafeRegion::new(Vec2::ZERO, Vec2::new(0.6, 0.0), 1.0).unwrap();
        let far = SafeRegion::new(Vec2::ZERO, Vec2::new(100.0, 0.0), 1.0).unwrap();
        assert_eq!(near.center(), far.center());
    }

    #[test]
    fn coincident_neighbor_rejected() {
        assert!(SafeRegion::new(Vec2::ZERO, Vec2::ZERO, 1.0).is_none());
    }

    #[test]
    fn scaling_keeps_origin_on_boundary() {
        let s = region();
        let half = s.scaled(0.5);
        assert_eq!(half.center(), Vec2::new(0.5, 0.0));
        assert!(half.contains(Vec2::ZERO, 1e-12));
        assert!((half.center().dist(half.origin) - half.radius).abs() < 1e-12);
    }

    #[test]
    fn scaling_identity_of_paper() {
        // If p ∈ S^r then α·(p − Y0) + Y0 ∈ S^{αr} (§3.2.1).
        let s = region();
        let samples = [
            Vec2::new(2.0, 0.0),
            Vec2::new(1.0, 1.0),
            Vec2::new(0.5, 0.5),
            Vec2::new(1.5, -0.8),
        ];
        for p in samples {
            assert!(s.contains(p, 1e-12), "sample {p} must be in S^r");
            for alpha in [0.25, 0.5, 0.75, 1.0] {
                let w = s.scaling_witness(p, alpha);
                assert!(s.scaled(alpha).contains(w, 1e-12), "α={alpha}, p={p}");
            }
        }
    }
}
