//! The paper's primary contribution (§3–§6): an error-tolerant algorithm
//! solving **Cohesive Convergence** under `k`-Async scheduling for any fixed
//! `k`, together with the geometric machinery of its correctness proof.
//!
//! * [`safe_region`] — the basic safe regions `S^{αV_Y/8}_{Y0}(X0)` (§3.2.1,
//!   Figure 3 right);
//! * [`neighbors`] — the distant/close neighbour classification driven by the
//!   tentative visibility bound `V_Z` (§3.2);
//! * [`algorithm`] — [`KirkpatrickAlgorithm`]: the target-destination rule of
//!   §5 with the `1/k` scaling of §3.2.1 and the error-tolerance
//!   modifications of §6.1, implemented for the plane (exact sector rule) and
//!   for 3-space (minimal-enclosing-cone generalization, §6.3.2);
//! * [`reach_region`] — the regions `R^r_{Y0}(X0, X1)` (core + bulge,
//!   Figure 5) bounding what `k` constrained moves can reach (Lemmas 1–2);
//! * [`analysis`] — executable forms of the proof's quantitative facts: the
//!   Lemma 5 chain invariant (`cos θ_t ≥ √((2+√3)/4)`), the congregation
//!   bounds of Lemmas 6–8, and helpers for the hull-radius/critical-point
//!   bookkeeping of Figure 16.

#![forbid(unsafe_code)]
#![deny(unsafe_op_in_unsafe_fn)]

pub mod algorithm;
pub mod analysis;
pub mod neighbors;
pub mod reach_region;
pub mod safe_region;

pub use algorithm::KirkpatrickAlgorithm;
pub use neighbors::{classify_neighbors, NeighborClass, Neighborhood};
pub use reach_region::ReachRegion;
pub use safe_region::SafeRegion;
