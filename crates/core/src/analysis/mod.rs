//! Executable forms of the paper's quantitative proof machinery.
//!
//! * [`lemma5`] — the chain invariant of the `1-Async` visibility-preservation
//!   argument (§4.2.1): along any doomed-engagement chain,
//!   `|e_t| > V·cos θ_t` and `cos θ_t ≥ √((2+√3)/4) = cos 15°`;
//! * [`congregation`] — the congregation bounds of §5 (Lemmas 6–8): how far
//!   from a critical hull point a moving robot must end up, and how much the
//!   hull perimeter drops when a vertex neighbourhood empties.

pub mod congregation;
pub mod lemma5;

pub use congregation::{
    hull_radius_and_critical_points, lemma6_bound, lemma7_bound, lemma8_perimeter_drop,
};
pub use lemma5::{verify_chain, ChainReport, COS_THETA_MIN};
