//! The Lemma 5 chain invariant (§4.2.1, Figures 10–12).
//!
//! The `1-Async` visibility-preservation proof walks the chain of edges
//!
//! ```text
//! Y_i X_i, X_i Y_{i−1}, Y_{i−1} X_{i−1}, …, X_1 Y_0, Y_0 X_0
//! ```
//!
//! of a hypothetical *doomed engagement* (one ending with separation
//! `|X_i Y_i| > V`) and shows by induction that every edge satisfies
//! `|e_t| > V·cos θ_t` with `cos θ_t ≥ √((2+√3)/4)`, where `θ_t` is the turn
//! angle between consecutive chain edges. Since the chain ends with
//! `θ_{2i} = 0`, the initial edge would have to exceed `V` — contradicting
//! initial visibility. This module provides the checker the chain-search
//! experiments use to certify that no legal engagement violates the bound.

use cohesion_geometry::{predicates::angle_at, Vec2};
use serde::{Deserialize, Serialize};
use std::f64::consts::PI;

/// The Lemma 5 constant `√((2+√3)/4) = cos(π/12) ≈ 0.96593`.
pub const COS_THETA_MIN: f64 = 0.965_925_826_289_068_3;

/// Per-edge record of a chain walk.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ChainEdge {
    /// Edge length `|e_t|`.
    pub length: f64,
    /// `cos θ_t` of the turn into the next edge (`1.0` for the final edge).
    pub cos_turn: f64,
    /// Whether `|e_t| ≥ V·cos θ_t` held.
    pub length_bound_ok: bool,
}

/// Outcome of verifying a doomed-engagement chain.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChainReport {
    /// Per-edge records, in walk order (terminal configuration first).
    pub edges: Vec<ChainEdge>,
    /// The minimum `cos θ_t` encountered.
    pub min_cos_turn: f64,
    /// Whether every edge satisfied the Lemma 5 length bound.
    pub all_length_bounds_ok: bool,
    /// The final separation `|X_i Y_i|` (first chain edge).
    pub final_separation: f64,
}

/// Walks the chain of a (potential) doomed engagement.
///
/// `xs` are the checkpoint positions `X_0 … X_i` and `ys` the checkpoint
/// positions `Y_0 … Y_i` (per §4.2.1; `Y_{−1} = Y_0` is implied). `v` is the
/// visibility radius.
///
/// The walk starts at the terminal pair `(Y_i, X_i)` and alternates
/// `Y_j X_j → X_j Y_{j−1} → Y_{j−1} X_{j−1} → …` down to `Y_0 X_0`.
///
/// # Panics
///
/// Panics when `xs` and `ys` differ in length or are empty.
pub fn verify_chain(xs: &[Vec2], ys: &[Vec2], v: f64) -> ChainReport {
    assert_eq!(xs.len(), ys.len(), "need matching checkpoint sequences");
    assert!(!xs.is_empty(), "need at least one checkpoint");
    let i = xs.len() - 1;
    // Build the chain vertices: Y_i, X_i, Y_{i-1}, X_{i-1}, …, Y_0, X_0.
    let mut vertices: Vec<Vec2> = Vec::with_capacity(2 * (i + 1));
    for j in (0..=i).rev() {
        vertices.push(ys[j]);
        vertices.push(xs[j]);
    }
    let mut edges = Vec::new();
    let mut min_cos = f64::INFINITY;
    let mut all_ok = true;
    for t in 0..vertices.len() - 1 {
        let a = vertices[t];
        let b = vertices[t + 1];
        let length = a.dist(b);
        let cos_turn = if t + 2 < vertices.len() {
            // Turn angle between e_t = (a→b) and e_{t+1} = (b→c): the paper
            // measures θ_t as the angle between the edge directions, i.e.
            // π − ∠(a, b, c).
            let interior = angle_at(b, a, vertices[t + 2]);
            (PI - interior).cos()
        } else {
            1.0
        };
        let ok = length >= v * cos_turn - 1e-9;
        all_ok &= ok;
        min_cos = min_cos.min(cos_turn);
        edges.push(ChainEdge {
            length,
            cos_turn,
            length_bound_ok: ok,
        });
    }
    ChainReport {
        final_separation: ys[i].dist(xs[i]),
        edges,
        min_cos_turn: min_cos,
        all_length_bounds_ok: all_ok,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_is_cos_fifteen_degrees() {
        let expected = ((2.0 + 3f64.sqrt()) / 4.0).sqrt();
        assert!((COS_THETA_MIN - expected).abs() < 1e-15);
        assert!((COS_THETA_MIN - (PI / 12.0).cos()).abs() < 1e-15);
    }

    #[test]
    fn straight_chain_satisfies_bounds() {
        // X and Y leapfrog along the x axis, all edges length V, no turns.
        let v = 1.0;
        let xs = vec![Vec2::new(1.0, 0.0), Vec2::new(2.0, 0.0)];
        let ys = vec![Vec2::new(0.0, 0.0), Vec2::new(1.0, 0.0)];
        let rep = verify_chain(&xs, &ys, v);
        assert_eq!(rep.edges.len(), 3);
        assert!(rep.all_length_bounds_ok);
        assert!((rep.final_separation - 1.0).abs() < 1e-12);
    }

    #[test]
    fn sharp_turn_with_short_edge_fails_bound() {
        // A short edge followed by a shallow turn violates |e| ≥ V cos θ.
        let v = 1.0;
        let xs = vec![Vec2::new(0.3, 0.0), Vec2::new(0.35, 0.0)];
        let ys = vec![Vec2::new(0.0, 0.05), Vec2::new(0.05, 0.0)];
        let rep = verify_chain(&xs, &ys, v);
        assert!(!rep.all_length_bounds_ok);
    }

    #[test]
    fn single_checkpoint_chain() {
        let rep = verify_chain(&[Vec2::new(1.0, 0.0)], &[Vec2::ZERO], 1.0);
        assert_eq!(rep.edges.len(), 1);
        assert_eq!(rep.edges[0].cos_turn, 1.0);
        assert!(rep.all_length_bounds_ok);
    }

    #[test]
    #[should_panic]
    fn mismatched_sequences_panic() {
        let _ = verify_chain(&[Vec2::ZERO], &[], 1.0);
    }
}
