//! The congregation bounds of §5 (Figures 16–17, Lemmas 6–8).
//!
//! The convergence argument fixes the smallest bounding circle `Ξ` of the
//! configuration's convex hull, with radius `r_H` and up to three critical
//! support points `A_H, B_H, C_H`, and shows that a `δ`-neighbourhood of some
//! critical point must eventually empty — shrinking the hull perimeter by a
//! quantified amount and contradicting non-convergence.

use cohesion_geometry::ball::smallest_enclosing_ball_with_support;
use cohesion_geometry::Vec2;

/// Lemma 6: if `V_Z ≥ ζ·r_H`, any `ξ`-rigid motion of `Z` ends at distance at
/// least `(ζ / (80·√(1+1/ξ)))⁴ · r_H` from the critical point `A_H`.
///
/// Returns that lower bound.
///
/// # Panics
///
/// Panics unless `ζ > 0`, `0 < ξ ≤ 1`, `r_H > 0`.
pub fn lemma6_bound(zeta: f64, xi: f64, r_h: f64) -> f64 {
    assert!(zeta > 0.0, "ζ must be positive");
    assert!(xi > 0.0 && xi <= 1.0, "ξ must be in (0, 1]");
    assert!(r_h > 0.0, "hull radius must be positive");
    let base = zeta / (80.0 * (1.0 + 1.0 / xi).sqrt());
    base.powi(4) * r_h
}

/// Lemma 7 (contagious separation): if `Z` has a neighbour staying at
/// distance `≥ µ·r_H` from `A_H`, then `Z` must itself end up at distance at
/// least `(µ / (240·√(1+1/ξ)))⁴ · r_H` from `A_H`.
///
/// Returns that lower bound.
///
/// # Panics
///
/// Panics unless `µ > 0`, `0 < ξ ≤ 1`, `r_H > 0`.
pub fn lemma7_bound(mu: f64, xi: f64, r_h: f64) -> f64 {
    assert!(mu > 0.0, "µ must be positive");
    assert!(xi > 0.0 && xi <= 1.0, "ξ must be in (0, 1]");
    assert!(r_h > 0.0, "hull radius must be positive");
    let base = mu / (240.0 * (1.0 + 1.0 / xi).sqrt());
    base.powi(4) * r_h
}

/// Lemma 8: if at some time every robot is outside the `d`-neighbourhood of
/// the critical point `A_H`, the hull perimeter has dropped by at least
/// `d³ / (4·r_H²)`.
///
/// Returns that guaranteed perimeter decrease.
///
/// # Panics
///
/// Panics unless `0 < d ≤ r_H`.
pub fn lemma8_perimeter_drop(d: f64, r_h: f64) -> f64 {
    assert!(d > 0.0 && d <= r_h, "need 0 < d ≤ r_H");
    d.powi(3) / (4.0 * r_h * r_h)
}

/// The smallest bounding circle of a configuration: returns
/// `(center, r_H, critical_points)` where the critical points are the (≤ 3)
/// support points `A_H, B_H, C_H` of Figure 16.
pub fn hull_radius_and_critical_points(points: &[Vec2]) -> (Vec2, f64, Vec<Vec2>) {
    let (ball, support) = smallest_enclosing_ball_with_support(points);
    (ball.center, ball.radius, support)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lemma6_monotone_in_zeta_and_xi() {
        let r_h = 2.0;
        assert!(lemma6_bound(0.5, 1.0, r_h) > lemma6_bound(0.25, 1.0, r_h));
        assert!(lemma6_bound(0.5, 1.0, r_h) > lemma6_bound(0.5, 0.5, r_h));
        // Rigid motion, ζ = 1: (1/(80·√2))⁴ · r_H.
        let expect = (1.0 / (80.0 * 2f64.sqrt())).powi(4) * r_h;
        assert!((lemma6_bound(1.0, 1.0, r_h) - expect).abs() < 1e-18);
    }

    #[test]
    fn lemma7_is_weaker_than_lemma6() {
        // Same numerator, bigger denominator: contagion costs a factor 3⁴.
        let (b6, b7) = (lemma6_bound(0.3, 1.0, 1.0), lemma7_bound(0.3, 1.0, 1.0));
        assert!(b7 < b6);
        assert!((b6 / b7 - 3f64.powi(4)).abs() < 1e-9);
    }

    #[test]
    fn lemma8_scaling() {
        // d³/(4 r_H²).
        assert!((lemma8_perimeter_drop(0.1, 1.0) - 0.00025).abs() < 1e-12);
        // Doubling d gives 8× the drop.
        let drop1 = lemma8_perimeter_drop(0.05, 1.0);
        let drop2 = lemma8_perimeter_drop(0.1, 1.0);
        assert!((drop2 / drop1 - 8.0).abs() < 1e-9);
    }

    #[test]
    fn lemma8_geometric_soundness() {
        // Empirical check of the geometry behind Lemma 8: take points on a
        // circle of radius r_H, empty a d-neighbourhood of the topmost point,
        // and compare hull perimeters.
        use cohesion_geometry::hull::convex_hull;
        let r_h = 1.0;
        let n = 360;
        let full: Vec<Vec2> = (0..n)
            .map(|i| Vec2::from_angle(i as f64 / n as f64 * std::f64::consts::TAU) * r_h)
            .collect();
        let apex = Vec2::new(0.0, r_h);
        for d in [0.05, 0.1, 0.2] {
            let emptied: Vec<Vec2> = full.iter().copied().filter(|p| p.dist(apex) > d).collect();
            let drop = convex_hull(&full).perimeter() - convex_hull(&emptied).perimeter();
            let bound = lemma8_perimeter_drop(d, r_h);
            assert!(
                drop >= bound,
                "measured drop {drop} below Lemma 8 bound {bound} (d={d})"
            );
        }
    }

    #[test]
    fn critical_points_on_circle() {
        let pts = vec![
            Vec2::new(1.0, 0.0),
            Vec2::new(-1.0, 0.0),
            Vec2::new(0.0, 1.0),
            Vec2::new(0.0, -1.0),
            Vec2::new(0.2, 0.3),
        ];
        let (center, r_h, critical) = hull_radius_and_critical_points(&pts);
        assert!(center.norm() < 1e-6);
        assert!((r_h - 1.0).abs() < 1e-6);
        assert!(!critical.is_empty() && critical.len() <= 3);
        for c in critical {
            assert!((c.norm() - 1.0).abs() < 1e-6);
        }
    }

    #[test]
    #[should_panic]
    fn lemma8_rejects_large_d() {
        let _ = lemma8_perimeter_drop(2.0, 1.0);
    }
}
