//! The reach regions `R^r_{Y0}(X0, X1)` of §3.2.1 (Figure 5): a superset of
//! every point robot `Y` can reach by up to `k` successive `1/k`-scaled safe
//! moves while its distant neighbour `X` travels from `X0` to `X1`
//! (Lemmas 1–2).
//!
//! The region is the union of a *core* — the sweep of safe regions
//! `S^r_{Y0}(X*)` over all `X* ∈ X0X1` — and a *bulge* capturing the extra
//! slack when moves chase a moving neighbour.

use cohesion_geometry::{Segment, Vec2};
use serde::{Deserialize, Serialize};

/// The region `R^r_{Y0}(X0, X1)`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ReachRegion {
    /// Start position `Y0` of the moving robot.
    pub origin: Vec2,
    /// Neighbour's start position `X0`.
    pub x0: Vec2,
    /// Neighbour's end position `X1`.
    pub x1: Vec2,
    /// Region radius `r` (the paper uses `j·V_Y/(8k)` after `j` moves).
    pub radius: f64,
}

impl ReachRegion {
    /// Creates the region.
    ///
    /// # Panics
    ///
    /// Panics if `radius` is not positive and finite or the origin coincides
    /// with an endpoint of the neighbour's trajectory (no direction).
    pub fn new(origin: Vec2, x0: Vec2, x1: Vec2, radius: f64) -> Self {
        assert!(
            radius > 0.0 && radius.is_finite(),
            "invalid reach radius {radius}"
        );
        assert!(
            origin.dist(x0) > 1e-12 && origin.dist(x1) > 1e-12,
            "Y0 must not coincide with the neighbour trajectory endpoints"
        );
        ReachRegion {
            origin,
            x0,
            x1,
            radius,
        }
    }

    /// Centre of the safe region seen when the neighbour is at `x_star`.
    fn core_center(&self, x_star: Vec2) -> Option<Vec2> {
        (x_star - self.origin)
            .normalized(1e-12)
            .map(|u| self.origin + u * self.radius)
    }

    /// Membership in the core: some `X* ∈ X0X1` has `p ∈ S^r_{Y0}(X*)`.
    ///
    /// Evaluated by dense sampling plus local ternary refinement of the
    /// smooth distance function `t ↦ |p − c(t)|` (documented numeric
    /// substitution; the experiments use slack well above the refinement
    /// error).
    pub fn core_contains(&self, p: Vec2, eps: f64) -> bool {
        let seg = Segment::new(self.x0, self.x1);
        let dist_at = |t: f64| -> f64 {
            match self.core_center(seg.point_at(t)) {
                Some(c) => c.dist(p),
                None => f64::INFINITY,
            }
        };
        const SAMPLES: usize = 128;
        let mut best_t = 0.0;
        let mut best = f64::INFINITY;
        for i in 0..=SAMPLES {
            let t = i as f64 / SAMPLES as f64;
            let d = dist_at(t);
            if d < best {
                best = d;
                best_t = t;
            }
        }
        // Local ternary refinement around the best sample.
        let mut lo = (best_t - 1.0 / SAMPLES as f64).max(0.0);
        let mut hi = (best_t + 1.0 / SAMPLES as f64).min(1.0);
        for _ in 0..60 {
            let m1 = lo + (hi - lo) / 3.0;
            let m2 = hi - (hi - lo) / 3.0;
            if dist_at(m1) <= dist_at(m2) {
                hi = m2;
            } else {
                lo = m1;
            }
        }
        best = best.min(dist_at(0.5 * (lo + hi)));
        best <= self.radius + eps
    }

    /// The extremal boundary point `Y0⁺`: on the disk `S^r_{Y0}(X0)`, at
    /// maximum distance from `X1` (Figure 5).
    pub fn y0_plus(&self) -> Vec2 {
        let c = self.core_center(self.x0).expect("origin differs from X0");
        match (c - self.x1).normalized(1e-12) {
            Some(u) => c + u * self.radius,
            None => c + (c - self.origin).normalized(1e-12).expect("nonzero") * self.radius,
        }
    }

    /// The extremal boundary point `Y0⁻`: on the disk `S^r_{Y0}(X1)`, at
    /// maximum distance from `X0`.
    pub fn y0_minus(&self) -> Vec2 {
        let c = self.core_center(self.x1).expect("origin differs from X1");
        match (c - self.x0).normalized(1e-12) {
            Some(u) => c + u * self.radius,
            None => c + (c - self.origin).normalized(1e-12).expect("nonzero") * self.radius,
        }
    }

    /// Membership in the bulge (§3.2.1, clauses (ii)(a) and (ii)(b)).
    pub fn bulge_contains(&self, p: Vec2, eps: f64) -> bool {
        // The corner construction below is meaningful only for *distant*
        // neighbours (`|X· − Y0| > r`, the only case the paper invokes
        // reach regions for). When a trajectory endpoint sits within the
        // region radius, the safe-disk centre lies beyond the neighbour and
        // the "far corner" Y0± flips to the outside of the disk,
        // manufacturing a spurious bulge — violating Observation 1(i)
        // (R = S) in the stationary limit. Such endpoints contribute no
        // chasing slack, so the bulge is empty.
        if self.origin.dist(self.x0) <= self.radius || self.origin.dist(self.x1) <= self.radius {
            return false;
        }
        let yp = self.y0_plus();
        let ym = self.y0_minus();
        let a = p.dist(self.x1) <= self.x1.dist(yp) + eps
            && p.dist(self.origin) <= self.origin.dist(yp) + eps;
        let b = p.dist(self.x0) <= self.x0.dist(ym) + eps
            && p.dist(self.origin) <= self.origin.dist(ym) + eps;
        a && b
    }

    /// Membership in `R^r_{Y0}(X0, X1)` = core ∪ bulge.
    pub fn contains(&self, p: Vec2, eps: f64) -> bool {
        self.core_contains(p, eps) || self.bulge_contains(p, eps)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stationary_neighbor_reduces_to_safe_region() {
        // Observation 1(i): R^r(X0, X0) = S^r(X0).
        let r = ReachRegion::new(Vec2::ZERO, Vec2::new(1.0, 0.0), Vec2::new(1.0, 0.0), 0.125);
        let center = Vec2::new(0.125, 0.0);
        // Points of S^r are in the region …
        assert!(r.contains(center, 1e-9));
        assert!(r.contains(Vec2::new(0.25, 0.0), 1e-9));
        assert!(r.contains(Vec2::new(0.125, 0.125), 1e-9));
        // … and safe-region outsiders on the far side are not.
        assert!(!r.contains(Vec2::new(-0.05, 0.0), 1e-9));
        assert!(!r.contains(Vec2::new(0.0, 0.3), 1e-9));
    }

    #[test]
    fn core_sweeps_the_neighbor_trajectory() {
        let r = ReachRegion::new(Vec2::ZERO, Vec2::new(1.0, 0.0), Vec2::new(0.0, 1.0), 0.125);
        // Safe-region centres for directions +x, +y, and the 45° midpoint
        // are all in the core.
        assert!(r.core_contains(Vec2::new(0.125, 0.0), 1e-9));
        assert!(r.core_contains(Vec2::new(0.0, 0.125), 1e-9));
        let diag = Vec2::from_angle(std::f64::consts::FRAC_PI_4) * 0.125;
        assert!(r.core_contains(diag, 1e-9));
        // A point behind the origin is not.
        assert!(!r.core_contains(Vec2::new(-0.1, -0.1), 1e-9));
    }

    #[test]
    fn bulge_extends_beyond_core() {
        // With a long neighbour trajectory the bulge strictly contains
        // points outside every individual safe region (Figure 5).
        let region = ReachRegion::new(Vec2::ZERO, Vec2::new(1.0, 0.0), Vec2::new(1.0, 0.8), 0.25);
        let yp = region.y0_plus();
        assert!(region.bulge_contains(yp, 1e-9), "Y0+ is a bulge corner");
        assert!(region.contains(yp, 1e-9));
    }

    #[test]
    fn origin_is_always_reachable() {
        let region = ReachRegion::new(Vec2::ZERO, Vec2::new(1.0, 0.0), Vec2::new(0.5, 0.9), 0.2);
        assert!(
            region.contains(Vec2::ZERO, 1e-9),
            "the nil move stays at Y0"
        );
    }

    #[test]
    #[should_panic]
    fn zero_radius_rejected() {
        let _ = ReachRegion::new(Vec2::ZERO, Vec2::new(1.0, 0.0), Vec2::new(1.0, 0.0), 0.0);
    }
}
