//! The paper's convergence algorithm (§3.2, §5, §6.1, §6.3.2).
//!
//! Upon activation, robot `Z`:
//!
//! 1. rescales perceived distances by `1/(1+δ)` (so the tentative bound
//!    `V_Z` never overestimates the true visibility radius despite distance
//!    error — §6.1) and classifies neighbours into *distant* and *close*;
//! 2. runs the sector analysis on the distant directions: if they positively
//!    span the space (`Z` is in the convex hull of its distant neighbours)
//!    the move is nil; otherwise the two extreme distant neighbours define a
//!    sector with half-angle `γ` and bisector `a`;
//! 3. moves along `a` by `min(r·cos γ, 2r·cos γ_eff)` where `r = V_Z/(8k)`
//!    and `γ_eff = γ/(1−λ)` compensates the worst-case angular skew `λ`
//!    (for `λ = 0` this is exactly the paper's midpoint-of-safe-centres
//!    rule: the midpoint of the two extreme safe-region centres lies at
//!    distance `r·cos γ` along the bisector).
//!
//! The computed target provably lies in the `1/k`-scaled safe region of
//! *every* distant neighbour (checked by a debug assertion and property
//! tests), which is the property the visibility-preservation theorems
//! (Theorems 3–4) consume.

use crate::neighbors::{classify_neighbors, Neighborhood};
use cohesion_geometry::cone::{enclosing_cone, sector_2d, Cone, SectorAnalysis};
use cohesion_geometry::point::Point;
use cohesion_geometry::{Vec2, Vec3};
use cohesion_model::{Algorithm, Snapshot};
use serde::{Deserialize, Serialize};
use std::f64::consts::FRAC_PI_2;

/// Angular slack for the “positively spans” decision.
const SECTOR_EPS: f64 = 1e-9;

/// The paper's `k`-Async cohesive-convergence algorithm.
///
/// ```
/// use cohesion_core::KirkpatrickAlgorithm;
/// use cohesion_model::{Algorithm, Snapshot};
/// use cohesion_geometry::Vec2;
///
/// let alg = KirkpatrickAlgorithm::new(1);
/// // One distant neighbour at distance 1: move V_Z/8 toward it.
/// let snap = Snapshot::from_positions(vec![Vec2::new(1.0, 0.0)]);
/// let target = alg.compute(&snap);
/// assert!((target - Vec2::new(0.125, 0.0)).norm() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KirkpatrickAlgorithm {
    /// Asynchrony bound `k ≥ 1` the algorithm is provisioned for (safe
    /// regions are scaled by `α = 1/k`).
    k: u32,
    /// Distance-measurement error bound `δ ≥ 0` tolerated (perceived
    /// distances are divided by `1 + δ`).
    distance_error: f64,
    /// Angular skew bound `λ ∈ [0, 1)` tolerated (steps are shortened so the
    /// target respects safe regions under any symmetric distortion with skew
    /// `≤ λ`).
    skew: f64,
    name: String,
}

impl KirkpatrickAlgorithm {
    /// The error-free algorithm for the `k`-Async model.
    ///
    /// # Panics
    ///
    /// Panics when `k == 0`.
    pub fn new(k: u32) -> Self {
        KirkpatrickAlgorithm::with_error_tolerance(k, 0.0, 0.0)
    }

    /// The error-tolerant variant (§6.1): tolerates relative distance error
    /// `δ` and symmetric angular distortions with skew `λ`.
    ///
    /// # Panics
    ///
    /// Panics when `k == 0`, `δ < 0`, or `λ ∉ [0, 1)`.
    pub fn with_error_tolerance(k: u32, distance_error: f64, skew: f64) -> Self {
        assert!(k >= 1, "the algorithm is parameterized by k ≥ 1");
        assert!(distance_error >= 0.0, "distance error must be non-negative");
        assert!((0.0..1.0).contains(&skew), "skew must be in [0, 1)");
        let name = if distance_error == 0.0 && skew == 0.0 {
            format!("kirkpatrick(k={k})")
        } else {
            format!("kirkpatrick(k={k},δ={distance_error},λ={skew})")
        };
        KirkpatrickAlgorithm {
            k,
            distance_error,
            skew,
            name,
        }
    }

    /// The asynchrony bound `k`.
    pub fn k(&self) -> u32 {
        self.k
    }

    /// The safe-region scale `α = 1/k`.
    pub fn alpha(&self) -> f64 {
        1.0 / f64::from(self.k)
    }

    /// The per-activation safe radius `r = V_Z / (8k)` for a perceived
    /// furthest-neighbour distance `v_z`.
    pub fn safe_radius(&self, v_z: f64) -> f64 {
        v_z / (8.0 * f64::from(self.k))
    }

    /// The classified neighbourhood this algorithm derives from a snapshot
    /// (exposed for the analysis experiments).
    pub fn neighborhood<P: Point>(&self, snapshot: &Snapshot<P>) -> Neighborhood<P> {
        classify_neighbors(snapshot, 1.0 / (1.0 + self.distance_error))
    }

    /// Computes the step from a sector analysis of the distant directions.
    fn target_from_analysis<P: Point>(
        &self,
        hood: &Neighborhood<P>,
        analysis: SectorAnalysis<P>,
    ) -> P {
        let Cone {
            axis,
            half_angle: gamma,
        } = match analysis {
            SectorAnalysis::Empty | SectorAnalysis::Surrounded => return P::zero(),
            SectorAnalysis::Cone(c) => c,
        };
        let r = self.safe_radius(hood.v_z);
        // Worst-case true half-angle under skew λ: perceived relative angles
        // shrink by at most (1−λ), so true angles grow by at most 1/(1−λ).
        let gamma_eff = gamma / (1.0 - self.skew);
        if gamma_eff >= FRAC_PI_2 - SECTOR_EPS {
            return P::zero();
        }
        let step = (r * gamma.cos()).min(2.0 * r * gamma_eff.cos());
        let target = axis * step;
        #[cfg(debug_assertions)]
        {
            use crate::safe_region::SafeRegion;
            // The target must lie in every distant neighbour's (perceived)
            // 1/k-scaled safe region — the invariant Theorems 3–4 rely on.
            for d in &hood.distant {
                if let Some(region) = SafeRegion::new(P::zero(), *d, r) {
                    debug_assert!(
                        region.contains(target, 1e-9 * (1.0 + r)),
                        "target violates a distant safe region"
                    );
                }
            }
        }
        target
    }
}

impl Algorithm<Vec2> for KirkpatrickAlgorithm {
    fn compute(&self, snapshot: &Snapshot<Vec2>) -> Vec2 {
        let hood = self.neighborhood(snapshot);
        if hood.distant.is_empty() {
            return Vec2::ZERO;
        }
        let analysis = sector_2d(&hood.distant, SECTOR_EPS);
        self.target_from_analysis(&hood, analysis)
    }

    fn name(&self) -> &str {
        &self.name
    }
}

impl Algorithm<Vec3> for KirkpatrickAlgorithm {
    fn compute(&self, snapshot: &Snapshot<Vec3>) -> Vec3 {
        let hood = self.neighborhood(snapshot);
        if hood.distant.is_empty() {
            return Vec3::ZERO;
        }
        let analysis = enclosing_cone(&hood.distant, SECTOR_EPS);
        self.target_from_analysis(&hood, analysis)
    }

    fn name(&self) -> &str {
        &self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    fn snap(pts: &[Vec2]) -> Snapshot<Vec2> {
        Snapshot::from_positions(pts.to_vec())
    }

    #[test]
    fn single_neighbor_moves_an_eighth() {
        let alg = KirkpatrickAlgorithm::new(1);
        let t = alg.compute(&snap(&[Vec2::new(0.8, 0.0)]));
        assert!(
            (t - Vec2::new(0.1, 0.0)).norm() < 1e-12,
            "V_Z/8 toward the neighbour"
        );
    }

    #[test]
    fn k_scaling_divides_step() {
        let s = snap(&[Vec2::new(0.8, 0.0)]);
        let t1: Vec2 = KirkpatrickAlgorithm::new(1).compute(&s);
        let t4: Vec2 = KirkpatrickAlgorithm::new(4).compute(&s);
        assert!((t1 * 0.25 - t4).norm() < 1e-12);
    }

    #[test]
    fn two_extreme_neighbors_midpoint_rule() {
        // Neighbours at ±60°, distance 1: sector half-angle 60°, bisector +x.
        let a = Vec2::from_angle(PI / 3.0);
        let b = Vec2::from_angle(-PI / 3.0);
        let alg = KirkpatrickAlgorithm::new(1);
        let t = alg.compute(&snap(&[a, b]));
        // Midpoint of safe centres: (r·a + r·b)/2 with r = 1/8.
        let expect = (a + b) * (1.0 / 16.0);
        assert!((t - expect).norm() < 1e-12);
        // Equivalent formulation: step = r·cos γ along the bisector.
        assert!((t.norm() - (1.0 / 8.0) * (PI / 3.0).cos()).abs() < 1e-12);
    }

    #[test]
    fn inner_distant_neighbors_do_not_change_target() {
        // The motion function depends only on the extreme pair (§1.3).
        let a = Vec2::from_angle(0.5);
        let b = Vec2::from_angle(-0.5);
        let inner = Vec2::from_angle(0.1) * 0.9;
        let alg = KirkpatrickAlgorithm::new(1);
        let without: Vec2 = alg.compute(&snap(&[a, b]));
        let with: Vec2 = alg.compute(&snap(&[a, b, inner]));
        assert!((without - with).norm() < 1e-12);
    }

    #[test]
    fn close_neighbors_ignored() {
        let far = Vec2::new(1.0, 0.0);
        let close = Vec2::new(0.0, 0.3); // 0.3 ≤ V_Z/2 = 0.5
        let alg = KirkpatrickAlgorithm::new(1);
        let t_with: Vec2 = alg.compute(&snap(&[far, close]));
        let t_without: Vec2 = alg.compute(&snap(&[far]));
        assert!((t_with - t_without).norm() < 1e-12);
    }

    #[test]
    fn surrounded_robot_stays() {
        let dirs: Vec<Vec2> = (0..3)
            .map(|i| Vec2::from_angle(i as f64 * 2.0 * PI / 3.0))
            .collect();
        let alg = KirkpatrickAlgorithm::new(1);
        assert_eq!(alg.compute(&snap(&dirs)), Vec2::ZERO);
    }

    #[test]
    fn empty_snapshot_stays() {
        let alg = KirkpatrickAlgorithm::new(1);
        assert_eq!(alg.compute(&snap(&[])), Vec2::ZERO);
    }

    #[test]
    fn opposite_neighbors_freeze() {
        let alg = KirkpatrickAlgorithm::new(1);
        let t = alg.compute(&snap(&[Vec2::new(1.0, 0.0), Vec2::new(-1.0, 0.0)]));
        assert_eq!(t, Vec2::ZERO);
    }

    #[test]
    fn step_never_exceeds_v_over_8k() {
        let alg = KirkpatrickAlgorithm::new(2);
        let t: Vec2 = alg.compute(&snap(&[Vec2::new(1.0, 0.0), Vec2::from_angle(1.0)]));
        assert!(t.norm() <= 1.0 / 16.0 + 1e-12);
    }

    #[test]
    fn distance_error_rescales_vz() {
        let alg = KirkpatrickAlgorithm::with_error_tolerance(1, 0.25, 0.0);
        let t = alg.compute(&snap(&[Vec2::new(1.0, 0.0)]));
        // V_Z = 1/1.25 = 0.8, step = 0.1.
        assert!((t - Vec2::new(0.1, 0.0)).norm() < 1e-12);
    }

    #[test]
    fn skew_tolerance_shortens_wide_sectors() {
        // Half-angle 80°; with λ = 0.2 the effective angle exceeds 90° ⇒ nil.
        let a = Vec2::from_angle(80f64.to_radians());
        let b = Vec2::from_angle(-80f64.to_radians());
        let tolerant = KirkpatrickAlgorithm::with_error_tolerance(1, 0.0, 0.2);
        assert_eq!(tolerant.compute(&snap(&[a, b])), Vec2::ZERO);
        // The error-free algorithm still moves (slightly).
        let exact = KirkpatrickAlgorithm::new(1);
        let t: Vec2 = exact.compute(&snap(&[a, b]));
        assert!(t.norm() > 0.0);
    }

    #[test]
    fn skew_tolerance_keeps_narrow_sector_step() {
        // Narrow sector: step is governed by r·cos γ even with λ > 0 because
        // 2r·cos(γ/(1−λ)) > r·cos γ there.
        let a = Vec2::from_angle(0.2);
        let b = Vec2::from_angle(-0.2);
        let t: Vec2 =
            KirkpatrickAlgorithm::with_error_tolerance(1, 0.0, 0.3).compute(&snap(&[a, b]));
        let expect = (1.0 / 8.0) * 0.2f64.cos();
        assert!((t.norm() - expect).abs() < 1e-12);
    }

    #[test]
    fn three_dimensional_variant() {
        use cohesion_geometry::Vec3;
        let alg = KirkpatrickAlgorithm::new(1);
        // Single neighbour along +z.
        let s = Snapshot::from_positions(vec![Vec3::new(0.0, 0.0, 1.0)]);
        let t: Vec3 = alg.compute(&s);
        assert!((t - Vec3::new(0.0, 0.0, 0.125)).norm() < 1e-9);
        // Surrounded in 3D: octahedron directions.
        let s = Snapshot::from_positions(vec![
            Vec3::new(1.0, 0.0, 0.0),
            Vec3::new(-1.0, 0.0, 0.0),
            Vec3::new(0.0, 1.0, 0.0),
            Vec3::new(0.0, -1.0, 0.0),
            Vec3::new(0.0, 0.0, 1.0),
            Vec3::new(0.0, 0.0, -1.0),
        ]);
        assert_eq!(alg.compute(&s), Vec3::ZERO);
    }

    #[test]
    fn rotation_equivariance() {
        // A rotated snapshot must yield the rotated target (disorientation).
        let alg = KirkpatrickAlgorithm::new(2);
        let pts = [
            Vec2::from_angle(0.4),
            Vec2::from_angle(-0.9) * 0.8,
            Vec2::new(0.2, 0.1),
        ];
        let t: Vec2 = alg.compute(&snap(&pts));
        for rot in [0.7, 2.1, -1.3] {
            let rotated: Vec<Vec2> = pts.iter().map(|p| p.rotate(rot)).collect();
            let t_rot: Vec2 = alg.compute(&snap(&rotated));
            assert!((t_rot - t.rotate(rot)).norm() < 1e-9);
        }
    }
}
