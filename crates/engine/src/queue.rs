//! The pending-event queue: a tick-batched calendar queue with a
//! `BinaryHeap` reference implementation behind a knob.
//!
//! # Ordering contract
//!
//! The engine pops pending phase events in ascending `(time, seq)` order —
//! earliest timestamp first, FIFO (sequence number) within a timestamp.
//! Every RNG draw in the simulation happens in pop order, so this contract
//! *is* the determinism contract: any queue that violates it shifts the
//! random streams and every downstream report hash.
//!
//! # Why a calendar queue
//!
//! A binary heap pays `O(log n)` per operation and scatters its comparisons
//! across the arena. The engine's workloads have much more structure:
//!
//! * synchronous schedulers (FSync/SSync) emit **bursts of identical
//!   timestamps** — a whole round's MoveStarts land at one instant;
//! * asynchronous schedulers keep a **small, sliding window** of pending
//!   events whose times advance with the simulation clock.
//!
//! [`CalendarQueue`] exploits both: events sharing a timestamp are batched
//! into one *tick* holding a FIFO of events. Pushes happen in globally
//! ascending `seq` order (the engine increments `seq` before every push), so
//! within a tick the FIFO *is* the `(time, seq)` order and a same-timestamp
//! burst costs `O(1)` per event — no comparisons at all. Ticks hash into a
//! power-of-two bucket array by their *day* (`⌊time / width⌋`, the classic
//! calendar-queue bucketing) and a cursor walks the days in order, so pops
//! are `O(1)` amortized while the queue's time window stays within a lap of
//! the calendar; a direct scan catches the rare far-future outlier, and the
//! calendar resizes (bucket count and width from the median inter-tick gap)
//! as the tick population drifts.
//!
//! The heap is kept verbatim behind [`QueuePath::HeapReference`], mirroring
//! the `LookPath::BruteReference` pattern: a property-tested oracle
//! (`calendar_matches_heap_pop_order`) pins the pop order of the two
//! structures against each other on randomized streams, and the session
//! equivalence suite pins frozen report hashes under both paths.

use cohesion_model::RobotId;
use std::collections::{BinaryHeap, VecDeque};

use crate::engine::EngineEventKind;

/// Which pending-event queue the engine runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum QueuePath {
    /// The tick-batched calendar queue — `O(1)` amortized per event, the
    /// production path (default).
    #[default]
    Calendar,
    /// The historical `BinaryHeap`, kept verbatim as the property-tested
    /// reference implementation (mirroring `LookPath::BruteReference`).
    HeapReference,
}

/// A pending phase event (min-order by time, stable by sequence number).
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct Pending {
    pub(crate) time: f64,
    pub(crate) seq: u64,
    pub(crate) robot: RobotId,
    pub(crate) kind: EngineEventKind,
}

impl Eq for Pending {}

impl Ord for Pending {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reverse for a min-heap; tie-break on sequence for determinism.
        other
            .time
            .partial_cmp(&self.time)
            .expect("finite event times")
            .then(other.seq.cmp(&self.seq))
    }
}

impl PartialOrd for Pending {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// All pending events sharing one exact timestamp, in arrival (= ascending
/// `seq`) order.
#[derive(Debug)]
struct Tick {
    time: f64,
    /// `⌊time / width⌋` under the current calendar width, cached for the
    /// cursor's day test.
    day: i64,
    events: TickEvents,
}

/// A tick's FIFO, with the asynchronous regime's overwhelmingly common case
/// — exactly one event per timestamp — stored inline so it never touches a
/// `VecDeque` or the recycling pool.
#[derive(Debug)]
enum TickEvents {
    One(Pending),
    Many(VecDeque<Pending>),
}

/// The tick-batched calendar queue (see the module docs for the design).
#[derive(Debug)]
pub(crate) struct CalendarQueue {
    /// Power-of-two array of day buckets; a tick lives in bucket
    /// `day & mask`.
    buckets: Vec<Vec<Tick>>,
    /// `buckets.len() - 1`.
    mask: u64,
    /// Bucket width in simulation time.
    width: f64,
    /// `1 / width` (a multiply in `day()` instead of a divide).
    inv_width: f64,
    /// Lower bound on the day of the earliest pending tick.
    cursor_day: i64,
    /// Pending events.
    len: usize,
    /// Live ticks (distinct pending timestamps).
    ticks: usize,
    /// Memoized `(bucket, slot, time)` of the earliest tick, when known.
    /// The engine peeks before every pop (to order queue events against the
    /// staged activation), so without this the min search would run twice
    /// per event; with it, a peek/pop pair — and every further pop off the
    /// same tick — reuses one search. The time rides along so pushes can
    /// compare against the front without chasing the indices.
    front: Option<(usize, usize, f64)>,
    /// Recycled tick FIFOs, so steady-state operation allocates nothing.
    pool: Vec<VecDeque<Pending>>,
}

/// Initial (and minimum) bucket count.
const MIN_BUCKETS: usize = 16;

impl CalendarQueue {
    pub(crate) fn new() -> Self {
        CalendarQueue {
            buckets: (0..MIN_BUCKETS).map(|_| Vec::new()).collect(),
            mask: (MIN_BUCKETS - 1) as u64,
            width: 1.0,
            inv_width: 1.0,
            cursor_day: 0,
            len: 0,
            ticks: 0,
            front: None,
            pool: Vec::new(),
        }
    }

    pub(crate) fn len(&self) -> usize {
        self.len
    }

    #[inline]
    fn day(&self, time: f64) -> i64 {
        (time * self.inv_width).floor() as i64
    }

    #[inline]
    fn bucket_of(&self, day: i64) -> usize {
        (day as u64 & self.mask) as usize
    }

    /// Enqueues an event. Events pushed with equal timestamps must arrive in
    /// ascending `seq` order (the engine's global counter guarantees it);
    /// arbitrary time order across timestamps is fine.
    pub(crate) fn push(&mut self, p: Pending) {
        assert!(!p.time.is_nan(), "finite event times");
        let day = self.day(p.time);
        if self.len == 0 || day < self.cursor_day {
            self.cursor_day = day;
        }
        let time = p.time;
        let b = self.bucket_of(day);
        let slot = self.buckets[b].iter().position(|t| t.time == time);
        let slot = match slot {
            Some(i) => {
                if matches!(self.buckets[b][i].events, TickEvents::One(_)) {
                    // Second event on this timestamp: promote to a FIFO.
                    let mut dq = self.pool.pop().unwrap_or_default();
                    if let TickEvents::One(first) = &self.buckets[b][i].events {
                        dq.push_back(*first);
                    }
                    dq.push_back(p);
                    self.buckets[b][i].events = TickEvents::Many(dq);
                } else if let TickEvents::Many(dq) = &mut self.buckets[b][i].events {
                    dq.push_back(p);
                }
                self.len += 1;
                Some(i)
            }
            None => {
                self.buckets[b].push(Tick {
                    time,
                    day,
                    events: TickEvents::One(p),
                });
                self.ticks += 1;
                self.len += 1;
                if self.ticks > 2 * self.buckets.len() {
                    let target = (2 * self.ticks).next_power_of_two().max(MIN_BUCKETS);
                    self.rebuild(target); // clears the memoized front
                    None
                } else {
                    Some(self.buckets[b].len() - 1)
                }
            }
        };
        // Keep the memoized front current: an earlier push displaces it (a
        // tick is unique per exact timestamp, so an equal time is the front
        // tick itself and its indices are untouched by the append).
        if let (Some(i), Some(&(_, _, front_time))) = (slot, self.front.as_ref()) {
            if time < front_time {
                self.front = Some((b, i, time));
            }
        }
    }

    /// Dequeues the earliest event (FIFO within its timestamp).
    pub(crate) fn pop(&mut self) -> Option<Pending> {
        if self.len == 0 {
            return None;
        }
        let (b, i) = match self.front {
            Some((b, i, _)) => (b, i),
            None => self.find_min_tick(),
        };
        let tick = &mut self.buckets[b][i];
        let (p, emptied) = match &mut tick.events {
            TickEvents::One(p) => (*p, true),
            TickEvents::Many(dq) => {
                let p = dq.pop_front().expect("live tick has events");
                (p, dq.is_empty())
            }
        };
        self.len -= 1;
        if emptied {
            self.front = None;
            let tick = self.buckets[b].swap_remove(i);
            if let TickEvents::Many(dq) = tick.events {
                self.pool.push(dq);
            }
            self.ticks -= 1;
            if self.ticks * 8 < self.buckets.len() && self.buckets.len() > MIN_BUCKETS {
                let target = (2 * self.ticks).next_power_of_two().max(MIN_BUCKETS);
                if target < self.buckets.len() {
                    self.rebuild(target);
                }
            }
        }
        Some(p)
    }

    /// Timestamp of the earliest pending event (advances the day cursor —
    /// never the event order — so peek-then-pop equals pop).
    pub(crate) fn peek_time(&mut self) -> Option<f64> {
        if self.len == 0 {
            return None;
        }
        if let Some((_, _, time)) = self.front {
            return Some(time);
        }
        let (b, i) = self.find_min_tick();
        Some(self.buckets[b][i].time)
    }

    /// Locates the earliest tick: walk the days from the cursor (amortized
    /// `O(1)` while the pending window spans less than a calendar lap), or a
    /// direct scan when a whole lap comes up empty (the far-future outlier
    /// case — e.g. one stretched Move pending long after everything else
    /// drained).
    fn find_min_tick(&mut self) -> (usize, usize) {
        debug_assert!(self.len > 0);
        let laps = self.buckets.len() as i64;
        for day in self.cursor_day..self.cursor_day + laps {
            let b = self.bucket_of(day);
            let mut best: Option<(usize, f64)> = None;
            for (i, tick) in self.buckets[b].iter().enumerate() {
                if tick.day == day && best.map_or(true, |(_, t)| tick.time < t) {
                    best = Some((i, tick.time));
                }
            }
            if let Some((i, time)) = best {
                self.cursor_day = day;
                self.front = Some((b, i, time));
                return (b, i);
            }
        }
        let mut best: Option<(usize, usize, f64)> = None;
        for (b, bucket) in self.buckets.iter().enumerate() {
            for (i, tick) in bucket.iter().enumerate() {
                if best.map_or(true, |(_, _, t)| tick.time < t) {
                    best = Some((b, i, tick.time));
                }
            }
        }
        let (b, i, time) = best.expect("non-empty queue has a tick");
        self.cursor_day = self.buckets[b][i].day;
        self.front = Some((b, i, time));
        (b, i)
    }

    /// Re-celled calendar: `target` buckets, width from the median positive
    /// inter-tick gap (so a day covers a couple of ticks and the cursor
    /// rarely walks empty days).
    fn rebuild(&mut self, target: usize) {
        self.front = None;
        let mut ticks: Vec<Tick> = Vec::with_capacity(self.ticks);
        for bucket in &mut self.buckets {
            ticks.append(bucket);
        }
        let mut times: Vec<f64> = ticks.iter().map(|t| t.time).collect();
        times.sort_unstable_by(f64::total_cmp);
        let mut gaps: Vec<f64> = times
            .windows(2)
            .map(|w| w[1] - w[0])
            .filter(|g| *g > 0.0)
            .collect();
        if !gaps.is_empty() {
            let mid = gaps.len() / 2;
            let (_, median, _) = gaps.select_nth_unstable_by(mid, f64::total_cmp);
            self.width = (2.0 * *median).clamp(1e-12, 1e12);
            self.inv_width = 1.0 / self.width;
        }
        if target != self.buckets.len() {
            self.buckets.resize_with(target, Vec::new);
            self.mask = (target - 1) as u64;
        }
        self.cursor_day = i64::MAX;
        for mut tick in ticks {
            tick.day = self.day(tick.time);
            self.cursor_day = self.cursor_day.min(tick.day);
            let b = self.bucket_of(tick.day);
            self.buckets[b].push(tick);
        }
        if self.ticks == 0 {
            self.cursor_day = 0;
        }
    }
}

/// The engine's pending-event queue behind the [`QueuePath`] knob.
#[derive(Debug)]
pub(crate) enum EventQueue {
    Calendar(CalendarQueue),
    Heap(BinaryHeap<Pending>),
}

impl EventQueue {
    pub(crate) fn new(path: QueuePath) -> Self {
        match path {
            QueuePath::Calendar => EventQueue::Calendar(CalendarQueue::new()),
            QueuePath::HeapReference => EventQueue::Heap(BinaryHeap::new()),
        }
    }

    pub(crate) fn path(&self) -> QueuePath {
        match self {
            EventQueue::Calendar(_) => QueuePath::Calendar,
            EventQueue::Heap(_) => QueuePath::HeapReference,
        }
    }

    pub(crate) fn len(&self) -> usize {
        match self {
            EventQueue::Calendar(q) => q.len(),
            EventQueue::Heap(h) => h.len(),
        }
    }

    pub(crate) fn push(&mut self, p: Pending) {
        match self {
            EventQueue::Calendar(q) => q.push(p),
            EventQueue::Heap(h) => h.push(p),
        }
    }

    pub(crate) fn pop(&mut self) -> Option<Pending> {
        match self {
            EventQueue::Calendar(q) => q.pop(),
            EventQueue::Heap(h) => h.pop(),
        }
    }

    pub(crate) fn peek_time(&mut self) -> Option<f64> {
        match self {
            EventQueue::Calendar(q) => q.peek_time(),
            EventQueue::Heap(h) => h.peek().map(|p| p.time),
        }
    }

    /// Snapshots the queue contents in pop order without disturbing the
    /// `(time, seq)` contract: drains via `pop` and refills via `push`, the
    /// same non-destructive drain [`EventQueue::set_path`] relies on. Used by
    /// checkpointing, which stores events exactly in this order so a restore
    /// can refill a fresh queue with an identical pop sequence.
    pub(crate) fn snapshot(&mut self) -> Vec<Pending> {
        let mut drained = Vec::with_capacity(self.len());
        while let Some(p) = self.pop() {
            drained.push(p);
        }
        for &p in &drained {
            self.push(p);
        }
        drained
    }

    /// Switches structure mid-run: drains in pop order and refills, so the
    /// `(time, seq)` contract survives the swap (the drain hands the new
    /// structure its timestamps in ascending-`seq`-within-tick order, which
    /// is exactly what [`CalendarQueue::push`] requires).
    pub(crate) fn set_path(&mut self, path: QueuePath) {
        if self.path() == path {
            return;
        }
        let mut drained = Vec::with_capacity(self.len());
        while let Some(p) = self.pop() {
            drained.push(p);
        }
        *self = EventQueue::new(path);
        for p in drained {
            self.push(p);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn pending(time: f64, seq: u64) -> Pending {
        Pending {
            time,
            seq,
            robot: RobotId::from(seq as usize % 7),
            kind: EngineEventKind::MoveStart,
        }
    }

    #[test]
    fn same_timestamp_burst_pops_fifo() {
        let mut q = CalendarQueue::new();
        for seq in 0..100 {
            q.push(pending(3.25, seq));
        }
        assert_eq!(q.len(), 100);
        for seq in 0..100 {
            assert_eq!(q.pop().expect("pending").seq, seq);
        }
        assert!(q.pop().is_none());
    }

    #[test]
    fn far_future_outlier_is_found_after_a_lap() {
        // One stretched-Move event a thousand laps ahead: the cursor's lap
        // scan misses it and the direct-scan fallback must take over.
        let mut q = CalendarQueue::new();
        q.push(pending(0.0, 0));
        q.push(pending(1.0e9, 1));
        assert_eq!(q.pop().expect("pending").seq, 0);
        assert_eq!(q.peek_time(), Some(1.0e9));
        assert_eq!(q.pop().expect("pending").seq, 1);
        assert!(q.pop().is_none());
    }

    #[test]
    fn grow_and_shrink_preserve_order() {
        // Push far past the grow threshold, drain halfway (shrink), refill.
        let mut q = CalendarQueue::new();
        let mut seq = 0;
        for i in 0..500 {
            q.push(pending(i as f64 * 0.013, seq));
            seq += 1;
        }
        assert!(q.buckets.len() > MIN_BUCKETS, "calendar grew");
        let mut last = f64::NEG_INFINITY;
        for _ in 0..450 {
            let p = q.pop().expect("pending");
            assert!(p.time >= last);
            last = p.time;
        }
        for i in 0..40 {
            q.push(pending(500.0 + i as f64, seq));
            seq += 1;
        }
        let mut prev: Option<Pending> = None;
        while let Some(p) = q.pop() {
            if let Some(prev) = prev {
                assert!((p.time, p.seq) > (prev.time, prev.seq));
            }
            prev = Some(p);
        }
        assert_eq!(q.len(), 0);
    }

    #[test]
    fn pushes_earlier_than_the_cursor_are_honoured() {
        let mut q = CalendarQueue::new();
        q.push(pending(50.0, 0));
        assert_eq!(q.peek_time(), Some(50.0));
        // The cursor has advanced to day(50); an earlier push must rewind it.
        q.push(pending(2.0, 1));
        assert_eq!(q.peek_time(), Some(2.0));
        assert_eq!(q.pop().expect("pending").seq, 1);
        assert_eq!(q.pop().expect("pending").seq, 0);
    }

    #[test]
    fn set_path_drains_and_preserves_order() {
        let mut q = EventQueue::new(QueuePath::Calendar);
        for seq in 0..50 {
            q.push(pending((seq % 5) as f64, seq));
        }
        q.set_path(QueuePath::HeapReference);
        assert_eq!(q.path(), QueuePath::HeapReference);
        assert_eq!(q.len(), 50);
        let mut prev: Option<Pending> = None;
        while let Some(p) = q.pop() {
            if let Some(prev) = prev {
                assert!((p.time, p.seq) > (prev.time, prev.seq));
            }
            prev = Some(p);
        }
    }

    /// One queue operation of the randomized differential stream.
    #[derive(Debug, Clone)]
    enum Op {
        /// Push at `slot * quantum` — coarse slots force dense
        /// same-timestamp bursts.
        Push {
            slot: u8,
        },
        Pop,
        Peek,
    }

    fn op_strategy() -> impl Strategy<Value = Op> {
        (0u8..6, 0u8..12).prop_map(|(sel, slot)| match sel {
            0..=2 => Op::Push { slot },
            3..=4 => Op::Pop,
            _ => Op::Peek,
        })
    }

    proptest! {
        /// The calendar queue and the `BinaryHeap` agree on every pop and
        /// every peek across randomized interleaved streams — including
        /// same-timestamp bursts (coarse slots) and peeks between pushes
        /// (the engine's staged/`peek_time` pattern).
        #[test]
        fn calendar_matches_heap_pop_order(
            quantum in (0usize..3).prop_map(|i| [0.25, 1.0e-7, 3.75e4][i]),
            ops in proptest::collection::vec(op_strategy(), 1..200),
        ) {
            let mut calendar = EventQueue::new(QueuePath::Calendar);
            let mut heap = EventQueue::new(QueuePath::HeapReference);
            let mut seq = 0u64;
            for op in ops {
                match op {
                    Op::Push { slot } => {
                        seq += 1;
                        let p = pending(f64::from(slot) * quantum, seq);
                        calendar.push(p);
                        heap.push(p);
                    }
                    Op::Pop => {
                        prop_assert_eq!(calendar.pop(), heap.pop());
                    }
                    Op::Peek => {
                        prop_assert_eq!(calendar.peek_time(), heap.peek_time());
                    }
                }
                prop_assert_eq!(calendar.len(), heap.len());
            }
            // Drain both to the end: full order agreement.
            loop {
                let (c, h) = (calendar.pop(), heap.pop());
                prop_assert_eq!(c, h);
                if c.is_none() {
                    break;
                }
            }
        }
    }
}
