//! The event loop: dispatching activations, taking snapshots, resolving
//! motion.
//!
//! # The grid-backed Look phase
//!
//! The Look phase is the engine's hot path: one observation per activation,
//! thousands of activations per run, thousands of runs per sweep. The
//! historical pipeline rebuilt an `all_positions` vector (an `O(n)`
//! allocation), scanned all `n` robots linearly, and ran an `O(n)` occlusion
//! test per visible candidate — `O(n)`–`O(n²)` per Look. Under limited
//! visibility each robot actually sees only `O(deg)` neighbours, so the
//! engine keeps one incremental [`DynamicGrid`] over **all** robots (cells
//! sized to half the largest perception radius), indexed at their *base*
//! positions:
//!
//! * a stationary robot (`Idle`/`Computing`) is indexed where it stands; a
//!   motile robot stays indexed at its Move *origin* — which is where it
//!   already was when the Move started, so `MoveStart` touches nothing and
//!   `MoveEnd` relocates one entry origin → destination;
//! * a motile robot's interpolated position never strays farther from its
//!   origin than the *displacement high-water mark* (the largest `|to −
//!   from|` since the motile set was last empty), so one query padded by
//!   that mark is a guaranteed superset of the robots in range, trimmed by
//!   the exact range predicate — `O(deg)` per Look, no side-list scan;
//! * interpolations of motile robots are memoized per *tick* (exact
//!   timestamp × motile epoch), so a same-timestamp Look burst — a whole
//!   FSync round — interpolates each motile robot at most once;
//! * the occlusion test walks only the (padded) grid cells around the sight
//!   segment instead of all `n` robots;
//! * all working sets live in pooled scratch buffers ([`LookScratch`]),
//!   including the [`Snapshot`] handed to the algorithm — the steady-state
//!   Look performs no heap allocation.
//!
//! Candidates are merged and sorted into ascending robot order — exactly the
//! order of the historical linear scan — so every RNG draw (one
//! `sample_distance_factor` per observed robot) happens in the same sequence
//! and outputs are bit-for-bit identical to the old loop. That old loop is
//! kept verbatim as [`LookPath::BruteReference`], the property-tested
//! reference and bench baseline. Pending phase events live in a tick-batched
//! calendar queue (see [`crate::queue`]) with the historical `BinaryHeap`
//! behind the same kind of knob.

use crate::checkpoint::{EngineState, PendingRepr, RobotStateRepr};
use crate::queue::{EventQueue, Pending, QueuePath};
use crate::state::{RobotState, RobotStates};
use cohesion_geometry::DynamicGrid;
use cohesion_model::frame::{Ambient, Frame, FrameMode};
use cohesion_model::{
    Algorithm, Configuration, Distortion, MotionModel, PerceptionModel, RobotId, Snapshot,
};
use cohesion_scheduler::{ActivationInterval, ScheduleContext, ScheduleTrace, Scheduler};
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// What happened at an engine step.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum EngineEventKind {
    /// A robot performed its instantaneous Look (and, in our execution
    /// model, determined its destination from the snapshot).
    Look,
    /// A robot's Move phase began; rigidity and motion error were resolved.
    MoveStart,
    /// A robot's Move phase ended; the robot is idle again.
    MoveEnd,
}

/// A timed engine event, reported back to the driver after processing.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EngineEvent {
    /// Simulation time of the event.
    pub time: f64,
    /// Which robot.
    pub robot: RobotId,
    /// What happened.
    pub kind: EngineEventKind,
}

/// Which observation pipeline the Look phase runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LookPath {
    /// Grid-backed `O(deg + motile)` observation with pooled scratch
    /// buffers — the production path (default).
    #[default]
    Grid,
    /// The historical `O(n)`–`O(n²)` linear scan, kept verbatim as the
    /// property-tested reference implementation and the bench baseline
    /// (mirroring how `VisibilityGraph` keeps its brute-force builder).
    BruteReference,
}

/// Reusable working memory for the Look phase, owned by the engine so the
/// steady-state observation pipeline allocates nothing.
#[derive(Debug)]
struct LookScratch<P> {
    /// Visible-candidate indices: grid hits merged with motile hits, sorted
    /// ascending before observation (the historical scan order).
    candidates: Vec<usize>,
    /// Occlusion-candidate indices near the current sight segment.
    occluders: Vec<usize>,
    /// Raw padded-range hits awaiting their exact range check.
    range_hits: Vec<usize>,
    /// Pooled observation buffer handed to the algorithm's Compute.
    snapshot: Snapshot<P>,
    /// All-robot position buffer for the brute-force reference path (the
    /// historical per-Look `collect()`, pooled so the reference stays usable
    /// at `n = 1024` in the equivalence matrix).
    brute_positions: Vec<P>,
}

impl<P> Default for LookScratch<P> {
    fn default() -> Self {
        LookScratch {
            candidates: Vec::new(),
            occluders: Vec::new(),
            range_hits: Vec::new(),
            snapshot: Snapshot::default(),
            brute_positions: Vec::new(),
        }
    }
}

/// The same-tick motile working set: interpolated positions of motile
/// robots, each computed at most once per `(timestamp, motile-set)` pair.
///
/// Same-timestamp Look bursts are the synchronous schedulers' signature (a
/// whole FSync round Looks at one instant) and occur under every scheduler
/// whenever activations coincide; without the cache each of those Looks
/// re-interpolated every motile robot it examined. Entries memoize lazily —
/// only robots a query actually touches are interpolated — so the cache
/// costs `O(hits)`, not `O(motile)`, per tick. Validity is a per-robot
/// stamp against the current *tick id*; the tick id advances whenever the
/// timestamp bits or the motile epoch (bumped at every `MoveStart` /
/// `MoveEnd`) change, so a cached read is bitwise the interpolation it
/// replaced.
#[derive(Debug)]
struct MotileCache<P> {
    /// `f64::to_bits` of the timestamp the current tick was opened at.
    time_bits: u64,
    /// The engine's `motile_version` the current tick was opened under.
    version: u64,
    /// Monotone tick id; a robot's entry is valid iff its stamp matches.
    tick: u64,
    /// Per-robot stamp of the tick its cached position was computed in.
    stamps: Vec<u64>,
    /// Per-robot memoized interpolated position (valid iff stamped).
    positions: Vec<P>,
}

/// The discrete-event simulator for one robot system.
///
/// Drive it with [`Engine::step`] until it returns `None` (scripted schedule
/// exhausted) or until an external budget is hit; the
/// [`SimulationBuilder`](crate::runner::SimulationBuilder) wraps this loop
/// with metrics and convergence/cohesion checks.
pub struct Engine<P: Ambient, A, S> {
    states: RobotStates<P>,
    visibility: f64,
    visibility_radii: Option<Vec<f64>>,
    algorithm: A,
    scheduler: S,
    perception: PerceptionModel,
    motion: MotionModel,
    frame_mode: FrameMode,
    multiplicity_detection: bool,
    occlusion_tolerance: Option<f64>,
    rng: SmallRng,
    time: f64,
    seq: u64,
    queue: EventQueue,
    staged: Option<ActivationInterval>,
    trace: ScheduleTrace,
    completed_cycles: Vec<u64>,
    /// Every robot, indexed at its *base* position — its true position while
    /// stationary (`Idle`/`Computing`), its Move origin (`from`) while
    /// motile. An interpolated position never strays farther than
    /// `motile_pad` from the origin, so one range query at
    /// `radius + motile_pad` is a guaranteed superset of all robots in
    /// range — `O(deg)` per Look with no per-Look side-list scan. Lifecycle:
    /// a robot's entry moves origin → destination at `MoveEnd` (nothing to
    /// do at `MoveStart`; it is already indexed at the origin).
    grid: DynamicGrid<P>,
    /// Dense indices of the robots currently in their Move phase, in
    /// arbitrary order (swap-remove set: under asynchronous scheduling most
    /// of the swarm is mid-Move at any instant, and keeping this sorted cost
    /// an `O(n)` shift on every MoveStart/MoveEnd). `collect_motile` sorts
    /// on the way out for callers that need ascending order.
    motile: Vec<u32>,
    /// Per-robot slot in `motile` (`u32::MAX` when not motile).
    motile_slot: Vec<u32>,
    /// Largest `|to − from|` over the *currently* motile robots — the bound
    /// on every origin-to-interpolation distance. Maintained exactly (not as
    /// a sticky high-water mark): under asynchronous scheduling the motile
    /// set essentially never empties, and a high-water pad would permanently
    /// widen every Look query to the largest Move ever taken.
    motile_pad: f64,
    /// Set when the robot carrying `motile_pad` departed and the max was
    /// not re-taken yet. While set, `motile_pad` only *over*estimates (still
    /// a correct superset bound); the next observation refreshes it. The
    /// recompute is deferred to the read because doing it at `MoveEnd`
    /// degenerates: a synchronous round ends with a burst of `n` MoveEnds,
    /// and when displacements tie (all-zero under the Nil algorithm) every
    /// one of them re-scans the shrinking motile set — `O(n²)` per round.
    motile_pad_stale: bool,
    /// `|to − from|` per robot, valid while that robot is motile.
    motile_disp: Vec<f64>,
    /// Motile epoch: bumped whenever `motile` changes, invalidating the
    /// per-tick cache below.
    motile_version: u64,
    /// Per-tick interpolated positions of the motile robots.
    motile_cache: MotileCache<P>,
    scratch: LookScratch<P>,
    look_path: LookPath,
}

impl<P, A, S> Engine<P, A, S>
where
    P: Ambient,
    A: Algorithm<P>,
    S: Scheduler,
{
    /// Creates an engine over an initial configuration.
    ///
    /// # Panics
    ///
    /// Panics when the configuration is empty or `visibility ≤ 0`.
    pub fn new(
        initial: &Configuration<P>,
        visibility: f64,
        algorithm: A,
        scheduler: S,
        seed: u64,
    ) -> Self {
        assert!(!initial.is_empty(), "need at least one robot");
        assert!(visibility > 0.0, "visibility radius must be positive");
        // Dense grid extent over the initial configuration: the paper's
        // hull-diminishing dynamics keep the swarm inside it, so probes stay
        // on the direct-addressed fast path (strays spill gracefully).
        let mut grid =
            DynamicGrid::with_extent(initial.len(), grid_cell(visibility), initial.positions());
        for (i, &position) in initial.positions().iter().enumerate() {
            grid.insert(i, position);
        }
        Engine {
            states: RobotStates::new(initial.positions()),
            visibility,
            visibility_radii: None,
            algorithm,
            scheduler,
            perception: PerceptionModel::EXACT,
            motion: MotionModel::RIGID,
            frame_mode: FrameMode::RandomOrtho,
            multiplicity_detection: false,
            occlusion_tolerance: None,
            rng: SmallRng::seed_from_u64(seed),
            time: 0.0,
            seq: 0,
            queue: EventQueue::new(QueuePath::default()),
            staged: None,
            trace: ScheduleTrace::new(),
            completed_cycles: vec![0; initial.len()],
            grid,
            motile: Vec::new(),
            motile_slot: vec![u32::MAX; initial.len()],
            motile_pad: 0.0,
            motile_pad_stale: false,
            motile_disp: vec![0.0; initial.len()],
            motile_version: 1,
            motile_cache: MotileCache {
                time_bits: 0,
                version: 0,
                tick: 1,
                stamps: vec![0; initial.len()],
                positions: initial.positions().to_vec(),
            },
            scratch: LookScratch::default(),
            look_path: LookPath::default(),
        }
    }

    /// Sets the perception-error model.
    pub fn set_perception(&mut self, perception: PerceptionModel) {
        self.perception = perception;
    }

    /// Sets the motion model (rigidity + trajectory error).
    pub fn set_motion(&mut self, motion: MotionModel) {
        self.motion = motion;
    }

    /// Sets how local frames are sampled at each activation.
    pub fn set_frame_mode(&mut self, mode: FrameMode) {
        self.frame_mode = mode;
    }

    /// Enables or disables multiplicity detection in snapshots.
    pub fn set_multiplicity_detection(&mut self, enabled: bool) {
        self.multiplicity_detection = enabled;
    }

    /// Selects the Look-phase observation pipeline. The default
    /// [`LookPath::Grid`] and the [`LookPath::BruteReference`] produce
    /// bit-identical results (pinned by the equivalence suite); the
    /// reference exists for differential testing and benchmarking.
    pub fn set_look_path(&mut self, path: LookPath) {
        self.look_path = path;
    }

    /// Selects the pending-event queue. The default [`QueuePath::Calendar`]
    /// and the [`QueuePath::HeapReference`] pop in the identical
    /// `(time, seq)` order (property-tested against each other and pinned by
    /// the session equivalence hashes); the heap exists for differential
    /// testing and benchmarking. Switching mid-run drains and refills, so it
    /// is safe at any event boundary.
    pub fn set_queue_path(&mut self, path: QueuePath) {
        self.queue.set_path(path);
    }

    /// Enables the occlusion model (one of the paper's §8 future-work
    /// constraints, studied in its citations [3, 5]): robot `Y` is hidden
    /// from `X` when some third robot sits on the sight line `X → Y`
    /// strictly between them, within perpendicular distance `tolerance`
    /// (robots are points, so a positive body tolerance makes occlusion
    /// realizable). `None` disables (the paper's base model).
    ///
    /// # Panics
    ///
    /// Panics when a supplied tolerance is not positive and finite.
    pub fn set_occlusion(&mut self, tolerance: Option<f64>) {
        if let Some(t) = tolerance {
            assert!(
                t > 0.0 && t.is_finite(),
                "occlusion tolerance must be positive"
            );
        }
        self.occlusion_tolerance = tolerance;
    }

    /// Returns `true` when `target` (the position of robot `candidate`) is
    /// hidden from robot `observer` at `origin`, under the configured
    /// tolerance — the grid-backed occlusion test.
    ///
    /// Only robots within `tolerance` of the sight segment can block it, so
    /// candidates come from the `O(1)` cells around the segment (padded by
    /// the displacement high-water mark, so origin-indexed motile robots
    /// cannot be missed) instead of a full scan. The
    /// observer and the candidate are excluded **by index**: a third robot
    /// exactly coincident with either is still examined (and then rejected
    /// by the strictly-between window on its own merits) rather than
    /// silently skipped the way the historical position-equality test did.
    fn is_occluded(
        &mut self,
        observer: usize,
        candidate: usize,
        origin: P,
        target: P,
        look: f64,
        occluders: &mut Vec<usize>,
    ) -> bool {
        let Some(tol) = self.occlusion_tolerance else {
            return false;
        };
        let line = target - origin;
        let len_sq = line.norm_sq();
        if len_sq == 0.0 {
            return false;
        }
        // Motile blockers sit within `motile_pad` of their indexed origin,
        // so padding the segment query by it yields a superset for them too.
        occluders.clear();
        self.grid
            .query_segment_cells(origin, target, tol + self.motile_pad, occluders);
        for &z_idx in occluders.iter() {
            if z_idx == observer || z_idx == candidate {
                continue;
            }
            let z = if self.states.is_motile(z_idx) {
                self.motile_position_cached(z_idx, look)
            } else {
                self.grid.position(z_idx).expect("occluder present in grid")
            };
            if blocks_sight(origin, line, len_sq, z, tol) {
                return true;
            }
        }
        false
    }

    /// The historical occlusion test, kept verbatim for
    /// [`LookPath::BruteReference`]: scans every robot and skips the
    /// endpoints by exact position equality.
    fn is_occluded_reference(&self, origin: P, target: P, all: &[P]) -> bool {
        let Some(tol) = self.occlusion_tolerance else {
            return false;
        };
        let line = target - origin;
        let len_sq = line.norm_sq();
        if len_sq == 0.0 {
            return false;
        }
        for &z in all {
            if z == origin || z == target {
                continue;
            }
            if blocks_sight(origin, line, len_sq, z, tol) {
                return true;
            }
        }
        false
    }

    /// Number of robots.
    pub fn robot_count(&self) -> usize {
        self.states.len()
    }

    /// The common visibility radius `V` (per-robot radii, when set, are
    /// capped nowhere — `V` then only scales the quadratic motion-error
    /// bound and reporting).
    pub fn visibility(&self) -> f64 {
        self.visibility
    }

    /// Gives each robot its own visibility radius (paper §6.2: radii may
    /// differ, provided the initial *mutual* visibility graph is connected
    /// and the radii are within a small constant factor of each other —
    /// conditions the caller is responsible for; the engine simulates any
    /// radii faithfully). Perception becomes directional: robot `i` sees `j`
    /// iff `|ij| ≤ radii[i]`.
    ///
    /// The observation grid is re-celled to the largest radius (see
    /// [`grid_cell`]) so every per-robot range query stays a few-cell probe.
    ///
    /// # Panics
    ///
    /// Panics when the count mismatches the robots or a radius is not
    /// positive and finite.
    pub fn set_visibility_radii(&mut self, radii: Vec<f64>) {
        assert_eq!(radii.len(), self.states.len(), "one radius per robot");
        assert!(
            radii.iter().all(|r| *r > 0.0 && r.is_finite()),
            "radii must be positive and finite"
        );
        self.visibility_radii = Some(radii);
        self.rebuild_grid();
    }

    /// The largest perception radius — the observation grid's cell edge is
    /// derived from it (see [`grid_cell`]).
    fn max_radius(&self) -> f64 {
        match &self.visibility_radii {
            Some(radii) => radii.iter().fold(f64::NEG_INFINITY, |a, &b| a.max(b)),
            None => self.visibility,
        }
    }

    /// Rebuilds the observation grid from scratch (radius changes re-cell
    /// it). Exactly the stationary robots are indexed; the dense extent is
    /// re-anchored on the current positions.
    fn rebuild_grid(&mut self) {
        // Every robot indexes at its base position (= Move origin while
        // motile); the displacement high-water mark stays valid across the
        // re-cell.
        let positions = self.states.base_positions();
        let mut grid =
            DynamicGrid::with_extent(self.states.len(), grid_cell(self.max_radius()), positions);
        for (i, &position) in positions.iter().enumerate() {
            grid.insert(i, position);
        }
        self.grid = grid;
    }

    /// The perception radius of one robot.
    pub fn radius_of(&self, robot: RobotId) -> f64 {
        match &self.visibility_radii {
            Some(radii) => radii[robot.index()],
            None => self.visibility,
        }
    }

    /// Current simulation time (time of the last processed event).
    pub fn time(&self) -> f64 {
        self.time
    }

    /// The configuration at time `t` (positions of all robots, interpolated
    /// for motile robots).
    pub fn configuration_at(&self, t: f64) -> Configuration<P> {
        let mut positions = Vec::new();
        self.positions_at_into(t, &mut positions);
        Configuration::new(positions)
    }

    /// The configuration at the current time.
    pub fn configuration(&self) -> Configuration<P> {
        self.configuration_at(self.time)
    }

    /// The position of one robot (by dense index) at time `t` — lets metrics
    /// code read positions in place instead of materializing a whole
    /// [`Configuration`] per event.
    pub fn position_of_at(&self, index: usize, t: f64) -> P {
        self.states.position_at(index, t)
    }

    /// Fills `out` (cleared first) with the position of every robot at time
    /// `t` — the buffer-reusing counterpart of [`Engine::configuration_at`]
    /// for per-event metrics code.
    ///
    /// Struct-of-arrays fast path: a bulk copy of the base-position array
    /// (exact for every stationary robot), then interpolation fix-ups for
    /// the motile few.
    pub fn positions_at_into(&self, t: f64, out: &mut Vec<P>) {
        out.clear();
        out.extend_from_slice(self.states.base_positions());
        for &m in &self.motile {
            let m = m as usize;
            out[m] = self.states.position_at(m, t);
        }
    }

    /// Appends (after clearing) the dense indices of all robots currently in
    /// their Move phase, ascending. Together with the robot of a `MoveEnd`
    /// event, these are the only robots whose positions can have changed
    /// since the previous event — the *dirty set* the incremental monitors
    /// re-check. Served from the maintained side-list and sorted on the way
    /// out: `O(motile log motile)`, not `O(n)`.
    pub fn collect_motile(&self, out: &mut Vec<usize>) {
        out.clear();
        out.extend(self.motile.iter().map(|&m| m as usize));
        out.sort_unstable();
    }

    /// Fills `out` (cleared first) with current positions plus all pending
    /// (planned or in-flight) destinations — the vertex set of the paper's
    /// `CH_t`. Buffer-reusing by design so monitors on a sampling cadence
    /// never allocate per sample.
    pub fn positions_with_targets_into(&self, out: &mut Vec<P>) {
        self.positions_at_into(self.time, out);
        for i in 0..self.states.len() {
            if let Some(target) = self.states.pending_target(i) {
                out.push(target);
            }
        }
    }

    /// The schedule trace recorded so far.
    pub fn trace(&self) -> &ScheduleTrace {
        &self.trace
    }

    /// Completed activation cycles per robot.
    pub fn completed_cycles(&self) -> &[u64] {
        &self.completed_cycles
    }

    /// Captures the engine's complete mutable core for a checkpoint: robot
    /// states, the pending-event queue in pop order, the staged activation,
    /// the RNG stream position, cycle counters, and the scheduler's mutable
    /// state. `staged` and the scheduler state are captured at the same
    /// instant, so a pulled-but-undispatched activation is never lost or
    /// double-pulled. The (unbounded, report-invisible) schedule trace is
    /// deliberately excluded — a restored engine's trace starts empty.
    pub(crate) fn save_core(&mut self) -> Result<EngineState, String> {
        let scheduler = self.scheduler.save_state().ok_or_else(|| {
            format!(
                "scheduler '{}' is not checkpointable",
                self.scheduler.name()
            )
        })?;
        Ok(EngineState {
            time: self.time,
            seq: self.seq,
            rng: self.rng.state(),
            robots: (0..self.states.len())
                .map(|i| RobotStateRepr::of(self.states.state(i)))
                .collect(),
            queue: self.queue.snapshot().iter().map(PendingRepr::of).collect(),
            staged: self.staged,
            completed_cycles: self.completed_cycles.clone(),
            scheduler,
        })
    }

    /// Restores a state captured by [`Engine::save_core`] onto this engine
    /// (which must have been built from the same scenario — same robots,
    /// algorithm, scheduler class, and configuration knobs). Everything
    /// derived — grid, motile side-list, displacement pad, interpolation
    /// cache — is rebuilt from the restored states; the rebuild is
    /// observation-exact because grid queries are supersets trimmed by exact
    /// predicates. On error the engine may be partially updated and must be
    /// discarded (callers fall back to a freshly built run).
    pub(crate) fn restore_core(&mut self, state: &EngineState) -> Result<(), String> {
        let n = self.states.len();
        if state.robots.len() != n {
            return Err(format!(
                "checkpoint covers {} robots, engine has {n}",
                state.robots.len()
            ));
        }
        if state.completed_cycles.len() != n {
            return Err(format!(
                "checkpoint cycle counters cover {} robots, engine has {n}",
                state.completed_cycles.len()
            ));
        }
        let robots = state
            .robots
            .iter()
            .map(RobotStateRepr::to_state)
            .collect::<Result<Vec<RobotState<P>>, _>>()?;
        let mut events = state
            .queue
            .iter()
            .map(PendingRepr::to_pending)
            .collect::<Result<Vec<_>, _>>()?;
        self.scheduler.load_state(&state.scheduler)?;
        for (i, s) in robots.into_iter().enumerate() {
            self.states.set(i, s);
        }
        self.rng = SmallRng::from_state(state.rng);
        self.time = state.time;
        self.seq = state.seq;
        self.staged = state.staged;
        self.completed_cycles = state.completed_cycles.clone();
        // Refill a fresh queue in ascending `(time, seq)` — the serialized
        // pop order already is, but the sort keeps the calendar's
        // ascending-seq-within-tick push contract independent of the
        // encoding. All event times are finite (queue invariant).
        events.sort_by(|a, b| {
            (a.time, a.seq)
                .partial_cmp(&(b.time, b.seq))
                .expect("event times are finite")
        });
        let mut queue = EventQueue::new(self.queue.path());
        for p in events {
            queue.push(p);
        }
        self.queue = queue;
        self.trace = ScheduleTrace::new();
        self.rebuild_derived();
        Ok(())
    }

    /// Rebuilds every structure derived from the robot states after a
    /// restore: motile side-list and slots, per-robot displacements, the
    /// displacement pad (taken exactly, so it can only differ from a live
    /// engine's stale overestimate — both are correct superset bounds), the
    /// per-tick interpolation cache, and the observation grid.
    fn rebuild_derived(&mut self) {
        let n = self.states.len();
        self.motile.clear();
        self.motile_slot = vec![u32::MAX; n];
        self.motile_disp = vec![0.0; n];
        let mut pad = 0.0_f64;
        for i in 0..n {
            if let RobotState::Moving { from, to, .. } = self.states.state(i) {
                let d = (to - from).norm();
                self.motile_disp[i] = d;
                pad = pad.max(d);
                self.motile_slot[i] = self.motile.len() as u32;
                self.motile.push(i as u32);
            }
        }
        self.motile_pad = pad;
        self.motile_pad_stale = false;
        self.motile_version += 1;
        self.motile_cache = MotileCache {
            time_bits: 0,
            version: 0,
            tick: self.motile_cache.tick + 1,
            stamps: vec![0; n],
            positions: self.states.base_positions().to_vec(),
        };
        self.rebuild_grid();
    }

    /// Reference to the scheduler (for reporting).
    pub fn scheduler(&self) -> &S {
        &self.scheduler
    }

    /// Reference to the algorithm (for reporting).
    pub fn algorithm(&self) -> &A {
        &self.algorithm
    }

    /// The timestamp of the next event [`Engine::step`] would process, or
    /// `None` when the schedule is exhausted and no phase is in flight.
    ///
    /// Staging the upcoming activation here is exactly what `step` does, so
    /// peeking never perturbs the event sequence — it lets a driver honour a
    /// simulated-time budget *before* committing to an event instead of
    /// noticing the overrun one event too late.
    pub fn peek_time(&mut self) -> Option<f64> {
        self.stage_next_activation();
        let staged = self.staged.as_ref().map(|iv| iv.look);
        match (staged, self.queue.peek_time()) {
            (Some(look), Some(t)) => Some(look.min(t)),
            (Some(look), None) => Some(look),
            (None, Some(t)) => Some(t),
            (None, None) => None,
        }
    }

    /// Keeps one upcoming activation staged so it can be ordered against
    /// pending phase events.
    fn stage_next_activation(&mut self) {
        if self.staged.is_none() {
            let ctx = ScheduleContext {
                robot_count: self.states.len(),
            };
            self.staged = self.scheduler.next_activation(&ctx);
        }
    }

    /// Processes the next event; `None` when the schedule is exhausted and
    /// all in-flight phases have completed.
    pub fn step(&mut self) -> Option<EngineEvent> {
        self.stage_next_activation();
        let staged = self.staged.as_ref().map(|iv| iv.look);
        let take_staged = match (staged, self.queue.peek_time()) {
            (Some(look), Some(t)) => look <= t,
            (Some(_), None) => true,
            (None, Some(_)) => false,
            (None, None) => return None,
        };
        if take_staged {
            let iv = self.staged.take().expect("staged activation");
            self.dispatch_look(iv)
        } else {
            let p = self.queue.pop().expect("pending event");
            self.time = p.time;
            match p.kind {
                EngineEventKind::MoveStart => self.dispatch_move_start(p),
                EngineEventKind::MoveEnd => self.dispatch_move_end(p),
                EngineEventKind::Look => unreachable!("Looks are never queued"),
            }
        }
    }

    fn dispatch_look(&mut self, iv: ActivationInterval) -> Option<EngineEvent> {
        assert!(
            iv.look >= self.time - 1e-9,
            "scheduler emitted a Look in the past ({} < {})",
            iv.look,
            self.time
        );
        self.time = self.time.max(iv.look);
        let robot = iv.robot;
        assert!(
            self.states.is_idle(robot.index()),
            "robot {robot} activated while not idle (scheduler bug)"
        );
        self.trace.push(iv);

        let here = self.states.position_at(robot.index(), iv.look);
        // Perception pipeline: true relative position → (occlusion) →
        // local frame → symmetric distortion → distance error.
        let frame = P::sample_frame(self.frame_mode, &mut self.rng);
        let distortion = self.perception.sample_distortion(&mut self.rng);
        let local_target = match self.look_path {
            LookPath::Grid => self.observe_grid(robot, here, iv.look, &frame, &distortion),
            LookPath::BruteReference => {
                self.observe_brute(robot, here, iv.look, &frame, &distortion)
            }
        };
        // Motion executes in the robot's own (distorted) coordinate system:
        // pull the intended displacement back through the inverse distortion
        // and frame.
        let global_delta = frame.to_global(P::undistort(local_target, &distortion));
        let target = here + global_delta;
        self.states.set(
            robot.index(),
            RobotState::Computing {
                position: here,
                target,
                move_start: iv.move_start,
                move_end: iv.end,
            },
        );
        self.seq += 1;
        self.queue.push(Pending {
            time: iv.move_start,
            seq: self.seq,
            robot,
            kind: EngineEventKind::MoveStart,
        });
        Some(EngineEvent {
            time: iv.look,
            robot,
            kind: EngineEventKind::Look,
        })
    }

    /// Opens (or re-enters) the motile-interpolation tick for this exact
    /// timestamp and motile epoch: advancing the tick id invalidates every
    /// memoized entry in `O(1)` (see [`MotileCache`]).
    fn prepare_motile_tick(&mut self, look: f64) {
        let time_bits = look.to_bits();
        let cache = &mut self.motile_cache;
        if cache.time_bits != time_bits || cache.version != self.motile_version {
            cache.time_bits = time_bits;
            cache.version = self.motile_version;
            cache.tick += 1;
        }
    }

    /// The interpolated position of motile robot `i` at the current tick's
    /// timestamp, memoized per tick so coincident Looks share one
    /// interpolation. Caller must have opened the tick for `look`.
    #[inline]
    fn motile_position_cached(&mut self, i: usize, look: f64) -> P {
        debug_assert_eq!(
            self.motile_cache.time_bits,
            look.to_bits(),
            "motile read outside the prepared tick"
        );
        if self.motile_cache.stamps[i] == self.motile_cache.tick {
            return self.motile_cache.positions[i];
        }
        let p = self.states.position_at(i, look);
        self.motile_cache.positions[i] = p;
        self.motile_cache.stamps[i] = self.motile_cache.tick;
        p
    }

    /// Re-takes the motile-pad max if a departure left it stale. `O(motile)`,
    /// at most once per observation no matter how many MoveEnds intervened.
    fn refresh_motile_pad(&mut self) {
        if self.motile_pad_stale {
            self.motile_pad = self
                .motile
                .iter()
                .map(|&j| self.motile_disp[j as usize])
                .fold(0.0, f64::max);
            self.motile_pad_stale = false;
        }
    }

    /// The grid-backed observation pipeline: `O(deg + motile)` candidate
    /// gathering, cell-walk occlusion, pooled buffers — and a result
    /// bit-identical to [`Engine::observe_brute`].
    fn observe_grid(
        &mut self,
        robot: RobotId,
        here: P,
        look: f64,
        frame: &P::AmbientFrame,
        distortion: &Distortion,
    ) -> P {
        let idx = robot.index();
        let radius = self.radius_of(robot);
        // Open the motile-interpolation tick: coincident Looks (a whole
        // round of them under the synchronous schedulers) share the memoized
        // positions instead of re-interpolating.
        self.prepare_motile_tick(look);
        self.refresh_motile_pad();
        let mut scratch = std::mem::take(&mut self.scratch);
        // One grid query covers everyone (the observer itself included —
        // skipped below by index): stationary robots are indexed exactly,
        // motile ones at their Move origin, never farther than `motile_pad`
        // from where they are now. A query padded by the motile bound is
        // therefore a superset, trimmed by the exact range check the
        // historical scan applied; with no motile robots the pad is zero and
        // the grid's own exact filter needs no trimming at all.
        scratch.candidates.clear();
        if self.motile_pad == 0.0 {
            self.grid
                .query_within(here, radius, &mut scratch.candidates);
        } else {
            scratch.range_hits.clear();
            self.grid.query_within_banded(
                here,
                radius,
                self.motile_pad,
                &mut scratch.candidates,
                &mut scratch.range_hits,
            );
            // The inner band's verdict is exact for stationary robots (they
            // are indexed at their true position — no distance re-derivation
            // needed); a motile robot was judged at its Move origin, so it
            // re-checks against the interpolated position whichever band it
            // landed in.
            let mut keep = 0;
            for k in 0..scratch.candidates.len() {
                let j = scratch.candidates[k];
                if !self.states.is_motile(j)
                    || (self.motile_position_cached(j, look) - here).norm() <= radius
                {
                    scratch.candidates[keep] = j;
                    keep += 1;
                }
            }
            scratch.candidates.truncate(keep);
            for k in 0..scratch.range_hits.len() {
                let j = scratch.range_hits[k];
                if self.states.is_motile(j)
                    && (self.motile_position_cached(j, look) - here).norm() <= radius
                {
                    scratch.candidates.push(j);
                }
            }
        }
        // Ascending robot order = the historical scan order: the per-robot
        // RNG draws below happen in exactly the old sequence.
        scratch.candidates.sort_unstable();
        scratch.snapshot.clear();
        for k in 0..scratch.candidates.len() {
            let j = scratch.candidates[k];
            if j == idx {
                continue;
            }
            // The trim above already interpolated every motile candidate
            // into the per-tick memo; stationary robots read their base.
            let pos = if self.states.is_motile(j) {
                self.motile_position_cached(j, look)
            } else {
                self.states.base_positions()[j]
            };
            if self.is_occluded(idx, j, here, pos, look, &mut scratch.occluders) {
                continue;
            }
            let rel = pos - here;
            let local = frame.to_local(rel);
            let distorted = P::distort(local, distortion);
            let factor = self.perception.sample_distance_factor(&mut self.rng);
            scratch.snapshot.push(distorted * factor);
        }
        if !self.multiplicity_detection {
            scratch.snapshot.dedup_multiplicity(1e-12);
        }
        let local_target = self.algorithm.compute(&scratch.snapshot);
        self.scratch = scratch;
        local_target
    }

    /// The historical `O(n)`–`O(n²)` observation loop, kept as the
    /// differential-testing reference and bench baseline. The loop structure
    /// is verbatim; its two per-Look `collect()`s now draw from the pooled
    /// [`LookScratch`] (the all-robot position buffer and the snapshot), so
    /// the reference path stays allocation-free and usable at `n = 1024` in
    /// the equivalence matrix.
    fn observe_brute(
        &mut self,
        robot: RobotId,
        here: P,
        look: f64,
        frame: &P::AmbientFrame,
        distortion: &Distortion,
    ) -> P {
        let mut scratch = std::mem::take(&mut self.scratch);
        self.positions_at_into(look, &mut scratch.brute_positions);
        scratch.snapshot.clear();
        for (j, &pos) in scratch.brute_positions.iter().enumerate() {
            if j == robot.index() {
                continue;
            }
            let rel = pos - here;
            if rel.norm() <= self.radius_of(robot)
                && !self.is_occluded_reference(here, pos, &scratch.brute_positions)
            {
                let local = frame.to_local(rel);
                let distorted = P::distort(local, distortion);
                let factor = self.perception.sample_distance_factor(&mut self.rng);
                scratch.snapshot.push(distorted * factor);
            }
        }
        if !self.multiplicity_detection {
            scratch.snapshot.dedup_multiplicity(1e-12);
        }
        let local_target = self.algorithm.compute(&scratch.snapshot);
        self.scratch = scratch;
        local_target
    }

    fn dispatch_move_start(&mut self, p: Pending) -> Option<EngineEvent> {
        let idx = p.robot.index();
        let (position, target, move_end) = match self.states.state(idx) {
            RobotState::Computing {
                position,
                target,
                move_end,
                ..
            } => (position, target, move_end),
            other => unreachable!("MoveStart in state {other:?}"),
        };
        let realized = self
            .motion
            .resolve(position, target, self.visibility, &mut self.rng);
        // Grid lifecycle: nothing to move — the robot is already indexed at
        // `position`, which is exactly its Move origin. Only the pad and the
        // side-list update.
        let displacement = (realized - position).norm();
        self.motile_disp[idx] = displacement;
        self.motile_pad = self.motile_pad.max(displacement);
        debug_assert_eq!(
            self.motile_slot[idx],
            u32::MAX,
            "robot cannot already be motile at MoveStart"
        );
        self.motile_slot[idx] = self.motile.len() as u32;
        self.motile.push(idx as u32);
        self.motile_version += 1;
        self.states.set(
            idx,
            RobotState::Moving {
                from: position,
                to: realized,
                t0: p.time,
                t1: move_end,
            },
        );
        self.seq += 1;
        self.queue.push(Pending {
            time: move_end,
            seq: self.seq,
            robot: p.robot,
            kind: EngineEventKind::MoveEnd,
        });
        Some(EngineEvent {
            time: p.time,
            robot: p.robot,
            kind: EngineEventKind::MoveStart,
        })
    }

    fn dispatch_move_end(&mut self, p: Pending) -> Option<EngineEvent> {
        let idx = p.robot.index();
        let final_pos = match self.states.state(idx) {
            RobotState::Moving { to, .. } => to,
            other => unreachable!("MoveEnd in state {other:?}"),
        };
        let slot = self.motile_slot[idx] as usize;
        debug_assert_eq!(self.motile[slot], idx as u32, "motile robot is side-listed");
        self.motile.swap_remove(slot);
        if let Some(&moved) = self.motile.get(slot) {
            self.motile_slot[moved as usize] = slot as u32;
        }
        self.motile_slot[idx] = u32::MAX;
        if self.motile.is_empty() {
            self.motile_pad = 0.0;
            self.motile_pad_stale = false;
        } else if self.motile_pad > 0.0 && self.motile_disp[idx] >= self.motile_pad {
            // The departing robot carried the pad; defer re-taking the max
            // to the next observation (see `motile_pad_stale`).
            self.motile_pad_stale = true;
        }
        self.motile_version += 1;
        // Grid lifecycle: the entry relocates from the Move origin to the
        // realized destination.
        self.grid.remove(idx);
        self.grid.insert(idx, final_pos);
        self.states.set(
            idx,
            RobotState::Idle {
                position: final_pos,
            },
        );
        self.completed_cycles[idx] += 1;
        Some(EngineEvent {
            time: p.time,
            robot: p.robot,
            kind: EngineEventKind::MoveEnd,
        })
    }
}

/// Observation-grid cell edge for a given largest perception radius: half
/// the radius. A radius query's cell box then hugs the disc much tighter
/// than radius-sized cells would (the padded motile-superset query visits
/// roughly half the points, each of which costs an exact distance check),
/// while the box stays a handful of contiguous row runs.
#[inline]
fn grid_cell(max_radius: f64) -> f64 {
    max_radius * 0.5
}

/// The strictly-between occlusion predicate for one potential blocker `z` on
/// the sight line `origin → origin + line`: `z`'s projection must fall
/// strictly inside the segment and its perpendicular foot within `tol`.
/// Shared verbatim by both Look paths, so their booleans cannot drift.
#[inline]
fn blocks_sight<P: Ambient>(origin: P, line: P, len_sq: f64, z: P, tol: f64) -> bool {
    let t = (z - origin).dot(line) / len_sq;
    if t <= 1e-9 || t >= 1.0 - 1e-9 {
        return false; // not strictly between
    }
    let foot = origin + line * t;
    foot.dist(z) <= tol
}

impl<P: Ambient, A: std::fmt::Debug, S: std::fmt::Debug> std::fmt::Debug for Engine<P, A, S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Engine")
            .field("robots", &self.states.len())
            .field("time", &self.time)
            .field("visibility", &self.visibility)
            .field("algorithm", &self.algorithm)
            .field("scheduler", &self.scheduler)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cohesion_geometry::Vec2;
    use cohesion_model::NilAlgorithm;
    use cohesion_scheduler::FSyncScheduler;

    fn two_robots() -> Configuration {
        Configuration::new(vec![Vec2::ZERO, Vec2::new(1.0, 0.0)])
    }

    #[test]
    fn nil_algorithm_never_moves() {
        let mut engine = Engine::new(&two_robots(), 1.0, NilAlgorithm, FSyncScheduler::new(), 1);
        for _ in 0..30 {
            engine.step().unwrap();
        }
        let c = engine.configuration();
        assert_eq!(c.position(RobotId(0)), Vec2::ZERO);
        assert_eq!(c.position(RobotId(1)), Vec2::new(1.0, 0.0));
        assert!(engine.completed_cycles().iter().all(|&c| c >= 4));
    }

    #[test]
    fn events_are_time_ordered() {
        let mut engine = Engine::new(&two_robots(), 1.0, NilAlgorithm, FSyncScheduler::new(), 1);
        let mut last = f64::NEG_INFINITY;
        for _ in 0..50 {
            let ev = engine.step().unwrap();
            assert!(
                ev.time >= last - 1e-12,
                "event at {} after {}",
                ev.time,
                last
            );
            last = ev.time;
        }
    }

    #[test]
    fn trace_is_recorded() {
        let mut engine = Engine::new(&two_robots(), 1.0, NilAlgorithm, FSyncScheduler::new(), 1);
        for _ in 0..30 {
            engine.step().unwrap();
        }
        assert_eq!(
            engine.trace().len(),
            10,
            "30 events = 10 full cycles of 3 events"
        );
        cohesion_scheduler::validate::validate_fsync(engine.trace(), 2).unwrap();
    }

    #[test]
    fn occlusion_hides_robots_behind_others() {
        use cohesion_scheduler::ScriptedScheduler;
        // Three collinear robots: the middle one blocks the far one.
        let config = Configuration::new(vec![Vec2::ZERO, Vec2::new(0.4, 0.0), Vec2::new(0.8, 0.0)]);
        let run = |occlusion: Option<f64>, path: LookPath| {
            let script = ScriptedScheduler::new(
                "one-look",
                vec![ActivationInterval::new(RobotId(0), 0.0, 0.3, 0.6)],
            );
            let mut engine = Engine::new(&config, 1.0, CountingAlgorithm, script, 1);
            engine.set_frame_mode(cohesion_model::FrameMode::Aligned);
            engine.set_occlusion(occlusion);
            engine.set_look_path(path);
            while engine.step().is_some() {}
            engine.configuration().position(RobotId(0)).x
        };
        for path in [LookPath::Grid, LookPath::BruteReference] {
            // The counting algorithm moves by 0.001 per visible robot.
            assert!(
                (run(None, path) - 0.002).abs() < 1e-12,
                "no occlusion: sees both ({path:?})"
            );
            assert!(
                (run(Some(0.01), path) - 0.001).abs() < 1e-12,
                "occlusion: middle hides far ({path:?})"
            );
        }
    }

    #[test]
    fn coincident_occluders_are_not_skipped() {
        use cohesion_scheduler::ScriptedScheduler;
        // Regression for the index-based endpoint exclusion: three collinear
        // robots where two coincide. The blocking pair sits at 0.4 — exactly
        // on the observer's sight line to the far robot at 0.8. Each of the
        // coincident twins must stay visible (a robot exactly at the sight
        // line's endpoint is not *strictly between*, whichever twin is the
        // candidate), while the far robot must be occluded by both.
        let config = Configuration::new(vec![
            Vec2::ZERO,
            Vec2::new(0.4, 0.0),
            Vec2::new(0.4, 0.0),
            Vec2::new(0.8, 0.0),
        ]);
        let run = |path: LookPath| {
            let script = ScriptedScheduler::new(
                "one-look",
                vec![ActivationInterval::new(RobotId(0), 0.0, 0.3, 0.6)],
            );
            let mut engine = Engine::new(&config, 1.0, CountingAlgorithm, script, 1);
            engine.set_frame_mode(cohesion_model::FrameMode::Aligned);
            engine.set_occlusion(Some(0.01));
            engine.set_multiplicity_detection(true);
            engine.set_look_path(path);
            while engine.step().is_some() {}
            engine.configuration().position(RobotId(0)).x
        };
        for path in [LookPath::Grid, LookPath::BruteReference] {
            // Both twins visible (0.002), far robot hidden behind them.
            assert!(
                (run(path) - 0.002).abs() < 1e-12,
                "coincident twins visible, far robot occluded ({path:?})"
            );
        }
    }

    /// Moves 0.001·(number of visible robots) along +x; test-only probe.
    #[derive(Debug)]
    struct CountingAlgorithm;
    impl Algorithm<Vec2> for CountingAlgorithm {
        fn compute(&self, snapshot: &Snapshot<Vec2>) -> Vec2 {
            Vec2::new(0.001 * snapshot.len() as f64, 0.0)
        }
        fn name(&self) -> &str {
            "counting"
        }
    }

    #[test]
    fn heterogeneous_radii_are_directional() {
        use cohesion_scheduler::ScriptedScheduler;
        // Robot 0 has a long radius and sees robot 1; robot 1 has a short
        // radius and sees nobody: activating each once must move only 0.
        let config = Configuration::new(vec![Vec2::ZERO, Vec2::new(1.0, 0.0)]);
        let script = ScriptedScheduler::new(
            "hetero",
            vec![
                ActivationInterval::new(RobotId(0), 0.0, 0.3, 0.6),
                ActivationInterval::new(RobotId(1), 1.0, 1.3, 1.6),
            ],
        );
        let mut engine = Engine::new(
            &config,
            1.0,
            cohesion_core_stub::StepTowardFurthest,
            script,
            1,
        );
        engine.set_visibility_radii(vec![1.5, 0.5]);
        assert_eq!(engine.radius_of(RobotId(0)), 1.5);
        while engine.step().is_some() {}
        let c = engine.configuration();
        assert!(
            c.position(RobotId(0)).x > 0.0,
            "robot 0 saw its neighbour and moved"
        );
        assert_eq!(
            c.position(RobotId(1)),
            Vec2::new(1.0, 0.0),
            "robot 1 saw nobody"
        );
    }

    /// Minimal local algorithm for the heterogeneous-radii test (avoids a
    /// dev-dependency on cohesion-core).
    mod cohesion_core_stub {
        use super::*;
        #[derive(Debug)]
        pub struct StepTowardFurthest;
        impl Algorithm<Vec2> for StepTowardFurthest {
            fn compute(&self, snapshot: &Snapshot<Vec2>) -> Vec2 {
                snapshot
                    .positions()
                    .max_by(|a, b| a.norm().partial_cmp(&b.norm()).expect("finite"))
                    .map(|p| p * 0.1)
                    .unwrap_or(Vec2::ZERO)
            }
            fn name(&self) -> &str {
                "step-toward-furthest"
            }
        }
    }

    #[test]
    fn scripted_schedule_terminates() {
        use cohesion_scheduler::ScriptedScheduler;
        let script = ScriptedScheduler::new(
            "one-shot",
            vec![ActivationInterval::new(RobotId(0), 0.0, 0.5, 1.0)],
        );
        let mut engine = Engine::new(&two_robots(), 1.0, NilAlgorithm, script, 1);
        let mut events = 0;
        while engine.step().is_some() {
            events += 1;
        }
        assert_eq!(events, 3, "Look, MoveStart, MoveEnd");
    }

    #[test]
    fn buffered_position_accessors_match_first_principles() {
        let mut engine = Engine::new(&two_robots(), 1.0, NilAlgorithm, FSyncScheduler::new(), 1);
        for _ in 0..7 {
            engine.step().unwrap();
        }
        let t = engine.time();
        let mut buf = Vec::new();
        engine.positions_at_into(t, &mut buf);
        assert_eq!(buf, engine.configuration_at(t).positions().to_vec());
        // positions_with_targets_into = positions at `t` followed by every
        // pending target in robot order, rebuilt here from the raw state.
        let mut expected = engine.configuration_at(t).positions().to_vec();
        for i in 0..engine.states.len() {
            if let Some(target) = engine.states.pending_target(i) {
                expected.push(target);
            }
        }
        engine.positions_with_targets_into(&mut buf);
        assert_eq!(buf, expected);
    }

    #[test]
    fn grid_and_side_list_track_the_move_phase() {
        // The lifecycle invariant after every event: every robot is indexed
        // in the grid at its base position (true position while stationary,
        // Move origin while motile), `collect_motile` yields exactly the
        // motile set ascending, and the pad (max displacement over the
        // currently motile robots) bounds every motile robot's distance from
        // its indexed origin.
        let config = cohesion_workloads_stub(9);
        let mut engine = Engine::new(
            &config,
            1.0,
            CountingAlgorithm,
            cohesion_scheduler::KAsyncScheduler::new(3, 5),
            7,
        );
        let mut motile = Vec::new();
        for _ in 0..300 {
            let Some(_) = engine.step() else { break };
            engine.collect_motile(&mut motile);
            let scan: Vec<usize> = (0..engine.states.len())
                .filter(|&i| engine.states.is_motile(i))
                .collect();
            assert_eq!(motile, scan, "side-list diverged from a state scan");
            for i in 0..engine.states.len() {
                let base = engine.states.base_positions()[i];
                assert_eq!(
                    engine.grid.position(i),
                    Some(base),
                    "grid entry of robot {i} is not its base position"
                );
                if engine.states.is_motile(i) {
                    let now = engine.states.position_at(i, engine.time());
                    assert!(
                        now.dist(base) <= engine.motile_pad + 1e-12,
                        "motile robot {i} strayed past the pad"
                    );
                } else {
                    assert_eq!(
                        base,
                        engine.states.position_at(i, engine.time()),
                        "stationary robot {i}'s base position is stale"
                    );
                }
            }
        }
    }

    /// A small connected line configuration (inline to avoid a circular
    /// dev-dependency on cohesion-workloads).
    fn cohesion_workloads_stub(n: usize) -> Configuration {
        Configuration::new((0..n).map(|i| Vec2::new(i as f64 * 0.7, 0.0)).collect())
    }
}
