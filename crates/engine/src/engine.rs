//! The event loop: dispatching activations, taking snapshots, resolving
//! motion.
//!
//! # The grid-backed Look phase
//!
//! The Look phase is the engine's hot path: one observation per activation,
//! thousands of activations per run, thousands of runs per sweep. The
//! historical pipeline rebuilt an `all_positions` vector (an `O(n)`
//! allocation), scanned all `n` robots linearly, and ran an `O(n)` occlusion
//! test per visible candidate — `O(n)`–`O(n²)` per Look. Under limited
//! visibility each robot actually sees only `O(deg)` neighbours, so the
//! engine now keeps an incremental [`DynamicGrid`] of the **stationary**
//! robots (cells sized by the largest perception radius) plus a small
//! side-list of the robots currently in their Move phase:
//!
//! * a robot leaves the grid when its Move starts and re-enters at its final
//!   position when the Move ends — the invariant is *in the grid ⇔ not in
//!   the Move phase* (`Idle` and `Computing` robots are stationary);
//! * a Look queries the grid for the `O(deg)` stationary robots in range and
//!   checks the motile side-list brute-force at interpolated
//!   `position_at(t)` — `O(deg + motile)` instead of `O(n)`;
//! * the occlusion test walks only the grid cells around the sight segment
//!   (plus the motile list) instead of all `n` robots;
//! * all working sets live in pooled scratch buffers ([`LookScratch`]),
//!   including the [`Snapshot`] handed to the algorithm — the steady-state
//!   Look performs no heap allocation.
//!
//! Candidates are merged and sorted into ascending robot order — exactly the
//! order of the historical linear scan — so every RNG draw (one
//! `sample_distance_factor` per observed robot) happens in the same sequence
//! and outputs are bit-for-bit identical to the old loop. That old loop is
//! kept verbatim as [`LookPath::BruteReference`], the property-tested
//! reference and bench baseline.

use crate::state::RobotState;
use cohesion_geometry::DynamicGrid;
use cohesion_model::frame::{Ambient, Frame, FrameMode};
use cohesion_model::{
    Algorithm, Configuration, Distortion, MotionModel, PerceptionModel, RobotId, Snapshot,
};
use cohesion_scheduler::{ActivationInterval, ScheduleContext, ScheduleTrace, Scheduler};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::collections::BinaryHeap;

/// What happened at an engine step.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum EngineEventKind {
    /// A robot performed its instantaneous Look (and, in our execution
    /// model, determined its destination from the snapshot).
    Look,
    /// A robot's Move phase began; rigidity and motion error were resolved.
    MoveStart,
    /// A robot's Move phase ended; the robot is idle again.
    MoveEnd,
}

/// A timed engine event, reported back to the driver after processing.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EngineEvent {
    /// Simulation time of the event.
    pub time: f64,
    /// Which robot.
    pub robot: RobotId,
    /// What happened.
    pub kind: EngineEventKind,
}

/// Which observation pipeline the Look phase runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LookPath {
    /// Grid-backed `O(deg + motile)` observation with pooled scratch
    /// buffers — the production path (default).
    #[default]
    Grid,
    /// The historical `O(n)`–`O(n²)` linear scan, kept verbatim as the
    /// property-tested reference implementation and the bench baseline
    /// (mirroring how `VisibilityGraph` keeps its brute-force builder).
    BruteReference,
}

/// Internal heap entry (min-heap by time, stable by sequence number).
#[derive(Debug, Clone, Copy, PartialEq)]
struct Pending {
    time: f64,
    seq: u64,
    robot: RobotId,
    kind: EngineEventKind,
}

impl Eq for Pending {}

impl Ord for Pending {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reverse for a min-heap; tie-break on sequence for determinism.
        other
            .time
            .partial_cmp(&self.time)
            .expect("finite event times")
            .then(other.seq.cmp(&self.seq))
    }
}

impl PartialOrd for Pending {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Reusable working memory for the Look phase, owned by the engine so the
/// steady-state observation pipeline allocates nothing.
#[derive(Debug)]
struct LookScratch<P> {
    /// Visible-candidate indices: grid hits merged with motile hits, sorted
    /// ascending before observation (the historical scan order).
    candidates: Vec<usize>,
    /// Occlusion-candidate indices near the current sight segment.
    occluders: Vec<usize>,
    /// Pooled observation buffer handed to the algorithm's Compute.
    snapshot: Snapshot<P>,
}

impl<P> Default for LookScratch<P> {
    fn default() -> Self {
        LookScratch {
            candidates: Vec::new(),
            occluders: Vec::new(),
            snapshot: Snapshot::default(),
        }
    }
}

/// The discrete-event simulator for one robot system.
///
/// Drive it with [`Engine::step`] until it returns `None` (scripted schedule
/// exhausted) or until an external budget is hit; the
/// [`SimulationBuilder`](crate::runner::SimulationBuilder) wraps this loop
/// with metrics and convergence/cohesion checks.
pub struct Engine<P: Ambient, A, S> {
    states: Vec<RobotState<P>>,
    visibility: f64,
    visibility_radii: Option<Vec<f64>>,
    algorithm: A,
    scheduler: S,
    perception: PerceptionModel,
    motion: MotionModel,
    frame_mode: FrameMode,
    multiplicity_detection: bool,
    occlusion_tolerance: Option<f64>,
    rng: SmallRng,
    time: f64,
    seq: u64,
    heap: BinaryHeap<Pending>,
    staged: Option<ActivationInterval>,
    trace: ScheduleTrace,
    completed_cycles: Vec<u64>,
    /// Stationary robots (`Idle` and `Computing`), indexed for `O(deg)`
    /// range and occlusion queries. Lifecycle: out at `MoveStart`, back in
    /// at `MoveEnd`.
    grid: DynamicGrid<P>,
    /// Ascending dense indices of the robots currently in their Move phase —
    /// the complement of the grid's contents.
    motile: Vec<u32>,
    scratch: LookScratch<P>,
    look_path: LookPath,
}

impl<P, A, S> Engine<P, A, S>
where
    P: Ambient,
    A: Algorithm<P>,
    S: Scheduler,
{
    /// Creates an engine over an initial configuration.
    ///
    /// # Panics
    ///
    /// Panics when the configuration is empty or `visibility ≤ 0`.
    pub fn new(
        initial: &Configuration<P>,
        visibility: f64,
        algorithm: A,
        scheduler: S,
        seed: u64,
    ) -> Self {
        assert!(!initial.is_empty(), "need at least one robot");
        assert!(visibility > 0.0, "visibility radius must be positive");
        // Dense grid extent over the initial configuration: the paper's
        // hull-diminishing dynamics keep the swarm inside it, so probes stay
        // on the direct-addressed fast path (strays spill gracefully).
        let mut grid = DynamicGrid::with_extent(initial.len(), visibility, initial.positions());
        for (i, &position) in initial.positions().iter().enumerate() {
            grid.insert(i, position);
        }
        Engine {
            states: initial
                .positions()
                .iter()
                .map(|&position| RobotState::Idle { position })
                .collect(),
            visibility,
            visibility_radii: None,
            algorithm,
            scheduler,
            perception: PerceptionModel::EXACT,
            motion: MotionModel::RIGID,
            frame_mode: FrameMode::RandomOrtho,
            multiplicity_detection: false,
            occlusion_tolerance: None,
            rng: SmallRng::seed_from_u64(seed),
            time: 0.0,
            seq: 0,
            heap: BinaryHeap::new(),
            staged: None,
            trace: ScheduleTrace::new(),
            completed_cycles: vec![0; initial.len()],
            grid,
            motile: Vec::new(),
            scratch: LookScratch::default(),
            look_path: LookPath::default(),
        }
    }

    /// Sets the perception-error model.
    pub fn set_perception(&mut self, perception: PerceptionModel) {
        self.perception = perception;
    }

    /// Sets the motion model (rigidity + trajectory error).
    pub fn set_motion(&mut self, motion: MotionModel) {
        self.motion = motion;
    }

    /// Sets how local frames are sampled at each activation.
    pub fn set_frame_mode(&mut self, mode: FrameMode) {
        self.frame_mode = mode;
    }

    /// Enables or disables multiplicity detection in snapshots.
    pub fn set_multiplicity_detection(&mut self, enabled: bool) {
        self.multiplicity_detection = enabled;
    }

    /// Selects the Look-phase observation pipeline. The default
    /// [`LookPath::Grid`] and the [`LookPath::BruteReference`] produce
    /// bit-identical results (pinned by the equivalence suite); the
    /// reference exists for differential testing and benchmarking.
    pub fn set_look_path(&mut self, path: LookPath) {
        self.look_path = path;
    }

    /// Enables the occlusion model (one of the paper's §8 future-work
    /// constraints, studied in its citations [3, 5]): robot `Y` is hidden
    /// from `X` when some third robot sits on the sight line `X → Y`
    /// strictly between them, within perpendicular distance `tolerance`
    /// (robots are points, so a positive body tolerance makes occlusion
    /// realizable). `None` disables (the paper's base model).
    ///
    /// # Panics
    ///
    /// Panics when a supplied tolerance is not positive and finite.
    pub fn set_occlusion(&mut self, tolerance: Option<f64>) {
        if let Some(t) = tolerance {
            assert!(
                t > 0.0 && t.is_finite(),
                "occlusion tolerance must be positive"
            );
        }
        self.occlusion_tolerance = tolerance;
    }

    /// Returns `true` when `target` (the position of robot `candidate`) is
    /// hidden from robot `observer` at `origin`, under the configured
    /// tolerance — the grid-backed occlusion test.
    ///
    /// Only robots within `tolerance` of the sight segment can block it, so
    /// stationary candidates come from the `O(1)` cells around the segment
    /// instead of a full scan; the motile few are checked directly. The
    /// observer and the candidate are excluded **by index**: a third robot
    /// exactly coincident with either is still examined (and then rejected
    /// by the strictly-between window on its own merits) rather than
    /// silently skipped the way the historical position-equality test did.
    fn is_occluded(
        &self,
        observer: usize,
        candidate: usize,
        origin: P,
        target: P,
        look: f64,
        occluders: &mut Vec<usize>,
    ) -> bool {
        let Some(tol) = self.occlusion_tolerance else {
            return false;
        };
        let line = target - origin;
        let len_sq = line.norm_sq();
        if len_sq == 0.0 {
            return false;
        }
        occluders.clear();
        self.grid
            .query_segment_cells(origin, target, tol, occluders);
        for &z_idx in occluders.iter() {
            if z_idx == observer || z_idx == candidate {
                continue;
            }
            let z = self.grid.position(z_idx).expect("occluder present in grid");
            if blocks_sight(origin, line, len_sq, z, tol) {
                return true;
            }
        }
        for &m in &self.motile {
            let m = m as usize;
            if m == observer || m == candidate {
                continue;
            }
            let z = self.states[m].position_at(look);
            if blocks_sight(origin, line, len_sq, z, tol) {
                return true;
            }
        }
        false
    }

    /// The historical occlusion test, kept verbatim for
    /// [`LookPath::BruteReference`]: scans every robot and skips the
    /// endpoints by exact position equality.
    fn is_occluded_reference(&self, origin: P, target: P, all: &[P]) -> bool {
        let Some(tol) = self.occlusion_tolerance else {
            return false;
        };
        let line = target - origin;
        let len_sq = line.norm_sq();
        if len_sq == 0.0 {
            return false;
        }
        for &z in all {
            if z == origin || z == target {
                continue;
            }
            if blocks_sight(origin, line, len_sq, z, tol) {
                return true;
            }
        }
        false
    }

    /// Number of robots.
    pub fn robot_count(&self) -> usize {
        self.states.len()
    }

    /// The common visibility radius `V` (per-robot radii, when set, are
    /// capped nowhere — `V` then only scales the quadratic motion-error
    /// bound and reporting).
    pub fn visibility(&self) -> f64 {
        self.visibility
    }

    /// Gives each robot its own visibility radius (paper §6.2: radii may
    /// differ, provided the initial *mutual* visibility graph is connected
    /// and the radii are within a small constant factor of each other —
    /// conditions the caller is responsible for; the engine simulates any
    /// radii faithfully). Perception becomes directional: robot `i` sees `j`
    /// iff `|ij| ≤ radii[i]`.
    ///
    /// The observation grid is re-celled to the largest radius so every
    /// per-robot range query stays a one-cell-deep probe.
    ///
    /// # Panics
    ///
    /// Panics when the count mismatches the robots or a radius is not
    /// positive and finite.
    pub fn set_visibility_radii(&mut self, radii: Vec<f64>) {
        assert_eq!(radii.len(), self.states.len(), "one radius per robot");
        assert!(
            radii.iter().all(|r| *r > 0.0 && r.is_finite()),
            "radii must be positive and finite"
        );
        self.visibility_radii = Some(radii);
        self.rebuild_grid();
    }

    /// The largest perception radius — the observation grid's cell edge.
    fn max_radius(&self) -> f64 {
        match &self.visibility_radii {
            Some(radii) => radii.iter().fold(f64::NEG_INFINITY, |a, &b| a.max(b)),
            None => self.visibility,
        }
    }

    /// Rebuilds the observation grid from scratch (radius changes re-cell
    /// it). Exactly the stationary robots are indexed; the dense extent is
    /// re-anchored on the current positions.
    fn rebuild_grid(&mut self) {
        let mut positions = Vec::new();
        self.positions_at_into(self.time, &mut positions);
        let mut grid = DynamicGrid::with_extent(self.states.len(), self.max_radius(), &positions);
        for (i, s) in self.states.iter().enumerate() {
            if !s.is_motile() {
                grid.insert(i, positions[i]);
            }
        }
        self.grid = grid;
    }

    /// The perception radius of one robot.
    pub fn radius_of(&self, robot: RobotId) -> f64 {
        match &self.visibility_radii {
            Some(radii) => radii[robot.index()],
            None => self.visibility,
        }
    }

    /// Current simulation time (time of the last processed event).
    pub fn time(&self) -> f64 {
        self.time
    }

    /// The configuration at time `t` (positions of all robots, interpolated
    /// for motile robots).
    pub fn configuration_at(&self, t: f64) -> Configuration<P> {
        Configuration::new(self.states.iter().map(|s| s.position_at(t)).collect())
    }

    /// The configuration at the current time.
    pub fn configuration(&self) -> Configuration<P> {
        self.configuration_at(self.time)
    }

    /// The position of one robot (by dense index) at time `t` — lets metrics
    /// code read positions in place instead of materializing a whole
    /// [`Configuration`] per event.
    pub fn position_of_at(&self, index: usize, t: f64) -> P {
        self.states[index].position_at(t)
    }

    /// Fills `out` (cleared first) with the position of every robot at time
    /// `t` — the buffer-reusing counterpart of [`Engine::configuration_at`]
    /// for per-event metrics code.
    pub fn positions_at_into(&self, t: f64, out: &mut Vec<P>) {
        out.clear();
        out.extend(self.states.iter().map(|s| s.position_at(t)));
    }

    /// Appends (after clearing) the dense indices of all robots currently in
    /// their Move phase, ascending. Together with the robot of a `MoveEnd`
    /// event, these are the only robots whose positions can have changed
    /// since the previous event — the *dirty set* the incremental monitors
    /// re-check. Served from the maintained side-list: `O(motile)`, not
    /// `O(n)`.
    pub fn collect_motile(&self, out: &mut Vec<usize>) {
        out.clear();
        out.extend(self.motile.iter().map(|&m| m as usize));
    }

    /// Current positions plus all pending (planned or in-flight) destinations
    /// — the vertex set of the paper's `CH_t`.
    pub fn positions_with_targets(&self) -> Vec<P> {
        let mut pts = Vec::new();
        self.positions_with_targets_into(&mut pts);
        pts
    }

    /// Fills `out` (cleared first) with current positions plus all pending
    /// destinations — the buffer-reusing counterpart of
    /// [`Engine::positions_with_targets`] for monitors on a sampling
    /// cadence.
    pub fn positions_with_targets_into(&self, out: &mut Vec<P>) {
        out.clear();
        out.extend(self.states.iter().map(|s| s.position_at(self.time)));
        out.extend(self.states.iter().filter_map(|s| s.pending_target()));
    }

    /// The schedule trace recorded so far.
    pub fn trace(&self) -> &ScheduleTrace {
        &self.trace
    }

    /// Completed activation cycles per robot.
    pub fn completed_cycles(&self) -> &[u64] {
        &self.completed_cycles
    }

    /// Reference to the scheduler (for reporting).
    pub fn scheduler(&self) -> &S {
        &self.scheduler
    }

    /// Reference to the algorithm (for reporting).
    pub fn algorithm(&self) -> &A {
        &self.algorithm
    }

    /// The timestamp of the next event [`Engine::step`] would process, or
    /// `None` when the schedule is exhausted and no phase is in flight.
    ///
    /// Staging the upcoming activation here is exactly what `step` does, so
    /// peeking never perturbs the event sequence — it lets a driver honour a
    /// simulated-time budget *before* committing to an event instead of
    /// noticing the overrun one event too late.
    pub fn peek_time(&mut self) -> Option<f64> {
        self.stage_next_activation();
        match (&self.staged, self.heap.peek()) {
            (Some(iv), Some(p)) => Some(iv.look.min(p.time)),
            (Some(iv), None) => Some(iv.look),
            (None, Some(p)) => Some(p.time),
            (None, None) => None,
        }
    }

    /// Keeps one upcoming activation staged so it can be ordered against
    /// pending phase events.
    fn stage_next_activation(&mut self) {
        if self.staged.is_none() {
            let ctx = ScheduleContext {
                robot_count: self.states.len(),
            };
            self.staged = self.scheduler.next_activation(&ctx);
        }
    }

    /// Processes the next event; `None` when the schedule is exhausted and
    /// all in-flight phases have completed.
    pub fn step(&mut self) -> Option<EngineEvent> {
        self.stage_next_activation();
        let take_staged = match (&self.staged, self.heap.peek()) {
            (Some(iv), Some(p)) => iv.look <= p.time,
            (Some(_), None) => true,
            (None, Some(_)) => false,
            (None, None) => return None,
        };
        if take_staged {
            let iv = self.staged.take().expect("staged activation");
            self.dispatch_look(iv)
        } else {
            let p = self.heap.pop().expect("pending event");
            self.time = p.time;
            match p.kind {
                EngineEventKind::MoveStart => self.dispatch_move_start(p),
                EngineEventKind::MoveEnd => self.dispatch_move_end(p),
                EngineEventKind::Look => unreachable!("Looks are never heaped"),
            }
        }
    }

    fn dispatch_look(&mut self, iv: ActivationInterval) -> Option<EngineEvent> {
        assert!(
            iv.look >= self.time - 1e-9,
            "scheduler emitted a Look in the past ({} < {})",
            iv.look,
            self.time
        );
        self.time = self.time.max(iv.look);
        let robot = iv.robot;
        assert!(
            self.states[robot.index()].is_idle(),
            "robot {robot} activated while not idle (scheduler bug)"
        );
        self.trace.push(iv);

        let here = self.states[robot.index()].position_at(iv.look);
        // Perception pipeline: true relative position → (occlusion) →
        // local frame → symmetric distortion → distance error.
        let frame = P::sample_frame(self.frame_mode, &mut self.rng);
        let distortion = self.perception.sample_distortion(&mut self.rng);
        let local_target = match self.look_path {
            LookPath::Grid => self.observe_grid(robot, here, iv.look, &frame, &distortion),
            LookPath::BruteReference => {
                self.observe_brute(robot, here, iv.look, &frame, &distortion)
            }
        };
        // Motion executes in the robot's own (distorted) coordinate system:
        // pull the intended displacement back through the inverse distortion
        // and frame.
        let global_delta = frame.to_global(P::undistort(local_target, &distortion));
        let target = here + global_delta;
        self.states[robot.index()] = RobotState::Computing {
            position: here,
            target,
            move_start: iv.move_start,
            move_end: iv.end,
        };
        self.seq += 1;
        self.heap.push(Pending {
            time: iv.move_start,
            seq: self.seq,
            robot,
            kind: EngineEventKind::MoveStart,
        });
        Some(EngineEvent {
            time: iv.look,
            robot,
            kind: EngineEventKind::Look,
        })
    }

    /// The grid-backed observation pipeline: `O(deg + motile)` candidate
    /// gathering, cell-walk occlusion, pooled buffers — and a result
    /// bit-identical to [`Engine::observe_brute`].
    fn observe_grid(
        &mut self,
        robot: RobotId,
        here: P,
        look: f64,
        frame: &P::AmbientFrame,
        distortion: &Distortion,
    ) -> P {
        let idx = robot.index();
        let radius = self.radius_of(robot);
        let mut scratch = std::mem::take(&mut self.scratch);
        // Stationary robots in range come from the grid (the observer
        // itself included — skipped below by index); the motile few are
        // range-checked at their interpolated positions.
        scratch.candidates.clear();
        self.grid
            .query_within(here, radius, &mut scratch.candidates);
        for &m in &self.motile {
            let m = m as usize;
            let pos = self.states[m].position_at(look);
            if (pos - here).norm() <= radius {
                scratch.candidates.push(m);
            }
        }
        // Ascending robot order = the historical scan order: the per-robot
        // RNG draws below happen in exactly the old sequence.
        scratch.candidates.sort_unstable();
        scratch.snapshot.clear();
        for k in 0..scratch.candidates.len() {
            let j = scratch.candidates[k];
            if j == idx {
                continue;
            }
            let pos = self.states[j].position_at(look);
            if self.is_occluded(idx, j, here, pos, look, &mut scratch.occluders) {
                continue;
            }
            let rel = pos - here;
            let local = frame.to_local(rel);
            let distorted = P::distort(local, distortion);
            let factor = self.perception.sample_distance_factor(&mut self.rng);
            scratch.snapshot.push(distorted * factor);
        }
        if !self.multiplicity_detection {
            scratch.snapshot.dedup_multiplicity(1e-12);
        }
        let local_target = self.algorithm.compute(&scratch.snapshot);
        self.scratch = scratch;
        local_target
    }

    /// The historical observation loop, kept verbatim (allocations and all)
    /// as the differential-testing reference and bench baseline.
    fn observe_brute(
        &mut self,
        robot: RobotId,
        here: P,
        look: f64,
        frame: &P::AmbientFrame,
        distortion: &Distortion,
    ) -> P {
        let all_positions: Vec<P> = self.states.iter().map(|s| s.position_at(look)).collect();
        let mut observed: Vec<P> = Vec::new();
        for (j, &pos) in all_positions.iter().enumerate() {
            if j == robot.index() {
                continue;
            }
            let rel = pos - here;
            if rel.norm() <= self.radius_of(robot)
                && !self.is_occluded_reference(here, pos, &all_positions)
            {
                let local = frame.to_local(rel);
                let distorted = P::distort(local, distortion);
                let factor = self.perception.sample_distance_factor(&mut self.rng);
                observed.push(distorted * factor);
            }
        }
        let mut snapshot = Snapshot::from_positions(observed);
        if !self.multiplicity_detection {
            snapshot = snapshot.without_multiplicity(1e-12);
        }
        self.algorithm.compute(&snapshot)
    }

    fn dispatch_move_start(&mut self, p: Pending) -> Option<EngineEvent> {
        let idx = p.robot.index();
        let (position, target, move_end) = match self.states[idx] {
            RobotState::Computing {
                position,
                target,
                move_end,
                ..
            } => (position, target, move_end),
            ref other => unreachable!("MoveStart in state {other:?}"),
        };
        let realized = self
            .motion
            .resolve(position, target, self.visibility, &mut self.rng);
        // Grid lifecycle: the robot is motile from here to its MoveEnd.
        self.grid.remove(idx);
        let slot = self
            .motile
            .binary_search(&(idx as u32))
            .expect_err("robot cannot already be motile at MoveStart");
        self.motile.insert(slot, idx as u32);
        self.states[idx] = RobotState::Moving {
            from: position,
            to: realized,
            t0: p.time,
            t1: move_end,
        };
        self.seq += 1;
        self.heap.push(Pending {
            time: move_end,
            seq: self.seq,
            robot: p.robot,
            kind: EngineEventKind::MoveEnd,
        });
        Some(EngineEvent {
            time: p.time,
            robot: p.robot,
            kind: EngineEventKind::MoveStart,
        })
    }

    fn dispatch_move_end(&mut self, p: Pending) -> Option<EngineEvent> {
        let idx = p.robot.index();
        let final_pos = match self.states[idx] {
            RobotState::Moving { to, .. } => to,
            ref other => unreachable!("MoveEnd in state {other:?}"),
        };
        // Grid lifecycle: stationary again, indexed at the realized
        // destination.
        let slot = self
            .motile
            .binary_search(&(idx as u32))
            .expect("motile robot is side-listed");
        self.motile.remove(slot);
        self.grid.insert(idx, final_pos);
        self.states[idx] = RobotState::Idle {
            position: final_pos,
        };
        self.completed_cycles[idx] += 1;
        Some(EngineEvent {
            time: p.time,
            robot: p.robot,
            kind: EngineEventKind::MoveEnd,
        })
    }
}

/// The strictly-between occlusion predicate for one potential blocker `z` on
/// the sight line `origin → origin + line`: `z`'s projection must fall
/// strictly inside the segment and its perpendicular foot within `tol`.
/// Shared verbatim by both Look paths, so their booleans cannot drift.
#[inline]
fn blocks_sight<P: Ambient>(origin: P, line: P, len_sq: f64, z: P, tol: f64) -> bool {
    let t = (z - origin).dot(line) / len_sq;
    if t <= 1e-9 || t >= 1.0 - 1e-9 {
        return false; // not strictly between
    }
    let foot = origin + line * t;
    foot.dist(z) <= tol
}

impl<P: Ambient, A: std::fmt::Debug, S: std::fmt::Debug> std::fmt::Debug for Engine<P, A, S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Engine")
            .field("robots", &self.states.len())
            .field("time", &self.time)
            .field("visibility", &self.visibility)
            .field("algorithm", &self.algorithm)
            .field("scheduler", &self.scheduler)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cohesion_geometry::Vec2;
    use cohesion_model::NilAlgorithm;
    use cohesion_scheduler::FSyncScheduler;

    fn two_robots() -> Configuration {
        Configuration::new(vec![Vec2::ZERO, Vec2::new(1.0, 0.0)])
    }

    #[test]
    fn nil_algorithm_never_moves() {
        let mut engine = Engine::new(&two_robots(), 1.0, NilAlgorithm, FSyncScheduler::new(), 1);
        for _ in 0..30 {
            engine.step().unwrap();
        }
        let c = engine.configuration();
        assert_eq!(c.position(RobotId(0)), Vec2::ZERO);
        assert_eq!(c.position(RobotId(1)), Vec2::new(1.0, 0.0));
        assert!(engine.completed_cycles().iter().all(|&c| c >= 4));
    }

    #[test]
    fn events_are_time_ordered() {
        let mut engine = Engine::new(&two_robots(), 1.0, NilAlgorithm, FSyncScheduler::new(), 1);
        let mut last = f64::NEG_INFINITY;
        for _ in 0..50 {
            let ev = engine.step().unwrap();
            assert!(
                ev.time >= last - 1e-12,
                "event at {} after {}",
                ev.time,
                last
            );
            last = ev.time;
        }
    }

    #[test]
    fn trace_is_recorded() {
        let mut engine = Engine::new(&two_robots(), 1.0, NilAlgorithm, FSyncScheduler::new(), 1);
        for _ in 0..30 {
            engine.step().unwrap();
        }
        assert_eq!(
            engine.trace().len(),
            10,
            "30 events = 10 full cycles of 3 events"
        );
        cohesion_scheduler::validate::validate_fsync(engine.trace(), 2).unwrap();
    }

    #[test]
    fn occlusion_hides_robots_behind_others() {
        use cohesion_scheduler::ScriptedScheduler;
        // Three collinear robots: the middle one blocks the far one.
        let config = Configuration::new(vec![Vec2::ZERO, Vec2::new(0.4, 0.0), Vec2::new(0.8, 0.0)]);
        let run = |occlusion: Option<f64>, path: LookPath| {
            let script = ScriptedScheduler::new(
                "one-look",
                vec![ActivationInterval::new(RobotId(0), 0.0, 0.3, 0.6)],
            );
            let mut engine = Engine::new(&config, 1.0, CountingAlgorithm, script, 1);
            engine.set_frame_mode(cohesion_model::FrameMode::Aligned);
            engine.set_occlusion(occlusion);
            engine.set_look_path(path);
            while engine.step().is_some() {}
            engine.configuration().position(RobotId(0)).x
        };
        for path in [LookPath::Grid, LookPath::BruteReference] {
            // The counting algorithm moves by 0.001 per visible robot.
            assert!(
                (run(None, path) - 0.002).abs() < 1e-12,
                "no occlusion: sees both ({path:?})"
            );
            assert!(
                (run(Some(0.01), path) - 0.001).abs() < 1e-12,
                "occlusion: middle hides far ({path:?})"
            );
        }
    }

    #[test]
    fn coincident_occluders_are_not_skipped() {
        use cohesion_scheduler::ScriptedScheduler;
        // Regression for the index-based endpoint exclusion: three collinear
        // robots where two coincide. The blocking pair sits at 0.4 — exactly
        // on the observer's sight line to the far robot at 0.8. Each of the
        // coincident twins must stay visible (a robot exactly at the sight
        // line's endpoint is not *strictly between*, whichever twin is the
        // candidate), while the far robot must be occluded by both.
        let config = Configuration::new(vec![
            Vec2::ZERO,
            Vec2::new(0.4, 0.0),
            Vec2::new(0.4, 0.0),
            Vec2::new(0.8, 0.0),
        ]);
        let run = |path: LookPath| {
            let script = ScriptedScheduler::new(
                "one-look",
                vec![ActivationInterval::new(RobotId(0), 0.0, 0.3, 0.6)],
            );
            let mut engine = Engine::new(&config, 1.0, CountingAlgorithm, script, 1);
            engine.set_frame_mode(cohesion_model::FrameMode::Aligned);
            engine.set_occlusion(Some(0.01));
            engine.set_multiplicity_detection(true);
            engine.set_look_path(path);
            while engine.step().is_some() {}
            engine.configuration().position(RobotId(0)).x
        };
        for path in [LookPath::Grid, LookPath::BruteReference] {
            // Both twins visible (0.002), far robot hidden behind them.
            assert!(
                (run(path) - 0.002).abs() < 1e-12,
                "coincident twins visible, far robot occluded ({path:?})"
            );
        }
    }

    /// Moves 0.001·(number of visible robots) along +x; test-only probe.
    #[derive(Debug)]
    struct CountingAlgorithm;
    impl Algorithm<Vec2> for CountingAlgorithm {
        fn compute(&self, snapshot: &Snapshot<Vec2>) -> Vec2 {
            Vec2::new(0.001 * snapshot.len() as f64, 0.0)
        }
        fn name(&self) -> &str {
            "counting"
        }
    }

    #[test]
    fn heterogeneous_radii_are_directional() {
        use cohesion_scheduler::ScriptedScheduler;
        // Robot 0 has a long radius and sees robot 1; robot 1 has a short
        // radius and sees nobody: activating each once must move only 0.
        let config = Configuration::new(vec![Vec2::ZERO, Vec2::new(1.0, 0.0)]);
        let script = ScriptedScheduler::new(
            "hetero",
            vec![
                ActivationInterval::new(RobotId(0), 0.0, 0.3, 0.6),
                ActivationInterval::new(RobotId(1), 1.0, 1.3, 1.6),
            ],
        );
        let mut engine = Engine::new(
            &config,
            1.0,
            cohesion_core_stub::StepTowardFurthest,
            script,
            1,
        );
        engine.set_visibility_radii(vec![1.5, 0.5]);
        assert_eq!(engine.radius_of(RobotId(0)), 1.5);
        while engine.step().is_some() {}
        let c = engine.configuration();
        assert!(
            c.position(RobotId(0)).x > 0.0,
            "robot 0 saw its neighbour and moved"
        );
        assert_eq!(
            c.position(RobotId(1)),
            Vec2::new(1.0, 0.0),
            "robot 1 saw nobody"
        );
    }

    /// Minimal local algorithm for the heterogeneous-radii test (avoids a
    /// dev-dependency on cohesion-core).
    mod cohesion_core_stub {
        use super::*;
        #[derive(Debug)]
        pub struct StepTowardFurthest;
        impl Algorithm<Vec2> for StepTowardFurthest {
            fn compute(&self, snapshot: &Snapshot<Vec2>) -> Vec2 {
                snapshot
                    .positions()
                    .max_by(|a, b| a.norm().partial_cmp(&b.norm()).expect("finite"))
                    .map(|p| p * 0.1)
                    .unwrap_or(Vec2::ZERO)
            }
            fn name(&self) -> &str {
                "step-toward-furthest"
            }
        }
    }

    #[test]
    fn scripted_schedule_terminates() {
        use cohesion_scheduler::ScriptedScheduler;
        let script = ScriptedScheduler::new(
            "one-shot",
            vec![ActivationInterval::new(RobotId(0), 0.0, 0.5, 1.0)],
        );
        let mut engine = Engine::new(&two_robots(), 1.0, NilAlgorithm, script, 1);
        let mut events = 0;
        while engine.step().is_some() {
            events += 1;
        }
        assert_eq!(events, 3, "Look, MoveStart, MoveEnd");
    }

    #[test]
    fn buffered_position_accessors_match_allocating_ones() {
        let mut engine = Engine::new(&two_robots(), 1.0, NilAlgorithm, FSyncScheduler::new(), 1);
        for _ in 0..7 {
            engine.step().unwrap();
        }
        let t = engine.time();
        let mut buf = Vec::new();
        engine.positions_at_into(t, &mut buf);
        assert_eq!(buf, engine.configuration_at(t).positions().to_vec());
        engine.positions_with_targets_into(&mut buf);
        assert_eq!(buf, engine.positions_with_targets());
    }

    #[test]
    fn grid_and_side_list_track_the_move_phase() {
        // The lifecycle invariant after every event: a robot is in the grid
        // iff it is not in its Move phase, the side-list is exactly the
        // complement (ascending), and grid positions match the states.
        let config = cohesion_workloads_stub(9);
        let mut engine = Engine::new(
            &config,
            1.0,
            CountingAlgorithm,
            cohesion_scheduler::KAsyncScheduler::new(3, 5),
            7,
        );
        let mut motile = Vec::new();
        for _ in 0..300 {
            let Some(_) = engine.step() else { break };
            engine.collect_motile(&mut motile);
            let scan: Vec<usize> = engine
                .states
                .iter()
                .enumerate()
                .filter(|(_, s)| s.is_motile())
                .map(|(i, _)| i)
                .collect();
            assert_eq!(motile, scan, "side-list diverged from a state scan");
            for (i, s) in engine.states.iter().enumerate() {
                if s.is_motile() {
                    assert!(!engine.grid.contains(i), "motile robot {i} in grid");
                } else {
                    assert_eq!(
                        engine.grid.position(i),
                        Some(s.position_at(engine.time())),
                        "grid position of stationary robot {i} is stale"
                    );
                }
            }
        }
    }

    /// A small connected line configuration (inline to avoid a circular
    /// dev-dependency on cohesion-workloads).
    fn cohesion_workloads_stub(n: usize) -> Configuration {
        Configuration::new((0..n).map(|i| Vec2::new(i as f64 * 0.7, 0.0)).collect())
    }
}
