//! The event loop: dispatching activations, taking snapshots, resolving
//! motion.

use crate::state::RobotState;
use cohesion_model::frame::{Ambient, Frame, FrameMode};
use cohesion_model::{Algorithm, Configuration, MotionModel, PerceptionModel, RobotId, Snapshot};
use cohesion_scheduler::{ActivationInterval, ScheduleContext, ScheduleTrace, Scheduler};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::collections::BinaryHeap;

/// What happened at an engine step.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum EngineEventKind {
    /// A robot performed its instantaneous Look (and, in our execution
    /// model, determined its destination from the snapshot).
    Look,
    /// A robot's Move phase began; rigidity and motion error were resolved.
    MoveStart,
    /// A robot's Move phase ended; the robot is idle again.
    MoveEnd,
}

/// A timed engine event, reported back to the driver after processing.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EngineEvent {
    /// Simulation time of the event.
    pub time: f64,
    /// Which robot.
    pub robot: RobotId,
    /// What happened.
    pub kind: EngineEventKind,
}

/// Internal heap entry (min-heap by time, stable by sequence number).
#[derive(Debug, Clone, Copy, PartialEq)]
struct Pending {
    time: f64,
    seq: u64,
    robot: RobotId,
    kind: EngineEventKind,
}

impl Eq for Pending {}

impl Ord for Pending {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reverse for a min-heap; tie-break on sequence for determinism.
        other
            .time
            .partial_cmp(&self.time)
            .expect("finite event times")
            .then(other.seq.cmp(&self.seq))
    }
}

impl PartialOrd for Pending {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// The discrete-event simulator for one robot system.
///
/// Drive it with [`Engine::step`] until it returns `None` (scripted schedule
/// exhausted) or until an external budget is hit; the
/// [`SimulationBuilder`](crate::runner::SimulationBuilder) wraps this loop
/// with metrics and convergence/cohesion checks.
pub struct Engine<P: Ambient, A, S> {
    states: Vec<RobotState<P>>,
    visibility: f64,
    visibility_radii: Option<Vec<f64>>,
    algorithm: A,
    scheduler: S,
    perception: PerceptionModel,
    motion: MotionModel,
    frame_mode: FrameMode,
    multiplicity_detection: bool,
    occlusion_tolerance: Option<f64>,
    rng: SmallRng,
    time: f64,
    seq: u64,
    heap: BinaryHeap<Pending>,
    staged: Option<ActivationInterval>,
    trace: ScheduleTrace,
    completed_cycles: Vec<u64>,
}

impl<P, A, S> Engine<P, A, S>
where
    P: Ambient,
    A: Algorithm<P>,
    S: Scheduler,
{
    /// Creates an engine over an initial configuration.
    ///
    /// # Panics
    ///
    /// Panics when the configuration is empty or `visibility ≤ 0`.
    pub fn new(
        initial: &Configuration<P>,
        visibility: f64,
        algorithm: A,
        scheduler: S,
        seed: u64,
    ) -> Self {
        assert!(!initial.is_empty(), "need at least one robot");
        assert!(visibility > 0.0, "visibility radius must be positive");
        Engine {
            states: initial
                .positions()
                .iter()
                .map(|&position| RobotState::Idle { position })
                .collect(),
            visibility,
            visibility_radii: None,
            algorithm,
            scheduler,
            perception: PerceptionModel::EXACT,
            motion: MotionModel::RIGID,
            frame_mode: FrameMode::RandomOrtho,
            multiplicity_detection: false,
            occlusion_tolerance: None,
            rng: SmallRng::seed_from_u64(seed),
            time: 0.0,
            seq: 0,
            heap: BinaryHeap::new(),
            staged: None,
            trace: ScheduleTrace::new(),
            completed_cycles: vec![0; initial.len()],
        }
    }

    /// Sets the perception-error model.
    pub fn set_perception(&mut self, perception: PerceptionModel) {
        self.perception = perception;
    }

    /// Sets the motion model (rigidity + trajectory error).
    pub fn set_motion(&mut self, motion: MotionModel) {
        self.motion = motion;
    }

    /// Sets how local frames are sampled at each activation.
    pub fn set_frame_mode(&mut self, mode: FrameMode) {
        self.frame_mode = mode;
    }

    /// Enables or disables multiplicity detection in snapshots.
    pub fn set_multiplicity_detection(&mut self, enabled: bool) {
        self.multiplicity_detection = enabled;
    }

    /// Enables the occlusion model (one of the paper's §8 future-work
    /// constraints, studied in its citations [3, 5]): robot `Y` is hidden
    /// from `X` when some third robot sits on the sight line `X → Y`
    /// strictly between them, within perpendicular distance `tolerance`
    /// (robots are points, so a positive body tolerance makes occlusion
    /// realizable). `None` disables (the paper's base model).
    ///
    /// # Panics
    ///
    /// Panics when a supplied tolerance is not positive and finite.
    pub fn set_occlusion(&mut self, tolerance: Option<f64>) {
        if let Some(t) = tolerance {
            assert!(
                t > 0.0 && t.is_finite(),
                "occlusion tolerance must be positive"
            );
        }
        self.occlusion_tolerance = tolerance;
    }

    /// Returns `true` when `target` is hidden from `origin` by any robot in
    /// `all` (positions at the Look time), under the configured tolerance.
    fn is_occluded(&self, origin: P, target: P, all: &[P]) -> bool {
        let Some(tol) = self.occlusion_tolerance else {
            return false;
        };
        let line = target - origin;
        let len_sq = line.norm_sq();
        if len_sq == 0.0 {
            return false;
        }
        for &z in all {
            if z == origin || z == target {
                continue;
            }
            let t = (z - origin).dot(line) / len_sq;
            if t <= 1e-9 || t >= 1.0 - 1e-9 {
                continue; // not strictly between
            }
            let foot = origin + line * t;
            if foot.dist(z) <= tol {
                return true;
            }
        }
        false
    }

    /// Number of robots.
    pub fn robot_count(&self) -> usize {
        self.states.len()
    }

    /// The common visibility radius `V` (per-robot radii, when set, are
    /// capped nowhere — `V` then only scales the quadratic motion-error
    /// bound and reporting).
    pub fn visibility(&self) -> f64 {
        self.visibility
    }

    /// Gives each robot its own visibility radius (paper §6.2: radii may
    /// differ, provided the initial *mutual* visibility graph is connected
    /// and the radii are within a small constant factor of each other —
    /// conditions the caller is responsible for; the engine simulates any
    /// radii faithfully). Perception becomes directional: robot `i` sees `j`
    /// iff `|ij| ≤ radii[i]`.
    ///
    /// # Panics
    ///
    /// Panics when the count mismatches the robots or a radius is not
    /// positive and finite.
    pub fn set_visibility_radii(&mut self, radii: Vec<f64>) {
        assert_eq!(radii.len(), self.states.len(), "one radius per robot");
        assert!(
            radii.iter().all(|r| *r > 0.0 && r.is_finite()),
            "radii must be positive and finite"
        );
        self.visibility_radii = Some(radii);
    }

    /// The perception radius of one robot.
    pub fn radius_of(&self, robot: RobotId) -> f64 {
        match &self.visibility_radii {
            Some(radii) => radii[robot.index()],
            None => self.visibility,
        }
    }

    /// Current simulation time (time of the last processed event).
    pub fn time(&self) -> f64 {
        self.time
    }

    /// The configuration at time `t` (positions of all robots, interpolated
    /// for motile robots).
    pub fn configuration_at(&self, t: f64) -> Configuration<P> {
        Configuration::new(self.states.iter().map(|s| s.position_at(t)).collect())
    }

    /// The configuration at the current time.
    pub fn configuration(&self) -> Configuration<P> {
        self.configuration_at(self.time)
    }

    /// The position of one robot (by dense index) at time `t` — lets metrics
    /// code read positions in place instead of materializing a whole
    /// [`Configuration`] per event.
    pub fn position_of_at(&self, index: usize, t: f64) -> P {
        self.states[index].position_at(t)
    }

    /// Appends (after clearing) the dense indices of all robots currently in
    /// their Move phase, ascending. Together with the robot of a `MoveEnd`
    /// event, these are the only robots whose positions can have changed
    /// since the previous event — the *dirty set* the incremental monitors
    /// re-check.
    pub fn collect_motile(&self, out: &mut Vec<usize>) {
        out.clear();
        for (i, s) in self.states.iter().enumerate() {
            if s.is_motile() {
                out.push(i);
            }
        }
    }

    /// Current positions plus all pending (planned or in-flight) destinations
    /// — the vertex set of the paper's `CH_t`.
    pub fn positions_with_targets(&self) -> Vec<P> {
        let mut pts: Vec<P> = self
            .states
            .iter()
            .map(|s| s.position_at(self.time))
            .collect();
        pts.extend(self.states.iter().filter_map(|s| s.pending_target()));
        pts
    }

    /// The schedule trace recorded so far.
    pub fn trace(&self) -> &ScheduleTrace {
        &self.trace
    }

    /// Completed activation cycles per robot.
    pub fn completed_cycles(&self) -> &[u64] {
        &self.completed_cycles
    }

    /// Reference to the scheduler (for reporting).
    pub fn scheduler(&self) -> &S {
        &self.scheduler
    }

    /// Reference to the algorithm (for reporting).
    pub fn algorithm(&self) -> &A {
        &self.algorithm
    }

    /// Processes the next event; `None` when the schedule is exhausted and
    /// all in-flight phases have completed.
    pub fn step(&mut self) -> Option<EngineEvent> {
        // Keep one upcoming activation staged so we can order it against
        // pending phase events.
        if self.staged.is_none() {
            let ctx = ScheduleContext {
                robot_count: self.states.len(),
            };
            self.staged = self.scheduler.next_activation(&ctx);
        }
        let take_staged = match (&self.staged, self.heap.peek()) {
            (Some(iv), Some(p)) => iv.look <= p.time,
            (Some(_), None) => true,
            (None, Some(_)) => false,
            (None, None) => return None,
        };
        if take_staged {
            let iv = self.staged.take().expect("staged activation");
            self.dispatch_look(iv)
        } else {
            let p = self.heap.pop().expect("pending event");
            self.time = p.time;
            match p.kind {
                EngineEventKind::MoveStart => self.dispatch_move_start(p),
                EngineEventKind::MoveEnd => self.dispatch_move_end(p),
                EngineEventKind::Look => unreachable!("Looks are never heaped"),
            }
        }
    }

    fn dispatch_look(&mut self, iv: ActivationInterval) -> Option<EngineEvent> {
        assert!(
            iv.look >= self.time - 1e-9,
            "scheduler emitted a Look in the past ({} < {})",
            iv.look,
            self.time
        );
        self.time = self.time.max(iv.look);
        let robot = iv.robot;
        assert!(
            self.states[robot.index()].is_idle(),
            "robot {robot} activated while not idle (scheduler bug)"
        );
        self.trace.push(iv);

        let here = self.states[robot.index()].position_at(iv.look);
        // Perception pipeline: true relative position → (occlusion) →
        // local frame → symmetric distortion → distance error.
        let frame = P::sample_frame(self.frame_mode, &mut self.rng);
        let distortion = self.perception.sample_distortion(&mut self.rng);
        let all_positions: Vec<P> = self.states.iter().map(|s| s.position_at(iv.look)).collect();
        let mut observed: Vec<P> = Vec::new();
        for (j, &pos) in all_positions.iter().enumerate() {
            if j == robot.index() {
                continue;
            }
            let rel = pos - here;
            if rel.norm() <= self.radius_of(robot) && !self.is_occluded(here, pos, &all_positions) {
                let local = frame.to_local(rel);
                let distorted = P::distort(local, &distortion);
                let factor = self.perception.sample_distance_factor(&mut self.rng);
                observed.push(distorted * factor);
            }
        }
        let mut snapshot = Snapshot::from_positions(observed);
        if !self.multiplicity_detection {
            snapshot = snapshot.without_multiplicity(1e-12);
        }
        let local_target = self.algorithm.compute(&snapshot);
        // Motion executes in the robot's own (distorted) coordinate system:
        // pull the intended displacement back through the inverse distortion
        // and frame.
        let global_delta = frame.to_global(P::undistort(local_target, &distortion));
        let target = here + global_delta;
        self.states[robot.index()] = RobotState::Computing {
            position: here,
            target,
            move_start: iv.move_start,
            move_end: iv.end,
        };
        self.seq += 1;
        self.heap.push(Pending {
            time: iv.move_start,
            seq: self.seq,
            robot,
            kind: EngineEventKind::MoveStart,
        });
        Some(EngineEvent {
            time: iv.look,
            robot,
            kind: EngineEventKind::Look,
        })
    }

    fn dispatch_move_start(&mut self, p: Pending) -> Option<EngineEvent> {
        let idx = p.robot.index();
        let (position, target, move_end) = match self.states[idx] {
            RobotState::Computing {
                position,
                target,
                move_end,
                ..
            } => (position, target, move_end),
            ref other => unreachable!("MoveStart in state {other:?}"),
        };
        let realized = self
            .motion
            .resolve(position, target, self.visibility, &mut self.rng);
        self.states[idx] = RobotState::Moving {
            from: position,
            to: realized,
            t0: p.time,
            t1: move_end,
        };
        self.seq += 1;
        self.heap.push(Pending {
            time: move_end,
            seq: self.seq,
            robot: p.robot,
            kind: EngineEventKind::MoveEnd,
        });
        Some(EngineEvent {
            time: p.time,
            robot: p.robot,
            kind: EngineEventKind::MoveStart,
        })
    }

    fn dispatch_move_end(&mut self, p: Pending) -> Option<EngineEvent> {
        let idx = p.robot.index();
        let final_pos = match self.states[idx] {
            RobotState::Moving { to, .. } => to,
            ref other => unreachable!("MoveEnd in state {other:?}"),
        };
        self.states[idx] = RobotState::Idle {
            position: final_pos,
        };
        self.completed_cycles[idx] += 1;
        Some(EngineEvent {
            time: p.time,
            robot: p.robot,
            kind: EngineEventKind::MoveEnd,
        })
    }
}

impl<P: Ambient, A: std::fmt::Debug, S: std::fmt::Debug> std::fmt::Debug for Engine<P, A, S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Engine")
            .field("robots", &self.states.len())
            .field("time", &self.time)
            .field("visibility", &self.visibility)
            .field("algorithm", &self.algorithm)
            .field("scheduler", &self.scheduler)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cohesion_geometry::Vec2;
    use cohesion_model::NilAlgorithm;
    use cohesion_scheduler::FSyncScheduler;

    fn two_robots() -> Configuration {
        Configuration::new(vec![Vec2::ZERO, Vec2::new(1.0, 0.0)])
    }

    #[test]
    fn nil_algorithm_never_moves() {
        let mut engine = Engine::new(&two_robots(), 1.0, NilAlgorithm, FSyncScheduler::new(), 1);
        for _ in 0..30 {
            engine.step().unwrap();
        }
        let c = engine.configuration();
        assert_eq!(c.position(RobotId(0)), Vec2::ZERO);
        assert_eq!(c.position(RobotId(1)), Vec2::new(1.0, 0.0));
        assert!(engine.completed_cycles().iter().all(|&c| c >= 4));
    }

    #[test]
    fn events_are_time_ordered() {
        let mut engine = Engine::new(&two_robots(), 1.0, NilAlgorithm, FSyncScheduler::new(), 1);
        let mut last = f64::NEG_INFINITY;
        for _ in 0..50 {
            let ev = engine.step().unwrap();
            assert!(
                ev.time >= last - 1e-12,
                "event at {} after {}",
                ev.time,
                last
            );
            last = ev.time;
        }
    }

    #[test]
    fn trace_is_recorded() {
        let mut engine = Engine::new(&two_robots(), 1.0, NilAlgorithm, FSyncScheduler::new(), 1);
        for _ in 0..30 {
            engine.step().unwrap();
        }
        assert_eq!(
            engine.trace().len(),
            10,
            "30 events = 10 full cycles of 3 events"
        );
        cohesion_scheduler::validate::validate_fsync(engine.trace(), 2).unwrap();
    }

    #[test]
    fn occlusion_hides_robots_behind_others() {
        use cohesion_scheduler::ScriptedScheduler;
        // Three collinear robots: the middle one blocks the far one.
        let config = Configuration::new(vec![Vec2::ZERO, Vec2::new(0.4, 0.0), Vec2::new(0.8, 0.0)]);
        let run = |occlusion: Option<f64>| {
            let script = ScriptedScheduler::new(
                "one-look",
                vec![ActivationInterval::new(RobotId(0), 0.0, 0.3, 0.6)],
            );
            let mut engine = Engine::new(&config, 1.0, CountingAlgorithm, script, 1);
            engine.set_frame_mode(cohesion_model::FrameMode::Aligned);
            engine.set_occlusion(occlusion);
            while engine.step().is_some() {}
            engine.configuration().position(RobotId(0)).x
        };
        // The counting algorithm moves by 0.001 per visible robot.
        assert!((run(None) - 0.002).abs() < 1e-12, "no occlusion: sees both");
        assert!(
            (run(Some(0.01)) - 0.001).abs() < 1e-12,
            "occlusion: middle hides far"
        );
    }

    /// Moves 0.001·(number of visible robots) along +x; test-only probe.
    #[derive(Debug)]
    struct CountingAlgorithm;
    impl Algorithm<Vec2> for CountingAlgorithm {
        fn compute(&self, snapshot: &Snapshot<Vec2>) -> Vec2 {
            Vec2::new(0.001 * snapshot.len() as f64, 0.0)
        }
        fn name(&self) -> &str {
            "counting"
        }
    }

    #[test]
    fn heterogeneous_radii_are_directional() {
        use cohesion_scheduler::ScriptedScheduler;
        // Robot 0 has a long radius and sees robot 1; robot 1 has a short
        // radius and sees nobody: activating each once must move only 0.
        let config = Configuration::new(vec![Vec2::ZERO, Vec2::new(1.0, 0.0)]);
        let script = ScriptedScheduler::new(
            "hetero",
            vec![
                ActivationInterval::new(RobotId(0), 0.0, 0.3, 0.6),
                ActivationInterval::new(RobotId(1), 1.0, 1.3, 1.6),
            ],
        );
        let mut engine = Engine::new(
            &config,
            1.0,
            cohesion_core_stub::StepTowardFurthest,
            script,
            1,
        );
        engine.set_visibility_radii(vec![1.5, 0.5]);
        assert_eq!(engine.radius_of(RobotId(0)), 1.5);
        while engine.step().is_some() {}
        let c = engine.configuration();
        assert!(
            c.position(RobotId(0)).x > 0.0,
            "robot 0 saw its neighbour and moved"
        );
        assert_eq!(
            c.position(RobotId(1)),
            Vec2::new(1.0, 0.0),
            "robot 1 saw nobody"
        );
    }

    /// Minimal local algorithm for the heterogeneous-radii test (avoids a
    /// dev-dependency on cohesion-core).
    mod cohesion_core_stub {
        use super::*;
        #[derive(Debug)]
        pub struct StepTowardFurthest;
        impl Algorithm<Vec2> for StepTowardFurthest {
            fn compute(&self, snapshot: &Snapshot<Vec2>) -> Vec2 {
                snapshot
                    .positions()
                    .max_by(|a, b| a.norm().partial_cmp(&b.norm()).expect("finite"))
                    .map(|p| p * 0.1)
                    .unwrap_or(Vec2::ZERO)
            }
            fn name(&self) -> &str {
                "step-toward-furthest"
            }
        }
    }

    #[test]
    fn scripted_schedule_terminates() {
        use cohesion_scheduler::ScriptedScheduler;
        let script = ScriptedScheduler::new(
            "one-shot",
            vec![ActivationInterval::new(RobotId(0), 0.0, 0.5, 1.0)],
        );
        let mut engine = Engine::new(&two_robots(), 1.0, NilAlgorithm, script, 1);
        let mut events = 0;
        while engine.step().is_some() {
            events += 1;
        }
        assert_eq!(events, 3, "Look, MoveStart, MoveEnd");
    }
}
