//! The simulation builder: configures a [`Simulation`] session (or runs one
//! to completion in a single call).

use crate::engine::{Engine, LookPath};
use crate::monitors::{CohesionMonitor, DiameterMonitor, HullMonitor, StrongVisibilityMonitor};
use crate::queue::QueuePath;
use crate::report::SimulationReport;
use crate::session::Simulation;
use cohesion_geometry::Vec2;
use cohesion_model::frame::{Ambient, FrameMode};
use cohesion_model::{
    Algorithm, Budget, Configuration, MotionModel, PerceptionModel, VisibilityGraph,
};
use cohesion_scheduler::Scheduler;

/// Configures one simulation. [`SimulationBuilder::build`] yields a
/// resumable [`Simulation`] session; [`SimulationBuilder::run`] is the
/// one-shot convenience (`build().run_to_completion()`) producing a
/// [`SimulationReport`].
///
/// ```
/// use cohesion_engine::SimulationBuilder;
/// use cohesion_core::KirkpatrickAlgorithm;
/// use cohesion_scheduler::FSyncScheduler;
/// use cohesion_model::Configuration;
/// use cohesion_geometry::Vec2;
///
/// let config = Configuration::new(vec![
///     Vec2::new(0.0, 0.0),
///     Vec2::new(0.9, 0.0),
///     Vec2::new(1.8, 0.0),
/// ]);
/// let report = SimulationBuilder::new(config, KirkpatrickAlgorithm::new(1))
///     .visibility(1.0)
///     .scheduler(FSyncScheduler::new())
///     .epsilon(0.05)
///     .max_events(50_000)
///     .run();
/// assert!(report.converged && report.cohesion_maintained);
/// ```
pub struct SimulationBuilder<P: Ambient = Vec2> {
    initial: Configuration<P>,
    algorithm: Box<dyn Algorithm<P>>,
    scheduler: Box<dyn Scheduler>,
    visibility: f64,
    visibility_radii: Option<Vec<f64>>,
    epsilon: f64,
    max_events: usize,
    max_time: f64,
    seed: u64,
    perception: PerceptionModel,
    motion: MotionModel,
    frame_mode: FrameMode,
    multiplicity_detection: bool,
    occlusion_tolerance: Option<f64>,
    look_path: LookPath,
    queue_path: QueuePath,
    track_strong_visibility: bool,
    hull_check_every: usize,
    diameter_sample_every: usize,
}

impl<P: Ambient> SimulationBuilder<P> {
    /// Starts a builder with an initial configuration and an algorithm;
    /// the default scheduler is FSync with visibility `1.0`, convergence
    /// threshold `0.01`, and a `100_000`-event budget.
    pub fn new(initial: Configuration<P>, algorithm: impl Algorithm<P> + 'static) -> Self {
        SimulationBuilder {
            initial,
            algorithm: Box::new(algorithm),
            scheduler: Box::new(cohesion_scheduler::FSyncScheduler::new()),
            visibility: 1.0,
            visibility_radii: None,
            epsilon: 0.01,
            max_events: 100_000,
            max_time: f64::INFINITY,
            seed: 0xC0E510,
            perception: PerceptionModel::EXACT,
            motion: MotionModel::RIGID,
            frame_mode: FrameMode::RandomOrtho,
            multiplicity_detection: false,
            occlusion_tolerance: None,
            look_path: LookPath::default(),
            queue_path: QueuePath::default(),
            track_strong_visibility: true,
            hull_check_every: 64,
            diameter_sample_every: 32,
        }
    }

    /// Sets the visibility radius `V`.
    pub fn visibility(mut self, v: f64) -> Self {
        assert!(v > 0.0, "visibility must be positive");
        self.visibility = v;
        self
    }

    /// Gives each robot its own visibility radius (paper §6.2). Perception
    /// becomes directional (robot `i` sees `j` iff `|ij| ≤ radii[i]`);
    /// the cohesion predicate is evaluated over the initial *mutual*
    /// visibility graph (edges where `|ij| ≤ min(radii[i], radii[j])`).
    ///
    /// # Panics
    ///
    /// Panics unless there is exactly one radius per robot — a
    /// misconfiguration fails here, at construction, not after the session
    /// is built.
    pub fn visibility_radii(mut self, radii: Vec<f64>) -> Self {
        assert_eq!(radii.len(), self.initial.len(), "one radius per robot");
        self.visibility_radii = Some(radii);
        self
    }

    /// Sets the scheduler.
    pub fn scheduler(mut self, scheduler: impl Scheduler + 'static) -> Self {
        self.scheduler = Box::new(scheduler);
        self
    }

    /// Sets the convergence threshold `ε`.
    pub fn epsilon(mut self, eps: f64) -> Self {
        assert!(eps > 0.0, "epsilon must be positive");
        self.epsilon = eps;
        self
    }

    /// Sets the engine-event budget.
    pub fn max_events(mut self, n: usize) -> Self {
        self.max_events = n;
        self
    }

    /// Sets the simulated-time budget. No event stamped beyond `t` is
    /// processed (the budget clamps *before* an event commits, per
    /// [`Budget::admits_time`]).
    pub fn max_time(mut self, t: f64) -> Self {
        self.max_time = t;
        self
    }

    /// Sets both budgets at once from a [`Budget`].
    pub fn budget(mut self, budget: Budget) -> Self {
        self.max_events = budget.max_events;
        self.max_time = budget.max_time;
        self
    }

    /// Sets the RNG seed (frames, error models, scheduler jitter all derive
    /// from engine randomness seeded here; the scheduler's own seed is set at
    /// its construction).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the perception-error model.
    pub fn perception(mut self, p: PerceptionModel) -> Self {
        self.perception = p;
        self
    }

    /// Sets the motion model.
    pub fn motion(mut self, m: MotionModel) -> Self {
        self.motion = m;
        self
    }

    /// Sets the local-frame sampling mode.
    pub fn frame_mode(mut self, mode: FrameMode) -> Self {
        self.frame_mode = mode;
        self
    }

    /// Enables multiplicity detection in snapshots.
    pub fn multiplicity_detection(mut self, enabled: bool) -> Self {
        self.multiplicity_detection = enabled;
        self
    }

    /// Enables the occlusion model (§8 future work): a robot within the
    /// sight line of two others, at perpendicular distance ≤ `tolerance`,
    /// hides the farther one.
    pub fn occlusion(mut self, tolerance: f64) -> Self {
        self.occlusion_tolerance = Some(tolerance);
        self
    }

    /// Selects the engine's Look-phase pipeline — the grid-backed default
    /// or the historical brute-force reference (for differential testing
    /// and benchmarking; both produce bit-identical reports).
    pub fn look_path(mut self, path: LookPath) -> Self {
        self.look_path = path;
        self
    }

    /// Selects the engine's pending-event queue — the calendar-queue
    /// default or the historical `BinaryHeap` reference (for differential
    /// testing and benchmarking; both pop in the identical order and
    /// produce bit-identical reports).
    pub fn queue_path(mut self, path: QueuePath) -> Self {
        self.queue_path = path;
        self
    }

    /// Enables/disables the `O(n²)`-per-event strong-visibility tracking.
    pub fn track_strong_visibility(mut self, enabled: bool) -> Self {
        self.track_strong_visibility = enabled;
        self
    }

    /// Hull-nesting check cadence in events (`0` disables).
    pub fn hull_check_every(mut self, every: usize) -> Self {
        self.hull_check_every = every;
        self
    }

    /// Diameter sampling cadence in events (`0` disables).
    pub fn diameter_sample_every(mut self, every: usize) -> Self {
        self.diameter_sample_every = every;
        self
    }

    /// Builds a resumable [`Simulation`] session: the engine, the monitor
    /// pipeline, and the dirty-set bookkeeping, ready to be stepped, driven
    /// in budgeted slices, and observed mid-flight.
    ///
    /// Predicate checking is delegated to the incremental monitors of
    /// [`crate::monitors`]: positions are piecewise-linear in time, so only
    /// robots in their Move phase can change position between consecutive
    /// events, and the monitors re-check exactly the pairs incident to that
    /// *dirty set*, reading positions from a session-owned buffer instead
    /// of cloning a [`Configuration`] per event.
    pub fn build(self) -> Simulation<P> {
        let n = self.initial.len();
        // Cohesion is judged on the mutual visibility graph: with a common
        // radius that is the usual E(0); with per-robot radii, an edge needs
        // distance ≤ min of the two radii (both endpoints see each other).
        let initial_edges: Vec<(usize, usize)> = match &self.visibility_radii {
            None => {
                let g = VisibilityGraph::from_configuration(&self.initial, self.visibility);
                g.edges()
                    .iter()
                    .map(|e| (e.a.index(), e.b.index()))
                    .collect()
            }
            Some(radii) => {
                let pos = self.initial.positions();
                let mut edges = Vec::new();
                for i in 0..n {
                    for j in (i + 1)..n {
                        if pos[i].dist(pos[j]) <= radii[i].min(radii[j]) {
                            edges.push((i, j));
                        }
                    }
                }
                edges
            }
        };
        let initial_diameter = self.initial.diameter();

        let mut engine = Engine::new(
            &self.initial,
            self.visibility,
            self.algorithm,
            self.scheduler,
            self.seed,
        );
        engine.set_perception(self.perception);
        engine.set_motion(self.motion);
        engine.set_frame_mode(self.frame_mode);
        engine.set_multiplicity_detection(self.multiplicity_detection);
        if let Some(radii) = self.visibility_radii.clone() {
            engine.set_visibility_radii(radii);
        }
        engine.set_occlusion(self.occlusion_tolerance);
        engine.set_look_path(self.look_path);
        engine.set_queue_path(self.queue_path);

        let v = self.visibility;
        let cohesion_tol = 1e-9 * (1.0 + v);

        let positions: Vec<P> = self.initial.positions().to_vec();
        let cohesion = match &self.visibility_radii {
            None => CohesionMonitor::new(n, &initial_edges, |_, _| v, cohesion_tol),
            Some(radii) => CohesionMonitor::new(
                n,
                &initial_edges,
                |a, b| radii[a].min(radii[b]),
                cohesion_tol,
            ),
        };
        let strong = self
            .track_strong_visibility
            .then(|| StrongVisibilityMonitor::new(v, cohesion_tol, &positions));
        // 2D-only hull checks: the ConvexHull type is planar. For other
        // dimensions the check is skipped (reported as None).
        let hull_checks_possible = P::DIM == 2;
        let hull = (hull_checks_possible && self.hull_check_every > 0)
            .then(|| HullMonitor::new(self.hull_check_every, 1e-7 * (1.0 + initial_diameter)));
        let diameter = DiameterMonitor::new(
            self.diameter_sample_every,
            self.epsilon,
            (0.0, initial_diameter),
        );

        Simulation::from_parts(
            engine,
            self.epsilon,
            Budget {
                max_events: self.max_events,
                max_time: self.max_time,
            },
            initial_diameter,
            positions,
            crate::session::MonitorPipeline {
                cohesion,
                strong,
                hull,
                diameter,
            },
        )
    }

    /// Runs the simulation to convergence or budget exhaustion — the
    /// one-shot convenience, literally `build().run_to_completion()`.
    pub fn run(self) -> SimulationReport<P> {
        self.build().run_to_completion()
    }
}

impl<P: Ambient> std::fmt::Debug for SimulationBuilder<P> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SimulationBuilder")
            .field("robots", &self.initial.len())
            .field("visibility", &self.visibility)
            .field("epsilon", &self.epsilon)
            .field("max_events", &self.max_events)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cohesion_core::KirkpatrickAlgorithm;
    use cohesion_model::NilAlgorithm;
    use cohesion_scheduler::{FSyncScheduler, KAsyncScheduler, SSyncScheduler};

    fn line(n: usize, spacing: f64) -> Configuration {
        Configuration::new((0..n).map(|i| Vec2::new(i as f64 * spacing, 0.0)).collect())
    }

    #[test]
    fn nil_algorithm_never_converges_but_keeps_cohesion() {
        let report = SimulationBuilder::new(line(3, 0.9), NilAlgorithm)
            .scheduler(FSyncScheduler::new())
            .max_events(500)
            .run();
        assert!(!report.converged);
        assert!(report.cohesion_maintained);
        assert_eq!(report.final_diameter, report.initial_diameter);
        assert_eq!(report.hulls_nested, Some(true));
    }

    #[test]
    fn kirkpatrick_converges_in_fsync() {
        let report = SimulationBuilder::new(line(4, 0.9), KirkpatrickAlgorithm::new(1))
            .scheduler(FSyncScheduler::new())
            .epsilon(0.05)
            .max_events(60_000)
            .run();
        assert!(report.converged, "final diameter {}", report.final_diameter);
        assert!(report.cohesion_maintained);
        assert_eq!(report.strong_visibility_ok, Some(true));
        assert_eq!(report.hulls_nested, Some(true));
        assert!(report.rounds > 0);
    }

    #[test]
    fn kirkpatrick_converges_in_ssync_and_k_async() {
        for (name, report) in [
            (
                "ssync",
                SimulationBuilder::new(line(4, 0.9), KirkpatrickAlgorithm::new(1))
                    .scheduler(SSyncScheduler::new(5))
                    .epsilon(0.05)
                    .max_events(80_000)
                    .run(),
            ),
            (
                "2-async",
                SimulationBuilder::new(line(4, 0.9), KirkpatrickAlgorithm::new(2))
                    .scheduler(KAsyncScheduler::new(2, 5))
                    .epsilon(0.05)
                    .max_events(80_000)
                    .run(),
            ),
        ] {
            assert!(
                report.converged,
                "{name}: diameter {}",
                report.final_diameter
            );
            assert!(report.cohesion_maintained, "{name}");
        }
    }

    #[test]
    fn determinism() {
        let run = || {
            SimulationBuilder::new(line(4, 0.9), KirkpatrickAlgorithm::new(2))
                .scheduler(KAsyncScheduler::new(2, 9))
                .seed(1234)
                .epsilon(0.05)
                .max_events(5_000)
                .run()
        };
        let (a, b) = (run(), run());
        assert_eq!(a.final_configuration, b.final_configuration);
        assert_eq!(a.events, b.events);
    }
}
