//! Incremental run-time monitors: the predicate checkers the simulation
//! driver consults after every engine event.
//!
//! Historically these checks lived inline in `SimulationBuilder::run` and
//! paid `O(n²)` per event (all-pairs scans) plus a full [`Configuration`]
//! materialization. The monitors here are *incremental*: robot positions are
//! piecewise-linear in time, so between two consecutive engine events only
//! robots that were in their Move phase can have changed position. The
//! driver hands each monitor the current positions **in place** plus that
//! *dirty set*, and pair predicates are re-evaluated only for pairs with a
//! dirty endpoint. Because pair distances attain their maxima exactly at
//! event boundaries (the piecewise-linear invariant the old inline checks
//! relied on), checking dirty pairs at every event remains exhaustive.
//!
//! [`Configuration`]: cohesion_model::Configuration

use crate::report::CohesionViolation;
use cohesion_geometry::hull::convex_hull;
use cohesion_geometry::point::Point;
use cohesion_geometry::{ConvexHull, Vec2};
use cohesion_model::frame::Ambient;
use cohesion_model::RobotPair;
use std::collections::BTreeSet;

/// Everything a monitor may look at for one engine event.
///
/// Borrowed views into driver-owned buffers — no per-event allocation.
pub struct MonitorContext<'a, P: Ambient> {
    /// Time of the event being processed.
    pub time: f64,
    /// 1-based count of events processed so far (for cadence checks).
    pub events: usize,
    /// Position of every robot at `time`.
    pub positions: &'a [P],
    /// Ascending dense indices of robots whose position changed since the
    /// previous event.
    pub dirty: &'a [usize],
    /// `dirty_mask[i]` ⟺ `dirty` contains `i` (for O(1) membership tests).
    pub dirty_mask: &'a [bool],
    /// Lazily fills a caller-provided buffer with the planar projection of
    /// positions ∪ pending targets — the vertex set of the paper's `CH_t`.
    /// Only invoked by hull-type monitors on their sampling cadence; the
    /// buffer-filling shape lets the monitor pool the vertex storage across
    /// samples instead of taking a fresh `Vec` per call.
    pub hull_points: &'a dyn Fn(&mut Vec<Vec2>),
}

/// A predicate checker driven once per engine event.
///
/// Monitors are deliberately small: state in, [`MonitorContext`] per event,
/// typed results read off the concrete monitor after the run. The driver
/// composes the four standard monitors below; external experiment harnesses
/// can implement the trait to track custom invariants without touching the
/// engine loop.
pub trait Monitor<P: Ambient> {
    /// Observes one engine event.
    fn on_event(&mut self, ctx: &MonitorContext<'_, P>);
}

/// The configuration diameter of a position set: maximum pairwise distance
/// (`0` for fewer than two robots). Identical arithmetic to
/// [`Configuration::diameter`](cohesion_model::Configuration::diameter), so
/// reports are bit-for-bit reproducible across the two paths.
pub fn diameter_of<P: Point>(positions: &[P]) -> f64 {
    let mut best = 0.0_f64;
    for i in 0..positions.len() {
        for j in (i + 1)..positions.len() {
            best = best.max(positions[i].dist(positions[j]));
        }
    }
    best
}

/// Watches the Cohesive Convergence clause `E(0) ⊆ E(t)`: every initially
/// visible pair must stay within its visibility threshold at every event
/// time. Re-checks only initial edges incident to a dirty robot, via a
/// CSR-style adjacency of the initial graph.
pub struct CohesionMonitor {
    /// `adj[i]` = the initial-edge partners of robot `i` with the pair's
    /// visibility threshold (`V`, or `min(rᵢ, rⱼ)` under per-robot radii).
    adj: Vec<Vec<(usize, f64)>>,
    tol: f64,
    /// Pairs already reported (a violation is recorded once, at its first
    /// observation, like the historical inline check).
    violated: BTreeSet<(usize, usize)>,
    violations: Vec<CohesionViolation>,
    /// Scratch for per-event findings (kept across events to avoid
    /// reallocation).
    fresh: Vec<(usize, usize, f64)>,
}

impl CohesionMonitor {
    /// Builds the monitor over the initial edge list (pairs `(a, b)` with
    /// `a < b`) and a per-pair threshold function.
    pub fn new(
        n: usize,
        initial_edges: &[(usize, usize)],
        threshold: impl Fn(usize, usize) -> f64,
        tol: f64,
    ) -> Self {
        let mut adj: Vec<Vec<(usize, f64)>> = vec![Vec::new(); n];
        for &(a, b) in initial_edges {
            let t = threshold(a, b);
            adj[a].push((b, t));
            adj[b].push((a, t));
        }
        CohesionMonitor {
            adj,
            tol,
            violated: BTreeSet::new(),
            violations: Vec::new(),
            fresh: Vec::new(),
        }
    }

    /// `true` while no initial edge has been observed broken.
    pub fn maintained(&self) -> bool {
        self.violations.is_empty()
    }

    /// The violations recorded so far (first observation per pair, in event
    /// order, ties within an event broken by pair order).
    pub fn violations(&self) -> &[CohesionViolation] {
        &self.violations
    }

    /// The recorded violations (first observation per pair, in event order,
    /// ties within an event broken by pair order).
    pub fn into_violations(self) -> Vec<CohesionViolation> {
        self.violations
    }

    /// Restores the recorded-violation state from a checkpoint. The
    /// reported-pair set is rebuilt from the list — they are in bijection
    /// (a pair enters `violated` exactly when its violation is pushed), so
    /// checkpoints carry only the list.
    pub(crate) fn restore(&mut self, violations: Vec<CohesionViolation>) {
        self.violated = violations
            .iter()
            .map(|v| (v.pair.a.index(), v.pair.b.index()))
            .collect();
        self.violations = violations;
    }
}

impl<P: Ambient> Monitor<P> for CohesionMonitor {
    fn on_event(&mut self, ctx: &MonitorContext<'_, P>) {
        self.fresh.clear();
        for &a in ctx.dirty {
            for &(b, threshold) in &self.adj[a] {
                // A pair with both endpoints dirty is visited twice; keep
                // the visit from the smaller endpoint.
                if ctx.dirty_mask[b] && b < a {
                    continue;
                }
                let d = ctx.positions[a].dist(ctx.positions[b]);
                if d > threshold + self.tol {
                    let key = (a.min(b), a.max(b));
                    if !self.violated.contains(&key) {
                        self.fresh.push((key.0, key.1, d));
                    }
                }
            }
        }
        // Report in pair order — the order the historical full edge-list
        // sweep discovered simultaneous violations in.
        self.fresh.sort_unstable_by_key(|&(a, b, _)| (a, b));
        for &(a, b, d) in &self.fresh {
            if self.violated.insert((a, b)) {
                self.violations.push(CohesionViolation {
                    pair: RobotPair::new(a.into(), b.into()),
                    time: ctx.time,
                    distance: d,
                });
            }
        }
    }
}

/// Watches the acquired-visibility clause of Theorems 3–4: any pair that
/// ever comes within `V/2` must stay within `V` forever after.
///
/// Membership of the "acquired" set is a monotone property of pair-distance
/// history, so the dirty-set sweep (`O(|dirty| · n)` per event instead of
/// `O(n²)`) observes exactly the same acquisitions and violations as the
/// historical all-pairs sweep: a pair with no dirty endpoint has the same
/// distance as at the previous event, where its status was already settled.
/// The constructor seeds the set from the initial positions (equivalently,
/// the positions at the first event — nothing moves before it).
pub struct StrongVisibilityMonitor {
    n: usize,
    v: f64,
    tol: f64,
    /// Row-major `n × n` bitset over normalized pairs `(min, max)`.
    acquired: Vec<u64>,
    ok: bool,
}

impl StrongVisibilityMonitor {
    /// Builds the monitor and seeds the acquired set from the initial
    /// positions.
    pub fn new<P: Point>(v: f64, tol: f64, initial_positions: &[P]) -> Self {
        let n = initial_positions.len();
        let mut monitor = StrongVisibilityMonitor {
            n,
            v,
            tol,
            acquired: vec![0u64; (n * n).div_ceil(64)],
            ok: true,
        };
        for a in 0..n {
            for b in (a + 1)..n {
                if initial_positions[a].dist(initial_positions[b]) <= v / 2.0 + tol {
                    monitor.insert(a, b);
                }
            }
        }
        monitor
    }

    /// `true` while no acquired pair has been observed beyond `V`.
    pub fn ok(&self) -> bool {
        self.ok
    }

    /// The acquired-pair bitset words, for checkpointing.
    pub(crate) fn acquired_bits(&self) -> &[u64] {
        &self.acquired
    }

    /// Restores the acquired set and verdict from a checkpoint.
    pub(crate) fn restore(&mut self, acquired: Vec<u64>, ok: bool) -> Result<(), String> {
        if acquired.len() != self.acquired.len() {
            return Err(format!(
                "checkpoint strong-visibility bitset has {} words, monitor needs {}",
                acquired.len(),
                self.acquired.len()
            ));
        }
        self.acquired = acquired;
        self.ok = ok;
        Ok(())
    }

    fn bit(&self, a: usize, b: usize) -> usize {
        a.min(b) * self.n + a.max(b)
    }

    fn insert(&mut self, a: usize, b: usize) {
        let bit = self.bit(a, b);
        self.acquired[bit / 64] |= 1 << (bit % 64);
    }

    fn contains(&self, a: usize, b: usize) -> bool {
        let bit = self.bit(a, b);
        self.acquired[bit / 64] & (1 << (bit % 64)) != 0
    }
}

impl<P: Ambient> Monitor<P> for StrongVisibilityMonitor {
    fn on_event(&mut self, ctx: &MonitorContext<'_, P>) {
        for &a in ctx.dirty {
            for b in 0..self.n {
                if b == a || (ctx.dirty_mask[b] && b < a) {
                    continue;
                }
                let d = ctx.positions[a].dist(ctx.positions[b]);
                if d <= self.v / 2.0 + self.tol {
                    self.insert(a, b);
                } else if d > self.v + self.tol && self.contains(a, b) {
                    self.ok = false;
                }
            }
        }
    }
}

/// Watches hull nesting on a sampling cadence: each sampled convex hull of
/// positions ∪ pending targets must contain the next (the paper's
/// hull-diminishing invariant). Planar only — the driver constructs this
/// monitor only when `P::DIM == 2`.
pub struct HullMonitor {
    every: usize,
    tol: f64,
    prev: Option<ConvexHull>,
    nested: bool,
    /// Pooled vertex buffer refilled via `MonitorContext::hull_points`.
    scratch: Vec<Vec2>,
}

impl HullMonitor {
    /// Samples every `every` events with containment tolerance `tol`.
    ///
    /// # Panics
    ///
    /// Panics when `every == 0` (a disabled monitor should simply not be
    /// constructed).
    pub fn new(every: usize, tol: f64) -> Self {
        assert!(every > 0, "hull cadence must be positive");
        HullMonitor {
            every,
            tol,
            prev: None,
            nested: true,
            scratch: Vec::new(),
        }
    }

    /// `true` while every sampled hull contained its successor.
    pub fn nested(&self) -> bool {
        self.nested
    }

    /// The previous sampled hull's vertices, for checkpointing.
    pub(crate) fn prev_vertices(&self) -> Option<&[Vec2]> {
        self.prev.as_ref().map(ConvexHull::vertices)
    }

    /// Restores the sampled-hull state from a checkpoint. `convex_hull` is
    /// idempotent on a hull's own canonical vertex list, so rebuilding from
    /// vertices reproduces the previous hull exactly.
    pub(crate) fn restore(&mut self, prev: Option<Vec<Vec2>>, nested: bool) {
        self.prev = prev.map(|vertices| convex_hull(&vertices));
        self.nested = nested;
    }
}

impl<P: Ambient> Monitor<P> for HullMonitor {
    fn on_event(&mut self, ctx: &MonitorContext<'_, P>) {
        if ctx.events % self.every != 0 {
            return;
        }
        (ctx.hull_points)(&mut self.scratch);
        let hull = convex_hull(&self.scratch);
        if let Some(prev) = &self.prev {
            if !prev.contains_hull(&hull, self.tol) {
                self.nested = false;
            }
        }
        self.prev = Some(hull);
    }
}

/// Samples the configuration diameter on a cadence and tests convergence
/// (`diameter ≤ ε`). Reads positions in place — no `Configuration` clone.
pub struct DiameterMonitor {
    every: usize,
    epsilon: f64,
    series: Vec<(f64, f64)>,
    converged: bool,
}

impl DiameterMonitor {
    /// Samples every `every` events (`0` disables sampling; the series then
    /// only carries the seed point). `initial` seeds the series with the
    /// `t = 0` diameter.
    pub fn new(every: usize, epsilon: f64, initial: (f64, f64)) -> Self {
        DiameterMonitor {
            every,
            epsilon,
            series: vec![initial],
            converged: false,
        }
    }

    /// `true` once a sampled diameter reached `ε`. The driver stops the run
    /// at the first converged sample, like the historical inline check.
    pub fn converged(&self) -> bool {
        self.converged
    }

    /// The `(time, diameter)` samples collected so far.
    pub fn series(&self) -> &[(f64, f64)] {
        &self.series
    }

    /// Consumes the monitor, returning the sample series.
    pub fn into_series(self) -> Vec<(f64, f64)> {
        self.series
    }

    /// Restores the sample series and verdict from a checkpoint.
    pub(crate) fn restore(&mut self, series: Vec<(f64, f64)>, converged: bool) {
        self.series = series;
        self.converged = converged;
    }
}

impl<P: Ambient> Monitor<P> for DiameterMonitor {
    fn on_event(&mut self, ctx: &MonitorContext<'_, P>) {
        if self.every == 0 || ctx.events % self.every != 0 {
            return;
        }
        let d = diameter_of(ctx.positions);
        self.series.push((ctx.time, d));
        if d <= self.epsilon {
            self.converged = true;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx<'a>(
        time: f64,
        events: usize,
        positions: &'a [Vec2],
        dirty: &'a [usize],
        dirty_mask: &'a [bool],
        hull_points: &'a dyn Fn(&mut Vec<Vec2>),
    ) -> MonitorContext<'a, Vec2> {
        MonitorContext {
            time,
            events,
            positions,
            dirty,
            dirty_mask,
            hull_points,
        }
    }

    const NO_HULL: &dyn Fn(&mut Vec<Vec2>) = &|out| out.clear();

    #[test]
    fn cohesion_monitor_flags_broken_edge_once() {
        let mut m = CohesionMonitor::new(2, &[(0, 1)], |_, _| 1.0, 1e-9);
        let near = [Vec2::ZERO, Vec2::new(0.9, 0.0)];
        let far = [Vec2::ZERO, Vec2::new(1.5, 0.0)];
        let mask = [false, true];
        m.on_event(&ctx(0.5, 1, &near, &[1], &mask, NO_HULL));
        assert!(m.maintained());
        m.on_event(&ctx(1.0, 2, &far, &[1], &mask, NO_HULL));
        assert!(!m.maintained());
        m.on_event(&ctx(1.5, 3, &far, &[1], &mask, NO_HULL));
        let violations = m.into_violations();
        assert_eq!(violations.len(), 1, "first observation only");
        assert_eq!(violations[0].time, 1.0);
        assert_eq!(violations[0].distance, 1.5);
    }

    #[test]
    fn cohesion_monitor_ignores_clean_pairs() {
        // Robot 2 drifts away but shares no initial edge with anyone.
        let mut m = CohesionMonitor::new(3, &[(0, 1)], |_, _| 1.0, 1e-9);
        let pos = [Vec2::ZERO, Vec2::new(0.5, 0.0), Vec2::new(9.0, 0.0)];
        let mask = [false, false, true];
        m.on_event(&ctx(1.0, 1, &pos, &[2], &mask, NO_HULL));
        assert!(m.maintained());
    }

    #[test]
    fn strong_visibility_seeds_from_initial_positions() {
        // The pair starts acquired (d = 0.4 ≤ V/2) without ever being dirty,
        // then separates beyond V in one hop: the violation must register.
        let start = [Vec2::ZERO, Vec2::new(0.4, 0.0)];
        let mut m = StrongVisibilityMonitor::new(1.0, 1e-9, &start);
        let apart = [Vec2::ZERO, Vec2::new(1.2, 0.0)];
        let mask = [false, true];
        m.on_event(&ctx(1.0, 1, &apart, &[1], &mask, NO_HULL));
        assert!(!m.ok());
    }

    #[test]
    fn strong_visibility_never_acquired_pair_may_separate() {
        let start = [Vec2::ZERO, Vec2::new(0.9, 0.0)];
        let mut m = StrongVisibilityMonitor::new(1.0, 1e-9, &start);
        let apart = [Vec2::ZERO, Vec2::new(1.2, 0.0)];
        let mask = [false, true];
        m.on_event(&ctx(1.0, 1, &apart, &[1], &mask, NO_HULL));
        assert!(m.ok(), "0.9 > V/2: visibility was never acquired");
    }

    #[test]
    fn diameter_monitor_samples_on_cadence_and_converges() {
        let mut m = DiameterMonitor::new(2, 0.5, (0.0, 2.0));
        let wide = [Vec2::ZERO, Vec2::new(2.0, 0.0)];
        let tight = [Vec2::ZERO, Vec2::new(0.3, 0.0)];
        let mask = [false, false];
        m.on_event(&ctx(1.0, 1, &wide, &[], &mask, NO_HULL));
        assert_eq!(m.series().len(), 1, "off-cadence event not sampled");
        m.on_event(&ctx(2.0, 2, &wide, &[], &mask, NO_HULL));
        assert_eq!(m.series(), &[(0.0, 2.0), (2.0, 2.0)]);
        assert!(!m.converged());
        m.on_event(&ctx(3.0, 4, &tight, &[], &mask, NO_HULL));
        assert!(m.converged());
        assert_eq!(m.into_series().last(), Some(&(3.0, 0.3)));
    }

    #[test]
    fn hull_monitor_detects_expansion() {
        let shrink_then_grow = [
            vec![Vec2::ZERO, Vec2::new(4.0, 0.0), Vec2::new(0.0, 4.0)],
            vec![Vec2::ZERO, Vec2::new(2.0, 0.0), Vec2::new(0.0, 2.0)],
            vec![Vec2::ZERO, Vec2::new(9.0, 0.0), Vec2::new(0.0, 9.0)],
        ];
        let mut m = HullMonitor::new(1, 1e-9);
        let mask = [false; 3];
        for (i, pts) in shrink_then_grow.iter().enumerate() {
            let provider = |out: &mut Vec<Vec2>| {
                out.clear();
                out.extend_from_slice(pts);
            };
            let positions = [Vec2::ZERO; 3];
            m.on_event(&ctx(i as f64, i + 1, &positions, &[], &mask, &provider));
            if i < 2 {
                assert!(m.nested(), "shrinking hulls stay nested");
            }
        }
        assert!(!m.nested(), "expansion breaks nesting");
    }

    #[test]
    fn diameter_of_matches_configuration() {
        use cohesion_model::Configuration;
        let pts = vec![Vec2::ZERO, Vec2::new(3.0, 4.0), Vec2::new(1.0, 1.0)];
        let c = Configuration::new(pts.clone());
        assert_eq!(diameter_of(&pts), c.diameter());
        assert_eq!(diameter_of::<Vec2>(&[]), 0.0);
    }
}
