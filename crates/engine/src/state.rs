//! Per-robot simulation state: the Look–Compute–Move state machine.
//!
//! Two representations share the same state machine:
//!
//! * [`RobotState`] — the per-robot enum, the readable unit the engine's
//!   dispatch code matches on and the tests assert against;
//! * [`RobotStates`] — the engine's **struct-of-arrays** table: parallel
//!   dense vectors for phase tags, positions, targets, and move windows.
//!   Hot loops (position interpolation for every candidate of a Look, the
//!   whole-swarm position fills behind the monitors) touch only the arrays
//!   they need — a phase-tag byte and a position — instead of striding
//!   across a `Vec` of multi-word enums, and the all-robot fill becomes a
//!   `memcpy` of the base-position array plus a fix-up of the few motile
//!   robots.
//!
//! Conversions are lossless in both directions ([`RobotStates::set`] /
//! [`RobotStates::state`]), and [`RobotStates::position_at`] is the same
//! arithmetic as [`RobotState::position_at`] expression for expression, so
//! the layouts are bit-identical in every observable — the session and Look
//! equivalence suites pin this via their frozen report hashes.

use cohesion_geometry::point::Point;
use serde::{Deserialize, Serialize};

/// The runtime state of one robot.
///
/// Transitions (driven by the engine, timed by the scheduler):
/// `Idle → Computing` at Look, `Computing → Moving` at Move start,
/// `Moving → Idle` at Move end.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum RobotState<P> {
    /// Inactive, parked at a position.
    Idle {
        /// Current position.
        position: P,
    },
    /// Between Look and Move start; the destination has been determined from
    /// the Look snapshot but no motion has happened yet.
    Computing {
        /// Position (unchanged since the Look).
        position: P,
        /// Planned destination in global coordinates.
        target: P,
        /// When the Move phase will begin.
        move_start: f64,
        /// When the Move phase will end.
        move_end: f64,
    },
    /// Motile: moving linearly from `from` toward `to` during `[t0, t1]`.
    Moving {
        /// Position at Move start.
        from: P,
        /// Realized destination (after rigidity/motion error resolution).
        to: P,
        /// Move start time.
        t0: f64,
        /// Move end time.
        t1: f64,
    },
}

impl<P: Point> RobotState<P> {
    /// The robot's position at time `t`.
    ///
    /// For a moving robot, `t` is clamped into `[t0, t1]`; queries outside a
    /// robot's current phase window are the callers' bookkeeping bug, but
    /// clamping keeps the answer physically sensible.
    pub fn position_at(&self, t: f64) -> P {
        match *self {
            RobotState::Idle { position } => position,
            RobotState::Computing { position, .. } => position,
            RobotState::Moving { from, to, t0, t1 } => {
                if t1 <= t0 {
                    return to;
                }
                let s = ((t - t0) / (t1 - t0)).clamp(0.0, 1.0);
                from.lerp(to, s)
            }
        }
    }

    /// Returns `true` when the robot is in its Move phase (motile).
    pub fn is_motile(&self) -> bool {
        matches!(self, RobotState::Moving { .. })
    }

    /// Returns `true` when the robot is idle (activatable).
    pub fn is_idle(&self) -> bool {
        matches!(self, RobotState::Idle { .. })
    }

    /// The planned or in-flight destination, if any — the “planned but as yet
    /// unrealized trajectory” endpoint that the paper's convex-hull argument
    /// includes in `CH_t`.
    pub fn pending_target(&self) -> Option<P> {
        match *self {
            RobotState::Idle { .. } => None,
            RobotState::Computing { target, .. } => Some(target),
            RobotState::Moving { to, .. } => Some(to),
        }
    }
}

/// The phase tag of one robot in the struct-of-arrays table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum Phase {
    /// Inactive, parked (activatable).
    Idle = 0,
    /// Between Look and Move start.
    Computing = 1,
    /// Motile: moving linearly through its `[t0, t1]` window.
    Moving = 2,
}

/// Struct-of-arrays robot state: the whole swarm's state machine in parallel
/// dense vectors (see the module docs for the layout rationale).
#[derive(Debug, Clone)]
pub struct RobotStates<P> {
    phases: Vec<Phase>,
    /// `Idle`/`Computing`: the current position; `Moving`: the Move's origin
    /// (`from`). Stationary robots therefore read straight from this array,
    /// which doubles as the `memcpy` source of the all-robot position fill.
    positions: Vec<P>,
    /// `Computing`: the planned target; `Moving`: the realized destination
    /// (`to`); `Idle`: the robot's own position (an inert placeholder).
    targets: Vec<P>,
    /// `Computing`: the scheduled Move start; `Moving`: `t0`; `Idle`: unused.
    starts: Vec<f64>,
    /// `Computing`: the scheduled Move end; `Moving`: `t1`; `Idle`: unused.
    ends: Vec<f64>,
}

impl<P: Point> RobotStates<P> {
    /// A table of `positions.len()` idle robots.
    pub fn new(positions: &[P]) -> Self {
        RobotStates {
            phases: vec![Phase::Idle; positions.len()],
            positions: positions.to_vec(),
            targets: positions.to_vec(),
            starts: vec![0.0; positions.len()],
            ends: vec![0.0; positions.len()],
        }
    }

    /// Number of robots.
    pub fn len(&self) -> usize {
        self.phases.len()
    }

    /// Returns `true` when the table is empty.
    pub fn is_empty(&self) -> bool {
        self.phases.is_empty()
    }

    /// The phase tag of robot `i`.
    pub fn phase(&self, i: usize) -> Phase {
        self.phases[i]
    }

    /// Returns `true` when robot `i` is in its Move phase (motile).
    pub fn is_motile(&self, i: usize) -> bool {
        self.phases[i] == Phase::Moving
    }

    /// Returns `true` when robot `i` is idle (activatable).
    pub fn is_idle(&self, i: usize) -> bool {
        self.phases[i] == Phase::Idle
    }

    /// The position of robot `i` at time `t` — the same expression as
    /// [`RobotState::position_at`], reading only the arrays the phase needs.
    #[inline]
    pub fn position_at(&self, i: usize, t: f64) -> P {
        match self.phases[i] {
            Phase::Idle | Phase::Computing => self.positions[i],
            Phase::Moving => {
                let (t0, t1) = (self.starts[i], self.ends[i]);
                if t1 <= t0 {
                    return self.targets[i];
                }
                let s = ((t - t0) / (t1 - t0)).clamp(0.0, 1.0);
                self.positions[i].lerp(self.targets[i], s)
            }
        }
    }

    /// The base-position array: exact positions for stationary robots, Move
    /// origins for motile ones — the `memcpy` source of whole-swarm position
    /// fills (the caller fixes up the motile few via
    /// [`RobotStates::position_at`]).
    pub fn base_positions(&self) -> &[P] {
        &self.positions
    }

    /// The planned or in-flight destination of robot `i`, if any (the
    /// endpoint the paper's convex-hull argument includes in `CH_t`).
    pub fn pending_target(&self, i: usize) -> Option<P> {
        match self.phases[i] {
            Phase::Idle => None,
            Phase::Computing | Phase::Moving => Some(self.targets[i]),
        }
    }

    /// Reconstructs robot `i`'s state as the per-robot enum.
    pub fn state(&self, i: usize) -> RobotState<P> {
        match self.phases[i] {
            Phase::Idle => RobotState::Idle {
                position: self.positions[i],
            },
            Phase::Computing => RobotState::Computing {
                position: self.positions[i],
                target: self.targets[i],
                move_start: self.starts[i],
                move_end: self.ends[i],
            },
            Phase::Moving => RobotState::Moving {
                from: self.positions[i],
                to: self.targets[i],
                t0: self.starts[i],
                t1: self.ends[i],
            },
        }
    }

    /// Writes robot `i`'s state from the per-robot enum.
    pub fn set(&mut self, i: usize, state: RobotState<P>) {
        match state {
            RobotState::Idle { position } => {
                self.phases[i] = Phase::Idle;
                self.positions[i] = position;
                self.targets[i] = position;
            }
            RobotState::Computing {
                position,
                target,
                move_start,
                move_end,
            } => {
                self.phases[i] = Phase::Computing;
                self.positions[i] = position;
                self.targets[i] = target;
                self.starts[i] = move_start;
                self.ends[i] = move_end;
            }
            RobotState::Moving { from, to, t0, t1 } => {
                self.phases[i] = Phase::Moving;
                self.positions[i] = from;
                self.targets[i] = to;
                self.starts[i] = t0;
                self.ends[i] = t1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cohesion_geometry::Vec2;

    #[test]
    fn idle_and_computing_are_stationary() {
        let idle = RobotState::Idle {
            position: Vec2::new(1.0, 2.0),
        };
        assert_eq!(idle.position_at(0.0), Vec2::new(1.0, 2.0));
        assert_eq!(idle.position_at(99.0), Vec2::new(1.0, 2.0));
        assert!(idle.is_idle());
        assert_eq!(idle.pending_target(), None);

        let computing = RobotState::Computing {
            position: Vec2::ZERO,
            target: Vec2::new(1.0, 0.0),
            move_start: 1.0,
            move_end: 2.0,
        };
        assert_eq!(computing.position_at(1.5), Vec2::ZERO);
        assert_eq!(computing.pending_target(), Some(Vec2::new(1.0, 0.0)));
        assert!(!computing.is_motile());
    }

    #[test]
    fn moving_interpolates_linearly() {
        let m = RobotState::Moving {
            from: Vec2::ZERO,
            to: Vec2::new(2.0, 0.0),
            t0: 1.0,
            t1: 3.0,
        };
        assert!(m.is_motile());
        assert_eq!(m.position_at(1.0), Vec2::ZERO);
        assert_eq!(m.position_at(2.0), Vec2::new(1.0, 0.0));
        assert_eq!(m.position_at(3.0), Vec2::new(2.0, 0.0));
        // Clamped outside the window.
        assert_eq!(m.position_at(0.0), Vec2::ZERO);
        assert_eq!(m.position_at(9.0), Vec2::new(2.0, 0.0));
    }

    #[test]
    fn zero_duration_move_sits_at_destination() {
        let m = RobotState::Moving {
            from: Vec2::ZERO,
            to: Vec2::new(1.0, 1.0),
            t0: 2.0,
            t1: 2.0,
        };
        assert_eq!(m.position_at(2.0), Vec2::new(1.0, 1.0));
    }

    #[test]
    fn soa_table_round_trips_and_matches_the_enum() {
        let mut table = RobotStates::new(&[Vec2::ZERO; 4]);
        let states = [
            RobotState::Idle {
                position: Vec2::new(5.0, -5.0),
            },
            RobotState::Computing {
                position: Vec2::new(0.5, 0.5),
                target: Vec2::new(1.0, 0.0),
                move_start: 1.0,
                move_end: 2.0,
            },
            RobotState::Moving {
                from: Vec2::ZERO,
                to: Vec2::new(2.0, 1.0),
                t0: 1.0,
                t1: 3.0,
            },
            // The degenerate zero-duration Move.
            RobotState::Moving {
                from: Vec2::ZERO,
                to: Vec2::new(1.0, 1.0),
                t0: 2.0,
                t1: 2.0,
            },
        ];
        for (i, s) in states.iter().enumerate() {
            table.set(i, *s);
            assert_eq!(table.state(i), *s, "round trip of robot {i}");
            assert_eq!(table.is_motile(i), s.is_motile());
            assert_eq!(table.is_idle(i), s.is_idle());
            assert_eq!(table.pending_target(i), s.pending_target());
            for t in [-1.0, 0.0, 1.0, 1.5, 2.0, 2.5, 3.0, 9.0] {
                assert_eq!(
                    table.position_at(i, t).to_bits_repr(),
                    s.position_at(t).to_bits_repr(),
                    "interpolation of robot {i} at t={t}"
                );
            }
        }
        assert_eq!(table.len(), 4);
        assert_eq!(table.base_positions()[1], Vec2::new(0.5, 0.5));
    }

    /// Bitwise comparison helper: equality of interpolated positions must be
    /// exact, not tolerance-based — the layouts share RNG-visible outputs.
    trait BitsRepr {
        fn to_bits_repr(self) -> (u64, u64);
    }
    impl BitsRepr for Vec2 {
        fn to_bits_repr(self) -> (u64, u64) {
            (self.x.to_bits(), self.y.to_bits())
        }
    }
}
