//! Per-robot simulation state: the Look–Compute–Move state machine.

use cohesion_geometry::point::Point;
use serde::{Deserialize, Serialize};

/// The runtime state of one robot.
///
/// Transitions (driven by the engine, timed by the scheduler):
/// `Idle → Computing` at Look, `Computing → Moving` at Move start,
/// `Moving → Idle` at Move end.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum RobotState<P> {
    /// Inactive, parked at a position.
    Idle {
        /// Current position.
        position: P,
    },
    /// Between Look and Move start; the destination has been determined from
    /// the Look snapshot but no motion has happened yet.
    Computing {
        /// Position (unchanged since the Look).
        position: P,
        /// Planned destination in global coordinates.
        target: P,
        /// When the Move phase will begin.
        move_start: f64,
        /// When the Move phase will end.
        move_end: f64,
    },
    /// Motile: moving linearly from `from` toward `to` during `[t0, t1]`.
    Moving {
        /// Position at Move start.
        from: P,
        /// Realized destination (after rigidity/motion error resolution).
        to: P,
        /// Move start time.
        t0: f64,
        /// Move end time.
        t1: f64,
    },
}

impl<P: Point> RobotState<P> {
    /// The robot's position at time `t`.
    ///
    /// For a moving robot, `t` is clamped into `[t0, t1]`; queries outside a
    /// robot's current phase window are the callers' bookkeeping bug, but
    /// clamping keeps the answer physically sensible.
    pub fn position_at(&self, t: f64) -> P {
        match *self {
            RobotState::Idle { position } => position,
            RobotState::Computing { position, .. } => position,
            RobotState::Moving { from, to, t0, t1 } => {
                if t1 <= t0 {
                    return to;
                }
                let s = ((t - t0) / (t1 - t0)).clamp(0.0, 1.0);
                from.lerp(to, s)
            }
        }
    }

    /// Returns `true` when the robot is in its Move phase (motile).
    pub fn is_motile(&self) -> bool {
        matches!(self, RobotState::Moving { .. })
    }

    /// Returns `true` when the robot is idle (activatable).
    pub fn is_idle(&self) -> bool {
        matches!(self, RobotState::Idle { .. })
    }

    /// The planned or in-flight destination, if any — the “planned but as yet
    /// unrealized trajectory” endpoint that the paper's convex-hull argument
    /// includes in `CH_t`.
    pub fn pending_target(&self) -> Option<P> {
        match *self {
            RobotState::Idle { .. } => None,
            RobotState::Computing { target, .. } => Some(target),
            RobotState::Moving { to, .. } => Some(to),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cohesion_geometry::Vec2;

    #[test]
    fn idle_and_computing_are_stationary() {
        let idle = RobotState::Idle {
            position: Vec2::new(1.0, 2.0),
        };
        assert_eq!(idle.position_at(0.0), Vec2::new(1.0, 2.0));
        assert_eq!(idle.position_at(99.0), Vec2::new(1.0, 2.0));
        assert!(idle.is_idle());
        assert_eq!(idle.pending_target(), None);

        let computing = RobotState::Computing {
            position: Vec2::ZERO,
            target: Vec2::new(1.0, 0.0),
            move_start: 1.0,
            move_end: 2.0,
        };
        assert_eq!(computing.position_at(1.5), Vec2::ZERO);
        assert_eq!(computing.pending_target(), Some(Vec2::new(1.0, 0.0)));
        assert!(!computing.is_motile());
    }

    #[test]
    fn moving_interpolates_linearly() {
        let m = RobotState::Moving {
            from: Vec2::ZERO,
            to: Vec2::new(2.0, 0.0),
            t0: 1.0,
            t1: 3.0,
        };
        assert!(m.is_motile());
        assert_eq!(m.position_at(1.0), Vec2::ZERO);
        assert_eq!(m.position_at(2.0), Vec2::new(1.0, 0.0));
        assert_eq!(m.position_at(3.0), Vec2::new(2.0, 0.0));
        // Clamped outside the window.
        assert_eq!(m.position_at(0.0), Vec2::ZERO);
        assert_eq!(m.position_at(9.0), Vec2::new(2.0, 0.0));
    }

    #[test]
    fn zero_duration_move_sits_at_destination() {
        let m = RobotState::Moving {
            from: Vec2::ZERO,
            to: Vec2::new(1.0, 1.0),
            t0: 2.0,
            t1: 2.0,
        };
        assert_eq!(m.position_at(2.0), Vec2::new(1.0, 1.0));
    }
}
