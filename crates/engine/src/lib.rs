//! Continuous-time discrete-event simulation of Look–Compute–Move robot
//! systems.
//!
//! The engine executes an [`Algorithm`](cohesion_model::Algorithm) under a
//! [`Scheduler`](cohesion_scheduler::Scheduler) with adversarial error models
//! and records everything the paper's predicates quantify over:
//!
//! * positions are **piecewise-linear in continuous time** — a robot whose
//!   Move spans `[t₀, t₁]` is observed mid-trajectory by any Look that lands
//!   inside, which is precisely the capability separating the asynchronous
//!   models from SSync (Figure 4 exploits it twice);
//! * cohesion (`E(0) ⊆ E(t)`) is checked at every event time — positions are
//!   piecewise linear, so pairwise distances attain extrema at event
//!   boundaries and the check is exhaustive, not sampled;
//! * optional strong-visibility tracking asserts the acquired-visibility
//!   clause of Theorems 3–4 (pairs once within `V/2` stay within `V`);
//! * hull monotonicity (`CH_{t⁺} ⊆ CH_t`, including planned trajectories) is
//!   verified on a configurable cadence;
//! * rounds are counted in the standard way (a round ends when every robot
//!   has completed at least one full cycle), giving the convergence-rate
//!   measure used by the rate experiments;
//! * runs are **resumable sessions** ([`session`]): `SimulationBuilder::build`
//!   yields a [`Simulation`] that can be stepped, driven in budgeted slices
//!   (`run_for` / `run_until`), inspected mid-flight (`progress`), and
//!   streamed through registered [`Observer`]s — with `run()` remaining the
//!   one-shot `build().run_to_completion()` convenience.

#![forbid(unsafe_code)]
#![deny(unsafe_op_in_unsafe_fn)]

pub mod checkpoint;
pub mod engine;
pub mod monitors;
pub mod queue;

pub mod report;
pub mod runner;
pub mod session;
pub mod state;

pub use checkpoint::{fnv1a, Checkpoint, CHECKPOINT_VERSION};
pub use engine::{Engine, EngineEvent, EngineEventKind, LookPath};
pub use monitors::{
    CohesionMonitor, DiameterMonitor, HullMonitor, Monitor, MonitorContext, StrongVisibilityMonitor,
};
pub use queue::QueuePath;
pub use report::SimulationReport;
pub use runner::SimulationBuilder;
pub use session::{EventView, Observer, SessionStatus, Simulation, TraceRecorder};
pub use state::RobotState;

// Driver-facing plain data, re-exported from the model crate so session
// consumers need only one import path.
pub use cohesion_model::{Budget, Progress};
