//! Simulation outcome reports.

use cohesion_geometry::point::Point;
use cohesion_geometry::Vec2;
use cohesion_model::{Configuration, RobotPair};
use serde::{Deserialize, Serialize};

/// A recorded cohesion violation: an initially-visible pair observed beyond
/// the visibility radius.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CohesionViolation {
    /// The separated pair.
    pub pair: RobotPair,
    /// Event time of the first observation beyond `V`.
    pub time: f64,
    /// The observed separation.
    pub distance: f64,
}

/// The full outcome of a simulation run — everything the paper's predicates
/// and the experiment tables need.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimulationReport<P = Vec2> {
    /// Algorithm name.
    pub algorithm: String,
    /// Scheduler name.
    pub scheduler: String,
    /// Number of robots.
    pub robots: usize,
    /// Visibility radius `V`.
    pub visibility: f64,
    /// Whether the diameter reached the convergence threshold `ε`.
    pub converged: bool,
    /// Whether every initially-visible pair stayed visible at every event
    /// time (`E(0) ⊆ E(t)` — the Cohesive Convergence clause).
    pub cohesion_maintained: bool,
    /// The recorded cohesion violations (first observation per pair).
    pub cohesion_violations: Vec<CohesionViolation>,
    /// Whether every pair that ever came within `V/2` stayed within `V`
    /// (the acquired-visibility clause of Theorems 3–4); `None` when the
    /// check was disabled.
    pub strong_visibility_ok: Option<bool>,
    /// Whether sampled convex hulls (positions ∪ pending targets) were
    /// monotonically nested; `None` when the check was disabled. Expected to
    /// hold only for hull-diminishing algorithms under error-free motion.
    pub hulls_nested: Option<bool>,
    /// Configuration diameter at the start.
    pub initial_diameter: f64,
    /// Configuration diameter at the end of the run.
    pub final_diameter: f64,
    /// Total engine events processed.
    pub events: usize,
    /// Completed rounds (a round ends when every robot has finished ≥ 1
    /// cycle since the previous boundary).
    pub rounds: usize,
    /// Simulation time at the end of the run.
    pub end_time: f64,
    /// `(time, diameter)` samples.
    pub diameter_series: Vec<(f64, f64)>,
    /// `(round, diameter)` at round boundaries — the convergence-rate data.
    pub round_diameters: Vec<(usize, f64)>,
    /// Final configuration.
    pub final_configuration: Configuration<P>,
}

impl<P: Point> SimulationReport<P> {
    /// Rounds needed to first halve the initial diameter, if it happened —
    /// the measure used by the convergence-rate literature the paper cites
    /// (§1.2.2).
    pub fn rounds_to_halve_diameter(&self) -> Option<usize> {
        let target = self.initial_diameter / 2.0;
        self.round_diameters
            .iter()
            .find(|(_, d)| *d <= target)
            .map(|(r, _)| *r)
    }

    /// Rounds needed to reach diameter ≤ `eps`, if observed.
    pub fn rounds_to_reach(&self, eps: f64) -> Option<usize> {
        self.round_diameters
            .iter()
            .find(|(_, d)| *d <= eps)
            .map(|(r, _)| *r)
    }

    /// `true` when the run satisfied the full Cohesive Convergence predicate
    /// as observed over the horizon.
    pub fn cohesively_converged(&self) -> bool {
        self.converged && self.cohesion_maintained
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> SimulationReport {
        SimulationReport {
            algorithm: "test".into(),
            scheduler: "test".into(),
            robots: 2,
            visibility: 1.0,
            converged: true,
            cohesion_maintained: true,
            cohesion_violations: vec![],
            strong_visibility_ok: Some(true),
            hulls_nested: Some(true),
            initial_diameter: 4.0,
            final_diameter: 0.01,
            events: 100,
            rounds: 10,
            end_time: 12.5,
            diameter_series: vec![(0.0, 4.0), (5.0, 1.0)],
            round_diameters: vec![(1, 4.0), (3, 2.0), (5, 1.0), (9, 0.01)],
            final_configuration: Configuration::new(vec![Vec2::ZERO, Vec2::new(0.01, 0.0)]),
        }
    }

    #[test]
    fn halving_rounds() {
        let r = report();
        assert_eq!(r.rounds_to_halve_diameter(), Some(3));
        assert_eq!(r.rounds_to_reach(1.0), Some(5));
        assert_eq!(r.rounds_to_reach(0.001), None);
        assert!(r.cohesively_converged());
    }
}
