//! The resumable simulation session: incremental drivers + streaming
//! observers.
//!
//! [`SimulationBuilder::build`](crate::SimulationBuilder::build) turns a
//! configured builder into a [`Simulation`] — a first-class session that
//! owns the engine, the monitor pipeline, and the dirty-set bookkeeping the
//! one-shot `run()` used to keep as loop locals. A session can be
//!
//! * **stepped** one engine event at a time ([`Simulation::step`]),
//! * **driven in budgeted slices** ([`Simulation::run_for`] with a
//!   [`Budget`], or [`Simulation::run_until`] with a stop predicate over
//!   [`Progress`]),
//! * **observed mid-flight** ([`Simulation::progress`] for a cheap view;
//!   registered [`Observer`]s for a streaming one), and
//! * **finished** into the exact [`SimulationReport`] the historical
//!   monolithic loop produced ([`Simulation::run_to_completion`] /
//!   [`Simulation::into_report`]) — the equivalence suite pins the reports
//!   byte-for-byte across all five scheduler classes.
//!
//! # Lifecycle
//!
//! ```text
//! SimulationBuilder ──build()──▶ Simulation (Running)
//!        │                          │  step() / run_for(Budget) / run_until(pred)
//!        │                          ▼
//!        │                 Converged │ BudgetExhausted │ ScheduleExhausted
//!        │                          │
//!        └────run()────▶            └──into_report()──▶ SimulationReport
//!              (≡ build().run_to_completion())
//! ```
//!
//! # Observers
//!
//! An [`Observer`] receives the session's event stream as it happens:
//! every engine event ([`Observer::on_event`]), round boundaries
//! ([`Observer::on_round`]), cohesion violations as they are first recorded
//! ([`Observer::on_violation`]), and diameter samples
//! ([`Observer::on_sample`]). The four standard monitors of
//! [`crate::monitors`] are themselves re-expressed as observers (each
//! implements the trait by delegating to its incremental
//! [`Monitor::on_event`] check), and the session drives its internal
//! pipeline through exactly that interface — registered observers see the
//! same stream the report is computed from.
//!
//! To read an observer's state *while the session still owns it*, register
//! a shared handle: `Rc<RefCell<O>>` implements [`Observer`] whenever `O`
//! does, so keep one clone and hand the other to the session.

use crate::checkpoint::{fnv1a, Checkpoint, HullState, SessionState, StrongState, ViolationRepr};
use crate::engine::{Engine, EngineEvent, EngineEventKind};
use crate::monitors::{
    self, CohesionMonitor, DiameterMonitor, HullMonitor, Monitor, MonitorContext,
    StrongVisibilityMonitor,
};
use crate::report::{CohesionViolation, SimulationReport};
use cohesion_geometry::Vec2;
use cohesion_model::frame::Ambient;
use cohesion_model::{Algorithm, Budget, Progress};
use cohesion_scheduler::{ActivationInterval, ScheduleTrace, Scheduler};
use std::cell::RefCell;
use std::rc::Rc;

/// What state a [`Simulation`] session is in after a driver call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SessionStatus {
    /// The session can process more events (a slice budget may have been
    /// exhausted, but the run itself has not terminated).
    Running,
    /// A sampled diameter reached the convergence threshold `ε`.
    Converged,
    /// The session's overall event or time budget is exhausted.
    BudgetExhausted,
    /// The scheduler produced no further activations and no phase is in
    /// flight (scripted schedules end; generative ones never do).
    ScheduleExhausted,
}

impl SessionStatus {
    /// `true` for every status except [`SessionStatus::Running`]: the
    /// session will process no further events.
    #[must_use]
    pub fn is_terminal(self) -> bool {
        self != SessionStatus::Running
    }
}

/// What an [`Observer`] may look at for one engine event: the event itself
/// plus the monitor-grade context (positions in place, the dirty set, the
/// hull-vertex provider) the internal predicate checkers read.
pub struct EventView<'a, P: Ambient = Vec2> {
    /// The event just processed.
    pub event: EngineEvent,
    /// The monitor context for this event — positions at `event.time`, the
    /// dirty set, and the 1-based event count.
    pub monitors: MonitorContext<'a, P>,
}

/// A streaming consumer of a session's event stream. All hooks default to
/// no-ops — implement only what the sink needs.
///
/// The standard monitors ([`CohesionMonitor`], [`StrongVisibilityMonitor`],
/// [`HullMonitor`], [`DiameterMonitor`]) implement this trait by delegating
/// to their incremental [`Monitor::on_event`] checks; the session's internal
/// pipeline and registered observers are driven through the same interface.
///
/// ```
/// use cohesion_engine::{Observer, EventView, SimulationBuilder};
/// use cohesion_model::NilAlgorithm;
/// use cohesion_geometry::Vec2;
///
/// #[derive(Default)]
/// struct EventCounter(usize);
///
/// impl Observer for EventCounter {
///     fn on_event(&mut self, _view: &EventView<'_>) {
///         self.0 += 1;
///     }
/// }
///
/// // Keep a shared handle to read the count back mid-run.
/// let counter = std::rc::Rc::new(std::cell::RefCell::new(EventCounter::default()));
/// let config = cohesion_model::Configuration::new(vec![
///     Vec2::new(0.0, 0.0),
///     Vec2::new(0.9, 0.0),
/// ]);
/// let mut session = SimulationBuilder::new(config, NilAlgorithm)
///     .max_events(30)
///     .build();
/// session.observe(std::rc::Rc::clone(&counter));
/// let report = session.run_to_completion();
/// assert_eq!(counter.borrow().0, report.events);
/// ```
pub trait Observer<P: Ambient = Vec2> {
    /// Called once per processed engine event.
    fn on_event(&mut self, view: &EventView<'_, P>) {
        let _ = view;
    }

    /// Called at each round boundary (every robot completed ≥ 1 cycle since
    /// the previous boundary) with the configuration diameter at it.
    fn on_round(&mut self, round: usize, time: f64, diameter: f64) {
        let _ = (round, time, diameter);
    }

    /// Called when a cohesion violation is first recorded for a pair.
    fn on_violation(&mut self, violation: &CohesionViolation) {
        let _ = violation;
    }

    /// Called at each diameter sample (the `diameter_sample_every` cadence).
    fn on_sample(&mut self, time: f64, diameter: f64) {
        let _ = (time, diameter);
    }
}

impl<P: Ambient> Observer<P> for CohesionMonitor {
    fn on_event(&mut self, view: &EventView<'_, P>) {
        Monitor::on_event(self, &view.monitors);
    }
}

impl<P: Ambient> Observer<P> for StrongVisibilityMonitor {
    fn on_event(&mut self, view: &EventView<'_, P>) {
        Monitor::on_event(self, &view.monitors);
    }
}

impl<P: Ambient> Observer<P> for HullMonitor {
    fn on_event(&mut self, view: &EventView<'_, P>) {
        Monitor::on_event(self, &view.monitors);
    }
}

impl<P: Ambient> Observer<P> for DiameterMonitor {
    fn on_event(&mut self, view: &EventView<'_, P>) {
        Monitor::on_event(self, &view.monitors);
    }
}

/// Shared-handle registration: keep one clone, give the session the other.
impl<P: Ambient, O: Observer<P>> Observer<P> for Rc<RefCell<O>> {
    fn on_event(&mut self, view: &EventView<'_, P>) {
        self.borrow_mut().on_event(view);
    }

    fn on_round(&mut self, round: usize, time: f64, diameter: f64) {
        self.borrow_mut().on_round(round, time, diameter);
    }

    fn on_violation(&mut self, violation: &CohesionViolation) {
        self.borrow_mut().on_violation(violation);
    }

    fn on_sample(&mut self, time: f64, diameter: f64) {
        self.borrow_mut().on_sample(time, diameter);
    }
}

/// An [`Observer`] that reconstructs the [`ScheduleTrace`] of activation
/// intervals from the engine's event stream.
///
/// Each activation surfaces as three events — `Look`, `MoveStart`,
/// `MoveEnd` — at exactly the interval's times, and a robot is never
/// re-activated before its Move ends, so pairing a robot's phase events in
/// arrival order rebuilds its intervals exactly. This replaces the bespoke
/// scheduler-driving recorder the timelines experiment used: the trace now
/// comes from the *same* event stream the simulation actually executed.
#[derive(Debug, Default)]
pub struct TraceRecorder {
    /// Reconstructed intervals in Look (= schedule) order. `move_start` and
    /// `end` hold NaN until the matching phase event arrives.
    intervals: Vec<(cohesion_model::RobotId, f64, f64, f64)>,
    /// Per robot: index into `intervals` of its open activation, if any.
    open: Vec<Option<usize>>,
}

impl TraceRecorder {
    /// A fresh recorder.
    #[must_use]
    pub fn new() -> Self {
        TraceRecorder::default()
    }

    /// Number of activation intervals whose three phase events have all
    /// been observed. Complete intervals form a prefix *per robot*, not
    /// globally, so this counts the globally-complete prefix — the longest
    /// leading run of intervals that are fully reconstructed.
    #[must_use]
    pub fn complete_prefix(&self) -> usize {
        self.intervals
            .iter()
            .take_while(|&&(_, _, _, end)| !end.is_nan())
            .count()
    }

    /// The first `count` reconstructed intervals as a [`ScheduleTrace`], or
    /// `None` while fewer than `count` are complete.
    #[must_use]
    pub fn trace(&self, count: usize) -> Option<ScheduleTrace> {
        if self.complete_prefix() < count {
            return None;
        }
        let mut trace = ScheduleTrace::new();
        for &(robot, look, move_start, end) in self.intervals.iter().take(count) {
            trace.push(ActivationInterval::new(robot, look, move_start, end));
        }
        Some(trace)
    }
}

impl<P: Ambient> Observer<P> for TraceRecorder {
    fn on_event(&mut self, view: &EventView<'_, P>) {
        let EngineEvent { time, robot, kind } = view.event;
        let idx = robot.index();
        if idx >= self.open.len() {
            self.open.resize(idx + 1, None);
        }
        match kind {
            EngineEventKind::Look => {
                self.open[idx] = Some(self.intervals.len());
                self.intervals.push((robot, time, f64::NAN, f64::NAN));
            }
            EngineEventKind::MoveStart => {
                let slot = self.open[idx].expect("MoveStart for an open activation");
                self.intervals[slot].2 = time;
            }
            EngineEventKind::MoveEnd => {
                let slot = self.open[idx]
                    .take()
                    .expect("MoveEnd for an open activation");
                self.intervals[slot].3 = time;
            }
        }
    }
}

/// A live simulation session: the engine, the monitor pipeline, and the
/// round/diameter accounting behind an incremental driver API.
///
/// Built by [`SimulationBuilder::build`](crate::SimulationBuilder::build);
/// the one-shot [`SimulationBuilder::run`](crate::SimulationBuilder::run) is
/// now literally `build().run_to_completion()`, and the equivalence suite
/// pins that a session driven in arbitrary `run_for` slices produces the
/// same report byte-for-byte.
///
/// ```
/// use cohesion_engine::{SessionStatus, SimulationBuilder};
/// use cohesion_core::KirkpatrickAlgorithm;
/// use cohesion_model::{Budget, Configuration};
/// use cohesion_geometry::Vec2;
///
/// let config = Configuration::new(vec![
///     Vec2::new(0.0, 0.0),
///     Vec2::new(0.9, 0.0),
///     Vec2::new(1.8, 0.0),
/// ]);
/// let builder = || {
///     SimulationBuilder::new(config.clone(), KirkpatrickAlgorithm::new(1))
///         .epsilon(0.05)
///         .max_events(50_000)
/// };
///
/// // Drive the session in 1000-event slices, watching progress between.
/// let mut session = builder().build();
/// while !session.run_for(Budget::events(1000)).is_terminal() {
///     let p = session.progress();
///     assert!(p.cohesion_ok && p.diameter <= 1.8);
/// }
/// assert_eq!(session.status(), SessionStatus::Converged);
///
/// // The sliced run reproduces the one-shot report exactly.
/// assert_eq!(session.into_report(), builder().run());
/// ```
pub struct Simulation<P: Ambient = Vec2> {
    pub(crate) engine: Engine<P, Box<dyn Algorithm<P>>, Box<dyn Scheduler>>,
    pub(crate) epsilon: f64,
    /// The session's overall budget (the builder's `max_events`/`max_time`).
    pub(crate) budget: Budget,
    pub(crate) initial_diameter: f64,
    /// Driver-owned position buffer; each event updates the dirty entries.
    pub(crate) positions: Vec<P>,
    pub(crate) dirty: Vec<usize>,
    pub(crate) dirty_mask: Vec<bool>,
    pub(crate) cohesion: CohesionMonitor,
    pub(crate) strong: Option<StrongVisibilityMonitor>,
    pub(crate) hull: Option<HullMonitor>,
    pub(crate) diameter: DiameterMonitor,
    pub(crate) round_diameters: Vec<(usize, f64)>,
    pub(crate) rounds: usize,
    pub(crate) round_base: Vec<u64>,
    pub(crate) events: usize,
    pub(crate) converged: bool,
    pub(crate) status: SessionStatus,
    /// Pooled vertex buffer for the hull monitor's sampling closure (the
    /// closure is `Fn`, so interior mutability bridges the reuse).
    pub(crate) hull_scratch: RefCell<Vec<P>>,
    observers: Vec<Box<dyn Observer<P>>>,
    /// How many cohesion violations / diameter samples have already been
    /// streamed to observers.
    violations_streamed: usize,
    samples_streamed: usize,
}

/// The four standard monitors a session is built around, bundled for
/// construction (the builder materializes them, the session owns them).
pub(crate) struct MonitorPipeline {
    pub(crate) cohesion: CohesionMonitor,
    pub(crate) strong: Option<StrongVisibilityMonitor>,
    pub(crate) hull: Option<HullMonitor>,
    pub(crate) diameter: DiameterMonitor,
}

impl<P: Ambient> Simulation<P> {
    pub(crate) fn from_parts(
        engine: Engine<P, Box<dyn Algorithm<P>>, Box<dyn Scheduler>>,
        epsilon: f64,
        budget: Budget,
        initial_diameter: f64,
        positions: Vec<P>,
        monitors: MonitorPipeline,
    ) -> Self {
        let MonitorPipeline {
            cohesion,
            strong,
            hull,
            diameter,
        } = monitors;
        let n = positions.len();
        // The series arrives seeded with the t = 0 point; only samples
        // taken after it stream through `on_sample`.
        let samples_streamed = diameter.series().len();
        Simulation {
            engine,
            epsilon,
            budget,
            initial_diameter,
            positions,
            dirty: Vec::with_capacity(n),
            dirty_mask: vec![false; n],
            cohesion,
            strong,
            hull,
            diameter,
            round_diameters: Vec::new(),
            rounds: 0,
            round_base: vec![0; n],
            events: 0,
            converged: false,
            status: SessionStatus::Running,
            hull_scratch: RefCell::new(Vec::new()),
            observers: Vec::new(),
            violations_streamed: 0,
            samples_streamed,
        }
    }

    /// Registers a streaming observer. Observers see every event processed
    /// *after* registration; register before the first driver call to see
    /// the whole stream. To read the observer back mid-run, register an
    /// `Rc<RefCell<O>>` handle and keep a clone.
    pub fn observe(&mut self, observer: impl Observer<P> + 'static) {
        self.observers.push(Box::new(observer));
    }

    /// The session's current status. [`SessionStatus::Running`] until a
    /// driver call hits convergence, the overall budget, or the end of the
    /// schedule.
    #[must_use]
    pub fn status(&self) -> SessionStatus {
        self.status
    }

    /// Engine events processed so far.
    #[must_use]
    pub fn events(&self) -> usize {
        self.events
    }

    /// Simulated time of the last processed event (`0` before the first).
    #[must_use]
    pub fn time(&self) -> f64 {
        self.engine.time()
    }

    /// The underlying engine (read-only), e.g. for its recorded
    /// [`ScheduleTrace`](cohesion_scheduler::ScheduleTrace) or current
    /// configuration.
    #[must_use]
    pub fn engine(&self) -> &Engine<P, Box<dyn Algorithm<P>>, Box<dyn Scheduler>> {
        &self.engine
    }

    /// A point-in-time progress view: events, rounds, simulated time, the
    /// current configuration diameter, and cohesion-so-far. Costs one
    /// `O(n²)` diameter computation — cheap next to an event slice, but
    /// meant for heartbeats and stop predicates, not per-event polling.
    #[must_use]
    pub fn progress(&self) -> Progress {
        Progress {
            events: self.events,
            rounds: self.rounds,
            time: self.engine.time(),
            diameter: monitors::diameter_of(&self.positions),
            cohesion_ok: self.cohesion.maintained(),
            converged: self.converged,
        }
    }

    /// A light scenario identity stamped into checkpoints so a restore into
    /// a differently built session is rejected up front: robot count,
    /// scheduler, and algorithm, FNV-hashed. Deliberately *not* a full
    /// configuration hash — the state payload's own hash already guarantees
    /// integrity; this only catches honest mix-ups cheaply.
    fn fingerprint(&self) -> u64 {
        let id = format!(
            "{}|{}|{}",
            self.positions.len(),
            self.engine.scheduler().name(),
            self.engine.algorithm().name()
        );
        fnv1a(id.as_bytes())
    }

    /// Captures the session's complete mutable state as a versioned,
    /// content-hashed [`Checkpoint`].
    ///
    /// The contract is byte-for-byte resumption: restoring the checkpoint
    /// onto a freshly built session with the same builder spec and driving
    /// it to completion produces [`Simulation::into_report`] output
    /// identical to the uninterrupted run's (property-tested at random cut
    /// points across every scheduler class). Two things deliberately do not
    /// survive: the engine's schedule trace (report-invisible and unbounded
    /// on exactly the runs worth checkpointing — a restored session's trace
    /// starts empty) and registered observers (streaming sinks cannot
    /// outlive their process; re-registered observers see only post-restore
    /// items).
    ///
    /// Fails when the scheduler is not checkpointable (a custom generator
    /// without `save_state`).
    pub fn save(&mut self) -> Result<Checkpoint, String> {
        let engine = self.engine.save_core()?;
        let state = SessionState {
            engine,
            events: self.events as u64,
            rounds: self.rounds as u64,
            round_base: self.round_base.clone(),
            round_diameters: self
                .round_diameters
                .iter()
                .map(|&(r, d)| (r as u64, d))
                .collect(),
            converged: self.converged,
            status: match self.status {
                SessionStatus::Running => "Running",
                SessionStatus::Converged => "Converged",
                SessionStatus::BudgetExhausted => "BudgetExhausted",
                SessionStatus::ScheduleExhausted => "ScheduleExhausted",
            }
            .to_string(),
            violations: self
                .cohesion
                .violations()
                .iter()
                .map(ViolationRepr::of)
                .collect(),
            strong: self.strong.as_ref().map(|m| StrongState {
                ok: m.ok(),
                acquired: m.acquired_bits().to_vec(),
            }),
            hull: self.hull.as_ref().map(|m| HullState {
                nested: m.nested(),
                has_prev: m.prev_vertices().is_some(),
                prev: m
                    .prev_vertices()
                    .map(|vs| vs.iter().map(|v| vec![v.x, v.y]).collect())
                    .unwrap_or_default(),
            }),
            diameter_series: self.diameter.series().to_vec(),
            diameter_converged: self.diameter.converged(),
        };
        let json = serde_json::to_string(&state)
            .map_err(|e| format!("checkpoint state failed to encode: {e}"))?;
        Ok(Checkpoint::seal(self.fingerprint(), json))
    }

    /// Restores a [`Checkpoint`] onto this session, which must have been
    /// built from the same spec ([`Checkpoint::fingerprint`] guards the
    /// cheap identity; the caller owns rebuilding the right builder). On
    /// success the session continues exactly where the saved one stood —
    /// same upcoming events, same RNG stream, same monitor verdicts. On
    /// error the session may be partially updated and must be discarded;
    /// callers fall back to a clean rerun.
    pub fn restore(&mut self, checkpoint: &Checkpoint) -> Result<(), String> {
        if checkpoint.fingerprint() != self.fingerprint() {
            return Err(format!(
                "checkpoint fingerprint {:#018x} does not match this session ({:#018x}) — \
                 it was saved from a different scenario",
                checkpoint.fingerprint(),
                self.fingerprint()
            ));
        }
        let state = checkpoint.decode_state()?;
        let n = self.positions.len();
        if state.round_base.len() != n {
            return Err(format!(
                "checkpoint round accounting covers {} robots, session has {n}",
                state.round_base.len()
            ));
        }
        if self.strong.is_some() != state.strong.is_some() {
            return Err(
                "checkpoint and session disagree on strong-visibility tracking".to_string(),
            );
        }
        if self.hull.is_some() != state.hull.is_some() {
            return Err("checkpoint and session disagree on hull monitoring".to_string());
        }
        let status = match state.status.as_str() {
            "Running" => SessionStatus::Running,
            "Converged" => SessionStatus::Converged,
            "BudgetExhausted" => SessionStatus::BudgetExhausted,
            "ScheduleExhausted" => SessionStatus::ScheduleExhausted,
            other => return Err(format!("unknown checkpoint session status '{other}'")),
        };
        let violations = state
            .violations
            .iter()
            .map(ViolationRepr::to_violation)
            .collect::<Result<Vec<_>, _>>()?;
        let hull_prev = match state.hull.as_ref() {
            Some(h) if h.has_prev => {
                let mut vertices = Vec::with_capacity(h.prev.len());
                for c in &h.prev {
                    if c.len() != 2 {
                        return Err("checkpoint hull vertex is not planar".to_string());
                    }
                    vertices.push(Vec2::new(c[0], c[1]));
                }
                Some(vertices)
            }
            _ => None,
        };

        self.engine.restore_core(&state.engine)?;
        let time = self.engine.time();
        self.engine.positions_at_into(time, &mut self.positions);
        self.dirty.clear();
        for m in &mut self.dirty_mask {
            *m = false;
        }
        self.events = state.events as usize;
        self.rounds = state.rounds as usize;
        self.round_base = state.round_base.clone();
        self.round_diameters = state
            .round_diameters
            .iter()
            .map(|&(r, d)| (r as usize, d))
            .collect();
        self.converged = state.converged;
        self.status = status;
        self.cohesion.restore(violations);
        if let (Some(m), Some(s)) = (self.strong.as_mut(), state.strong.as_ref()) {
            m.restore(s.acquired.clone(), s.ok)?;
        }
        if let (Some(m), Some(s)) = (self.hull.as_mut(), state.hull.as_ref()) {
            m.restore(hull_prev, s.nested);
        }
        self.diameter
            .restore(state.diameter_series.clone(), state.diameter_converged);
        // Already-recorded items never re-stream to (post-restore) observers.
        self.violations_streamed = self.cohesion.violations().len();
        self.samples_streamed = self.diameter.series().len();
        Ok(())
    }

    /// Processes one engine event; returns the status afterwards. A
    /// terminal session is left untouched (the call is a no-op).
    pub fn step(&mut self) -> SessionStatus {
        if self.status.is_terminal() {
            return self.status;
        }
        if self.budget.events_exhausted(self.events) {
            self.status = SessionStatus::BudgetExhausted;
            return self.status;
        }
        // The time budget clamps *before* the event is committed: the
        // historical loop compared the budget against the previous event's
        // time and so overran by one event; peeking the next event's
        // timestamp closes that gap without perturbing the event sequence.
        if self.budget.max_time.is_finite() {
            if let Some(t) = self.engine.peek_time() {
                if !self.budget.admits_time(t) {
                    self.status = SessionStatus::BudgetExhausted;
                    return self.status;
                }
            }
        }
        let Some(event) = self.engine.step() else {
            self.status = SessionStatus::ScheduleExhausted;
            return self.status;
        };
        self.events += 1;
        self.process(event);
        if self.diameter.converged() {
            self.converged = true;
            self.status = SessionStatus::Converged;
        }
        self.status
    }

    /// The per-event pipeline: dirty-set maintenance, the monitor
    /// observers, round accounting, diameter sampling, and observer
    /// streaming — the body of the historical `run()` loop, verbatim where
    /// it affects the report.
    fn process(&mut self, event: EngineEvent) {
        let n = self.positions.len();

        // The dirty set: robots mid-Move plus the robot whose Move just
        // ended — the only positions that changed since the last event.
        self.engine.collect_motile(&mut self.dirty);
        if event.kind == EngineEventKind::MoveEnd {
            let idx = event.robot.index();
            if let Err(slot) = self.dirty.binary_search(&idx) {
                self.dirty.insert(slot, idx);
            }
        }
        for &i in &self.dirty {
            self.dirty_mask[i] = true;
            self.positions[i] = self.engine.position_of_at(i, event.time);
        }

        // Split borrows: the monitor context reads positions/dirty/engine
        // immutably while the monitors and observers are driven mutably.
        let engine = &self.engine;
        let hull_scratch = &self.hull_scratch;
        let hull_points = move |out: &mut Vec<Vec2>| {
            let mut buf = hull_scratch.borrow_mut();
            engine.positions_with_targets_into(&mut buf);
            out.clear();
            out.extend(buf.iter().map(|p| Vec2::new(p.coord(0), p.coord(1))));
        };
        let view = EventView {
            event,
            monitors: MonitorContext {
                time: event.time,
                events: self.events,
                positions: &self.positions,
                dirty: &self.dirty,
                dirty_mask: &self.dirty_mask,
                hull_points: &hull_points,
            },
        };

        // Cohesion at every event: event times are exactly where
        // piecewise-linear pair distances attain maxima, so checking dirty
        // pairs at event boundaries is exhaustive.
        Observer::on_event(&mut self.cohesion, &view);
        if let Some(m) = self.strong.as_mut() {
            Observer::on_event(m, &view);
        }
        if let Some(m) = self.hull.as_mut() {
            Observer::on_event(m, &view);
        }
        for obs in &mut self.observers {
            obs.on_event(&view);
        }
        for v in &self.cohesion.violations()[self.violations_streamed..] {
            for obs in &mut self.observers {
                obs.on_violation(v);
            }
        }
        self.violations_streamed = self.cohesion.violations().len();

        // Round accounting.
        let cycles = self.engine.completed_cycles();
        if (0..n).all(|i| cycles[i] > self.round_base[i]) {
            self.rounds += 1;
            self.round_base = cycles.to_vec();
            let d = monitors::diameter_of(&self.positions);
            self.round_diameters.push((self.rounds, d));
            for obs in &mut self.observers {
                obs.on_round(self.rounds, event.time, d);
            }
        }

        // Diameter sampling + convergence test.
        Observer::on_event(&mut self.diameter, &view);
        for &(t, d) in &self.diameter.series()[self.samples_streamed..] {
            for obs in &mut self.observers {
                obs.on_sample(t, d);
            }
        }
        self.samples_streamed = self.diameter.series().len();

        for &i in &self.dirty {
            self.dirty_mask[i] = false;
        }
    }

    /// Runs until the *slice* budget is exhausted or the session
    /// terminates. `slice.max_events` is relative (that many more events);
    /// `slice.max_time` is an absolute simulated-time ceiling, clamped so
    /// no event beyond it is processed. Returns [`SessionStatus::Running`]
    /// when only the slice — not the session — is spent.
    pub fn run_for(&mut self, slice: Budget) -> SessionStatus {
        let end_events = self.events.saturating_add(slice.max_events);
        while !self.status.is_terminal() {
            if self.events >= end_events {
                break;
            }
            if slice.max_time.is_finite() {
                match self.engine.peek_time() {
                    Some(t) if !slice.admits_time(t) => break,
                    _ => {}
                }
            }
            self.step();
        }
        self.status
    }

    /// Runs until `stop` returns `true` (checked before every event against
    /// a fresh [`Progress`] view) or the session terminates. The predicate
    /// costs a diameter computation per event — for lighter-weight pacing,
    /// prefer `run_for` slices with a progress check between them.
    pub fn run_until(&mut self, mut stop: impl FnMut(&Progress) -> bool) -> SessionStatus {
        while !self.status.is_terminal() {
            if stop(&self.progress()) {
                break;
            }
            self.step();
        }
        self.status
    }

    /// Drives the session to a terminal status and finishes the report —
    /// exactly what the historical one-shot `run()` did.
    #[must_use]
    pub fn run_to_completion(mut self) -> SimulationReport<P> {
        while !self.step().is_terminal() {}
        self.into_report()
    }

    /// Finishes the session into a [`SimulationReport`]. Usable from any
    /// state: the report covers the horizon simulated so far (the final
    /// diameter sample and the `diameter ≤ ε` re-check happen here, as they
    /// did at the end of the historical loop).
    #[must_use]
    pub fn into_report(self) -> SimulationReport<P> {
        let final_configuration = self.engine.configuration();
        let final_diameter = final_configuration.diameter();
        let converged = self.converged || final_diameter <= self.epsilon;
        let mut diameter_series = self.diameter.into_series();
        diameter_series.push((self.engine.time(), final_diameter));

        SimulationReport {
            algorithm: self.engine.algorithm().name().to_string(),
            scheduler: self.engine.scheduler().name().to_string(),
            robots: self.positions.len(),
            visibility: self.engine.visibility(),
            converged,
            cohesion_maintained: self.cohesion.maintained(),
            cohesion_violations: self.cohesion.into_violations(),
            strong_visibility_ok: self.strong.map(|m| m.ok()),
            hulls_nested: self.hull.map(|m| m.nested()),
            initial_diameter: self.initial_diameter,
            final_diameter,
            events: self.events,
            rounds: self.rounds,
            end_time: self.engine.time(),
            diameter_series,
            round_diameters: self.round_diameters,
            final_configuration,
        }
    }
}

impl<P: Ambient> std::fmt::Debug for Simulation<P> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Simulation")
            .field("robots", &self.positions.len())
            .field("events", &self.events)
            .field("rounds", &self.rounds)
            .field("time", &self.engine.time())
            .field("status", &self.status)
            .field("observers", &self.observers.len())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SimulationBuilder;
    use cohesion_model::{Configuration, NilAlgorithm};
    use cohesion_scheduler::FSyncScheduler;

    fn line(n: usize, spacing: f64) -> Configuration {
        Configuration::new((0..n).map(|i| Vec2::new(i as f64 * spacing, 0.0)).collect())
    }

    #[test]
    fn session_statuses_and_progress() {
        let mut session = SimulationBuilder::new(line(3, 0.9), NilAlgorithm)
            .scheduler(FSyncScheduler::new())
            .max_events(10)
            .build();
        assert_eq!(session.status(), SessionStatus::Running);
        assert_eq!(session.events(), 0);
        let p0 = session.progress();
        assert_eq!(p0.events, 0);
        assert_eq!(p0.diameter, 1.8);
        assert!(p0.cohesion_ok && !p0.converged);

        assert_eq!(session.run_for(Budget::events(4)), SessionStatus::Running);
        assert_eq!(session.events(), 4);
        assert_eq!(
            session.run_for(Budget::UNLIMITED),
            SessionStatus::BudgetExhausted
        );
        assert_eq!(session.events(), 10);
        // Terminal sessions are inert.
        assert_eq!(session.step(), SessionStatus::BudgetExhausted);
        assert_eq!(session.events(), 10);
        let report = session.into_report();
        assert_eq!(report.events, 10);
        assert!(!report.converged);
    }

    #[test]
    fn run_until_stops_on_predicate() {
        let mut session = SimulationBuilder::new(line(3, 0.9), NilAlgorithm)
            .scheduler(FSyncScheduler::new())
            .max_events(100)
            .build();
        let status = session.run_until(|p| p.events >= 7);
        assert_eq!(status, SessionStatus::Running);
        assert_eq!(session.events(), 7);
    }

    #[test]
    fn observers_see_the_event_stream() {
        #[derive(Default)]
        struct Counts {
            events: usize,
            rounds: usize,
            samples: usize,
        }
        impl Observer for Counts {
            fn on_event(&mut self, _view: &EventView<'_>) {
                self.events += 1;
            }
            fn on_round(&mut self, _round: usize, _time: f64, _diameter: f64) {
                self.rounds += 1;
            }
            fn on_sample(&mut self, _time: f64, _diameter: f64) {
                self.samples += 1;
            }
        }
        let counts = Rc::new(RefCell::new(Counts::default()));
        let mut session = SimulationBuilder::new(line(3, 0.9), NilAlgorithm)
            .scheduler(FSyncScheduler::new())
            .max_events(90)
            .diameter_sample_every(10)
            .build();
        session.observe(Rc::clone(&counts));
        let report = session.run_to_completion();
        let counts = counts.borrow();
        assert_eq!(counts.events, report.events);
        assert_eq!(counts.rounds, report.rounds);
        // The series carries the seeded t=0 point and the final sample
        // appended by into_report; neither streams through on_sample.
        assert_eq!(counts.samples, report.diameter_series.len() - 2);
    }

    #[test]
    fn trace_recorder_rebuilds_the_engine_trace() {
        let recorder = Rc::new(RefCell::new(TraceRecorder::new()));
        let mut session = SimulationBuilder::new(line(3, 0.9), NilAlgorithm)
            .scheduler(FSyncScheduler::new())
            .max_events(60)
            .build();
        session.observe(Rc::clone(&recorder));
        while recorder.borrow().complete_prefix() < 12 {
            assert!(
                !session.step().is_terminal(),
                "budget too small for 12 intervals"
            );
        }
        let rebuilt = recorder.borrow().trace(12).expect("12 complete intervals");
        let engine_trace = session.engine().trace();
        assert_eq!(rebuilt.intervals(), &engine_trace.intervals()[..12]);
    }
}
