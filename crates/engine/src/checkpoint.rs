//! Versioned, content-hashed checkpoints of a live [`Simulation`] session.
//!
//! A checkpoint captures the **complete mutable state** of a run at an event
//! boundary — per-robot Look–Compute–Move states, the pending-event queue in
//! pop order, the staged activation, the RNG stream position, the scheduler's
//! mutable core, the monitor verdict state, and the session's round/diameter
//! accounting — such that restoring onto a freshly built same-spec session
//! and continuing reproduces the uninterrupted run's report **byte for
//! byte** (proptest-enforced across all five scheduler classes).
//!
//! Deliberately *not* captured, because it is rebuilt or rebuildable:
//!
//! * the observation grid, motile side-list, displacement pad, and per-tick
//!   interpolation cache — derived from the robot states (the rebuild is
//!   observation-exact: grid queries are supersets trimmed by exact
//!   predicates, so anchoring differences cannot change any Look);
//! * the engine's [`ScheduleTrace`](cohesion_scheduler::ScheduleTrace) — it
//!   never feeds the report and grows without bound on exactly the
//!   billion-event runs checkpoints exist for; a restored session's trace
//!   starts empty;
//! * registered observers — streaming sinks do not survive a process death;
//!   observers registered after a restore see only post-restore items.
//!
//! # Envelope
//!
//! The on-disk form is a small JSON envelope
//! `{"version", "fingerprint", "hash", "state"}` where `state` is the
//! session state as an **embedded JSON string** and `hash` is FNV-1a over
//! exactly those bytes (the frozen-hash idiom of the session-equivalence
//! suite). Decoding verifies the version first, then the hash, before any
//! state field is interpreted — a torn or corrupted file fails loudly and
//! the caller falls back to a clean rerun. `fingerprint` is a light scenario
//! identity (robot count, scheduler, algorithm) rejecting restores into a
//! different run. All state values are finite, and the workspace serde
//! stand-ins print floats shortest-round-trip and parse them exactly, so
//! the JSON round trip is bit-exact.
//!
//! [`Simulation`]: crate::session::Simulation

use crate::engine::EngineEventKind;
use crate::queue::Pending;
use crate::report::CohesionViolation;
use crate::state::RobotState;
use cohesion_geometry::point::Point;
use cohesion_model::{RobotId, RobotPair};
use cohesion_scheduler::{ActivationInterval, SchedulerState};
use serde::Serialize;
use serde_json::Value;

/// The checkpoint format version this build writes and reads.
pub const CHECKPOINT_VERSION: u32 = 1;

/// 64-bit FNV-1a — the workspace's standard content hash (the same function
/// the frozen-report-hash tests use).
#[must_use]
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x100_0000_01b3);
    }
    hash
}

/// A sealed, integrity-checked simulation checkpoint.
///
/// Produced by [`Simulation::save`](crate::session::Simulation::save),
/// consumed by [`Simulation::restore`](crate::session::Simulation::restore).
/// The envelope is self-validating: [`Checkpoint::from_json`] refuses
/// version mismatches and hash mismatches before any state is interpreted.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct Checkpoint {
    version: u32,
    fingerprint: u64,
    hash: u64,
    state: String,
}

impl Checkpoint {
    /// Seals a state payload: stamps the current version and the FNV-1a
    /// content hash.
    pub(crate) fn seal(fingerprint: u64, state: String) -> Self {
        Checkpoint {
            version: CHECKPOINT_VERSION,
            fingerprint,
            hash: fnv1a(state.as_bytes()),
            state,
        }
    }

    /// The format version stamped at save time.
    #[must_use]
    pub fn version(&self) -> u32 {
        self.version
    }

    /// The scenario fingerprint stamped at save time.
    #[must_use]
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// The FNV-1a hash of the state payload.
    #[must_use]
    pub fn hash(&self) -> u64 {
        self.hash
    }

    /// Serializes the envelope to compact JSON.
    #[must_use]
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("checkpoint envelopes always encode")
    }

    /// Parses and validates an envelope: JSON shape, then version, then
    /// content hash. Any failure — including a torn write that truncated the
    /// file — is an error, never a silently wrong checkpoint.
    pub fn from_json(text: &str) -> Result<Checkpoint, String> {
        let v = serde_json::from_str(text)
            .map_err(|e| format!("checkpoint is not valid JSON (torn write?): {e}"))?;
        let version = u32_field(&v, "version")?;
        if version != CHECKPOINT_VERSION {
            return Err(format!(
                "checkpoint format v{version}; this build reads v{CHECKPOINT_VERSION}"
            ));
        }
        let fingerprint = u64_field(&v, "fingerprint")?;
        let hash = u64_field(&v, "hash")?;
        let state = str_field(&v, "state")?.to_string();
        let computed = fnv1a(state.as_bytes());
        if computed != hash {
            return Err(format!(
                "checkpoint hash mismatch (stored {hash:#018x}, computed {computed:#018x}) — \
                 the file is corrupt"
            ));
        }
        Ok(Checkpoint {
            version,
            fingerprint,
            hash,
            state,
        })
    }

    /// Decodes the embedded state payload (envelope integrity was already
    /// verified).
    pub(crate) fn decode_state(&self) -> Result<SessionState, String> {
        let v = serde_json::from_str(&self.state)
            .map_err(|e| format!("checkpoint state is not valid JSON: {e}"))?;
        SessionState::decode(&v)
    }
}

// ---------------------------------------------------------------------------
// State payload shapes
// ---------------------------------------------------------------------------

/// One robot's Look–Compute–Move state with positions flattened to
/// coordinate arrays, so the encoding is identical for every ambient space.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub(crate) enum RobotStateRepr {
    Idle {
        position: Vec<f64>,
    },
    Computing {
        position: Vec<f64>,
        target: Vec<f64>,
        move_start: f64,
        move_end: f64,
    },
    Moving {
        from: Vec<f64>,
        to: Vec<f64>,
        t0: f64,
        t1: f64,
    },
}

impl RobotStateRepr {
    pub(crate) fn of<P: Point>(state: RobotState<P>) -> Self {
        match state {
            RobotState::Idle { position } => RobotStateRepr::Idle {
                position: position.coords(),
            },
            RobotState::Computing {
                position,
                target,
                move_start,
                move_end,
            } => RobotStateRepr::Computing {
                position: position.coords(),
                target: target.coords(),
                move_start,
                move_end,
            },
            RobotState::Moving { from, to, t0, t1 } => RobotStateRepr::Moving {
                from: from.coords(),
                to: to.coords(),
                t0,
                t1,
            },
        }
    }

    pub(crate) fn to_state<P: Point>(&self) -> Result<RobotState<P>, String> {
        let point = |coords: &Vec<f64>| -> Result<P, String> {
            if coords.len() != P::DIM {
                return Err(format!(
                    "checkpoint robot position has {} coordinates, ambient space has {}",
                    coords.len(),
                    P::DIM
                ));
            }
            Ok(P::from_coords(coords))
        };
        Ok(match self {
            RobotStateRepr::Idle { position } => RobotState::Idle {
                position: point(position)?,
            },
            RobotStateRepr::Computing {
                position,
                target,
                move_start,
                move_end,
            } => RobotState::Computing {
                position: point(position)?,
                target: point(target)?,
                move_start: *move_start,
                move_end: *move_end,
            },
            RobotStateRepr::Moving { from, to, t0, t1 } => RobotState::Moving {
                from: point(from)?,
                to: point(to)?,
                t0: *t0,
                t1: *t1,
            },
        })
    }
}

/// One pending phase event, in the queue's pop order.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub(crate) struct PendingRepr {
    pub(crate) time: f64,
    pub(crate) seq: u64,
    pub(crate) robot: u32,
    pub(crate) kind: String,
}

impl PendingRepr {
    pub(crate) fn of(p: &Pending) -> Self {
        PendingRepr {
            time: p.time,
            seq: p.seq,
            robot: p.robot.0,
            kind: match p.kind {
                EngineEventKind::Look => "Look",
                EngineEventKind::MoveStart => "MoveStart",
                EngineEventKind::MoveEnd => "MoveEnd",
            }
            .to_string(),
        }
    }

    pub(crate) fn to_pending(&self) -> Result<Pending, String> {
        let kind = match self.kind.as_str() {
            "MoveStart" => EngineEventKind::MoveStart,
            "MoveEnd" => EngineEventKind::MoveEnd,
            other => {
                return Err(format!(
                    "checkpoint queue holds a '{other}' event (only Move phases are queued)"
                ))
            }
        };
        Ok(Pending {
            time: self.time,
            seq: self.seq,
            robot: RobotId(self.robot),
            kind,
        })
    }
}

/// The engine's mutable core.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub(crate) struct EngineState {
    pub(crate) time: f64,
    pub(crate) seq: u64,
    pub(crate) rng: [u64; 4],
    pub(crate) robots: Vec<RobotStateRepr>,
    /// Pending events in pop order (ascending `(time, seq)`).
    pub(crate) queue: Vec<PendingRepr>,
    pub(crate) staged: Option<ActivationInterval>,
    pub(crate) completed_cycles: Vec<u64>,
    pub(crate) scheduler: SchedulerState,
}

#[derive(Debug, Clone, PartialEq, Serialize)]
pub(crate) struct StrongState {
    pub(crate) ok: bool,
    pub(crate) acquired: Vec<u64>,
}

#[derive(Debug, Clone, PartialEq, Serialize)]
pub(crate) struct HullState {
    pub(crate) nested: bool,
    /// `prev` hull vertices as `[x, y]` pairs; meaningful iff `has_prev`
    /// (an explicit flag, because `Some(empty)` and `None` must not blur).
    pub(crate) has_prev: bool,
    pub(crate) prev: Vec<Vec<f64>>,
}

#[derive(Debug, Clone, PartialEq, Serialize)]
pub(crate) struct ViolationRepr {
    pub(crate) a: u32,
    pub(crate) b: u32,
    pub(crate) time: f64,
    pub(crate) distance: f64,
}

impl ViolationRepr {
    pub(crate) fn of(v: &CohesionViolation) -> Self {
        ViolationRepr {
            a: v.pair.a.0,
            b: v.pair.b.0,
            time: v.time,
            distance: v.distance,
        }
    }

    pub(crate) fn to_violation(&self) -> Result<CohesionViolation, String> {
        if self.a == self.b {
            return Err("checkpoint cohesion violation pairs a robot with itself".to_string());
        }
        Ok(CohesionViolation {
            pair: RobotPair::new(RobotId(self.a), RobotId(self.b)),
            time: self.time,
            distance: self.distance,
        })
    }
}

/// The complete mutable session state — the checkpoint payload.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub(crate) struct SessionState {
    pub(crate) engine: EngineState,
    pub(crate) events: u64,
    pub(crate) rounds: u64,
    pub(crate) round_base: Vec<u64>,
    pub(crate) round_diameters: Vec<(u64, f64)>,
    pub(crate) converged: bool,
    pub(crate) status: String,
    /// Recorded cohesion violations; the monitor's reported-pair set is
    /// exactly their pair set, so it is rebuilt rather than stored.
    pub(crate) violations: Vec<ViolationRepr>,
    pub(crate) strong: Option<StrongState>,
    pub(crate) hull: Option<HullState>,
    pub(crate) diameter_series: Vec<(f64, f64)>,
    pub(crate) diameter_converged: bool,
}

// ---------------------------------------------------------------------------
// Hand-written decoding against the serde_json stand-in's Value tree
// (the net-protocol idiom: helpers named after what they extract).
// ---------------------------------------------------------------------------

fn field<'a>(v: &'a Value, key: &str) -> Result<&'a Value, String> {
    v.get(key)
        .ok_or_else(|| format!("checkpoint state missing field '{key}'"))
}

fn str_field<'a>(v: &'a Value, key: &str) -> Result<&'a str, String> {
    field(v, key)?
        .as_str()
        .ok_or_else(|| format!("checkpoint field '{key}' is not a string"))
}

fn bool_field(v: &Value, key: &str) -> Result<bool, String> {
    field(v, key)?
        .as_bool()
        .ok_or_else(|| format!("checkpoint field '{key}' is not a boolean"))
}

fn f64_field(v: &Value, key: &str) -> Result<f64, String> {
    field(v, key)?
        .as_f64()
        .ok_or_else(|| format!("checkpoint field '{key}' is not a number"))
}

fn u64_field(v: &Value, key: &str) -> Result<u64, String> {
    field(v, key)?
        .as_u64()
        .ok_or_else(|| format!("checkpoint field '{key}' is not an unsigned integer"))
}

fn u32_field(v: &Value, key: &str) -> Result<u32, String> {
    u64_field(v, key).and_then(|n| {
        u32::try_from(n).map_err(|_| format!("checkpoint field '{key}' overflows u32"))
    })
}

fn array_field<'a>(v: &'a Value, key: &str) -> Result<&'a [Value], String> {
    field(v, key)?
        .as_array()
        .ok_or_else(|| format!("checkpoint field '{key}' is not an array"))
}

fn f64_item(v: &Value, what: &str) -> Result<f64, String> {
    v.as_f64()
        .ok_or_else(|| format!("checkpoint {what} holds a non-number"))
}

fn u64_item(v: &Value, what: &str) -> Result<u64, String> {
    v.as_u64()
        .ok_or_else(|| format!("checkpoint {what} holds a non-integer"))
}

fn u64s_field(v: &Value, key: &str) -> Result<Vec<u64>, String> {
    array_field(v, key)?
        .iter()
        .map(|x| u64_item(x, key))
        .collect()
}

fn coords(v: &Value, what: &str) -> Result<Vec<f64>, String> {
    v.as_array()
        .ok_or_else(|| format!("checkpoint {what} is not a coordinate array"))?
        .iter()
        .map(|x| f64_item(x, what))
        .collect()
}

/// `(number, number)` pairs — the serde stand-in encodes tuples as arrays.
fn pair(v: &Value, what: &str) -> Result<(f64, f64), String> {
    let arr = v
        .as_array()
        .ok_or_else(|| format!("checkpoint {what} is not a pair"))?;
    if arr.len() != 2 {
        return Err(format!("checkpoint {what} is not a 2-element pair"));
    }
    Ok((f64_item(&arr[0], what)?, f64_item(&arr[1], what)?))
}

fn interval(v: &Value) -> Result<ActivationInterval, String> {
    Ok(ActivationInterval::new(
        RobotId(u32_field(v, "robot")?),
        f64_field(v, "look")?,
        f64_field(v, "move_start")?,
        f64_field(v, "end")?,
    ))
}

impl RobotStateRepr {
    fn decode(v: &Value) -> Result<RobotStateRepr, String> {
        let obj = v
            .as_object()
            .ok_or_else(|| "checkpoint robot state is not an object".to_string())?;
        let (tag, body) = obj
            .iter()
            .next()
            .ok_or_else(|| "checkpoint robot state is empty".to_string())?;
        match tag.as_str() {
            "Idle" => Ok(RobotStateRepr::Idle {
                position: coords(field(body, "position")?, "position")?,
            }),
            "Computing" => Ok(RobotStateRepr::Computing {
                position: coords(field(body, "position")?, "position")?,
                target: coords(field(body, "target")?, "target")?,
                move_start: f64_field(body, "move_start")?,
                move_end: f64_field(body, "move_end")?,
            }),
            "Moving" => Ok(RobotStateRepr::Moving {
                from: coords(field(body, "from")?, "from")?,
                to: coords(field(body, "to")?, "to")?,
                t0: f64_field(body, "t0")?,
                t1: f64_field(body, "t1")?,
            }),
            other => Err(format!("unknown checkpoint robot phase '{other}'")),
        }
    }
}

impl EngineState {
    fn decode(v: &Value) -> Result<EngineState, String> {
        let rng_words = u64s_field(v, "rng")?;
        let rng: [u64; 4] = rng_words
            .try_into()
            .map_err(|_| "checkpoint rng state must have 4 words".to_string())?;
        let robots = array_field(v, "robots")?
            .iter()
            .map(RobotStateRepr::decode)
            .collect::<Result<Vec<_>, _>>()?;
        let queue = array_field(v, "queue")?
            .iter()
            .map(|q| {
                Ok(PendingRepr {
                    time: f64_field(q, "time")?,
                    seq: u64_field(q, "seq")?,
                    robot: u32_field(q, "robot")?,
                    kind: str_field(q, "kind")?.to_string(),
                })
            })
            .collect::<Result<Vec<_>, String>>()?;
        let staged = match field(v, "staged")? {
            Value::Null => None,
            other => Some(interval(other)?),
        };
        Ok(EngineState {
            time: f64_field(v, "time")?,
            seq: u64_field(v, "seq")?,
            rng,
            robots,
            queue,
            staged,
            completed_cycles: u64s_field(v, "completed_cycles")?,
            scheduler: SchedulerState::decode(field(v, "scheduler")?)?,
        })
    }
}

impl SessionState {
    pub(crate) fn decode(v: &Value) -> Result<SessionState, String> {
        let round_diameters = array_field(v, "round_diameters")?
            .iter()
            .map(|p| {
                let (r, d) = pair(p, "round_diameters")?;
                if r < 0.0 || r.fract() != 0.0 {
                    return Err("checkpoint round index is not a whole number".to_string());
                }
                Ok((r as u64, d))
            })
            .collect::<Result<Vec<_>, String>>()?;
        let violations = array_field(v, "violations")?
            .iter()
            .map(|x| {
                Ok(ViolationRepr {
                    a: u32_field(x, "a")?,
                    b: u32_field(x, "b")?,
                    time: f64_field(x, "time")?,
                    distance: f64_field(x, "distance")?,
                })
            })
            .collect::<Result<Vec<_>, String>>()?;
        let strong = match field(v, "strong")? {
            Value::Null => None,
            other => Some(StrongState {
                ok: bool_field(other, "ok")?,
                acquired: u64s_field(other, "acquired")?,
            }),
        };
        let hull = match field(v, "hull")? {
            Value::Null => None,
            other => Some(HullState {
                nested: bool_field(other, "nested")?,
                has_prev: bool_field(other, "has_prev")?,
                prev: array_field(other, "prev")?
                    .iter()
                    .map(|p| coords(p, "hull vertex"))
                    .collect::<Result<Vec<_>, _>>()?,
            }),
        };
        Ok(SessionState {
            engine: EngineState::decode(field(v, "engine")?)?,
            events: u64_field(v, "events")?,
            rounds: u64_field(v, "rounds")?,
            round_base: u64s_field(v, "round_base")?,
            round_diameters,
            converged: bool_field(v, "converged")?,
            status: str_field(v, "status")?.to_string(),
            violations,
            strong,
            hull,
            diameter_series: array_field(v, "diameter_series")?
                .iter()
                .map(|p| pair(p, "diameter_series"))
                .collect::<Result<Vec<_>, _>>()?,
            diameter_converged: bool_field(v, "diameter_converged")?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv1a_matches_the_frozen_hash_idiom() {
        // The empty-input offset basis and a known vector pin the constants.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
    }

    #[test]
    fn envelope_round_trips_and_validates() {
        let ckpt = Checkpoint::seal(0xF00D, r#"{"engine":"demo"}"#.to_string());
        let json = ckpt.to_json();
        let back = Checkpoint::from_json(&json).expect("valid envelope");
        assert_eq!(back, ckpt);
        assert_eq!(back.version(), CHECKPOINT_VERSION);
        assert_eq!(back.fingerprint(), 0xF00D);
    }

    #[test]
    fn envelope_rejects_corruption_and_version_skew() {
        let json = Checkpoint::seal(1, r#"{"x":1}"#.to_string()).to_json();
        // Flip a byte inside the embedded state: hash check must fire.
        let tampered = json.replace(r#"\"x\":1"#, r#"\"x\":2"#);
        assert_ne!(tampered, json, "tamper target must exist");
        let err = Checkpoint::from_json(&tampered).unwrap_err();
        assert!(err.contains("hash mismatch"), "{err}");
        // A different version must be refused before the hash check.
        let skewed = json.replace(r#""version":1"#, r#""version":9"#);
        let err = Checkpoint::from_json(&skewed).unwrap_err();
        assert!(err.contains("format v9"), "{err}");
        // Truncation at any byte must fail loudly (JSON or hash check).
        for cut in 1..json.len() {
            assert!(
                Checkpoint::from_json(&json[..cut]).is_err(),
                "truncation at byte {cut} was accepted"
            );
        }
    }

    #[test]
    fn robot_state_reprs_round_trip() {
        use cohesion_geometry::Vec2;
        let states = [
            RobotState::Idle {
                position: Vec2::new(0.1 + 0.2, -0.0),
            },
            RobotState::Computing {
                position: Vec2::new(1.0, 2.0),
                target: Vec2::new(3.0, 4.0),
                move_start: 1.25,
                move_end: 2.5,
            },
            RobotState::Moving {
                from: Vec2::new(-1.0, 1e-300),
                to: Vec2::new(2.0, f64::MIN_POSITIVE),
                t0: 0.0,
                t1: 1.0,
            },
        ];
        for s in states {
            let repr = RobotStateRepr::of(s);
            let json = serde_json::to_string(&repr).expect("encode");
            let value = serde_json::from_str(&json).expect("parse");
            let decoded = RobotStateRepr::decode(&value).expect("decode");
            assert_eq!(decoded, repr);
            let back: RobotState<Vec2> = decoded.to_state().expect("to_state");
            assert_eq!(back, s, "bit-exact state round trip");
        }
    }
}
