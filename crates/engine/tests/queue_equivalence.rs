//! Full-engine differential test of the pending-event queue knob.
//!
//! The unit-level property test (`queue::tests::calendar_matches_heap_pop_order`)
//! pins the two structures against each other on synthetic streams; this
//! suite pins them *through the engine*: the same seeded simulation driven
//! under [`QueuePath::Calendar`] and [`QueuePath::HeapReference`] must emit
//! the identical event sequence and the identical serialized report — any
//! ordering divergence shifts an RNG draw and shows up immediately. A third
//! test exercises the mid-run drain-and-refill switch at arbitrary event
//! boundaries.

use cohesion_engine::{Engine, QueuePath, SimulationBuilder};
use cohesion_model::NilAlgorithm;
use cohesion_scheduler::{
    AsyncScheduler, FSyncScheduler, KAsyncScheduler, NestAScheduler, SSyncScheduler, Scheduler,
};

/// A scheduler class label plus two identically-seeded instances, one per
/// queue path under comparison.
type SchedulerPair = (&'static str, Box<dyn Scheduler>, Box<dyn Scheduler>);

fn schedulers() -> Vec<SchedulerPair> {
    vec![
        (
            "fsync",
            Box::new(FSyncScheduler::new()) as Box<dyn Scheduler>,
            Box::new(FSyncScheduler::new()),
        ),
        (
            "ssync",
            Box::new(SSyncScheduler::new(11)),
            Box::new(SSyncScheduler::new(11)),
        ),
        (
            "k-async",
            Box::new(KAsyncScheduler::new(2, 11)),
            Box::new(KAsyncScheduler::new(2, 11)),
        ),
        (
            "nest-a",
            Box::new(NestAScheduler::new(2, 11)),
            Box::new(NestAScheduler::new(2, 11)),
        ),
        (
            "async",
            Box::new(AsyncScheduler::new(11)),
            Box::new(AsyncScheduler::new(11)),
        ),
    ]
}

/// Step-for-step: both queue paths produce the same `(time, robot, kind)`
/// stream and the same final clock under every scheduler class — including
/// the synchronous ones whose whole rounds share one timestamp (the dense
/// same-tick burst regime) and the asynchronous ones whose every event has
/// its own (the tick-per-event regime).
#[test]
fn event_streams_match_under_both_queue_paths() {
    for (label, sched_cal, sched_heap) in schedulers() {
        let config = cohesion_workloads::random_connected(24, 1.0, 404);
        let k = cohesion_core::KirkpatrickAlgorithm::new(2);
        let mut calendar = Engine::new(&config, 1.0, k.clone(), sched_cal, 9);
        let mut heap = Engine::new(&config, 1.0, k, sched_heap, 9);
        heap.set_queue_path(QueuePath::HeapReference);
        for step in 0..2_000 {
            let (c, h) = (calendar.step(), heap.step());
            match (&c, &h) {
                (Some(c), Some(h)) => {
                    assert_eq!(
                        (c.time, c.robot, c.kind),
                        (h.time, h.robot, h.kind),
                        "{label}: event streams diverged at step {step}"
                    );
                }
                (None, None) => break,
                _ => panic!("{label}: one path exhausted before the other at step {step}"),
            }
        }
        assert_eq!(calendar.time(), heap.time(), "{label}: final clocks differ");
    }
}

/// The whole-report pin: identical serialized output under both paths.
#[test]
fn reports_match_under_both_queue_paths() {
    let run = |path: QueuePath| {
        let report = SimulationBuilder::new(
            cohesion_workloads::random_connected(16, 1.0, 505),
            cohesion_core::KirkpatrickAlgorithm::new(2),
        )
        .scheduler(KAsyncScheduler::new(2, 0x5E55_10F1))
        .seed(77)
        .max_events(1_500)
        .queue_path(path)
        .run();
        serde_json::to_string(&report).expect("serialize")
    };
    assert_eq!(
        run(QueuePath::Calendar),
        run(QueuePath::HeapReference),
        "reports differ between queue paths"
    );
}

/// Switching the knob mid-run drains and refills without perturbing the
/// remaining event order: a run that flips Calendar → Heap → Calendar at
/// arbitrary boundaries matches the never-switched run event for event.
#[test]
fn mid_run_switches_preserve_the_stream() {
    let config = cohesion_workloads::random_connected(20, 1.0, 606);
    let mk = || {
        Engine::new(
            &config,
            1.0,
            NilAlgorithm,
            Box::new(AsyncScheduler::new(5)) as Box<dyn Scheduler>,
            3,
        )
    };
    let mut steady = mk();
    let mut switching = mk();
    for step in 0..1_200 {
        if step % 97 == 0 {
            let path = if (step / 97) % 2 == 0 {
                QueuePath::HeapReference
            } else {
                QueuePath::Calendar
            };
            switching.set_queue_path(path);
        }
        let (s, w) = (steady.step(), switching.step());
        match (&s, &w) {
            (Some(s), Some(w)) => assert_eq!(
                (s.time, s.robot, s.kind),
                (w.time, w.robot, w.kind),
                "switched run diverged at step {step}"
            ),
            (None, None) => break,
            _ => panic!("one run exhausted before the other at step {step}"),
        }
    }
}
