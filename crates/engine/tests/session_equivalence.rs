//! The session API's equivalence contract.
//!
//! PR 5 split the monolithic `SimulationBuilder::run()` into
//! `build() -> Simulation` plus incremental drivers (`step`, `run_for`,
//! `run_until`, `run_to_completion`). The refactor must be *invisible* in
//! the output: this suite pins
//!
//! 1. **frozen pre-refactor hashes** — the serialized `SimulationReport`
//!    JSON of six frozen-seed runs (all five scheduler classes plus the
//!    scripted Figure 4(a) adversary schedule) hashed with FNV-1a, captured
//!    from the monolithic loop immediately before the split. `run()` (now
//!    `build().run_to_completion()`) must keep reproducing them
//!    byte-for-byte;
//! 2. **slice-invariance** — driving a session in arbitrarily-sized
//!    interleaved `run_for` slices (property-tested over random slice
//!    sequences), via per-event `step()`, or via `run_until`, produces the
//!    identical report;
//! 3. **budget boundary semantics** — the `Budget` time clamp processes the
//!    event at exactly `max_time` but not the first one beyond it (the
//!    historical loop overran by one event).

use cohesion_engine::{Budget, SessionStatus, SimulationBuilder, SimulationReport};
use cohesion_geometry::Vec2;
use cohesion_model::{Configuration, FrameMode, NilAlgorithm};
use cohesion_scheduler::{
    AsyncScheduler, FSyncScheduler, KAsyncScheduler, NestAScheduler, SSyncScheduler, Scheduler,
};
use proptest::prelude::*;

/// FNV-1a 64-bit, the hash the pre-refactor capture used.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// One frozen golden case: a scheduler class, the algorithm `k` the class
/// needs for cohesion, and the FNV-1a hash of the report JSON produced by
/// the pre-refactor monolithic `run()` loop.
struct GoldenCase {
    label: &'static str,
    make: fn(u64) -> Box<dyn Scheduler>,
    k: u32,
    json_fnv1a: u64,
}

/// Captured from the monolithic loop at the commit boundary (config
/// `random_connected(12, 1.0, 303)`, engine seed `0xC0FF_EE00 + k`,
/// scheduler seed `0x5E55_10F1`, `ε = 0.05`, 3000-event budget, strong
/// visibility on, hull cadence 16, diameter cadence 8).
const GOLDEN: [GoldenCase; 5] = [
    GoldenCase {
        label: "fsync",
        make: |_| Box::new(FSyncScheduler::new()),
        k: 1,
        json_fnv1a: 0x286E_DFD7_7B15_B981,
    },
    GoldenCase {
        label: "ssync",
        make: |s| Box::new(SSyncScheduler::new(s)),
        k: 1,
        json_fnv1a: 0xC4A3_20FE_D622_B83E,
    },
    GoldenCase {
        label: "nest-a",
        make: |s| Box::new(NestAScheduler::new(2, s)),
        k: 2,
        json_fnv1a: 0x8C25_4B32_F0E1_0767,
    },
    GoldenCase {
        label: "k-async",
        make: |s| Box::new(KAsyncScheduler::new(2, s)),
        k: 2,
        json_fnv1a: 0x2B37_C862_7359_6970,
    },
    GoldenCase {
        label: "async",
        make: |s| Box::new(AsyncScheduler::new(s)),
        k: 4,
        json_fnv1a: 0x1ABF_721E_4DB2_3B01,
    },
];

/// Hash of the scripted Figure 4(a) adversary-schedule report (the engine
/// knobs `cohesion_adversary::run_figure4` pins), captured the same way.
const GOLDEN_FIGURE4A: u64 = 0x0691_BAC5_35FA_9156;

fn golden_builder(case: &GoldenCase) -> SimulationBuilder {
    SimulationBuilder::new(
        cohesion_workloads::random_connected(12, 1.0, 303),
        cohesion_core::KirkpatrickAlgorithm::new(case.k),
    )
    .visibility(1.0)
    .scheduler((case.make)(0x5E55_10F1))
    .seed(0xC0FF_EE00 + case.k as u64)
    .epsilon(0.05)
    .max_events(3_000)
    .track_strong_visibility(true)
    .hull_check_every(16)
    .diameter_sample_every(8)
}

fn figure4a_builder() -> SimulationBuilder {
    SimulationBuilder::new(
        cohesion_adversary::ando_counterexample::figure4_configuration(),
        cohesion_core::KirkpatrickAlgorithm::new(1),
    )
    .visibility(cohesion_adversary::ando_counterexample::V)
    .scheduler(cohesion_scheduler::ScriptedScheduler::new(
        "figure4",
        cohesion_adversary::ando_counterexample::figure4a_schedule(),
    ))
    .epsilon(1e-6)
    .frame_mode(FrameMode::Aligned)
}

fn report_hash(report: &SimulationReport) -> u64 {
    fnv1a(serde_json::to_string(report).expect("serialize").as_bytes())
}

/// `build().run_to_completion()` reproduces the pre-refactor monolithic
/// loop byte-for-byte across all five scheduler classes.
#[test]
fn run_matches_frozen_pre_refactor_hashes() {
    for case in &GOLDEN {
        let report = golden_builder(case).run();
        assert!(report.events > 0, "{}: nothing simulated", case.label);
        assert_eq!(
            report_hash(&report),
            case.json_fnv1a,
            "{}: report JSON diverged from the pre-refactor capture",
            case.label
        );
    }
}

/// The `QueuePath::HeapReference` knob reproduces the same frozen hashes:
/// the calendar queue and the historical `BinaryHeap` pop in the identical
/// `(time, seq)` order, so the entire report — every RNG draw included —
/// is byte-for-byte the same under either structure.
#[test]
fn heap_reference_queue_matches_frozen_hashes() {
    for case in &GOLDEN {
        let report = golden_builder(case)
            .queue_path(cohesion_engine::QueuePath::HeapReference)
            .run();
        assert_eq!(
            report_hash(&report),
            case.json_fnv1a,
            "{}: heap-reference queue diverged from the frozen capture",
            case.label
        );
    }
}

/// Same pin for the scripted Figure 4(a) adversary schedule.
#[test]
fn run_matches_frozen_adversary_schedule_hash() {
    let report = figure4a_builder().run();
    assert_eq!(
        report_hash(&report),
        GOLDEN_FIGURE4A,
        "figure4a: report JSON diverged from the pre-refactor capture"
    );
}

/// Fixed-size `run_for` slices, per-event `step()`, and `run_until` all
/// land on the identical report for every golden case.
#[test]
fn sliced_drivers_match_the_one_shot_run() {
    for case in &GOLDEN {
        let one_shot = golden_builder(case).run();

        let mut sliced = golden_builder(case).build();
        while !sliced.run_for(Budget::events(137)).is_terminal() {}
        let sliced = sliced.into_report();
        assert_eq!(one_shot, sliced, "{}: run_for slices diverged", case.label);

        let mut stepped = golden_builder(case).build();
        while !stepped.step().is_terminal() {}
        let stepped = stepped.into_report();
        assert_eq!(one_shot, stepped, "{}: step loop diverged", case.label);

        let mut until = golden_builder(case).build();
        // A predicate that keeps pausing mid-run: resume until terminal.
        loop {
            let resume_at = until.events() + 211;
            until.run_until(|p| p.events >= resume_at);
            if until.status().is_terminal() {
                break;
            }
        }
        let until = until.into_report();
        assert_eq!(one_shot, until, "{}: run_until loop diverged", case.label);
    }

    let one_shot = figure4a_builder().run();
    let mut sliced = figure4a_builder().build();
    while !sliced.run_for(Budget::events(7)).is_terminal() {}
    assert_eq!(one_shot, sliced.into_report(), "figure4a: slices diverged");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Interleaved `run_for` slices of *random* sizes reproduce the
    /// uninterrupted `run_to_completion()` report exactly (frozen seeds;
    /// the scheduler class is drawn per case).
    #[test]
    fn random_slices_reproduce_the_uninterrupted_report(
        case_idx in 0usize..GOLDEN.len(),
        slices in proptest::collection::vec(1usize..400, 1..40),
    ) {
        let case = &GOLDEN[case_idx];
        let one_shot = golden_builder(case).run();

        let mut session = golden_builder(case).build();
        for &slice in &slices {
            if session.run_for(Budget::events(slice)).is_terminal() {
                break;
            }
        }
        // Whatever the slice schedule left unfinished, finish it.
        while !session.step().is_terminal() {}
        prop_assert_eq!(one_shot, session.into_report());
    }
}

/// The `Budget` time clamp: the event at exactly `max_time` is processed,
/// the first one beyond it is not. (The historical loop tested the budget
/// against the previous event's time and so always processed one event past
/// it.)
#[test]
fn time_budget_clamps_at_the_boundary() {
    // Under FSync + Nil, events land at uniform times: Look at t, MoveStart
    // at t + 1/3, MoveEnd at t + 2/3 for every robot, rounds at integer t.
    let line = Configuration::new(vec![Vec2::ZERO, Vec2::new(0.9, 0.0)]);
    let events_until = |max_time: f64| {
        SimulationBuilder::new(line.clone(), NilAlgorithm)
            .scheduler(FSyncScheduler::new())
            .max_events(10_000)
            .max_time(max_time)
            .run()
    };

    let report = events_until(1.0);
    // Every processed event is stamped ≤ the budget...
    assert!(
        report.end_time <= 1.0,
        "end_time {} overran",
        report.end_time
    );
    // ...and the events at exactly t = 1.0 (the two Looks of the second
    // round) are still in budget.
    let boundary = events_until(1.0);
    let just_below = events_until(1.0 - 1e-9);
    assert!(
        boundary.events > just_below.events,
        "events at exactly max_time must be admitted \
         ({} at 1.0 vs {} just below)",
        boundary.events,
        just_below.events
    );

    // The session reports the stop as budget exhaustion, and a later slice
    // with a longer horizon resumes exactly where the clamp stopped.
    let mut session = SimulationBuilder::new(line.clone(), NilAlgorithm)
        .scheduler(FSyncScheduler::new())
        .max_events(10_000)
        .max_time(1.0)
        .build();
    assert_eq!(
        session.run_for(Budget::UNLIMITED),
        SessionStatus::BudgetExhausted
    );
    assert_eq!(session.events(), boundary.events);
    assert!(session.time() <= 1.0);
}

/// `run_for`'s slice-level time bound is the same clamp, without
/// terminating the session.
#[test]
fn slice_time_bound_pauses_without_terminating() {
    let line = Configuration::new(vec![Vec2::ZERO, Vec2::new(0.9, 0.0)]);
    let mut session = SimulationBuilder::new(line, NilAlgorithm)
        .scheduler(FSyncScheduler::new())
        .max_events(10_000)
        .build();
    let status = session.run_for(Budget::time(2.5));
    assert_eq!(status, SessionStatus::Running, "slice bound is a pause");
    assert!(session.time() <= 2.5);
    let events_at_pause = session.events();
    session.run_for(Budget::time(2.5));
    assert_eq!(
        session.events(),
        events_at_pause,
        "an exhausted slice bound admits nothing further"
    );
    session.run_for(Budget::time(3.5).and_events(2));
    assert_eq!(session.events(), events_at_pause + 2);
}

/// The builder's radii validation fails at configuration time.
#[test]
#[should_panic(expected = "one radius per robot")]
fn mismatched_visibility_radii_fail_in_the_setter() {
    let line = Configuration::new(vec![Vec2::ZERO, Vec2::new(0.9, 0.0)]);
    let _ = SimulationBuilder::new(line, NilAlgorithm).visibility_radii(vec![1.0; 3]);
}
