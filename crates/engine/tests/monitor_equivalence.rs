//! Equivalence of the incremental monitor path and the historical inline
//! predicate sweep.
//!
//! `SimulationBuilder::run` used to re-check **every** pair at **every**
//! engine event from a freshly cloned `Configuration`. The refactor onto
//! `cohesion_engine::monitors` re-checks only pairs incident to robots that
//! actually moved (the dirty set) and reads positions in place. Both rest on
//! the same invariant — positions are piecewise-linear, so pair distances
//! attain extrema exactly at event boundaries — and must therefore produce
//! *identical* reports. This test carries the pre-refactor loop verbatim as
//! a reference implementation and compares full [`SimulationReport`]s for
//! fixed seeds across all five scheduler classes.

use cohesion_engine::{Engine, SimulationBuilder, SimulationReport};
use cohesion_geometry::hull::convex_hull;
use cohesion_geometry::Vec2;
use cohesion_model::{Algorithm, Configuration, RobotPair, VisibilityGraph};
use cohesion_scheduler::{
    AsyncScheduler, FSyncScheduler, KAsyncScheduler, NestAScheduler, SSyncScheduler, Scheduler,
};
use std::collections::BTreeSet;

/// The pre-refactor driver loop (PR 1 vintage), specialized to `Vec2` and
/// the options the comparison runs use. Kept as close to the historical
/// text as the public `Engine` API allows.
#[allow(clippy::too_many_arguments)]
fn reference_run(
    initial: &Configuration<Vec2>,
    algorithm: Box<dyn Algorithm<Vec2>>,
    scheduler: Box<dyn Scheduler>,
    visibility: f64,
    visibility_radii: Option<Vec<f64>>,
    epsilon: f64,
    max_events: usize,
    seed: u64,
    track_strong_visibility: bool,
    hull_check_every: usize,
    diameter_sample_every: usize,
) -> SimulationReport<Vec2> {
    let n = initial.len();
    let initial_edges: Vec<(usize, usize)> = match &visibility_radii {
        None => {
            let g = VisibilityGraph::from_configuration(initial, visibility);
            g.edges()
                .iter()
                .map(|e| (e.a.index(), e.b.index()))
                .collect()
        }
        Some(radii) => {
            let pos = initial.positions();
            let mut edges = Vec::new();
            for i in 0..n {
                for j in (i + 1)..n {
                    if pos[i].dist(pos[j]) <= radii[i].min(radii[j]) {
                        edges.push((i, j));
                    }
                }
            }
            edges
        }
    };
    let initial_diameter = initial.diameter();

    let mut engine = Engine::new(initial, visibility, algorithm, scheduler, seed);
    if let Some(radii) = visibility_radii.clone() {
        engine.set_visibility_radii(radii);
    }

    let v = visibility;
    let pair_threshold: Box<dyn Fn(usize, usize) -> f64> = match visibility_radii {
        None => Box::new(move |_, _| v),
        Some(radii) => Box::new(move |a, b| radii[a].min(radii[b])),
    };
    let cohesion_tol = 1e-9 * (1.0 + v);
    let mut violations = Vec::new();
    let mut violated: BTreeSet<(usize, usize)> = BTreeSet::new();
    let mut strong_pairs: BTreeSet<(usize, usize)> = BTreeSet::new();
    let mut strong_ok = true;
    let mut hulls_nested = true;
    let mut prev_hull: Option<cohesion_geometry::ConvexHull> = None;
    let mut diameter_series: Vec<(f64, f64)> = vec![(0.0, initial_diameter)];
    let mut round_diameters: Vec<(usize, f64)> = Vec::new();
    let mut rounds = 0usize;
    let mut round_base: Vec<u64> = vec![0; n];
    let mut events = 0usize;
    let mut converged = false;
    let mut hull_points: Vec<Vec2> = Vec::new();

    loop {
        if events >= max_events {
            break;
        }
        let Some(event) = engine.step() else { break };
        events += 1;

        let config = engine.configuration_at(event.time);
        let positions = config.positions();

        for &(a, b) in &initial_edges {
            let d = positions[a].dist(positions[b]);
            if d > pair_threshold(a, b) + cohesion_tol && violated.insert((a, b)) {
                violations.push(cohesion_engine::report::CohesionViolation {
                    pair: RobotPair::new(a.into(), b.into()),
                    time: event.time,
                    distance: d,
                });
            }
        }

        if track_strong_visibility {
            for a in 0..n {
                for b in (a + 1)..n {
                    let d = positions[a].dist(positions[b]);
                    if d <= v / 2.0 + cohesion_tol {
                        strong_pairs.insert((a, b));
                    } else if d > v + cohesion_tol && strong_pairs.contains(&(a, b)) {
                        strong_ok = false;
                    }
                }
            }
        }

        if hull_check_every > 0 && events % hull_check_every == 0 {
            engine.positions_with_targets_into(&mut hull_points);
            let hull = convex_hull(&hull_points);
            if let Some(prev) = &prev_hull {
                if !prev.contains_hull(&hull, 1e-7 * (1.0 + initial_diameter)) {
                    hulls_nested = false;
                }
            }
            prev_hull = Some(hull);
        }

        let cycles = engine.completed_cycles();
        if (0..n).all(|i| cycles[i] > round_base[i]) {
            rounds += 1;
            round_base = cycles.to_vec();
            round_diameters.push((rounds, config.diameter()));
        }

        if diameter_sample_every > 0 && events % diameter_sample_every == 0 {
            let d = config.diameter();
            diameter_series.push((event.time, d));
            if d <= epsilon {
                converged = true;
                break;
            }
        }
    }

    let final_configuration = engine.configuration();
    let final_diameter = final_configuration.diameter();
    if final_diameter <= epsilon {
        converged = true;
    }
    diameter_series.push((engine.time(), final_diameter));

    SimulationReport {
        algorithm: engine.algorithm().name().to_string(),
        scheduler: engine.scheduler().name().to_string(),
        robots: n,
        visibility: v,
        converged,
        cohesion_maintained: violations.is_empty(),
        cohesion_violations: violations,
        strong_visibility_ok: track_strong_visibility.then_some(strong_ok),
        hulls_nested: (hull_check_every > 0).then_some(hulls_nested),
        initial_diameter,
        final_diameter,
        events,
        rounds,
        end_time: engine.time(),
        diameter_series,
        round_diameters,
        final_configuration,
    }
}

fn compare(
    label: &str,
    config: &Configuration<Vec2>,
    make_algorithm: impl Fn() -> Box<dyn Algorithm<Vec2>>,
    make_scheduler: impl Fn() -> Box<dyn Scheduler>,
    visibility_radii: Option<Vec<f64>>,
    max_events: usize,
) {
    const SEED: u64 = 0xE01D_C0DE;
    let mut builder = SimulationBuilder::new(config.clone(), make_algorithm())
        .visibility(1.0)
        .scheduler(make_scheduler())
        .seed(SEED)
        .epsilon(0.05)
        .max_events(max_events)
        .track_strong_visibility(true)
        .hull_check_every(16)
        .diameter_sample_every(8);
    if let Some(radii) = &visibility_radii {
        builder = builder.visibility_radii(radii.clone());
    }
    let refactored = builder.run();
    let reference = reference_run(
        config,
        make_algorithm(),
        make_scheduler(),
        1.0,
        visibility_radii,
        0.05,
        max_events,
        SEED,
        true,
        16,
        8,
    );
    assert_eq!(refactored, reference, "{label}: reports diverged");
    assert!(refactored.events > 0, "{label}: nothing simulated");
}

fn cloud(n: usize, seed: u64) -> Configuration<Vec2> {
    cohesion_workloads::random_connected(n, 1.0, seed)
}

#[test]
fn fsync_reports_are_identical() {
    compare(
        "fsync",
        &cloud(10, 41),
        || Box::new(cohesion_core::KirkpatrickAlgorithm::new(1)),
        || Box::new(FSyncScheduler::new()),
        None,
        4_000,
    );
}

#[test]
fn ssync_reports_are_identical() {
    compare(
        "ssync",
        &cloud(10, 42),
        || Box::new(cohesion_core::KirkpatrickAlgorithm::new(1)),
        || Box::new(SSyncScheduler::new(5)),
        None,
        4_000,
    );
}

#[test]
fn nest_a_reports_are_identical() {
    compare(
        "2-nesta",
        &cloud(10, 43),
        || Box::new(cohesion_core::KirkpatrickAlgorithm::new(2)),
        || Box::new(NestAScheduler::new(2, 5)),
        None,
        4_000,
    );
}

#[test]
fn k_async_reports_are_identical() {
    compare(
        "2-async",
        &cloud(10, 44),
        || Box::new(cohesion_core::KirkpatrickAlgorithm::new(2)),
        || Box::new(KAsyncScheduler::new(2, 9)),
        None,
        4_000,
    );
}

#[test]
fn unbounded_async_reports_are_identical() {
    compare(
        "async",
        &cloud(10, 45),
        || Box::new(cohesion_core::KirkpatrickAlgorithm::new(4)),
        || Box::new(AsyncScheduler::new(13)),
        None,
        4_000,
    );
}

#[test]
fn per_robot_radii_reports_are_identical() {
    // Exercises the min(rᵢ, rⱼ) cohesion thresholds and directional
    // perception on the non-uniform branch of both paths.
    let config = cloud(8, 46);
    let radii: Vec<f64> = (0..8).map(|i| 1.0 + 0.25 * (i % 3) as f64).collect();
    compare(
        "hetero-radii",
        &config,
        || Box::new(cohesion_core::KirkpatrickAlgorithm::new(2)),
        || Box::new(KAsyncScheduler::new(2, 17)),
        Some(radii),
        3_000,
    );
}

#[test]
fn converging_run_reports_are_identical() {
    // A run that actually reaches ε, so the early-break path (convergence
    // observed at a sampled event) is compared too.
    compare(
        "fsync-converges",
        &cloud(6, 47),
        || Box::new(cohesion_core::KirkpatrickAlgorithm::new(1)),
        || Box::new(FSyncScheduler::new()),
        None,
        200_000,
    );
}
