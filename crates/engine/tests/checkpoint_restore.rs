//! The checkpoint/restore contract: byte-for-byte resumption.
//!
//! Mirrors the session-equivalence suite's slice-invariance property one
//! level up: instead of pausing a *live* session, these tests serialize it
//! to a [`Checkpoint`], push the bytes through the JSON envelope (exactly
//! what hits disk in the distributed lab), restore onto a **freshly built**
//! same-spec session, and require the continued run's report to equal the
//! uninterrupted run's — across all five scheduler classes at random cut
//! points, plus the scripted Figure 4(a) adversary schedule.
//!
//! The integrity half of the contract is tested destructively: a checkpoint
//! file truncated at *any* byte, or with any state byte flipped, must be
//! rejected loudly (JSON or FNV-1a hash check) — never restored wrong.

use cohesion_engine::{Budget, Checkpoint, SimulationBuilder};
use cohesion_model::FrameMode;
use cohesion_scheduler::{
    AsyncScheduler, FSyncScheduler, KAsyncScheduler, NestAScheduler, SSyncScheduler, Scheduler,
};
use proptest::prelude::*;

/// One scheduler class under the frozen golden-case spec of the
/// session-equivalence suite (same config, seeds, budget, and monitor
/// cadences — so any divergence here is attributable to save/restore).
struct GoldenCase {
    label: &'static str,
    make: fn(u64) -> Box<dyn Scheduler>,
    k: u32,
}

const GOLDEN: [GoldenCase; 5] = [
    GoldenCase {
        label: "fsync",
        make: |_| Box::new(FSyncScheduler::new()),
        k: 1,
    },
    GoldenCase {
        label: "ssync",
        make: |s| Box::new(SSyncScheduler::new(s)),
        k: 1,
    },
    GoldenCase {
        label: "nest-a",
        make: |s| Box::new(NestAScheduler::new(2, s)),
        k: 2,
    },
    GoldenCase {
        label: "k-async",
        make: |s| Box::new(KAsyncScheduler::new(2, s)),
        k: 2,
    },
    GoldenCase {
        label: "async",
        make: |s| Box::new(AsyncScheduler::new(s)),
        k: 4,
    },
];

fn golden_builder(case: &GoldenCase) -> SimulationBuilder {
    SimulationBuilder::new(
        cohesion_workloads::random_connected(12, 1.0, 303),
        cohesion_core::KirkpatrickAlgorithm::new(case.k),
    )
    .visibility(1.0)
    .scheduler((case.make)(0x5E55_10F1))
    .seed(0xC0FF_EE00 + case.k as u64)
    .epsilon(0.05)
    .max_events(3_000)
    .track_strong_visibility(true)
    .hull_check_every(16)
    .diameter_sample_every(8)
}

fn figure4a_builder() -> SimulationBuilder {
    SimulationBuilder::new(
        cohesion_adversary::ando_counterexample::figure4_configuration(),
        cohesion_core::KirkpatrickAlgorithm::new(1),
    )
    .visibility(cohesion_adversary::ando_counterexample::V)
    .scheduler(cohesion_scheduler::ScriptedScheduler::new(
        "figure4",
        cohesion_adversary::ando_counterexample::figure4a_schedule(),
    ))
    .epsilon(1e-6)
    .frame_mode(FrameMode::Aligned)
}

/// Saves at `cut` events, round-trips the checkpoint through its JSON
/// envelope, restores onto a fresh same-spec session, and finishes both.
fn resume_after_cut(case: &GoldenCase, cut: usize) {
    let uninterrupted = golden_builder(case).run();

    let mut original = golden_builder(case).build();
    original.run_for(Budget::events(cut));
    let checkpoint = original.save().expect("golden schedulers checkpoint");
    drop(original); // the process "died" here

    // Through the on-disk form, exactly as the lab worker writes/reads it.
    let revived = Checkpoint::from_json(&checkpoint.to_json()).expect("envelope round trip");
    assert_eq!(revived, checkpoint);

    let mut resumed = golden_builder(case).build();
    resumed.restore(&revived).expect("restore onto same spec");
    while !resumed.step().is_terminal() {}
    assert_eq!(
        resumed.into_report(),
        uninterrupted,
        "{} cut at {cut}: resumed report diverged",
        case.label
    );
}

/// A fixed mid-run cut resumes byte-for-byte for every scheduler class.
#[test]
fn restore_resumes_byte_for_byte_at_a_fixed_cut() {
    for case in &GOLDEN {
        resume_after_cut(case, 1_234);
    }
}

/// Degenerate cuts: before the first event, and after the run terminated.
#[test]
fn restore_resumes_at_the_boundaries() {
    for case in &GOLDEN {
        resume_after_cut(case, 0);
        resume_after_cut(case, usize::MAX);
    }
}

/// The scripted Figure 4(a) adversary schedule — a finite queue-backed
/// scheduler — checkpoints mid-script and resumes byte-for-byte.
#[test]
fn scripted_schedule_resumes_byte_for_byte() {
    let uninterrupted = figure4a_builder().run();
    let mut original = figure4a_builder().build();
    original.run_for(Budget::events(5));
    let checkpoint = original.save().expect("scripted scheduler checkpoints");
    let mut resumed = figure4a_builder().build();
    resumed.restore(&checkpoint).expect("restore scripted run");
    while !resumed.step().is_terminal() {}
    assert_eq!(resumed.into_report(), uninterrupted);
}

/// Checkpoint chains — save, die, resume, save again, die again — the
/// distributed worker's periodic-checkpoint lifecycle.
#[test]
fn chained_checkpoints_resume_byte_for_byte() {
    let case = &GOLDEN[3]; // k-async: the most state-heavy generator
    let uninterrupted = golden_builder(case).run();

    let mut first = golden_builder(case).build();
    first.run_for(Budget::events(400));
    let ckpt_a = first.save().expect("first checkpoint");

    let mut second = golden_builder(case).build();
    second.restore(&ckpt_a).expect("first resume");
    second.run_for(Budget::events(500));
    let ckpt_b = second.save().expect("second checkpoint");

    let mut third = golden_builder(case).build();
    third.restore(&ckpt_b).expect("second resume");
    while !third.step().is_terminal() {}
    assert_eq!(third.into_report(), uninterrupted);
}

/// A checkpoint refuses to restore into a session built from a different
/// scenario (here: a different scheduler class — caught by the
/// fingerprint before any state is touched).
#[test]
fn restore_rejects_a_different_scenario() {
    let mut fsync = golden_builder(&GOLDEN[0]).build();
    fsync.run_for(Budget::events(100));
    let checkpoint = fsync.save().expect("checkpoint");
    let mut ssync = golden_builder(&GOLDEN[1]).build();
    let err = ssync.restore(&checkpoint).unwrap_err();
    assert!(err.contains("fingerprint"), "{err}");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Save/restore at a *random* event boundary reproduces the
    /// uninterrupted report byte-for-byte (the checkpoint counterpart of
    /// the equivalence suite's random-slice property).
    #[test]
    fn random_cuts_reproduce_the_uninterrupted_report(
        case_idx in 0usize..GOLDEN.len(),
        cut in 1usize..3_000,
    ) {
        resume_after_cut(&GOLDEN[case_idx], cut);
    }

    /// Torn-write rejection: a checkpoint file truncated at a random byte
    /// never restores — the JSON parse or the content-hash check fails.
    #[test]
    fn truncated_checkpoints_are_rejected(
        case_idx in 0usize..GOLDEN.len(),
        cut_frac in 0.0f64..1.0,
    ) {
        let mut session = golden_builder(&GOLDEN[case_idx]).build();
        session.run_for(Budget::events(600));
        let json = session.save().expect("checkpoint").to_json();
        let cut = ((json.len() as f64 * cut_frac) as usize).clamp(1, json.len() - 1);
        prop_assert!(
            Checkpoint::from_json(&json[..cut]).is_err(),
            "truncation at byte {cut} of {} was accepted",
            json.len()
        );
    }

    /// Bit-flip rejection: corrupting any single byte of the embedded state
    /// trips the FNV-1a hash check.
    #[test]
    fn corrupted_state_bytes_are_rejected(flip_frac in 0.0f64..1.0) {
        let mut session = golden_builder(&GOLDEN[0]).build();
        session.run_for(Budget::events(600));
        let json = session.save().expect("checkpoint").to_json();
        // Corrupt one digit inside the state payload (digits stay valid
        // JSON, so the failure must come from the hash check, not the
        // parser).
        let digits: Vec<usize> = json
            .char_indices()
            .skip(json.find("\"state\"").expect("state field"))
            .filter(|&(_, c)| c.is_ascii_digit())
            .map(|(i, _)| i)
            .collect();
        let target = digits[(flip_frac * (digits.len() - 1) as f64) as usize];
        let mut bytes = json.into_bytes();
        bytes[target] = if bytes[target] == b'9' { b'8' } else { b'9' };
        let tampered = String::from_utf8(bytes).expect("still utf-8");
        let err = Checkpoint::from_json(&tampered).unwrap_err();
        prop_assert!(
            err.contains("hash mismatch") || err.contains("not valid JSON"),
            "unexpected rejection: {err}"
        );
    }
}
