//! Bit-exact equivalence of the grid-backed Look phase and the historical
//! brute-force observation loop.
//!
//! The engine's Look used to rebuild `all_positions` (an `O(n)` allocation),
//! scan all `n` robots linearly, and run an `O(n)` occlusion test per
//! visible candidate. The grid-backed pipeline gathers the `O(deg)`
//! stationary candidates from an incremental [`cohesion_geometry::DynamicGrid`],
//! checks the motile few at interpolated positions, prunes occlusion through
//! the cells around the sight segment, and reuses pooled scratch buffers —
//! but sorts merged candidates into ascending robot order, the historical
//! scan order, so every RNG draw happens in the same sequence and the two
//! paths must produce **identical** [`SimulationReport`]s.
//!
//! The old loop is carried verbatim inside the engine as
//! [`LookPath::BruteReference`]; this suite sweeps the full equivalence
//! matrix — all five scheduler classes × occlusion on/off × heterogeneous
//! radii on/off — over frozen-seed random connected configurations, and
//! compares reports both structurally and as serialized JSON bytes (the
//! format the sweep harness persists).

use cohesion_engine::{LookPath, SimulationBuilder, SimulationReport};
use cohesion_geometry::Vec2;
use cohesion_model::{Algorithm, Configuration};
use cohesion_scheduler::{
    AsyncScheduler, FSyncScheduler, KAsyncScheduler, NestAScheduler, SSyncScheduler, Scheduler,
};

/// One cell of the equivalence matrix: a scheduler class paired with the
/// algorithm `k` the class needs for cohesion.
struct SchedulerCase {
    label: &'static str,
    make: fn(u64) -> Box<dyn Scheduler>,
    k: u32,
}

const SCHEDULER_CASES: [SchedulerCase; 5] = [
    SchedulerCase {
        label: "fsync",
        make: |_| Box::new(FSyncScheduler::new()),
        k: 1,
    },
    SchedulerCase {
        label: "ssync",
        make: |seed| Box::new(SSyncScheduler::new(seed)),
        k: 1,
    },
    SchedulerCase {
        label: "nest-a",
        make: |seed| Box::new(NestAScheduler::new(2, seed)),
        k: 2,
    },
    SchedulerCase {
        label: "k-async",
        make: |seed| Box::new(KAsyncScheduler::new(2, seed)),
        k: 2,
    },
    SchedulerCase {
        label: "async",
        make: |seed| Box::new(AsyncScheduler::new(seed)),
        k: 4,
    },
];

fn run_with(
    path: LookPath,
    config: &Configuration<Vec2>,
    algorithm: impl Algorithm<Vec2> + 'static,
    scheduler: Box<dyn Scheduler>,
    occlusion: Option<f64>,
    radii: Option<Vec<f64>>,
    seed: u64,
) -> SimulationReport<Vec2> {
    let mut builder = SimulationBuilder::new(config.clone(), algorithm)
        .visibility(1.0)
        .scheduler(scheduler)
        .seed(seed)
        .epsilon(0.05)
        .max_events(2_500)
        .track_strong_visibility(true)
        .hull_check_every(16)
        .diameter_sample_every(8)
        .look_path(path);
    if let Some(tol) = occlusion {
        builder = builder.occlusion(tol);
    }
    if let Some(radii) = radii {
        builder = builder.visibility_radii(radii);
    }
    builder.run()
}

/// Heterogeneous radii within a small constant factor (paper §6.2), frozen
/// per robot index.
fn hetero_radii(n: usize) -> Vec<f64> {
    (0..n).map(|i| 1.0 + 0.25 * (i % 3) as f64).collect()
}

/// The property: for every matrix cell and every frozen seed, the two Look
/// paths yield byte-identical reports.
#[test]
fn grid_look_reports_are_byte_identical_across_the_matrix() {
    // Frozen rng stream: configuration seeds drive random_connected, run
    // seeds drive engine randomness (frames, distortions, factor draws) and
    // scheduler jitter.
    let cases: &[(usize, u64, u64)] = &[(10, 101, 0xE01D_C0DE), (13, 202, 0xBADC_0FFE)];
    for case in &SCHEDULER_CASES {
        for &(n, config_seed, run_seed) in cases {
            let config = cohesion_workloads::random_connected(n, 1.0, config_seed);
            for occlusion in [None, Some(0.08)] {
                for hetero in [false, true] {
                    let radii = hetero.then(|| hetero_radii(n));
                    let mut reports =
                        [LookPath::Grid, LookPath::BruteReference]
                            .into_iter()
                            .map(|path| {
                                run_with(
                                    path,
                                    &config,
                                    cohesion_core::KirkpatrickAlgorithm::new(case.k),
                                    (case.make)(run_seed ^ config_seed),
                                    occlusion,
                                    radii.clone(),
                                    run_seed,
                                )
                            });
                    let grid = reports.next().unwrap();
                    let brute = reports.next().unwrap();
                    let label = format!(
                        "{} n={n} occlusion={occlusion:?} hetero={hetero}",
                        case.label
                    );
                    assert!(grid.events > 0, "{label}: nothing simulated");
                    assert_eq!(grid, brute, "{label}: reports diverged");
                    let grid_json = serde_json::to_string(&grid).expect("serialize");
                    let brute_json = serde_json::to_string(&brute).expect("serialize");
                    assert_eq!(grid_json, brute_json, "{label}: JSON bytes diverged");
                }
            }
        }
    }
}

/// Distorted frames + distance error: the RNG-hungriest perception pipeline
/// (a distortion sample and a factor draw per observed robot) stays in
/// lockstep between the paths.
#[test]
fn grid_look_matches_under_perception_error() {
    use cohesion_model::PerceptionModel;
    let config = cohesion_workloads::random_connected(12, 1.0, 77);
    let perception = PerceptionModel {
        distance_error: 0.02,
        skew: 0.1,
    };
    for occlusion in [None, Some(0.05)] {
        let run = |path: LookPath| {
            let mut builder =
                SimulationBuilder::new(config.clone(), cohesion_core::KirkpatrickAlgorithm::new(2))
                    .visibility(1.0)
                    .scheduler(KAsyncScheduler::new(2, 5))
                    .seed(0xD15_7027)
                    .epsilon(0.05)
                    .max_events(2_000)
                    .perception(perception)
                    .look_path(path);
            if let Some(tol) = occlusion {
                builder = builder.occlusion(tol);
            }
            builder.run()
        };
        let grid = run(LookPath::Grid);
        let brute = run(LookPath::BruteReference);
        assert_eq!(
            serde_json::to_string(&grid).expect("serialize"),
            serde_json::to_string(&brute).expect("serialize"),
            "occlusion={occlusion:?}"
        );
    }
}

/// Multiplicity detection toggles the in-place dedup on the grid path and
/// the consuming dedup on the reference — both must collapse identically.
#[test]
fn grid_look_matches_with_multiplicity_detection() {
    let config = cohesion_workloads::random_connected(9, 1.0, 55);
    for detection in [false, true] {
        let run = |path: LookPath| {
            SimulationBuilder::new(config.clone(), cohesion_core::KirkpatrickAlgorithm::new(1))
                .visibility(1.0)
                .scheduler(FSyncScheduler::new())
                .seed(4242)
                .epsilon(0.05)
                .max_events(1_500)
                .multiplicity_detection(detection)
                .look_path(path)
                .run()
        };
        assert_eq!(
            run(LookPath::Grid),
            run(LookPath::BruteReference),
            "multiplicity_detection={detection}"
        );
    }
}
