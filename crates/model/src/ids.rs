//! Robot identifiers.
//!
//! Robots in the OBLOT model are *anonymous*: they carry no identities usable
//! by the algorithm. [`RobotId`] exists purely on the simulator side — for
//! indexing state, recording traces, and phrasing predicates like “the edge
//! `(X, Y)` of the initial visibility graph is preserved”.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A simulator-side robot identifier (dense index, assigned in configuration
/// order). Never visible to the robots' algorithm.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct RobotId(pub u32);

impl RobotId {
    /// The underlying dense index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl From<u32> for RobotId {
    fn from(v: u32) -> Self {
        RobotId(v)
    }
}

impl From<usize> for RobotId {
    fn from(v: usize) -> Self {
        RobotId(u32::try_from(v).expect("robot index fits in u32"))
    }
}

impl fmt::Display for RobotId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "R{}", self.0)
    }
}

/// An unordered pair of robot ids, normalized so `a ≤ b`; the edge type of
/// visibility graphs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct RobotPair {
    /// Smaller id.
    pub a: RobotId,
    /// Larger id.
    pub b: RobotId,
}

impl RobotPair {
    /// Creates the normalized unordered pair.
    ///
    /// # Panics
    ///
    /// Panics if `x == y` (a robot is not its own neighbour).
    pub fn new(x: RobotId, y: RobotId) -> Self {
        assert_ne!(x, y, "a visibility edge needs two distinct robots");
        if x < y {
            RobotPair { a: x, b: y }
        } else {
            RobotPair { a: y, b: x }
        }
    }

    /// Returns the partner of `id` in this pair, or `None` when `id` is not
    /// an endpoint.
    pub fn other(&self, id: RobotId) -> Option<RobotId> {
        if id == self.a {
            Some(self.b)
        } else if id == self.b {
            Some(self.a)
        } else {
            None
        }
    }
}

impl fmt::Display for RobotPair {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.a, self.b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pair_normalizes() {
        let p = RobotPair::new(RobotId(5), RobotId(2));
        assert_eq!(p.a, RobotId(2));
        assert_eq!(p.b, RobotId(5));
        assert_eq!(p, RobotPair::new(RobotId(2), RobotId(5)));
    }

    #[test]
    #[should_panic]
    fn self_pair_panics() {
        let _ = RobotPair::new(RobotId(1), RobotId(1));
    }

    #[test]
    fn other_endpoint() {
        let p = RobotPair::new(RobotId(1), RobotId(3));
        assert_eq!(p.other(RobotId(1)), Some(RobotId(3)));
        assert_eq!(p.other(RobotId(3)), Some(RobotId(1)));
        assert_eq!(p.other(RobotId(7)), None);
    }

    #[test]
    fn display_formats() {
        assert_eq!(RobotId(4).to_string(), "R4");
        assert_eq!(
            RobotPair::new(RobotId(1), RobotId(0)).to_string(),
            "(R0, R1)"
        );
    }
}
