//! Budgets and progress views for incremental simulation drivers.
//!
//! A long-running simulation is driven in *slices*: the session owner hands
//! the driver a [`Budget`] (how much more work this slice may do), runs it,
//! inspects a [`Progress`] snapshot, and decides whether to continue, emit a
//! heartbeat, or stop. Both types are plain data — they live in the model
//! crate so every layer (engine sessions, sweep harnesses, CLIs) can speak
//! them without depending on the engine.

/// How much work a simulation driver may perform before yielding.
///
/// Budgets combine an **event** allowance (engine events, relative to where
/// the slice starts) and a **simulated-time** ceiling (absolute). A budget
/// is exhausted as soon as either bound is hit. The time bound is a *clamp*:
/// a driver honouring a budget must not process any event whose timestamp
/// exceeds `max_time` — not even one (the historical driver loop tested the
/// time budget against the *previous* event's time and so overran by one
/// event; `Budget` pins the corrected semantics).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Budget {
    /// Maximum number of events the slice may process.
    pub max_events: usize,
    /// Absolute simulated-time ceiling: no event with `time > max_time` may
    /// be processed.
    pub max_time: f64,
}

impl Budget {
    /// No bounds: run until the simulation terminates on its own.
    pub const UNLIMITED: Budget = Budget {
        max_events: usize::MAX,
        max_time: f64::INFINITY,
    };

    /// A budget of `n` events with no time bound.
    #[must_use]
    pub fn events(n: usize) -> Budget {
        Budget {
            max_events: n,
            ..Budget::UNLIMITED
        }
    }

    /// A budget bounded only by the simulated-time ceiling `t`.
    ///
    /// # Panics
    ///
    /// Panics when `t` is NaN or negative.
    #[must_use]
    pub fn time(t: f64) -> Budget {
        Budget::UNLIMITED.and_time(t)
    }

    /// This budget with the event allowance additionally capped at `n`.
    #[must_use]
    pub fn and_events(mut self, n: usize) -> Budget {
        self.max_events = self.max_events.min(n);
        self
    }

    /// This budget with the time ceiling additionally clamped to `t`.
    ///
    /// # Panics
    ///
    /// Panics when `t` is NaN or negative.
    #[must_use]
    pub fn and_time(mut self, t: f64) -> Budget {
        assert!(t >= 0.0, "time budget must be non-negative, got {t}");
        self.max_time = self.max_time.min(t);
        self
    }

    /// `true` when `events` processed so far exhaust the event allowance.
    #[must_use]
    pub fn events_exhausted(&self, events: usize) -> bool {
        events >= self.max_events
    }

    /// `true` when an event stamped `time` may be processed under the time
    /// ceiling (the clamped semantics: the event at exactly `max_time` is
    /// still in budget, the first one beyond it is not).
    #[must_use]
    pub fn admits_time(&self, time: f64) -> bool {
        time <= self.max_time
    }
}

impl Default for Budget {
    fn default() -> Self {
        Budget::UNLIMITED
    }
}

/// A cheap point-in-time view of a running simulation, for heartbeats,
/// stop predicates, and telemetry.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Progress {
    /// Engine events processed so far.
    pub events: usize,
    /// Completed rounds (every robot finished ≥ 1 cycle per round).
    pub rounds: usize,
    /// Simulated time of the last processed event.
    pub time: f64,
    /// Configuration diameter at `time`.
    pub diameter: f64,
    /// `true` while no initially-visible pair has been observed separated
    /// (the Cohesive Convergence clause, as monitored so far).
    pub cohesion_ok: bool,
    /// `true` once a sampled diameter reached the convergence threshold.
    pub converged: bool,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_admits_everything() {
        let b = Budget::UNLIMITED;
        assert!(!b.events_exhausted(usize::MAX - 1));
        assert!(b.admits_time(1e300));
    }

    #[test]
    fn event_budget_is_relative_count() {
        let b = Budget::events(10);
        assert!(!b.events_exhausted(9));
        assert!(b.events_exhausted(10));
        assert!(b.admits_time(f64::MAX));
    }

    #[test]
    fn time_budget_clamps_at_the_boundary() {
        let b = Budget::time(5.0);
        assert!(
            b.admits_time(5.0),
            "an event at exactly max_time is in budget"
        );
        assert!(!b.admits_time(5.0 + 1e-12), "the first event beyond is not");
    }

    #[test]
    fn combinators_take_the_tighter_bound() {
        let b = Budget::events(100).and_time(2.0).and_events(7);
        assert_eq!(b.max_events, 7);
        assert_eq!(b.max_time, 2.0);
        let b = Budget::time(2.0).and_time(9.0);
        assert_eq!(b.max_time, 2.0, "and_time never loosens");
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_time_budget_rejected() {
        let _ = Budget::time(-1.0);
    }
}
