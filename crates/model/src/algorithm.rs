//! The [`Algorithm`] trait: the Compute phase of a Look–Compute–Move cycle.

use crate::snapshot::Snapshot;
use cohesion_geometry::point::Point;
use std::fmt::Debug;

/// A convergence algorithm `A` in the OBLOT sense (§2.2): a deterministic,
/// oblivious map from a Look snapshot to an intended destination.
///
/// * The input snapshot is in the robot's *local frame* with the robot at the
///   origin; the output is the intended destination in the same frame (the
///   zero vector means the nil movement).
/// * Implementations must be memoryless (`&self` receives no mutable state)
///   and identical across robots — properties the type system enforces by
///   construction here.
/// * Implementations must be equivariant under orthogonal maps of the local
///   frame (robots are disoriented); this is checked by property tests, not
///   the compiler.
pub trait Algorithm<P: Point>: Debug + Send + Sync {
    /// Computes the intended destination for the observed snapshot.
    fn compute(&self, snapshot: &Snapshot<P>) -> P;

    /// A short human-readable name used in experiment tables.
    fn name(&self) -> &str;
}

impl<P: Point, A: Algorithm<P> + ?Sized> Algorithm<P> for &A {
    fn compute(&self, snapshot: &Snapshot<P>) -> P {
        (**self).compute(snapshot)
    }

    fn name(&self) -> &str {
        (**self).name()
    }
}

impl<P: Point, A: Algorithm<P> + ?Sized> Algorithm<P> for Box<A> {
    fn compute(&self, snapshot: &Snapshot<P>) -> P {
        (**self).compute(snapshot)
    }

    fn name(&self) -> &str {
        (**self).name()
    }
}

/// The algorithm that never moves; useful as a control in scheduler tests
/// and as the crashed-robot stand-in for fault-tolerance experiments (§6.1).
#[derive(Debug, Clone, Copy, Default)]
pub struct NilAlgorithm;

impl<P: Point> Algorithm<P> for NilAlgorithm {
    fn compute(&self, _snapshot: &Snapshot<P>) -> P {
        P::zero()
    }

    fn name(&self) -> &str {
        "nil"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cohesion_geometry::Vec2;

    #[test]
    fn nil_never_moves() {
        let s = Snapshot::from_positions(vec![Vec2::new(1.0, 0.0)]);
        assert_eq!(NilAlgorithm.compute(&s), Vec2::ZERO);
        assert_eq!(Algorithm::<Vec2>::name(&NilAlgorithm), "nil");
    }

    #[test]
    fn trait_objects_work() {
        let boxed: Box<dyn Algorithm<Vec2>> = Box::new(NilAlgorithm);
        let s = Snapshot::from_positions(vec![]);
        assert_eq!(boxed.compute(&s), Vec2::ZERO);
        let by_ref: &dyn Algorithm<Vec2> = &NilAlgorithm;
        assert_eq!(by_ref.compute(&s), Vec2::ZERO);
    }
}
