//! Private local coordinate systems (paper §2.2) and their adversarial
//! distortions (§2.3.3, §6.1).
//!
//! Each Look phase delivers positions “expressed within a local (i.e.
//! private) coordinate system”, inconsistent between robots and between
//! activations of the same robot. We model a local frame as an orthogonal
//! linear map (rotation, possibly with reflection — robots have no agreed
//! chirality) applied to displacement vectors; the translation part is
//! implicit (the observing robot sits at its own origin).
//!
//! On top of the orthogonal frame the adversary may apply a *symmetric
//! distortion* `µ: [0,2π) → [0,2π)` with `µ(θ+π) = µ(θ)+π` and bounded skew
//! `λ`: `(1−λ)ξ ≤ µ(θ+ξ) − µ(θ) ≤ (1+λ)ξ`. We realize the family as
//! `µ(θ) = θ + a·sin(2θ + φ)` with `a ≤ λ/2`, which satisfies both conditions
//! exactly (the derivative is `1 + 2a·cos(2θ+φ)` and the `sin(2θ)` harmonic
//! is `π`-periodic).

use cohesion_geometry::point::Point;
use cohesion_geometry::{Vec2, Vec3};
use rand::rngs::SmallRng;
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::f64::consts::TAU;
use std::fmt::Debug;

/// An invertible map between global and local *displacement* coordinates.
pub trait Frame<P>: Debug {
    /// Global displacement → local coordinates.
    fn to_local(&self, v: P) -> P;
    /// Local displacement → global coordinates (exact inverse of
    /// [`Frame::to_local`]).
    fn to_global(&self, v: P) -> P;
}

/// How the simulator chooses local frames at each activation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum FrameMode {
    /// All robots share the global frame (axis agreement — required by the
    /// GCM baseline, and handy for debugging).
    Aligned,
    /// Fresh uniformly random rotation at every activation (disoriented
    /// robots with common chirality).
    #[default]
    RandomRotation,
    /// Fresh random rotation *and* a coin-flip reflection (no chirality —
    /// the paper's base assumption).
    RandomOrtho,
}

/// A planar orthogonal frame: rotation by `angle`, optionally composed with
/// a reflection across the local `x` axis.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Iso2 {
    /// Rotation angle from global to local axes.
    pub angle: f64,
    /// Whether the local frame is mirror-imaged.
    pub reflect: bool,
}

impl Iso2 {
    /// The identity frame.
    pub const IDENTITY: Iso2 = Iso2 {
        angle: 0.0,
        reflect: false,
    };

    /// Samples a frame according to `mode`.
    pub fn sample(mode: FrameMode, rng: &mut SmallRng) -> Iso2 {
        match mode {
            FrameMode::Aligned => Iso2::IDENTITY,
            FrameMode::RandomRotation => Iso2 {
                angle: rng.gen_range(0.0..TAU),
                reflect: false,
            },
            FrameMode::RandomOrtho => Iso2 {
                angle: rng.gen_range(0.0..TAU),
                reflect: rng.gen_bool(0.5),
            },
        }
    }
}

impl Frame<Vec2> for Iso2 {
    fn to_local(&self, v: Vec2) -> Vec2 {
        let r = v.rotate(-self.angle);
        if self.reflect {
            r.reflect_x()
        } else {
            r
        }
    }

    fn to_global(&self, v: Vec2) -> Vec2 {
        let r = if self.reflect { v.reflect_x() } else { v };
        r.rotate(self.angle)
    }
}

/// A spatial orthogonal frame given by an orthonormal basis (rows of the
/// global→local matrix). A negative-determinant basis is a reflected frame.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Iso3 {
    /// The three orthonormal basis vectors of the local frame, expressed in
    /// global coordinates.
    pub basis: [Vec3; 3],
}

impl Iso3 {
    /// The identity frame.
    pub const IDENTITY: Iso3 = Iso3 {
        basis: [
            Vec3 {
                x: 1.0,
                y: 0.0,
                z: 0.0,
            },
            Vec3 {
                x: 0.0,
                y: 1.0,
                z: 0.0,
            },
            Vec3 {
                x: 0.0,
                y: 0.0,
                z: 1.0,
            },
        ],
    };

    /// Samples a frame according to `mode` (uniform random orthonormal basis
    /// via Gram–Schmidt on Gaussian-ish vectors).
    pub fn sample(mode: FrameMode, rng: &mut SmallRng) -> Iso3 {
        match mode {
            FrameMode::Aligned => Iso3::IDENTITY,
            FrameMode::RandomRotation | FrameMode::RandomOrtho => {
                let rand_unit = |rng: &mut SmallRng| loop {
                    let v = Vec3::new(
                        rng.gen_range(-1.0..1.0),
                        rng.gen_range(-1.0..1.0),
                        rng.gen_range(-1.0..1.0),
                    );
                    let n = v.norm();
                    if n > 1e-3 && n <= 1.0 {
                        return v * (1.0 / n);
                    }
                };
                let e0 = rand_unit(rng);
                let mut e1 = rand_unit(rng);
                e1 = e1 - e0 * e0.dot(e1);
                let e1 = match e1.normalized(1e-9) {
                    Some(u) => u,
                    None => {
                        // Rare near-parallel draw: pick any perpendicular.
                        let alt = if e0.x.abs() < 0.9 {
                            Vec3::new(1.0, 0.0, 0.0)
                        } else {
                            Vec3::new(0.0, 1.0, 0.0)
                        };
                        (alt - e0 * e0.dot(alt))
                            .normalized(1e-12)
                            .expect("perpendicular exists")
                    }
                };
                let mut e2 = e0.cross(e1);
                if mode == FrameMode::RandomOrtho && rng.gen_bool(0.5) {
                    e2 = -e2; // reflected frame
                }
                Iso3 {
                    basis: [e0, e1, e2],
                }
            }
        }
    }
}

impl Frame<Vec3> for Iso3 {
    fn to_local(&self, v: Vec3) -> Vec3 {
        Vec3::new(
            self.basis[0].dot(v),
            self.basis[1].dot(v),
            self.basis[2].dot(v),
        )
    }

    fn to_global(&self, v: Vec3) -> Vec3 {
        self.basis[0] * v.x + self.basis[1] * v.y + self.basis[2] * v.z
    }
}

/// A symmetric angular distortion `µ(θ) = θ + a·sin(2θ + φ)` with skew
/// `λ = 2a < 1` (paper §6.1). The identity is `a = 0`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Distortion {
    /// Amplitude `a` of the harmonic (skew is `2a`).
    pub amplitude: f64,
    /// Phase `φ` of the harmonic.
    pub phase: f64,
}

impl Distortion {
    /// The identity distortion.
    pub const IDENTITY: Distortion = Distortion {
        amplitude: 0.0,
        phase: 0.0,
    };

    /// Creates a distortion with the given skew bound `λ` and phase; the
    /// realized skew is exactly `λ`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 ≤ λ < 1`.
    pub fn with_skew(lambda: f64, phase: f64) -> Distortion {
        assert!((0.0..1.0).contains(&lambda), "skew must be in [0, 1)");
        Distortion {
            amplitude: lambda / 2.0,
            phase,
        }
    }

    /// Samples a distortion with skew at most `lambda`.
    pub fn sample(lambda: f64, rng: &mut SmallRng) -> Distortion {
        assert!((0.0..1.0).contains(&lambda), "skew must be in [0, 1)");
        Distortion {
            amplitude: rng.gen_range(0.0..=(lambda / 2.0)),
            phase: rng.gen_range(0.0..TAU),
        }
    }

    /// The skew bound `λ = 2a` realized by this distortion.
    pub fn skew(&self) -> f64 {
        2.0 * self.amplitude
    }

    /// Applies `µ` to an angle.
    pub fn apply_angle(&self, theta: f64) -> f64 {
        theta + self.amplitude * (2.0 * theta + self.phase).sin()
    }

    /// Inverts `µ` numerically (Newton with bisection fallback; `µ` is
    /// strictly increasing because the skew is below 1).
    pub fn invert_angle(&self, target: f64) -> f64 {
        if self.amplitude == 0.0 {
            return target;
        }
        // µ(θ) − θ is bounded by a, so bracket around the target.
        let mut lo = target - self.amplitude - 1e-12;
        let mut hi = target + self.amplitude + 1e-12;
        for _ in 0..200 {
            let mid = 0.5 * (lo + hi);
            if self.apply_angle(mid) < target {
                lo = mid;
            } else {
                hi = mid;
            }
            if hi - lo < 1e-14 {
                break;
            }
        }
        0.5 * (lo + hi)
    }

    /// Applies the distortion to a planar displacement (norm preserved,
    /// angle distorted).
    pub fn apply(&self, v: Vec2) -> Vec2 {
        if self.amplitude == 0.0 {
            return v;
        }
        let n = v.norm();
        if n == 0.0 {
            return v;
        }
        Vec2::from_angle(self.apply_angle(v.angle())) * n
    }

    /// Applies the inverse distortion to a planar displacement.
    pub fn unapply(&self, v: Vec2) -> Vec2 {
        if self.amplitude == 0.0 {
            return v;
        }
        let n = v.norm();
        if n == 0.0 {
            return v;
        }
        Vec2::from_angle(self.invert_angle(v.angle())) * n
    }
}

/// A [`Point`] type that knows its frame machinery; implemented for [`Vec2`]
/// and [`Vec3`] so the engine can stay dimension-generic.
pub trait Ambient: Point {
    /// The orthogonal frame type of this space.
    type AmbientFrame: Frame<Self> + Debug + Clone + Copy + Send + Sync + 'static;

    /// The identity frame.
    fn identity_frame() -> Self::AmbientFrame;

    /// Samples a frame per [`FrameMode`].
    fn sample_frame(mode: FrameMode, rng: &mut SmallRng) -> Self::AmbientFrame;

    /// Applies an angular distortion to a local displacement. The paper's
    /// distortion model is planar; in 3D this is the identity (documented
    /// substitution — see DESIGN.md).
    fn distort(v: Self, d: &Distortion) -> Self;

    /// Inverse of [`Ambient::distort`].
    fn undistort(v: Self, d: &Distortion) -> Self;
}

impl Ambient for Vec2 {
    type AmbientFrame = Iso2;

    fn identity_frame() -> Iso2 {
        Iso2::IDENTITY
    }

    fn sample_frame(mode: FrameMode, rng: &mut SmallRng) -> Iso2 {
        Iso2::sample(mode, rng)
    }

    fn distort(v: Vec2, d: &Distortion) -> Vec2 {
        d.apply(v)
    }

    fn undistort(v: Vec2, d: &Distortion) -> Vec2 {
        d.unapply(v)
    }
}

impl Ambient for Vec3 {
    type AmbientFrame = Iso3;

    fn identity_frame() -> Iso3 {
        Iso3::IDENTITY
    }

    fn sample_frame(mode: FrameMode, rng: &mut SmallRng) -> Iso3 {
        Iso3::sample(mode, rng)
    }

    fn distort(v: Vec3, _d: &Distortion) -> Vec3 {
        v
    }

    fn undistort(v: Vec3, _d: &Distortion) -> Vec3 {
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn iso2_roundtrip() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..50 {
            let f = Iso2::sample(FrameMode::RandomOrtho, &mut rng);
            let v = Vec2::new(rng.gen_range(-3.0..3.0), rng.gen_range(-3.0..3.0));
            let back = f.to_global(f.to_local(v));
            assert!((back - v).norm() < 1e-12);
            // Orthogonal maps preserve norms.
            assert!((f.to_local(v).norm() - v.norm()).abs() < 1e-12);
        }
    }

    #[test]
    fn iso2_reflection_flips_orientation() {
        let f = Iso2 {
            angle: 0.3,
            reflect: true,
        };
        let a = Vec2::new(1.0, 0.0);
        let b = Vec2::new(0.0, 1.0);
        let cross_global = a.cross(b);
        let cross_local = f.to_local(a).cross(f.to_local(b));
        assert!(cross_global * cross_local < 0.0);
    }

    #[test]
    fn iso3_roundtrip_and_orthonormal() {
        let mut rng = SmallRng::seed_from_u64(2);
        for _ in 0..30 {
            let f = Iso3::sample(FrameMode::RandomOrtho, &mut rng);
            for i in 0..3 {
                assert!((f.basis[i].norm() - 1.0).abs() < 1e-9);
                for j in (i + 1)..3 {
                    assert!(f.basis[i].dot(f.basis[j]).abs() < 1e-9);
                }
            }
            let v = Vec3::new(0.5, -1.5, 2.0);
            assert!((f.to_global(f.to_local(v)) - v).norm() < 1e-9);
            assert!((f.to_local(v).norm() - v.norm()).abs() < 1e-9);
        }
    }

    #[test]
    fn distortion_is_symmetric() {
        let d = Distortion::with_skew(0.2, 1.1);
        for k in 0..10 {
            let theta = k as f64 * 0.37;
            let a = d.apply_angle(theta + std::f64::consts::PI);
            let b = d.apply_angle(theta) + std::f64::consts::PI;
            assert!((a - b).abs() < 1e-12, "µ(θ+π) = µ(θ)+π");
        }
    }

    #[test]
    fn distortion_respects_skew_bound() {
        let lambda = 0.3;
        let d = Distortion::with_skew(lambda, 0.7);
        for i in 0..50 {
            let theta = i as f64 * 0.13;
            for j in 1..50 {
                let xi = j as f64 * 0.06;
                if xi >= std::f64::consts::PI {
                    break;
                }
                let delta = d.apply_angle(theta + xi) - d.apply_angle(theta);
                assert!(delta >= (1.0 - lambda) * xi - 1e-9);
                assert!(delta <= (1.0 + lambda) * xi + 1e-9);
            }
        }
    }

    #[test]
    fn distortion_invert_roundtrip() {
        let d = Distortion::with_skew(0.4, 2.3);
        for k in -10..10 {
            let theta = k as f64 * 0.61;
            let inv = d.invert_angle(d.apply_angle(theta));
            assert!((inv - theta).abs() < 1e-9, "{inv} vs {theta}");
        }
        let v = Vec2::new(1.2, -0.7);
        assert!((d.unapply(d.apply(v)) - v).norm() < 1e-9);
    }

    #[test]
    fn identity_distortion_is_noop() {
        let v = Vec2::new(3.0, 4.0);
        assert_eq!(Distortion::IDENTITY.apply(v), v);
        assert_eq!(Distortion::IDENTITY.unapply(v), v);
    }
}
