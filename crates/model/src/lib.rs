//! The OBLOT model of autonomous mobile robots (paper §2).
//!
//! This crate defines everything a *single Look–Compute–Move cycle* touches:
//!
//! * robot identities ([`RobotId`]) — used only by the simulator for
//!   bookkeeping; the robots themselves are anonymous and identical;
//! * configurations ([`Configuration`]): the multiset of robot positions at
//!   an instant;
//! * visibility graphs ([`visibility`]): who sees whom under the limited
//!   (possibly unknown) visibility range `V`, with the connectivity queries
//!   the Cohesive Convergence predicate needs;
//! * snapshots ([`Snapshot`]): what a robot actually receives from its Look
//!   phase — relative positions in a *private* local frame;
//! * local frames ([`frame`]): rotations/reflections and the paper's
//!   symmetric coordinate distortions with bounded skew (§2.3.3, §6.1);
//! * error models ([`errors`]): relative distance-measurement error `δ`,
//!   angular skew `λ`, `ξ`-rigidity, and linear/quadratic relative motion
//!   error (§2.3.2–2.3.3, §6.1, Figure 18);
//! * the [`Algorithm`] trait every convergence algorithm in the workspace
//!   implements;
//! * driver-facing plain data ([`progress`]): the [`Budget`] a simulation
//!   slice may consume and the [`Progress`] view a running session reports.

#![forbid(unsafe_code)]
#![deny(unsafe_op_in_unsafe_fn)]

pub mod algorithm;
pub mod configuration;
pub mod errors;
pub mod frame;
pub mod ids;
pub mod progress;
pub mod snapshot;
pub mod visibility;

pub use algorithm::{Algorithm, NilAlgorithm};
pub use configuration::Configuration;
pub use errors::{MotionError, MotionModel, PerceptionModel};
pub use frame::{Ambient, FrameMode};
pub use frame::{Distortion, Frame, Iso2, Iso3};
pub use ids::RobotId;
pub use ids::RobotPair;
pub use progress::{Budget, Progress};
pub use snapshot::{ObservedRobot, Snapshot};
pub use visibility::VisibilityGraph;
