//! Adversarial imperfection models (paper §2.3.2–§2.3.3, §6.1, Figure 18).
//!
//! Three independent knobs, all under scheduler/adversary control:
//!
//! * **Perception** — each perceived distance may be off by a relative factor
//!   within `±δ`, and the local coordinate system may carry a symmetric
//!   angular distortion with skew at most `λ`;
//! * **Rigidity** — a Move may be cut short, but covers at least a fraction
//!   `ξ ∈ (0, 1]` of the planned trajectory;
//! * **Motion error** — the realized endpoint may deviate from the planned
//!   straight trajectory, by an amount growing linearly (`c·d`) or
//!   quadratically (`c·d²/V`) in the distance travelled `d`. The paper shows
//!   linear relative error defeats every algorithm (Figure 18) while its
//!   algorithm tolerates quadratic error.

use crate::frame::Distortion;
use cohesion_geometry::point::Point;
use rand::rngs::SmallRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Perception-error bounds for Look phases.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PerceptionModel {
    /// Relative distance-measurement error bound `δ ≥ 0`: a robot at true
    /// distance `d` is perceived at some distance in `[(1−δ)d, (1+δ)d]`.
    pub distance_error: f64,
    /// Skew bound `λ ∈ [0, 1)` of the symmetric coordinate distortion.
    pub skew: f64,
}

impl PerceptionModel {
    /// Error-free perception.
    pub const EXACT: PerceptionModel = PerceptionModel {
        distance_error: 0.0,
        skew: 0.0,
    };

    /// Creates a perception model.
    ///
    /// # Panics
    ///
    /// Panics unless `δ ≥ 0` and `0 ≤ λ < 1`.
    pub fn new(distance_error: f64, skew: f64) -> Self {
        assert!(distance_error >= 0.0, "distance error must be non-negative");
        assert!((0.0..1.0).contains(&skew), "skew must be in [0, 1)");
        PerceptionModel {
            distance_error,
            skew,
        }
    }

    /// Returns `true` when perception is exact.
    pub fn is_exact(&self) -> bool {
        self.distance_error == 0.0 && self.skew == 0.0
    }

    /// Samples a per-activation distortion within the skew bound.
    pub fn sample_distortion(&self, rng: &mut SmallRng) -> Distortion {
        if self.skew == 0.0 {
            Distortion::IDENTITY
        } else {
            Distortion::sample(self.skew, rng)
        }
    }

    /// Samples a per-observation distance factor in `[1−δ, 1+δ]`.
    pub fn sample_distance_factor(&self, rng: &mut SmallRng) -> f64 {
        if self.distance_error == 0.0 {
            1.0
        } else {
            rng.gen_range((1.0 - self.distance_error)..=(1.0 + self.distance_error))
        }
    }
}

impl Default for PerceptionModel {
    fn default() -> Self {
        PerceptionModel::EXACT
    }
}

/// The trajectory-deviation component of the motion model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub enum MotionError {
    /// Motion follows the planned straight trajectory exactly.
    #[default]
    None,
    /// Deviation up to `c·d` for a move of length `d` — the error regime the
    /// paper proves fatal for *every* convergence algorithm (Figure 18).
    Linear {
        /// Relative deviation coefficient `c ≥ 0`.
        coefficient: f64,
    },
    /// Deviation up to `c·d²/V` — tolerated by the paper's algorithm (§6.1).
    Quadratic {
        /// Deviation coefficient `c ≥ 0` (scaled by `d²/V`).
        coefficient: f64,
    },
}

impl MotionError {
    /// Maximum endpoint deviation for a move of length `d` with visibility
    /// radius `visibility`.
    pub fn max_deviation(&self, d: f64, visibility: f64) -> f64 {
        match *self {
            MotionError::None => 0.0,
            MotionError::Linear { coefficient } => coefficient * d,
            MotionError::Quadratic { coefficient } => coefficient * d * d / visibility,
        }
    }
}

/// Motion imperfection bounds for Move phases.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MotionModel {
    /// Rigidity `ξ ∈ (0, 1]`: a robot covers at least fraction `ξ` of its
    /// planned trajectory before the adversary may stop it (§2.3.2).
    pub rigidity: f64,
    /// Trajectory deviation regime.
    pub error: MotionError,
}

impl MotionModel {
    /// Rigid, error-free motion (`ξ = 1`).
    pub const RIGID: MotionModel = MotionModel {
        rigidity: 1.0,
        error: MotionError::None,
    };

    /// Creates a motion model.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < ξ ≤ 1` and the error coefficient is non-negative.
    pub fn new(rigidity: f64, error: MotionError) -> Self {
        assert!(
            rigidity > 0.0 && rigidity <= 1.0,
            "rigidity must be in (0, 1]"
        );
        match error {
            MotionError::Linear { coefficient } | MotionError::Quadratic { coefficient } => {
                assert!(coefficient >= 0.0, "error coefficient must be non-negative");
            }
            MotionError::None => {}
        }
        MotionModel { rigidity, error }
    }

    /// Non-rigid error-free motion with the given `ξ`.
    pub fn with_rigidity(rigidity: f64) -> Self {
        MotionModel::new(rigidity, MotionError::None)
    }

    /// Resolves a planned move into the realized endpoint.
    ///
    /// `from` is the position at Move start, `target` the planned
    /// destination; the adversary (driven by `rng`) picks the realized
    /// fraction in `[ξ, 1]` and a deviation within the error bound.
    /// `visibility` scales quadratic error.
    pub fn resolve<P: Point>(&self, from: P, target: P, visibility: f64, rng: &mut SmallRng) -> P {
        let planned = target - from;
        let d_planned = planned.norm();
        if d_planned == 0.0 {
            return from;
        }
        let fraction = if self.rigidity >= 1.0 {
            1.0
        } else {
            rng.gen_range(self.rigidity..=1.0)
        };
        let straight = from + planned * fraction;
        let d = d_planned * fraction;
        let bound = self.error.max_deviation(d, visibility);
        if bound == 0.0 {
            return straight;
        }
        // Deviate by a uniformly random offset of norm ≤ bound, restricted to
        // the hyperplane footprint spanned by coordinates — sampled by
        // rejection in the ambient space.
        let dev = sample_in_ball::<P>(bound, rng);
        straight + dev
    }
}

impl Default for MotionModel {
    fn default() -> Self {
        MotionModel::RIGID
    }
}

/// Uniform sample from the closed ball of radius `r` (rejection sampling
/// over the coordinate cube; adequate for adversarial noise injection).
fn sample_in_ball<P: Point>(r: f64, rng: &mut SmallRng) -> P {
    if r == 0.0 {
        return P::zero();
    }
    loop {
        let coords: Vec<f64> = (0..P::DIM).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let norm_sq: f64 = coords.iter().map(|c| c * c).sum();
        if norm_sq > 1.0 || norm_sq == 0.0 {
            continue;
        }
        return P::from_coords(&coords) * r;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cohesion_geometry::Vec2;
    use rand::SeedableRng;

    #[test]
    fn perception_factors_within_bounds() {
        let m = PerceptionModel::new(0.1, 0.2);
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..100 {
            let f = m.sample_distance_factor(&mut rng);
            assert!((0.9..=1.1).contains(&f));
            let d = m.sample_distortion(&mut rng);
            assert!(d.skew() <= 0.2 + 1e-12);
        }
        assert!(PerceptionModel::EXACT.is_exact());
    }

    #[test]
    fn rigid_motion_reaches_target() {
        let mut rng = SmallRng::seed_from_u64(4);
        let from = Vec2::ZERO;
        let target = Vec2::new(1.0, 2.0);
        let got = MotionModel::RIGID.resolve(from, target, 1.0, &mut rng);
        assert_eq!(got, target);
    }

    #[test]
    fn xi_rigid_motion_covers_fraction() {
        let mut rng = SmallRng::seed_from_u64(5);
        let m = MotionModel::with_rigidity(0.25);
        let from = Vec2::ZERO;
        let target = Vec2::new(4.0, 0.0);
        for _ in 0..100 {
            let got = m.resolve(from, target, 1.0, &mut rng);
            assert!(got.x >= 1.0 - 1e-12 && got.x <= 4.0 + 1e-12);
            assert_eq!(got.y, 0.0);
        }
    }

    #[test]
    fn nil_move_stays() {
        let mut rng = SmallRng::seed_from_u64(6);
        let m = MotionModel::with_rigidity(0.5);
        let p = Vec2::new(1.0, 1.0);
        assert_eq!(m.resolve(p, p, 1.0, &mut rng), p);
    }

    #[test]
    fn linear_error_bounded() {
        let mut rng = SmallRng::seed_from_u64(7);
        let m = MotionModel::new(1.0, MotionError::Linear { coefficient: 0.1 });
        let from = Vec2::ZERO;
        let target = Vec2::new(2.0, 0.0);
        for _ in 0..200 {
            let got = m.resolve(from, target, 1.0, &mut rng);
            assert!(got.dist(target) <= 0.2 + 1e-12);
        }
    }

    #[test]
    fn quadratic_error_scales_with_v() {
        assert_eq!(
            MotionError::Quadratic { coefficient: 1.0 }.max_deviation(0.5, 2.0),
            0.125
        );
        assert_eq!(
            MotionError::Linear { coefficient: 2.0 }.max_deviation(0.5, 2.0),
            1.0
        );
        assert_eq!(MotionError::None.max_deviation(0.5, 2.0), 0.0);
    }

    #[test]
    #[should_panic]
    fn zero_rigidity_rejected() {
        let _ = MotionModel::with_rigidity(0.0);
    }
}
