//! Look-phase snapshots (paper §2.2).
//!
//! A snapshot is everything a robot's algorithm gets to see: the relative
//! positions of the robots inside its visibility range, expressed in its
//! private local frame. The observing robot sits at the origin and is *not*
//! listed among the observations.

use cohesion_geometry::point::Point;
use serde::{Deserialize, Serialize};

/// One robot as perceived during a Look phase.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ObservedRobot<P> {
    /// Perceived displacement from the observer (local frame, possibly
    /// error-afflicted).
    pub position: P,
}

/// The input to an algorithm's Compute phase.
///
/// ```
/// use cohesion_model::Snapshot;
/// use cohesion_geometry::Vec2;
/// let s = Snapshot::from_positions(vec![Vec2::new(1.0, 0.0), Vec2::new(0.0, 2.0)]);
/// assert_eq!(s.len(), 2);
/// assert!((s.furthest_distance() - 2.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Snapshot<P> {
    observations: Vec<ObservedRobot<P>>,
}

/// An empty snapshot (manual impl: no `P: Default` bound is needed for an
/// empty buffer).
impl<P> Default for Snapshot<P> {
    fn default() -> Self {
        Snapshot {
            observations: Vec::new(),
        }
    }
}

impl<P: Point> Snapshot<P> {
    /// Creates a snapshot from perceived displacements.
    pub fn from_positions(positions: Vec<P>) -> Self {
        let mut snapshot = Snapshot::default();
        snapshot.refill(positions);
        snapshot
    }

    /// Wraps an observation buffer directly (the inverse of
    /// [`Snapshot::into_buffer`]): a pooled buffer filled by a caller that
    /// perceives robots one at a time becomes a snapshot without copying.
    pub fn from_buffer(observations: Vec<ObservedRobot<P>>) -> Self {
        Snapshot { observations }
    }

    /// Releases the observation buffer (capacity intact) so a caller-side
    /// pool can reuse it for the next Look.
    pub fn into_buffer(self) -> Vec<ObservedRobot<P>> {
        self.observations
    }

    /// Drops all observations, keeping the buffer's capacity — the reset
    /// half of the engine's pooled-snapshot protocol.
    pub fn clear(&mut self) {
        self.observations.clear();
    }

    /// Appends one perceived displacement.
    pub fn push(&mut self, position: P) {
        self.observations.push(ObservedRobot { position });
    }

    /// Replaces the observations with `positions`, reusing the existing
    /// buffer — the allocation-free counterpart of
    /// [`Snapshot::from_positions`].
    pub fn refill(&mut self, positions: impl IntoIterator<Item = P>) {
        self.observations.clear();
        self.observations.extend(
            positions
                .into_iter()
                .map(|position| ObservedRobot { position }),
        );
    }

    /// Collapses co-located observations (within `eps`) into single ones —
    /// what a robot *without* multiplicity detection perceives (§2.2,
    /// footnote 4).
    pub fn without_multiplicity(mut self, eps: f64) -> Self {
        self.dedup_multiplicity(eps);
        self
    }

    /// In-place [`Snapshot::without_multiplicity`]: keeps the first
    /// observation of every co-located group (within `eps`), preserving
    /// order, without touching the allocator. Quadratic in the observation
    /// count, like the consuming version it replaces on the engine hot path
    /// — snapshots are `O(deg)` under limited visibility, so the constant
    /// matters more than the exponent.
    pub fn dedup_multiplicity(&mut self, eps: f64) {
        let mut kept = 0usize;
        for i in 0..self.observations.len() {
            let obs = self.observations[i];
            if !self.observations[..kept]
                .iter()
                .any(|k| k.position.dist(obs.position) <= eps)
            {
                self.observations[kept] = obs;
                kept += 1;
            }
        }
        self.observations.truncate(kept);
    }

    /// The observations (order is not meaningful — robots are anonymous).
    pub fn observations(&self) -> &[ObservedRobot<P>] {
        &self.observations
    }

    /// Perceived displacements only.
    pub fn positions(&self) -> impl Iterator<Item = P> + '_ {
        self.observations.iter().map(|o| o.position)
    }

    /// Number of perceived robots.
    pub fn len(&self) -> usize {
        self.observations.len()
    }

    /// Returns `true` when nothing is visible.
    pub fn is_empty(&self) -> bool {
        self.observations.is_empty()
    }

    /// Distance to the furthest perceived robot — the paper's tentative
    /// visibility lower bound `V_Z` (§3.2). `0` for an empty snapshot.
    pub fn furthest_distance(&self) -> f64 {
        self.observations
            .iter()
            .map(|o| o.position.norm())
            .fold(0.0, f64::max)
    }

    /// Distance to the closest perceived robot; `∞` for an empty snapshot.
    pub fn closest_distance(&self) -> f64 {
        self.observations
            .iter()
            .map(|o| o.position.norm())
            .fold(f64::INFINITY, f64::min)
    }

    /// Applies a transformation to every observation (used by the engine to
    /// move between frames and by error models to perturb perception).
    pub fn map(&self, mut f: impl FnMut(P) -> P) -> Snapshot<P> {
        Snapshot {
            observations: self
                .observations
                .iter()
                .map(|o| ObservedRobot {
                    position: f(o.position),
                })
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cohesion_geometry::Vec2;

    #[test]
    fn basic_queries() {
        let s = Snapshot::from_positions(vec![Vec2::new(3.0, 4.0), Vec2::new(1.0, 0.0)]);
        assert_eq!(s.len(), 2);
        assert!(!s.is_empty());
        assert_eq!(s.furthest_distance(), 5.0);
        assert_eq!(s.closest_distance(), 1.0);
    }

    #[test]
    fn empty_snapshot() {
        let s = Snapshot::<Vec2>::from_positions(vec![]);
        assert!(s.is_empty());
        assert_eq!(s.furthest_distance(), 0.0);
        assert_eq!(s.closest_distance(), f64::INFINITY);
    }

    #[test]
    fn multiplicity_collapse() {
        let s = Snapshot::from_positions(vec![
            Vec2::new(1.0, 0.0),
            Vec2::new(1.0, 0.0),
            Vec2::new(1.0, 1e-12),
            Vec2::new(0.0, 1.0),
        ]);
        let collapsed = s.clone().without_multiplicity(1e-9);
        assert_eq!(collapsed.len(), 2);
        assert_eq!(s.len(), 4, "original untouched");
    }

    #[test]
    fn map_transforms_positions() {
        let s = Snapshot::from_positions(vec![Vec2::new(1.0, 2.0)]);
        let doubled = s.map(|p| p * 2.0);
        assert_eq!(doubled.observations()[0].position, Vec2::new(2.0, 4.0));
    }

    #[test]
    fn pooled_refill_reuses_the_buffer() {
        let mut s = Snapshot::default();
        s.refill(vec![Vec2::new(1.0, 0.0), Vec2::new(2.0, 0.0)]);
        assert_eq!(s.len(), 2);
        let cap = s.observations.capacity();
        s.clear();
        assert!(s.is_empty());
        s.push(Vec2::new(3.0, 0.0));
        assert_eq!(s.len(), 1);
        assert_eq!(s.observations.capacity(), cap, "capacity survives clear");
        assert_eq!(s.furthest_distance(), 3.0);
    }

    #[test]
    fn buffer_roundtrip() {
        let s = Snapshot::from_positions(vec![Vec2::new(1.0, 0.0)]);
        let buf = s.into_buffer();
        assert_eq!(buf.len(), 1);
        let s = Snapshot::from_buffer(buf);
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn in_place_dedup_matches_consuming_version() {
        let positions = vec![
            Vec2::new(1.0, 0.0),
            Vec2::new(0.0, 1.0),
            Vec2::new(1.0, 1e-12),
            Vec2::new(1.0, 0.0),
            Vec2::new(2.0, 0.0),
        ];
        let consuming = Snapshot::from_positions(positions.clone()).without_multiplicity(1e-9);
        let mut in_place = Snapshot::from_positions(positions);
        in_place.dedup_multiplicity(1e-9);
        assert_eq!(in_place, consuming);
        assert_eq!(in_place.len(), 3, "first of each co-located group kept");
    }
}
