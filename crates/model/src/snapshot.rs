//! Look-phase snapshots (paper §2.2).
//!
//! A snapshot is everything a robot's algorithm gets to see: the relative
//! positions of the robots inside its visibility range, expressed in its
//! private local frame. The observing robot sits at the origin and is *not*
//! listed among the observations.

use cohesion_geometry::point::Point;
use serde::{Deserialize, Serialize};

/// One robot as perceived during a Look phase.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ObservedRobot<P> {
    /// Perceived displacement from the observer (local frame, possibly
    /// error-afflicted).
    pub position: P,
}

/// The input to an algorithm's Compute phase.
///
/// ```
/// use cohesion_model::Snapshot;
/// use cohesion_geometry::Vec2;
/// let s = Snapshot::from_positions(vec![Vec2::new(1.0, 0.0), Vec2::new(0.0, 2.0)]);
/// assert_eq!(s.len(), 2);
/// assert!((s.furthest_distance() - 2.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Snapshot<P> {
    observations: Vec<ObservedRobot<P>>,
}

impl<P: Point> Snapshot<P> {
    /// Creates a snapshot from perceived displacements.
    pub fn from_positions(positions: Vec<P>) -> Self {
        Snapshot {
            observations: positions
                .into_iter()
                .map(|position| ObservedRobot { position })
                .collect(),
        }
    }

    /// Collapses co-located observations (within `eps`) into single ones —
    /// what a robot *without* multiplicity detection perceives (§2.2,
    /// footnote 4).
    pub fn without_multiplicity(mut self, eps: f64) -> Self {
        let mut kept: Vec<ObservedRobot<P>> = Vec::with_capacity(self.observations.len());
        for obs in self.observations.drain(..) {
            if !kept.iter().any(|k| k.position.dist(obs.position) <= eps) {
                kept.push(obs);
            }
        }
        Snapshot { observations: kept }
    }

    /// The observations (order is not meaningful — robots are anonymous).
    pub fn observations(&self) -> &[ObservedRobot<P>] {
        &self.observations
    }

    /// Perceived displacements only.
    pub fn positions(&self) -> impl Iterator<Item = P> + '_ {
        self.observations.iter().map(|o| o.position)
    }

    /// Number of perceived robots.
    pub fn len(&self) -> usize {
        self.observations.len()
    }

    /// Returns `true` when nothing is visible.
    pub fn is_empty(&self) -> bool {
        self.observations.is_empty()
    }

    /// Distance to the furthest perceived robot — the paper's tentative
    /// visibility lower bound `V_Z` (§3.2). `0` for an empty snapshot.
    pub fn furthest_distance(&self) -> f64 {
        self.observations
            .iter()
            .map(|o| o.position.norm())
            .fold(0.0, f64::max)
    }

    /// Distance to the closest perceived robot; `∞` for an empty snapshot.
    pub fn closest_distance(&self) -> f64 {
        self.observations
            .iter()
            .map(|o| o.position.norm())
            .fold(f64::INFINITY, f64::min)
    }

    /// Applies a transformation to every observation (used by the engine to
    /// move between frames and by error models to perturb perception).
    pub fn map(&self, mut f: impl FnMut(P) -> P) -> Snapshot<P> {
        Snapshot {
            observations: self
                .observations
                .iter()
                .map(|o| ObservedRobot {
                    position: f(o.position),
                })
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cohesion_geometry::Vec2;

    #[test]
    fn basic_queries() {
        let s = Snapshot::from_positions(vec![Vec2::new(3.0, 4.0), Vec2::new(1.0, 0.0)]);
        assert_eq!(s.len(), 2);
        assert!(!s.is_empty());
        assert_eq!(s.furthest_distance(), 5.0);
        assert_eq!(s.closest_distance(), 1.0);
    }

    #[test]
    fn empty_snapshot() {
        let s = Snapshot::<Vec2>::from_positions(vec![]);
        assert!(s.is_empty());
        assert_eq!(s.furthest_distance(), 0.0);
        assert_eq!(s.closest_distance(), f64::INFINITY);
    }

    #[test]
    fn multiplicity_collapse() {
        let s = Snapshot::from_positions(vec![
            Vec2::new(1.0, 0.0),
            Vec2::new(1.0, 0.0),
            Vec2::new(1.0, 1e-12),
            Vec2::new(0.0, 1.0),
        ]);
        let collapsed = s.clone().without_multiplicity(1e-9);
        assert_eq!(collapsed.len(), 2);
        assert_eq!(s.len(), 4, "original untouched");
    }

    #[test]
    fn map_transforms_positions() {
        let s = Snapshot::from_positions(vec![Vec2::new(1.0, 2.0)]);
        let doubled = s.map(|p| p * 2.0);
        assert_eq!(doubled.observations()[0].position, Vec2::new(2.0, 4.0));
    }
}
