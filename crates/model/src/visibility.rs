//! Visibility graphs under limited visibility (paper §2.1) and the
//! connectivity machinery behind the Cohesive Convergence predicate.

use crate::configuration::Configuration;
use crate::ids::{RobotId, RobotPair};
use cohesion_geometry::point::Point;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// The undirected visibility graph `G(t) = (R, E(t))` where
/// `(X, Y) ∈ E(t) ⟺ |X(t)Y(t)| ≤ V`.
///
/// ```
/// use cohesion_model::{Configuration, VisibilityGraph};
/// use cohesion_geometry::Vec2;
/// let c = Configuration::new(vec![Vec2::ZERO, Vec2::new(1.0, 0.0), Vec2::new(3.0, 0.0)]);
/// let g = VisibilityGraph::from_configuration(&c, 1.0);
/// assert_eq!(g.edge_count(), 1);
/// assert!(!g.is_connected());
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct VisibilityGraph {
    n: usize,
    edges: BTreeSet<RobotPair>,
}

impl VisibilityGraph {
    /// Builds the visibility graph of a configuration with common visibility
    /// radius `radius` (closed: distance exactly `radius` counts, §2.1).
    pub fn from_configuration<P: Point>(config: &Configuration<P>, radius: f64) -> Self {
        assert!(radius >= 0.0, "visibility radius must be non-negative");
        let mut edges = BTreeSet::new();
        let pos = config.positions();
        for i in 0..pos.len() {
            for j in (i + 1)..pos.len() {
                if pos[i].dist(pos[j]) <= radius {
                    edges.insert(RobotPair::new(RobotId::from(i), RobotId::from(j)));
                }
            }
        }
        VisibilityGraph {
            n: pos.len(),
            edges,
        }
    }

    /// Builds a visibility graph from an explicit edge list over `n` robots.
    pub fn from_edges(n: usize, edges: impl IntoIterator<Item = RobotPair>) -> Self {
        let edges: BTreeSet<RobotPair> = edges.into_iter().collect();
        for e in &edges {
            assert!(e.b.index() < n, "edge endpoint {} out of range", e.b);
        }
        VisibilityGraph { n, edges }
    }

    /// Number of robots (vertices).
    #[inline]
    pub fn robot_count(&self) -> usize {
        self.n
    }

    /// Number of visibility edges.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// The edge set.
    #[inline]
    pub fn edges(&self) -> &BTreeSet<RobotPair> {
        &self.edges
    }

    /// Returns `true` when the pair is mutually visible.
    pub fn has_edge(&self, x: RobotId, y: RobotId) -> bool {
        x != y && self.edges.contains(&RobotPair::new(x, y))
    }

    /// The neighbours of `id`.
    pub fn neighbors(&self, id: RobotId) -> Vec<RobotId> {
        self.edges.iter().filter_map(|e| e.other(id)).collect()
    }

    /// Connected components as sorted id lists (singletons included).
    pub fn components(&self) -> Vec<Vec<RobotId>> {
        let mut parent: Vec<usize> = (0..self.n).collect();
        fn find(parent: &mut [usize], x: usize) -> usize {
            let mut root = x;
            while parent[root] != root {
                root = parent[root];
            }
            let mut cur = x;
            while parent[cur] != root {
                let next = parent[cur];
                parent[cur] = root;
                cur = next;
            }
            root
        }
        for e in &self.edges {
            let (ra, rb) = (
                find(&mut parent, e.a.index()),
                find(&mut parent, e.b.index()),
            );
            if ra != rb {
                parent[ra] = rb;
            }
        }
        let mut buckets: std::collections::BTreeMap<usize, Vec<RobotId>> = Default::default();
        for i in 0..self.n {
            let r = find(&mut parent, i);
            buckets.entry(r).or_default().push(RobotId::from(i));
        }
        buckets.into_values().collect()
    }

    /// Returns `true` when the graph is connected (the paper's standing
    /// assumption on initial configurations). The empty graph and singletons
    /// are connected.
    pub fn is_connected(&self) -> bool {
        self.components().len() <= 1
    }

    /// Returns `true` when every edge of `self` is also an edge of `other` —
    /// the `E(0) ⊆ E(t)` inclusion of the Cohesive Convergence predicate.
    pub fn subset_of(&self, other: &VisibilityGraph) -> bool {
        self.edges.is_subset(&other.edges)
    }

    /// The edges of `self` missing from `other` (witnesses of a cohesion
    /// violation).
    pub fn missing_in(&self, other: &VisibilityGraph) -> Vec<RobotPair> {
        self.edges.difference(&other.edges).copied().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cohesion_geometry::Vec2;

    fn chain(n: usize, spacing: f64) -> Configuration {
        Configuration::new((0..n).map(|i| Vec2::new(i as f64 * spacing, 0.0)).collect())
    }

    #[test]
    fn chain_visibility() {
        let g = VisibilityGraph::from_configuration(&chain(4, 1.0), 1.0);
        assert_eq!(g.edge_count(), 3);
        assert!(g.is_connected());
        assert!(g.has_edge(RobotId(0), RobotId(1)));
        assert!(!g.has_edge(RobotId(0), RobotId(2)));
        assert!(!g.has_edge(RobotId(0), RobotId(0)));
    }

    #[test]
    fn closed_range_boundary_counts() {
        let c = Configuration::new(vec![Vec2::ZERO, Vec2::new(1.0, 0.0)]);
        let g = VisibilityGraph::from_configuration(&c, 1.0);
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    fn disconnection_and_components() {
        let g = VisibilityGraph::from_configuration(&chain(5, 1.0), 0.5);
        assert!(!g.is_connected());
        assert_eq!(g.components().len(), 5);
        let g = VisibilityGraph::from_configuration(
            &Configuration::new(vec![
                Vec2::ZERO,
                Vec2::new(1.0, 0.0),
                Vec2::new(10.0, 0.0),
                Vec2::new(11.0, 0.0),
            ]),
            1.5,
        );
        let comps = g.components();
        assert_eq!(comps.len(), 2);
        assert_eq!(comps[0], vec![RobotId(0), RobotId(1)]);
        assert_eq!(comps[1], vec![RobotId(2), RobotId(3)]);
    }

    #[test]
    fn neighbors_listing() {
        let g = VisibilityGraph::from_configuration(&chain(3, 1.0), 1.0);
        assert_eq!(g.neighbors(RobotId(1)), vec![RobotId(0), RobotId(2)]);
        assert_eq!(g.neighbors(RobotId(0)), vec![RobotId(1)]);
    }

    #[test]
    fn subset_and_missing() {
        let sparse = VisibilityGraph::from_configuration(&chain(3, 1.0), 1.0);
        let dense = VisibilityGraph::from_configuration(&chain(3, 1.0), 2.0);
        assert!(sparse.subset_of(&dense));
        assert!(!dense.subset_of(&sparse));
        let missing = dense.missing_in(&sparse);
        assert_eq!(missing, vec![RobotPair::new(RobotId(0), RobotId(2))]);
    }

    #[test]
    fn empty_and_singleton_connected() {
        assert!(VisibilityGraph::from_configuration(&chain(0, 1.0), 1.0).is_connected());
        assert!(VisibilityGraph::from_configuration(&chain(1, 1.0), 1.0).is_connected());
    }
}
