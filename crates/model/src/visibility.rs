//! Visibility graphs under limited visibility (paper §2.1) and the
//! connectivity machinery behind the Cohesive Convergence predicate.
//!
//! The graph is stored CSR-style: a sorted edge list plus per-vertex
//! adjacency slices. Construction from a configuration goes through the
//! [`SpatialGrid`] for near-linear cost on bounded-density clouds, with the
//! brute-force quadratic builder kept as the reference implementation (and
//! the fast path for tiny clouds, where the grid's indexing overhead is not
//! worth paying). Both builders produce byte-identical graphs: edges sorted
//! lexicographically — exactly the iteration order of the old
//! `BTreeSet<RobotPair>` representation — and neighbour lists ascending.

use crate::configuration::Configuration;
use crate::ids::{RobotId, RobotPair};
use cohesion_geometry::grid::SpatialGrid;
use cohesion_geometry::point::Point;
use serde::{Deserialize, Serialize};

/// Below this robot count, [`VisibilityGraph::from_configuration`] uses the
/// quadratic builder: for tiny clouds the all-pairs sweep is cheaper than
/// building a grid index.
const GRID_THRESHOLD: usize = 32;

/// The undirected visibility graph `G(t) = (R, E(t))` where
/// `(X, Y) ∈ E(t) ⟺ |X(t)Y(t)| ≤ V`.
///
/// ```
/// use cohesion_model::{Configuration, VisibilityGraph};
/// use cohesion_geometry::Vec2;
/// let c = Configuration::new(vec![Vec2::ZERO, Vec2::new(1.0, 0.0), Vec2::new(3.0, 0.0)]);
/// let g = VisibilityGraph::from_configuration(&c, 1.0);
/// assert_eq!(g.edge_count(), 1);
/// assert!(!g.is_connected());
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct VisibilityGraph {
    n: usize,
    /// Edges sorted lexicographically by `(a, b)`, deduplicated.
    edges: Vec<RobotPair>,
    /// CSR offsets into `adj`; `len == n + 1`.
    offsets: Vec<u32>,
    /// Concatenated neighbour lists, ascending per vertex.
    adj: Vec<RobotId>,
}

impl VisibilityGraph {
    /// Builds the visibility graph of a configuration with common visibility
    /// radius `radius` (closed: distance exactly `radius` counts, §2.1).
    ///
    /// Dispatches to the grid-backed builder for clouds of at least
    /// [`GRID_THRESHOLD`] robots (near-linear for bounded density) and to the
    /// quadratic reference builder otherwise; the two are equivalent.
    pub fn from_configuration<P: Point>(config: &Configuration<P>, radius: f64) -> Self {
        assert!(radius >= 0.0, "visibility radius must be non-negative");
        if config.len() >= GRID_THRESHOLD && radius > 0.0 {
            Self::from_configuration_grid(config, radius)
        } else {
            Self::from_configuration_brute(config, radius)
        }
    }

    /// The quadratic all-pairs builder — the reference implementation the
    /// grid-backed path is property-tested against.
    pub fn from_configuration_brute<P: Point>(config: &Configuration<P>, radius: f64) -> Self {
        assert!(radius >= 0.0, "visibility radius must be non-negative");
        let pos = config.positions();
        let mut pairs = Vec::new();
        for i in 0..pos.len() {
            for j in (i + 1)..pos.len() {
                if pos[i].dist(pos[j]) <= radius {
                    pairs.push(RobotPair::new(RobotId::from(i), RobotId::from(j)));
                }
            }
        }
        Self::from_sorted_pairs(pos.len(), pairs)
    }

    /// The grid-backed builder: indexes the cloud on a [`SpatialGrid`] with
    /// cell edge `radius`, then answers each robot's neighbour query from the
    /// `3^DIM` surrounding cells. `O(n · density)` instead of `O(n²)`.
    ///
    /// # Panics
    ///
    /// Panics when `radius` is not positive (the grid needs a positive cell
    /// edge; use the brute builder for the degenerate `radius == 0` case).
    pub fn from_configuration_grid<P: Point>(config: &Configuration<P>, radius: f64) -> Self {
        let pos = config.positions();
        let grid = SpatialGrid::build(pos, radius);
        let pairs: Vec<RobotPair> = grid
            .pairs_within(radius)
            .into_iter()
            .map(|(i, j)| RobotPair::new(RobotId::from(i), RobotId::from(j)))
            .collect();
        Self::from_sorted_pairs(pos.len(), pairs)
    }

    /// Builds a visibility graph from an explicit edge list over `n` robots.
    ///
    /// # Panics
    ///
    /// Panics when any edge endpoint is out of range. Both endpoints are
    /// validated: [`RobotPair`]'s fields are public, so an un-normalized pair
    /// (`a > b`) can reach this constructor without going through
    /// [`RobotPair::new`].
    pub fn from_edges(n: usize, edges: impl IntoIterator<Item = RobotPair>) -> Self {
        let edges: Vec<RobotPair> = edges.into_iter().collect();
        for e in &edges {
            assert!(e.a.index() < n, "edge endpoint {} out of range", e.a);
            assert!(e.b.index() < n, "edge endpoint {} out of range", e.b);
        }
        Self::from_sorted_pairs(n, edges)
    }

    /// Finishes construction: sorts and deduplicates the edge list, then
    /// lays out the CSR adjacency. Lexicographic edge order makes every
    /// vertex's neighbour list ascending without a per-vertex sort.
    fn from_sorted_pairs(n: usize, mut edges: Vec<RobotPair>) -> Self {
        edges.sort_unstable();
        edges.dedup();
        assert!(
            u32::try_from(2 * edges.len()).is_ok(),
            "adjacency size fits in u32"
        );
        let mut degree = vec![0u32; n];
        for e in &edges {
            degree[e.a.index()] += 1;
            degree[e.b.index()] += 1;
        }
        let mut offsets = vec![0u32; n + 1];
        for i in 0..n {
            offsets[i + 1] = offsets[i] + degree[i];
        }
        let mut cursor: Vec<u32> = offsets[..n].to_vec();
        let mut adj = vec![RobotId::default(); 2 * edges.len()];
        for e in &edges {
            adj[cursor[e.a.index()] as usize] = e.b;
            cursor[e.a.index()] += 1;
            adj[cursor[e.b.index()] as usize] = e.a;
            cursor[e.b.index()] += 1;
        }
        VisibilityGraph {
            n,
            edges,
            offsets,
            adj,
        }
    }

    /// Number of robots (vertices).
    #[inline]
    pub fn robot_count(&self) -> usize {
        self.n
    }

    /// Number of visibility edges.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// The edge list, sorted lexicographically by `(a, b)`.
    #[inline]
    pub fn edges(&self) -> &[RobotPair] {
        &self.edges
    }

    /// Returns `true` when the pair is mutually visible. `O(log deg)`.
    pub fn has_edge(&self, x: RobotId, y: RobotId) -> bool {
        x != y && self.neighbors(x).binary_search(&y).is_ok()
    }

    /// The neighbours of `id`, ascending. `O(1)` to obtain, `O(deg)` to walk
    /// — no longer a scan of the whole edge set.
    pub fn neighbors(&self, id: RobotId) -> &[RobotId] {
        let lo = self.offsets[id.index()] as usize;
        let hi = self.offsets[id.index() + 1] as usize;
        &self.adj[lo..hi]
    }

    /// The degree of `id`.
    pub fn degree(&self, id: RobotId) -> usize {
        (self.offsets[id.index() + 1] - self.offsets[id.index()]) as usize
    }

    /// Connected components as sorted id lists (singletons included).
    pub fn components(&self) -> Vec<Vec<RobotId>> {
        let mut parent: Vec<usize> = (0..self.n).collect();
        fn find(parent: &mut [usize], x: usize) -> usize {
            let mut root = x;
            while parent[root] != root {
                root = parent[root];
            }
            let mut cur = x;
            while parent[cur] != root {
                let next = parent[cur];
                parent[cur] = root;
                cur = next;
            }
            root
        }
        for e in &self.edges {
            let (ra, rb) = (
                find(&mut parent, e.a.index()),
                find(&mut parent, e.b.index()),
            );
            if ra != rb {
                parent[ra] = rb;
            }
        }
        let mut buckets: std::collections::BTreeMap<usize, Vec<RobotId>> = Default::default();
        for i in 0..self.n {
            let r = find(&mut parent, i);
            buckets.entry(r).or_default().push(RobotId::from(i));
        }
        buckets.into_values().collect()
    }

    /// Returns `true` when the graph is connected (the paper's standing
    /// assumption on initial configurations). The empty graph and singletons
    /// are connected.
    pub fn is_connected(&self) -> bool {
        self.components().len() <= 1
    }

    /// Returns `true` when every edge of `self` is also an edge of `other` —
    /// the `E(0) ⊆ E(t)` inclusion of the Cohesive Convergence predicate.
    /// A single merge walk over the two sorted edge lists.
    pub fn subset_of(&self, other: &VisibilityGraph) -> bool {
        let mut it = other.edges.iter();
        'outer: for e in &self.edges {
            for o in it.by_ref() {
                match o.cmp(e) {
                    std::cmp::Ordering::Less => continue,
                    std::cmp::Ordering::Equal => continue 'outer,
                    std::cmp::Ordering::Greater => return false,
                }
            }
            return false;
        }
        true
    }

    /// The edges of `self` missing from `other` (witnesses of a cohesion
    /// violation), sorted.
    pub fn missing_in(&self, other: &VisibilityGraph) -> Vec<RobotPair> {
        let mut missing = Vec::new();
        let mut rest = other.edges.as_slice();
        for e in &self.edges {
            let cut = rest.partition_point(|o| o < e);
            rest = &rest[cut..];
            if rest.first() == Some(e) {
                rest = &rest[1..];
            } else {
                missing.push(*e);
            }
        }
        missing
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cohesion_geometry::Vec2;

    fn chain(n: usize, spacing: f64) -> Configuration {
        Configuration::new((0..n).map(|i| Vec2::new(i as f64 * spacing, 0.0)).collect())
    }

    #[test]
    fn chain_visibility() {
        let g = VisibilityGraph::from_configuration(&chain(4, 1.0), 1.0);
        assert_eq!(g.edge_count(), 3);
        assert!(g.is_connected());
        assert!(g.has_edge(RobotId(0), RobotId(1)));
        assert!(!g.has_edge(RobotId(0), RobotId(2)));
        assert!(!g.has_edge(RobotId(0), RobotId(0)));
    }

    #[test]
    fn closed_range_boundary_counts() {
        let c = Configuration::new(vec![Vec2::ZERO, Vec2::new(1.0, 0.0)]);
        let g = VisibilityGraph::from_configuration(&c, 1.0);
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    fn grid_and_brute_builders_agree_on_chains() {
        // Long chains cross the GRID_THRESHOLD and exercise the grid path,
        // with every edge distance exactly on the closed boundary.
        for n in [2usize, 31, 32, 64, 129] {
            let c = chain(n, 1.0);
            let grid = VisibilityGraph::from_configuration_grid(&c, 1.0);
            let brute = VisibilityGraph::from_configuration_brute(&c, 1.0);
            assert_eq!(grid, brute, "n={n}");
            assert_eq!(grid, VisibilityGraph::from_configuration(&c, 1.0));
            assert_eq!(grid.edge_count(), n - 1);
        }
    }

    #[test]
    fn disconnection_and_components() {
        let g = VisibilityGraph::from_configuration(&chain(5, 1.0), 0.5);
        assert!(!g.is_connected());
        assert_eq!(g.components().len(), 5);
        let g = VisibilityGraph::from_configuration(
            &Configuration::new(vec![
                Vec2::ZERO,
                Vec2::new(1.0, 0.0),
                Vec2::new(10.0, 0.0),
                Vec2::new(11.0, 0.0),
            ]),
            1.5,
        );
        let comps = g.components();
        assert_eq!(comps.len(), 2);
        assert_eq!(comps[0], vec![RobotId(0), RobotId(1)]);
        assert_eq!(comps[1], vec![RobotId(2), RobotId(3)]);
    }

    #[test]
    fn neighbors_listing() {
        let g = VisibilityGraph::from_configuration(&chain(3, 1.0), 1.0);
        assert_eq!(g.neighbors(RobotId(1)), vec![RobotId(0), RobotId(2)]);
        assert_eq!(g.neighbors(RobotId(0)), vec![RobotId(1)]);
        assert_eq!(g.degree(RobotId(1)), 2);
        assert_eq!(g.degree(RobotId(0)), 1);
    }

    #[test]
    fn subset_and_missing() {
        let sparse = VisibilityGraph::from_configuration(&chain(3, 1.0), 1.0);
        let dense = VisibilityGraph::from_configuration(&chain(3, 1.0), 2.0);
        assert!(sparse.subset_of(&dense));
        assert!(!dense.subset_of(&sparse));
        let missing = dense.missing_in(&sparse);
        assert_eq!(missing, vec![RobotPair::new(RobotId(0), RobotId(2))]);
        assert!(sparse.missing_in(&dense).is_empty());
        assert!(sparse.subset_of(&sparse));
    }

    #[test]
    fn from_edges_roundtrip_and_dedup() {
        let e = |a: u32, b: u32| RobotPair::new(RobotId(a), RobotId(b));
        let g = VisibilityGraph::from_edges(4, vec![e(2, 3), e(0, 1), e(1, 0), e(1, 2)]);
        assert_eq!(g.edge_count(), 3);
        assert_eq!(g.edges(), &[e(0, 1), e(1, 2), e(2, 3)]);
        assert_eq!(g.neighbors(RobotId(1)), vec![RobotId(0), RobotId(2)]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn from_edges_rejects_out_of_range_b() {
        let _ = VisibilityGraph::from_edges(2, vec![RobotPair::new(RobotId(0), RobotId(5))]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn from_edges_rejects_out_of_range_a() {
        // RobotPair's fields are public: an un-normalized pair whose *first*
        // endpoint is out of range can bypass `RobotPair::new`. The historical
        // bug validated only `e.b`, so this pair slipped through.
        let bad = RobotPair {
            a: RobotId(7),
            b: RobotId(0),
        };
        let _ = VisibilityGraph::from_edges(2, vec![bad]);
    }

    #[test]
    fn empty_and_singleton_connected() {
        assert!(VisibilityGraph::from_configuration(&chain(0, 1.0), 1.0).is_connected());
        assert!(VisibilityGraph::from_configuration(&chain(1, 1.0), 1.0).is_connected());
    }
}
