//! Robot configurations: the multiset `C(t) = {X(t) : X ∈ R}` of §2.1.

use crate::ids::RobotId;
use cohesion_geometry::point::Point;
use cohesion_geometry::Vec2;
use serde::{Deserialize, Serialize};

/// The positions of all robots at one instant, indexed by [`RobotId`].
///
/// A configuration is a *multiset*: distinct robots may occupy the same
/// point (multiplicity detection, when enabled, is applied at snapshot time).
///
/// ```
/// use cohesion_model::Configuration;
/// use cohesion_geometry::Vec2;
/// let c = Configuration::new(vec![Vec2::ZERO, Vec2::new(1.0, 0.0)]);
/// assert_eq!(c.len(), 2);
/// assert!((c.diameter() - 1.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Configuration<P = Vec2> {
    positions: Vec<P>,
}

impl<P: Point> Configuration<P> {
    /// Creates a configuration from positions (robot `i` is at
    /// `positions[i]`).
    ///
    /// # Panics
    ///
    /// Panics if any coordinate is non-finite.
    pub fn new(positions: Vec<P>) -> Self {
        assert!(
            positions.iter().all(|p| p.is_finite()),
            "robot positions must be finite"
        );
        Configuration { positions }
    }

    /// Number of robots.
    #[inline]
    pub fn len(&self) -> usize {
        self.positions.len()
    }

    /// Returns `true` when there are no robots.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.positions.is_empty()
    }

    /// The position of robot `id`.
    ///
    /// # Panics
    ///
    /// Panics when `id` is out of range.
    #[inline]
    pub fn position(&self, id: RobotId) -> P {
        self.positions[id.index()]
    }

    /// All positions, in id order.
    #[inline]
    pub fn positions(&self) -> &[P] {
        &self.positions
    }

    /// Mutable access to a robot's position (simulator-side only).
    pub fn set_position(&mut self, id: RobotId, p: P) {
        assert!(p.is_finite(), "robot positions must be finite");
        self.positions[id.index()] = p;
    }

    /// Iterator over `(id, position)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (RobotId, P)> + '_ {
        self.positions
            .iter()
            .enumerate()
            .map(|(i, &p)| (RobotId::from(i), p))
    }

    /// All robot ids.
    pub fn ids(&self) -> impl Iterator<Item = RobotId> {
        (0..self.len()).map(RobotId::from)
    }

    /// The configuration diameter: maximum pairwise distance (`0` for fewer
    /// than two robots). `O(n²)` — configurations are small.
    ///
    /// The Point Convergence predicate is exactly
    /// “∀ε ∃t ∀t′≥t: diameter ≤ ε”.
    pub fn diameter(&self) -> f64 {
        let mut best = 0.0_f64;
        for i in 0..self.positions.len() {
            for j in (i + 1)..self.positions.len() {
                best = best.max(self.positions[i].dist(self.positions[j]));
            }
        }
        best
    }

    /// The centre of gravity (arithmetic mean) of the configuration — the
    /// target of the CoG baseline. `None` when empty.
    pub fn centroid(&self) -> Option<P> {
        if self.positions.is_empty() {
            return None;
        }
        let mut acc = P::zero();
        for &p in &self.positions {
            acc = acc + p;
        }
        Some(acc * (1.0 / self.positions.len() as f64))
    }

    /// Minimum pairwise distance (`∞` for fewer than two robots) — useful for
    /// collision diagnostics.
    pub fn min_pairwise_distance(&self) -> f64 {
        let mut best = f64::INFINITY;
        for i in 0..self.positions.len() {
            for j in (i + 1)..self.positions.len() {
                best = best.min(self.positions[i].dist(self.positions[j]));
            }
        }
        best
    }
}

impl<P: Point> FromIterator<P> for Configuration<P> {
    fn from_iter<T: IntoIterator<Item = P>>(iter: T) -> Self {
        Configuration::new(iter.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config() -> Configuration {
        Configuration::new(vec![Vec2::ZERO, Vec2::new(3.0, 0.0), Vec2::new(0.0, 4.0)])
    }

    #[test]
    fn basics() {
        let c = config();
        assert_eq!(c.len(), 3);
        assert!(!c.is_empty());
        assert_eq!(c.position(RobotId(1)), Vec2::new(3.0, 0.0));
        assert_eq!(c.ids().count(), 3);
    }

    #[test]
    fn diameter_and_min_distance() {
        let c = config();
        assert!((c.diameter() - 5.0).abs() < 1e-12);
        assert!((c.min_pairwise_distance() - 3.0).abs() < 1e-12);
        let single = Configuration::new(vec![Vec2::ZERO]);
        assert_eq!(single.diameter(), 0.0);
        assert_eq!(single.min_pairwise_distance(), f64::INFINITY);
    }

    #[test]
    fn centroid() {
        let c = config();
        let g = c.centroid().unwrap();
        assert!((g - Vec2::new(1.0, 4.0 / 3.0)).norm() < 1e-12);
        assert!(Configuration::<Vec2>::new(vec![]).centroid().is_none());
    }

    #[test]
    fn set_position_updates() {
        let mut c = config();
        c.set_position(RobotId(0), Vec2::new(1.0, 1.0));
        assert_eq!(c.position(RobotId(0)), Vec2::new(1.0, 1.0));
    }

    #[test]
    #[should_panic]
    fn non_finite_rejected() {
        let _ = Configuration::new(vec![Vec2::new(f64::NAN, 0.0)]);
    }

    #[test]
    fn from_iterator() {
        let c: Configuration = (0..4).map(|i| Vec2::new(i as f64, 0.0)).collect();
        assert_eq!(c.len(), 4);
    }
}
