//! Property tests for the model layer: the grid-backed visibility-graph
//! builder is extensionally equal to the brute-force reference.
//!
//! The grid path only skips *candidate enumeration* work — the distance
//! predicate is the identical `dist ≤ radius` on identical f64s — so any
//! divergence means the grid missed a candidate cell. The strategies here
//! stress exactly that: random clouds spanning many cells, radii far from
//! the cell edge, and planted pairs at distance exactly `radius` (the closed
//! boundary of §2.1's visibility definition) straddling cell borders.

use cohesion_geometry::Vec2;
use cohesion_model::{Configuration, VisibilityGraph};
use proptest::prelude::*;

fn vec2(range: f64) -> impl Strategy<Value = Vec2> {
    (-range..range, -range..range).prop_map(|(x, y)| Vec2::new(x, y))
}

fn assert_builders_agree(pts: Vec<Vec2>, radius: f64) -> Result<(), TestCaseError> {
    let c = Configuration::new(pts);
    let grid = VisibilityGraph::from_configuration_grid(&c, radius);
    let brute = VisibilityGraph::from_configuration_brute(&c, radius);
    prop_assert_eq!(&grid, &brute, "grid and brute builders diverged");
    // The dispatching front door agrees with both, on either side of its
    // size threshold.
    prop_assert_eq!(&grid, &VisibilityGraph::from_configuration(&c, radius));
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn grid_builder_equals_brute_force_on_random_clouds(
        pts in proptest::collection::vec(vec2(4.0), 1..120),
        radius in 0.05..2.5f64,
    ) {
        assert_builders_agree(pts, radius)?;
    }

    #[test]
    fn boundary_distance_exactly_radius_agrees(
        base in proptest::collection::vec(vec2(3.0), 1..48),
        radius in 0.1..1.5f64,
        angle in 0.0..std::f64::consts::TAU,
    ) {
        // Plant, for a sample of cloud points, a partner at distance exactly
        // `radius` — including the axis-aligned partner whose distance is
        // exactly representable, the worst case for a half-open cell
        // predicate (a point at `k·radius` sits on a cell border when the
        // cell edge is `radius`).
        let mut pts = base.clone();
        for (i, p) in base.iter().enumerate().take(10) {
            let dir = if i % 2 == 0 {
                Vec2::new(1.0, 0.0)
            } else {
                Vec2::from_angle(angle + i as f64)
            };
            pts.push(*p + dir * radius);
        }
        assert_builders_agree(pts, radius)?;
    }

    #[test]
    fn coincident_and_clustered_points_agree(
        cluster in vec2(2.0),
        copies in 2usize..12,
        radius in 0.05..1.0f64,
    ) {
        // Degenerate density: many robots in one cell (multiplicity points).
        let mut pts = vec![cluster; copies];
        pts.push(cluster + Vec2::new(radius, 0.0));
        pts.push(cluster + Vec2::new(0.0, 2.0 * radius));
        assert_builders_agree(pts, radius)?;
    }
}
