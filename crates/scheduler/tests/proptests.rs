//! Property-based tests: every generator's output satisfies its model's
//! constraints, for arbitrary parameters and horizons.

use cohesion_scheduler::validate::{
    minimal_async_k, validate_fairness, validate_fsync, validate_nested, validate_no_self_overlap,
    validate_ssync,
};
use cohesion_scheduler::{
    AsyncScheduler, CentralizedScheduler, FSyncScheduler, KAsyncScheduler, NestAScheduler,
    SSyncScheduler, ScheduleContext, ScheduleTrace, Scheduler,
};
use proptest::prelude::*;

fn collect(mut s: impl Scheduler, robots: usize, count: usize) -> ScheduleTrace {
    let ctx = ScheduleContext {
        robot_count: robots,
    };
    let mut trace = ScheduleTrace::new();
    for _ in 0..count {
        match s.next_activation(&ctx) {
            Some(iv) => trace.push(iv),
            None => break,
        }
    }
    trace
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn fsync_always_validates(robots in 1usize..8, rounds in 1usize..12) {
        let t = collect(FSyncScheduler::new(), robots, robots * rounds);
        prop_assert_eq!(validate_fsync(&t, robots).unwrap(), rounds);
    }

    #[test]
    fn ssync_always_validates(robots in 1usize..8, n in 10usize..80, seed in any::<u64>()) {
        let t = collect(SSyncScheduler::new(seed), robots, n);
        validate_ssync(&t).map_err(|v| TestCaseError::fail(v.reason))?;
        validate_fairness(&t, robots, 8.0).map_err(|v| TestCaseError::fail(v.reason))?;
    }

    #[test]
    fn k_async_respects_its_budget(
        robots in 2usize..7, k in 1u32..6, n in 20usize..120, seed in any::<u64>()
    ) {
        let t = collect(KAsyncScheduler::new(k, seed), robots, n);
        validate_no_self_overlap(&t).map_err(|v| TestCaseError::fail(v.reason))?;
        let actual = minimal_async_k(&t);
        prop_assert!(actual <= k, "k={} scheduler produced a k={} trace", k, actual);
    }

    #[test]
    fn nesta_respects_nesting_and_budget(
        robots in 2usize..6, k in 1u32..5, n in 20usize..100, seed in any::<u64>()
    ) {
        let t = collect(NestAScheduler::new(k, seed), robots, n);
        validate_nested(&t).map_err(|v| TestCaseError::fail(v.reason))?;
        prop_assert!(minimal_async_k(&t) <= k);
    }

    #[test]
    fn async_is_sane_and_fair(robots in 1usize..7, n in 20usize..150, seed in any::<u64>()) {
        let t = collect(AsyncScheduler::new(seed), robots, n);
        validate_no_self_overlap(&t).map_err(|v| TestCaseError::fail(v.reason))?;
        validate_fairness(&t, robots, 60.0).map_err(|v| TestCaseError::fail(v.reason))?;
    }

    #[test]
    fn centralized_is_strictly_sequential(robots in 1usize..8, n in 5usize..60) {
        let t = collect(CentralizedScheduler::new(), robots, n);
        prop_assert_eq!(minimal_async_k(&t), 0);
        validate_ssync(&t).map_err(|v| TestCaseError::fail(v.reason))?;
    }
}
