//! An indexed min-tracker for the asynchronous generators' fairness scan.
//!
//! The Async and *k*-Async schedulers activate *the robot that has been free
//! the longest*: `argmin` over a per-robot `next_free` array, ties broken
//! toward the lowest index (the semantics of `Iterator::min_by`, which
//! returns the first minimal element). The historical implementation was a
//! linear scan — `O(n)` per activation, the single largest cost of unbounded
//! Async scheduling at large `n` (≈ 27 µs per activation at `n = 16384`).
//!
//! [`ArgMin`] is a two-level blocked structure over the same values: the
//! keys sit in `√n`-sized contiguous blocks, each block caches its minimum
//! (value and first minimal index), and a query scans the block summaries.
//! Updates rescan one block, queries scan the summary row — both `O(√n)` of
//! *contiguous* memory, which on the scheduler's every-activation cadence
//! matches an `O(log n)` tree at small `n` and wins at large `n`: the scans
//! stream and prefetch where a root-to-leaf walk serializes on scattered
//! dependent loads, and the structure is two flat arrays. Every
//! comparison keeps the earlier candidate on exact ties (strict `<` to
//! replace), so the selection is *identical* to the historical scan for
//! every possible value history, including the all-zeros start where every
//! index ties. Swapping implementations therefore changes no emitted
//! interval and no RNG draw; the engine equivalence suites pin this end to
//! end.

/// A fixed-size array of `f64` keys supporting `O(√n)` point updates and
/// `O(√n)` "index of the minimum" queries, with first-index tie-breaking.
#[derive(Debug, Clone)]
pub(crate) struct ArgMin {
    /// Number of live keys.
    n: usize,
    /// Block edge (≈ `√n`).
    block: usize,
    /// The keys, dense.
    values: Vec<f64>,
    /// Per block: the block's minimal key.
    summary_value: Vec<f64>,
    /// Per block: the first index attaining that minimum.
    summary_index: Vec<u32>,
}

impl ArgMin {
    /// A tracker of `n` keys, all starting at `initial`.
    pub(crate) fn new(n: usize, initial: f64) -> Self {
        assert!(n > 0, "ArgMin needs at least one key");
        assert!(
            !initial.is_nan(),
            "ArgMin keys must be comparable (non-NaN)"
        );
        let block = (n as f64).sqrt().ceil() as usize;
        let blocks = n.div_ceil(block);
        ArgMin {
            n,
            block,
            values: vec![initial; n],
            summary_value: vec![initial; blocks],
            summary_index: (0..blocks).map(|b| (b * block) as u32).collect(),
        }
    }

    /// Number of tracked keys.
    pub(crate) fn len(&self) -> usize {
        self.n
    }

    /// The current key of index `i`.
    pub(crate) fn get(&self, i: usize) -> f64 {
        assert!(i < self.n, "index {i} out of {} keys", self.n);
        self.values[i]
    }

    /// Sets the key of index `i`, rescanning its block's summary.
    ///
    /// # Panics
    ///
    /// Panics on an out-of-range index or a NaN key (the min order must stay
    /// total, exactly as the historical `partial_cmp(..).expect` scan
    /// demanded).
    pub(crate) fn set(&mut self, i: usize, key: f64) {
        assert!(i < self.n, "index {i} out of {} keys", self.n);
        assert!(!key.is_nan(), "ArgMin keys must be comparable (non-NaN)");
        self.values[i] = key;
        let b = i / self.block;
        let lo = b * self.block;
        let hi = (lo + self.block).min(self.n);
        // Strict `<` keeps the earlier index on exact ties.
        let mut best_value = self.values[lo];
        let mut best_index = lo;
        for j in lo + 1..hi {
            if self.values[j] < best_value {
                best_value = self.values[j];
                best_index = j;
            }
        }
        self.summary_value[b] = best_value;
        self.summary_index[b] = best_index as u32;
    }

    /// The index of the minimal key — the first such index when several tie,
    /// matching `(0..n).min_by(..)` on the same values.
    pub(crate) fn min_index(&self) -> usize {
        // Strict `<` keeps the earlier block on exact ties, and each block's
        // summary already holds its first minimal index.
        let mut best_value = self.summary_value[0];
        let mut best_block = 0;
        for (b, &v) in self.summary_value.iter().enumerate().skip(1) {
            if v < best_value {
                best_value = v;
                best_block = b;
            }
        }
        self.summary_index[best_block] as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// The reference semantics being replaced: a linear first-minimal scan.
    fn scan_min(values: &[f64]) -> usize {
        (0..values.len())
            .min_by(|&a, &b| values[a].partial_cmp(&values[b]).expect("finite"))
            .expect("non-empty")
    }

    #[test]
    fn all_ties_pick_the_first_index() {
        let a = ArgMin::new(7, 0.0);
        assert_eq!(a.min_index(), 0);
        assert_eq!(a.len(), 7);
    }

    #[test]
    fn updates_move_the_minimum() {
        let mut a = ArgMin::new(4, 0.0);
        a.set(0, 5.0);
        assert_eq!(a.min_index(), 1, "remaining zeros tie; first wins");
        a.set(1, 3.0);
        a.set(2, 2.0);
        a.set(3, 2.0);
        assert_eq!(a.min_index(), 2, "tie at 2.0 broken toward index 2");
        assert_eq!(a.get(1), 3.0);
        a.set(2, 9.0);
        assert_eq!(a.min_index(), 3);
    }

    #[test]
    fn non_square_sizes_cover_the_ragged_last_block() {
        let mut a = ArgMin::new(5, 1.0);
        for i in 0..5 {
            a.set(i, 10.0 + i as f64);
        }
        assert_eq!(a.min_index(), 0);
        a.set(4, -1.0);
        assert_eq!(a.min_index(), 4);
    }

    proptest! {
        /// The blocked structure agrees with the historical linear scan after
        /// any update sequence — including duplicated values, the tie-heavy
        /// regime the schedulers start in.
        #[test]
        fn blocked_matches_linear_scan(
            n in 1usize..40,
            updates in proptest::collection::vec((0usize..40, 0u32..8), 0..120),
        ) {
            let mut values = vec![0.0f64; n];
            let mut tracker = ArgMin::new(n, 0.0);
            prop_assert_eq!(tracker.min_index(), scan_min(&values));
            for (i, v) in updates {
                let i = i % n;
                // Coarse values force frequent exact ties.
                let v = v as f64 * 0.5;
                values[i] = v;
                tracker.set(i, v);
                prop_assert_eq!(tracker.min_index(), scan_min(&values));
                prop_assert_eq!(tracker.get(i), values[i]);
            }
        }
    }
}
