//! ASCII timeline rendering — the executable analogue of the paper's
//! Figures 1 and 2.
//!
//! Each robot gets a row; time flows left to right. Characters:
//! `L` marks the instantaneous Look, `c` the Compute phase, `m` the Move
//! phase, `·` inactivity.

use crate::trace::ScheduleTrace;
use cohesion_model::RobotId;

/// Renders the trace as one row per robot over `width` columns covering
/// `[0, horizon]`.
///
/// ```
/// use cohesion_scheduler::{render::render_timeline, ScheduleTrace, ActivationInterval};
/// use cohesion_model::RobotId;
/// let t = ScheduleTrace::from_intervals(vec![
///     ActivationInterval::new(RobotId(0), 0.0, 1.0, 2.0),
/// ]);
/// let art = render_timeline(&t, 1, 20);
/// assert!(art.contains('L'));
/// assert!(art.contains('m'));
/// ```
pub fn render_timeline(trace: &ScheduleTrace, robot_count: usize, width: usize) -> String {
    let horizon = trace.horizon().max(1e-9);
    let mut rows: Vec<Vec<char>> = vec![vec!['·'; width]; robot_count];
    for iv in trace.intervals() {
        let r = iv.robot.index();
        if r >= robot_count {
            continue;
        }
        let col = |t: f64| -> usize {
            (((t / horizon) * (width as f64 - 1.0)).round() as usize).min(width - 1)
        };
        let (c_look, c_move, c_end) = (col(iv.look), col(iv.move_start), col(iv.end));
        for cell in rows[r].iter_mut().take(c_move).skip(c_look) {
            *cell = 'c';
        }
        for cell in rows[r].iter_mut().take(c_end + 1).skip(c_move) {
            *cell = 'm';
        }
        rows[r][c_look] = 'L';
    }
    let mut out = String::new();
    for (r, row) in rows.iter().enumerate() {
        out.push_str(&format!("{:>4} |", RobotId::from(r).to_string()));
        out.extend(row.iter());
        out.push('\n');
    }
    out.push_str(&format!(
        "      0{:>width$.2}\n",
        horizon,
        width = width - 1
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interval::ActivationInterval;

    #[test]
    fn renders_expected_shape() {
        let t = ScheduleTrace::from_intervals(vec![
            ActivationInterval::new(RobotId(0), 0.0, 2.0, 4.0),
            ActivationInterval::new(RobotId(1), 1.0, 1.5, 2.0),
        ]);
        let art = render_timeline(&t, 2, 40);
        let lines: Vec<&str> = art.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("  R0 |L"));
        assert!(lines[0].contains('m'));
        assert!(lines[1].contains('L'));
        // Robot 1 is inactive at the end.
        assert!(lines[1].trim_end().ends_with('·'));
    }

    #[test]
    fn empty_trace_renders_blank_rows() {
        let art = render_timeline(&ScheduleTrace::new(), 2, 10);
        assert_eq!(art.lines().count(), 3);
        assert!(!art.contains('L'));
    }
}
