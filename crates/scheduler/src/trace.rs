//! Schedule traces: the complete timed record of who was activated when.

use crate::interval::ActivationInterval;
use cohesion_model::RobotId;
use serde::{Deserialize, Serialize};

/// A finite, Look-time-ordered record of activation intervals — the object
/// the validators in [`crate::validate`] certify against the scheduling
/// models of §2.3.1.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct ScheduleTrace {
    intervals: Vec<ActivationInterval>,
}

impl ScheduleTrace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        ScheduleTrace::default()
    }

    /// Builds a trace from intervals (sorted by Look time internally).
    pub fn from_intervals(mut intervals: Vec<ActivationInterval>) -> Self {
        intervals.sort_by(|a, b| a.look.partial_cmp(&b.look).expect("finite times"));
        ScheduleTrace { intervals }
    }

    /// Appends an interval.
    ///
    /// # Panics
    ///
    /// Panics if the interval's Look time precedes the last recorded one
    /// (traces are built in dispatch order).
    pub fn push(&mut self, interval: ActivationInterval) {
        if let Some(last) = self.intervals.last() {
            assert!(
                interval.look >= last.look,
                "trace must be appended in Look-time order ({} after {})",
                interval.look,
                last.look
            );
        }
        self.intervals.push(interval);
    }

    /// All intervals in Look-time order.
    pub fn intervals(&self) -> &[ActivationInterval] {
        &self.intervals
    }

    /// Number of recorded activations.
    pub fn len(&self) -> usize {
        self.intervals.len()
    }

    /// Returns `true` when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.intervals.is_empty()
    }

    /// The intervals of one robot, in time order.
    pub fn of_robot(&self, id: RobotId) -> Vec<ActivationInterval> {
        self.intervals
            .iter()
            .copied()
            .filter(|iv| iv.robot == id)
            .collect()
    }

    /// Number of activations per robot (indexed by robot id); robots never
    /// activated report `0`.
    pub fn activation_counts(&self, robot_count: usize) -> Vec<usize> {
        let mut counts = vec![0usize; robot_count];
        for iv in &self.intervals {
            if iv.robot.index() < robot_count {
                counts[iv.robot.index()] += 1;
            }
        }
        counts
    }

    /// Latest interval end time (`0` for an empty trace).
    pub fn horizon(&self) -> f64 {
        self.intervals.iter().map(|iv| iv.end).fold(0.0, f64::max)
    }
}

impl FromIterator<ActivationInterval> for ScheduleTrace {
    fn from_iter<T: IntoIterator<Item = ActivationInterval>>(iter: T) -> Self {
        ScheduleTrace::from_intervals(iter.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn iv(robot: u32, look: f64) -> ActivationInterval {
        ActivationInterval::new(RobotId(robot), look, look + 0.5, look + 1.0)
    }

    #[test]
    fn ordering_enforced_on_push() {
        let mut t = ScheduleTrace::new();
        t.push(iv(0, 0.0));
        t.push(iv(1, 0.5));
        assert_eq!(t.len(), 2);
    }

    #[test]
    #[should_panic]
    fn out_of_order_push_panics() {
        let mut t = ScheduleTrace::new();
        t.push(iv(0, 1.0));
        t.push(iv(1, 0.5));
    }

    #[test]
    fn from_intervals_sorts() {
        let t = ScheduleTrace::from_intervals(vec![iv(0, 2.0), iv(1, 0.0), iv(2, 1.0)]);
        let looks: Vec<f64> = t.intervals().iter().map(|i| i.look).collect();
        assert_eq!(looks, vec![0.0, 1.0, 2.0]);
    }

    #[test]
    fn per_robot_queries() {
        let t = ScheduleTrace::from_intervals(vec![iv(0, 0.0), iv(1, 1.0), iv(0, 2.0)]);
        assert_eq!(t.of_robot(RobotId(0)).len(), 2);
        assert_eq!(t.of_robot(RobotId(1)).len(), 1);
        assert_eq!(t.activation_counts(3), vec![2, 1, 0]);
        assert_eq!(t.horizon(), 3.0);
    }
}
