//! Activation scheduling for Look–Compute–Move robot systems (paper §2.3.1).
//!
//! The scheduler is the adversary: it decides when each robot is activated
//! and how long its Compute and Move phases last, constrained only by the
//! synchronization model in force. This crate provides:
//!
//! * [`ActivationInterval`] / [`ScheduleTrace`] — the timed artifacts;
//! * online generators for every model in the paper: [`FSyncScheduler`],
//!   [`SSyncScheduler`], [`KAsyncScheduler`] (*k*-Async), [`NestAScheduler`]
//!   (*k*-NestA), [`AsyncScheduler`] (unbounded), plus [`ScriptedScheduler`]
//!   for hand-built adversarial timelines (Figure 4, §7);
//! * [`validate`] — checkers proving a trace satisfies (or violates) each
//!   model's constraints, including the exact “at most `k` activations of one
//!   robot within a single active interval of another” condition;
//! * [`render`] — ASCII timelines reproducing the shape of Figures 1–2.

#![forbid(unsafe_code)]
#![deny(unsafe_op_in_unsafe_fn)]

mod argmin;
pub mod checkpoint;
pub mod generators;
pub mod interval;
pub mod render;
pub mod trace;
pub mod validate;

pub use checkpoint::SchedulerState;
pub use generators::{
    interleaved_engagement, AsyncScheduler, CentralizedScheduler, FSyncScheduler, KAsyncScheduler,
    NestAScheduler, SSyncScheduler, ScriptedScheduler,
};
pub use interval::{ActivationInterval, Phase};
pub use trace::ScheduleTrace;
pub use validate::{max_nesting_depth, minimal_async_k, SchedulerModel};

use std::fmt::Debug;

/// Context handed to scheduler generators on every pull.
#[derive(Debug, Clone, Copy)]
pub struct ScheduleContext {
    /// Number of robots in the system.
    pub robot_count: usize,
}

/// An online activation-schedule generator.
///
/// Implementations must emit intervals with non-decreasing Look times and
/// must never overlap two intervals of the same robot. Infinite schedulers
/// (all the random models) never return `None`; scripted schedules do when
/// exhausted.
pub trait Scheduler: Debug + Send {
    /// Produces the next activation interval.
    fn next_activation(&mut self, ctx: &ScheduleContext) -> Option<ActivationInterval>;

    /// A short human-readable name used in experiment tables.
    fn name(&self) -> &str;

    /// Captures the scheduler's mutable state for a checkpoint, or `None`
    /// when the generator is not checkpointable (the engine then refuses to
    /// save rather than silently mis-resuming).
    fn save_state(&self) -> Option<SchedulerState> {
        None
    }

    /// Restores a state captured by [`Scheduler::save_state`]. Fails when
    /// the state belongs to a different generator class or configuration.
    fn load_state(&mut self, state: &SchedulerState) -> Result<(), String> {
        Err(format!(
            "scheduler '{}' does not support restore (got {} state)",
            self.name(),
            state.class()
        ))
    }
}

impl<S: Scheduler + ?Sized> Scheduler for Box<S> {
    fn next_activation(&mut self, ctx: &ScheduleContext) -> Option<ActivationInterval> {
        (**self).next_activation(ctx)
    }

    fn name(&self) -> &str {
        (**self).name()
    }

    fn save_state(&self) -> Option<SchedulerState> {
        (**self).save_state()
    }

    fn load_state(&mut self, state: &SchedulerState) -> Result<(), String> {
        (**self).load_state(state)
    }
}
