//! Online schedule generators for every synchronization model of §2.3.1.
//!
//! All generators are deterministic given their seed, emit intervals in
//! non-decreasing Look-time order, never overlap two intervals of the same
//! robot, and are fair (every robot is activated again within a bounded
//! delay). The random models are *probabilistic adversaries*: experiments
//! that need the specific worst-case timelines of the paper (Figure 4, §7)
//! use [`ScriptedScheduler`] with hand-built traces instead.

use crate::argmin::ArgMin;
use crate::checkpoint::{ProfileState, SchedulerState};
use crate::interval::ActivationInterval;
use crate::{ScheduleContext, Scheduler};
use cohesion_model::RobotId;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::VecDeque;

fn state_mismatch(expect: &str, got: &SchedulerState) -> String {
    format!(
        "cannot restore a {} checkpoint into a {expect} scheduler",
        got.class()
    )
}

fn profile_state(p: &DurationProfile) -> ProfileState {
    [
        p.compute.0,
        p.compute.1,
        p.move_phase.0,
        p.move_phase.1,
        p.jitter,
    ]
}

fn profile_from_state(s: &ProfileState) -> DurationProfile {
    DurationProfile {
        compute: (s[0], s[1]),
        move_phase: (s[2], s[3]),
        jitter: s[4],
    }
}

fn argmin_values(a: Option<&ArgMin>) -> Option<Vec<f64>> {
    a.map(|a| (0..a.len()).map(|i| a.get(i)).collect())
}

fn argmin_from_values(v: Option<&Vec<f64>>) -> Option<ArgMin> {
    let vals = v.filter(|vals| !vals.is_empty())?;
    let mut a = ArgMin::new(vals.len(), 0.0);
    for (i, &x) in vals.iter().enumerate() {
        a.set(i, x);
    }
    Some(a)
}

/// Timing ranges used by the random generators.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DurationProfile {
    /// Compute-phase duration range.
    pub compute: (f64, f64),
    /// Move-phase duration range.
    pub move_phase: (f64, f64),
    /// Idle jitter added between activations.
    pub jitter: f64,
}

impl Default for DurationProfile {
    fn default() -> Self {
        DurationProfile {
            compute: (0.05, 0.35),
            move_phase: (0.1, 1.2),
            jitter: 0.08,
        }
    }
}

impl DurationProfile {
    fn sample_compute(&self, rng: &mut SmallRng) -> f64 {
        rng.gen_range(self.compute.0..=self.compute.1)
    }

    fn sample_move(&self, rng: &mut SmallRng) -> f64 {
        rng.gen_range(self.move_phase.0..=self.move_phase.1)
    }

    fn sample_jitter(&self, rng: &mut SmallRng) -> f64 {
        rng.gen_range(0.0..=self.jitter)
    }
}

// ---------------------------------------------------------------------------
// FSync
// ---------------------------------------------------------------------------

/// Fully synchronous rounds: every robot activated in every round with
/// identical phase boundaries (Figure 1, top).
#[derive(Debug)]
pub struct FSyncScheduler {
    round: u64,
    queue: VecDeque<ActivationInterval>,
}

impl FSyncScheduler {
    /// Creates the scheduler (deterministic, no seed needed).
    pub fn new() -> Self {
        FSyncScheduler {
            round: 0,
            queue: VecDeque::new(),
        }
    }
}

impl Default for FSyncScheduler {
    fn default() -> Self {
        FSyncScheduler::new()
    }
}

impl Scheduler for FSyncScheduler {
    fn next_activation(&mut self, ctx: &ScheduleContext) -> Option<ActivationInterval> {
        if self.queue.is_empty() {
            let t0 = self.round as f64;
            for r in 0..ctx.robot_count {
                self.queue.push_back(ActivationInterval::new(
                    RobotId::from(r),
                    t0,
                    t0 + 0.25,
                    t0 + 0.75,
                ));
            }
            self.round += 1;
        }
        self.queue.pop_front()
    }

    fn name(&self) -> &str {
        "FSync"
    }

    fn save_state(&self) -> Option<SchedulerState> {
        Some(SchedulerState::FSync {
            round: self.round,
            queue: self.queue.iter().copied().collect(),
        })
    }

    fn load_state(&mut self, state: &SchedulerState) -> Result<(), String> {
        match state {
            SchedulerState::FSync { round, queue } => {
                self.round = *round;
                self.queue = queue.iter().copied().collect();
                Ok(())
            }
            other => Err(state_mismatch("FSync", other)),
        }
    }
}

// ---------------------------------------------------------------------------
// SSync
// ---------------------------------------------------------------------------

/// Semi-synchronous rounds: a random non-empty subset per round; fairness is
/// forced by including any robot that has been skipped three rounds running
/// (Figure 1, middle).
#[derive(Debug)]
pub struct SSyncScheduler {
    rng: SmallRng,
    round: u64,
    skip_counts: Vec<u32>,
    queue: VecDeque<ActivationInterval>,
    /// Per-robot inclusion probability per round.
    pub inclusion_probability: f64,
}

impl SSyncScheduler {
    /// Creates the scheduler with the given RNG seed.
    pub fn new(seed: u64) -> Self {
        SSyncScheduler {
            rng: SmallRng::seed_from_u64(seed),
            round: 0,
            skip_counts: Vec::new(),
            queue: VecDeque::new(),
            inclusion_probability: 0.5,
        }
    }
}

impl Scheduler for SSyncScheduler {
    fn next_activation(&mut self, ctx: &ScheduleContext) -> Option<ActivationInterval> {
        if self.skip_counts.len() != ctx.robot_count {
            self.skip_counts = vec![0; ctx.robot_count];
        }
        while self.queue.is_empty() {
            let t0 = self.round as f64;
            self.round += 1;
            let mut chosen: Vec<usize> = (0..ctx.robot_count)
                .filter(|&r| {
                    self.skip_counts[r] >= 3 || self.rng.gen_bool(self.inclusion_probability)
                })
                .collect();
            if chosen.is_empty() && ctx.robot_count > 0 {
                chosen.push(self.rng.gen_range(0..ctx.robot_count));
            }
            for r in 0..ctx.robot_count {
                // `chosen` is built ascending (a filter over `0..n`, plus at
                // most one fallback push into an empty list), so membership
                // is a binary search — the historical `contains` scan made
                // the round setup quadratic in the robot count.
                if chosen.binary_search(&r).is_ok() {
                    self.skip_counts[r] = 0;
                } else {
                    self.skip_counts[r] += 1;
                }
            }
            for r in chosen {
                self.queue.push_back(ActivationInterval::new(
                    RobotId::from(r),
                    t0,
                    t0 + 0.25,
                    t0 + 0.75,
                ));
            }
        }
        self.queue.pop_front()
    }

    fn name(&self) -> &str {
        "SSync"
    }

    fn save_state(&self) -> Option<SchedulerState> {
        Some(SchedulerState::SSync {
            rng: self.rng.state(),
            round: self.round,
            skip_counts: self.skip_counts.clone(),
            queue: self.queue.iter().copied().collect(),
            inclusion_probability: self.inclusion_probability,
        })
    }

    fn load_state(&mut self, state: &SchedulerState) -> Result<(), String> {
        match state {
            SchedulerState::SSync {
                rng,
                round,
                skip_counts,
                queue,
                inclusion_probability,
            } => {
                self.rng = SmallRng::from_state(*rng);
                self.round = *round;
                self.skip_counts = skip_counts.clone();
                self.queue = queue.iter().copied().collect();
                self.inclusion_probability = *inclusion_probability;
                Ok(())
            }
            other => Err(state_mismatch("SSync", other)),
        }
    }
}

// ---------------------------------------------------------------------------
// k-Async
// ---------------------------------------------------------------------------

/// The `k`-Async adversary: arbitrary overlapping activations, except that at
/// most `k` activations of one robot may start within a single active
/// interval of another (§2.3.1, Figure 2 bottom).
///
/// The generator proposes greedy random activations and *repairs* proposals
/// that would exceed the budget by postponing them past the end of the
/// constraining interval, so every emitted trace is `k`-Async by
/// construction (checked in tests via [`crate::validate::minimal_async_k`]).
#[derive(Debug)]
pub struct KAsyncScheduler {
    k: u32,
    rng: SmallRng,
    profile: DurationProfile,
    clock: f64,
    /// Per-robot earliest re-activation times behind an `O(log n)` indexed
    /// min-tracker (fairness picks the first minimal index, exactly like the
    /// historical linear scan).
    next_free: Option<ArgMin>,
    history: Vec<ActivationInterval>,
}

impl KAsyncScheduler {
    /// Creates a `k`-Async scheduler.
    ///
    /// # Panics
    ///
    /// Panics when `k == 0`.
    pub fn new(k: u32, seed: u64) -> Self {
        assert!(k >= 1, "k-Async needs k ≥ 1");
        KAsyncScheduler {
            k,
            rng: SmallRng::seed_from_u64(seed),
            profile: DurationProfile::default(),
            clock: 0.0,
            next_free: None,
            history: Vec::new(),
        }
    }

    /// Replaces the duration profile (builder style).
    pub fn with_profile(mut self, profile: DurationProfile) -> Self {
        self.profile = profile;
        self
    }

    /// The bound `k`.
    pub fn k(&self) -> u32 {
        self.k
    }
}

impl Scheduler for KAsyncScheduler {
    fn next_activation(&mut self, ctx: &ScheduleContext) -> Option<ActivationInterval> {
        assert!(ctx.robot_count > 0, "at least one robot");
        let next_free = match self.next_free.as_mut() {
            Some(a) if a.len() == ctx.robot_count => a,
            _ => self.next_free.insert(ArgMin::new(ctx.robot_count, 0.0)),
        };
        // Fairness: activate the robot that has been free the longest.
        let robot = next_free.min_index();
        let mut look =
            next_free.get(robot).max(self.clock) + self.profile.sample_jitter(&mut self.rng);
        // Repair loop: postpone past any interval whose per-robot budget the
        // proposal would blow.
        loop {
            let mut bumped = false;
            for iv in &self.history {
                if iv.robot.index() == robot || !iv.contains_time(look) {
                    continue;
                }
                let already = self
                    .history
                    .iter()
                    .filter(|h| h.robot.index() == robot && iv.contains_time(h.look))
                    .count() as u32;
                if already + 1 > self.k {
                    look = iv.end + self.profile.sample_jitter(&mut self.rng) + 1e-6;
                    bumped = true;
                }
            }
            if !bumped {
                break;
            }
        }
        let move_start = look + self.profile.sample_compute(&mut self.rng);
        let end = move_start + self.profile.sample_move(&mut self.rng);
        let iv = ActivationInterval::new(RobotId::from(robot), look, move_start, end);
        self.clock = look;
        next_free.set(robot, end + 1e-9);
        self.history.push(iv);
        // Prune history. An old interval still matters if it can contain a
        // future Look (ends after the clock) *or* if its own Look could be
        // counted against a still-open interval (starts no earlier than the
        // earliest open interval).
        let clock = self.clock;
        let earliest_open_look = self
            .history
            .iter()
            .filter(|h| h.end >= clock - 1e-9)
            .map(|h| h.look)
            .fold(f64::INFINITY, f64::min);
        self.history
            .retain(|h| h.end >= clock - 1e-9 || h.look >= earliest_open_look - 1e-9);
        Some(iv)
    }

    fn name(&self) -> &str {
        "k-Async"
    }

    fn save_state(&self) -> Option<SchedulerState> {
        Some(SchedulerState::KAsync {
            k: self.k,
            rng: self.rng.state(),
            profile: profile_state(&self.profile),
            clock: self.clock,
            next_free: argmin_values(self.next_free.as_ref()),
            history: self.history.clone(),
        })
    }

    fn load_state(&mut self, state: &SchedulerState) -> Result<(), String> {
        match state {
            SchedulerState::KAsync {
                k,
                rng,
                profile,
                clock,
                next_free,
                history,
            } => {
                if *k != self.k {
                    return Err(format!(
                        "k-Async checkpoint has k={k}, scheduler has k={}",
                        self.k
                    ));
                }
                self.rng = SmallRng::from_state(*rng);
                self.profile = profile_from_state(profile);
                self.clock = *clock;
                self.next_free = argmin_from_values(next_free.as_ref());
                self.history = history.clone();
                Ok(())
            }
            other => Err(state_mismatch("k-Async", other)),
        }
    }
}

// ---------------------------------------------------------------------------
// k-NestA
// ---------------------------------------------------------------------------

/// The `k`-NestA adversary: activity intervals pairwise disjoint or nested,
/// with at most `k` activations of one robot nested within a single interval
/// of another (Figure 2, top).
///
/// Generates *activation events* in the shape the paper's §4.1 analysis uses:
/// an outer interval of one robot (rotating, for fairness) containing, for
/// each other robot, between 1 and `k` sequential nested intervals.
#[derive(Debug)]
pub struct NestAScheduler {
    k: u32,
    rng: SmallRng,
    clock: f64,
    next_outer: usize,
    queue: VecDeque<ActivationInterval>,
}

impl NestAScheduler {
    /// Creates a `k`-NestA scheduler.
    ///
    /// # Panics
    ///
    /// Panics when `k == 0`.
    pub fn new(k: u32, seed: u64) -> Self {
        assert!(k >= 1, "k-NestA needs k ≥ 1");
        NestAScheduler {
            k,
            rng: SmallRng::seed_from_u64(seed),
            clock: 0.0,
            next_outer: 0,
            queue: VecDeque::new(),
        }
    }

    /// The bound `k`.
    pub fn k(&self) -> u32 {
        self.k
    }

    fn build_block(&mut self, ctx: &ScheduleContext) {
        let n = ctx.robot_count;
        if n == 0 {
            return;
        }
        let outer_robot = self.next_outer % n;
        self.next_outer += 1;
        if n == 1 {
            let look = self.clock + 0.1;
            self.queue.push_back(ActivationInterval::new(
                RobotId::from(outer_robot),
                look,
                look + 0.2,
                look + 0.5,
            ));
            self.clock = look + 0.6;
            return;
        }
        // Plan the inner activations: for each other robot, 1..=k intervals.
        let mut inner: Vec<(usize, u32)> = Vec::new();
        for r in 0..n {
            if r != outer_robot {
                inner.push((r, self.rng.gen_range(1..=self.k)));
            }
        }
        let total_inner: u32 = inner.iter().map(|(_, c)| c).sum();
        let slot = 0.4; // time per inner activation
        let t0 = self.clock + 0.05;
        let outer_end = t0 + 0.2 + f64::from(total_inner) * slot + 0.2;
        self.queue.push_back(ActivationInterval::new(
            RobotId::from(outer_robot),
            t0,
            t0 + 0.1,
            outer_end,
        ));
        // Lay the inner activations out sequentially (disjoint from each
        // other, each nested in the outer interval), in an interleaved random
        // order so nesting patterns vary.
        let mut slots: Vec<usize> = Vec::new();
        for (r, c) in &inner {
            for _ in 0..*c {
                slots.push(*r);
            }
        }
        // Fisher–Yates shuffle.
        for i in (1..slots.len()).rev() {
            let j = self.rng.gen_range(0..=i);
            slots.swap(i, j);
        }
        let mut t = t0 + 0.2;
        for r in slots {
            let look = t + 0.02;
            let move_start = look + 0.1;
            let end = t + slot - 0.02;
            self.queue.push_back(ActivationInterval::new(
                RobotId::from(r),
                look,
                move_start,
                end,
            ));
            t += slot;
        }
        self.clock = outer_end + 0.1;
    }
}

impl Scheduler for NestAScheduler {
    fn next_activation(&mut self, ctx: &ScheduleContext) -> Option<ActivationInterval> {
        while self.queue.is_empty() {
            self.build_block(ctx);
            if ctx.robot_count == 0 {
                return None;
            }
        }
        self.queue.pop_front()
    }

    fn name(&self) -> &str {
        "k-NestA"
    }

    fn save_state(&self) -> Option<SchedulerState> {
        Some(SchedulerState::NestA {
            k: self.k,
            rng: self.rng.state(),
            clock: self.clock,
            next_outer: self.next_outer as u64,
            queue: self.queue.iter().copied().collect(),
        })
    }

    fn load_state(&mut self, state: &SchedulerState) -> Result<(), String> {
        match state {
            SchedulerState::NestA {
                k,
                rng,
                clock,
                next_outer,
                queue,
            } => {
                if *k != self.k {
                    return Err(format!(
                        "k-NestA checkpoint has k={k}, scheduler has k={}",
                        self.k
                    ));
                }
                self.rng = SmallRng::from_state(*rng);
                self.clock = *clock;
                self.next_outer = usize::try_from(*next_outer).map_err(|_| {
                    "k-NestA checkpoint rotation counter overflows usize".to_string()
                })?;
                self.queue = queue.iter().copied().collect();
                Ok(())
            }
            other => Err(state_mismatch("k-NestA", other)),
        }
    }
}

// ---------------------------------------------------------------------------
// Async
// ---------------------------------------------------------------------------

/// The unbounded-asynchrony adversary: arbitrary overlap, arbitrary (finite)
/// durations, fairness only (Figure 1, bottom). Occasionally stretches a
/// Move far beyond the usual profile, which is exactly the freedom that the
/// §7 impossibility construction weaponizes.
#[derive(Debug)]
pub struct AsyncScheduler {
    rng: SmallRng,
    profile: DurationProfile,
    clock: f64,
    /// Per-robot earliest re-activation times behind an `O(log n)` indexed
    /// min-tracker (fairness picks the first minimal index, exactly like the
    /// historical linear scan).
    next_free: Option<ArgMin>,
    /// Probability that an activation gets a 10–30× stretched Move phase.
    pub stretch_probability: f64,
}

impl AsyncScheduler {
    /// Creates the scheduler with the given RNG seed.
    pub fn new(seed: u64) -> Self {
        AsyncScheduler {
            rng: SmallRng::seed_from_u64(seed),
            profile: DurationProfile::default(),
            clock: 0.0,
            next_free: None,
            stretch_probability: 0.1,
        }
    }

    /// Replaces the duration profile (builder style).
    pub fn with_profile(mut self, profile: DurationProfile) -> Self {
        self.profile = profile;
        self
    }
}

impl Scheduler for AsyncScheduler {
    fn next_activation(&mut self, ctx: &ScheduleContext) -> Option<ActivationInterval> {
        assert!(ctx.robot_count > 0, "at least one robot");
        let next_free = match self.next_free.as_mut() {
            Some(a) if a.len() == ctx.robot_count => a,
            _ => self.next_free.insert(ArgMin::new(ctx.robot_count, 0.0)),
        };
        let robot = next_free.min_index();
        let look = next_free.get(robot).max(self.clock) + self.profile.sample_jitter(&mut self.rng);
        let move_start = look + self.profile.sample_compute(&mut self.rng);
        let mut move_d = self.profile.sample_move(&mut self.rng);
        if self.rng.gen_bool(self.stretch_probability) {
            move_d *= self.rng.gen_range(10.0..30.0);
        }
        let iv =
            ActivationInterval::new(RobotId::from(robot), look, move_start, move_start + move_d);
        self.clock = look;
        next_free.set(robot, iv.end + 1e-9);
        Some(iv)
    }

    fn name(&self) -> &str {
        "Async"
    }

    fn save_state(&self) -> Option<SchedulerState> {
        Some(SchedulerState::Async {
            rng: self.rng.state(),
            profile: profile_state(&self.profile),
            clock: self.clock,
            next_free: argmin_values(self.next_free.as_ref()),
            stretch_probability: self.stretch_probability,
        })
    }

    fn load_state(&mut self, state: &SchedulerState) -> Result<(), String> {
        match state {
            SchedulerState::Async {
                rng,
                profile,
                clock,
                next_free,
                stretch_probability,
            } => {
                self.rng = SmallRng::from_state(*rng);
                self.profile = profile_from_state(profile);
                self.clock = *clock;
                self.next_free = argmin_from_values(next_free.as_ref());
                self.stretch_probability = *stretch_probability;
                Ok(())
            }
            other => Err(state_mismatch("Async", other)),
        }
    }
}

// ---------------------------------------------------------------------------
// Centralized
// ---------------------------------------------------------------------------

/// The classic *centralized/sequential* scheduler: exactly one robot active
/// at any time, in round-robin order. A strict special case of SSync (every
/// round a singleton) and therefore of every model in the paper — useful as
/// the weakest-adversary control in experiments.
#[derive(Debug)]
pub struct CentralizedScheduler {
    next: usize,
    clock: f64,
}

impl CentralizedScheduler {
    /// Creates the scheduler (deterministic).
    pub fn new() -> Self {
        CentralizedScheduler {
            next: 0,
            clock: 0.0,
        }
    }
}

impl Default for CentralizedScheduler {
    fn default() -> Self {
        CentralizedScheduler::new()
    }
}

impl Scheduler for CentralizedScheduler {
    fn next_activation(&mut self, ctx: &ScheduleContext) -> Option<ActivationInterval> {
        if ctx.robot_count == 0 {
            return None;
        }
        let robot = self.next % ctx.robot_count;
        self.next += 1;
        let look = self.clock;
        let iv = ActivationInterval::new(RobotId::from(robot), look, look + 0.25, look + 0.75);
        self.clock = look + 1.0;
        Some(iv)
    }

    fn name(&self) -> &str {
        "Centralized"
    }

    fn save_state(&self) -> Option<SchedulerState> {
        Some(SchedulerState::Centralized {
            next: self.next as u64,
            clock: self.clock,
        })
    }

    fn load_state(&mut self, state: &SchedulerState) -> Result<(), String> {
        match state {
            SchedulerState::Centralized { next, clock } => {
                self.next = usize::try_from(*next).map_err(|_| {
                    "Centralized checkpoint rotation counter overflows usize".to_string()
                })?;
                self.clock = *clock;
                Ok(())
            }
            other => Err(state_mismatch("Centralized", other)),
        }
    }
}

// ---------------------------------------------------------------------------
// Scripted
// ---------------------------------------------------------------------------

/// Replays a hand-built, finite activation timeline — the tool for the
/// paper's exact counterexamples (Figure 4) and the §7 sliver-flattening
/// adversary.
#[derive(Debug)]
pub struct ScriptedScheduler {
    queue: VecDeque<ActivationInterval>,
    name: String,
}

impl ScriptedScheduler {
    /// Creates a scripted scheduler from intervals (sorted by Look time).
    pub fn new(name: impl Into<String>, mut intervals: Vec<ActivationInterval>) -> Self {
        intervals.sort_by(|a, b| a.look.partial_cmp(&b.look).expect("finite times"));
        ScriptedScheduler {
            queue: intervals.into(),
            name: name.into(),
        }
    }

    /// Remaining activations.
    pub fn remaining(&self) -> usize {
        self.queue.len()
    }
}

impl Scheduler for ScriptedScheduler {
    fn next_activation(&mut self, _ctx: &ScheduleContext) -> Option<ActivationInterval> {
        self.queue.pop_front()
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn save_state(&self) -> Option<SchedulerState> {
        Some(SchedulerState::Scripted {
            name: self.name.clone(),
            queue: self.queue.iter().copied().collect(),
        })
    }

    fn load_state(&mut self, state: &SchedulerState) -> Result<(), String> {
        match state {
            SchedulerState::Scripted { name, queue } => {
                if *name != self.name {
                    return Err(format!(
                        "scripted checkpoint is for '{name}', scheduler is '{}'",
                        self.name
                    ));
                }
                self.queue = queue.iter().copied().collect();
                Ok(())
            }
            other => Err(state_mismatch("Scripted", other)),
        }
    }
}

/// A randomized interleaved engagement script for robots `0` and `1` — the
/// Figure 10 pattern of the paper's Lemma 5 analysis: robot 0's `j`-th long
/// interval overlaps a cluster of up to `k` short activations of robot 1,
/// each seeing the other mid-move, repeated for a seeded number of cluster
/// rounds. Deterministic in `seed`; feed the result to a
/// [`ScriptedScheduler`].
#[must_use]
pub fn interleaved_engagement(k: u32, seed: u64) -> Vec<ActivationInterval> {
    assert!(k >= 1, "the overlap bound k must be at least 1");
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut script = Vec::new();
    let mut t = 0.0;
    for _ in 0..rng.gen_range(3..9) {
        let cluster = rng.gen_range(1..=k);
        let x_start = t;
        let x_end = t + 1.0;
        script.push(ActivationInterval::new(
            RobotId(0),
            x_start,
            x_start + 0.1,
            x_end,
        ));
        let mut s = x_start + 0.15;
        for _ in 0..cluster {
            // Aim activations at ~0.8/k so a full k-cluster fits inside
            // robot 0's unit interval; for k ≥ 10 that target dips below the
            // 0.08 floor, so clamp to a thin band instead of handing
            // `gen_range` an empty range (the cluster then self-truncates
            // at the `s + dur >= x_end` check below).
            let dur_cap = (0.8 / f64::from(k)).max(0.0801);
            let dur = rng.gen_range(0.08..dur_cap);
            if s + dur >= x_end {
                break;
            }
            script.push(ActivationInterval::new(
                RobotId(1),
                s,
                s + dur * 0.4,
                s + dur,
            ));
            s += dur + 0.01;
        }
        t = x_end + rng.gen_range(0.01..0.1);
    }
    script.sort_by(|a, b| a.look.partial_cmp(&b.look).expect("finite times"));
    script
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::ScheduleTrace;
    use crate::validate::{
        minimal_async_k, validate_fairness, validate_fsync, validate_nested,
        validate_no_self_overlap, validate_ssync,
    };

    fn collect(mut s: impl Scheduler, n: usize, count: usize) -> ScheduleTrace {
        let ctx = ScheduleContext { robot_count: n };
        let mut t = ScheduleTrace::new();
        for _ in 0..count {
            t.push(s.next_activation(&ctx).expect("infinite scheduler"));
        }
        t
    }

    #[test]
    fn fsync_is_fsync() {
        let t = collect(FSyncScheduler::new(), 4, 40);
        assert_eq!(validate_fsync(&t, 4).unwrap(), 10);
        assert!(validate_fairness(&t, 4, 1.5).is_ok());
    }

    #[test]
    fn ssync_is_ssync_and_fair() {
        let t = collect(SSyncScheduler::new(9), 5, 120);
        validate_ssync(&t).unwrap();
        assert!(validate_fairness(&t, 5, 6.0).is_ok());
        // Not FSync: some round misses someone (with overwhelming probability
        // over 120 draws at p = 0.5).
        assert!(validate_fsync(&t, 5).is_err());
    }

    #[test]
    fn k_async_respects_k() {
        for k in [1u32, 2, 4] {
            let t = collect(KAsyncScheduler::new(k, 7), 4, 150);
            validate_no_self_overlap(&t).unwrap();
            let actual = minimal_async_k(&t);
            assert!(actual <= k, "k={k} but trace needs {actual}");
            assert!(validate_fairness(&t, 4, 20.0).is_ok());
        }
    }

    #[test]
    fn k_async_actually_overlaps() {
        // The generator should produce genuine asynchrony, not accidental
        // synchrony: some pair of intervals must overlap across robots.
        let t = collect(KAsyncScheduler::new(2, 3), 3, 60);
        let ivs = t.intervals();
        let overlapping = ivs.iter().enumerate().any(|(i, a)| {
            ivs.iter()
                .skip(i + 1)
                .any(|b| a.robot != b.robot && a.overlaps(b))
        });
        assert!(overlapping);
    }

    #[test]
    fn nesta_is_nested_and_bounded() {
        for k in [1u32, 3] {
            let t = collect(NestAScheduler::new(k, 5), 4, 120);
            validate_nested(&t).unwrap();
            let actual = minimal_async_k(&t);
            assert!(actual <= k, "k={k} but trace needs {actual}");
            assert!(validate_fairness(&t, 4, 30.0).is_ok());
        }
    }

    #[test]
    fn nesta_produces_nesting() {
        let t = collect(NestAScheduler::new(2, 5), 3, 60);
        let ivs = t.intervals();
        let nested = ivs.iter().enumerate().any(|(i, a)| {
            ivs.iter()
                .enumerate()
                .any(|(j, b)| i != j && a.nested_in(b))
        });
        assert!(nested);
    }

    #[test]
    fn async_unbounded_exceeds_small_k() {
        let t = collect(AsyncScheduler::new(11), 3, 400);
        validate_no_self_overlap(&t).unwrap();
        assert!(
            minimal_async_k(&t) > 2,
            "with stretched moves the Async trace should exceed 2-Async; got {}",
            minimal_async_k(&t)
        );
    }

    #[test]
    fn centralized_is_sequential_and_fair() {
        let t = collect(CentralizedScheduler::new(), 4, 40);
        validate_no_self_overlap(&t).unwrap();
        crate::validate::validate_ssync(&t).unwrap();
        assert_eq!(minimal_async_k(&t), 0, "no overlap at all");
        assert!(validate_fairness(&t, 4, 4.5).is_ok());
        // Never two robots active simultaneously.
        let ivs = t.intervals();
        for (i, a) in ivs.iter().enumerate() {
            for b in ivs.iter().skip(i + 1) {
                assert!(!a.overlaps(b), "{a} overlaps {b}");
            }
        }
    }

    #[test]
    fn interleaved_engagement_is_deterministic_and_well_formed() {
        for k in [1u32, 2, 4, 8, 10, 16] {
            let script = interleaved_engagement(k, 7 + u64::from(k));
            assert_eq!(script, interleaved_engagement(k, 7 + u64::from(k)));
            assert!(!script.is_empty());
            // Only the engaged pair appears, in non-decreasing Look order,
            // and robot 1's cluster never exceeds k activations inside one
            // of robot 0's intervals.
            let mut last_look = f64::NEG_INFINITY;
            for iv in &script {
                assert!(iv.robot == RobotId(0) || iv.robot == RobotId(1));
                assert!(iv.look >= last_look);
                last_look = iv.look;
            }
            let trace = ScheduleTrace::from_intervals(script);
            assert!(minimal_async_k(&trace) <= k, "overlap bound exceeded");
        }
    }

    #[test]
    fn save_restore_continues_every_generator_identically() {
        // Pull some intervals, snapshot, restore onto a fresh same-spec
        // instance, and check both emit the same continuation — the
        // scheduler half of the engine's byte-for-byte resume contract.
        fn check(mut live: Box<dyn Scheduler>, mut fresh: Box<dyn Scheduler>, n: usize) {
            let ctx = ScheduleContext { robot_count: n };
            for _ in 0..37 {
                live.next_activation(&ctx);
            }
            let state = live.save_state().expect("checkpointable");
            // Round trip the state through JSON like a real checkpoint does.
            let json = serde_json::to_string(&state).expect("encode");
            let value = serde_json::from_str(&json).expect("parse");
            let decoded = SchedulerState::decode(&value).expect("decode");
            assert_eq!(decoded, state);
            fresh.load_state(&decoded).expect("load");
            for i in 0..80 {
                assert_eq!(
                    live.next_activation(&ctx),
                    fresh.next_activation(&ctx),
                    "divergence at pull {i} for {}",
                    live.name()
                );
            }
        }
        check(
            Box::new(FSyncScheduler::new()),
            Box::new(FSyncScheduler::new()),
            4,
        );
        check(
            Box::new(SSyncScheduler::new(9)),
            Box::new(SSyncScheduler::new(1)),
            5,
        );
        check(
            Box::new(KAsyncScheduler::new(2, 7)),
            Box::new(KAsyncScheduler::new(2, 99)),
            4,
        );
        check(
            Box::new(NestAScheduler::new(3, 5)),
            Box::new(NestAScheduler::new(3, 123)),
            4,
        );
        check(
            Box::new(AsyncScheduler::new(11)),
            Box::new(AsyncScheduler::new(2)),
            3,
        );
        check(
            Box::new(CentralizedScheduler::new()),
            Box::new(CentralizedScheduler::new()),
            4,
        );
        check(
            Box::new(ScriptedScheduler::new(
                "lemma5",
                interleaved_engagement(4, 21),
            )),
            Box::new(ScriptedScheduler::new(
                "lemma5",
                interleaved_engagement(4, 21),
            )),
            2,
        );
    }

    #[test]
    fn load_state_rejects_mismatched_class_and_config() {
        let state = FSyncScheduler::new().save_state().unwrap();
        let err = SSyncScheduler::new(0).load_state(&state).unwrap_err();
        assert!(err.contains("FSync"), "unhelpful error: {err}");
        let k2 = KAsyncScheduler::new(2, 0).save_state().unwrap();
        let err = KAsyncScheduler::new(3, 0).load_state(&k2).unwrap_err();
        assert!(err.contains("k=2") && err.contains("k=3"), "{err}");
        let scripted = ScriptedScheduler::new("a", vec![]).save_state().unwrap();
        let err = ScriptedScheduler::new("b", vec![])
            .load_state(&scripted)
            .unwrap_err();
        assert!(err.contains('a') && err.contains('b'), "{err}");
    }

    #[test]
    fn scripted_replays_in_order() {
        let ivs = vec![
            ActivationInterval::new(RobotId(1), 1.0, 1.5, 2.0),
            ActivationInterval::new(RobotId(0), 0.0, 0.5, 1.0),
        ];
        let mut s = ScriptedScheduler::new("demo", ivs);
        let ctx = ScheduleContext { robot_count: 2 };
        assert_eq!(s.remaining(), 2);
        let first = s.next_activation(&ctx).unwrap();
        assert_eq!(first.robot, RobotId(0));
        let second = s.next_activation(&ctx).unwrap();
        assert_eq!(second.robot, RobotId(1));
        assert!(s.next_activation(&ctx).is_none());
    }
}
