//! Trace validators: proofs that a schedule obeys (or breaks) each model of
//! §2.3.1.
//!
//! Making the models *checkable* keeps the reproduction honest: every
//! experiment that claims “under 2-Async scheduling …” can assert that the
//! schedule it actually ran was 2-Async and not accidentally weaker.

use crate::trace::ScheduleTrace;
use cohesion_model::RobotId;
use serde::{Deserialize, Serialize};

/// The scheduling models of the paper, in increasing adversary power.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SchedulerModel {
    /// Fully synchronous: rounds, everyone active in each round.
    FSync,
    /// Semi-synchronous: rounds, a subset active in each round.
    SSync,
    /// Nested activations, at most `k` of one robot inside one of another.
    KNestA(u32),
    /// At most `k` activations of one robot within an active interval of
    /// another.
    KAsync(u32),
    /// Unbounded asynchrony (fairness only).
    Async,
}

impl std::fmt::Display for SchedulerModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SchedulerModel::FSync => write!(f, "FSync"),
            SchedulerModel::SSync => write!(f, "SSync"),
            SchedulerModel::KNestA(k) => write!(f, "{k}-NestA"),
            SchedulerModel::KAsync(k) => write!(f, "{k}-Async"),
            SchedulerModel::Async => write!(f, "Async"),
        }
    }
}

/// A violated constraint, with the offending interval indices.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Violation {
    /// Human-readable description of what failed.
    pub reason: String,
    /// Indices (into the trace) of the intervals involved.
    pub intervals: Vec<usize>,
}

/// Checks the universal sanity condition: intervals of the *same* robot never
/// overlap (a robot runs one LCM cycle at a time).
pub fn validate_no_self_overlap(trace: &ScheduleTrace) -> Result<(), Violation> {
    let ivs = trace.intervals();
    for i in 0..ivs.len() {
        for j in (i + 1)..ivs.len() {
            if ivs[i].robot == ivs[j].robot && ivs[i].overlaps(&ivs[j]) {
                return Err(Violation {
                    reason: format!(
                        "robot {} has overlapping activations {} and {}",
                        ivs[i].robot, ivs[i], ivs[j]
                    ),
                    intervals: vec![i, j],
                });
            }
        }
    }
    Ok(())
}

/// Checks activation fairness over the traced horizon: every robot is
/// activated, and no robot waits more than `max_gap` between consecutive
/// activations (nor before its first or after its last, relative to the
/// trace horizon).
pub fn validate_fairness(
    trace: &ScheduleTrace,
    robot_count: usize,
    max_gap: f64,
) -> Result<(), Violation> {
    let horizon = trace.horizon();
    for r in 0..robot_count {
        let id = RobotId::from(r);
        let ivs = trace.of_robot(id);
        if ivs.is_empty() {
            return Err(Violation {
                reason: format!("robot {id} never activated"),
                intervals: vec![],
            });
        }
        let mut last_end = 0.0;
        for iv in &ivs {
            if iv.look - last_end > max_gap {
                return Err(Violation {
                    reason: format!(
                        "robot {id} idle for {:.3} (> {max_gap}) before {}",
                        iv.look - last_end,
                        iv
                    ),
                    intervals: vec![],
                });
            }
            last_end = iv.end;
        }
        if horizon - last_end > max_gap {
            return Err(Violation {
                reason: format!("robot {id} idle for the trailing {:.3}", horizon - last_end),
                intervals: vec![],
            });
        }
    }
    Ok(())
}

/// Checks the SSync round structure: intervals can be grouped into rounds
/// such that intervals in the same round are identical in timing, and rounds
/// do not overlap. Returns the number of rounds.
pub fn validate_ssync(trace: &ScheduleTrace) -> Result<usize, Violation> {
    validate_no_self_overlap(trace)?;
    let ivs = trace.intervals();
    let mut rounds: Vec<(f64, f64)> = Vec::new();
    let mut i = 0;
    while i < ivs.len() {
        let (look, end) = (ivs[i].look, ivs[i].end);
        let mut j = i;
        while j < ivs.len() && ivs[j].look == look {
            if ivs[j].end != end || ivs[j].move_start != ivs[i].move_start {
                return Err(Violation {
                    reason: format!(
                        "round at t={look} contains unequal intervals {} and {}",
                        ivs[i], ivs[j]
                    ),
                    intervals: vec![i, j],
                });
            }
            j += 1;
        }
        if let Some(&(_, prev_end)) = rounds.last() {
            if look < prev_end {
                return Err(Violation {
                    reason: format!("round at t={look} starts before previous round ends"),
                    intervals: vec![i],
                });
            }
        }
        rounds.push((look, end));
        i = j;
    }
    Ok(rounds.len())
}

/// Checks the FSync structure: SSync, plus *every* robot appears in every
/// round. Returns the number of rounds.
pub fn validate_fsync(trace: &ScheduleTrace, robot_count: usize) -> Result<usize, Violation> {
    let rounds = validate_ssync(trace)?;
    if rounds * robot_count != trace.len() {
        return Err(Violation {
            reason: format!(
                "FSync requires {robot_count} activations per round; got {} across {rounds} rounds",
                trace.len()
            ),
            intervals: vec![],
        });
    }
    Ok(rounds)
}

/// Checks that all interval pairs are disjoint or nested (the NestA family).
pub fn validate_nested(trace: &ScheduleTrace) -> Result<(), Violation> {
    validate_no_self_overlap(trace)?;
    let ivs = trace.intervals();
    for i in 0..ivs.len() {
        for j in (i + 1)..ivs.len() {
            let (a, b) = (&ivs[i], &ivs[j]);
            if a.overlaps(b) && !a.nested_in(b) && !b.nested_in(a) {
                return Err(Violation {
                    reason: format!("intervals {} and {} overlap without nesting", a, b),
                    intervals: vec![i, j],
                });
            }
        }
    }
    Ok(())
}

/// Counts, for every interval `I` and robot `X ≠ I.robot`, the activations of
/// `X` whose Look time falls within `I`; returns the maximum count — the
/// minimal `k` for which the trace is `k`-Async. A trace with no overlapping
/// cross-robot activity reports `0`.
pub fn minimal_async_k(trace: &ScheduleTrace) -> u32 {
    let ivs = trace.intervals();
    let mut worst = 0u32;
    for outer in ivs {
        use std::collections::BTreeMap;
        // BTreeMap, not HashMap: this crate is on the deterministic surface
        // (lint rule D1), and ordered maps keep unordered-iteration hazards
        // out even though only `entry` is used today.
        let mut counts: BTreeMap<RobotId, u32> = BTreeMap::new();
        for inner in ivs {
            if inner.robot != outer.robot && outer.contains_time(inner.look) {
                let c = counts.entry(inner.robot).or_insert(0);
                *c += 1;
                worst = worst.max(*c);
            }
        }
    }
    worst
}

/// The deepest chain of strictly nested intervals in the trace (1 for a
/// non-empty trace with no nesting, 0 for an empty trace).
pub fn max_nesting_depth(trace: &ScheduleTrace) -> usize {
    let ivs = trace.intervals();
    if ivs.is_empty() {
        return 0;
    }
    // Longest-chain DP over the strict-containment partial order. Containers
    // are strictly longer, so processing by decreasing duration guarantees
    // each interval's containers are finalized first.
    let mut order: Vec<usize> = (0..ivs.len()).collect();
    order.sort_by(|&a, &b| {
        ivs[b]
            .duration()
            .partial_cmp(&ivs[a].duration())
            .expect("finite durations")
    });
    let mut depth = vec![1usize; ivs.len()];
    for (pos, &i) in order.iter().enumerate() {
        for &j in &order[..pos] {
            let strict =
                ivs[i].nested_in(&ivs[j]) && (ivs[j].look < ivs[i].look || ivs[i].end < ivs[j].end);
            if strict {
                depth[i] = depth[i].max(depth[j] + 1);
            }
        }
    }
    depth.into_iter().max().unwrap_or(0)
}

/// Checks a trace against a model. `max_gap` bounds the fairness check
/// (use the horizon for “no fairness check”).
pub fn validate_model(
    trace: &ScheduleTrace,
    model: SchedulerModel,
    robot_count: usize,
) -> Result<(), Violation> {
    validate_no_self_overlap(trace)?;
    match model {
        SchedulerModel::FSync => validate_fsync(trace, robot_count).map(|_| ()),
        SchedulerModel::SSync => validate_ssync(trace).map(|_| ()),
        SchedulerModel::KNestA(k) => {
            validate_nested(trace)?;
            let actual = minimal_async_k(trace);
            if actual > k {
                return Err(Violation {
                    reason: format!("trace needs k ≥ {actual}, model allows {k}"),
                    intervals: vec![],
                });
            }
            Ok(())
        }
        SchedulerModel::KAsync(k) => {
            let actual = minimal_async_k(trace);
            if actual > k {
                return Err(Violation {
                    reason: format!("trace needs k ≥ {actual}, model allows {k}"),
                    intervals: vec![],
                });
            }
            Ok(())
        }
        SchedulerModel::Async => Ok(()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interval::ActivationInterval;

    fn iv(robot: u32, look: f64, ms: f64, end: f64) -> ActivationInterval {
        ActivationInterval::new(RobotId(robot), look, ms, end)
    }

    fn round(look: f64, robots: &[u32]) -> Vec<ActivationInterval> {
        robots
            .iter()
            .map(|&r| iv(r, look, look + 0.3, look + 0.8))
            .collect()
    }

    #[test]
    fn fsync_accepts_full_rounds() {
        let mut ivs = round(0.0, &[0, 1, 2]);
        ivs.extend(round(1.0, &[0, 1, 2]));
        let t = ScheduleTrace::from_intervals(ivs);
        assert_eq!(validate_fsync(&t, 3).unwrap(), 2);
        // Synchronous rounds are 1-Async: the simultaneous Look of a peer
        // falls (inclusively) inside each interval — this matches the paper's
        // remark that SSync is a special case of the k = 1 models.
        assert_eq!(minimal_async_k(&t), 1);
    }

    #[test]
    fn fsync_rejects_partial_round() {
        let mut ivs = round(0.0, &[0, 1, 2]);
        ivs.extend(round(1.0, &[0, 1]));
        let t = ScheduleTrace::from_intervals(ivs);
        assert!(validate_fsync(&t, 3).is_err());
        assert_eq!(validate_ssync(&t).unwrap(), 2);
    }

    #[test]
    fn ssync_rejects_overlapping_rounds() {
        let t = ScheduleTrace::from_intervals(vec![iv(0, 0.0, 0.3, 1.0), iv(1, 0.5, 0.8, 1.5)]);
        assert!(validate_ssync(&t).is_err());
    }

    #[test]
    fn self_overlap_detected() {
        let t = ScheduleTrace::from_intervals(vec![iv(0, 0.0, 0.5, 2.0), iv(0, 1.0, 1.5, 3.0)]);
        assert!(validate_no_self_overlap(&t).is_err());
    }

    #[test]
    fn nesting_validation() {
        // b nested in a: fine. c partially overlaps a: violation.
        let a = iv(0, 0.0, 0.5, 4.0);
        let b = iv(1, 1.0, 1.5, 2.0);
        let t = ScheduleTrace::from_intervals(vec![a, b]);
        assert!(validate_nested(&t).is_ok());
        let c = iv(1, 3.0, 3.5, 5.0);
        let t = ScheduleTrace::from_intervals(vec![a, c]);
        assert!(validate_nested(&t).is_err());
    }

    #[test]
    fn minimal_k_counts_looks_inside() {
        // Robot 1 activates 3 times inside robot 0's interval.
        let mut ivs = vec![iv(0, 0.0, 0.5, 10.0)];
        for s in 0..3 {
            let t0 = 1.0 + s as f64 * 2.0;
            ivs.push(iv(1, t0, t0 + 0.5, t0 + 1.0));
        }
        let t = ScheduleTrace::from_intervals(ivs);
        assert_eq!(minimal_async_k(&t), 3);
        assert!(validate_model(&t, SchedulerModel::KAsync(3), 2).is_ok());
        assert!(validate_model(&t, SchedulerModel::KAsync(2), 2).is_err());
        assert!(validate_model(&t, SchedulerModel::Async, 2).is_ok());
        assert!(validate_model(&t, SchedulerModel::KNestA(3), 2).is_ok());
    }

    #[test]
    fn nesting_depth() {
        let t = ScheduleTrace::from_intervals(vec![
            iv(0, 0.0, 0.5, 10.0),
            iv(1, 1.0, 1.5, 8.0),
            iv(2, 2.0, 2.5, 6.0),
        ]);
        assert_eq!(max_nesting_depth(&t), 3);
        assert_eq!(max_nesting_depth(&ScheduleTrace::new()), 0);
        let flat = ScheduleTrace::from_intervals(vec![iv(0, 0.0, 0.5, 1.0), iv(1, 2.0, 2.5, 3.0)]);
        assert_eq!(max_nesting_depth(&flat), 1);
    }

    #[test]
    fn fairness() {
        let t = ScheduleTrace::from_intervals(vec![iv(0, 0.0, 0.5, 1.0), iv(1, 1.0, 1.5, 2.0)]);
        assert!(validate_fairness(&t, 2, 2.0).is_ok());
        assert!(validate_fairness(&t, 3, 2.0).is_err(), "robot 2 never runs");
        let t = ScheduleTrace::from_intervals(vec![iv(0, 0.0, 0.5, 1.0), iv(0, 9.0, 9.5, 10.0)]);
        assert!(validate_fairness(&t, 1, 2.0).is_err(), "gap of 8 exceeds 2");
    }
}
