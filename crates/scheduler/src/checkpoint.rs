//! Serializable scheduler state for the engine's checkpoint/restore.
//!
//! Every online generator in [`crate::generators`] is a deterministic
//! function of its construction parameters plus a small mutable core (RNG
//! stream position, round/clock counters, buffered interval queues,
//! fairness summaries). [`SchedulerState`] captures exactly that mutable
//! core, so a scheduler restored onto a freshly built same-spec instance
//! emits the identical continuation of the interval stream — the property
//! the engine's byte-for-byte resume contract is built on.
//!
//! Encoding rides the workspace serde stand-in (compact JSON out) with a
//! hand-written [`SchedulerState::decode`] against the `serde_json`
//! stand-in's [`Value`] tree, the same idiom as the bench net protocol.
//! All times are finite by [`ActivationInterval`]'s invariant, and the
//! stand-in prints floats shortest-round-trip, so the JSON round trip is
//! bit-exact.

use crate::interval::ActivationInterval;
use cohesion_model::RobotId;
use serde::Serialize;
use serde_json::Value;

/// The duration-profile knobs of the random generators, flattened:
/// `[compute_min, compute_max, move_min, move_max, jitter]`.
pub type ProfileState = [f64; 5];

/// The mutable core of one scheduler, by generator class. Restoring a
/// state onto a scheduler of a different class (or a different `k`) is an
/// error, not a silent misresume.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub enum SchedulerState {
    /// [`crate::FSyncScheduler`]: round counter + buffered round queue.
    FSync {
        /// Next round to be generated.
        round: u64,
        /// Unconsumed activations of the current round, in emission order.
        queue: Vec<ActivationInterval>,
    },
    /// [`crate::SSyncScheduler`]: RNG + round + fairness skip counters.
    SSync {
        /// xoshiro256++ stream position.
        rng: [u64; 4],
        /// Next round to be generated.
        round: u64,
        /// Consecutive rounds each robot has been skipped.
        skip_counts: Vec<u32>,
        /// Unconsumed activations of the current round.
        queue: Vec<ActivationInterval>,
        /// Per-robot inclusion probability.
        inclusion_probability: f64,
    },
    /// [`crate::KAsyncScheduler`]: RNG, clock, fairness keys, live history.
    KAsync {
        /// The overlap bound (validated against the target scheduler).
        k: u32,
        /// xoshiro256++ stream position.
        rng: [u64; 4],
        /// Flattened duration profile.
        profile: ProfileState,
        /// Current schedule clock.
        clock: f64,
        /// Per-robot earliest re-activation times (`None` before the lazy
        /// first pull).
        next_free: Option<Vec<f64>>,
        /// Intervals still live for the k-budget repair loop.
        history: Vec<ActivationInterval>,
    },
    /// [`crate::NestAScheduler`]: RNG, clock, outer rotation, block queue.
    NestA {
        /// The nesting bound (validated against the target scheduler).
        k: u32,
        /// xoshiro256++ stream position.
        rng: [u64; 4],
        /// Current schedule clock.
        clock: f64,
        /// Rotation counter choosing the next outer robot.
        next_outer: u64,
        /// Unconsumed activations of the current block.
        queue: Vec<ActivationInterval>,
    },
    /// [`crate::AsyncScheduler`]: RNG, clock, fairness keys.
    Async {
        /// xoshiro256++ stream position.
        rng: [u64; 4],
        /// Flattened duration profile.
        profile: ProfileState,
        /// Current schedule clock.
        clock: f64,
        /// Per-robot earliest re-activation times (`None` before the lazy
        /// first pull).
        next_free: Option<Vec<f64>>,
        /// Probability of a stretched Move phase.
        stretch_probability: f64,
    },
    /// [`crate::CentralizedScheduler`]: rotation counter + clock.
    Centralized {
        /// Next robot in the round-robin rotation.
        next: u64,
        /// Current schedule clock.
        clock: f64,
    },
    /// [`crate::ScriptedScheduler`]: the unconsumed script suffix.
    Scripted {
        /// The script's name (validated against the target scheduler).
        name: String,
        /// Remaining intervals, in replay order.
        queue: Vec<ActivationInterval>,
    },
}

fn field<'a>(v: &'a Value, key: &str) -> Result<&'a Value, String> {
    v.get(key)
        .ok_or_else(|| format!("scheduler state missing field '{key}'"))
}

fn f64_field(v: &Value, key: &str) -> Result<f64, String> {
    field(v, key)?
        .as_f64()
        .ok_or_else(|| format!("scheduler state field '{key}' is not a number"))
}

fn u64_field(v: &Value, key: &str) -> Result<u64, String> {
    field(v, key)?
        .as_u64()
        .ok_or_else(|| format!("scheduler state field '{key}' is not an unsigned integer"))
}

fn rng_field(v: &Value, key: &str) -> Result<[u64; 4], String> {
    let arr = field(v, key)?
        .as_array()
        .ok_or_else(|| format!("scheduler state field '{key}' is not an array"))?;
    if arr.len() != 4 {
        return Err(format!("scheduler state field '{key}' must have 4 words"));
    }
    let mut out = [0u64; 4];
    for (i, w) in arr.iter().enumerate() {
        out[i] = w
            .as_u64()
            .ok_or_else(|| format!("scheduler state field '{key}[{i}]' is not a u64"))?;
    }
    Ok(out)
}

fn profile_field(v: &Value, key: &str) -> Result<ProfileState, String> {
    let arr = field(v, key)?
        .as_array()
        .ok_or_else(|| format!("scheduler state field '{key}' is not an array"))?;
    if arr.len() != 5 {
        return Err(format!("scheduler state field '{key}' must have 5 knobs"));
    }
    let mut out = [0.0f64; 5];
    for (i, w) in arr.iter().enumerate() {
        out[i] = w
            .as_f64()
            .ok_or_else(|| format!("scheduler state field '{key}[{i}]' is not a number"))?;
    }
    Ok(out)
}

fn interval(v: &Value) -> Result<ActivationInterval, String> {
    let robot = u64_field(v, "robot")?;
    let robot =
        u32::try_from(robot).map_err(|_| "interval robot index overflows u32".to_string())?;
    Ok(ActivationInterval::new(
        RobotId(robot),
        f64_field(v, "look")?,
        f64_field(v, "move_start")?,
        f64_field(v, "end")?,
    ))
}

fn intervals_field(v: &Value, key: &str) -> Result<Vec<ActivationInterval>, String> {
    field(v, key)?
        .as_array()
        .ok_or_else(|| format!("scheduler state field '{key}' is not an array"))?
        .iter()
        .map(interval)
        .collect()
}

fn f64s(v: &Value, key: &str) -> Result<Vec<f64>, String> {
    v.as_array()
        .ok_or_else(|| format!("scheduler state field '{key}' is not an array"))?
        .iter()
        .map(|x| {
            x.as_f64()
                .ok_or_else(|| format!("scheduler state field '{key}' holds a non-number"))
        })
        .collect()
}

fn u32s_field(v: &Value, key: &str) -> Result<Vec<u32>, String> {
    field(v, key)?
        .as_array()
        .ok_or_else(|| format!("scheduler state field '{key}' is not an array"))?
        .iter()
        .map(|x| {
            x.as_u64()
                .and_then(|n| u32::try_from(n).ok())
                .ok_or_else(|| format!("scheduler state field '{key}' holds a non-u32"))
        })
        .collect()
}

fn opt_f64s_field(v: &Value, key: &str) -> Result<Option<Vec<f64>>, String> {
    match field(v, key)? {
        Value::Null => Ok(None),
        other => Ok(Some(f64s(other, key)?)),
    }
}

impl SchedulerState {
    /// Decodes a state from the `serde_json` stand-in's [`Value`] tree (the
    /// inverse of the serde-derive encoding).
    pub fn decode(v: &Value) -> Result<SchedulerState, String> {
        let obj = v
            .as_object()
            .ok_or_else(|| "scheduler state is not an object".to_string())?;
        let (tag, body) = obj
            .iter()
            .next()
            .ok_or_else(|| "scheduler state object is empty".to_string())?;
        match tag.as_str() {
            "FSync" => Ok(SchedulerState::FSync {
                round: u64_field(body, "round")?,
                queue: intervals_field(body, "queue")?,
            }),
            "SSync" => Ok(SchedulerState::SSync {
                rng: rng_field(body, "rng")?,
                round: u64_field(body, "round")?,
                skip_counts: u32s_field(body, "skip_counts")?,
                queue: intervals_field(body, "queue")?,
                inclusion_probability: f64_field(body, "inclusion_probability")?,
            }),
            "KAsync" => Ok(SchedulerState::KAsync {
                k: u32::try_from(u64_field(body, "k")?)
                    .map_err(|_| "scheduler state k overflows u32".to_string())?,
                rng: rng_field(body, "rng")?,
                profile: profile_field(body, "profile")?,
                clock: f64_field(body, "clock")?,
                next_free: opt_f64s_field(body, "next_free")?,
                history: intervals_field(body, "history")?,
            }),
            "NestA" => Ok(SchedulerState::NestA {
                k: u32::try_from(u64_field(body, "k")?)
                    .map_err(|_| "scheduler state k overflows u32".to_string())?,
                rng: rng_field(body, "rng")?,
                clock: f64_field(body, "clock")?,
                next_outer: u64_field(body, "next_outer")?,
                queue: intervals_field(body, "queue")?,
            }),
            "Async" => Ok(SchedulerState::Async {
                rng: rng_field(body, "rng")?,
                profile: profile_field(body, "profile")?,
                clock: f64_field(body, "clock")?,
                next_free: opt_f64s_field(body, "next_free")?,
                stretch_probability: f64_field(body, "stretch_probability")?,
            }),
            "Centralized" => Ok(SchedulerState::Centralized {
                next: u64_field(body, "next")?,
                clock: f64_field(body, "clock")?,
            }),
            "Scripted" => Ok(SchedulerState::Scripted {
                name: field(body, "name")?
                    .as_str()
                    .ok_or_else(|| "scheduler state field 'name' is not a string".to_string())?
                    .to_string(),
                queue: intervals_field(body, "queue")?,
            }),
            other => Err(format!("unknown scheduler state class '{other}'")),
        }
    }

    /// The generator class the state belongs to, for error messages.
    #[must_use]
    pub fn class(&self) -> &'static str {
        match self {
            SchedulerState::FSync { .. } => "FSync",
            SchedulerState::SSync { .. } => "SSync",
            SchedulerState::KAsync { .. } => "KAsync",
            SchedulerState::NestA { .. } => "NestA",
            SchedulerState::Async { .. } => "Async",
            SchedulerState::Centralized { .. } => "Centralized",
            SchedulerState::Scripted { .. } => "Scripted",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn iv(robot: u32, look: f64, ms: f64, end: f64) -> ActivationInterval {
        ActivationInterval::new(RobotId(robot), look, ms, end)
    }

    #[test]
    fn every_class_round_trips_through_json() {
        let states = vec![
            SchedulerState::FSync {
                round: 7,
                queue: vec![iv(0, 6.0, 6.25, 6.75)],
            },
            SchedulerState::SSync {
                rng: [1, u64::MAX, 3, 4],
                round: 2,
                skip_counts: vec![0, 3, 1],
                queue: vec![],
                inclusion_probability: 0.5,
            },
            SchedulerState::KAsync {
                k: 2,
                rng: [9, 8, 7, 6],
                profile: [0.05, 0.35, 0.1, 1.2, 0.08],
                clock: 1.5 + 1e-9,
                next_free: Some(vec![0.1 + 0.2, 1.75]),
                history: vec![iv(1, 0.0, 0.5, 2.0)],
            },
            SchedulerState::NestA {
                k: 3,
                rng: [0, 1, 2, 3],
                clock: 4.25,
                next_outer: 11,
                queue: vec![iv(2, 4.0, 4.1, 4.4)],
            },
            SchedulerState::Async {
                rng: [5, 5, 5, 5],
                profile: [0.05, 0.35, 0.1, 1.2, 0.08],
                clock: 0.0,
                next_free: None,
                stretch_probability: 0.1,
            },
            SchedulerState::Centralized {
                next: 9,
                clock: 9.0,
            },
            SchedulerState::Scripted {
                name: "figure4".into(),
                queue: vec![iv(0, 0.0, 0.5, 1.0), iv(1, 1.0, 1.5, 2.0)],
            },
        ];
        for state in states {
            let json = serde_json::to_string(&state).expect("encode");
            let value = serde_json::from_str(&json).expect("parse");
            let decoded = SchedulerState::decode(&value).expect("decode");
            assert_eq!(decoded, state, "round trip for {}", state.class());
        }
    }

    #[test]
    fn decode_rejects_malformed_states() {
        for bad in [
            "null",
            "{}",
            r#"{"Nope":{}}"#,
            r#"{"FSync":{"round":1}}"#,
            r#"{"FSync":{"round":-1,"queue":[]}}"#,
            r#"{"SSync":{"rng":[1,2,3],"round":0,"skip_counts":[],"queue":[],"inclusion_probability":0.5}}"#,
            r#"{"Async":{"rng":[1,2,3,4],"profile":[0.1,0.2,0.3],"clock":0.0,"next_free":null,"stretch_probability":0.1}}"#,
        ] {
            let value = serde_json::from_str(bad).expect("valid JSON");
            assert!(
                SchedulerState::decode(&value).is_err(),
                "accepted malformed state {bad}"
            );
        }
    }
}
