//! Timed activation intervals: one Look–Compute–Move cycle of one robot.

use cohesion_model::RobotId;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The phase a robot is in at a given time, relative to one activation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Phase {
    /// Before the interval or after its end.
    Inactive,
    /// Between Look and the start of Move (the Look itself is instantaneous
    /// at the interval start; Compute fills the rest).
    Computing,
    /// Between Move start and the interval end (the robot is *motile*).
    Moving,
}

/// One activation: Look at `look` (instantaneous), Compute during
/// `[look, move_start)`, Move during `[move_start, end]`.
///
/// Invariants: `look < move_start ≤ end`, all finite. A Move of zero
/// duration is permitted only for intervals that realize the nil movement.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ActivationInterval {
    /// The robot being activated.
    pub robot: RobotId,
    /// Time of the instantaneous Look (start of the activity interval).
    pub look: f64,
    /// End of Compute / start of Move.
    pub move_start: f64,
    /// End of Move (end of the activity interval).
    pub end: f64,
}

impl ActivationInterval {
    /// Creates an interval, checking the timing invariants.
    ///
    /// # Panics
    ///
    /// Panics if the times are non-finite or out of order.
    pub fn new(robot: RobotId, look: f64, move_start: f64, end: f64) -> Self {
        assert!(
            look.is_finite() && move_start.is_finite() && end.is_finite(),
            "activation times must be finite"
        );
        assert!(
            look < move_start && move_start <= end,
            "activation phases out of order: look={look}, move_start={move_start}, end={end}"
        );
        ActivationInterval {
            robot,
            look,
            move_start,
            end,
        }
    }

    /// Total interval duration.
    #[inline]
    pub fn duration(&self) -> f64 {
        self.end - self.look
    }

    /// Duration of the Move phase.
    #[inline]
    pub fn move_duration(&self) -> f64 {
        self.end - self.move_start
    }

    /// The phase at time `t`.
    pub fn phase_at(&self, t: f64) -> Phase {
        if t < self.look || t > self.end {
            Phase::Inactive
        } else if t < self.move_start {
            Phase::Computing
        } else {
            Phase::Moving
        }
    }

    /// Returns `true` when `t` lies within the closed interval.
    #[inline]
    pub fn contains_time(&self, t: f64) -> bool {
        t >= self.look && t <= self.end
    }

    /// Returns `true` when the two intervals overlap in time (closed
    /// endpoints).
    pub fn overlaps(&self, other: &ActivationInterval) -> bool {
        self.look <= other.end && other.look <= self.end
    }

    /// Returns `true` when `self` is nested inside `other`
    /// (`other.look ≤ self.look` and `self.end ≤ other.end`).
    pub fn nested_in(&self, other: &ActivationInterval) -> bool {
        other.look <= self.look && self.end <= other.end
    }
}

impl fmt::Display for ActivationInterval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}[L@{:.3} M@{:.3} E@{:.3}]",
            self.robot, self.look, self.move_start, self.end
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn iv(robot: u32, look: f64, ms: f64, end: f64) -> ActivationInterval {
        ActivationInterval::new(RobotId(robot), look, ms, end)
    }

    #[test]
    fn phases() {
        let a = iv(0, 1.0, 2.0, 3.0);
        assert_eq!(a.phase_at(0.5), Phase::Inactive);
        assert_eq!(a.phase_at(1.0), Phase::Computing);
        assert_eq!(a.phase_at(1.9), Phase::Computing);
        assert_eq!(a.phase_at(2.0), Phase::Moving);
        assert_eq!(a.phase_at(3.0), Phase::Moving);
        assert_eq!(a.phase_at(3.1), Phase::Inactive);
        assert_eq!(a.duration(), 2.0);
        assert_eq!(a.move_duration(), 1.0);
    }

    #[test]
    fn overlap_and_nesting() {
        let a = iv(0, 0.0, 1.0, 4.0);
        let b = iv(1, 1.0, 2.0, 3.0);
        let c = iv(1, 5.0, 6.0, 7.0);
        assert!(a.overlaps(&b));
        assert!(b.nested_in(&a));
        assert!(!a.nested_in(&b));
        assert!(!a.overlaps(&c));
        // Touching endpoints count as overlap.
        let d = iv(1, 4.0, 4.5, 5.0);
        assert!(a.overlaps(&d));
    }

    #[test]
    #[should_panic]
    fn out_of_order_rejected() {
        let _ = iv(0, 2.0, 1.0, 3.0);
    }

    #[test]
    #[should_panic]
    fn zero_length_compute_rejected() {
        let _ = iv(0, 1.0, 1.0, 3.0);
    }
}
