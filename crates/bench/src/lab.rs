//! The declarative experiment layer and its sharded `lab` CLI.
//!
//! Every paper figure/table family is an [`Experiment`]: a registry entry
//! that *declares* its parameter grid as [`ScenarioSpec`]s and *reduces*
//! each cell's outcome to JSONL rows, instead of hand-rolling its own loop,
//! arg parsing, and file emission. One shared runtime owns:
//!
//! * CLI parsing (`--quick`, `--threads`, `--out`, `--shard I/M`) behind the
//!   single `lab` binary (`lab list`, `lab run <name>`, `lab all`,
//!   `lab merge <name>`);
//! * the [`Profile`] (quick CI smoke vs full reproduction), replacing the
//!   old per-binary `--quick` sniffing — the `COHESION_SWEEP_QUICK` env var
//!   survives only as a deprecated fallback that warns on stderr;
//! * deterministic **process-level sharding**: `--shard I/M` slices the spec
//!   grid into `M` contiguous chunks, so concatenating the shard files in
//!   index order (`lab merge`) is *byte-identical* to an unsharded run —
//!   rows are a pure per-spec function, merged in spec order, exactly the
//!   [`SweepRunner`] contract lifted across processes;
//! * JSONL sinks under `target/experiments/`.
//!
//! The old `exp_*` binaries survive as deprecated shims that delegate here.

use crate::sweep::{ScenarioSpec, SchedulerSpec, SweepRunner, WorkloadSpec};
use cohesion_adversary::{run_impossibility, ImpossibilityOutcome};
use cohesion_engine::SimulationReport;
use cohesion_geometry::{Vec2, Vec3};
use cohesion_model::Progress;
use cohesion_telemetry::sync::Guarded;
use cohesion_telemetry::{keys, StateStore};
use serde::Serialize;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::Arc;

// ---------------------------------------------------------------------------
// Profile
// ---------------------------------------------------------------------------

/// Which grid an experiment materializes: the CI smoke grid (shrunken
/// budgets, same code paths) or the full paper reproduction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Profile {
    /// Shrunken grids and budgets for CI smoke runs (`--quick`).
    Quick,
    /// The full reproduction grids (the default).
    #[default]
    Full,
}

impl Profile {
    /// `true` for [`Profile::Quick`].
    #[must_use]
    pub fn is_quick(self) -> bool {
        self == Profile::Quick
    }

    /// Picks the quick or full variant of a grid parameter.
    #[must_use]
    pub fn pick<T>(self, quick: T, full: T) -> T {
        match self {
            Profile::Quick => quick,
            Profile::Full => full,
        }
    }
}

/// The deprecated environment fallback for [`Profile::Quick`]: honoured so
/// existing `COHESION_SWEEP_QUICK=1` invocations keep working, but warns on
/// stderr — pass `--quick` to the `lab` CLI instead.
#[must_use]
pub fn profile_env_fallback() -> Option<Profile> {
    match std::env::var("COHESION_SWEEP_QUICK") {
        Ok(v) if !v.is_empty() && v != "0" => {
            eprintln!(
                "warning: COHESION_SWEEP_QUICK is deprecated; pass --quick to the lab CLI instead"
            );
            Some(Profile::Quick)
        }
        _ => None,
    }
}

// ---------------------------------------------------------------------------
// Progress sidecar
// ---------------------------------------------------------------------------

/// Heartbeat cadence for engine-driven cells, in events: each cell's
/// session is driven in slices of this size and a heartbeat record lands in
/// the sidecar between slices. Deterministic per cell (event counts are),
/// though sidecar *line interleaving* across worker threads is not — the
/// sidecar is telemetry, not part of the byte-identity contract.
pub const PROGRESS_HEARTBEAT_EVENTS: usize = 100_000;

/// One line of the progress sidecar (`<stem>.progress.jsonl`, or
/// `<stem>.shardIofM.progress.jsonl` under `--shard`).
///
/// Every cell contributes a `start` record, zero or more `heartbeat`
/// records (engine-driven cells only, every
/// [`PROGRESS_HEARTBEAT_EVENTS`] events), and a `done` record carrying the
/// cell's final accounting and the number of JSONL rows it reduced to.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ProgressRecord {
    /// Registry name of the experiment.
    pub experiment: String,
    /// Shard assignment as `"I/M"`, or `""` for an unsharded run.
    pub shard: String,
    /// Absolute cell index in the experiment's (unsharded) grid.
    pub cell: usize,
    /// The cell's experiment-local tag (`""` for plain scenarios).
    pub tag: String,
    /// `"start"`, `"heartbeat"`, or `"done"`.
    pub phase: String,
    /// Engine events processed so far (0 for `start` and non-engine cells).
    pub events: usize,
    /// Completed rounds so far.
    pub rounds: usize,
    /// Simulated time so far.
    pub time: f64,
    /// Configuration diameter at the record (0 when not applicable).
    pub diameter: f64,
    /// Cohesion-so-far (`true` when not applicable).
    pub cohesion_ok: bool,
    /// Whether the run has converged — distinguishes a `done` record's
    /// convergence from mere budget exhaustion (`false` when not
    /// applicable).
    pub converged: bool,
    /// Rows the cell reduced to (`done` records only, else 0).
    pub rows: usize,
}

/// Where an experiment run's progress records go. The lab CLI writes them
/// as JSONL sidecar lines ([`JsonlProgressOutput`]); a `lab worker` bridges
/// them onto its coordinator socket as `Heartbeat` frames (the
/// progress-handle → heartbeat bridge in `crate::net::worker`).
pub trait ProgressOutput: Send + Sync {
    /// Consumes one record. Implementations serialize whole records
    /// atomically (concurrent cells may emit at once).
    fn record(&self, record: &ProgressRecord);
}

/// File-backed [`ProgressOutput`]: one compact-JSON line per record. Lines
/// are written atomically through the telemetry plane's closure-scoped
/// [`Guarded`] lock, so concurrent cells interleave whole records, never
/// bytes — and the only concurrency primitive lives in the audited
/// `cohesion_telemetry::sync` module.
#[derive(Debug)]
pub struct JsonlProgressOutput {
    out: Guarded<std::fs::File>,
}

impl ProgressOutput for JsonlProgressOutput {
    fn record(&self, record: &ProgressRecord) {
        let line = serde_json::to_string(record).expect("serialize progress record");
        self.out
            .with(|out| writeln!(out, "{line}"))
            .expect("write progress record");
    }
}

/// Store-backed [`ProgressOutput`]: publishes each record's fields into a
/// [`StateStore`] under a per-cell scope, optionally forwarding the record
/// to another output (tee). This is how a locally-run experiment — and the
/// coordinator's Heartbeat path — feed the live `lab watch` plane without
/// touching the row pipeline.
pub struct StoreProgressOutput {
    store: Arc<StateStore>,
    forward: Option<Box<dyn ProgressOutput>>,
}

impl StoreProgressOutput {
    /// An output that only publishes into `store`.
    #[must_use]
    pub fn new(store: Arc<StateStore>) -> StoreProgressOutput {
        StoreProgressOutput {
            store,
            forward: None,
        }
    }

    /// Tees: publish into `store`, then forward to `out`.
    #[must_use]
    pub fn tee(store: Arc<StateStore>, out: Box<dyn ProgressOutput>) -> StoreProgressOutput {
        StoreProgressOutput {
            store,
            forward: Some(out),
        }
    }
}

impl ProgressOutput for StoreProgressOutput {
    fn record(&self, record: &ProgressRecord) {
        publish_progress(&self.store, record);
        if let Some(forward) = &self.forward {
            forward.record(record);
        }
    }
}

/// Publishes one progress record into a store under the scope
/// `"<experiment>"` (unsharded) or `"<experiment>/<I>of<M>"`. The standard
/// `progress/*` tokens (see `cohesion_telemetry::keys`) carry the record's
/// fields; the latest record per scope wins, which is exactly the
/// dashboard view.
pub fn publish_progress(store: &StateStore, record: &ProgressRecord) {
    let scope = if record.shard.is_empty() {
        record.experiment.clone()
    } else {
        format!("{}/{}", record.experiment, record.shard.replace('/', "of"))
    };
    store.publish_scoped(&scope, keys::CELL, record.cell as u64);
    store.publish_scoped(&scope, keys::CELL_PHASE, record.phase.clone());
    if !record.tag.is_empty() {
        store.publish_scoped(&scope, keys::CELL_TAG, record.tag.clone());
    }
    store.publish_scoped(&scope, keys::CELL_EVENTS, record.events as u64);
    store.publish_scoped(&scope, keys::CELL_ROUNDS, record.rounds as u64);
    store.publish_scoped(&scope, keys::CELL_TIME, record.time);
    store.publish_scoped(&scope, keys::CELL_DIAMETER, record.diameter);
    store.publish_scoped(&scope, keys::CELL_COHESION_OK, record.cohesion_ok);
    store.publish_scoped(&scope, keys::CELL_CONVERGED, record.converged);
    if record.phase == "done" {
        store.publish_scoped(&scope, keys::CELL_ROWS, record.rows as u64);
    }
}

/// The shared progress sink one experiment run emits through: stamps each
/// record with the experiment name and shard assignment, then hands it to
/// the configured [`ProgressOutput`].
pub struct ProgressSink {
    experiment: &'static str,
    shard: String,
    out: Box<dyn ProgressOutput>,
}

impl std::fmt::Debug for ProgressSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ProgressSink")
            .field("experiment", &self.experiment)
            .field("shard", &self.shard)
            .finish_non_exhaustive()
    }
}

impl ProgressSink {
    /// Creates (truncating) the JSONL sidecar file for one experiment run.
    pub fn create(
        path: &Path,
        experiment: &'static str,
        shard: Option<Shard>,
    ) -> Result<ProgressSink, String> {
        let file = std::fs::File::create(path)
            .map_err(|e| format!("create progress sidecar {}: {e}", path.display()))?;
        Ok(ProgressSink::with_output(
            experiment,
            shard,
            Box::new(JsonlProgressOutput {
                out: Guarded::new(file),
            }),
        ))
    }

    /// A sink over an arbitrary output — how the distributed worker routes
    /// heartbeats onto its coordinator socket instead of a local file.
    #[must_use]
    pub fn with_output(
        experiment: &'static str,
        shard: Option<Shard>,
        out: Box<dyn ProgressOutput>,
    ) -> ProgressSink {
        ProgressSink {
            experiment,
            shard: shard.map_or(String::new(), |s| format!("{}/{}", s.index, s.count)),
            out,
        }
    }

    fn emit(&self, cell: usize, tag: &str, phase: &str, p: &Progress, rows: usize) {
        let record = ProgressRecord {
            experiment: self.experiment.to_string(),
            shard: self.shard.clone(),
            cell,
            tag: tag.to_string(),
            phase: phase.to_string(),
            events: p.events,
            rounds: p.rounds,
            time: p.time,
            diameter: p.diameter,
            cohesion_ok: p.cohesion_ok,
            converged: p.converged,
            rows,
        };
        self.out.record(&record);
    }
}

/// A zeroed progress view for records without a live session behind them.
fn idle_progress() -> Progress {
    Progress {
        events: 0,
        rounds: 0,
        time: 0.0,
        diameter: 0.0,
        cohesion_ok: true,
        converged: false,
    }
}

/// The per-cell progress handle the runtime hands to [`Experiment::run`].
///
/// Disabled (the default, when `--progress` was not given) it is a no-op;
/// enabled, [`CellProgress::heartbeat`] appends a heartbeat record for this
/// cell to the experiment's sidecar. Bespoke cell drivers may call
/// `heartbeat` at their own cadence; the default engine dispatch
/// ([`Outcome::compute_with`]) beats every [`PROGRESS_HEARTBEAT_EVENTS`]
/// events.
#[derive(Debug, Clone, Copy)]
pub struct CellProgress<'a> {
    sink: Option<&'a ProgressSink>,
    cell: usize,
    tag: &'a str,
}

/// The inert handle, for driving an experiment cell outside the lab
/// runtime (tests, shims, ad-hoc harnesses).
pub const NO_PROGRESS: CellProgress<'static> = CellProgress {
    sink: None,
    cell: 0,
    tag: "",
};

impl<'a> CellProgress<'a> {
    /// A live handle appending to `sink` for grid cell `cell` — for ad-hoc
    /// harnesses that drive cells outside `run_experiment`.
    #[must_use]
    pub fn new(sink: Option<&'a ProgressSink>, cell: usize, tag: &'a str) -> Self {
        CellProgress { sink, cell, tag }
    }

    /// `true` when heartbeats actually land in a sidecar — lets a bespoke
    /// driver skip progress bookkeeping entirely when nobody is listening.
    #[must_use]
    pub fn enabled(&self) -> bool {
        self.sink.is_some()
    }

    /// Appends a heartbeat record for this cell.
    pub fn heartbeat(&self, progress: &Progress) {
        if let Some(sink) = self.sink {
            sink.emit(self.cell, self.tag, "heartbeat", progress, 0);
        }
    }

    pub(crate) fn start(&self) {
        if let Some(sink) = self.sink {
            sink.emit(self.cell, self.tag, "start", &idle_progress(), 0);
        }
    }

    pub(crate) fn done(&self, outcome: &Outcome, rows: usize) {
        let Some(sink) = self.sink else { return };
        let p = match outcome {
            Outcome::Report(r) => Progress {
                events: r.events,
                rounds: r.rounds,
                time: r.end_time,
                diameter: r.final_diameter,
                cohesion_ok: r.cohesion_maintained,
                converged: r.converged,
            },
            Outcome::Report3(r) => Progress {
                events: r.events,
                rounds: r.rounds,
                time: r.end_time,
                diameter: r.final_diameter,
                cohesion_ok: r.cohesion_maintained,
                converged: r.converged,
            },
            _ => idle_progress(),
        };
        sink.emit(self.cell, self.tag, "done", &p, rows);
    }
}

// ---------------------------------------------------------------------------
// Rows and outcomes
// ---------------------------------------------------------------------------

/// One serialized JSONL line (without the trailing newline). Rows are the
/// unit of the byte-identity contract: a cell's rows depend only on its
/// [`ScenarioSpec`], so any contiguous sharding of the grid concatenates
/// back to the unsharded file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonRow(String);

impl JsonRow {
    /// Serializes one row.
    #[must_use]
    pub fn of<T: Serialize>(row: &T) -> JsonRow {
        JsonRow(serde_json::to_string(row).expect("serialize row"))
    }

    /// The serialized line.
    #[must_use]
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

/// What running one grid cell produced.
#[derive(Debug)]
pub enum Outcome {
    /// A 2D engine run.
    Report(Box<SimulationReport<Vec2>>),
    /// A 3D engine run ([`WorkloadSpec::Ball3`]).
    Report3(Box<SimulationReport<Vec3>>),
    /// A §7 adversary run ([`SchedulerSpec::AdversaryNested`]).
    Adversary(Box<ImpossibilityOutcome>),
    /// Summary statistics from an experiment-specific driver (Monte-Carlo
    /// trials, schedule searches, pure geometry).
    Stats(Vec<f64>),
    /// The cell needed no computation beyond its spec.
    Analytic,
}

impl Outcome {
    /// The default cell driver: dispatches a spec to the engine (2D or 3D)
    /// or to the §7 impossibility adversary. Experiments with bespoke
    /// drivers override [`Experiment::run`] instead.
    ///
    /// # Panics
    ///
    /// Panics on a [`SchedulerSpec::AdversaryNested`] scheduler without a
    /// [`WorkloadSpec::SpiralTail`] workload.
    #[must_use]
    pub fn compute(spec: &ScenarioSpec) -> Outcome {
        Outcome::compute_with(spec, &NO_PROGRESS)
    }

    /// [`Outcome::compute`] with live telemetry: engine-driven cells run as
    /// sessions in [`PROGRESS_HEARTBEAT_EVENTS`]-event slices, emitting a
    /// heartbeat between slices. With a disabled handle the session is
    /// driven uninterrupted — either way the report is byte-identical (the
    /// session equivalence suite pins sliced ≡ one-shot).
    ///
    /// # Panics
    ///
    /// Panics on a [`SchedulerSpec::AdversaryNested`] scheduler without a
    /// [`WorkloadSpec::SpiralTail`] workload.
    #[must_use]
    pub fn compute_with(spec: &ScenarioSpec, progress: &CellProgress<'_>) -> Outcome {
        match (spec.workload, spec.scheduler) {
            (WorkloadSpec::SpiralTail { psi }, SchedulerSpec::AdversaryNested { max_sweeps }) => {
                let victim = spec.algorithm.build();
                Outcome::Adversary(Box::new(run_impossibility(&*victim, psi, max_sweeps)))
            }
            (_, SchedulerSpec::AdversaryNested { .. }) => {
                panic!("AdversaryNested schedules require a SpiralTail workload")
            }
            (WorkloadSpec::Ball3 { .. }, _) if progress.enabled() => Outcome::Report3(Box::new(
                spec.run3_with_heartbeat(PROGRESS_HEARTBEAT_EVENTS, |p| progress.heartbeat(p)),
            )),
            (WorkloadSpec::Ball3 { .. }, _) => Outcome::Report3(Box::new(spec.run3())),
            _ if progress.enabled() => Outcome::Report(Box::new(
                spec.run_with_heartbeat(PROGRESS_HEARTBEAT_EVENTS, |p| progress.heartbeat(p)),
            )),
            _ => Outcome::Report(Box::new(spec.run())),
        }
    }

    /// The 2D report, when this outcome is one.
    ///
    /// # Panics
    ///
    /// Panics otherwise.
    #[must_use]
    pub fn report(&self) -> &SimulationReport<Vec2> {
        match self {
            Outcome::Report(r) => r,
            other => panic!("expected a 2D simulation report, got {other:?}"),
        }
    }

    /// The adversary outcome, when this outcome is one.
    ///
    /// # Panics
    ///
    /// Panics otherwise.
    #[must_use]
    pub fn adversary(&self) -> &ImpossibilityOutcome {
        match self {
            Outcome::Adversary(o) => o,
            other => panic!("expected an adversary outcome, got {other:?}"),
        }
    }

    /// The driver statistics, when this outcome carries them.
    ///
    /// # Panics
    ///
    /// Panics otherwise.
    #[must_use]
    pub fn stats(&self) -> &[f64] {
        match self {
            Outcome::Stats(s) => s,
            other => panic!("expected driver statistics, got {other:?}"),
        }
    }
}

/// One executed grid cell: the spec, what running it produced, and the JSONL
/// rows it reduced to.
#[derive(Debug)]
pub struct LabCell {
    /// The declarative cell description.
    pub spec: ScenarioSpec,
    /// What running the cell produced.
    pub outcome: Outcome,
    /// The rows the cell contributed to the experiment's JSONL file.
    pub rows: Vec<JsonRow>,
}

// ---------------------------------------------------------------------------
// The Experiment trait
// ---------------------------------------------------------------------------

/// A declarative experiment: a named parameter grid plus a per-cell
/// reduction to JSONL rows. The shared runtime owns everything else —
/// parallel execution ([`SweepRunner`]), sharding, sinks, and the CLI.
///
/// The sharding contract: [`Experiment::run`] and [`Experiment::reduce`]
/// must be pure functions of the spec (every port in this workspace is),
/// so the runtime may execute any contiguous sub-range of the grid and
/// concatenate outputs byte-identically.
pub trait Experiment: Sync {
    /// The registry name (`lab run <name>`).
    fn name(&self) -> &'static str;

    /// The paper figure/table family this reproduces (e.g. `"T1"`).
    fn id(&self) -> &'static str;

    /// One-line banner title.
    fn title(&self) -> &'static str;

    /// The paper claim the experiment demonstrates (for `lab list` and the
    /// README experiments table).
    fn claim(&self) -> &'static str;

    /// Stem of the JSONL output file under the experiments directory.
    fn output_stem(&self) -> &'static str;

    /// The parameter grid for a profile. Order is the output order.
    fn grid(&self, profile: Profile) -> Vec<ScenarioSpec>;

    /// Runs one cell. The default dispatches to the engine or the §7
    /// adversary, streaming heartbeats through `progress` when the run has
    /// a sidecar; experiments with bespoke drivers (Monte-Carlo searches,
    /// pure geometry) override this — they may ignore `progress` or beat at
    /// their own cadence.
    fn run(&self, spec: &ScenarioSpec, progress: &CellProgress<'_>) -> Outcome {
        Outcome::compute_with(spec, progress)
    }

    /// `true` when cells run through the default engine dispatch above —
    /// the distributed worker then drives them as resumable sessions and
    /// checkpoints *mid-cell* (`crate::resume`). Experiments that override
    /// [`Experiment::run`] with a bespoke driver (Monte-Carlo trials,
    /// schedule searches, pure geometry) must also override this to
    /// `false`; their shards checkpoint at cell boundaries instead.
    fn engine_driven(&self) -> bool {
        true
    }

    /// Reduces one cell's outcome to its JSONL rows (possibly none).
    fn reduce(&self, spec: &ScenarioSpec, outcome: &Outcome) -> Vec<JsonRow>;

    /// Renders the human-readable tables and paper notes after a run. Under
    /// `--shard` only the shard's cells are rendered.
    fn render(&self, cells: &[LabCell]) {
        let _ = cells;
    }

    /// Post-run invariant checks (e.g. "zero lemma violations"). A failure
    /// makes the run exit non-zero after the rows are written.
    fn check(&self, cells: &[LabCell]) -> Result<(), String> {
        let _ = cells;
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Sharding
// ---------------------------------------------------------------------------

/// A contiguous shard assignment `index/count` over a spec grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Shard {
    /// This process's shard index (`0 ≤ index < count`).
    pub index: usize,
    /// Total shard count (`≥ 1`).
    pub count: usize,
}

impl Shard {
    /// Parses an `I/M` shard argument, rejecting malformed or out-of-range
    /// values with a message that names the failure.
    pub fn parse(s: &str) -> Result<Shard, String> {
        let (i, m) = s
            .split_once('/')
            .ok_or_else(|| format!("invalid --shard '{s}': expected I/M (e.g. 0/4)"))?;
        let index: usize = i
            .trim()
            .parse()
            .map_err(|_| format!("invalid --shard '{s}': index '{i}' is not an integer"))?;
        let count: usize = m
            .trim()
            .parse()
            .map_err(|_| format!("invalid --shard '{s}': count '{m}' is not an integer"))?;
        if count == 0 {
            return Err(format!(
                "invalid --shard '{s}': shard count must be at least 1"
            ));
        }
        if index >= count {
            return Err(format!(
                "invalid --shard '{s}': index {index} out of range for {count} shard(s) \
                 (valid indices: 0..={})",
                count - 1
            ));
        }
        Ok(Shard { index, count })
    }

    /// The contiguous sub-range of a `len`-cell grid this shard owns.
    /// Ranges of shards `0..count` partition `0..len` in order, so
    /// concatenating per-shard outputs by index reproduces the unsharded
    /// output byte-for-byte.
    #[must_use]
    pub fn slice(self, len: usize) -> std::ops::Range<usize> {
        (self.index * len / self.count)..((self.index + 1) * len / self.count)
    }

    /// The shard-qualified file name for an output stem.
    #[must_use]
    pub fn file_name(self, stem: &str) -> String {
        format!("{stem}.shard{}of{}.jsonl", self.index, self.count)
    }

    /// The shard-qualified checkpoint file name for an output stem — where
    /// the coordinator persists the last good [`crate::resume::ShardCheckpoint`].
    #[must_use]
    pub fn checkpoint_file_name(self, stem: &str) -> String {
        format!("{stem}.shard{}of{}.ckpt", self.index, self.count)
    }
}

// ---------------------------------------------------------------------------
// Runtime
// ---------------------------------------------------------------------------

/// Options the CLI resolves before handing control to the runtime.
#[derive(Debug, Clone, Default)]
pub struct LabOptions {
    /// Quick (CI smoke) or full grids.
    pub profile: Profile,
    /// Worker override; `None` uses [`SweepRunner::new`] sizing.
    pub threads: Option<usize>,
    /// Output directory override; `None` uses `target/experiments/`.
    pub out_dir: Option<PathBuf>,
    /// Process-level shard assignment.
    pub shard: Option<Shard>,
    /// Write per-cell progress heartbeats to a `<stem>.progress.jsonl`
    /// sidecar (`--progress`).
    pub progress: bool,
}

/// What one experiment run produced.
#[derive(Debug)]
pub struct RunSummary {
    /// Registry name.
    pub name: &'static str,
    /// Cells executed (the shard's slice of the grid).
    pub cells: usize,
    /// Rows written.
    pub rows: usize,
    /// The JSONL file written.
    pub path: PathBuf,
}

fn out_dir(opts: &LabOptions) -> PathBuf {
    opts.out_dir.clone().unwrap_or_else(crate::experiments_dir)
}

/// The sidecar file name for an output stem under an optional shard
/// assignment: `<stem>.progress.jsonl`, or
/// `<stem>.shard<I>of<M>.progress.jsonl` — shard-qualified exactly like the
/// row files, so concurrent shard processes never contend on one sidecar.
#[must_use]
pub fn progress_file_name(stem: &str, shard: Option<Shard>) -> String {
    match shard {
        Some(s) => format!("{stem}.shard{}of{}.progress.jsonl", s.index, s.count),
        None => format!("{stem}.progress.jsonl"),
    }
}

/// The shared cell-execution core: materialize the grid for `profile`,
/// slice out `shard` (the whole grid when `None`), run the cells in
/// parallel, reduce each to its rows. Per-cell progress streams through
/// `sink` when one is given. Both the local CLI ([`run_experiment`]) and
/// the distributed worker (`crate::net::worker`) are thin wrappers over
/// this — the byte-identity contract lives here.
pub fn run_shard_cells(
    exp: &dyn Experiment,
    profile: Profile,
    shard: Option<Shard>,
    threads: Option<usize>,
    sink: Option<&ProgressSink>,
) -> Vec<LabCell> {
    let grid = exp.grid(profile);
    let total = grid.len();
    let range = shard.map_or(0..total, |s| s.slice(total));
    let cell_base = range.start;
    let specs = &grid[range];
    let runner = match threads {
        Some(t) => SweepRunner::with_threads(t),
        None => SweepRunner::new(),
    };
    let results = runner.run(specs, |i, spec| {
        let progress = CellProgress::new(sink, cell_base + i, spec.tag);
        progress.start();
        let outcome = exp.run(spec, &progress);
        let rows = exp.reduce(spec, &outcome);
        progress.done(&outcome, rows.len());
        (outcome, rows)
    });
    specs
        .iter()
        .cloned()
        .zip(results)
        .map(|(spec, (outcome, rows))| LabCell {
            spec,
            outcome,
            rows,
        })
        .collect()
}

/// Executes one experiment: materialize the grid, slice the shard, run the
/// cells in parallel (streaming per-cell progress into the sidecar when
/// enabled), write rows in spec order, render, check.
pub fn run_experiment(exp: &dyn Experiment, opts: &LabOptions) -> Result<RunSummary, String> {
    crate::banner(exp.id(), exp.title());
    if let Some(s) = opts.shard {
        let total = exp.grid(opts.profile).len();
        let range = s.slice(total);
        println!(
            "[shard {}/{}: cells {}..{} of {}]",
            s.index, s.count, range.start, range.end, total
        );
    }

    let dir = out_dir(opts);
    std::fs::create_dir_all(&dir)
        .map_err(|e| format!("create output dir {}: {e}", dir.display()))?;
    let sink = if opts.progress {
        let path = dir.join(progress_file_name(exp.output_stem(), opts.shard));
        Some((ProgressSink::create(&path, exp.name(), opts.shard)?, path))
    } else {
        None
    };
    let sink_ref = sink.as_ref().map(|(s, _)| s);

    let cells = run_shard_cells(exp, opts.profile, opts.shard, opts.threads, sink_ref);

    let file = match opts.shard {
        Some(s) => s.file_name(exp.output_stem()),
        None => format!("{}.jsonl", exp.output_stem()),
    };
    let path = dir.join(file);
    let mut rows_written = 0usize;
    {
        let mut f =
            std::fs::File::create(&path).map_err(|e| format!("create {}: {e}", path.display()))?;
        for cell in &cells {
            for row in &cell.rows {
                writeln!(f, "{}", row.as_str()).map_err(|e| format!("write row: {e}"))?;
                rows_written += 1;
            }
        }
    }

    exp.render(&cells);
    println!("\n[{} rows -> {}]", rows_written, path.display());
    if let Some((_, sidecar)) = &sink {
        println!("[progress sidecar -> {}]", sidecar.display());
    }
    exp.check(&cells)
        .map_err(|e| format!("{}: invariant check failed: {e}", exp.name()))?;
    Ok(RunSummary {
        name: exp.name(),
        cells: cells.len(),
        rows: rows_written,
        path,
    })
}

/// Merges an experiment's shard files (`<stem>.shard<I>of<M>.jsonl`) from
/// `dir` into `<stem>.jsonl`, in shard-index order. Fails unless exactly one
/// complete shard set is present.
pub fn merge_shards(stem: &str, dir: &Path) -> Result<PathBuf, String> {
    let entries = std::fs::read_dir(dir).map_err(|e| format!("read {}: {e}", dir.display()))?;
    // Collect (index, count, path) for names matching the shard pattern.
    let prefix = format!("{stem}.shard");
    let mut shards: Vec<(usize, usize, PathBuf)> = Vec::new();
    for entry in entries {
        let entry = entry.map_err(|e| format!("read {}: {e}", dir.display()))?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        let Some(rest) = name
            .strip_prefix(&prefix)
            .and_then(|r| r.strip_suffix(".jsonl"))
        else {
            continue;
        };
        let Some((i, m)) = rest.split_once("of") else {
            continue;
        };
        let (Ok(i), Ok(m)) = (i.parse::<usize>(), m.parse::<usize>()) else {
            continue;
        };
        shards.push((i, m, entry.path()));
    }
    if shards.is_empty() {
        return Err(format!(
            "no shard files matching {prefix}<I>of<M>.jsonl in {}",
            dir.display()
        ));
    }
    let count = shards[0].1;
    if shards.iter().any(|&(_, m, _)| m != count) {
        return Err(format!(
            "mixed shard counts for '{stem}' in {} — remove stale shard files first",
            dir.display()
        ));
    }
    shards.sort_by_key(|&(i, _, _)| i);
    let indices: Vec<usize> = shards.iter().map(|&(i, _, _)| i).collect();
    if indices != (0..count).collect::<Vec<_>>() {
        // Name exactly which `I of M` files are absent — with a fleet of
        // workers writing shards, "which machine's output is missing" is
        // the first question.
        let missing: Vec<String> = (0..count)
            .filter(|i| !indices.contains(i))
            .map(|i| format!("{i} of {count}"))
            .collect();
        return Err(format!(
            "incomplete shard set for '{stem}': missing shard(s) [{}] (have indices {indices:?} \
             of 0..{count})",
            missing.join(", ")
        ));
    }
    let out = dir.join(format!("{stem}.jsonl"));
    // Stream each shard through a fixed-size copy buffer instead of
    // buffering whole files: coordinator-collected shards of billion-event
    // runs merge in O(1) memory.
    let mut w = std::io::BufWriter::new(
        std::fs::File::create(&out).map_err(|e| format!("create {}: {e}", out.display()))?,
    );
    for (_, _, path) in &shards {
        let mut r = std::io::BufReader::new(
            std::fs::File::open(path).map_err(|e| format!("open {}: {e}", path.display()))?,
        );
        std::io::copy(&mut r, &mut w).map_err(|e| format!("copy {}: {e}", path.display()))?;
    }
    w.flush()
        .map_err(|e| format!("flush {}: {e}", out.display()))?;
    Ok(out)
}

// ---------------------------------------------------------------------------
// CLI
// ---------------------------------------------------------------------------

const USAGE: &str = "\
the cohesion experiment lab — every paper figure/table behind one CLI

usage:
  lab list                                   index of registered experiments
  lab run <name> [options]                   run one experiment
  lab all [options]                          run every experiment in order
  lab merge <name>... [--out DIR]            merge shard files into <stem>.jsonl
  lab merge --all [--out DIR]                merge every complete shard set
  lab serve [<name>...] [options]            coordinate a worker fleet over TCP
                                             (default: every experiment); exits
                                             once all shards are merged
  lab worker --connect HOST:PORT [options]   run shards for a coordinator until
                                             it sends shutdown
  lab watch --connect HOST:PORT [--json]     attach to a coordinator as a live
                                             telemetry watcher (any time
                                             mid-run; read-only, cannot affect
                                             the run or its row bytes)
  lab lint [--json]                          run cohesion-lint over the whole
                                             workspace (non-zero exit on any
                                             violation not allowlisted in
                                             lint.toml)

options:
  --quick          shrunken CI smoke grids (default: full reproduction)
  --threads N      worker threads (default: COHESION_SWEEP_THREADS or all cores)
  --out DIR        output directory (default: target/experiments)
  --shard I/M      run only the I-th of M contiguous grid chunks; outputs to
                   <stem>.shardIofM.jsonl — concatenating shards 0..M in order
                   (lab merge) is byte-identical to an unsharded run
  --progress       stream per-cell heartbeats to a <stem>.progress.jsonl
                   sidecar (shard-qualified under --shard): one start/done
                   record per cell plus a heartbeat per 100k engine events

serve options:
  --addr HOST:PORT     listen address (default 127.0.0.1:7401; port 0 = ephemeral)
  --workers N          expected fleet size; sets the default shard count (2N)
  --shards M           shards per experiment grid (default 2x --workers)
  --heartbeat-ms T     liveness cadence (default 2000); a worker silent for
                       3 consecutive intervals is declared dead and its shard
                       is reassigned

worker options:
  --connect HOST:PORT      coordinator address (required)
  --checkpoint-events N    mid-cell checkpoint cadence in engine events
                           (default 5000000); each checkpoint is shipped to
                           the coordinator so a killed worker's shard resumes
                           instead of recomputing

watch options:
  --connect HOST:PORT      coordinator address (required)
  --json                   emit one compact JSON object per state update
                           ({\"seq\":N,\"key\":\"...\",\"value\":{\"F64\":...}})
                           plus a {\"dropped\":N} line per lossy batch,
                           instead of the terminal summary table";

/// Resolves a registry experiment by name (the `exp_` prefix of the old
/// shim binaries is accepted and stripped).
pub fn find_experiment(name: &str) -> Result<&'static dyn Experiment, String> {
    let canonical = name.strip_prefix("exp_").unwrap_or(name);
    crate::experiments::REGISTRY
        .iter()
        .copied()
        .find(|e| e.name() == canonical)
        .ok_or_else(|| {
            let names: Vec<&str> = crate::experiments::REGISTRY
                .iter()
                .map(|e| e.name())
                .collect();
            format!("unknown experiment '{name}' (known: {})", names.join(", "))
        })
}

struct Parsed {
    opts: LabOptions,
    names: Vec<String>,
    all: bool,
    quick_given: bool,
    addr: Option<String>,
    connect: Option<String>,
    workers: Option<usize>,
    shards: Option<usize>,
    heartbeat_ms: Option<u64>,
    checkpoint_events: Option<usize>,
    json: bool,
}

fn parse_args(args: &[String]) -> Result<Parsed, String> {
    let mut parsed = Parsed {
        opts: LabOptions::default(),
        names: Vec::new(),
        all: false,
        quick_given: false,
        addr: None,
        connect: None,
        workers: None,
        shards: None,
        heartbeat_ms: None,
        checkpoint_events: None,
        json: false,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--quick" => {
                parsed.opts.profile = Profile::Quick;
                parsed.quick_given = true;
            }
            "--full" => {
                parsed.opts.profile = Profile::Full;
                parsed.quick_given = true;
            }
            "--threads" => {
                let v = it.next().ok_or("--threads needs a value")?;
                let t: usize = v
                    .parse()
                    .map_err(|_| format!("--threads '{v}' is not an integer"))?;
                if t == 0 {
                    return Err("--threads must be at least 1".into());
                }
                parsed.opts.threads = Some(t);
            }
            "--out" => {
                let v = it.next().ok_or("--out needs a directory")?;
                parsed.opts.out_dir = Some(PathBuf::from(v));
            }
            "--shard" => {
                let v = it.next().ok_or("--shard needs an I/M value")?;
                parsed.opts.shard = Some(Shard::parse(v)?);
            }
            "--progress" => parsed.opts.progress = true,
            "--all" => parsed.all = true,
            "--json" => parsed.json = true,
            "--addr" => {
                let v = it.next().ok_or("--addr needs a HOST:PORT value")?;
                parsed.addr = Some(v.clone());
            }
            "--connect" => {
                let v = it.next().ok_or("--connect needs a HOST:PORT value")?;
                parsed.connect = Some(v.clone());
            }
            "--workers" => {
                let v = it.next().ok_or("--workers needs a value")?;
                let n: usize = v
                    .parse()
                    .map_err(|_| format!("--workers '{v}' is not an integer"))?;
                if n == 0 {
                    return Err("--workers must be at least 1".into());
                }
                parsed.workers = Some(n);
            }
            "--shards" => {
                let v = it.next().ok_or("--shards needs a value")?;
                let m: usize = v
                    .parse()
                    .map_err(|_| format!("--shards '{v}' is not an integer"))?;
                if m == 0 {
                    return Err("--shards must be at least 1".into());
                }
                parsed.shards = Some(m);
            }
            "--checkpoint-events" => {
                let v = it.next().ok_or("--checkpoint-events needs a value")?;
                let n: usize = v
                    .parse()
                    .map_err(|_| format!("--checkpoint-events '{v}' is not an integer"))?;
                if n == 0 {
                    return Err("--checkpoint-events must be at least 1".into());
                }
                parsed.checkpoint_events = Some(n);
            }
            "--heartbeat-ms" => {
                let v = it.next().ok_or("--heartbeat-ms needs a value")?;
                let t: u64 = v
                    .parse()
                    .map_err(|_| format!("--heartbeat-ms '{v}' is not an integer"))?;
                if t == 0 {
                    return Err("--heartbeat-ms must be at least 1".into());
                }
                parsed.heartbeat_ms = Some(t);
            }
            flag if flag.starts_with("--") => {
                return Err(format!("unknown flag '{flag}'\n\n{USAGE}"));
            }
            name => parsed.names.push(name.to_string()),
        }
    }
    if !parsed.quick_given {
        if let Some(p) = profile_env_fallback() {
            parsed.opts.profile = p;
        }
    }
    Ok(parsed)
}

/// The `lab` CLI entry point. Returns an error message for the binary to
/// print and exit non-zero on.
pub fn lab_main(args: &[String]) -> Result<(), String> {
    let Some((command, rest)) = args.split_first() else {
        return Err(USAGE.into());
    };
    match command.as_str() {
        "list" => {
            println!("{:<20} {:<10} {:<28} claim", "name", "paper", "output");
            for exp in crate::experiments::REGISTRY {
                println!(
                    "{:<20} {:<10} {:<28} {}",
                    exp.name(),
                    exp.id(),
                    format!("{}.jsonl", exp.output_stem()),
                    exp.claim()
                );
            }
            println!("\nrun one with `lab run <name>`; all with `lab all --quick`.");
            Ok(())
        }
        "run" => {
            let parsed = parse_args(rest)?;
            if parsed.names.is_empty() {
                return Err(format!("`lab run` needs an experiment name\n\n{USAGE}"));
            }
            for name in &parsed.names {
                let exp = find_experiment(name)?;
                run_experiment(exp, &parsed.opts)?;
            }
            Ok(())
        }
        "all" => {
            let parsed = parse_args(rest)?;
            if !parsed.names.is_empty() {
                return Err(format!(
                    "`lab all` takes no experiment names (got {:?})\n\n{USAGE}",
                    parsed.names
                ));
            }
            let mut summaries = Vec::new();
            for exp in crate::experiments::REGISTRY {
                summaries.push(run_experiment(*exp, &parsed.opts)?);
                println!();
            }
            println!("=== lab all: {} experiments ===", summaries.len());
            for s in &summaries {
                println!(
                    "  {:<20} {:>4} cells {:>5} rows  {}",
                    s.name,
                    s.cells,
                    s.rows,
                    s.path.display()
                );
            }
            Ok(())
        }
        "merge" => {
            let parsed = parse_args(rest)?;
            let dir = out_dir(&parsed.opts);
            if parsed.all {
                let mut merged_any = false;
                for exp in crate::experiments::REGISTRY {
                    match merge_shards(exp.output_stem(), &dir) {
                        Ok(path) => {
                            println!("merged {} -> {}", exp.name(), path.display());
                            merged_any = true;
                        }
                        Err(e) if e.starts_with("no shard files") => {}
                        Err(e) => return Err(e),
                    }
                }
                if !merged_any {
                    return Err(format!("no shard files found in {}", dir.display()));
                }
                Ok(())
            } else {
                if parsed.names.is_empty() {
                    return Err(format!(
                        "`lab merge` needs experiment names or --all\n\n{USAGE}"
                    ));
                }
                for name in &parsed.names {
                    let exp = find_experiment(name)?;
                    let path = merge_shards(exp.output_stem(), &dir)?;
                    println!("merged {} -> {}", exp.name(), path.display());
                }
                Ok(())
            }
        }
        "serve" => {
            let parsed = parse_args(rest)?;
            let experiments: Vec<&'static dyn Experiment> = if parsed.names.is_empty() {
                crate::experiments::REGISTRY.to_vec()
            } else {
                parsed
                    .names
                    .iter()
                    .map(|n| find_experiment(n))
                    .collect::<Result<_, _>>()?
            };
            let workers = parsed.workers.unwrap_or(1);
            // Default to twice the fleet size: finer shards bound how long
            // the fleet idles behind the last straggler shard.
            let shards = parsed.shards.unwrap_or(2 * workers);
            let mut opts = crate::net::ServeOptions::new(
                experiments,
                parsed.opts.profile,
                out_dir(&parsed.opts),
                shards,
            );
            if let Some(ms) = parsed.heartbeat_ms {
                opts.heartbeat = std::time::Duration::from_millis(ms);
            }
            let addr = parsed.addr.as_deref().unwrap_or("127.0.0.1:7401");
            crate::net::serve(addr, opts)?;
            Ok(())
        }
        "worker" => {
            let parsed = parse_args(rest)?;
            let Some(addr) = parsed.connect else {
                return Err(format!("`lab worker` needs --connect HOST:PORT\n\n{USAGE}"));
            };
            let mut opts = crate::net::WorkerOptions::new(addr);
            opts.threads = parsed.opts.threads;
            if let Some(n) = parsed.checkpoint_events {
                opts.checkpoint_events = n;
            }
            crate::net::run_worker(&opts)?;
            Ok(())
        }
        "watch" => {
            let parsed = parse_args(rest)?;
            let Some(addr) = parsed.connect else {
                return Err(format!("`lab watch` needs --connect HOST:PORT\n\n{USAGE}"));
            };
            let mut opts = crate::net::WatchOptions::new(addr);
            opts.json = parsed.json;
            crate::net::run_watch(&opts)?;
            Ok(())
        }
        "lint" => {
            let mut json = false;
            for arg in rest {
                match arg.as_str() {
                    "--json" => json = true,
                    other => return Err(format!("unknown `lab lint` option '{other}'\n\n{USAGE}")),
                }
            }
            let root = std::env::current_dir()
                .ok()
                .and_then(|d| cohesion_lint::find_workspace_root(&d))
                .or_else(|| {
                    cohesion_lint::find_workspace_root(Path::new(env!("CARGO_MANIFEST_DIR")))
                })
                .ok_or("no workspace root (Cargo.toml + crates/) above the current directory")?;
            let report = cohesion_lint::lint_workspace(&root)?;
            if json {
                print!("{}", report.render_json());
            } else {
                print!("{}", report.render_text());
            }
            if report.is_clean() {
                Ok(())
            } else {
                Err(format!(
                    "cohesion-lint found {} violation(s)",
                    report.violations.len()
                ))
            }
        }
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command '{other}'\n\n{USAGE}")),
    }
}

/// Entry point for the deprecated per-experiment shim binaries: forwards the
/// binary's arguments to `lab run <name>` with a stderr deprecation note.
pub fn shim_main(name: &str) {
    eprintln!(
        "note: the exp_{name} binary is a deprecated shim; use `cargo run --release -p \
         cohesion-bench --bin lab -- run {name}` (or `lab list` for the index)."
    );
    let mut args: Vec<String> = vec!["run".into(), name.into()];
    args.extend(std::env::args().skip(1));
    if let Err(e) = lab_main(&args) {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_parse_accepts_valid() {
        assert_eq!(Shard::parse("0/1").unwrap(), Shard { index: 0, count: 1 });
        assert_eq!(Shard::parse("2/7").unwrap(), Shard { index: 2, count: 7 });
    }

    #[test]
    fn shard_parse_rejects_malformed_and_out_of_range() {
        for bad in ["", "3", "a/b", "1/0", "2/2", "5/3", "-1/2"] {
            let err = Shard::parse(bad).unwrap_err();
            assert!(err.contains("invalid --shard"), "{bad}: {err}");
        }
        let err = Shard::parse("2/2").unwrap_err();
        assert!(err.contains("out of range"), "{err}");
        assert!(
            err.contains("0..=1"),
            "error should name the valid range: {err}"
        );
    }

    #[test]
    fn shard_slices_partition_in_order() {
        for len in [0usize, 1, 5, 16, 97] {
            for count in [1usize, 2, 3, 7] {
                let mut covered = Vec::new();
                let mut expected_start = 0;
                for index in 0..count {
                    let r = Shard { index, count }.slice(len);
                    assert_eq!(r.start, expected_start, "gap at shard {index}/{count}");
                    expected_start = r.end;
                    covered.extend(r);
                }
                assert_eq!(covered, (0..len).collect::<Vec<_>>());
            }
        }
    }

    #[test]
    fn profile_pick() {
        assert_eq!(Profile::Quick.pick(1, 2), 1);
        assert_eq!(Profile::Full.pick(1, 2), 2);
        assert!(Profile::Quick.is_quick());
        assert_eq!(Profile::default(), Profile::Full);
    }
}
