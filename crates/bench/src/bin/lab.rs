//! The `lab` CLI: every experiment behind one binary.
//!
//! ```sh
//! cargo run --release -p cohesion-bench --bin lab -- list
//! cargo run --release -p cohesion-bench --bin lab -- run separation_matrix
//! cargo run --release -p cohesion-bench --bin lab -- all --quick
//! cargo run --release -p cohesion-bench --bin lab -- run k_scaling --shard 0/2
//! cargo run --release -p cohesion-bench --bin lab -- merge k_scaling
//! ```

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if let Err(e) = cohesion_bench::lab::lab_main(&args) {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}
