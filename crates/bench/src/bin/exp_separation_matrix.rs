//! Deprecated shim: delegates to `lab run separation_matrix` (same registry entry, same
//! output file). Kept so existing invocations and scripts keep working; the
//! declarative experiment now lives in `src/experiments/separation_matrix.rs`.

fn main() {
    cohesion_bench::lab::shim_main("separation_matrix");
}
