//! T1 — the headline separation matrix.
//!
//! Rows: algorithms. Columns: scheduling models. Cells: did the run converge
//! and did it keep every initial visibility edge? The paper's claims to
//! reproduce:
//!
//! * the paper's algorithm (with matching `k`): cohesively converges in all
//!   bounded models;
//! * Ando: sound in SSync, broken by the 1-Async and 2-NestA scripts;
//! * Katreniak: sound through 1-Async, broken by the unbounded (spiral)
//!   adversary;
//! * every victim: broken by the §7 Async spiral adversary.

use cohesion_adversary::ando_counterexample as fig4;
use cohesion_adversary::run_impossibility;
use cohesion_algorithms::{AndoAlgorithm, KatreniakAlgorithm};
use cohesion_bench::{banner, dump_json, mark};
use cohesion_core::KirkpatrickAlgorithm;
use cohesion_engine::SimulationBuilder;
use cohesion_geometry::Vec2;
use cohesion_model::Algorithm;
use cohesion_scheduler::{KAsyncScheduler, NestAScheduler, SSyncScheduler};
use serde::Serialize;

#[derive(Serialize)]
struct Cell {
    algorithm: String,
    scheduler: String,
    converged: bool,
    cohesive: bool,
}

fn random_run(
    alg: impl Algorithm<Vec2> + 'static,
    scheduler: impl cohesion_scheduler::Scheduler + 'static,
    seed: u64,
) -> (bool, bool) {
    let report = SimulationBuilder::new(cohesion_workloads::random_connected(14, 1.0, seed), alg)
        .visibility(1.0)
        .scheduler(scheduler)
        .seed(seed)
        .epsilon(0.05)
        .max_events(900_000)
        .track_strong_visibility(false)
        .run();
    (report.converged, report.cohesion_maintained)
}

fn main() {
    banner("T1", "separation matrix: algorithm × scheduling model");
    println!(
        "{:<18} {:>14} {:>14} {:>14} {:>14} {:>16} {:>16}",
        "algorithm", "SSync", "2-NestA", "2-Async", "8-Async", "1-Async script", "Async spiral"
    );
    let mut rows: Vec<Cell> = Vec::new();
    type AlgorithmFactory = Box<dyn Fn() -> Box<dyn Algorithm<Vec2>>>;
    let algs: Vec<(&str, AlgorithmFactory)> = vec![
        (
            "kirkpatrick",
            Box::new(|| Box::new(KirkpatrickAlgorithm::new(8))),
        ),
        ("ando", Box::new(|| Box::new(AndoAlgorithm::new(1.0)))),
        (
            "katreniak",
            Box::new(|| Box::new(KatreniakAlgorithm::new())),
        ),
    ];
    for (name, make) in &algs {
        let mut cells: Vec<(String, bool, bool)> = Vec::new();
        for (sname, run) in [
            ("SSync", random_run(make(), SSyncScheduler::new(3), 51)),
            ("2-NestA", random_run(make(), NestAScheduler::new(2, 5), 52)),
            (
                "2-Async",
                random_run(make(), KAsyncScheduler::new(2, 7), 53),
            ),
            (
                "8-Async",
                random_run(make(), KAsyncScheduler::new(8, 9), 54),
            ),
        ] {
            cells.push((sname.to_string(), run.0, run.1));
        }
        // The scripted 1-Async counterexample (Figure 4a geometry).
        let fig = fig4::run_figure4(make(), fig4::figure4a_schedule());
        cells.push((
            "1-Async script".into(),
            fig.converged,
            fig.cohesion_maintained,
        ));
        // The §7 unbounded-asynchrony spiral adversary. For the paper's
        // algorithm the victim is the base k = 1 variant: under Async no
        // finite k is "matched", and the adversary's leverage scales with
        // the victim's step length ζ ~ V/8k (larger k would need smaller ψ
        // and exponentially more robots to break — see exp_impossibility).
        let spiral_victim: Box<dyn Algorithm<Vec2>> = if *name == "kirkpatrick" {
            Box::new(KirkpatrickAlgorithm::new(1))
        } else {
            make()
        };
        let spiral = run_impossibility(spiral_victim.as_ref(), 0.3, 30_000);
        cells.push(("Async spiral".into(), false, !spiral.separated));

        print!("{name:<18}");
        for (_, _converged, cohesive) in &cells {
            print!(" {:>14}", mark(*cohesive));
        }
        println!();
        for (sname, converged, cohesive) in cells {
            rows.push(Cell {
                algorithm: name.to_string(),
                scheduler: sname,
                converged,
                cohesive,
            });
        }
    }
    println!("\ncell = cohesion maintained? (\"NO\" marks a lost initial visibility edge)");
    println!(
        "kirkpatrick runs with k = 8 (covers every bounded column; scripted 1-Async uses k≥1)."
    );
    println!("paper: Theorems 3–4 (bounded columns yes), §3.1/Fig. 4 (Ando loses async columns),");
    println!("       §7 (everyone loses the Async spiral column).");
    dump_json("t1_separation_matrix", &rows);
}
