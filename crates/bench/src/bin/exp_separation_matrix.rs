//! T1 — the headline separation matrix.
//!
//! Rows: algorithms. Columns: scheduling models. Cells: did the run converge
//! and did it keep every initial visibility edge? The paper's claims to
//! reproduce:
//!
//! * the paper's algorithm (with matching `k`): cohesively converges in all
//!   bounded models;
//! * Ando: sound in SSync, broken by the 1-Async and 2-NestA scripts;
//! * Katreniak: sound through 1-Async, broken by the unbounded (spiral)
//!   adversary;
//! * every victim: broken by the §7 Async spiral adversary.
//!
//! All 18 cells run in parallel on the [`SweepRunner`] and are merged in
//! cell order, so the table and JSON rows are identical to a serial run.
//! The random-scheduler cells are plain [`ScenarioSpec`]s; the scripted
//! Figure 4 and §7 spiral cells carry their own drivers.

use cohesion_adversary::ando_counterexample as fig4;
use cohesion_adversary::run_impossibility;
use cohesion_bench::{
    banner, dump_json, mark, quick_requested, AlgorithmSpec, ScenarioSpec, SchedulerSpec,
    SweepRunner, WorkloadSpec,
};
use serde::Serialize;

#[derive(Serialize)]
struct Cell {
    algorithm: String,
    scheduler: String,
    converged: bool,
    cohesive: bool,
}

/// One matrix cell, ready to run on any sweep worker.
enum Job {
    /// A fair random scheduler on a random connected cloud.
    Random(ScenarioSpec),
    /// The scripted 1-Async counterexample (Figure 4a geometry).
    Fig4Script(AlgorithmSpec),
    /// The §7 unbounded-asynchrony spiral adversary, with a sweep budget.
    Spiral(AlgorithmSpec, usize),
}

impl Job {
    /// Runs the cell to a `(converged, cohesive)` verdict.
    fn run(&self) -> (bool, bool) {
        match self {
            Job::Random(spec) => {
                let report = spec.run();
                (report.converged, report.cohesion_maintained)
            }
            Job::Fig4Script(alg) => {
                let report = fig4::run_figure4(alg.build(), fig4::figure4a_schedule());
                (report.converged, report.cohesion_maintained)
            }
            Job::Spiral(alg, max_sweeps) => {
                let victim = alg.build();
                let outcome = run_impossibility(victim.as_ref(), 0.3, *max_sweeps);
                (false, !outcome.separated)
            }
        }
    }
}

fn random_spec(
    alg: AlgorithmSpec,
    scheduler: SchedulerSpec,
    seed: u64,
    quick: bool,
) -> ScenarioSpec {
    ScenarioSpec {
        seed,
        max_events: if quick { 120_000 } else { 900_000 },
        ..ScenarioSpec::new(
            WorkloadSpec::RandomConnected {
                n: if quick { 8 } else { 14 },
                v: 1.0,
                seed,
            },
            alg,
            scheduler,
        )
    }
}

fn main() {
    banner("T1", "separation matrix: algorithm × scheduling model");
    let quick = quick_requested();
    let spiral_sweeps = if quick { 5_000 } else { 30_000 };

    // The §7 spiral victim for the paper's algorithm is the base k = 1
    // variant: under Async no finite k is "matched", and the adversary's
    // leverage scales with the victim's step length ζ ~ V/8k (larger k would
    // need smaller ψ and exponentially more robots to break — see
    // exp_impossibility).
    let algs: [(&str, AlgorithmSpec, AlgorithmSpec); 3] = [
        (
            "kirkpatrick",
            AlgorithmSpec::Kirkpatrick { k: 8 },
            AlgorithmSpec::Kirkpatrick { k: 1 },
        ),
        (
            "ando",
            AlgorithmSpec::Ando { v: 1.0 },
            AlgorithmSpec::Ando { v: 1.0 },
        ),
        (
            "katreniak",
            AlgorithmSpec::Katreniak,
            AlgorithmSpec::Katreniak,
        ),
    ];
    let columns = [
        "SSync",
        "2-NestA",
        "2-Async",
        "8-Async",
        "1-Async script",
        "Async spiral",
    ];

    let jobs: Vec<Job> = algs
        .iter()
        .flat_map(|&(_, alg, spiral_alg)| {
            [
                Job::Random(random_spec(
                    alg,
                    SchedulerSpec::SSync { seed: 3 },
                    51,
                    quick,
                )),
                Job::Random(random_spec(
                    alg,
                    SchedulerSpec::NestA { k: 2, seed: 5 },
                    52,
                    quick,
                )),
                Job::Random(random_spec(
                    alg,
                    SchedulerSpec::KAsync { k: 2, seed: 7 },
                    53,
                    quick,
                )),
                Job::Random(random_spec(
                    alg,
                    SchedulerSpec::KAsync { k: 8, seed: 9 },
                    54,
                    quick,
                )),
                Job::Fig4Script(alg),
                Job::Spiral(spiral_alg, spiral_sweeps),
            ]
        })
        .collect();

    let verdicts = SweepRunner::new().run(&jobs, |_, job| job.run());

    println!(
        "{:<18} {:>14} {:>14} {:>14} {:>14} {:>16} {:>16}",
        "algorithm", columns[0], columns[1], columns[2], columns[3], columns[4], columns[5]
    );
    let mut rows: Vec<Cell> = Vec::new();
    for ((name, _, _), row_verdicts) in algs.iter().zip(verdicts.chunks(columns.len())) {
        print!("{name:<18}");
        for (sname, &(converged, cohesive)) in columns.iter().zip(row_verdicts) {
            let width = if sname.len() > 10 { 16 } else { 14 };
            print!(" {:>width$}", mark(cohesive));
            rows.push(Cell {
                algorithm: name.to_string(),
                scheduler: sname.to_string(),
                converged,
                cohesive,
            });
        }
        println!();
    }
    println!("\ncell = cohesion maintained? (\"NO\" marks a lost initial visibility edge)");
    println!(
        "kirkpatrick runs with k = 8 (covers every bounded column; scripted 1-Async uses k≥1)."
    );
    println!("paper: Theorems 3–4 (bounded columns yes), §3.1/Fig. 4 (Ando loses async columns),");
    println!("       §7 (everyone loses the Async spiral column).");
    dump_json("t1_separation_matrix", &rows);
}
