//! F10–F14 — the Lemma 5 chain invariant under adversarial schedule search.
//!
//! The paper's 1-Async analysis walks the checkpoint chain of a hypothetical
//! *doomed engagement* of two robots and proves no such chain exists:
//! every edge must satisfy `|e_t| ≥ V·cosθ_t` with
//! `cosθ_t ≥ √((2+√3)/4) ≈ 0.9659`, and the chain's final edge would then
//! contradict initial visibility. Here we *search* for separating schedules:
//! randomized interleaved engagements of a robot pair running the paper's
//! algorithm (the rest of the swarm adversarially pinned), recording the
//! worst separation ever achieved and the chain statistics.

use cohesion_bench::{banner, dump_json};
use cohesion_core::analysis::lemma5::{verify_chain, COS_THETA_MIN};
use cohesion_core::KirkpatrickAlgorithm;
use cohesion_engine::Engine;
use cohesion_geometry::Vec2;
use cohesion_model::{Configuration, FrameMode, RobotId};
use cohesion_scheduler::{ActivationInterval, ScriptedScheduler};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::Serialize;

#[derive(Serialize)]
struct SearchRow {
    k: u32,
    engagements: usize,
    worst_separation: f64,
    min_cos_turn_seen: f64,
    violations: usize,
}

/// One randomized interleaved engagement: X and Y alternate overlapping
/// activations (the Figure 10 pattern), each seeing the other mid-move.
fn random_engagement(seed: u64, k: u32) -> (f64, f64) {
    let mut rng = SmallRng::seed_from_u64(seed);
    // Two robots at the visibility threshold, with two pinned anchors far
    // apart to pull them in opposite directions (the adversary's best hope).
    let x0 = Vec2::ZERO;
    let y0 = Vec2::new(1.0, 0.0);
    let ax = x0 + Vec2::from_angle(rng.gen_range(2.0..4.3)) * rng.gen_range(0.7..1.0);
    let ay = y0 + Vec2::from_angle(rng.gen_range(-1.2..1.2)) * rng.gen_range(0.7..1.0);
    let config = Configuration::new(vec![x0, y0, ax, ay]);

    // Interleaved schedule: X's j-th interval overlaps Y's (j−1)-st and
    // j-th (Figure 10), repeated for a few cluster rounds, with up to k
    // activations per cluster.
    let mut script = Vec::new();
    let mut t = 0.0;
    for _ in 0..rng.gen_range(3..9) {
        let x_cluster = rng.gen_range(1..=k);
        let x_start = t;
        let x_end = t + 1.0;
        script.push(ActivationInterval::new(
            RobotId(0),
            x_start,
            x_start + 0.1,
            x_end,
        ));
        let mut s = x_start + 0.15;
        for _ in 0..x_cluster {
            let dur = rng.gen_range(0.08..(0.8 / f64::from(k)));
            if s + dur >= x_end {
                break;
            }
            script.push(ActivationInterval::new(
                RobotId(1),
                s,
                s + dur * 0.4,
                s + dur,
            ));
            s += dur + 0.01;
        }
        t = x_end + rng.gen_range(0.01..0.1);
    }
    let script = {
        let mut s = script;
        s.sort_by(|a, b| a.look.partial_cmp(&b.look).expect("finite"));
        s
    };

    let mut engine = Engine::new(
        &config,
        1.0,
        KirkpatrickAlgorithm::new(k),
        ScriptedScheduler::new("engagement", script),
        seed,
    );
    engine.set_frame_mode(FrameMode::RandomOrtho);
    let mut xs = vec![x0];
    let mut ys = vec![y0];
    let mut worst: f64 = x0.dist(y0);
    while let Some(ev) = engine.step() {
        let c = engine.configuration_at(ev.time);
        worst = worst.max(c.position(RobotId(0)).dist(c.position(RobotId(1))));
        if ev.kind == cohesion_engine::EngineEventKind::MoveEnd {
            match ev.robot {
                RobotId(0) => xs.push(c.position(RobotId(0))),
                RobotId(1) => ys.push(c.position(RobotId(1))),
                _ => {}
            }
        }
    }
    let m = xs.len().min(ys.len());
    let report = verify_chain(&xs[..m], &ys[..m], 1.0);
    (worst, report.min_cos_turn)
}

fn main() {
    banner(
        "F10-F14",
        "chain-invariant search: can interleaved k-Async schedules separate a pair?",
    );
    println!("Lemma 5 constant: cos θ ≥ √((2+√3)/4) = {COS_THETA_MIN:.6} (= cos 15°)");
    println!();
    println!(
        "{:>3} {:>12} {:>18} {:>18} {:>12}",
        "k", "engagements", "worst |XY| seen", "min cosθ (chains)", "separations"
    );
    let mut rows = Vec::new();
    for k in [1u32, 2, 4] {
        let engagements = 400;
        let mut worst: f64 = 0.0;
        let mut min_cos: f64 = 1.0;
        let mut violations = 0;
        for i in 0..engagements {
            let (sep, cos) = random_engagement(1000 * u64::from(k) + i as u64, k);
            worst = worst.max(sep);
            min_cos = min_cos.min(cos);
            if sep > 1.0 + 1e-9 {
                violations += 1;
            }
        }
        println!(
            "{:>3} {:>12} {:>18.6} {:>18.6} {:>12}",
            k, engagements, worst, min_cos, violations
        );
        rows.push(SearchRow {
            k,
            engagements,
            worst_separation: worst,
            min_cos_turn_seen: min_cos,
            violations,
        });
    }
    println!("\npaper: Theorem 4 — no legal k-Async schedule separates the pair; worst |XY| stays ≤ V = 1.");
    println!(
        "(The min-cosθ column describes realized checkpoint chains; Lemma 5's bound constrains"
    );
    println!("only *separating* chains, whose nonexistence is exactly the 0 in the last column.)");
    let total: usize = rows.iter().map(|r| r.violations).sum();
    dump_json("f10_chain_invariant", &rows);
    assert_eq!(
        total, 0,
        "found a separating k-Async engagement — contradicting Theorem 4"
    );
}
