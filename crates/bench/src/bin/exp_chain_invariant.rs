//! Deprecated shim: delegates to `lab run chain_invariant` (same registry entry, same
//! output file). Kept so existing invocations and scripts keep working; the
//! declarative experiment now lives in `src/experiments/chain_invariant.rs`.

fn main() {
    cohesion_bench::lab::shim_main("chain_invariant");
}
