//! Deprecated shim: delegates to `lab run safe_regions` (same registry entry, same
//! output file). Kept so existing invocations and scripts keep working; the
//! declarative experiment now lives in `src/experiments/safe_regions.rs`.

fn main() {
    cohesion_bench::lab::shim_main("safe_regions");
}
