//! F3 + F15 — safe-region geometry across the three algorithms, and the
//! paper's target-destination rule.
//!
//! Figure 3 compares, for an observer `Y` seeing a neighbour `X` at distance
//! `d` (with `V_Y = V = 1`): Ando's disk (radius `V/2` at the midpoint),
//! Katreniak's two-disk union, and the paper's direction-only disk
//! (radius `V_Y/8` at distance `V_Y/8` toward `X`). We tabulate region area
//! and the maximal admissible step toward the neighbour, and verify the
//! paper's observations: its region depends only on direction, is the
//! smallest, and bounds every step by `V_Y/8`.

use cohesion_algorithms::{AndoAlgorithm, KatreniakAlgorithm};
use cohesion_bench::{banner, dump_json};
use cohesion_core::{KirkpatrickAlgorithm, SafeRegion};
use cohesion_geometry::{Circle, Vec2};
use cohesion_model::{Algorithm, Snapshot};
use serde::Serialize;
use std::f64::consts::PI;

#[derive(Serialize)]
struct Row {
    distance: f64,
    ando_area: f64,
    katreniak_area: f64,
    ours_area: f64,
    ando_step: f64,
    katreniak_step: f64,
    ours_step: f64,
}

fn main() {
    banner(
        "F3+F15",
        "safe regions: Ando vs Katreniak vs the paper's rule",
    );
    let v = 1.0;
    println!(
        "{:>6} | {:>10} {:>10} {:>10} | {:>10} {:>10} {:>10}",
        "d", "area:ando", "katreniak", "ours", "step:ando", "katreniak", "ours"
    );
    let ando = AndoAlgorithm::new(v);
    let kat = KatreniakAlgorithm::new();
    let mut rows = Vec::new();
    for d in [0.3, 0.5, 0.7, 0.9, 1.0] {
        let x = Vec2::new(d, 0.0);
        // Areas.
        let ando_area = Circle::new(x * 0.5, v / 2.0).area();
        let (near, own) = kat.safe_disks(x, v);
        // The union area (the disks overlap near the origin).
        let kat_area = near.area() + own.area() - near.lens_area(&own);
        let ours = SafeRegion::new(Vec2::ZERO, x, v / 8.0).expect("direction");
        let ours_area = ours.ball().radius * ours.ball().radius * PI;
        // Maximal admissible step straight toward the neighbour.
        let u = Vec2::new(1.0, 0.0);
        let ando_step = ando.limit_toward(u, x).unwrap_or(0.0).min(d);
        let kat_step = kat.limit_toward(u, x, v);
        let ours_step = 2.0 * v / 8.0; // diameter of the direction disk
        println!(
            "{:>6.2} | {:>10.4} {:>10.4} {:>10.4} | {:>10.4} {:>10.4} {:>10.4}",
            d, ando_area, kat_area, ours_area, ando_step, kat_step, ours_step
        );
        rows.push(Row {
            distance: d,
            ando_area,
            katreniak_area: kat_area,
            ours_area,
            ando_step,
            katreniak_step: kat_step,
            ours_step,
        });
    }
    println!("\nobservations reproduced:");
    println!("  * ours is independent of d (direction-only, §3.2.1) and by far the smallest;");
    println!("  * Ando's region (V/2-disk at the midpoint) allows the longest steps;");
    println!("  * Katreniak's union shrinks as d → V (own-disk radius (V−d)/4 → 0).");

    // F15: the target rule.
    println!("\nF15 — target rule checks (γ = half-sector angle, r = V_Z/8):");
    let alg = KirkpatrickAlgorithm::new(1);
    for gamma_deg in [10.0f64, 30.0, 60.0, 80.0, 89.0] {
        let g = gamma_deg.to_radians();
        let snap = Snapshot::from_positions(vec![Vec2::from_angle(g), Vec2::from_angle(-g)]);
        let t = alg.compute(&snap);
        println!(
            "  γ = {gamma_deg:>4}°: step = {:.4} (= r·cosγ = {:.4}), direction = bisector",
            t.norm(),
            (1.0 / 8.0) * g.cos()
        );
    }
    let surround = Snapshot::from_positions(vec![
        Vec2::from_angle(0.0),
        Vec2::from_angle(2.0 * PI / 3.0),
        Vec2::from_angle(4.0 * PI / 3.0),
    ]);
    println!(
        "  surrounded (three 120°-spread distant neighbours): step = {:.4} (nil, §5)",
        alg.compute(&surround).norm()
    );
    dump_json("f3_safe_regions", &rows);
}
