//! F19–F22 — the §7 Async impossibility construction.
//!
//! For each victim algorithm and several turn angles `ψ`, build the spiral
//! (Figure 19), run the sliver-flattening nested adversary (Figures 20–22),
//! and report the outcome: separation achieved, the stale-move length `ζ`,
//! the nesting bound `k` the schedule consumed, and the radial drift of the
//! tail (the paper's construction bounds its drift by `4ψ²`).

use cohesion_adversary::{run_impossibility, SpiralConstruction};
use cohesion_algorithms::{AndoAlgorithm, KatreniakAlgorithm};
use cohesion_bench::{banner, dump_json, mark};
use cohesion_core::KirkpatrickAlgorithm;
use cohesion_geometry::Vec2;
use cohesion_model::Algorithm;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    algorithm: String,
    psi: f64,
    robots: usize,
    zeta: f64,
    separated: bool,
    final_ab: f64,
    nesting_k: usize,
    sweeps: usize,
    max_radial_drift: f64,
    drift_bound_4psi2: f64,
}

fn main() {
    banner("F19-F22", "the Async spiral adversary vs three victims");
    println!(
        "{:<22} {:>5} {:>6} {:>8} {:>10} {:>9} {:>9} {:>8} {:>9} {:>9}",
        "victim", "ψ", "n", "ζ", "separated", "|AB| end", "nest k", "sweeps", "drift", "4ψ²"
    );
    let mut rows = Vec::new();
    for &psi in &[0.35, 0.3, 0.25] {
        let victims: Vec<Box<dyn Algorithm<Vec2>>> = vec![
            Box::new(AndoAlgorithm::new(1.0)),
            Box::new(KatreniakAlgorithm::new()),
            Box::new(KirkpatrickAlgorithm::new(1)),
        ];
        for victim in &victims {
            let o = run_impossibility(victim.as_ref(), psi, 60_000);
            println!(
                "{:<22} {:>5.2} {:>6} {:>8.4} {:>10} {:>9.4} {:>9} {:>8} {:>9.4} {:>9.4}",
                o.algorithm,
                psi,
                o.robots,
                o.zeta,
                mark(o.separated),
                o.final_ab_distance,
                o.nesting_k,
                o.sweeps,
                o.max_radial_drift,
                4.0 * psi * psi
            );
            rows.push(Row {
                algorithm: o.algorithm.clone(),
                psi,
                robots: o.robots,
                zeta: o.zeta,
                separated: o.separated,
                final_ab: o.final_ab_distance,
                nesting_k: o.nesting_k,
                sweeps: o.sweeps,
                max_radial_drift: o.max_radial_drift,
                drift_bound_4psi2: 4.0 * psi * psi,
            });
        }
        println!();
    }
    println!("spiral sizes follow n ≈ 3 + e^{{3π/(8 sin ψ)}}:");
    for &psi in &[0.35, 0.3, 0.25, 0.2] {
        println!(
            "  ψ = {psi}: built n = {} (estimate {:.0})",
            SpiralConstruction::paper(psi).robot_count(),
            SpiralConstruction::paper_size_estimate(psi)
        );
    }
    println!("\npaper (§7): every error-tolerant algorithm is separated by unbounded nesting.");
    println!("Shape reproduced: larger ζ ⇒ shallower nesting suffices (Ando breaks in a few");
    println!("sweeps, matching its 2-NestA failure); smaller ζ ⇒ the adversary needs deeper");
    println!("nesting and smaller ψ — the paper's 'ψ sufficiently small relative to ζ'.");
    dump_json("f19_impossibility", &rows);
}
