//! Deprecated shim: delegates to `lab run impossibility` (same registry entry, same
//! output file). Kept so existing invocations and scripts keep working; the
//! declarative experiment now lives in `src/experiments/impossibility.rs`.

fn main() {
    cohesion_bench::lab::shim_main("impossibility");
}
