//! T2 — convergence rates: rounds to halve the diameter vs swarm size.
//!
//! Reproduces the shape of the rate landscape the paper surveys (§1.2.2):
//! CoG's halving time grows with `n` (the paper cites `O(n²)` rounds with an
//! `Ω(n)` lower bound), GCM with axis agreement halves in `O(1)` rounds, and
//! the limited-visibility cohesive algorithms sit in between, growing with
//! the hop-diameter of the visibility graph.
//!
//! Runs on the [`SweepRunner`]: every `(algorithm, n)` cell is an independent
//! [`ScenarioSpec`], executed in parallel and merged in spec order, so the
//! table and JSON rows are identical to a serial run.

use cohesion_bench::{
    banner, dump_json, quick_requested, AlgorithmSpec, ScenarioSpec, SchedulerSpec, SweepRunner,
    WorkloadSpec,
};
use cohesion_model::FrameMode;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    algorithm: String,
    n: usize,
    rounds_to_halve: Option<usize>,
    rounds_to_eps: Option<usize>,
    converged: bool,
}

const BIG_V: f64 = 1e6; // "unlimited" visibility for the global baselines

fn spec(
    algorithm: AlgorithmSpec,
    n: usize,
    visibility: f64,
    frame: FrameMode,
    quick: bool,
) -> ScenarioSpec {
    // The line at near-threshold spacing is the classic worst case: hop
    // diameter = n − 1.
    ScenarioSpec {
        visibility,
        frame_mode: frame,
        max_events: if quick { 400_000 } else { 3_000_000 },
        diameter_sample_every: 64,
        ..ScenarioSpec::new(
            WorkloadSpec::Line { n, spacing: 0.9 },
            algorithm,
            SchedulerSpec::FSync,
        )
    }
}

fn main() {
    banner(
        "T2",
        "rounds to halve the diameter vs n (FSync, line workload)",
    );
    let quick = quick_requested();
    let ns: &[usize] = if quick { &[8, 16] } else { &[8, 16, 32, 48] };
    let specs: Vec<ScenarioSpec> = ns
        .iter()
        .flat_map(|&n| {
            [
                spec(
                    AlgorithmSpec::Kirkpatrick { k: 1 },
                    n,
                    1.0,
                    FrameMode::RandomOrtho,
                    quick,
                ),
                spec(
                    AlgorithmSpec::Ando { v: 1.0 },
                    n,
                    1.0,
                    FrameMode::RandomOrtho,
                    quick,
                ),
                spec(
                    AlgorithmSpec::Katreniak,
                    n,
                    1.0,
                    FrameMode::RandomOrtho,
                    quick,
                ),
                spec(AlgorithmSpec::Cog, n, BIG_V, FrameMode::RandomOrtho, quick),
                spec(AlgorithmSpec::Gcm, n, BIG_V, FrameMode::Aligned, quick),
            ]
        })
        .collect();

    let reports = SweepRunner::new().run_scenarios(&specs);

    println!(
        "{:<22} {:>4} {:>14} {:>12} {:>10}",
        "algorithm", "n", "halve rounds", "eps rounds", "converged"
    );
    let mut rows = Vec::new();
    let per_n = specs.len() / ns.len();
    for (i, (spec, report)) in specs.iter().zip(&reports).enumerate() {
        let WorkloadSpec::Line { n, .. } = spec.workload else {
            unreachable!("every T2 workload is a line")
        };
        let row = Row {
            algorithm: report.algorithm.clone(),
            n,
            rounds_to_halve: report.rounds_to_halve_diameter(),
            rounds_to_eps: report.rounds_to_reach(0.05),
            converged: report.converged,
        };
        println!(
            "{:<22} {:>4} {:>14} {:>12} {:>10}",
            row.algorithm,
            row.n,
            row.rounds_to_halve.map_or("-".into(), |r| r.to_string()),
            row.rounds_to_eps.map_or("-".into(), |r| r.to_string()),
            row.converged
        );
        rows.push(row);
        if (i + 1) % per_n == 0 {
            println!();
        }
    }
    println!("shape to check against the paper's survey (§1.2.2):");
    println!("  * under FSync with unlimited visibility, cog and gcm collapse in O(1) rounds");
    println!("    (every robot jumps to the same global target; cog's O(n²) worst case needs");
    println!("    adversarial SSync subsets, which random rounds do not realize);");
    println!("  * limited-visibility algorithms grow with the hop diameter (≈ n on a line);");
    println!("  * ours is slower than Ando's by roughly the 1/8-vs-1/2 step-size ratio;");
    println!("  * '-' cells: the run converged before the measurement round completed.");
    dump_json("t2_convergence_rate", &rows);
}
