//! T2 — convergence rates: rounds to halve the diameter vs swarm size.
//!
//! Reproduces the shape of the rate landscape the paper surveys (§1.2.2):
//! CoG's halving time grows with `n` (the paper cites `O(n²)` rounds with an
//! `Ω(n)` lower bound), GCM with axis agreement halves in `O(1)` rounds, and
//! the limited-visibility cohesive algorithms sit in between, growing with
//! the hop-diameter of the visibility graph.

use cohesion_algorithms::{AndoAlgorithm, CogAlgorithm, GcmAlgorithm, KatreniakAlgorithm};
use cohesion_bench::{banner, dump_json};
use cohesion_core::KirkpatrickAlgorithm;
use cohesion_engine::SimulationBuilder;
use cohesion_geometry::Vec2;
use cohesion_model::{Algorithm, FrameMode};
use cohesion_scheduler::FSyncScheduler;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    algorithm: String,
    n: usize,
    rounds_to_halve: Option<usize>,
    rounds_to_eps: Option<usize>,
    converged: bool,
}

fn rate(alg: impl Algorithm<Vec2> + 'static, n: usize, visibility: f64, frame: FrameMode) -> Row {
    // The line at near-threshold spacing is the classic worst case: hop
    // diameter = n − 1.
    let config = cohesion_workloads::line(n, 0.9);
    let report = SimulationBuilder::new(config, alg)
        .visibility(visibility)
        .scheduler(FSyncScheduler::new())
        .frame_mode(frame)
        .epsilon(0.05)
        .max_events(3_000_000)
        .track_strong_visibility(false)
        .hull_check_every(0)
        .diameter_sample_every(64)
        .run();
    Row {
        algorithm: report.algorithm.clone(),
        n,
        rounds_to_halve: report.rounds_to_halve_diameter(),
        rounds_to_eps: report.rounds_to_reach(0.05),
        converged: report.converged,
    }
}

fn main() {
    banner(
        "T2",
        "rounds to halve the diameter vs n (FSync, line workload)",
    );
    println!(
        "{:<22} {:>4} {:>14} {:>12} {:>10}",
        "algorithm", "n", "halve rounds", "eps rounds", "converged"
    );
    let mut rows = Vec::new();
    for &n in &[8usize, 16, 32, 48] {
        let big_v = 1e6; // "unlimited" visibility for the global baselines
        let batch: Vec<Row> = vec![
            rate(KirkpatrickAlgorithm::new(1), n, 1.0, FrameMode::RandomOrtho),
            rate(AndoAlgorithm::new(1.0), n, 1.0, FrameMode::RandomOrtho),
            rate(KatreniakAlgorithm::new(), n, 1.0, FrameMode::RandomOrtho),
            rate(CogAlgorithm::new(), n, big_v, FrameMode::RandomOrtho),
            rate(GcmAlgorithm::new(), n, big_v, FrameMode::Aligned),
        ];
        for row in batch {
            println!(
                "{:<22} {:>4} {:>14} {:>12} {:>10}",
                row.algorithm,
                row.n,
                row.rounds_to_halve.map_or("-".into(), |r| r.to_string()),
                row.rounds_to_eps.map_or("-".into(), |r| r.to_string()),
                row.converged
            );
            rows.push(row);
        }
        println!();
    }
    println!("shape to check against the paper's survey (§1.2.2):");
    println!("  * under FSync with unlimited visibility, cog and gcm collapse in O(1) rounds");
    println!("    (every robot jumps to the same global target; cog's O(n²) worst case needs");
    println!("    adversarial SSync subsets, which random rounds do not realize);");
    println!("  * limited-visibility algorithms grow with the hop diameter (≈ n on a line);");
    println!("  * ours is slower than Ando's by roughly the 1/8-vs-1/2 step-size ratio;");
    println!("  * '-' cells: the run converged before the measurement round completed.");
    dump_json("t2_convergence_rate", &rows);
}
