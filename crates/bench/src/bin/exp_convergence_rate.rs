//! Deprecated shim: delegates to `lab run convergence_rate` (same registry entry, same
//! output file). Kept so existing invocations and scripts keep working; the
//! declarative experiment now lives in `src/experiments/convergence_rate.rs`.

fn main() {
    cohesion_bench::lab::shim_main("convergence_rate");
}
