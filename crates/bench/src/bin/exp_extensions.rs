//! Deprecated shim: delegates to `lab run extensions` (same registry entry, same
//! output file). Kept so existing invocations and scripts keep working; the
//! declarative experiment now lives in `src/experiments/extensions.rs`.

fn main() {
    cohesion_bench::lab::shim_main("extensions");
}
