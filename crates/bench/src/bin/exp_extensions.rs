//! T5 — the §6.2/§6.3 extensions: unlimited visibility under full Async,
//! disconnected starts, and the 3D generalization.

use cohesion_bench::{banner, dump_json, mark};
use cohesion_core::KirkpatrickAlgorithm;
use cohesion_engine::SimulationBuilder;
use cohesion_geometry::{Vec2, Vec3};
use cohesion_model::Configuration;
use cohesion_scheduler::{AsyncScheduler, KAsyncScheduler, SSyncScheduler};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    experiment: String,
    converged: bool,
    cohesive: bool,
    final_diameter: f64,
    events: usize,
}

fn main() {
    banner(
        "T5",
        "extensions: unlimited-V Async, disconnected start, 3D",
    );
    let mut rows = Vec::new();
    println!(
        "{:<38} {:>10} {:>9} {:>12} {:>9}",
        "experiment", "converged", "cohesive", "final diam", "events"
    );

    // Unlimited visibility + full Async (§6.2).
    let config = cohesion_workloads::random_connected(14, 1.0, 71);
    let diam = config.diameter();
    let report = SimulationBuilder::new(config, KirkpatrickAlgorithm::new(1))
        .visibility(2.0 * diam)
        .scheduler(AsyncScheduler::new(9))
        .epsilon(0.05)
        .max_events(1_200_000)
        .track_strong_visibility(false)
        .run();
    println!(
        "{:<38} {:>10} {:>9} {:>12.4} {:>9}",
        "unlimited V, full Async",
        mark(report.converged),
        mark(report.cohesion_maintained),
        report.final_diameter,
        report.events
    );
    rows.push(Row {
        experiment: "unlimited_v_async".into(),
        converged: report.converged,
        cohesive: report.cohesion_maintained,
        final_diameter: report.final_diameter,
        events: report.events,
    });

    // Disconnected start (§6.3.1): two far-apart clusters converge
    // per-component.
    let mut pts: Vec<Vec2> = cohesion_workloads::random_connected(6, 1.0, 72)
        .positions()
        .to_vec();
    pts.extend(
        cohesion_workloads::random_connected(6, 1.0, 73)
            .positions()
            .iter()
            .map(|&p| p + Vec2::new(40.0, 0.0)),
    );
    let report = SimulationBuilder::new(Configuration::new(pts), KirkpatrickAlgorithm::new(1))
        .visibility(1.0)
        .scheduler(SSyncScheduler::new(21))
        .epsilon(0.05)
        .max_events(900_000)
        .track_strong_visibility(false)
        .run();
    let final_pos = report.final_configuration.positions();
    let comp = |r: std::ops::Range<usize>| {
        let mut best = 0.0_f64;
        for i in r.clone() {
            for j in r.clone() {
                best = best.max(final_pos[i].dist(final_pos[j]));
            }
        }
        best
    };
    let per_component_ok = comp(0..6) < 0.05 && comp(6..12) < 0.05;
    println!(
        "{:<38} {:>10} {:>9} {:>12.4} {:>9}",
        "disconnected start (per-component)",
        mark(per_component_ok),
        mark(report.cohesion_maintained),
        comp(0..6).max(comp(6..12)),
        report.events
    );
    rows.push(Row {
        experiment: "disconnected_start".into(),
        converged: per_component_ok,
        cohesive: report.cohesion_maintained,
        final_diameter: comp(0..6).max(comp(6..12)),
        events: report.events,
    });

    // 3D (§6.3.2).
    let report = SimulationBuilder::<Vec3>::new(
        cohesion_workloads::ball3(16, 1.0, 74),
        KirkpatrickAlgorithm::new(2),
    )
    .visibility(1.0)
    .scheduler(KAsyncScheduler::new(2, 75))
    .epsilon(0.06)
    .max_events(1_500_000)
    .run();
    println!(
        "{:<38} {:>10} {:>9} {:>12.4} {:>9}",
        "3D ball, 2-Async (cone rule)",
        mark(report.converged),
        mark(report.cohesion_maintained),
        report.final_diameter,
        report.events
    );
    rows.push(Row {
        experiment: "three_dimensional".into(),
        converged: report.converged,
        cohesive: report.cohesion_maintained,
        final_diameter: report.final_diameter,
        events: report.events,
    });

    println!("\npaper (§6.2-§6.3): all three rows converge cohesively.");
    dump_json("t5_extensions", &rows);
}
