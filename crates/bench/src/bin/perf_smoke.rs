//! CI perf smoke for the Look phase: re-times the `engine_look` grid path
//! and fails when a median regresses more than [`REGRESSION_FACTOR`]×
//! against the committed `BENCH_baseline.json`.
//!
//! The bound is deliberately loose — it exists to catch an accidental
//! reintroduction of `O(n)` work into the Look hot path (a 1024-robot Look
//! going linear is a ~30× move, far past 3×), not to police scheduler
//! noise or hardware variance. A second, hardware-independent check guards
//! the same property relatively: at `n = 1024` the brute reference must
//! remain ≥ [`MIN_BRUTE_RATIO`]× slower than the grid path.
//!
//! A third, also hardware-independent check guards the session API: a run
//! driven through `build()` + sliced `run_for` must stay within
//! [`MAX_SESSION_OVERHEAD`]× of the one-shot `run()` events/sec — the
//! session layer is bookkeeping, not work, and this fails if per-slice (or
//! per-event) overhead ever grows into the hot path.
//!
//! A fourth check guards unbounded-Async scheduling: at `n = 1024` the
//! `events_per_sec` fixture's Async arm must stay within
//! [`MAX_ASYNC_FSYNC_RATIO`]× of the FSync arm. Async pays real per-event
//! costs FSync amortizes over whole rounds (a fairness argmin per
//! activation, a pop-min per event instead of per round), so the ratio is
//! structurally above 1 — but the calendar queue, blocked argmin, and
//! origin-indexed grid hold it well under 2×, and a revert of any of them
//! (or new per-event work on the Async path) pushes it back over. Arms are
//! interleaved in pairs and the median pair ratio is compared, so the bound
//! is hardware-independent and loaded-runner-robust.
//!
//! A fifth check guards the telemetry plane the same way: the identical
//! session-driven run with a [`StoreObserver`] publishing into a live
//! [`StateStore`] (one subscriber attached) must stay within
//! [`MAX_STORE_OVERHEAD`]× of the unobserved run. The observer is cadenced
//! bookkeeping — a counter bump and a branch per event, a handful of store
//! publishes per run — and this fails if per-event work (locking, digesting,
//! allocation) ever creeps onto the observed path.
//!
//! Usage: `cargo run --release -p cohesion-bench --bin perf_smoke [-- --quick]`
//! (`--quick` trims samples for CI).

use cohesion_bench::lookbench::{
    async_fsync_paired_ratio, look_lattice, median_ns_per_event, LOOK_BENCH_SIZES,
};

use cohesion_engine::{Budget, LookPath, SimulationBuilder};
use cohesion_model::NilAlgorithm;
use cohesion_scheduler::FSyncScheduler;
use cohesion_telemetry::{StateStore, StoreObserver, DEFAULT_QUEUE_CAPACITY};

/// A current median may be at most this many times the committed one.
const REGRESSION_FACTOR: f64 = 3.0;

/// At n = 1024 the brute reference must be at least this many times slower
/// than the grid path (hardware-independent O(n) canary).
const MIN_BRUTE_RATIO: f64 = 3.0;

/// A sliced session-driven run may be at most this many times slower than
/// the one-shot `run()` on the same workload.
const MAX_SESSION_OVERHEAD: f64 = 1.1;

/// The Async arm of the throughput fixture may be at most this many times
/// slower than the FSync arm at [`ASYNC_CANARY_N`] (median paired ratio).
const MAX_ASYNC_FSYNC_RATIO: f64 = 2.0;

/// A session-driven run observed by a `StoreObserver` may be at most this
/// many times slower than the same run unobserved.
const MAX_STORE_OVERHEAD: f64 = 1.1;

/// Swarm size of the Async-scheduling-overhead canary.
const ASYNC_CANARY_N: usize = 1024;

/// Swarm size and event budget of the session-overhead canary.
const SESSION_CANARY_N: usize = 256;
const SESSION_CANARY_EVENTS: usize = 60_000;

/// Slice size of the session-driven side — small enough that per-slice
/// overhead would show, big enough to stay realistic (the lab heartbeats
/// every 100k events, ~250× coarser).
const SESSION_CANARY_SLICE: usize = 256;

fn main() {
    let samples = if std::env::args().any(|a| a == "--quick") {
        3
    } else {
        7
    };
    let baseline = load_baseline();
    let mut failures = Vec::new();

    println!("perf smoke: engine_look grid path vs BENCH_baseline.json");
    println!(
        "{:<14} {:>14} {:>14} {:>8}",
        "id", "baseline ns/ev", "now ns/ev", "ratio"
    );
    for n in LOOK_BENCH_SIZES {
        let id = format!("grid/{n}");
        let Some(&base) = baseline.get(&id) else {
            failures.push(format!("baseline has no engine_look record for {id}"));
            continue;
        };
        let now = median_ns_per_event(n, LookPath::Grid, None, samples);
        let ratio = now / base;
        println!("{id:<14} {base:>14.1} {now:>14.1} {ratio:>7.2}x");
        if ratio > REGRESSION_FACTOR {
            failures.push(format!(
                "{id}: {now:.1} ns/event is {ratio:.2}x the committed {base:.1} \
                 (bound {REGRESSION_FACTOR}x)"
            ));
        }
    }

    let n = 1024;
    let grid = median_ns_per_event(n, LookPath::Grid, None, samples);
    let brute = median_ns_per_event(n, LookPath::BruteReference, None, samples);
    let ratio = brute / grid;
    println!("relative canary at n={n}: brute/grid = {ratio:.1}x (need ≥ {MIN_BRUTE_RATIO}x)");
    if ratio < MIN_BRUTE_RATIO {
        failures.push(format!(
            "grid path only {ratio:.1}x faster than brute at n={n} — O(n) work \
             reintroduced into the Look hot path?"
        ));
    }

    let overhead = session_overhead_ratio(samples);
    println!(
        "session canary at n={SESSION_CANARY_N}: sliced run_for({SESSION_CANARY_SLICE}) / \
         one-shot run() = {overhead:.3}x (need ≤ {MAX_SESSION_OVERHEAD}x)"
    );
    if overhead > MAX_SESSION_OVERHEAD {
        failures.push(format!(
            "session-driven run is {overhead:.3}x the one-shot run() \
             (bound {MAX_SESSION_OVERHEAD}x) — per-slice or per-event session \
             overhead crept into the driver loop?"
        ));
    }

    let async_ratio = async_fsync_paired_ratio(ASYNC_CANARY_N, samples);
    println!(
        "async canary at n={ASYNC_CANARY_N}: async/fsync = {async_ratio:.2}x \
         (need ≤ {MAX_ASYNC_FSYNC_RATIO}x)"
    );
    if async_ratio > MAX_ASYNC_FSYNC_RATIO {
        failures.push(format!(
            "unbounded Async is {async_ratio:.2}x FSync throughput at \
             n={ASYNC_CANARY_N} (bound {MAX_ASYNC_FSYNC_RATIO}x) — per-event \
             work crept into the Async scheduling path?"
        ));
    }

    let store_overhead = store_overhead_ratio(samples);
    println!(
        "telemetry canary at n={SESSION_CANARY_N}: observed / unobserved session \
         = {store_overhead:.3}x (need ≤ {MAX_STORE_OVERHEAD}x)"
    );
    if store_overhead > MAX_STORE_OVERHEAD {
        failures.push(format!(
            "StoreObserver-attached run is {store_overhead:.3}x the unobserved \
             session (bound {MAX_STORE_OVERHEAD}x) — per-event work crept onto \
             the telemetry publish path?"
        ));
    }

    if failures.is_empty() {
        println!("perf smoke OK");
    } else {
        for f in &failures {
            eprintln!("PERF REGRESSION: {f}");
        }
        std::process::exit(1);
    }
}

/// Measures the session-API overhead: the same sweep-style workload
/// (bounded-density lattice, Nil algorithm, FSync — observation cost only)
/// run one-shot via `run()` versus driven in small `run_for` slices.
/// Returns the best-of-N ratio `sliced / one-shot`; both sides re-build
/// their session per sample, so only the driver loop differs.
fn session_overhead_ratio(samples: usize) -> f64 {
    let config = look_lattice(SESSION_CANARY_N);
    let builder = || {
        SimulationBuilder::new(config.clone(), NilAlgorithm)
            .scheduler(FSyncScheduler::new())
            .max_events(SESSION_CANARY_EVENTS)
            .track_strong_visibility(false)
            .hull_check_every(0)
            .diameter_sample_every(0)
    };
    let time = |f: &dyn Fn()| {
        let start = std::time::Instant::now();
        f();
        start.elapsed().as_secs_f64()
    };
    // Best-of-N rather than a median: session overhead, if real, is
    // systematic and shows in *every* sample, while scheduler preemptions
    // and frequency transients only ever inflate a ratio — so the minimum
    // is the noise-robust estimator for a tight 1.1x bound (the other
    // canaries tolerate noise with 3x headroom instead). Extra samples
    // keep the minimum honest on loaded CI runners.
    (0..samples.max(5))
        .map(|_| {
            let one_shot = time(&|| {
                let report = builder().run();
                assert_eq!(report.events, SESSION_CANARY_EVENTS);
            });
            let sliced = time(&|| {
                let mut session = builder().build();
                while !session
                    .run_for(Budget::events(SESSION_CANARY_SLICE))
                    .is_terminal()
                {}
                assert_eq!(session.events(), SESSION_CANARY_EVENTS);
            });
            sliced / one_shot
        })
        .fold(f64::INFINITY, f64::min)
}

/// Measures the telemetry-plane overhead: the session canary's workload
/// driven in slices, once unobserved and once with a [`StoreObserver`]
/// publishing into a [`StateStore`] that has one live subscriber (so the
/// fan-out path is exercised, not skipped). Best-of-N ratio
/// `observed / unobserved`, the same estimator as
/// [`session_overhead_ratio`] and for the same reason: real observer
/// overhead is systematic, noise only inflates.
fn store_overhead_ratio(samples: usize) -> f64 {
    let config = look_lattice(SESSION_CANARY_N);
    let builder = || {
        SimulationBuilder::new(config.clone(), NilAlgorithm)
            .scheduler(FSyncScheduler::new())
            .max_events(SESSION_CANARY_EVENTS)
            .track_strong_visibility(false)
            .hull_check_every(0)
            .diameter_sample_every(0)
    };
    let drive = |session: &mut cohesion_engine::Simulation| {
        while !session
            .run_for(Budget::events(SESSION_CANARY_SLICE))
            .is_terminal()
        {}
        assert_eq!(session.events(), SESSION_CANARY_EVENTS);
    };
    let time = |f: &dyn Fn()| {
        let start = std::time::Instant::now();
        f();
        start.elapsed().as_secs_f64()
    };
    (0..samples.max(5))
        .map(|_| {
            let bare = time(&|| {
                let mut session = builder().build();
                drive(&mut session);
            });
            let observed = time(&|| {
                let store = StateStore::new();
                let _sub = store.subscribe(DEFAULT_QUEUE_CAPACITY);
                let mut session = builder().build();
                session.observe(StoreObserver::new(store.clone()));
                drive(&mut session);
            });
            observed / bare
        })
        .fold(f64::INFINITY, f64::min)
}

/// Extracts `engine_look` medians from `BENCH_baseline.json` at the
/// workspace root. The serde_json stand-in has no decoder, so this is a
/// minimal field scanner over the committed format: records carry
/// `"group"`, `"id"`, `"median_ns"` in that order.
fn load_baseline() -> std::collections::BTreeMap<String, f64> {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_baseline.json");
    let text =
        std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()));
    let mut medians = std::collections::BTreeMap::new();
    let mut rest = text.as_str();
    while let Some(at) = rest.find("\"group\"") {
        rest = &rest[at..];
        let Some(group) = string_value(rest) else {
            break;
        };
        let Some(id_at) = rest.find("\"id\"") else {
            break;
        };
        let Some(id) = string_value(&rest[id_at..]) else {
            break;
        };
        let Some(med_at) = rest.find("\"median_ns\"") else {
            break;
        };
        let Some(median) = number_value(&rest[med_at..]) else {
            break;
        };
        if group == "engine_look" {
            // Baseline stores ns per iteration of one 3n-event round;
            // normalize to ns per event to match the live measurement.
            let per_event = match id.rsplit('/').next().and_then(|s| s.parse::<f64>().ok()) {
                Some(n) => median / (3.0 * n),
                None => median,
            };
            medians.insert(id, per_event);
        }
        rest = &rest[med_at..];
    }
    assert!(
        !medians.is_empty(),
        "no engine_look records in {} — regenerate the baseline \
         (see README § Performance)",
        path.display()
    );
    medians
}

/// The first `"..."` string after the key at the start of `chunk`
/// (skipping the key itself).
fn string_value(chunk: &str) -> Option<String> {
    let after_key = &chunk[chunk.find(':')?..];
    let open = after_key.find('"')?;
    let rest = &after_key[open + 1..];
    let close = rest.find('"')?;
    Some(rest[..close].to_string())
}

/// The first number after the key at the start of `chunk`.
fn number_value(chunk: &str) -> Option<f64> {
    let after_colon = chunk[chunk.find(':')? + 1..].trim_start();
    let end = after_colon
        .find(|c: char| {
            !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == 'E' || c == '+')
        })
        .unwrap_or(after_colon.len());
    after_colon[..end].parse().ok()
}
