//! Deprecated shim: delegates to `lab run timelines` (same registry entry, same
//! output file). Kept so existing invocations and scripts keep working; the
//! declarative experiment now lives in `src/experiments/timelines.rs`.

fn main() {
    cohesion_bench::lab::shim_main("timelines");
}
