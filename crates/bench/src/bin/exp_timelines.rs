//! F1–F2 — the scheduling models as validated, rendered timelines.

use cohesion_bench::banner;
use cohesion_scheduler::render::render_timeline;
use cohesion_scheduler::validate::{
    max_nesting_depth, minimal_async_k, validate_fairness, validate_fsync, validate_nested,
    validate_ssync,
};
use cohesion_scheduler::{
    AsyncScheduler, FSyncScheduler, KAsyncScheduler, NestAScheduler, SSyncScheduler,
    ScheduleContext, ScheduleTrace, Scheduler,
};

fn collect(mut s: impl Scheduler, robots: usize, count: usize) -> ScheduleTrace {
    let ctx = ScheduleContext {
        robot_count: robots,
    };
    let mut trace = ScheduleTrace::new();
    for _ in 0..count {
        match s.next_activation(&ctx) {
            Some(iv) => trace.push(iv),
            None => break,
        }
    }
    trace
}

fn main() {
    banner(
        "F1-F2",
        "scheduler timelines (L = Look, c = Compute, m = Move)",
    );
    let robots = 3;

    println!("\nFSync (Figure 1 top):");
    let t = collect(FSyncScheduler::new(), robots, 12);
    print!("{}", render_timeline(&t, robots, 68));
    println!(
        "  validated FSync: {} rounds; fairness ok: {}",
        validate_fsync(&t, robots).unwrap(),
        validate_fairness(&t, robots, 2.0).is_ok()
    );

    println!("\nSSync (Figure 1 middle):");
    let t = collect(SSyncScheduler::new(5), robots, 12);
    print!("{}", render_timeline(&t, robots, 68));
    println!("  validated SSync: {} rounds", validate_ssync(&t).unwrap());

    println!("\nAsync (Figure 1 bottom):");
    let t = collect(AsyncScheduler::new(5), robots, 14);
    print!("{}", render_timeline(&t, robots, 68));
    println!(
        "  minimal k over this prefix: {} (unbounded in the limit)",
        minimal_async_k(&t)
    );

    println!("\n1-NestA (Figure 2 top):");
    let t = collect(NestAScheduler::new(1, 5), robots, 10);
    print!("{}", render_timeline(&t, robots, 68));
    validate_nested(&t).unwrap();
    println!(
        "  validated nested; minimal k = {}, max nesting depth = {}",
        minimal_async_k(&t),
        max_nesting_depth(&t)
    );

    println!("\n1-Async (Figure 2 bottom):");
    let t = collect(KAsyncScheduler::new(1, 5), robots, 12);
    print!("{}", render_timeline(&t, robots, 68));
    println!(
        "  minimal k = {} (≤ 1 by construction); nested pairs not required",
        minimal_async_k(&t)
    );
}
