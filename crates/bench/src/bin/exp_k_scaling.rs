//! T4 — the `1/k` scaling (§3.2.1): safety and its price.
//!
//! The algorithm's only adaptation to higher asynchrony is scaling its safe
//! regions by `1/k`. Two effects to reproduce:
//!
//! * safety is monotone: an algorithm provisioned for `k` keeps cohesion
//!   under any `k'`-Async scheduler with `k' ≤ k`;
//! * the price is speed: steps shrink by `1/k`, so convergence time grows
//!   roughly linearly in `k`.
//!
//! Runs on the [`SweepRunner`]: every `(alg k, sched k)` cell is an
//! independent [`ScenarioSpec`], executed in parallel and merged in spec
//! order, so the table and JSON rows are identical to a serial run.

use cohesion_bench::{
    banner, dump_json, quick_requested, AlgorithmSpec, ScenarioSpec, SchedulerSpec, SweepRunner,
    WorkloadSpec,
};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    algorithm_k: u32,
    scheduler_k: u32,
    converged: bool,
    cohesive: bool,
    rounds: usize,
    end_time: f64,
}

fn spec(algorithm_k: u32, scheduler_k: u32, seed: u64, quick: bool) -> ScenarioSpec {
    ScenarioSpec {
        seed: 600 + seed,
        max_events: if quick { 150_000 } else { 2_500_000 },
        ..ScenarioSpec::new(
            WorkloadSpec::RandomConnected {
                n: if quick { 8 } else { 12 },
                v: 1.0,
                seed: 400 + seed,
            },
            AlgorithmSpec::Kirkpatrick { k: algorithm_k },
            SchedulerSpec::KAsync {
                k: scheduler_k,
                seed: 500 + seed,
            },
        )
    }
}

fn main() {
    banner(
        "T4",
        "1/k scaling: convergence cost vs provisioned k, and safety margins",
    );
    let quick = quick_requested();
    // Cost of k (matched provisioning), then safety margins (over- and
    // under-provisioning). One flat spec grid; the blank line in the table
    // separates the two families.
    let matched: Vec<(u32, u32, u64)> = [1u32, 2, 4, 8]
        .iter()
        .map(|&k| (k, k, u64::from(k)))
        .collect();
    let margins: Vec<(u32, u32, u64)> = [(8u32, 2u32), (4, 1), (1, 4), (2, 8)]
        .iter()
        .map(|&(ak, sk)| (ak, sk, u64::from(ak * 10 + sk)))
        .collect();
    let cells: Vec<(u32, u32, u64)> = matched.iter().chain(&margins).copied().collect();
    let specs: Vec<ScenarioSpec> = cells
        .iter()
        .map(|&(ak, sk, seed)| spec(ak, sk, seed, quick))
        .collect();

    let reports = SweepRunner::new().run_scenarios(&specs);

    println!(
        "{:>6} {:>6} {:>10} {:>9} {:>8} {:>10}",
        "alg k", "sched k", "converged", "cohesive", "rounds", "end time"
    );
    let mut rows = Vec::new();
    for (i, ((ak, sk, _), report)) in cells.iter().zip(&reports).enumerate() {
        let r = Row {
            algorithm_k: *ak,
            scheduler_k: *sk,
            converged: report.converged,
            cohesive: report.cohesion_maintained,
            rounds: report.rounds,
            end_time: report.end_time,
        };
        if i == matched.len() {
            println!();
        }
        println!(
            "{:>6} {:>6} {:>10} {:>9} {:>8} {:>10.1}",
            r.algorithm_k, r.scheduler_k, r.converged, r.cohesive, r.rounds, r.end_time
        );
        rows.push(r);
    }
    println!("\npaper (§3.2.1, Theorems 3-4): matched and over-provisioned rows keep cohesion;");
    println!("rounds grow with k (the 1/k step). Under-provisioned rows (alg k < sched k) are");
    println!("*not* covered by the theorem — random schedulers rarely realize the worst case,");
    println!("so their 'cohesive' cells may still read yes; the guaranteed break needs the");
    println!("scripted adversaries (see exp_ando_separation, exp_impossibility).");
    dump_json("t4_k_scaling", &rows);
}
