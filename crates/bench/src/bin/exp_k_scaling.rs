//! Deprecated shim: delegates to `lab run k_scaling` (same registry entry, same
//! output file). Kept so existing invocations and scripts keep working; the
//! declarative experiment now lives in `src/experiments/k_scaling.rs`.

fn main() {
    cohesion_bench::lab::shim_main("k_scaling");
}
