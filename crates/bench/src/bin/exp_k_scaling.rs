//! T4 — the `1/k` scaling (§3.2.1): safety and its price.
//!
//! The algorithm's only adaptation to higher asynchrony is scaling its safe
//! regions by `1/k`. Two effects to reproduce:
//!
//! * safety is monotone: an algorithm provisioned for `k` keeps cohesion
//!   under any `k'`-Async scheduler with `k' ≤ k`;
//! * the price is speed: steps shrink by `1/k`, so convergence time grows
//!   roughly linearly in `k`.

use cohesion_bench::{banner, dump_json};
use cohesion_core::KirkpatrickAlgorithm;
use cohesion_engine::SimulationBuilder;
use cohesion_scheduler::KAsyncScheduler;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    algorithm_k: u32,
    scheduler_k: u32,
    converged: bool,
    cohesive: bool,
    rounds: usize,
    end_time: f64,
}

fn run(algorithm_k: u32, scheduler_k: u32, seed: u64) -> Row {
    let report = SimulationBuilder::new(
        cohesion_workloads::random_connected(12, 1.0, 400 + seed),
        KirkpatrickAlgorithm::new(algorithm_k),
    )
    .visibility(1.0)
    .scheduler(KAsyncScheduler::new(scheduler_k, 500 + seed))
    .seed(600 + seed)
    .epsilon(0.05)
    .max_events(2_500_000)
    .track_strong_visibility(false)
    .hull_check_every(0)
    .run();
    Row {
        algorithm_k,
        scheduler_k,
        converged: report.converged,
        cohesive: report.cohesion_maintained,
        rounds: report.rounds,
        end_time: report.end_time,
    }
}

fn main() {
    banner(
        "T4",
        "1/k scaling: convergence cost vs provisioned k, and safety margins",
    );
    println!(
        "{:>6} {:>6} {:>10} {:>9} {:>8} {:>10}",
        "alg k", "sched k", "converged", "cohesive", "rounds", "end time"
    );
    let mut rows = Vec::new();
    // Cost of k: matched provisioning.
    for k in [1u32, 2, 4, 8] {
        let r = run(k, k, u64::from(k));
        println!(
            "{:>6} {:>6} {:>10} {:>9} {:>8} {:>10.1}",
            r.algorithm_k, r.scheduler_k, r.converged, r.cohesive, r.rounds, r.end_time
        );
        rows.push(r);
    }
    println!();
    // Safety margins: over- and under-provisioning.
    for (ak, sk) in [(8u32, 2u32), (4, 1), (1, 4), (2, 8)] {
        let r = run(ak, sk, u64::from(ak * 10 + sk));
        println!(
            "{:>6} {:>6} {:>10} {:>9} {:>8} {:>10.1}",
            r.algorithm_k, r.scheduler_k, r.converged, r.cohesive, r.rounds, r.end_time
        );
        rows.push(r);
    }
    println!("\npaper (§3.2.1, Theorems 3-4): matched and over-provisioned rows keep cohesion;");
    println!("rounds grow with k (the 1/k step). Under-provisioned rows (alg k < sched k) are");
    println!("*not* covered by the theorem — random schedulers rarely realize the worst case,");
    println!("so their 'cohesive' cells may still read yes; the guaranteed break needs the");
    println!("scripted adversaries (see exp_ando_separation, exp_impossibility).");
    dump_json("t4_k_scaling", &rows);
}
