//! F4 — Figure 4(a)/(b): the exact counterexamples against unmodified Ando,
//! and the survival of the paper's algorithm on identical timelines.

use cohesion_adversary::ando_counterexample::{
    figure4_configuration, figure4a_schedule, figure4b_schedule, run_figure4, schedule_properties,
    xy_separation, V,
};
use cohesion_algorithms::{AndoAlgorithm, KatreniakAlgorithm};
use cohesion_bench::{banner, dump_json, mark};
use cohesion_core::KirkpatrickAlgorithm;
use cohesion_scheduler::render::render_timeline;
use cohesion_scheduler::ScheduleTrace;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    figure: String,
    algorithm: String,
    xy_separation: f64,
    cohesive: bool,
    schedule_k: u32,
    schedule_nested: bool,
}

fn main() {
    banner("F4", "Ando counterexamples under 1-Async and 2-NestA");
    let config = figure4_configuration();
    println!("configuration (V = {V}):");
    for (id, p) in config.iter() {
        println!("  {id} at {p}");
    }
    let mut rows = Vec::new();
    for (figure, schedule) in [
        ("4a (1-Async)", figure4a_schedule()),
        ("4b (2-NestA)", figure4b_schedule()),
    ] {
        let (k, nested) = schedule_properties(&schedule);
        println!("\n--- Figure {figure}: minimal k = {k}, nested = {nested} ---");
        println!(
            "{}",
            render_timeline(&ScheduleTrace::from_intervals(schedule.clone()), 2, 64)
        );
        println!(
            "{:<22} {:>12} {:>10}",
            "algorithm", "|XY| final", "cohesive"
        );
        let runs: Vec<(String, cohesion_engine::SimulationReport)> = vec![
            (
                "ando".into(),
                run_figure4(AndoAlgorithm::new(V), schedule.clone()),
            ),
            (
                "katreniak".into(),
                run_figure4(KatreniakAlgorithm::new(), schedule.clone()),
            ),
            (
                format!("kirkpatrick(k={k})"),
                run_figure4(KirkpatrickAlgorithm::new(k.max(1)), schedule.clone()),
            ),
        ];
        for (name, report) in runs {
            let sep = xy_separation(&report);
            println!(
                "{:<22} {:>12.4} {:>10}",
                name,
                sep,
                mark(report.cohesion_maintained)
            );
            rows.push(Row {
                figure: figure.to_string(),
                algorithm: name,
                xy_separation: sep,
                cohesive: report.cohesion_maintained,
                schedule_k: k,
                schedule_nested: nested,
            });
        }
    }
    println!("\npaper: Figure 4 — Ando separates (>V = {V}) in both models; Katreniak survives");
    println!("1-Async (its home model); the paper's algorithm survives both (Theorems 3–4).");
    dump_json("f4_ando_separation", &rows);
}
