//! Deprecated shim: delegates to `lab run ando_separation` (same registry entry, same
//! output file). Kept so existing invocations and scripts keep working; the
//! declarative experiment now lives in `src/experiments/ando_separation.rs`.

fn main() {
    cohesion_bench::lab::shim_main("ando_separation");
}
