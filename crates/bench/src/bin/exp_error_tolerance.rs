//! T3 + F18 — error-tolerance sweeps (§6.1).
//!
//! Sweeps the four error knobs independently under 2-Async scheduling and
//! records the Cohesive Convergence success rate over seeds. The paper's
//! claims: the algorithm (with matched tolerance parameters) survives
//! bounded relative distance error `δ`, bounded skew `λ`, any rigidity
//! `ξ ∈ (0,1]`, and quadratic motion error — while *linear* motion error is
//! fatal in principle (Figure 18; demonstrated geometrically here and in
//! tests/error_tolerance.rs).

use cohesion_bench::{banner, dump_json};
use cohesion_core::KirkpatrickAlgorithm;
use cohesion_engine::SimulationBuilder;
use cohesion_model::{MotionError, MotionModel, PerceptionModel};
use cohesion_scheduler::KAsyncScheduler;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    knob: String,
    value: f64,
    runs: usize,
    cohesive_converged: usize,
    cohesion_failures: usize,
}

fn sweep(
    knob: &str,
    value: f64,
    perception: PerceptionModel,
    motion: MotionModel,
    delta: f64,
    skew: f64,
) -> Row {
    let runs = 8;
    let mut ok = 0;
    let mut broken = 0;
    for seed in 0..runs {
        let report = SimulationBuilder::new(
            cohesion_workloads::random_connected(10, 1.0, 100 + seed),
            KirkpatrickAlgorithm::with_error_tolerance(2, delta, skew),
        )
        .visibility(1.0)
        .scheduler(KAsyncScheduler::new(2, 200 + seed))
        .seed(300 + seed)
        .perception(perception)
        .motion(motion)
        .epsilon(0.08)
        .max_events(500_000)
        .track_strong_visibility(false)
        .hull_check_every(0)
        .run();
        if report.cohesively_converged() {
            ok += 1;
        }
        if !report.cohesion_maintained {
            broken += 1;
        }
    }
    Row {
        knob: knob.into(),
        value,
        runs: runs as usize,
        cohesive_converged: ok as usize,
        cohesion_failures: broken as usize,
    }
}

fn main() {
    banner("T3+F18", "error-tolerance sweeps under 2-Async");
    let mut rows = Vec::new();
    println!(
        "{:<28} {:>8} {:>10} {:>12} {:>12}",
        "knob", "value", "runs", "cohesive+ε", "edge breaks"
    );

    for &delta in &[0.0, 0.02, 0.05, 0.1] {
        let r = sweep(
            "distance error δ",
            delta,
            PerceptionModel::new(delta, 0.0),
            MotionModel::RIGID,
            delta,
            0.0,
        );
        println!(
            "{:<28} {:>8.3} {:>10} {:>12} {:>12}",
            r.knob, r.value, r.runs, r.cohesive_converged, r.cohesion_failures
        );
        rows.push(r);
    }
    for &skew in &[0.0, 0.05, 0.1, 0.2] {
        let r = sweep(
            "angular skew λ",
            skew,
            PerceptionModel::new(0.0, skew),
            MotionModel::RIGID,
            0.0,
            skew,
        );
        println!(
            "{:<28} {:>8.3} {:>10} {:>12} {:>12}",
            r.knob, r.value, r.runs, r.cohesive_converged, r.cohesion_failures
        );
        rows.push(r);
    }
    for &xi in &[1.0, 0.5, 0.25, 0.1] {
        let r = sweep(
            "rigidity ξ",
            xi,
            PerceptionModel::EXACT,
            MotionModel::with_rigidity(xi),
            0.0,
            0.0,
        );
        println!(
            "{:<28} {:>8.3} {:>10} {:>12} {:>12}",
            r.knob, r.value, r.runs, r.cohesive_converged, r.cohesion_failures
        );
        rows.push(r);
    }
    for &c in &[0.0, 0.2, 0.5] {
        let r = sweep(
            "quadratic motion error c",
            c,
            PerceptionModel::EXACT,
            MotionModel::new(1.0, MotionError::Quadratic { coefficient: c }),
            0.0,
            0.0,
        );
        println!(
            "{:<28} {:>8.3} {:>10} {:>12} {:>12}",
            r.knob, r.value, r.runs, r.cohesive_converged, r.cohesion_failures
        );
        rows.push(r);
    }
    // Linear motion error: the regime the paper proves fatal (Figure 18).
    for &c in &[0.2, 0.5] {
        let r = sweep(
            "LINEAR motion error c",
            c,
            PerceptionModel::EXACT,
            MotionModel::new(1.0, MotionError::Linear { coefficient: c }),
            0.0,
            0.0,
        );
        println!(
            "{:<28} {:>8.3} {:>10} {:>12} {:>12}",
            r.knob, r.value, r.runs, r.cohesive_converged, r.cohesion_failures
        );
        rows.push(r);
    }
    println!(
        "\npaper (§6.1): all tolerated knobs keep 'cohesive+ε' at {}/{}; linear motion",
        8, 8
    );
    println!("error is the regime Figure 18 proves fatal — random (non-worst-case) linear noise");
    println!("may still let runs through, so its row is diagnostic, not a guarantee; the");
    println!("worst-case geometric break is asserted in tests/error_tolerance.rs.");
    dump_json("t3_error_tolerance", &rows);
}
