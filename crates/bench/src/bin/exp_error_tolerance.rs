//! Deprecated shim: delegates to `lab run error_tolerance` (same registry entry, same
//! output file). Kept so existing invocations and scripts keep working; the
//! declarative experiment now lives in `src/experiments/error_tolerance.rs`.

fn main() {
    cohesion_bench::lab::shim_main("error_tolerance");
}
